// Package wedge is a faithful, simulator-backed reproduction of the system
// described in "Wedge: Splitting Applications into Reduced-Privilege
// Compartments" (Bittau, Marchenko, Handley, Karp — NSDI 2008).
//
// Wedge lets a programmer split an application into compartments with
// default-deny semantics. Its three primitives are:
//
//   - Sthreads: threads of control bound to an explicit security policy.
//     A new sthread holds no privileges beyond a private copy-on-write
//     view of the pristine pre-main process image.
//   - Tagged memory: memory allocated under a tag, so that privileges can
//     be granted to sthreads at tag granularity (read, read-write, or
//     copy-on-write).
//   - Callgates: privileged entry points implemented as fresh sthreads,
//     with kernel-held permissions and a tamper-proof trusted argument.
//     Recycled callgates amortize creation cost for hot paths.
//
// Because the Go runtime cannot page-protect slices of its own heap, this
// reproduction runs application memory inside a simulated MMU
// (internal/vm) on a simulated kernel (internal/kernel). Every load and
// store performed by compartmentalized code is checked exactly where
// hardware would check it. See DESIGN.md for the substitution argument.
//
// # Quickstart
//
//	sys := wedge.NewSystem()
//	err := sys.Main(func(main *wedge.Sthread) {
//		secretTag, _ := sys.TagNew(main)
//		secret, _ := main.Smalloc(secretTag, 64)
//		main.Write(secret, []byte("the private key"))
//
//		// A callgate that may read the secret.
//		gateSC := wedge.NewSC()
//		gateSC.MemAdd(secretTag, wedge.PermRead)
//		var sign wedge.GateFunc = func(g *wedge.Sthread, arg, trusted wedge.Addr) wedge.Addr {
//			... // compute using the secret
//		}
//
//		// An unprivileged worker that can invoke the gate but never
//		// read the secret directly.
//		workerSC := wedge.NewSC()
//		workerSC.GateAdd(sign, gateSC, secret, "sign")
//		worker, _ := main.Create(workerSC, workerBody, 0)
//		main.Join(worker)
//	})
//
// The subpackages under internal implement the substrate; this package is
// the supported public surface, mirroring the paper's Table 1.
package wedge

import (
	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/selinux"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

// Core re-exported types. These aliases make the public API self-contained
// while keeping one implementation of each concept.
type (
	// Addr is a simulated virtual address (the void* of the paper's API).
	Addr = vm.Addr
	// Perm is a page permission set for memory grants.
	Perm = vm.Perm
	// Fault is the protection fault terminating an sthread that oversteps.
	Fault = vm.Fault
	// Tag names a tagged-memory segment (tag_t).
	Tag = tags.Tag
	// SC is a security policy (sc_t).
	SC = policy.SC
	// GateSpec is a callgate authorization held inside a policy.
	GateSpec = policy.GateSpec
	// Sthread is a compartment (sthread_t plus its thread of control).
	Sthread = sthread.Sthread
	// Body is an sthread entry point (cb_t).
	Body = sthread.Body
	// GateFunc is a callgate entry point.
	GateFunc = sthread.GateFunc
	// Recycled is a long-lived, reusable callgate.
	Recycled = sthread.Recycled
	// Violation is one logged access denial from the emulation library.
	Violation = sthread.Violation
	// FDPerm is a file-descriptor grant mode.
	FDPerm = kernel.FDPerm
	// Task is the underlying kernel task of an sthread.
	Task = kernel.Task

	// GatePool is a sharded pool of recycled callgates with per-principal
	// affinity and inter-principal argument scrubbing.
	GatePool = gatepool.Pool
	// GatePoolConfig sizes and populates a GatePool.
	GatePoolConfig = gatepool.Config
	// GateDef names one recycled entry point every pool slot instantiates.
	GateDef = gatepool.GateDef
	// GateLease is exclusive use of one pool slot, Acquire to Release.
	GateLease = gatepool.Lease
	// GatePoolStats is a snapshot of a pool's scheduling counters.
	GatePoolStats = gatepool.Stats

	// ServeApp declares a pooled wedge application for the serve runtime:
	// the gates every slot carries, which gate is the per-connection
	// worker, and the per-connection state type T.
	ServeApp[T any] = serve.App[T]
	// ServeRuntime runs a ServeApp: pool lifecycle, accept loop, graceful
	// drain, admission control, and a unified metrics snapshot.
	ServeRuntime[T any] = serve.Runtime[T]
	// ServedConn is one in-flight connection's record (lease, descriptor,
	// app state), reachable from gate entries via Runtime.Lookup.
	ServedConn[T any] = serve.Conn[T]
	// ServeState is a runtime's lifecycle position.
	ServeState = serve.State
	// ServeSnapshot is the unified runtime + pool observability surface.
	ServeSnapshot = serve.Snapshot
	// SlotPin is a NUMA-style slot→CPU placement hint.
	SlotPin = serve.SlotPin
	// OverloadError is the serve runtime's typed admission rejection.
	OverloadError = serve.OverloadError

	// ConnTable issues connection ids and demultiplexes per-connection
	// state of type T behind a pooled gate — the mechanism every built-in
	// ServeApp uses for gate-side session state. The table is sharded
	// (power-of-two shard count sized from GOMAXPROCS, two-choice
	// hashing) so million-principal churn does not serialize on one
	// lock; ids stay globally monotonic and are never reused. Gate
	// entries resolving a worker-supplied id must additionally pin the
	// result to the invoking slot (ServeRuntime.Lookup does both); see
	// the package documentation of internal/gatepool for the isolation
	// argument.
	ConnTable[T any] = gatepool.ConnTable[T]

	// GateSchema is a declarative argument-block layout: ordered typed
	// fields with a computed layout, hard codec-enforced capacities, and
	// schema-derived scrub/probe footprints. Every ServeApp carries one;
	// gate bodies touch the block only through its typed field handles.
	GateSchema = gateabi.Schema
	// GateSchemaBuilder accumulates field declarations; Seal produces the
	// immutable GateSchema.
	GateSchemaBuilder = gateabi.Builder
	// GateFieldInfo describes one placed schema field.
	GateFieldInfo = gateabi.FieldInfo
	// ArgBoundsError is the typed codec rejection: a payload or a
	// block-resident length word exceeded a field's declared capacity.
	// Nothing is silently truncated and nothing is written or read past
	// the field.
	ArgBoundsError = gateabi.ArgBoundsError
	// WordField is the typed handle of one 64-bit block word.
	WordField[T gateabi.Integer] = gateabi.WordField[T]
	// BytesField is the typed handle of a length-prefixed byte area.
	BytesField = gateabi.BytesField
	// StringField is the typed handle of a NUL-terminated string area.
	StringField = gateabi.StringField
	// FixedField is the typed handle of an exact-size byte area.
	FixedField = gateabi.FixedField
)

// NewGateSchema starts a gate argument-block schema; declare fields with
// GateU64/GateWord/GateBytes/GateString/GateFixed (plus GateConnID and
// GateFD for a schema served by the serve runtime) and finish with Seal.
func NewGateSchema(name string) *GateSchemaBuilder { return gateabi.NewSchema(name) }

// Field declaration helpers, re-exported from the gate ABI.
var (
	// GateU64 declares one uint64 block word.
	GateU64 = gateabi.U64
	// GateBytes declares a length-prefixed byte area with a hard capacity.
	GateBytes = gateabi.Bytes
	// GateString declares a NUL-terminated string area.
	GateString = gateabi.String
	// GateFixed declares an exact-size byte area.
	GateFixed = gateabi.Fixed
	// GateConnID reserves the serve runtime's connection-id demux word.
	GateConnID = gateabi.ConnID
	// GateFD reserves the serve runtime's descriptor-number demux word.
	GateFD = gateabi.FD
)

// GateWord declares one 64-bit block word viewed as integer type T.
func GateWord[T gateabi.Integer](b *GateSchemaBuilder, name string) WordField[T] {
	return gateabi.Word[T](b, name)
}

// ErrArgBounds is the errors.Is target for every gate-ABI codec bounds
// rejection (see ArgBoundsError).
var ErrArgBounds = gateabi.ErrArgBounds

// The serve runtime's lifecycle states: serving → draining → closed.
const (
	StateServing  = serve.StateServing
	StateDraining = serve.StateDraining
	StateClosed   = serve.StateClosed
)

// ErrOverloaded is the errors.Is target for every serve-runtime
// admission rejection (queue overflow, draining, closed).
var ErrOverloaded = serve.ErrOverloaded

// NewServeRuntime builds a serve runtime from an application descriptor
// on the given (typically root) sthread. The runtime owns what every
// pooled server otherwise re-implements: pool construction and teardown,
// a Serve accept loop, graceful Drain (in-flight connections complete,
// new admissions fail with ErrOverloaded), hot Resize with an auto mode
// tracking GOMAXPROCS, bounded-queue admission control, slot→CPU pin
// hints, and a unified Snapshot. httpd.PooledServer, sshd.PooledWedge,
// and pop3.PooledServer are all thin descriptors on this runtime.
func NewServeRuntime[T any](creator *Sthread, app ServeApp[T]) (*ServeRuntime[T], error) {
	return serve.New(creator, app)
}

// DefaultPoolSlots is the serve runtime's shared slot-count policy:
// twice the host parallelism, floored at two. Slot count should track
// available parallelism, not connection concurrency.
func DefaultPoolSlots() int { return serve.DefaultSlots() }

// NewGatePool builds a sharded recycled-callgate pool on the given
// (typically root) sthread, which creates every slot's argument tag and
// gates. Where a single recycled callgate trades §3.3 isolation for
// throughput, the pool partitions the trade: slots never share argument
// memory, principals shard onto slots by hash affinity with work stealing,
// and argument blocks are scrubbed whenever a slot passes between
// principals. See internal/gatepool for the scheduling policy.
func NewGatePool(creator *Sthread, cfg GatePoolConfig) (*GatePool, error) {
	return gatepool.New(creator, cfg)
}

// Permission constants.
const (
	// PermRead grants read access to a tag's segment.
	PermRead = vm.PermRead
	// PermWrite grants write access (always paired with read).
	PermWrite = vm.PermWrite
	// PermRW grants read-write access.
	PermRW = vm.PermRW
	// PermCOW grants a private copy-on-write view.
	PermCOW = vm.PermCOW

	// FDRead grants reading a descriptor.
	FDRead = kernel.FDRead
	// FDWrite grants writing a descriptor.
	FDWrite = kernel.FDWrite
	// FDRW grants both.
	FDRW = kernel.FDRW

	// NoTag is the zero tag: unreachable, unnameable memory.
	NoTag = tags.NoTag

	// InheritUID keeps the creator's user id in a policy.
	InheritUID = policy.InheritUID

	// PageSize is the simulated page size.
	PageSize = vm.PageSize
)

// ErrMemLimit is returned when an allocation would exceed an sthread's
// memory quota (SC.SetMemPages) — the resource-exhaustion mitigation
// extending the paper's §7 DoS discussion.
var ErrMemLimit = vm.ErrMemLimit

// ErrNoMem is returned by Smalloc when a tag's arena cannot grow further:
// the arena has reached the registry's per-tag cap (SetArenaCap). Below
// the cap, exhausting a segment maps another one instead of failing —
// which is what lets the recycled servers' shared argument tags scale
// past the former fixed 64 KiB arena (~60 in-flight connections).
var ErrNoMem = tags.ErrNoMem

// ErrPoolDraining is returned by GatePool.Acquire and GatePool.Resize
// while a Drain is in progress.
var ErrPoolDraining = gatepool.ErrDraining

// ErrPoolClosed is returned by GatePool operations after Close.
var ErrPoolClosed = gatepool.ErrClosed

// NewSC returns an empty security policy granting nothing.
func NewSC() *SC { return policy.New() }

// System is one simulated machine booted with one Wedge application: the
// kernel (filesystem, network, SELinux policy) plus the application's tag
// registry and pristine snapshot.
type System struct {
	// K is the simulated kernel, exposed for scenario setup (populating
	// the filesystem, installing SELinux rules, tapping the network).
	K *kernel.Kernel
	// App is the Wedge application instance.
	App *sthread.App
}

// NewSystem boots a fresh simulated machine and application.
func NewSystem() *System {
	k := kernel.New()
	return &System{K: k, App: sthread.Boot(k)}
}

// Premain runs initialization in the init task before the pristine
// snapshot is taken; memory written here is inherited (copy-on-write) by
// every sthread.
func (sys *System) Premain(fn func(init *Task)) error { return sys.App.Premain(fn) }

// BoundaryVar declares a statically initialized global in the page-aligned
// section for id, returning its address (the BOUNDARY_VAR macro). Globals
// declared this way are excluded from the pristine snapshot.
func (sys *System) BoundaryVar(id int, def []byte) (Addr, error) {
	return sys.App.BoundaryVar(id, def)
}

// BoundaryTag returns the tag covering the boundary section for id (the
// BOUNDARY_TAG macro).
func (sys *System) BoundaryTag(id int) (Tag, error) { return sys.App.BoundaryTag(id) }

// Main takes the pristine snapshot and runs fn as the root sthread,
// returning the fault if the root died on one.
func (sys *System) Main(fn func(main *Sthread)) error { return sys.App.Main(fn) }

// TagNew creates a fresh memory tag backed by a new segment in s's address
// space (tag_new). The segment is the first of a growable chain: smalloc
// maps further segments on exhaustion, up to the arena cap.
func (sys *System) TagNew(s *Sthread) (Tag, error) { return sys.App.Tags.TagNew(s.Task) }

// SetArenaCap bounds how large any one tag's arena may grow, in bytes
// (rounded up to whole segments; 0 restores the default of 4 MiB).
// Smalloc fails with ErrNoMem only once growth past the cap would be
// required, so the cap is the knob trading memory headroom against
// resistance to one tag absorbing the whole simulated memory.
func (sys *System) SetArenaCap(bytes int) { sys.App.Tags.SetMaxRegionSize(bytes) }

// ArenaGrows reports how many arena segments have been mapped beyond
// first segments — the mechanical counter behind the growable-arena
// design note (a nonzero value means some fixed-arena build would have
// returned ENOMEM and shed load). Safe to poll while serving.
func (sys *System) ArenaGrows() uint64 { return sys.App.Tags.GrowCount() }

// TagDelete retires a tag; its segment is scrubbed and cached for reuse
// (tag_delete).
func (sys *System) TagDelete(tag Tag) error { return sys.App.Tags.TagDelete(tag) }

// TagOf reports which tag's segment contains addr, or NoTag.
func (sys *System) TagOf(addr Addr) Tag { return sys.App.Tags.TagOf(addr) }

// Violations returns the accesses denied-by-policy that emulated sthreads
// performed (the emulation library of §3.4).
func (sys *System) Violations() []Violation { return sys.App.Violations() }

// Stats exposes primitive-operation counters.
func (sys *System) Stats() *sthread.Stats { return &sys.App.Stats }

// FS returns the simulated filesystem, for scenario setup.
func (sys *System) FS() *vfs.FS { return sys.K.FS }

// Net returns the simulated network, for clients and man-in-the-middle
// interposition in tests.
func (sys *System) Net() *netsim.Network { return sys.K.Net }

// SEPolicy returns the system-wide SELinux policy.
func (sys *System) SEPolicy() *selinux.Policy { return sys.K.Policy }
