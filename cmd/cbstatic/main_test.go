package main

import (
	"strings"
	"testing"

	"wedge/internal/crowbar"
)

// The -model flag feeds a hand-written (or wedgevet-emitted) model file
// into crowbar.ParseModel on top of a lifted skeleton. These tests pin
// the parsing contract cbstatic depends on.

func TestModelEmptyFile(t *testing.T) {
	prog := crowbar.NewStaticProgram()
	if err := crowbar.ParseModel(prog, strings.NewReader("")); err != nil {
		t.Fatalf("empty model rejected: %v", err)
	}
	if got := prog.Funcs(); len(got) != 0 {
		t.Fatalf("empty model declared functions: %v", got)
	}
	// Comment- and blank-only files are equally empty.
	if err := crowbar.ParseModel(prog, strings.NewReader("# only a comment\n\n\t\n")); err != nil {
		t.Fatalf("comment-only model rejected: %v", err)
	}
	if got := prog.Funcs(); len(got) != 0 {
		t.Fatalf("comment-only model declared functions: %v", got)
	}
}

func TestModelDuplicateDeclarations(t *testing.T) {
	const model = `call gate helper
call gate helper
read gate arg:s.op
read gate arg:s.op
write gate arg:s.out
write gate arg:s.out
`
	prog := crowbar.NewStaticProgram()
	if err := crowbar.ParseModel(prog, strings.NewReader(model)); err != nil {
		t.Fatalf("duplicate declarations rejected: %v", err)
	}
	f := prog.Func("gate")
	if got := f.Callees(); len(got) != 1 || got[0] != "helper" {
		t.Fatalf("duplicate call lines not collapsed: %v", got)
	}
	perms := prog.StaticAccessedBy("gate")
	if len(perms) != 2 {
		t.Fatalf("duplicate access lines not collapsed: %v", perms)
	}
	if perms["arg:s.op"].Mode() != "r" || perms["arg:s.out"].Mode() != "w" {
		t.Fatalf("modes wrong after duplicates: %v", perms)
	}
}

func TestModelMalformedLines(t *testing.T) {
	cases := map[string]string{
		"too few fields":    "read gate",
		"too many fields":   "write gate item extra",
		"unknown directive": "grant gate arg:s.op",
		"late error":        "call a b\nread b arg:s.x\nbogus",
	}
	for name, model := range cases {
		if err := crowbar.ParseModel(crowbar.NewStaticProgram(), strings.NewReader(model)); err == nil {
			t.Errorf("%s: ParseModel(%q) accepted", name, model)
		}
	}
}

// TestModelExtendsSkeleton mirrors the -model flow: declarations layer
// onto an existing program and the closure sees both.
func TestModelExtendsSkeleton(t *testing.T) {
	prog := crowbar.NewStaticProgram()
	prog.Func("app").Call("gate")
	prog.Func("gate").Read("arg:s.op")

	const extra = "call gate audit\nread audit global:key_material\n"
	if err := crowbar.ParseModel(prog, strings.NewReader(extra)); err != nil {
		t.Fatal(err)
	}
	perms := prog.StaticAccessedBy("app")
	if perms["arg:s.op"].Mode() != "r" {
		t.Fatalf("skeleton access lost: %v", perms)
	}
	if perms["global:key_material"].Mode() != "r" {
		t.Fatalf("model access not reachable through skeleton: %v", perms)
	}
}
