// Command cbstatic is the static-analysis counterpart to cbanalyze that §7
// of the paper sketches as future work. It lifts one or more cblog traces
// into a static call-graph skeleton, optionally extends the skeleton with
// a hand-written model of the paths no innocuous workload exercises, and
// reports the exhaustive permission superset for a procedure — alongside
// the over-grants relative to what the traces justify dynamically.
//
//	cbstatic -accessed-by ap_process_request trace1 [trace2 ...]
//	    static permission superset for the procedure, with the
//	    over-grant diff against the dynamic answer;
//
//	cbstatic -model extra.model -accessed-by proc trace...
//	    extend the lifted skeleton with declarations from a model file
//	    ("call f g" / "read f item" / "write f item" lines);
//
//	cbstatic -dump-model trace...
//	    print the lifted skeleton in model-file format, for hand editing.
//
// Traces are optional when -model is given: a model emitted by
// `wedgevet model` (derived statically from source) stands on its own,
// so `cbstatic -model derived.model -accessed-by proc` answers from the
// static superset alone, and any traces supplied are diffed against it.
//
// The output demonstrates the paper's §7 trade-off: static permissions
// never cause a protection violation, but they can include privileges for
// sensitive data an exploit could then leak; dynamic traces grant only
// what an innocuous run needs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wedge/internal/crowbar"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cbstatic:", err)
	os.Exit(1)
}

func main() {
	accessedBy := flag.String("accessed-by", "", "report the static permission superset for a procedure")
	modelPath := flag.String("model", "", "extend the lifted skeleton with a static model file")
	dumpModel := flag.Bool("dump-model", false, "print the lifted skeleton in model-file format")
	flag.Parse()

	if (*accessedBy == "") == !*dumpModel || (flag.NArg() == 0 && *modelPath == "") {
		flag.Usage()
		os.Exit(2)
	}

	var readers []io.Reader
	var closers []io.Closer
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}
	trace, err := crowbar.ReadTrace(io.MultiReader(readers...))
	for _, c := range closers {
		c.Close()
	}
	if err != nil {
		fail(err)
	}

	prog := crowbar.FromTrace(trace)
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fail(err)
		}
		err = crowbar.ParseModel(prog, f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}

	if *dumpModel {
		if err := crowbar.WriteModel(prog, os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(crowbar.StaticReport(prog, trace, *accessedBy))
}
