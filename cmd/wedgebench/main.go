// Command wedgebench regenerates the paper's evaluation (§6) from the
// command line:
//
//	wedgebench -fig 7          # primitive-creation latencies (Figure 7)
//	wedgebench -fig 8          # memory-call costs (Figure 8)
//	wedgebench -fig 9          # cb-log overhead (Figure 9)
//	wedgebench -table 2        # Apache throughput + OpenSSH latency
//	wedgebench -metrics        # §5 partitioning metrics + object census
//	wedgebench -ablations     # tag-cache and ephemeral-RSA ablations
//	wedgebench -pool           # gatepool scaling: variant throughput as
//	                           # concurrency grows 1..64
//	wedgebench -pool -app sshd # same ladder for the sshd study
//	wedgebench -pool -app pop3 # ... the pop3 study
//	wedgebench -pool -app privsep # ... and the privsep-vs-pooled-monitor
//	                           # contrast (§5.2)
//	wedgebench -pool -app dnsd # ... and the datagram resolver wedge
//	wedgebench -pool -app all  # the five-way pooled comparison
//	                           # (httpd/sshd/pop3/privsep/dnsd) in one
//	                           # command
//	wedgebench -soak           # principal-churn soak: 100k fresh
//	                           # principals per app through the pooled
//	                           # pop3 (stream) and dnsd (datagram)
//	                           # builds, with task/tag/conn-table leak
//	                           # accounting — any residue is a failure
//	wedgebench -all            # everything (the soak stays opt-in)
//
// Every row is printed next to the paper's reported value where one
// exists. -conns and -scp scale the Table 2 work for quick runs;
// -poolconns, -poolsize and -poollevels scale the gatepool experiment
// (-poolsize 0 sizes each pool to the host parallelism; -poollevels is a
// comma-separated concurrency ladder such as "1,8,64"). The serve-runtime
// knobs apply to the pooled variants: -queue bounds the admission queue,
// -autoslots makes slot counts track GOMAXPROCS at admission, and -drain
// runs a verified drain/undrain cycle on every pooled cell.
// -soakapp, -soakprincipals, -soakconc, -soakidle and -soaksilent scale
// the soak (bounded CI smokes pass a small -soakprincipals; the row
// names carry only the concurrency, so small and full runs compare
// against the same baseline).
//
// -json <file> additionally writes every measured result as JSON (with
// app/variant/concurrency identity fields on the pool rows, which carry
// three metrics each: "rps" throughput plus "p50"/"p99" session-latency
// percentiles) for trend tracking; "-json -" writes to stdout after the
// human-readable tables. cmd/benchdiff compares two such files and
// flags regressions beyond a noise threshold.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"wedge/internal/bench"
)

// usageError prints a message plus usage and exits with status 2, the
// conventional flag-misuse status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wedgebench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseLevels parses a comma-separated ladder of positive integers.
func parseLevels(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad level %q", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("level %d is not positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	fig := flag.Int("fig", 0, "regenerate figure 7, 8 or 9")
	table := flag.Int("table", 0, "regenerate table 2")
	metrics := flag.Bool("metrics", false, "partitioning metrics and object census")
	ablations := flag.Bool("ablations", false, "design-choice ablations (tag cache, ephemeral RSA)")
	pool := flag.Bool("pool", false, "gatepool scaling experiment (FigPool)")
	poolApp := flag.String("app", "httpd", "gatepool experiment application: httpd, sshd, pop3, privsep, dnsd, or all")
	poolSize := flag.Int("poolsize", 0, "gatepool slots (0 = host parallelism)")
	poolConns := flag.Int("poolconns", bench.FigPoolConns, "timed connections per FigPool cell")
	poolLevels := flag.String("poollevels", "", "comma-separated FigPool concurrency ladder (default 1,2,4,...,64)")
	poolVariants := flag.String("variants", "", "comma-separated FigPool variant filter (default: the app's full ladder)")
	clusterFlag := flag.Bool("cluster", false, "cluster cells: pop3+dnsd through a multi-runtime director, plus a rolling-drain cell; with -soak, additionally runs the cluster soak")
	runtimes := flag.Int("runtimes", 3, "cluster member count for -cluster (minimum 2)")
	clusterConns := flag.Int("clusterconns", 0, "timed sessions per cluster cell (0 = 3000)")
	soak := flag.Bool("soak", false, "principal-churn soak: fresh-principal sessions through the pooled apps with leak accounting")
	soakApp := flag.String("soakapp", "all", "soak workload: pop3, dnsd, or all")
	soakPrincipals := flag.Int("soakprincipals", 0, "simulated principal churns per soak app (0 = 100000)")
	soakConc := flag.Int("soakconc", 0, "concurrent soak drivers (0 = 32)")
	soakIdle := flag.Duration("soakidle", 0, "stream idle-reap window for the soak (0 = 25ms)")
	soakSilent := flag.Int("soaksilent", 0, "park every Nth pop3 soak session for the reaper (0 = 16, <0 disables)")
	queue := flag.Int("queue", 0, "pooled admission-queue bound (0 = unbounded, <0 = no waiting; rejected connections become client retries)")
	autoslots := flag.Bool("autoslots", false, "pooled slot counts track GOMAXPROCS at admission (supersedes -poolsize)")
	drain := flag.Bool("drain", false, "run a drain/undrain cycle on every pooled cell and verify quiescence")
	all := flag.Bool("all", false, "run every experiment")
	jsonOut := flag.String("json", "", "write machine-readable results (app, variant, concurrency, ops/s) to this file; \"-\" means stdout")
	iters := flag.Int("iters", 0, "iterations for figures 7/8 (0 = default)")
	conns := flag.Int("conns", bench.Table2Conns, "timed connections per Table 2 Apache cell")
	scp := flag.Int("scp", bench.ScpSize, "scp upload size in bytes for Table 2")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	flag.Parse()

	// Validate before any experiment runs: negative sizes and counts used
	// to flow into the benchmarks and misbehave downstream (a negative
	// -poolconns silently became the default; a negative -iters divided
	// by zero). Zero keeps its documented "use the default" meaning.
	if *poolSize < 0 {
		usageError("-poolsize must be >= 0 (got %d)", *poolSize)
	}
	if *poolConns < 0 {
		usageError("-poolconns must be >= 0 (got %d)", *poolConns)
	}
	if *iters < 0 {
		usageError("-iters must be >= 0 (got %d)", *iters)
	}
	if *conns < 0 {
		usageError("-conns must be >= 0 (got %d)", *conns)
	}
	if *scp < 0 {
		usageError("-scp must be >= 0 (got %d)", *scp)
	}
	if *fig != 0 && *fig != 7 && *fig != 8 && *fig != 9 {
		usageError("-fig must be 7, 8 or 9 (got %d)", *fig)
	}
	if *table != 0 && *table != 2 {
		usageError("-table must be 2 (got %d)", *table)
	}
	levels, err := parseLevels(*poolLevels)
	if err != nil {
		usageError("-poollevels: %v", err)
	}
	// "all" fans the pool experiment out over every application; any
	// other value must name one of them.
	poolApps := []string{*poolApp}
	if *poolApp == "all" {
		poolApps = bench.FigPoolApps
	} else if _, err := bench.FigPoolVariants(*poolApp); err != nil {
		usageError("-app: %v", err)
	}

	if *soakPrincipals < 0 {
		usageError("-soakprincipals must be >= 0 (got %d)", *soakPrincipals)
	}
	if *soakConc < 0 {
		usageError("-soakconc must be >= 0 (got %d)", *soakConc)
	}
	if *runtimes < 2 {
		usageError("-runtimes must be >= 2 (got %d)", *runtimes)
	}
	if *clusterConns < 0 {
		usageError("-clusterconns must be >= 0 (got %d)", *clusterConns)
	}

	if !*all && *fig == 0 && *table == 0 && !*metrics && !*ablations && !*pool && !*soak && !*clusterFlag {
		flag.Usage()
		os.Exit(2)
	}

	var results []bench.Result
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "wedgebench:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *all || *fig == 7 {
		r, err := bench.Fig7(*iters)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *fig == 8 {
		r, err := bench.Fig8(*iters)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *fig == 9 {
		rows, r, err := bench.Fig9()
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		fmt.Println("figure 9 detail (native / pin / crowbar, best of 3):")
		for _, row := range rows {
			fmt.Printf("  %-8s %10v %12v %12v   %5.1fx   %d records\n",
				row.Workload, row.Native, row.Pin, row.CBLog, row.Ratio, row.TraceRecords)
		}
		fmt.Println()
	}
	if *all || *table == 2 {
		r, err := bench.Table2(*conns, *scp)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *metrics {
		_, r, err := bench.Metrics()
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		r, err = bench.ObjectCensus()
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *pool {
		opts := bench.PoolOpts{Slots: *poolSize, Queue: *queue, AutoSlots: *autoslots, Drain: *drain}
		if *poolVariants != "" {
			opts.Variants = strings.Split(*poolVariants, ",")
		}
		for _, app := range poolApps {
			rows, r, err := bench.FigPoolApp(app, *poolConns, levels, opts)
			if err != nil {
				fail(err)
			}
			results = append(results, r...)
			order, _ := bench.FigPoolVariants(app)
			fmt.Printf("gatepool scaling detail, app=%s (req/s, p50/p99 session latency, by concurrent connections):\n", app)
			byVariant := map[string][]bench.PoolRow{}
			for _, row := range rows {
				byVariant[row.Variant] = append(byVariant[row.Variant], row)
			}
			for _, v := range order {
				fmt.Printf("  %-9s", v)
				for _, row := range byVariant[v] {
					fmt.Printf(" c=%-3d %7.0f (%v/%v)", row.Conns, row.RPS,
						row.P50.Round(time.Microsecond*10), row.P99.Round(time.Microsecond*10))
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
	if *all || *clusterFlag {
		rows, r, err := bench.Cluster(bench.ClusterOpts{
			Runtimes: *runtimes,
			Sessions: *clusterConns,
		})
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		fmt.Printf("cluster cells, n=%d runtimes (req/s, p50/p99 session latency):\n", *runtimes)
		for _, row := range rows {
			fmt.Printf("  %-13s c=%-3d %9.0f req/s (p50 %v / p99 %v)",
				row.Cell, row.Conc, row.Stats.RPS,
				row.Stats.P50.Round(10*time.Microsecond), row.Stats.P99.Round(10*time.Microsecond))
			if row.Cell == "rolling-drain" {
				fmt.Printf("  removes=%d handoffs=%d, zero client-visible errors", row.Removes, row.Handoffs)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *soak {
		rows, r, err := bench.Soak(bench.SoakOpts{
			App:         *soakApp,
			Principals:  *soakPrincipals,
			Conc:        *soakConc,
			Idle:        *soakIdle,
			SilentEvery: *soakSilent,
		})
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		fmt.Println("principal-churn soak (fresh principal per session; zero leaks verified):")
		for _, row := range rows {
			fmt.Printf("  %-5s %8d churns c=%-3d %9.0f req/s (p50 %v / p99 %v)  reaped=%d  peak conns=%d deepest shard=%d of %d\n",
				row.App, row.Principals, row.Conc, row.Stats.RPS,
				row.Stats.P50.Round(10*time.Microsecond), row.Stats.P99.Round(10*time.Microsecond),
				row.Reaped, row.PeakConns, row.PeakShard, row.Shards)
		}
		fmt.Println()
		if *clusterFlag {
			crows, cr, err := bench.ClusterSoak(bench.SoakOpts{
				Principals: *soakPrincipals,
				Conc:       *soakConc,
			}, *runtimes)
			if err != nil {
				fail(err)
			}
			results = append(results, cr...)
			fmt.Printf("cluster soak, n=%d runtimes (rolling drain mid-churn; zero leaks on every member verified):\n", *runtimes)
			for _, row := range crows {
				fmt.Printf("  %8d churns c=%-3d %9.0f req/s (p50 %v / p99 %v)  handoffs=%d\n",
					row.Principals, row.Conc, row.Stats.RPS,
					row.Stats.P50.Round(10*time.Microsecond), row.Stats.P99.Round(10*time.Microsecond),
					row.Reaped)
			}
			fmt.Println()
		}
	}
	if *all || *ablations {
		on, off, err := bench.AblationTagCache(*conns)
		if err != nil {
			fail(err)
		}
		static, eph, err := bench.AblationEphemeralRSA(*conns)
		if err != nil {
			fail(err)
		}
		results = append(results,
			bench.Result{Experiment: "ablations", Name: "apache wedge, tag cache on", Value: on, Unit: "req/s"},
			bench.Result{Experiment: "ablations", Name: "apache wedge, tag cache off", Value: off, Unit: "req/s"},
			bench.Result{Experiment: "ablations", Name: "monolithic ssl, static key", Value: static, Unit: "hs/s"},
			bench.Result{Experiment: "ablations", Name: "monolithic ssl, ephemeral keys", Value: eph, Unit: "hs/s"},
		)
	}

	fmt.Print(bench.Format(results))

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteJSON(out, results); err != nil {
			fail(err)
		}
	}
}
