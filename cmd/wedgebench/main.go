// Command wedgebench regenerates the paper's evaluation (§6) from the
// command line:
//
//	wedgebench -fig 7          # primitive-creation latencies (Figure 7)
//	wedgebench -fig 8          # memory-call costs (Figure 8)
//	wedgebench -fig 9          # cb-log overhead (Figure 9)
//	wedgebench -table 2        # Apache throughput + OpenSSH latency
//	wedgebench -metrics        # §5 partitioning metrics + object census
//	wedgebench -ablations      # tag-cache and ephemeral-RSA ablations
//	wedgebench -pool           # gatepool scaling: mono/simple/recycled/pooled
//	                           # throughput as concurrency grows 1..64
//	wedgebench -all            # everything
//
// Every row is printed next to the paper's reported value where one
// exists. -conns and -scp scale the Table 2 work for quick runs;
// -poolconns and -poolsize scale the gatepool experiment (-poolsize 0
// sizes each pool to the host parallelism).
package main

import (
	"flag"
	"fmt"
	"os"

	"wedge/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate figure 7, 8 or 9")
	table := flag.Int("table", 0, "regenerate table 2")
	metrics := flag.Bool("metrics", false, "partitioning metrics and object census")
	ablations := flag.Bool("ablations", false, "design-choice ablations (tag cache, ephemeral RSA)")
	pool := flag.Bool("pool", false, "gatepool scaling experiment (FigPool)")
	poolSize := flag.Int("poolsize", 0, "gatepool slots (0 = host parallelism)")
	poolConns := flag.Int("poolconns", bench.FigPoolConns, "timed connections per FigPool cell")
	all := flag.Bool("all", false, "run every experiment")
	iters := flag.Int("iters", 0, "iterations for figures 7/8 (0 = default)")
	conns := flag.Int("conns", bench.Table2Conns, "timed connections per Table 2 Apache cell")
	scp := flag.Int("scp", bench.ScpSize, "scp upload size in bytes for Table 2")
	flag.Parse()

	if !*all && *fig == 0 && *table == 0 && !*metrics && !*ablations && !*pool {
		flag.Usage()
		os.Exit(2)
	}

	var results []bench.Result
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "wedgebench:", err)
		os.Exit(1)
	}

	if *all || *fig == 7 {
		r, err := bench.Fig7(*iters)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *fig == 8 {
		r, err := bench.Fig8(*iters)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *fig == 9 {
		rows, r, err := bench.Fig9()
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		fmt.Println("figure 9 detail (native / pin / crowbar, best of 3):")
		for _, row := range rows {
			fmt.Printf("  %-8s %10v %12v %12v   %5.1fx   %d records\n",
				row.Workload, row.Native, row.Pin, row.CBLog, row.Ratio, row.TraceRecords)
		}
		fmt.Println()
	}
	if *all || *table == 2 {
		r, err := bench.Table2(*conns, *scp)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *metrics {
		_, r, err := bench.Metrics()
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		r, err = bench.ObjectCensus()
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
	}
	if *all || *pool {
		rows, r, err := bench.FigPool(*poolConns, nil, *poolSize)
		if err != nil {
			fail(err)
		}
		results = append(results, r...)
		fmt.Println("gatepool scaling detail (req/s by concurrent connections):")
		byVariant := map[string][]bench.PoolRow{}
		order := []string{"mono", "simple", "recycled", "pooled"}
		for _, row := range rows {
			byVariant[row.Variant] = append(byVariant[row.Variant], row)
		}
		for _, v := range order {
			fmt.Printf("  %-9s", v)
			for _, row := range byVariant[v] {
				fmt.Printf(" c=%-3d %7.0f", row.Conns, row.RPS)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *all || *ablations {
		on, off, err := bench.AblationTagCache(*conns)
		if err != nil {
			fail(err)
		}
		static, eph, err := bench.AblationEphemeralRSA(*conns)
		if err != nil {
			fail(err)
		}
		results = append(results,
			bench.Result{Experiment: "ablations", Name: "apache wedge, tag cache on", Value: on, Unit: "req/s"},
			bench.Result{Experiment: "ablations", Name: "apache wedge, tag cache off", Value: off, Unit: "req/s"},
			bench.Result{Experiment: "ablations", Name: "monolithic ssl, static key", Value: static, Unit: "hs/s"},
			bench.Result{Experiment: "ablations", Name: "monolithic ssl, ephemeral keys", Value: eph, Unit: "hs/s"},
		)
	}

	fmt.Print(bench.Format(results))
}
