// Command benchdiff compares two wedgebench -json result files and
// exits nonzero when the new run regressed beyond a noise threshold:
//
//	benchdiff -old BENCH_pool.json -new bench_run.json
//	benchdiff -old BENCH_pool.json -new bench_run.json -threshold 0.3
//	benchdiff -old BENCH_pool.json -new bench_run.json -write
//
// Rows are matched by (experiment, name). Rates are higher-better,
// latencies lower-better; rows the baseline has but the new run lacks
// are flagged too (a benchmark that silently shrinks reads as a pass),
// while rows only the new run has — a grown benchmark — are accepted
// silently. The threshold is a worseness ratio minus one: the default
// 0.5 flags a rate that fell or a latency that rose beyond 1.5x, and a
// CI job on a noisy shared runner wants something wider still (the
// repo's gate uses 3, i.e. 4x).
//
// Improvements beyond the same threshold are reported as informational
// "better by Nx" lines — a deliberate optimization should land visibly,
// not as a silent pass.
//
// -write re-baselines: after a comparison with no regressions, the -old
// file is rewritten from the run (matched rows take the run's values,
// run-only rows are appended, and rows carrying a "note" — recorded
// historical trajectory points, which the comparison also ignores — are
// preserved verbatim). A regressing comparison refuses to write.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wedge/internal/bench"
)

func readResults(path string) ([]bench.Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []bench.Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline wedgebench -json file")
	newPath := flag.String("new", "", "new-run wedgebench -json file")
	threshold := flag.Float64("threshold", 0.5, "noise threshold: worseness ratio minus one (0.5 = flag changes beyond 1.5x)")
	write := flag.Bool("write", false, "re-baseline: rewrite -old from the new run when no regressions are found (noted rows preserved)")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are both required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold must be >= 0 (got %g)\n", *threshold)
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	oldRs, err := readResults(*oldPath)
	if err != nil {
		fail(err)
	}
	newRs, err := readResults(*newPath)
	if err != nil {
		fail(err)
	}

	regs := bench.Compare(oldRs, newRs, *threshold)
	if imps := bench.Improvements(oldRs, newRs, *threshold); len(imps) > 0 {
		fmt.Printf("benchdiff: %d improvement(s) beyond %.0f%%:\n", len(imps), *threshold*100)
		for _, i := range imps {
			fmt.Println("  " + i.String())
		}
	}
	if len(regs) > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%%:\n", len(regs), *threshold*100)
		for _, r := range regs {
			fmt.Println("  " + r.String())
		}
		if *write {
			fmt.Fprintln(os.Stderr, "benchdiff: refusing to re-baseline onto a regressing run")
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d baseline rows, no regressions beyond %.0f%%\n",
		len(oldRs), *threshold*100)
	if *write {
		rebased := bench.Rebaseline(oldRs, newRs)
		f, err := os.Create(*oldPath)
		if err != nil {
			fail(err)
		}
		if err := bench.WriteJSON(f, rebased); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: re-baselined %s (%d rows)\n", *oldPath, len(rebased))
	}
}
