// Command benchdiff compares two wedgebench -json result files and
// exits nonzero when the new run regressed beyond a noise threshold:
//
//	benchdiff -old BENCH_pool.json -new bench_run.json
//	benchdiff -old BENCH_pool.json -new bench_run.json -threshold 0.3
//
// Rows are matched by (experiment, name). Rates are higher-better,
// latencies lower-better; rows the baseline has but the new run lacks
// are flagged too (a benchmark that silently shrinks reads as a pass),
// while rows only the new run has — a grown benchmark — are accepted
// silently. The threshold is a worseness ratio minus one: the default
// 0.5 flags a rate that fell or a latency that rose beyond 1.5x, and a
// CI job on a noisy shared runner wants something wider still (the
// repo's gate uses 3, i.e. 4x).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wedge/internal/bench"
)

func readResults(path string) ([]bench.Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []bench.Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline wedgebench -json file")
	newPath := flag.String("new", "", "new-run wedgebench -json file")
	threshold := flag.Float64("threshold", 0.5, "noise threshold: worseness ratio minus one (0.5 = flag changes beyond 1.5x)")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are both required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold must be >= 0 (got %g)\n", *threshold)
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	oldRs, err := readResults(*oldPath)
	if err != nil {
		fail(err)
	}
	newRs, err := readResults(*newPath)
	if err != nil {
		fail(err)
	}

	regs := bench.Compare(oldRs, newRs, *threshold)
	if len(regs) == 0 {
		fmt.Printf("benchdiff: %d baseline rows, no regressions beyond %.0f%%\n",
			len(oldRs), *threshold*100)
		return
	}
	fmt.Printf("benchdiff: %d regression(s) beyond %.0f%%:\n", len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	os.Exit(1)
}
