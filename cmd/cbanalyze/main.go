// Command cbanalyze is Crowbar's analysis tool (§3.4, §4.2). It reads one
// or more cblog trace files (concatenated traces aggregate, per §3.4) and
// answers the three query types the paper supports:
//
//	cbanalyze -accessed-by ap_process_request trace1 [trace2 ...]
//	    memory items the procedure and its call-graph descendants touch,
//	    with access modes — what an sthread policy must grant;
//
//	cbanalyze -users-of global:key_material trace...
//	    procedures that directly use the items — what belongs in a
//	    callgate;
//
//	cbanalyze -writes-by generate_key trace...
//	    where a sensitive-data generator writes — what the callgate must
//	    keep private.
//
//	cbanalyze -items trace...
//	    inventory of every distinct memory item in the trace;
//
//	cbanalyze -offsets-of global:server_conf trace...
//	    every offset accessed within one item, with modes and direct
//	    users — the §4.2 aid for identifying which struct member an
//	    access touches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wedge/internal/crowbar"
)

func main() {
	accessedBy := flag.String("accessed-by", "", "query 1: items accessed by a procedure and its descendants")
	usersOf := flag.String("users-of", "", "query 2: procedures using the given comma-separated item keys")
	writesBy := flag.String("writes-by", "", "query 3: items written by a procedure and its descendants")
	items := flag.Bool("items", false, "list all distinct memory items")
	offsetsOf := flag.String("offsets-of", "", "offsets accessed within the given item key")
	flag.Parse()

	queries := 0
	for _, set := range []bool{*accessedBy != "", *usersOf != "", *writesBy != "", *items, *offsetsOf != ""} {
		if set {
			queries++
		}
	}
	if queries != 1 || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var readers []io.Reader
	var closers []io.Closer
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cbanalyze:", err)
			os.Exit(1)
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}
	trace, err := crowbar.ReadTrace(io.MultiReader(readers...))
	for _, c := range closers {
		c.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbanalyze:", err)
		os.Exit(1)
	}

	switch {
	case *accessedBy != "":
		fmt.Print(trace.Report(*accessedBy))
	case *usersOf != "":
		keys := strings.Split(*usersOf, ",")
		users := trace.UsersOf(keys)
		fmt.Printf("procedures using %v (%d):\n", keys, len(users))
		for _, u := range users {
			fmt.Println(" ", u)
		}
	case *writesBy != "":
		written := trace.WritesBy(*writesBy)
		fmt.Printf("items written by %s and descendants (%d):\n", *writesBy, len(written))
		for _, it := range written {
			fmt.Println(" ", it)
		}
	case *items:
		all := trace.Items()
		fmt.Printf("distinct memory items (%d):\n", len(all))
		for _, it := range all {
			fmt.Printf("  %-40s key=%s\n", it.String(), it.Key)
		}
	case *offsetsOf != "":
		fmt.Print(trace.OffsetReport(*offsetsOf))
	}
}
