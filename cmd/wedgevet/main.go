// Command wedgevet is the multichecker driver for the wedgevet static
// analysis suite (internal/wedgevet): gateargs, gatecapture,
// scrubfootprint, and lockcallback, the compile-time counterparts of
// the repo's runtime isolation tests.
//
// It speaks the go vet unit-checker protocol, so the usual invocation
// reuses the toolchain's package graph and caching:
//
//	go build -o /tmp/wedgevet ./cmd/wedgevet
//	go vet -vettool=/tmp/wedgevet ./...
//
// A second mode emits the statically-derived per-gate permission sets
// in crowbar's model-file format (see cmd/cbstatic), closing the §7
// loop: the Go source's own static skeleton can be diffed against what
// dynamic traces justify:
//
//	wedgevet model -o wedgevet.model ./internal/httpd ./internal/sshd
package main

import (
	"os"

	"wedge/internal/wedgevet"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "model" {
		wedgevet.ModelMain(os.Args[2:])
		return
	}
	wedgevet.Main(wedgevet.Analyzers())
}
