// Command cblog is Crowbar's run-time instrumentation tool (§4.2) for the
// simulated workloads: it executes a named workload under full access
// logging and writes the trace as text, one record per access, to stdout
// or -o.
//
//	cblog -workload apache -o apache.trace
//	cblog -list
//
// The output is consumed by cbanalyze, mirroring the paper's two-phase
// cb-log / cb-analyze workflow. Multiple traces can be concatenated to
// aggregate workloads (§3.4).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"wedge/internal/crowbar"
	"wedge/internal/pin"
	"wedge/internal/spec"
)

func main() {
	workload := flag.String("workload", "", "workload to trace (see -list)")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available workloads")
	flag.Parse()

	if *list {
		for _, w := range spec.Extended() {
			fmt.Println(w.Name())
		}
		return
	}
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}

	w, err := spec.ByNameExtended(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cblog:", err)
		os.Exit(1)
	}
	p, err := pin.NewProc(pin.ModeCBLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cblog:", err)
		os.Exit(1)
	}
	logger := crowbar.NewLogger()
	p.Attach(logger)
	if _, err := w.Run(p); err != nil {
		fmt.Fprintln(os.Stderr, "cblog:", err)
		os.Exit(1)
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cblog:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	bw := bufio.NewWriter(f)
	defer bw.Flush()
	if err := logger.Trace().Serialize(bw); err != nil {
		fmt.Fprintln(os.Stderr, "cblog:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cblog: %d records, %d items (%s)\n",
		logger.Trace().Len(), len(logger.Trace().Items()), *workload)
}
