// Command schemadiff emits and compares the gate argument-block schemas
// of a wedge build. Two builds may exchange live sessions (cluster
// handoff) only when their schemas agree byte-for-byte; the runtime
// enforces that at admission with the schema hash, and this tool makes
// the same question answerable at review time, field by field:
//
//	schemadiff -emit schemas.json          # write this build's descriptors
//	schemadiff -old head~1.json -new head.json
//	schemadiff -old head~1.json -new head.json -strict
//
// The comparison reports every field-level change per app schema —
// removed, moved, or re-kinded fields and shrunk capacities are
// BREAKING (a handoff between the two builds would be refused, or
// worse, would reinterpret block bytes); added fields and grown
// capacities are compatible. Two failure classes:
//
//   - A stale hash — the layout changed but the hash did not — always
//     exits nonzero. That is the one lie the runtime's admission check
//     cannot catch, so the tool hard-fails it unconditionally.
//   - Breaking changes exit nonzero only under -strict. A breaking
//     change with a changed hash is safe (handoffs are refused, rolling
//     drains fall back to fresh sessions) but deserves a visible line
//     in CI output.
//
// An app present in -old but missing from -new is reported as removed
// (breaking); an app only -new has is listed as added.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"wedge/internal/dnsd"
	"wedge/internal/gateabi"
	"wedge/internal/httpd"
	"wedge/internal/pop3"
	"wedge/internal/sshd"
)

// schemas is the registry of every serve-app gate schema in this build.
// A new pooled application adds one line here and is covered by the CI
// compat gate from its first commit.
func schemas() []gateabi.Desc {
	all := []*gateabi.Schema{
		httpd.GateSchema(),
		sshd.GateSchema(),
		pop3.GateSchema(),
		dnsd.GateSchema(),
	}
	ds := make([]gateabi.Desc, 0, len(all))
	for _, s := range all {
		ds = append(ds, s.Desc())
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	return ds
}

func readDescs(path string) (map[string]gateabi.Desc, []string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var ds []gateabi.Desc
	if err := json.Unmarshal(b, &ds); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	by := make(map[string]gateabi.Desc, len(ds))
	var names []string
	for _, d := range ds {
		if _, dup := by[d.Name]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate schema %q", path, d.Name)
		}
		by[d.Name] = d
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return by, names, nil
}

func emit(path string) error {
	b, err := json.MarshalIndent(schemas(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	emitPath := flag.String("emit", "", "write this build's schema descriptors as JSON and exit")
	oldPath := flag.String("old", "", "baseline descriptors (a previous build's -emit output)")
	newPath := flag.String("new", "", "new-build descriptors; defaults to this build's own schemas")
	strict := flag.Bool("strict", false, "exit nonzero on breaking changes, not only on stale hashes")
	flag.Parse()

	if *emitPath != "" {
		if err := emit(*emitPath); err != nil {
			fmt.Fprintln(os.Stderr, "schemadiff:", err)
			os.Exit(1)
		}
		return
	}
	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "schemadiff: -emit or -old is required")
		flag.Usage()
		os.Exit(2)
	}

	olds, oldNames, err := readDescs(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schemadiff:", err)
		os.Exit(1)
	}
	var news map[string]gateabi.Desc
	if *newPath != "" {
		news, _, err = readDescs(*newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schemadiff:", err)
			os.Exit(1)
		}
	} else {
		news = make(map[string]gateabi.Desc)
		for _, d := range schemas() {
			news[d.Name] = d
		}
	}

	breaking, stale := 0, 0
	for _, name := range oldNames {
		o := olds[name]
		n, ok := news[name]
		if !ok {
			fmt.Printf("%s: BREAKING: schema removed\n", name)
			breaking++
			continue
		}
		if err := gateabi.VerifyDesc(o, n); err != nil {
			fmt.Printf("%s: STALE HASH: %v\n", name, err)
			stale++
			continue
		}
		changes := gateabi.CompareDesc(o, n)
		if len(changes) == 0 {
			fmt.Printf("%s: unchanged (hash %#x)\n", name, n.Hash)
			continue
		}
		verb := "compatible"
		if o.Hash != n.Hash {
			verb = "hash changed — handoffs between these builds will be refused"
		}
		fmt.Printf("%s: %d changes, %s\n", name, len(changes), verb)
		for _, c := range changes {
			tag := "  "
			if c.Breaking {
				tag = "  BREAKING: "
				breaking++
			}
			fmt.Printf("%s%s: %s\n", tag, c.Field, c.What)
		}
	}
	var added []string
	for name := range news {
		if _, ok := olds[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("%s: added (hash %#x)\n", name, news[name].Hash)
	}

	if stale > 0 {
		fmt.Fprintf(os.Stderr, "schemadiff: %d stale hash(es): a layout change reused its old hash\n", stale)
		os.Exit(1)
	}
	if breaking > 0 && *strict {
		fmt.Fprintf(os.Stderr, "schemadiff: %d breaking change(s)\n", breaking)
		os.Exit(1)
	}
}
