// The static-analysis workflow §7 sketches as future work, next to the
// trace-driven one: lift a cb-log trace into a static call-graph skeleton,
// declare the statically visible paths the innocuous workload never
// exercised, and compare the exhaustive static permission superset against
// what the dynamic trace justifies. The over-grant list is the paper's
// warning made concrete: "these permissions could well include privileges
// for sensitive data that could allow an exploit to leak that data."
//
//	go run ./examples/staticanalysis
package main

import (
	"fmt"
	"log"

	"wedge/internal/crowbar"
	"wedge/internal/pin"
	"wedge/internal/spec"
)

func main() {
	// Phase 1: one innocuous run under cb-log, as in examples/crowbar.
	p, err := pin.NewProc(pin.ModeCBLog)
	if err != nil {
		log.Fatal(err)
	}
	logger := crowbar.NewLogger()
	p.Attach(logger)
	w, err := spec.ByName("apache")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Run(p); err != nil {
		log.Fatal(err)
	}
	trace := logger.Trace()

	// Phase 2: lift the trace into the static skeleton it witnesses. Any
	// sound static model of the program contains at least these call
	// edges and accesses.
	prog := crowbar.FromTrace(trace)

	// Phase 3: declare what the source contains but the workload never
	// ran — the error and diagnostics paths a static analyzer cannot
	// prune. ap_die is reachable from the request handler on any error;
	// its config dump reads the private key material mod_ssl keeps in a
	// global.
	prog.Func("ap_process_request").Call("ap_die")
	prog.Func("ap_die").Call("ap_dump_config")
	prog.Func("ap_dump_config").
		Read("global:server_conf", "global:ssl_private_key").
		Write("global:log_state")

	// Phase 4: the comparison. The dynamic policy for the request worker
	// never includes the private key; the static superset must.
	fmt.Print(crowbar.StaticReport(prog, trace, "ap_process_request"))

	fmt.Println()
	fmt.Println("The dynamic (trace-justified) policy keeps ssl_private_key out of the")
	fmt.Println("worker compartment; the static superset grants it via the never-run")
	fmt.Println("ap_die path — exactly the §7 trade-off between never faulting and")
	fmt.Println("least privilege.")
}
