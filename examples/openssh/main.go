// The Wedge-partitioned login server (Figure 6, §5.2): password and S/Key
// logins, an scp upload landing in the user's (chrooted) home, and an
// injected exploit demonstrating that the worker can neither read the
// host key nor probe for usernames.
//
//	go run ./examples/openssh
package main

import (
	"fmt"
	"log"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sshd"
	"wedge/internal/sthread"
	"wedge/internal/vfs"
)

func main() {
	k := kernel.New()
	hostKey, err := minissl.GenerateServerKey()
	if err != nil {
		log.Fatal(err)
	}
	seed := []byte("alice-otp-seed")
	if err := sshd.SetupUsers(k, []sshd.User{
		{Name: "alice", Password: "sesame", UID: 1000, SKeySeed: seed, SKeyN: 50},
	}); err != nil {
		log.Fatal(err)
	}
	app := sthread.Boot(k)

	hooks := sshd.WedgeHooks{Worker: func(s *sthread.Sthread, ctx *sshd.WedgeConnContext) {
		if err := s.TryRead(ctx.HostKeyAddr, make([]byte, 16)); err != nil {
			fmt.Println("exploit in worker: reading host key ->", err)
		}
		fmt.Printf("exploit in worker: uid=%d (unprivileged until a gate promotes us)\n", s.Task.UID)
	}}

	const conns = 2
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := sshd.NewWedge(root, sshd.ServerConfig{HostKey: hostKey}, hooks)
			if err != nil {
				log.Fatal(err)
			}
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				log.Fatal(err)
			}
			close(ready)
			for i := 0; i < conns; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				if err := srv.ServeConn(c); err != nil {
					log.Println("server:", err)
				}
			}
		})
	}()
	<-ready

	// Session 1: password login plus an upload.
	conn, err := k.Net.Dial("sshd:22")
	if err != nil {
		log.Fatal(err)
	}
	c, err := sshd.NewClient(conn, &hostKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AuthPassword("alice", "sesame"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: logged in as uid %d\n", c.UID)
	if err := c.ScpPut("notes.txt", []byte("uploaded through the promoted worker")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("client: scp upload ok")
	c.Exit()
	conn.Close()

	// Session 2: S/Key one-time-password login.
	conn2, err := k.Net.Dial("sshd:22")
	if err != nil {
		log.Fatal(err)
	}
	c2, err := sshd.NewClient(conn2, &hostKey.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	chal, err := c2.SKeyChallenge("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: S/Key challenge n=%d\n", chal)
	if err := c2.SKeyRespond(sshd.SKeyChain(seed, chal-1)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("client: S/Key login ok (chain stepped down)")
	c2.Exit()
	conn2.Close()

	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// The upload really landed in alice's home, owned by alice.
	st, err := k.FS.StatPath(vfs.Cred{UID: 0}, k.FS.Root(), "/home/alice/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server fs: /home/alice/notes.txt exists, uid=%d, %d bytes\n", st.UID, st.Size)
}
