// The man-in-the-middle-resistant SSL web server (Figures 3-5, §5.1.2)
// serving a handful of requests, with the per-request primitive budget
// printed at the end.
//
//	go run ./examples/sslserver
package main

import (
	"fmt"
	"log"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/sthread"
)

func main() {
	k := kernel.New()
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		log.Fatal(err)
	}
	if err := httpd.SetupDocroot(k, "/var/www", 512); err != nil {
		log.Fatal(err)
	}
	app := sthread.Boot(k)

	const conns = 3
	ready := make(chan *httpd.MITM, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := httpd.NewMITM(root, "/var/www", priv, true, httpd.Hooks{})
			if err != nil {
				log.Fatal(err)
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				log.Fatal(err)
			}
			ready <- srv
			for i := 0; i < conns; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				if err := srv.ServeConn(c); err != nil {
					log.Println("server:", err)
				}
			}
		})
	}()
	srv := <-ready

	var session *minissl.ClientSession
	for i := 0; i < conns; i++ {
		conn, err := k.Net.Dial("apache:443")
		if err != nil {
			log.Fatal(err)
		}
		cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{
			ServerPub: &priv.PublicKey,
			Session:   session,
		})
		if err != nil {
			log.Fatal(err)
		}
		session = &cc.Session
		if _, err := cc.Write([]byte("GET /about.html")); err != nil {
			log.Fatal(err)
		}
		resp, err := cc.ReadRecord()
		if err != nil {
			log.Fatal(err)
		}
		kind := "full handshake"
		if cc.Resumed {
			kind = "resumed session"
		}
		fmt.Printf("request %d (%s): %.40q\n", i+1, kind, resp)
		conn.Close()
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nper-connection primitives over %d requests:\n", conns)
	fmt.Printf("  sthreads created:   %d (2 per request: ssl-handshake + client-handler)\n",
		srv.Stats.SthreadsHS.Load())
	fmt.Printf("  callgates invoked:  %d\n", srv.Stats.GateCalls.Load())
	fmt.Printf("  requests served:    %d\n", srv.Stats.Requests.Load())
}
