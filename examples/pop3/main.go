// The paper's motivating example (§2, Figure 1): a partitioned POP3
// server, a legitimate client session, and an injected exploit that tries
// — and fails — to read the password database from the client-handler
// compartment.
//
//	go run ./examples/pop3
package main

import (
	"bufio"
	"fmt"
	"log"
	"strings"

	"wedge/internal/kernel"
	"wedge/internal/pop3"
	"wedge/internal/sthread"
)

func main() {
	k := kernel.New()
	app := sthread.Boot(k)

	boxes := []pop3.Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: bob\nSubject: hi\n\nlunch tomorrow?"}},
	}

	// The exploit: runs inside the client handler with its privileges.
	hooks := pop3.Hooks{Handler: func(s *sthread.Sthread, ctx *pop3.ConnContext) {
		if err := s.TryRead(ctx.PwdAddr, make([]byte, 16)); err != nil {
			fmt.Println("exploit: reading password db ->", err)
		} else {
			fmt.Println("exploit: READ THE PASSWORD DB (partitioning failed!)")
		}
		if err := s.TryWrite(ctx.UIDAddr, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			fmt.Println("exploit: forging the uid cell ->", err)
		}
	}}

	done := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := pop3.New(root, boxes, hooks)
			if err != nil {
				log.Fatal(err)
			}
			l, err := root.Task.Listen("pop3:110")
			if err != nil {
				log.Fatal(err)
			}
			close(ready)
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if err := srv.ServeConn(conn); err != nil {
				log.Println("server:", err)
			}
		})
	}()
	<-ready

	// A legitimate client session.
	conn, err := k.Net.Dial("pop3:110")
	if err != nil {
		log.Fatal(err)
	}
	r := bufio.NewReader(conn)
	cmd := func(line string) string {
		if line != "" {
			conn.Write([]byte(line + "\r\n"))
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		return strings.TrimRight(resp, "\r\n")
	}
	fmt.Println("server:", cmd(""))
	fmt.Println("server:", cmd("USER alice"))
	fmt.Println("server:", cmd("PASS sesame"))
	fmt.Println("server:", cmd("STAT"))
	fmt.Println("server:", cmd("RETR 1"))
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			break
		}
		fmt.Println("  |", line)
	}
	fmt.Println("server:", cmd("QUIT"))

	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
