// Quickstart: the three Wedge primitives in one page.
//
// A secret is placed in tagged memory; an unprivileged sthread proves it
// cannot read the secret directly; a callgate computes with the secret on
// the sthread's behalf. This is the POP3 shape of §2 reduced to its core.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wedge"
)

func main() {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		// 1. Tagged memory: allocate the secret under its own tag.
		secretTag, err := sys.TagNew(main)
		if err != nil {
			log.Fatal(err)
		}
		secret, err := main.Smalloc(secretTag, 32)
		if err != nil {
			log.Fatal(err)
		}
		main.WriteString(secret, "hunter2: the master password")
		fmt.Printf("secret stored at %#x under tag %d\n", uint64(secret), secretTag)

		// 2. A callgate that may read the secret. The trusted argument —
		// the secret's address — is fixed at creation and tamper-proof.
		gateSC := wedge.NewSC()
		gateSC.MemAdd(secretTag, wedge.PermRead)
		var checkPassword wedge.GateFunc = func(g *wedge.Sthread, guess, trusted wedge.Addr) wedge.Addr {
			stored := g.ReadString(trusted, 64)
			supplied := g.ReadString(guess, 64)
			if supplied == stored[:len("hunter2")] {
				return 1
			}
			return 0
		}

		// 3. An sthread with default-deny privileges: a scratch tag for
		// its argument buffer, the gate, and nothing else.
		argTag, _ := sys.TagNew(main)
		workerSC := wedge.NewSC()
		workerSC.MemAdd(argTag, wedge.PermRW)
		workerSC.GateAdd(checkPassword, gateSC, secret, "check_password")
		spec := workerSC.Gates[0]

		worker, err := main.CreateNamed("worker", workerSC, func(w *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			// Direct access faults: the tag was never granted.
			if err := w.TryRead(secret, make([]byte, 8)); err != nil {
				fmt.Println("worker: direct read of the secret ->", err)
			}
			// But the gate answers the one question it is allowed to.
			// The caller passes extra permissions so the gate can read
			// the argument buffer — they must be a subset of the
			// caller's own (the paper's cgate(cb, perms, arg)).
			guess, _ := w.Smalloc(argTag, 64)
			perms := wedge.NewSC()
			perms.MemAdd(argTag, wedge.PermRead)

			w.WriteString(guess, "hunter2")
			ok, err := w.CallGate(spec, perms, guess)
			if err != nil {
				return 0
			}
			fmt.Println("worker: gate verdict for 'hunter2' ->", ok)

			w.WriteString(guess, "wrong-password")
			ok, _ = w.CallGate(spec, perms, guess)
			fmt.Println("worker: gate verdict for 'wrong-password' ->", ok)
			return 1
		}, 0)
		if err != nil {
			log.Fatal(err)
		}
		if ret, fault := main.Join(worker); fault != nil || ret != 1 {
			log.Fatalf("worker failed: ret=%d fault=%v", ret, fault)
		}
		fmt.Println("done: the secret never left its compartment")
	})
	if err != nil {
		log.Fatal(err)
	}
}
