// The datagram resolver wedge: the serve runtime's packet mode applied
// to a DNS-shaped UDP protocol. The zone-signing key lives behind a
// pooled resolve gate; the untrusted worker parses datagrams and a
// hostile packet draws an unsigned refusal without ever reaching the
// key. Flows — one per source address — are created on a client's
// first packet and reaped by the timer wheel when idle, through the
// same EndConn/scrub/teardown path a stream hangup takes.
//
//	go run ./examples/datagramresolver
package main

import (
	"fmt"
	"log"
	"time"

	"wedge/internal/dnsd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
)

func main() {
	k := kernel.New()
	key, err := minissl.GenerateServerKey()
	if err != nil {
		log.Fatal(err)
	}
	app := sthread.Boot(k)

	const idle = 150 * time.Millisecond

	type rig struct {
		srv *dnsd.Resolver
		pc  *netsim.PacketConn
	}
	ready := make(chan rig, 1)
	done := make(chan error, 1)
	quit := make(chan struct{})
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := dnsd.NewPooled(root, key, []dnsd.Record{
				{Name: "www.example", Value: "192.0.2.80"},
				{Name: "mail.example", Value: "192.0.2.25"},
			}, dnsd.Config{Slots: 2, IdleTimeout: idle})
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			pc, err := root.Task.ListenPacket("dns:53")
			if err != nil {
				log.Fatal(err)
			}
			go srv.ServePackets(pc) // the runtime-owned packet loop
			ready <- rig{srv, pc}
			<-quit
		})
	}()
	r := <-ready
	srv := r.srv

	dial := func() *netsim.PacketConn {
		pc, err := k.Net.DialPacket()
		if err != nil {
			log.Fatal(err)
		}
		return pc
	}

	// A signed answer in one round trip. The signature covers
	// (status, name, value), so a forged or tampered answer fails
	// verification against the zone's public key.
	cli := dial()
	a, err := dnsd.Query(cli, "dns:53", "www.example")
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Verify(&key.PublicKey); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("www.example -> %s (signature verifies)\n", a.Value)

	// Denials are signed too — an off-path attacker can no more forge
	// "that name does not exist" than a real answer.
	nx, err := dnsd.Query(cli, "dns:53", "nope.example")
	if err != nil {
		log.Fatal(err)
	}
	if err := nx.Verify(&key.PublicKey); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nope.example -> NXDOMAIN (denial signature verifies)\n")

	// A fragmented query shows a flow is stateful: the first half is
	// acked, the worker stays parked in its one invocation, and the
	// continuation completes the name. Both datagrams demux to the
	// same flow by source address.
	fq, err := dnsd.StartFrag(cli, "dns:53", "mail.example", 4)
	if err != nil {
		log.Fatal(err)
	}
	fa, err := fq.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mail.example (fragmented 4+8) -> %s\n", fa.Value)

	// A hostile datagram: length byte promising more name than the
	// packet carries. The worker's parser refuses it — FORMERR, no
	// signature — and the resolve gate (and the key behind it) is
	// never invoked for it.
	mal := dial()
	if _, err := mal.WriteTo([]byte{'Q', 0, 200, 'x'}, "dns:53"); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 2048)
	n, _, err := mal.ReadFrom(buf)
	if err != nil || n < 2 {
		log.Fatalf("refusal read: n=%d err=%v", n, err)
	}
	fmt.Printf("malformed query -> status=%d (FORMERR, unsigned; the signing gate never saw it)\n", buf[1])

	// Abandon both sockets and let the timer wheel reap the flows:
	// expiry closes each flow's descriptor, the parked worker's read
	// fails, and the full teardown path runs — EndConn, conn-table
	// delete, inter-principal scrub, lease release.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := srv.Snapshot()
		if s.Flows == 0 {
			fmt.Printf("all flows idle-expired: packets=%d served=%d expired=%d live-flows=%d\n",
				s.Packets, s.Served, s.Expired, s.Flows)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("flows never expired: %+v", s)
		}
		time.Sleep(idle / 4)
	}

	r.pc.Close() // ServePackets returns; the deferred Close tears down
	close(quit)
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
