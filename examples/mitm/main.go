// The §5.1.2 man-in-the-middle experiment, end to end, against both
// partitionings:
//
//  1. Against the Figure 2 (Simple) partitioning: the attacker interposes
//     passively on the wire and exploits the worker sthread, which holds
//     the session key by design. Combining the recording with the leaked
//     master secret recovers the victim's cleartext.
//
//  2. Against the Figures 3-5 (MITM) partitioning: the same attacker
//     exploits the handshake sthread, which holds nothing; the recording
//     stays ciphertext.
//
//     go run ./examples/mitm
package main

import (
	"fmt"
	"log"
	"time"

	"wedge/internal/attack"
	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
)

func runScenario(variant string) {
	fmt.Printf("---- attacking the %s partitioning ----\n", variant)
	k := kernel.New()
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		log.Fatal(err)
	}
	httpd.SetupDocroot(k, "/var/www", 256)

	// The attacker's opening move: a passive man in the middle recording
	// both directions.
	rec := attack.Passive(k.Net, "apache:443")

	// The exploit: injected into the network-facing compartment, it
	// scrapes whatever the compartment's own memory holds at the offset
	// where the Simple variant's gate deposits the master secret.
	leak := make(chan [minissl.MasterLen]byte, 1)
	hooks := httpd.Hooks{Worker: func(s *sthread.Sthread, c *httpd.ConnContext) {
		go func() {
			var got [minissl.MasterLen]byte
			buf := make([]byte, minissl.MasterLen)
			for i := 0; i < 20000; i++ {
				if err := s.TryRead(c.ArgAddr+112, buf); err != nil {
					break
				}
				copy(got[:], buf)
				var zero [minissl.MasterLen]byte
				if got != zero {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			leak <- got
		}()
	}}

	app := sthread.Boot(k)
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serve func(*netsim.Conn) error
			switch variant {
			case "simple":
				srv, err := httpd.NewSimple(root, "/var/www", priv, false, hooks)
				if err != nil {
					log.Fatal(err)
				}
				serve = srv.ServeConn
			case "mitm":
				srv, err := httpd.NewMITM(root, "/var/www", priv, false, hooks)
				if err != nil {
					log.Fatal(err)
				}
				serve = srv.ServeConn
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				log.Fatal(err)
			}
			close(ready)
			c, err := l.Accept()
			if err != nil {
				return
			}
			serve(c)
		})
	}()
	<-ready

	// The victim: a legitimate client whose traffic flows through the
	// attacker's relay.
	conn, err := k.Net.Dial("apache:443")
	if err != nil {
		log.Fatal(err)
	}
	cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
	if err != nil {
		log.Fatal(err)
	}
	cc.Write([]byte("GET /index.html"))
	cc.ReadRecord()
	conn.Close()
	<-done

	// The attack's offline phase.
	master := <-leak
	keys, err := rec.KeysFromLeakedMaster(master)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := attack.DecryptAppData(rec, keys)
	if err != nil {
		fmt.Println("attacker: recording did NOT decrypt —", err)
	} else {
		fmt.Printf("attacker: recovered victim cleartext: %q\n", plain[0])
	}
	fmt.Println()
}

func main() {
	runScenario("simple")
	runScenario("mitm")
}
