// The Wedge cluster: three pop3 runtimes behind a principal-sharded
// director, with a live session handed between them. A client
// authenticates once, then every member is removed from rotation in
// turn — a rolling drain. Whichever runtime holds the client's session
// exports it (block image plus app state, never key material), the
// next owner re-validates the record as hostile input and resumes the
// parked worker, and the client's next command answers as if nothing
// happened. The client never reconnects and never sees an error.
//
//	go run ./examples/cluster
package main

import (
	"bufio"
	"fmt"
	"log"
	"strings"

	"wedge/internal/cluster"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/pop3"
	"wedge/internal/sthread"
)

// member is one cluster member: a pooled pop3 runtime in its own
// kernel — one process-worth of compartments.
type member struct {
	name string
	srv  *pop3.PooledServer
	quit chan struct{}
	done chan error
}

func startMember(name string) *member {
	m := &member{name: name, quit: make(chan struct{}), done: make(chan error, 1)}
	boxes := []pop3.Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: bob\nSubject: hi\n\nlunch tomorrow?"}},
	}
	ready := make(chan *pop3.PooledServer, 1)
	app := sthread.Boot(kernel.New())
	go func() {
		m.done <- app.Main(func(root *sthread.Sthread) {
			srv, err := pop3.NewPooled(root, boxes, 2, pop3.Hooks{})
			if err != nil {
				log.Fatal(err)
			}
			ready <- srv
			<-m.quit
			srv.Close()
		})
	}()
	m.srv = <-ready
	return m
}

func main() {
	// Three members, a director, and a front-door network whose
	// listener the director serves. Members must agree on the gate
	// schema hash to join — a build whose argument-block layout
	// changed is refused at Add, not corrupted at handoff.
	var members []*member
	d := cluster.New()
	for i := 0; i < 3; i++ {
		m := startMember(fmt.Sprintf("m%d", i))
		members = append(members, m)
		if err := d.Add(cluster.Member{Name: m.name, Stream: m.srv}); err != nil {
			log.Fatal(err)
		}
	}
	front := netsim.New()
	fl, err := front.Listen("pop3:110")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan struct{})
	go func() { d.Serve(fl); close(served) }()

	// One client, one session, authenticated once.
	conn, err := front.Dial("pop3:110")
	if err != nil {
		log.Fatal(err)
	}
	r := bufio.NewReader(conn)
	cmd := func(line string) string {
		if line != "" {
			conn.Write([]byte(line + "\r\n"))
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			log.Fatalf("client saw an error (%s %v) — the drain was not invisible", line, err)
		}
		return strings.TrimRight(resp, "\r\n")
	}
	fmt.Println("greeting:", cmd(""))
	cmd("USER alice")
	fmt.Println("auth:    ", cmd("PASS sesame"))

	// The rolling drain: remove every member in turn. One of them owns
	// the session; Remove waits for the worker to park, exports the
	// session, and resumes it at the new owner. The same STAT keeps
	// answering on the same connection throughout.
	for _, m := range members {
		if err := d.Remove(m.name); err != nil {
			log.Fatal(err)
		}
		snap := m.srv.Snapshot()
		fmt.Printf("drained %s: inflight=%d handed=%d -> STAT %s\n",
			m.name, snap.Inflight, snap.Handed, cmd("STAT"))
		if err := d.Add(cluster.Member{Name: m.name, Stream: m.srv}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("quit:    ", cmd("QUIT"))
	conn.Close()

	st := d.Stats()
	fmt.Printf("director: %d admitted, %d live handoffs, %d failed, %d refused\n",
		st.Admitted, st.Handoffs, st.HandoffFailed, st.Refused)

	fl.Close()
	<-served
	for _, m := range members {
		close(m.quit)
		if err := <-m.done; err != nil {
			log.Fatal(err)
		}
	}
}
