// Forward secrecy with ephemeral per-connection RSA keys — the option
// §5.1.1 mentions and sets aside for cost. The demo records a full SSL
// session off the simulated wire, then plays an attacker who later
// obtains the server's long-lived private key (say, by exploiting an
// unpartitioned server):
//
//   - against the static-key server, the recorded session decrypts —
//     "holding this key would allow the attacker to recover the session
//     key for any eavesdropped session, past or future";
//
//   - against the ephemeral-key server, the same key recovers nothing —
//     at roughly an order of magnitude in handshake cost.
//
//     go run ./examples/forwardsecrecy
package main

import (
	"crypto/rsa"
	"fmt"
	"log"
	"time"

	"wedge/internal/attack"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
)

// runSession completes one recorded SSL session (handshake, one request,
// one response) against a server using the given options.
func runSession(opts minissl.ServerOpts) (*attack.Recording, *rsa.PrivateKey, time.Duration, error) {
	net := netsim.New()
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		return nil, nil, 0, err
	}
	rec := attack.Eavesdrop(net, "shop:443")

	l, err := net.Listen("shop:443")
	if err != nil {
		return nil, nil, 0, err
	}
	done := make(chan error, 1)
	go func() {
		defer l.Close()
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		srv, err := minissl.ServerHandshakeOpts(c, priv, nil, opts)
		if err != nil {
			done <- err
			return
		}
		if _, err := srv.ReadRecord(); err != nil {
			done <- err
			return
		}
		_, err = srv.Write([]byte("order confirmed"))
		done <- err
	}()

	start := time.Now()
	conn, err := net.Dial("shop:443")
	if err != nil {
		return nil, nil, 0, err
	}
	cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
	if err != nil {
		return nil, nil, 0, err
	}
	hs := time.Since(start)
	if _, err := cc.Write([]byte("card=4111-1111-1111-1111")); err != nil {
		return nil, nil, 0, err
	}
	if _, err := cc.ReadRecord(); err != nil {
		return nil, nil, 0, err
	}
	if err := <-done; err != nil {
		return nil, nil, 0, err
	}
	return rec, priv, hs, nil
}

func main() {
	for _, mode := range []struct {
		name string
		opts minissl.ServerOpts
	}{
		{"static long-lived key", minissl.ServerOpts{}},
		{"ephemeral per-connection keys", minissl.ServerOpts{Ephemeral: true}},
	} {
		rec, priv, hs, err := runSession(mode.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: handshake took %v\n", mode.name, hs)

		// The attacker, later: long-lived key in hand, recorded bytes on
		// disk.
		plaintexts, err := attack.OfflineDecrypt(rec, priv)
		if err != nil {
			fmt.Printf("  offline decryption failed (%v)\n  forward secrecy held\n\n", err)
			continue
		}
		fmt.Println("  offline decryption succeeded; recovered records:")
		for _, p := range plaintexts {
			fmt.Printf("    %q\n", p)
		}
		fmt.Println()
	}
}
