// The pooled privsep monitor: §5.2's "today's privilege-separated
// OpenSSH" comparison point run as the fourth serve.App. The monitor's
// narrow request interface (getpwnam / checkpass / sign / skeychal /
// skeyverify) is served by pooled recycled gates, the unprivileged slave
// is a confined recycled worker instead of a fork, and — unlike the
// fork-based monitor — an attacker probing for valid usernames learns
// nothing: unknown users draw the same reply shapes as real ones.
//
//	go run ./examples/pooledprivsep
package main

import (
	"fmt"
	"log"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sshd"
	"wedge/internal/sthread"
)

func main() {
	k := kernel.New()
	hostKey, err := minissl.GenerateServerKey()
	if err != nil {
		log.Fatal(err)
	}
	// alice gets an S/Key chain too, so the probe below compares a real
	// user's challenge path against a fabricated user's dummy path.
	if err := sshd.SetupUsers(k, []sshd.User{
		{Name: "alice", Password: "sesame", UID: 1000,
			SKeySeed: []byte("alice-seed"), SKeyN: 80},
	}); err != nil {
		log.Fatal(err)
	}
	app := sthread.Boot(k)

	type rig struct {
		srv *sshd.PooledPrivsep
		l   *netsim.Listener
	}
	ready := make(chan rig, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := sshd.NewPooledPrivsep(root,
				sshd.ServerConfig{HostKey: hostKey}, 2, sshd.WedgeHooks{})
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				log.Fatal(err)
			}
			ready <- rig{srv, l}
			srv.Serve(l) // the runtime-owned accept loop; returns at close
		})
	}()
	r := <-ready
	srv := r.srv

	dial := func() *sshd.Client {
		conn, err := k.Net.Dial("sshd:22")
		if err != nil {
			log.Fatal(err)
		}
		c, err := sshd.NewClient(conn, &hostKey.PublicKey)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// A legitimate login through the pooled monitor gates.
	c := dial()
	if err := c.AuthPassword("alice", "sesame"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice logged in, uid=%d (monitor messages so far: %d)\n",
		c.UID, srv.Stats.MonitorMsgs.Load())
	c.Exit()

	// The probe the fork-based monitor leaks to: ask for S/Key
	// challenges for a real and a fabricated user. The pooled monitor
	// answers both with a plausible challenge — usernames are not
	// enumerable.
	p := dial()
	nReal, err := p.SKeyChallenge("alice")
	if err != nil {
		log.Fatal(err)
	}
	p.SKeyRespond([]byte("wrong")) // fails, as it should
	nFake, err := p.SKeyChallenge("mallory-probe")
	if err != nil {
		log.Fatalf("probe distinguished users: %v", err)
	}
	p.SKeyRespond([]byte("wrong"))
	fmt.Printf("skey challenges: alice=%d, mallory-probe=%d — same shape, nothing learnable\n",
		nReal, nFake)
	p.Exit()

	// Drain to quiescence, then inspect the runtime's ledger.
	srv.Drain()
	s := srv.Snapshot()
	fmt.Printf("snapshot: app=%s state=%v served=%d failed=%d slots=%d monitor-msgs=%d logins=%d\n",
		s.App, s.State, s.Served, s.Failed, s.Pool.Slots,
		srv.Stats.MonitorMsgs.Load(), srv.Stats.Logins.Load())
	srv.Undrain()
	r.l.Close() // Serve returns, Main unwinds, the deferred Close tears down
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
