// The pooled SSL web server: the recycled-callgate design of Table 2
// scaled across a gatepool — per-slot argument tags, principal affinity,
// inter-principal scrubbing, zero sthread creations per connection. Serves
// a burst of concurrent connections from three distinct principals, then
// prints the scheduler's counters.
//
//	go run ./examples/pooledserver
package main

import (
	"fmt"
	"log"
	"sync"

	"wedge/internal/gatepool"
	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
)

func main() {
	k := kernel.New()
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		log.Fatal(err)
	}
	if err := httpd.SetupDocroot(k, "/var/www", 512); err != nil {
		log.Fatal(err)
	}
	app := sthread.Boot(k)

	const conns = 12
	ready := make(chan *httpd.PooledServer, 1)
	stats := make(chan gatepool.Stats, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := httpd.NewPooled(root, "/var/www", priv, true, 2, httpd.Hooks{})
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				log.Fatal(err)
			}
			ready <- srv
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				// Shard by a stable principal — here three simulated
				// users round-robin; in a real deployment this would be
				// the authenticated identity — so returning principals
				// get slot affinity and changing principals get scrubs.
				principal := fmt.Sprintf("user-%d", i%3)
				go func(c *netsim.Conn, principal string) {
					defer wg.Done()
					srv.ServeConnAs(c, principal)
				}(c, principal)
			}
			wg.Wait()
			stats <- srv.PoolStats()
		})
	}()
	srv := <-ready

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := k.Net.Dial("apache:443")
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := cc.Write([]byte("GET /index.html")); err != nil {
				log.Fatal(err)
			}
			if _, err := cc.ReadRecord(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	st := <-stats
	fmt.Printf("served %d connections over %d slots, 0 sthreads created per connection\n",
		srv.Stats.Requests.Load(), st.Slots)
	fmt.Printf("scheduler: %d acquires, %d affinity hits, %d steals, %d waits, %d scrubs\n",
		st.Acquires, st.AffinityHits, st.Steals, st.Waits, st.Scrubs)
	for _, g := range st.Gates {
		fmt.Printf("  slot %d: %d invocations, %d scrubs, %d steals (last principal %q)\n",
			g.Slot, g.Invocations, g.Scrubs, g.Steals, g.Principal)
	}
}
