// The Crowbar workflow (§3.4): trace a workload under cb-log, then answer
// the three cb-analyze query types a programmer uses to design a
// partitioning — what a compartment needs, what should go in a callgate,
// and what a sensitive generator touches.
//
//	go run ./examples/crowbar
package main

import (
	"fmt"
	"log"

	"wedge/internal/crowbar"
	"wedge/internal/pin"
	"wedge/internal/spec"
)

func main() {
	// Phase 1: cb-log. Run the Apache-shaped workload fully instrumented.
	p, err := pin.NewProc(pin.ModeCBLog)
	if err != nil {
		log.Fatal(err)
	}
	logger := crowbar.NewLogger()
	p.Attach(logger)
	w, err := spec.ByName("apache")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Run(p); err != nil {
		log.Fatal(err)
	}
	trace := logger.Trace()
	fmt.Printf("cb-log: %d access records, %d distinct memory items\n\n",
		trace.Len(), len(trace.Items()))

	// Phase 2: cb-analyze.
	// Query 1 — what must an sthread running ap_process_request be granted?
	fmt.Println(trace.Report("ap_process_request"))

	// Query 2 — who uses the server configuration? (Candidates for a
	// callgate protecting it.)
	users := trace.UsersOf([]string{"global:server_conf"})
	fmt.Printf("procedures using global:server_conf (%d):\n", len(users))
	for _, u := range users {
		fmt.Println("  ", u)
	}
	fmt.Println()

	// Query 3 — where does the response writer put data?
	written := trace.WritesBy("ap_send_response")
	fmt.Printf("items written by ap_send_response and descendants (%d):\n", len(written))
	for _, it := range written {
		fmt.Println("  ", it)
	}
}
