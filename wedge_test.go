package wedge_test

import (
	"errors"
	"testing"

	"wedge"
)

// TestPOP3Partitioning drives the paper's motivating example (§2, Figure 1)
// end to end through the public API: a client-handler sthread that parses
// untrusted input, a login callgate with access to the password database,
// and an e-mail retriever callgate keyed by the uid the login gate set.
func TestPOP3Partitioning(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		// Privileged data: passwords and mail, in their own tags.
		pwTag, _ := sys.TagNew(main)
		mailTag, _ := sys.TagNew(main)
		uidTag, _ := sys.TagNew(main)

		passwords, _ := main.Smalloc(pwTag, 64)
		main.WriteString(passwords, "alice:sesame")
		mail, _ := main.Smalloc(mailTag, 64)
		main.WriteString(mail, "alice-mail: hi!")
		uidCell, _ := main.Smalloc(uidTag, 8)
		main.Store64(uidCell, 0) // 0 = unauthenticated

		// Login gate: reads the password db, writes uid on success.
		loginSC := wedge.NewSC()
		loginSC.MemAdd(pwTag, wedge.PermRead)
		loginSC.MemAdd(uidTag, wedge.PermRW)
		var login wedge.GateFunc = func(g *wedge.Sthread, arg, trusted wedge.Addr) wedge.Addr {
			db := g.ReadString(trusted, 64)
			supplied := g.ReadString(arg, 64)
			if db == supplied {
				g.Store64(uidCell, 1001)
				return 1
			}
			return 0
		}

		// Retriever gate: reads mail for the uid in uidCell only.
		retrSC := wedge.NewSC()
		retrSC.MemAdd(mailTag, wedge.PermRead)
		retrSC.MemAdd(uidTag, wedge.PermRead)
		var retrieve wedge.GateFunc = func(g *wedge.Sthread, arg, trusted wedge.Addr) wedge.Addr {
			if g.Load64(uidCell) != 1001 {
				return 0 // not authenticated: no mail
			}
			return trusted // address of the mail, readable only by the gate... returned as a token
		}

		// The client handler: no direct access to any of the three tags.
		argTag, _ := sys.TagNew(main)
		chSC := wedge.NewSC()
		chSC.MemAdd(argTag, wedge.PermRW)
		chSC.GateAdd(login, loginSC, passwords, "login")
		chSC.GateAdd(retrieve, retrSC, mail, "retrieve")
		loginSpec, retrSpec := chSC.Gates[0], chSC.Gates[1]

		handler, err := main.CreateNamed("client-handler", chSC, func(s *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			// 1. Direct reads of privileged data must fault -> probe with TryRead.
			if err := s.TryRead(passwords, make([]byte, 1)); err == nil {
				return 100
			}
			if err := s.TryRead(mail, make([]byte, 1)); err == nil {
				return 101
			}
			// 2. Retrieval before login must fail.
			perms := wedge.NewSC()
			perms.MemAdd(argTag, wedge.PermRead)
			if ret, _ := s.CallGate(retrSpec, nil, 0); ret != 0 {
				return 102
			}
			// 3. Login with the wrong password must fail.
			arg, _ := s.Smalloc(argTag, 64)
			s.WriteString(arg, "alice:wrong")
			if ret, _ := s.CallGate(loginSpec, perms, arg); ret != 0 {
				return 103
			}
			// 4. Login with the right password succeeds.
			s.WriteString(arg, "alice:sesame")
			if ret, _ := s.CallGate(loginSpec, perms, arg); ret != 1 {
				return 104
			}
			// 5. Now retrieval is allowed.
			if ret, _ := s.CallGate(retrSpec, nil, 0); ret != mail {
				return 105
			}
			return 0
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(handler)
		if fault != nil {
			t.Fatalf("handler faulted: %v", fault)
		}
		if ret != 0 {
			t.Fatalf("handler failed check %d", ret)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExploitContainment: injected code in the client handler (arbitrary
// code running with the handler's privileges) cannot read the password
// database.
func TestExploitContainment(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		pwTag, _ := sys.TagNew(main)
		passwords, _ := main.Smalloc(pwTag, 64)
		main.WriteString(passwords, "root:toor")

		exploit := func(s *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			// The attacker's shellcode scans for the secret.
			buf := make([]byte, 64)
			s.Read(passwords, buf) // faults: tag never granted
			return 1
		}
		compromised, err := main.Create(wedge.NewSC(), exploit, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, fault := main.Join(compromised)
		if fault == nil {
			t.Fatal("exploit read the password database")
		}
		var f *wedge.Fault
		if !errors.As(fault, &f) {
			t.Fatalf("fault type %T", fault)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagReuseAcrossConnections exercises the per-client tag lifecycle the
// paper's servers use: create, serve, delete, reuse.
func TestTagReuseAcrossConnections(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		for conn := 0; conn < 50; conn++ {
			tag, err := sys.TagNew(main)
			if err != nil {
				t.Fatalf("conn %d: %v", conn, err)
			}
			buf, err := main.Smalloc(tag, 512)
			if err != nil {
				t.Fatalf("conn %d: %v", conn, err)
			}
			main.Write(buf, []byte("per-connection state"))
			if err := sys.TagDelete(tag); err != nil {
				t.Fatalf("conn %d: %v", conn, err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := wedge.NewSystem()
	if sys.FS() == nil || sys.Net() == nil || sys.SEPolicy() == nil || sys.Stats() == nil {
		t.Fatal("nil accessor")
	}
	err := sys.Main(func(main *wedge.Sthread) {
		tag, _ := sys.TagNew(main)
		a, _ := main.Smalloc(tag, 8)
		if sys.TagOf(a) != tag {
			t.Error("TagOf mismatch")
		}
		if len(sys.Violations()) != 0 {
			t.Error("spurious violations")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPremainAndBoundaryVars exercises the facade's pre-main
// initialization path: memory written in Premain is inherited
// copy-on-write by sthreads, while BOUNDARY_VAR globals are carved out of
// the snapshot and only reachable through their BOUNDARY_TAG grant
// (§3.2, §4.1).
func TestPremainAndBoundaryVars(t *testing.T) {
	sys := wedge.NewSystem()

	var inherited wedge.Addr
	err := sys.Premain(func(init *wedge.Task) {
		a, err := init.Mmap(wedge.PageSize, wedge.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		if err := init.AS.Write(a, []byte("loader state")); err != nil {
			t.Fatal(err)
		}
		inherited = a
	})
	if err != nil {
		t.Fatal(err)
	}

	secret, err := sys.BoundaryVar(7, []byte("statically initialized key"))
	if err != nil {
		t.Fatal(err)
	}
	boundaryTag, err := sys.BoundaryTag(7)
	if err != nil {
		t.Fatal(err)
	}

	err = sys.Main(func(main *wedge.Sthread) {
		// An empty-policy child still reads the pre-main snapshot...
		plain, err := main.Create(wedge.NewSC(), func(s *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			b := make([]byte, 12)
			if err := s.TryRead(inherited, b); err != nil || string(b) != "loader state" {
				return 0
			}
			// ...but not the boundary section.
			if err := s.TryRead(secret, make([]byte, 8)); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ret, fault := main.Join(plain); fault != nil || ret != 1 {
			t.Fatalf("snapshot/boundary child: ret=%d fault=%v", ret, fault)
		}

		// A child granted the boundary tag reads the static secret.
		sc := wedge.NewSC()
		if err := sc.MemAdd(boundaryTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		granted, err := main.Create(sc, func(s *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			b := make([]byte, 10)
			if err := s.TryRead(secret, b); err != nil || string(b) != "statically" {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ret, fault := main.Join(granted); fault != nil || ret != 1 {
			t.Fatalf("boundary-granted child: ret=%d fault=%v", ret, fault)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestArenaGrowthPublicAPI: the growable-arena surface — smalloc grows a
// tag's arena past its first segment, ErrNoMem appears only at the
// configured cap, and the growth counter is observable.
func TestArenaGrowthPublicAPI(t *testing.T) {
	sys := wedge.NewSystem()
	sys.SetArenaCap(128 * 1024) // two default segments
	err := sys.Main(func(main *wedge.Sthread) {
		tag, err := sys.TagNew(main)
		if err != nil {
			t.Fatal(err)
		}
		var allocErr error
		allocated := 0
		for i := 0; i < 1000; i++ {
			if _, allocErr = main.Smalloc(tag, 1024); allocErr != nil {
				break
			}
			allocated++
		}
		if !errors.Is(allocErr, wedge.ErrNoMem) {
			t.Fatalf("expected ErrNoMem at the arena cap, got %v after %d KiB", allocErr, allocated)
		}
		if allocated*1024 < 64*1024 {
			t.Fatalf("only %d KiB allocated: the arena never grew past its first segment", allocated)
		}
		if sys.ArenaGrows() == 0 {
			t.Fatal("ArenaGrows() = 0 after growth")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConnTablePublicAPI exercises the exported per-connection demux
// type serve-app authors use for gate-side session state: ids are
// issued monotonically, resolve until deleted, and never alias after
// removal.
func TestConnTablePublicAPI(t *testing.T) {
	var table wedge.ConnTable[string]
	a := table.Put("alice")
	b := table.Put("bob")
	if a == b {
		t.Fatalf("duplicate conn ids: %d", a)
	}
	if v, ok := table.Get(a); !ok || v != "alice" {
		t.Fatalf("Get(%d) = %q, %v", a, v, ok)
	}
	table.Delete(a)
	if _, ok := table.Get(a); ok {
		t.Fatalf("deleted id %d still resolves", a)
	}
	if c := table.Put("carol"); c == a || c == b {
		t.Fatalf("conn id reused after removal: %d", c)
	}
	// ErrPoolClosed is the errors.Is target for operations on a pool
	// after Close; it must remain distinct from the draining rejection.
	if errors.Is(wedge.ErrPoolClosed, wedge.ErrPoolDraining) {
		t.Fatal("ErrPoolClosed and ErrPoolDraining must be distinct")
	}
}

// TestGateSchemaPublicAPI: the typed gate ABI is reachable through the
// public surface — declare a schema, bind typed field handles, and serve
// a ServeApp whose argument I/O goes through them. Oversized payloads
// fail with the typed *ArgBoundsError (errors.Is ErrArgBounds), never a
// silent truncation.
func TestGateSchemaPublicAPI(t *testing.T) {
	b := wedge.NewGateSchema("demo")
	op := wedge.GateU64(b, "op")
	uid := wedge.GateWord[int](b, "uid")
	payload := wedge.GateBytes(b, "payload", 32)
	name := wedge.GateString(b, "name", 16)
	digest := wedge.GateFixed(b, "digest", 8)
	wedge.GateConnID(b)
	wedge.GateFD(b)
	schema := b.Seal()

	if !schema.HasDemux() {
		t.Fatal("schema with GateConnID+GateFD reports no demux")
	}
	if schema.Size()%8 != 0 {
		t.Fatalf("schema size %d not word-aligned", schema.Size())
	}

	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		tag, _ := sys.TagNew(main)
		arg, err := main.Smalloc(tag, schema.Size())
		if err != nil {
			t.Error(err)
			return
		}
		op.Store(main, arg, 7)
		uid.Store(main, arg, 1001)
		if err := payload.Store(main, arg, []byte("hello")); err != nil {
			t.Errorf("payload store: %v", err)
		}
		if err := name.Store(main, arg, "alice"); err != nil {
			t.Errorf("name store: %v", err)
		}
		digest.Write(main, arg, []byte("8bytes!!"))

		if got := op.Load(main, arg); got != 7 {
			t.Errorf("op = %d, want 7", got)
		}
		if got := uid.Load(main, arg); got != 1001 {
			t.Errorf("uid = %d, want 1001", got)
		}
		if got, err := payload.Load(main, arg); err != nil || string(got) != "hello" {
			t.Errorf("payload = %q, %v", got, err)
		}
		if got := name.Load(main, arg); got != "alice" {
			t.Errorf("name = %q", got)
		}

		// The typed bounds rejection is part of the public contract.
		var abe *wedge.ArgBoundsError
		err = payload.Store(main, arg, make([]byte, 33))
		if !errors.As(err, &abe) || !errors.Is(err, wedge.ErrArgBounds) {
			t.Errorf("oversized store error = %v, want *wedge.ArgBoundsError", err)
		}
		if got, err := payload.Load(main, arg); err != nil || string(got) != "hello" {
			t.Errorf("payload after rejected store = %q, %v (must be untouched)", got, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
