// Benchmark entry points: one testing.B benchmark per figure/table of the
// paper's evaluation, so `go test -bench=. -benchmem` regenerates every
// result. The bench harness in internal/bench holds the logic; these
// wrappers report per-operation costs in the standard Go benchmark format,
// and `go run ./cmd/wedgebench -all` prints the paper-style tables.
package wedge_test

import (
	"runtime"
	"testing"

	"wedge/internal/bench"
	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// bootBench boots an app with a realistic (1 MiB) pre-main image, like
// the Figure 7 harness.
func bootBench(b *testing.B) (*sthread.App, *sthread.Sthread) {
	b.Helper()
	app := sthread.Boot(kernel.New())
	app.Premain(func(init *kernel.Task) {
		base, err := init.Mmap(1<<20, vm.PermRW)
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < 1<<20; off += vm.PageSize {
			init.AS.Store64(base+vm.Addr(off), uint64(off))
		}
	})
	var root *sthread.Sthread
	ready := make(chan struct{})
	go app.Main(func(r *sthread.Sthread) {
		root = r
		close(ready)
		select {} // hold the root sthread open for the benchmark body
	})
	<-ready
	return app, root
}

// ---- Figure 7: primitive latencies -------------------------------------------

func BenchmarkFig7_Pthread(b *testing.B) {
	_, root := bootBench(b)
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := root.Task.SpawnPthread(func(*kernel.Task) {})
		if err != nil {
			b.Fatal(err)
		}
		t.Wait()
	}
}

func BenchmarkFig7_Recycled(b *testing.B) {
	_, root := bootBench(b)
	gate := sthread.GateFunc(func(*sthread.Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 })
	rec, err := root.NewRecycled("noop", policy.New(), gate, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Close()
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Call(root, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_Sthread(b *testing.B) {
	_, root := bootBench(b)
	body := func(*sthread.Sthread, vm.Addr) vm.Addr { return 0 }
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := root.Create(policy.New(), body, 0)
		if err != nil {
			b.Fatal(err)
		}
		root.Join(c)
	}
}

func BenchmarkFig7_Callgate(b *testing.B) {
	_, root := bootBench(b)
	gate := sthread.GateFunc(func(*sthread.Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 })
	sc := policy.New()
	sc.GateAdd(gate, policy.New(), 0, "noop")
	spec := sc.Gates[0]
	done := make(chan struct{})
	caller, err := root.Create(sc, func(s *sthread.Sthread, _ vm.Addr) vm.Addr {
		runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.CallGate(spec, nil, 0); err != nil {
				b.Error(err)
				break
			}
		}
		b.StopTimer()
		close(done)
		return 0
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	<-done
	root.Join(caller)
}

func BenchmarkFig7_Fork(b *testing.B) {
	_, root := bootBench(b)
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := root.Task.Fork(func(*kernel.Task) {})
		if err != nil {
			b.Fatal(err)
		}
		t.Wait()
	}
}

// ---- Figure 8: memory calls ----------------------------------------------------

func BenchmarkFig8_Malloc(b *testing.B) {
	_, root := bootBench(b)
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := root.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		root.Free(a)
	}
}

func BenchmarkFig8_TagNewWarm(b *testing.B) {
	_, root := bootBench(b)
	reg := root.App().Tags
	tg, err := reg.TagNew(root.Task)
	if err != nil {
		b.Fatal(err)
	}
	reg.TagDelete(tg)
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg, err := reg.TagNew(root.Task)
		if err != nil {
			b.Fatal(err)
		}
		reg.TagDelete(tg)
	}
}

func BenchmarkFig8_TagNewCold(b *testing.B) {
	_, root := bootBench(b)
	reg := tags.NewRegistry()
	reg.CacheEnabled = false
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg, err := reg.TagNew(root.Task)
		if err != nil {
			b.Fatal(err)
		}
		reg.TagDelete(tg)
	}
}

func BenchmarkFig8_Mmap(b *testing.B) {
	_, root := bootBench(b)
	runtime.GC() // shed GC-assist debt left by earlier benchmarks (Fig9 allocates ~1.2GB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := root.Task.Mmap(tags.DefaultRegionSize, vm.PermRW)
		if err != nil {
			b.Fatal(err)
		}
		root.Task.Munmap(a, tags.DefaultRegionSize)
	}
}

// ---- Figure 9: instrumentation overhead -------------------------------------------

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 2: end-to-end application performance -----------------------------------

func benchmarkApache(b *testing.B, variant string, cached bool) {
	b.Helper()
	rps, err := bench.Table2Apache(variant, cached, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rps, "req/s")
}

func BenchmarkTable2_ApacheVanillaCached(b *testing.B)  { benchmarkApache(b, "vanilla", true) }
func BenchmarkTable2_ApacheVanilla(b *testing.B)        { benchmarkApache(b, "vanilla", false) }
func BenchmarkTable2_ApacheWedgeCached(b *testing.B)    { benchmarkApache(b, "wedge", true) }
func BenchmarkTable2_ApacheWedge(b *testing.B)          { benchmarkApache(b, "wedge", false) }
func BenchmarkTable2_ApacheRecycledCached(b *testing.B) { benchmarkApache(b, "recycled", true) }
func BenchmarkTable2_ApacheRecycled(b *testing.B)       { benchmarkApache(b, "recycled", false) }

func benchmarkSSH(b *testing.B, variant string) {
	b.Helper()
	var loginTotal, scpTotal float64
	for i := 0; i < b.N; i++ {
		login, scp, err := bench.Table2SSH(variant, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		loginTotal += login.Seconds()
		scpTotal += scp.Seconds()
	}
	b.ReportMetric(loginTotal/float64(b.N)*1e3, "login-ms")
	b.ReportMetric(scpTotal/float64(b.N)*1e3, "scp-ms/MiB")
}

func BenchmarkTable2_SSHVanilla(b *testing.B) { benchmarkSSH(b, "vanilla") }
func BenchmarkTable2_SSHWedge(b *testing.B)   { benchmarkSSH(b, "wedge") }

// Ablation benches for the design choices DESIGN.md §7 calls out: the
// deleted-tag cache (§4.1, paper: +20% Apache throughput) and ephemeral
// per-connection RSA keys (§5.1.1, paper: "high computational cost").

func BenchmarkAblation_TagCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, off, err := bench.AblationTagCache(12)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(on, "cache-on-req/s")
		b.ReportMetric(off, "cache-off-req/s")
	}
}

func BenchmarkAblation_EphemeralRSA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		static, eph, err := bench.AblationEphemeralRSA(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(static, "static-hs/s")
		b.ReportMetric(eph, "ephemeral-hs/s")
	}
}
