package wedge_test

import (
	"testing"

	"wedge"
)

// vulnerableGate builds the PAM-style scratch bug the paper warns about
// twice: §3.3 ("should a recycled callgate be exploited, and called by
// sthreads acting on behalf of different principals, sensitive arguments
// from one caller may become visible to another") and §5.2's second
// lesson (the PAM library "kept sensitive information in scratch storage,
// and did not scrub that storage before returning").
//
// The gate mallocs scratch from its sthread-private heap, copies the
// sensitive argument into it on a processing call (op 0), and frees the
// scratch without scrubbing. An attacker-shaped call (op 1) mallocs the
// same-sized scratch and returns whatever stale bytes it holds.
func vulnerableGate(t *testing.T) wedge.GateFunc {
	return func(g *wedge.Sthread, arg, _ wedge.Addr) wedge.Addr {
		scratch, err := g.Malloc(16)
		if err != nil {
			t.Errorf("gate malloc: %v", err)
			return 0
		}
		var ret wedge.Addr
		switch g.Load64(arg) {
		case 0: // legitimate principal: process the secret
			g.Store64(scratch, g.Load64(arg+8))
			ret = 1
		default: // exploit payload: disclose stale scratch contents
			ret = wedge.Addr(g.Load64(scratch))
		}
		g.Free(scratch) // bug: no scrub before returning the block
		return ret
	}
}

const scratchSecret = 0x5EC12E7

// TestRecycledGateLeaksAcrossCallers: with a recycled callgate, the
// second caller's exploit recovers the first caller's secret from the
// gate sthread's persistent private heap — the isolation the paper says
// recycling trades away.
func TestRecycledGateLeaksAcrossCallers(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		argTag, err := sys.TagNew(main)
		if err != nil {
			t.Fatal(err)
		}
		argA, _ := main.Smalloc(argTag, 16)
		main.Store64(argA, 0)
		main.Store64(argA+8, scratchSecret)
		argB, _ := main.Smalloc(argTag, 16)
		main.Store64(argB, 1)

		gateSC := wedge.NewSC()
		if err := gateSC.MemAdd(argTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		r, err := main.NewRecycled("vuln", gateSC, vulnerableGate(t), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		// Principal A's legitimate call plants its secret in scratch.
		if ret, err := r.Call(main, argA); err != nil || ret != 1 {
			t.Fatalf("processing call = %#x, %v", ret, err)
		}
		// Principal B's exploit call reads the stale scratch.
		got, err := r.Call(main, argB)
		if err != nil {
			t.Fatal(err)
		}
		if got != scratchSecret {
			t.Fatalf("exploit recovered %#x; the recycled-gate leak (expected %#x) did not reproduce",
				got, scratchSecret)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPooledGateScrubsAcrossPrincipals: the gatepool counterpart of the
// recycled-gate leak. A gate that copies its sensitive argument into the
// slot's shared argument block leaves residue there; when the slot passes
// to a different principal, the pool scrubs the block, so the second
// principal's probe reads zeroes. The same pool with scrubbing disabled
// (the ablation toggle) reproduces the §3.3 exposure — proving it is the
// scrub, not luck, that closes the leak.
func TestPooledGateScrubsAcrossPrincipals(t *testing.T) {
	for _, noScrub := range []bool{false, true} {
		name := "scrubbed"
		if noScrub {
			name = "noscrub"
		}
		t.Run(name, func(t *testing.T) {
			sys := wedge.NewSystem()
			err := sys.Main(func(main *wedge.Sthread) {
				// The gate copies the word at arg+0 into the scratch slot
				// arg+8 of its argument block and does not scrub it —
				// PAM's bug (§5.2), recreated in shared argument memory.
				gate := func(g *wedge.Sthread, arg, _ wedge.Addr) wedge.Addr {
					g.Store64(arg+8, g.Load64(arg))
					return 1
				}
				pool, err := wedge.NewGatePool(main, wedge.GatePoolConfig{
					Name:    "leaky",
					Slots:   1,
					Gates:   []wedge.GateDef{{Name: "process", Entry: gate}},
					NoScrub: noScrub,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()

				// Principal A processes its secret through the gate.
				a, err := pool.Acquire("principal-a")
				if err != nil {
					t.Fatal(err)
				}
				main.Store64(a.Arg, scratchSecret)
				if ret, err := a.Call("process", main, a.Arg); err != nil || ret != 1 {
					t.Fatalf("processing call = %v, %v", ret, err)
				}
				a.Release()

				// Principal B leases the same slot and scans the block.
				b, err := pool.Acquire("principal-b")
				if err != nil {
					t.Fatal(err)
				}
				defer b.Release()
				got := main.Load64(b.Arg + 8)
				if noScrub && got != scratchSecret {
					t.Fatalf("without scrubbing the residue should leak; read %#x", got)
				}
				if !noScrub && got != 0 {
					t.Fatalf("scrubbed slot leaked %#x across principals", got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStandardGateIsolatesCallers: the identical vulnerable gate code,
// run as a standard (non-recycled) callgate, leaks nothing: each
// invocation is a fresh sthread whose private heap starts from the
// pristine pre-main snapshot, so the stale-scratch read sees zeros.
func TestStandardGateIsolatesCallers(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		argTag, err := sys.TagNew(main)
		if err != nil {
			t.Fatal(err)
		}
		argA, _ := main.Smalloc(argTag, 16)
		main.Store64(argA, 0)
		main.Store64(argA+8, scratchSecret)
		argB, _ := main.Smalloc(argTag, 16)
		main.Store64(argB, 1)

		gateSC := wedge.NewSC()
		if err := gateSC.MemAdd(argTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		workerSC := wedge.NewSC()
		if err := workerSC.MemAdd(argTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		workerSC.GateAdd(vulnerableGate(t), gateSC, 0, "vuln")
		spec := workerSC.Gates[0]

		worker, err := main.Create(workerSC, func(w *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			if ret, err := w.CallGate(spec, nil, argA); err != nil || ret != 1 {
				return 0xBAD
			}
			got, err := w.CallGate(spec, nil, argB)
			if err != nil {
				return 0xBAD
			}
			return got
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(worker)
		if fault != nil {
			t.Fatal(fault)
		}
		if ret == 0xBAD {
			t.Fatal("gate invocations failed")
		}
		if ret == scratchSecret {
			t.Fatal("standard callgate leaked scratch across invocations")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
