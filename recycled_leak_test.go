package wedge_test

import (
	"testing"

	"wedge"
)

// vulnerableGate builds the PAM-style scratch bug the paper warns about
// twice: §3.3 ("should a recycled callgate be exploited, and called by
// sthreads acting on behalf of different principals, sensitive arguments
// from one caller may become visible to another") and §5.2's second
// lesson (the PAM library "kept sensitive information in scratch storage,
// and did not scrub that storage before returning").
//
// The gate mallocs scratch from its sthread-private heap, copies the
// sensitive argument into it on a processing call (op 0), and frees the
// scratch without scrubbing. An attacker-shaped call (op 1) mallocs the
// same-sized scratch and returns whatever stale bytes it holds.
func vulnerableGate(t *testing.T) wedge.GateFunc {
	return func(g *wedge.Sthread, arg, _ wedge.Addr) wedge.Addr {
		scratch, err := g.Malloc(16)
		if err != nil {
			t.Errorf("gate malloc: %v", err)
			return 0
		}
		var ret wedge.Addr
		switch g.Load64(arg) {
		case 0: // legitimate principal: process the secret
			g.Store64(scratch, g.Load64(arg+8))
			ret = 1
		default: // exploit payload: disclose stale scratch contents
			ret = wedge.Addr(g.Load64(scratch))
		}
		g.Free(scratch) // bug: no scrub before returning the block
		return ret
	}
}

const scratchSecret = 0x5EC12E7

// TestRecycledGateLeaksAcrossCallers: with a recycled callgate, the
// second caller's exploit recovers the first caller's secret from the
// gate sthread's persistent private heap — the isolation the paper says
// recycling trades away.
func TestRecycledGateLeaksAcrossCallers(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		argTag, err := sys.TagNew(main)
		if err != nil {
			t.Fatal(err)
		}
		argA, _ := main.Smalloc(argTag, 16)
		main.Store64(argA, 0)
		main.Store64(argA+8, scratchSecret)
		argB, _ := main.Smalloc(argTag, 16)
		main.Store64(argB, 1)

		gateSC := wedge.NewSC()
		if err := gateSC.MemAdd(argTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		r, err := main.NewRecycled("vuln", gateSC, vulnerableGate(t), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		// Principal A's legitimate call plants its secret in scratch.
		if ret, err := r.Call(main, argA); err != nil || ret != 1 {
			t.Fatalf("processing call = %#x, %v", ret, err)
		}
		// Principal B's exploit call reads the stale scratch.
		got, err := r.Call(main, argB)
		if err != nil {
			t.Fatal(err)
		}
		if got != scratchSecret {
			t.Fatalf("exploit recovered %#x; the recycled-gate leak (expected %#x) did not reproduce",
				got, scratchSecret)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStandardGateIsolatesCallers: the identical vulnerable gate code,
// run as a standard (non-recycled) callgate, leaks nothing: each
// invocation is a fresh sthread whose private heap starts from the
// pristine pre-main snapshot, so the stale-scratch read sees zeros.
func TestStandardGateIsolatesCallers(t *testing.T) {
	sys := wedge.NewSystem()
	err := sys.Main(func(main *wedge.Sthread) {
		argTag, err := sys.TagNew(main)
		if err != nil {
			t.Fatal(err)
		}
		argA, _ := main.Smalloc(argTag, 16)
		main.Store64(argA, 0)
		main.Store64(argA+8, scratchSecret)
		argB, _ := main.Smalloc(argTag, 16)
		main.Store64(argB, 1)

		gateSC := wedge.NewSC()
		if err := gateSC.MemAdd(argTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		workerSC := wedge.NewSC()
		if err := workerSC.MemAdd(argTag, wedge.PermRead); err != nil {
			t.Fatal(err)
		}
		workerSC.GateAdd(vulnerableGate(t), gateSC, 0, "vuln")
		spec := workerSC.Gates[0]

		worker, err := main.Create(workerSC, func(w *wedge.Sthread, _ wedge.Addr) wedge.Addr {
			if ret, err := w.CallGate(spec, nil, argA); err != nil || ret != 1 {
				return 0xBAD
			}
			got, err := w.CallGate(spec, nil, argB)
			if err != nil {
				return 0xBAD
			}
			return got
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := main.Join(worker)
		if fault != nil {
			t.Fatal(fault)
		}
		if ret == 0xBAD {
			t.Fatal("gate invocations failed")
		}
		if ret == scratchSecret {
			t.Fatal("standard callgate leaked scratch across invocations")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
