package crowbar

import (
	"bytes"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	l, _ := runSample(t)
	orig := l.Trace()

	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("records = %d, want %d", got.Len(), orig.Len())
	}
	if len(got.Items()) != len(orig.Items()) {
		t.Fatalf("items = %d, want %d", len(got.Items()), len(orig.Items()))
	}
	// The queries must answer identically.
	for _, proc := range []string{"main", "handle_request", "parse", "generate_key"} {
		a := orig.AccessedBy(proc)
		b := got.AccessedBy(proc)
		if len(a) != len(b) {
			t.Fatalf("AccessedBy(%s): %d vs %d items", proc, len(a), len(b))
		}
		for k, acc := range a {
			if b[k] != acc {
				t.Fatalf("AccessedBy(%s)[%s] = %v vs %v", proc, k, b[k], acc)
			}
		}
	}
	// Alloc sites survive.
	acc := got.AccessedBy("handle_request")
	for k := range acc {
		it, ok := got.Item(k)
		if !ok {
			t.Fatalf("item %s missing", k)
		}
		if it.Kind.String() == "heap" && len(it.AllocSite) == 0 {
			t.Fatalf("heap item %s lost its alloc site", k)
		}
	}
}

// TestSerializeConcatAggregates: concatenated trace files aggregate, the
// §3.4 multi-workload workflow.
func TestSerializeConcatAggregates(t *testing.T) {
	l1, _ := runSample(t)
	l2, _ := runSample(t)

	var buf bytes.Buffer
	if err := l1.Trace().Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l2.Trace().Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	agg, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != l1.Trace().Len()+l2.Trace().Len() {
		t.Fatalf("aggregated records = %d, want %d",
			agg.Len(), l1.Trace().Len()+l2.Trace().Len())
	}
	// Same item universe (the runs are identical), so item count must not
	// double.
	if len(agg.Items()) != len(l1.Trace().Items()) {
		t.Fatalf("aggregated items = %d, want %d", len(agg.Items()), len(l1.Trace().Items()))
	}
}

func TestReadTraceMalformed(t *testing.T) {
	for _, bad := range []string{
		"item\t1\tonly-three",
		"rec\t0\t0\tr\t0", // rec without item/bt declared
		"bogus\tline",
		"rec\tnot-a-number\t0\tr\t0",
	} {
		if _, err := ReadTrace(bytes.NewBufferString(bad + "\n")); err == nil {
			t.Fatalf("malformed input %q accepted", bad)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	for _, s := range []string{"plain", "with\ttab", "with\nnewline", "back\\slash", "m\\t\\nix"} {
		if got := unescape(escape(s)); got != s {
			t.Fatalf("escape roundtrip %q -> %q", s, got)
		}
	}
}
