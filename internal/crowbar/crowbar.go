// Package crowbar implements Wedge's partitioning-assistance tools (§3.4,
// §4.2): cb-log, which records which memory items are used by which code
// with what modes of access and where each item was allocated; and
// cb-analyze, which answers the three query types the paper supports:
//
//  1. Given a procedure, what memory items do it and all its descendants
//     in the execution call graph access, and with what modes?
//  2. Given a list of data items, which procedures use any of them?
//  3. Given a procedure known to generate sensitive data, where do it and
//     its descendants write?
//
// Traces from multiple innocuous workloads can be aggregated (§3.4), and
// violations logged by the sthread emulation library can be imported so
// that the same queries work over them.
package crowbar

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wedge/internal/pin"
	"wedge/internal/vm"
)

// Item is one distinct memory item: a global variable, a function's stack
// frame, or a heap allocation site. Heap items are identified by the full
// backtrace of the original malloc (§4.2), so two allocations from the
// same call path are the same item — which is exactly the granularity at
// which a programmer converts malloc calls to smalloc.
type Item struct {
	Kind pin.SegKind
	// Name is the cb-log display name: variable, frame function, or
	// allocation-site summary.
	Name string
	// AllocSite is the original allocation backtrace for heap items.
	AllocSite []pin.Frame
	// Key uniquely identifies the item within a trace.
	Key string
}

// String renders the item as cb-analyze reports it.
func (it *Item) String() string {
	return fmt.Sprintf("%s %s", it.Kind, it.Name)
}

// Access summarizes the modes with which something touched an item.
type Access struct {
	Read  bool
	Write bool
}

// Mode renders "r", "w" or "rw".
func (a Access) Mode() string {
	switch {
	case a.Read && a.Write:
		return "rw"
	case a.Write:
		return "w"
	case a.Read:
		return "r"
	}
	return "-"
}

// record is one logged access, with interned item and backtrace ids.
type record struct {
	item   int32
	bt     int32
	access vm.Access
	offset uint32
}

// Trace is the queryable result of one or more cb-log runs.
type Trace struct {
	mu sync.Mutex

	items   []*Item
	itemIdx map[string]int32

	backtraces []string // interned "f1<f2<f3" paths, innermost last
	btIdx      map[string]int32

	records []record
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{
		itemIdx: make(map[string]int32),
		btIdx:   make(map[string]int32),
	}
}

// Len returns the number of access records.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}

// Items returns all distinct items seen, sorted by key for stable output.
func (t *Trace) Items() []*Item {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]*Item(nil), t.items...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ItemCount returns how many distinct items of each kind the trace saw —
// the numbers behind the paper's "222 heap objects and 389 globals".
func (t *Trace) ItemCount() map[pin.SegKind]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[pin.SegKind]int)
	for _, it := range t.items {
		out[it.Kind]++
	}
	return out
}

func (t *Trace) internItem(it *Item) int32 {
	if id, ok := t.itemIdx[it.Key]; ok {
		return id
	}
	id := int32(len(t.items))
	t.items = append(t.items, it)
	t.itemIdx[it.Key] = id
	return id
}

func btKey(bt []pin.Frame) string {
	var b strings.Builder
	for i, f := range bt {
		if i > 0 {
			b.WriteByte('<')
		}
		b.WriteString(f.Func)
	}
	return b.String()
}

func (t *Trace) internBT(bt []pin.Frame) int32 {
	k := btKey(bt)
	if id, ok := t.btIdx[k]; ok {
		return id
	}
	id := int32(len(t.backtraces))
	t.backtraces = append(t.backtraces, k)
	t.btIdx[k] = id
	return id
}

// add appends one record.
func (t *Trace) add(it *Item, bt []pin.Frame, access vm.Access, offset uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.records = append(t.records, record{
		item:   t.internItem(it),
		bt:     t.internBT(bt),
		access: access,
		offset: uint32(offset),
	})
}

// Merge folds other into t (trace aggregation across workloads, §3.4).
func (t *Trace) Merge(other *Trace) {
	other.mu.Lock()
	defer other.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range other.records {
		it := other.items[r.item]
		id := t.internItem(it)
		bt := other.backtraces[r.bt]
		btID, ok := t.btIdx[bt]
		if !ok {
			btID = int32(len(t.backtraces))
			t.backtraces = append(t.backtraces, bt)
			t.btIdx[bt] = btID
		}
		t.records = append(t.records, record{item: id, bt: btID, access: r.access, offset: r.offset})
	}
}

// ---- cb-analyze queries -------------------------------------------------------

// btContains reports whether fn appears anywhere in the interned path.
func btContains(path, fn string) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '<')
		var head string
		if i < 0 {
			head, path = path, ""
		} else {
			head, path = path[:i], path[i+1:]
		}
		if head == fn {
			return true
		}
	}
	return false
}

func btInnermost(path string) string {
	if i := strings.LastIndexByte(path, '<'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// AccessedBy answers query type 1: the memory items accessed by proc and
// all its descendants in the execution call graph, with modes. The result
// is keyed by item key; use Items for display order.
func (t *Trace) AccessedBy(proc string) map[string]Access {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Precompute which interned backtraces contain proc.
	inScope := make([]bool, len(t.backtraces))
	for i, bt := range t.backtraces {
		inScope[i] = btContains(bt, proc)
	}
	out := make(map[string]Access)
	for _, r := range t.records {
		if !inScope[r.bt] {
			continue
		}
		key := t.items[r.item].Key
		a := out[key]
		if r.access == vm.AccessRead {
			a.Read = true
		} else {
			a.Write = true
		}
		out[key] = a
	}
	return out
}

// UsersOf answers query type 2: which procedures directly access any of
// the given items (identified by key). "Directly" means the innermost
// frame of the access backtrace, which is the procedure whose code issued
// the instruction — the set a programmer moves into a callgate.
func (t *Trace) UsersOf(itemKeys []string) []string {
	want := make(map[int32]bool, len(itemKeys))
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range itemKeys {
		if id, ok := t.itemIdx[k]; ok {
			want[id] = true
		}
	}
	seen := make(map[string]bool)
	for _, r := range t.records {
		if want[r.item] {
			seen[btInnermost(t.backtraces[r.bt])] = true
		}
	}
	out := make([]string, 0, len(seen))
	for fn := range seen {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// WritesBy answers query type 3: the items written by proc and its
// descendants — the data that "may warrant protection with callgates"
// when proc generates sensitive data.
func (t *Trace) WritesBy(proc string) []*Item {
	t.mu.Lock()
	defer t.mu.Unlock()
	inScope := make([]bool, len(t.backtraces))
	for i, bt := range t.backtraces {
		inScope[i] = btContains(bt, proc)
	}
	seen := make(map[int32]bool)
	for _, r := range t.records {
		if r.access == vm.AccessWrite && inScope[r.bt] {
			seen[r.item] = true
		}
	}
	out := make([]*Item, 0, len(seen))
	for id := range seen {
		out = append(out, t.items[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Item returns the item with the given key, if present.
func (t *Trace) Item(key string) (*Item, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.itemIdx[key]
	if !ok {
		return nil, false
	}
	return t.items[id], true
}

// Report renders query 1's result as the cb-analyze CLI prints it.
func (t *Trace) Report(proc string) string {
	acc := t.AccessedBy(proc)
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "memory items accessed by %s and descendants (%d):\n", proc, len(keys))
	for _, k := range keys {
		it, _ := t.Item(k)
		fmt.Fprintf(&b, "  %-2s %s\n", acc[k].Mode(), it)
		if it.Kind == pin.SegHeap && len(it.AllocSite) > 0 {
			fmt.Fprintf(&b, "       allocated at:")
			for _, f := range it.AllocSite {
				fmt.Fprintf(&b, " %s", f)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// OffsetUse summarizes accesses to one offset within an item: the modes
// seen and which procedures issued them. The paper logs "the offset being
// accessed within the segment" so the programmer can "calculate and
// determine the member of a global or heap structure being accessed"
// (§4.2); this query aggregates those records per offset.
type OffsetUse struct {
	Offset uint32
	Access Access
	// Procs are the innermost frames that touched this offset, sorted.
	Procs []string
}

// OffsetsOf returns, for the item with the given key, every distinct
// offset accessed during the trace with its modes and direct users,
// ordered by offset. An unknown key yields an empty slice.
func (t *Trace) OffsetsOf(itemKey string) []OffsetUse {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.itemIdx[itemKey]
	if !ok {
		return nil
	}
	type agg struct {
		access Access
		procs  map[string]bool
	}
	byOff := make(map[uint32]*agg)
	for _, r := range t.records {
		if r.item != id {
			continue
		}
		a := byOff[r.offset]
		if a == nil {
			a = &agg{procs: make(map[string]bool)}
			byOff[r.offset] = a
		}
		if r.access == vm.AccessRead {
			a.access.Read = true
		} else {
			a.access.Write = true
		}
		a.procs[btInnermost(t.backtraces[r.bt])] = true
	}
	out := make([]OffsetUse, 0, len(byOff))
	for off, a := range byOff {
		procs := make([]string, 0, len(a.procs))
		for p := range a.procs {
			procs = append(procs, p)
		}
		sort.Strings(procs)
		out = append(out, OffsetUse{Offset: off, Access: a.access, Procs: procs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// OffsetReport renders OffsetsOf as the cbanalyze CLI prints it.
func (t *Trace) OffsetReport(itemKey string) string {
	uses := t.OffsetsOf(itemKey)
	var b strings.Builder
	fmt.Fprintf(&b, "offsets accessed within %s (%d):\n", itemKey, len(uses))
	for _, u := range uses {
		fmt.Fprintf(&b, "  +%-6d %-2s by %s\n", u.Offset, u.Access.Mode(), strings.Join(u.Procs, ", "))
	}
	return b.String()
}
