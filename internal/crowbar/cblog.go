// cb-log: the run-time instrumentation half of Crowbar (§4.2). Logger
// implements pin.Tool, turning the engine's events into Trace records. It
// also imports violation logs from the sthread emulation library, so that
// a programmer who refactors a partitioned application can run it under
// emulation and query the would-be protection violations with the same
// cb-analyze machinery (§3.4).

package crowbar

import (
	"fmt"

	"wedge/internal/pin"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// Logger is cb-log: attach it to a pin.Proc running in ModeCBLog and every
// memory access lands in its Trace with a full backtrace.
type Logger struct {
	trace *Trace

	// curBT caches the interned id of the live backtrace between
	// function entries and exits, so the per-access logging cost does
	// not depend on stack depth (accesses vastly outnumber calls).
	curBT      int32
	curBTValid bool

	// Accesses counts events received (for overhead accounting).
	Accesses uint64
	// Mallocs counts allocation events.
	Mallocs uint64
}

// NewLogger returns a logger recording into a fresh trace.
func NewLogger() *Logger {
	return &Logger{trace: NewTrace()}
}

// Trace returns the trace built so far.
func (l *Logger) Trace() *Trace { return l.trace }

// itemFor maps a pin segment to a trace item.
func itemFor(seg *pin.Segment) *Item {
	if seg == nil {
		return &Item{Kind: pin.SegHeap, Name: "untracked", Key: "untracked"}
	}
	switch seg.Kind {
	case pin.SegGlobal:
		return &Item{Kind: pin.SegGlobal, Name: seg.Name, Key: "global:" + seg.Name}
	case pin.SegStack:
		return &Item{Kind: pin.SegStack, Name: seg.Name, Key: "stack:" + seg.Name}
	default:
		// Heap items are identified by the full allocation backtrace.
		key := "heap:" + btKey(seg.AllocSite)
		return &Item{Kind: pin.SegHeap, Name: seg.Name, AllocSite: seg.AllocSite, Key: key}
	}
}

// OnEnter implements pin.Tool: the cached backtrace id is invalidated.
func (l *Logger) OnEnter(*pin.Proc, []pin.Frame) { l.curBTValid = false }

// OnExit implements pin.Tool.
func (l *Logger) OnExit(*pin.Proc, []pin.Frame) { l.curBTValid = false }

// OnAccess implements pin.Tool: one record per load/store, with the
// segment classification and offset cb-log reports. The backtrace is
// interned once per call region rather than per access.
func (l *Logger) OnAccess(_ *pin.Proc, access vm.Access, _ vm.Addr, _ int, seg *pin.Segment, off uint64, bt []pin.Frame) {
	l.Accesses++
	t := l.trace
	t.mu.Lock()
	if !l.curBTValid {
		l.curBT = t.internBT(bt)
		l.curBTValid = true
	}
	t.records = append(t.records, record{
		item:   t.internItem(itemFor(seg)),
		bt:     l.curBT,
		access: access,
		offset: uint32(off),
	})
	t.mu.Unlock()
}

// OnMalloc implements pin.Tool; allocation sites become known before the
// first access so that heap items exist even for never-touched buffers.
func (l *Logger) OnMalloc(_ *pin.Proc, seg *pin.Segment, _ []pin.Frame) {
	l.Mallocs++
	l.trace.mu.Lock()
	l.trace.internItem(itemFor(seg))
	l.trace.mu.Unlock()
}

// OnFree implements pin.Tool. Item identity is the allocation site, which
// outlives the buffer; nothing to do.
func (l *Logger) OnFree(*pin.Proc, *pin.Segment) {}

// ImportViolations folds an emulation-library violation log into the
// trace, one record per violation, attributed to the violating sthread as
// a single-frame backtrace and to a per-tag pseudo-item. cb-log "supports
// the sthread emulation library, by logging any memory accesses by an
// sthread for which insufficient permissions would normally have caused a
// protection violation" (§4.2).
func (l *Logger) ImportViolations(vs []sthread.Violation) {
	for _, v := range vs {
		it := &Item{
			Kind: pin.SegHeap,
			Name: fmt.Sprintf("tag:%d", v.Tag),
			Key:  fmt.Sprintf("violation:tag:%d", v.Tag),
		}
		bt := []pin.Frame{{Func: v.Sthread}}
		l.trace.add(it, bt, v.Access, uint64(v.Addr))
	}
}
