// Static permission analysis — the §7 "future work" alternative to
// Crowbar's trace-driven analysis, built here as an extension.
//
// The paper's discussion: "Static analysis will yield a superset of the
// required permissions for an sthread, as some code paths may never
// execute in practice. Static analysis would report the exhaustive set of
// permissions for an sthread not to encounter a protection violation. Yet
// these permissions could well include privileges for sensitive data that
// could allow an exploit to leak that data."
//
// This file implements exactly that trade-off so it can be measured. A
// StaticProgram is a source-level model of an application: its call graph
// (every call site, whether or not a given workload exercises it) and the
// memory items each function's own code names. StaticAccessedBy computes
// the transitive closure — the permission set a sound static analyzer
// must grant a compartment rooted at a procedure. DiffPolicies compares
// that superset against what a dynamic trace justifies, surfacing the
// over-grants §7 warns about.
//
// FromTrace lifts a dynamic trace into the static skeleton it witnesses
// (call edges from backtrace adjacency, accesses attributed to the frame
// that issued them); a front-end or the programmer then declares the
// statically visible but dynamically unexercised parts — error paths,
// dead branches, configuration-dependent code.

package crowbar

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"wedge/internal/vm"
)

// StaticFunc is one function in the source-level model: its call sites and
// the memory items its own body (not its callees) reads and writes.
type StaticFunc struct {
	Name   string
	calls  map[string]bool
	reads  map[string]bool
	writes map[string]bool
}

// Call records call sites from this function to each callee. Indirect
// calls are modelled by listing every candidate target, as a conservative
// points-to analysis would.
func (f *StaticFunc) Call(callees ...string) *StaticFunc {
	for _, c := range callees {
		f.calls[c] = true
	}
	return f
}

// Read records that the function's body reads the given item keys.
func (f *StaticFunc) Read(items ...string) *StaticFunc {
	for _, it := range items {
		f.reads[it] = true
	}
	return f
}

// Write records that the function's body writes the given item keys.
func (f *StaticFunc) Write(items ...string) *StaticFunc {
	for _, it := range items {
		f.writes[it] = true
	}
	return f
}

// Callees returns the function's call targets, sorted.
func (f *StaticFunc) Callees() []string {
	out := make([]string, 0, len(f.calls))
	for c := range f.calls {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// StaticProgram is the call graph + per-function access summaries a static
// analyzer recovers from source.
type StaticProgram struct {
	funcs map[string]*StaticFunc
}

// NewStaticProgram returns an empty model.
func NewStaticProgram() *StaticProgram {
	return &StaticProgram{funcs: make(map[string]*StaticFunc)}
}

// Func returns the model for name, creating it on first use.
func (p *StaticProgram) Func(name string) *StaticFunc {
	f, ok := p.funcs[name]
	if !ok {
		f = &StaticFunc{
			Name:   name,
			calls:  make(map[string]bool),
			reads:  make(map[string]bool),
			writes: make(map[string]bool),
		}
		p.funcs[name] = f
	}
	return f
}

// Funcs returns every function name in the model, sorted.
func (p *StaticProgram) Funcs() []string {
	out := make([]string, 0, len(p.funcs))
	for n := range p.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reachable returns root plus every function transitively callable from it.
// Unknown callees (calls into functions the model never defines, e.g.
// binary-only library code) appear in the result so the caller can see
// where the analysis loses precision.
func (p *StaticProgram) Reachable(root string) []string {
	seen := map[string]bool{root: true}
	work := []string{root}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		f, ok := p.funcs[fn]
		if !ok {
			continue
		}
		for callee := range f.calls {
			if !seen[callee] {
				seen[callee] = true
				work = append(work, callee)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StaticAccessedBy computes the static analogue of cb-analyze's query 1:
// every item proc or anything it may transitively call can touch, with
// modes. This is the exhaustive permission set under which the sthread can
// never hit a protection violation — and it includes privileges for every
// path that exists in the source, executed or not (§7).
func (p *StaticProgram) StaticAccessedBy(proc string) map[string]Access {
	out := make(map[string]Access)
	for _, fn := range p.Reachable(proc) {
		f, ok := p.funcs[fn]
		if !ok {
			continue
		}
		for it := range f.reads {
			a := out[it]
			a.Read = true
			out[it] = a
		}
		for it := range f.writes {
			a := out[it]
			a.Write = true
			out[it] = a
		}
	}
	return out
}

// FromTrace lifts a dynamic trace into the static skeleton it witnesses:
// each interned backtrace f1<f2<...<fn contributes call edges f1→f2,
// …, f(n-1)→fn, and each access record is attributed to the innermost
// frame of its backtrace. Any sound static model of the program contains
// at least these edges and accesses, so the lifted skeleton is the floor
// the programmer extends with unexercised paths.
func FromTrace(t *Trace) *StaticProgram {
	p := NewStaticProgram()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, bt := range t.backtraces {
		frames := strings.Split(bt, "<")
		for i := 0; i+1 < len(frames); i++ {
			p.Func(frames[i]).Call(frames[i+1])
		}
		if len(frames) > 0 {
			p.Func(frames[len(frames)-1]) // ensure leaf exists
		}
	}
	for _, r := range t.records {
		fn := btInnermost(t.backtraces[r.bt])
		key := t.items[r.item].Key
		if r.access == vm.AccessWrite {
			p.Func(fn).Write(key)
		} else {
			p.Func(fn).Read(key)
		}
	}
	return p
}

// OverGrant is one permission the static superset contains beyond what a
// dynamic trace justifies: either an item the workload never touched at
// all, or a stronger mode (e.g. static rw where the trace shows only r).
type OverGrant struct {
	ItemKey string
	Static  Access
	Dynamic Access // zero-valued if the trace never touched the item
}

func (o OverGrant) String() string {
	if !o.Dynamic.Read && !o.Dynamic.Write {
		return fmt.Sprintf("%-2s %s (never touched at run time)", o.Static.Mode(), o.ItemKey)
	}
	return fmt.Sprintf("%-2s %s (trace needs only %s)", o.Static.Mode(), o.ItemKey, o.Dynamic.Mode())
}

// DiffPolicies compares a static permission set against a dynamic one for
// the same root procedure. over lists static grants the trace does not
// justify; missing lists dynamic permissions absent from the static set —
// a sound static model yields none, so a non-empty missing list means the
// model is incomplete (tests assert the superset property with it).
func DiffPolicies(static, dynamic map[string]Access) (over []OverGrant, missing []string) {
	for key, sa := range static {
		da, ok := dynamic[key]
		if !ok {
			over = append(over, OverGrant{ItemKey: key, Static: sa})
			continue
		}
		if (sa.Read && !da.Read) || (sa.Write && !da.Write) {
			over = append(over, OverGrant{ItemKey: key, Static: sa, Dynamic: da})
		}
	}
	for key, da := range dynamic {
		sa, ok := static[key]
		if !ok || (da.Read && !sa.Read) || (da.Write && !sa.Write) {
			missing = append(missing, key)
		}
	}
	sort.Slice(over, func(i, j int) bool { return over[i].ItemKey < over[j].ItemKey })
	sort.Strings(missing)
	return over, missing
}

// StaticReport renders the static permission set for proc alongside the
// over-grants relative to a dynamic trace, the comparison §7 sketches.
func StaticReport(p *StaticProgram, t *Trace, proc string) string {
	static := p.StaticAccessedBy(proc)
	dynamic := t.AccessedBy(proc)
	over, missing := DiffPolicies(static, dynamic)

	keys := make([]string, 0, len(static))
	for k := range static {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "static permission superset for %s (%d items):\n", proc, len(keys))
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-2s %s\n", static[k].Mode(), k)
	}
	fmt.Fprintf(&b, "dynamic trace justifies %d items; static analysis over-grants %d:\n",
		len(dynamic), len(over))
	for _, o := range over {
		fmt.Fprintf(&b, "  + %s\n", o)
	}
	if len(missing) > 0 {
		fmt.Fprintf(&b, "WARNING: static model missing %d dynamically-used permissions (model incomplete):\n", len(missing))
		for _, m := range missing {
			fmt.Fprintf(&b, "  - %s\n", m)
		}
	}
	return b.String()
}

// ---- model files -----------------------------------------------------------

// ParseModel reads static-model declarations, one per line:
//
//	call <caller> <callee>
//	read <func> <item-key>
//	write <func> <item-key>
//
// Blank lines and lines starting with '#' are ignored. The declarations
// extend prog in place (typically a FromTrace skeleton) with the
// statically visible paths no innocuous workload exercises.
func ParseModel(prog *StaticProgram, r io.Reader) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return fmt.Errorf("crowbar: model line %d: want 3 fields, got %d", line, len(fields))
		}
		switch fields[0] {
		case "call":
			prog.Func(fields[1]).Call(fields[2])
		case "read":
			prog.Func(fields[1]).Read(fields[2])
		case "write":
			prog.Func(fields[1]).Write(fields[2])
		default:
			return fmt.Errorf("crowbar: model line %d: unknown directive %q", line, fields[0])
		}
	}
	return sc.Err()
}

// WriteModel serializes prog in ParseModel's format, sorted for stable
// output, so a lifted skeleton can be dumped, hand-edited, and re-read.
func WriteModel(prog *StaticProgram, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range prog.Funcs() {
		f := prog.funcs[name]
		for _, c := range f.Callees() {
			fmt.Fprintf(bw, "call %s %s\n", name, c)
		}
		for _, it := range sortedKeys(f.reads) {
			fmt.Fprintf(bw, "read %s %s\n", name, it)
		}
		for _, it := range sortedKeys(f.writes) {
			fmt.Fprintf(bw, "write %s %s\n", name, it)
		}
	}
	return bw.Flush()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
