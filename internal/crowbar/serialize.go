// Text serialization of traces, for the cblog / cbanalyze CLI pair. The
// format is line-oriented and concatenation-friendly: appending one
// trace's text to another's and re-reading yields the aggregated trace
// (§3.4's "running cb-analyze on the aggregation of these traces").
//
//	item\t<kind>\t<key>\t<name>\t<allocsite>
//	bt\t<path>
//	rec\t<itemIndex>\t<btIndex>\t<r|w>\t<offset>
//
// Indices are file-local (offset by the items/backtraces already read),
// which is what makes concatenation work.

package crowbar

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wedge/internal/pin"
	"wedge/internal/vm"
)

// Serialize emits the trace in text form. The leading "trace" line marks
// a file boundary so concatenated traces re-read correctly.
func (t *Trace) Serialize(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "trace")
	for _, it := range t.items {
		site := make([]string, 0, len(it.AllocSite))
		for _, f := range it.AllocSite {
			site = append(site, fmt.Sprintf("%s|%s|%d", f.Func, f.File, f.Line))
		}
		fmt.Fprintf(bw, "item\t%d\t%s\t%s\t%s\n", int(it.Kind), escape(it.Key), escape(it.Name),
			escape(strings.Join(site, "<")))
	}
	for _, bt := range t.backtraces {
		fmt.Fprintf(bw, "bt\t%s\n", escape(bt))
	}
	for _, r := range t.records {
		mode := "r"
		if r.access == vm.AccessWrite {
			mode = "w"
		}
		fmt.Fprintf(bw, "rec\t%d\t%d\t%s\t%d\n", r.item, r.bt, mode, r.offset)
	}
	return bw.Flush()
}

// ReadTrace parses one or more concatenated serialized traces into a
// single aggregated trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := NewTrace()
	// Per-file index remapping: reset at each file boundary is
	// unnecessary because indices are written in one monotone stream per
	// file; we track the mapping from (file-local index) as offsets.
	var itemMap []int32
	var btMap []int32
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) == 0 || fields[0] == "" {
			continue
		}
		switch fields[0] {
		case "trace":
			// File boundary: subsequent indices are local to the new file.
			itemMap = itemMap[:0]
			btMap = btMap[:0]
		case "item":
			if len(fields) != 5 {
				return nil, fmt.Errorf("crowbar: line %d: malformed item", line)
			}
			kind, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, err
			}
			it := &Item{Kind: pin.SegKind(kind), Key: unescape(fields[2]), Name: unescape(fields[3])}
			if site := unescape(fields[4]); site != "" {
				for _, fs := range strings.Split(site, "<") {
					parts := strings.Split(fs, "|")
					if len(parts) != 3 {
						continue
					}
					ln, _ := strconv.Atoi(parts[2])
					it.AllocSite = append(it.AllocSite, pin.Frame{Func: parts[0], File: parts[1], Line: ln})
				}
			}
			t.mu.Lock()
			itemMap = append(itemMap, t.internItem(it))
			t.mu.Unlock()
		case "bt":
			if len(fields) != 2 {
				return nil, fmt.Errorf("crowbar: line %d: malformed bt", line)
			}
			path := unescape(fields[1])
			t.mu.Lock()
			id, ok := t.btIdx[path]
			if !ok {
				id = int32(len(t.backtraces))
				t.backtraces = append(t.backtraces, path)
				t.btIdx[path] = id
			}
			btMap = append(btMap, id)
			t.mu.Unlock()
		case "rec":
			if len(fields) != 5 {
				return nil, fmt.Errorf("crowbar: line %d: malformed rec", line)
			}
			it, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, err
			}
			bt, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, err
			}
			off, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, err
			}
			if it < 0 || it >= len(itemMap) || bt < 0 || bt >= len(btMap) {
				return nil, fmt.Errorf("crowbar: line %d: index out of range", line)
			}
			access := vm.AccessRead
			if fields[3] == "w" {
				access = vm.AccessWrite
			}
			t.mu.Lock()
			t.records = append(t.records, record{
				item: itemMap[it], bt: btMap[bt], access: access, offset: uint32(off),
			})
			t.mu.Unlock()
		default:
			return nil, fmt.Errorf("crowbar: line %d: unknown record %q", line, fields[0])
		}
	}
	return t, sc.Err()
}

func escape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString("\\\\")
		case '\t':
			b.WriteString("\\t")
		case '\n':
			b.WriteString("\\n")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
