package crowbar

import (
	"bytes"
	"strings"
	"testing"

	"wedge/internal/pin"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// runSample executes a small instrumented program with a known call graph:
//
//	main
//	 ├─ handle_request            reads global config, r/w heap buf (alloc in handle_request)
//	 │   └─ parse                 writes heap buf, reads global config
//	 └─ generate_key              writes global key_material, writes heap secret
func runSample(t *testing.T) (*Logger, *pin.Proc) {
	t.Helper()
	p, err := pin.NewProc(pin.ModeCBLog)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLogger()
	p.Attach(l)

	config, err := p.DeclareGlobal("config", 64)
	if err != nil {
		t.Fatal(err)
	}
	keyMaterial, err := p.DeclareGlobal("key_material", 32)
	if err != nil {
		t.Fatal(err)
	}

	p.Call("main", "main.c", 10, func() {
		p.Store64(config, 0xC0FFEE) // main initializes config

		var buf vm.Addr
		p.Call("handle_request", "req.c", 42, func() {
			buf, _ = p.Malloc(128)
			p.Load64(config)
			p.Store64(buf, 1)
			p.Call("parse", "parse.c", 7, func() {
				p.Load64(config)
				p.Store64(buf+8, 2)
			})
			p.Load64(buf)
		})

		p.Call("generate_key", "key.c", 99, func() {
			p.Store64(keyMaterial, 0x5EC4E7)
			secret, _ := p.Malloc(32)
			p.Store64(secret, 0xDEAD)
		})
	})
	return l, p
}

func TestQueryAccessedBy(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()

	acc := tr.AccessedBy("handle_request")
	if len(acc) != 2 {
		t.Fatalf("handle_request touches %d items (%v), want 2", len(acc), acc)
	}
	if a, ok := acc["global:config"]; !ok || a.Mode() != "r" {
		t.Fatalf("config access = %+v, want read-only", a)
	}
	var heapKey string
	for k := range acc {
		if strings.HasPrefix(k, "heap:") {
			heapKey = k
		}
	}
	if heapKey == "" {
		t.Fatalf("no heap item in %v", acc)
	}
	if acc[heapKey].Mode() != "rw" {
		t.Fatalf("heap buf mode = %s, want rw", acc[heapKey].Mode())
	}

	// Descendants included: parse's write to buf is attributed to
	// handle_request's scope too. Verify via parse scope itself.
	accParse := tr.AccessedBy("parse")
	if accParse[heapKey].Mode() != "w" {
		t.Fatalf("parse's buf mode = %s, want w", accParse[heapKey].Mode())
	}
	if accParse["global:config"].Mode() != "r" {
		t.Fatal("parse's config read missing")
	}

	// generate_key's items must NOT appear under handle_request.
	if _, ok := acc["global:key_material"]; ok {
		t.Fatal("key_material leaked into handle_request scope")
	}
}

func TestQueryUsersOf(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	users := tr.UsersOf([]string{"global:config"})
	want := map[string]bool{"main": true, "handle_request": true, "parse": true}
	if len(users) != len(want) {
		t.Fatalf("UsersOf(config) = %v", users)
	}
	for _, u := range users {
		if !want[u] {
			t.Fatalf("unexpected user %q", u)
		}
	}

	users = tr.UsersOf([]string{"global:key_material"})
	if len(users) != 1 || users[0] != "generate_key" {
		t.Fatalf("UsersOf(key_material) = %v", users)
	}

	if got := tr.UsersOf([]string{"global:nonexistent"}); len(got) != 0 {
		t.Fatalf("UsersOf(nonexistent) = %v", got)
	}
}

func TestQueryWritesBy(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	writes := tr.WritesBy("generate_key")
	if len(writes) != 2 {
		t.Fatalf("WritesBy(generate_key) = %v, want key_material + secret heap", writes)
	}
	names := map[string]bool{}
	for _, it := range writes {
		names[it.Kind.String()+":"+it.Name] = true
	}
	if !names["global:key_material"] {
		t.Fatalf("key_material missing from %v", names)
	}

	// main's writes include everything written anywhere beneath it.
	all := tr.WritesBy("main")
	if len(all) != 4 { // config, buf, key_material, secret
		t.Fatalf("WritesBy(main) = %d items (%v), want 4", len(all), all)
	}
}

func TestHeapItemsKeyedByAllocSite(t *testing.T) {
	p, _ := pin.NewProc(pin.ModeCBLog)
	l := NewLogger()
	p.Attach(l)
	// Two allocations from the same call path: one item. One from a
	// different path: a second item.
	p.Call("a", "a.c", 1, func() {
		for i := 0; i < 2; i++ {
			buf, _ := p.Malloc(16)
			p.Store8(buf, 1)
			p.Free(buf)
		}
	})
	p.Call("b", "b.c", 1, func() {
		buf, _ := p.Malloc(16)
		p.Store8(buf, 1)
	})
	counts := l.Trace().ItemCount()
	if counts[pin.SegHeap] != 2 {
		t.Fatalf("heap items = %d, want 2 (keyed by alloc site)", counts[pin.SegHeap])
	}
}

func TestStackClassification(t *testing.T) {
	p, _ := pin.NewProc(pin.ModeCBLog)
	l := NewLogger()
	p.Attach(l)
	p.Call("f", "f.c", 1, func() {
		v, _ := p.StackVar(16)
		p.Store64(v, 7)
		p.FreeStackVar(v)
	})
	acc := l.Trace().AccessedBy("f")
	if _, ok := acc["stack:f"]; !ok {
		t.Fatalf("stack access not classified to frame: %v", acc)
	}
}

func TestMergeAggregatesWorkloads(t *testing.T) {
	l1, _ := runSample(t)
	// Second workload touches a new global.
	p, _ := pin.NewProc(pin.ModeCBLog)
	l2 := NewLogger()
	p.Attach(l2)
	g, _ := p.DeclareGlobal("session_cache", 64)
	p.Call("main", "main.c", 10, func() {
		p.Call("lookup_session", "sess.c", 5, func() {
			p.Load64(g)
		})
	})

	tr := l1.Trace()
	before := tr.Len()
	tr.Merge(l2.Trace())
	if tr.Len() != before+l2.Trace().Len() {
		t.Fatal("merge lost records")
	}
	acc := tr.AccessedBy("main")
	if _, ok := acc["global:session_cache"]; !ok {
		t.Fatal("merged workload's item not queryable")
	}
	if _, ok := acc["global:config"]; !ok {
		t.Fatal("original workload's item lost")
	}
}

func TestImportViolations(t *testing.T) {
	l := NewLogger()
	l.ImportViolations([]sthread.Violation{
		{Sthread: "worker", Addr: 0x5000, Access: vm.AccessRead, Tag: 3},
		{Sthread: "worker", Addr: 0x5008, Access: vm.AccessWrite, Tag: 3},
		{Sthread: "gate", Addr: 0x9000, Access: vm.AccessRead, Tag: 7},
	})
	tr := l.Trace()
	acc := tr.AccessedBy("worker")
	if a, ok := acc["violation:tag:3"]; !ok || a.Mode() != "rw" {
		t.Fatalf("worker violations = %v", acc)
	}
	users := tr.UsersOf([]string{"violation:tag:7"})
	if len(users) != 1 || users[0] != "gate" {
		t.Fatalf("UsersOf(tag 7 violations) = %v", users)
	}
}

func TestReportRendering(t *testing.T) {
	l, _ := runSample(t)
	rep := l.Trace().Report("handle_request")
	for _, want := range []string{"handle_request", "global config", "rw", "allocated at"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNativeModeRecordsNothing(t *testing.T) {
	p, _ := pin.NewProc(pin.ModeNative)
	l := NewLogger()
	p.Attach(l)
	g, _ := p.DeclareGlobal("g", 8)
	p.Call("f", "f.c", 1, func() { p.Store64(g, 1) })
	if l.Accesses != 0 {
		t.Fatalf("native mode delivered %d access events", l.Accesses)
	}
	if l.Trace().Len() != 0 {
		t.Fatal("native mode produced trace records")
	}
}

func TestPinModeTranslatesOnce(t *testing.T) {
	p, _ := pin.NewProc(pin.ModePin)
	for i := 0; i < 10; i++ {
		p.Call("hot", "h.c", 1, func() {})
	}
	if p.Translated != 1 {
		t.Fatalf("hot function translated %d times, want 1", p.Translated)
	}
	if p.Calls != 10 {
		t.Fatalf("calls = %d", p.Calls)
	}
}

// TestOffsetsOf: the §4.2 offset log lets the programmer see which struct
// members of an item each procedure touches.
func TestOffsetsOf(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()

	uses := tr.OffsetsOf("global:config")
	if len(uses) != 1 || uses[0].Offset != 0 {
		t.Fatalf("config offsets = %+v, want single offset 0", uses)
	}
	if uses[0].Access.Mode() != "rw" { // main writes, handle_request/parse read
		t.Fatalf("config offset mode = %s", uses[0].Access.Mode())
	}
	wantProcs := map[string]bool{"main": true, "handle_request": true, "parse": true}
	if len(uses[0].Procs) != len(wantProcs) {
		t.Fatalf("config offset procs = %v", uses[0].Procs)
	}
	for _, p := range uses[0].Procs {
		if !wantProcs[p] {
			t.Fatalf("unexpected proc %q", p)
		}
	}

	// The heap buffer is touched at offsets 0 (handle_request write+read)
	// and 8 (parse write).
	var heapKey string
	for k := range tr.AccessedBy("handle_request") {
		if strings.HasPrefix(k, "heap:") {
			heapKey = k
		}
	}
	uses = tr.OffsetsOf(heapKey)
	if len(uses) != 2 {
		t.Fatalf("heap offsets = %+v, want 2", uses)
	}
	if uses[0].Offset != 0 || uses[1].Offset != 8 {
		t.Fatalf("heap offsets = %+v", uses)
	}
	if uses[1].Access.Mode() != "w" || len(uses[1].Procs) != 1 || uses[1].Procs[0] != "parse" {
		t.Fatalf("offset 8 = %+v, want write by parse", uses[1])
	}

	if got := tr.OffsetsOf("global:nonexistent"); len(got) != 0 {
		t.Fatalf("unknown key yields %v", got)
	}

	report := tr.OffsetReport(heapKey)
	for _, want := range []string{"offsets accessed within", "+0", "+8", "parse"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestOffsetsSurviveSerialization: offsets round-trip through the trace
// file format, so the offline cbanalyze sees them.
func TestOffsetsSurviveSerialization(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	var buf bytes.Buffer
	if err := tr.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.OffsetsOf("global:config")
	have := got.OffsetsOf("global:config")
	if len(want) != len(have) {
		t.Fatalf("offsets lost in serialization: %v vs %v", want, have)
	}
	for i := range want {
		if want[i].Offset != have[i].Offset || want[i].Access != have[i].Access {
			t.Fatalf("offset %d mismatch: %+v vs %+v", i, want[i], have[i])
		}
	}
}
