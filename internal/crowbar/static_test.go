package crowbar

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wedge/internal/pin"
	"wedge/internal/vm"
)

// liftedFuncs collects every function name appearing in a trace's
// backtraces.
func liftedFuncs(tr *Trace) []string {
	seen := map[string]bool{}
	tr.mu.Lock()
	for _, bt := range tr.backtraces {
		for _, f := range strings.Split(bt, "<") {
			seen[f] = true
		}
	}
	tr.mu.Unlock()
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	return out
}

// TestFromTraceSuperset: the skeleton lifted from a dynamic trace grants,
// for every procedure, at least the permissions the dynamic query
// justifies (the soundness floor of §7's static analysis).
func TestFromTraceSuperset(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	prog := FromTrace(tr)
	for _, fn := range liftedFuncs(tr) {
		static := prog.StaticAccessedBy(fn)
		dynamic := tr.AccessedBy(fn)
		if _, missing := DiffPolicies(static, dynamic); len(missing) != 0 {
			t.Errorf("%s: lifted static model missing %v", fn, missing)
		}
	}
}

// TestStaticOverGrantsSensitiveData reproduces §7's warning: a statically
// visible but never-executed path (an error handler that dumps state)
// forces the static permission set for the network-facing procedure to
// include the sensitive key material the dynamic trace proves unnecessary.
func TestStaticOverGrantsSensitiveData(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	prog := FromTrace(tr)

	// The source contains an error path the innocuous workload never
	// exercises: handle_request -> debug_dump, which reads key_material.
	prog.Func("handle_request").Call("debug_dump")
	prog.Func("debug_dump").Read("global:key_material")

	dynamic := tr.AccessedBy("handle_request")
	if _, ok := dynamic["global:key_material"]; ok {
		t.Fatal("dynamic policy already includes key_material; sample broken")
	}
	static := prog.StaticAccessedBy("handle_request")
	if a, ok := static["global:key_material"]; !ok || !a.Read {
		t.Fatalf("static superset lacks key_material read: %v", static)
	}

	over, missing := DiffPolicies(static, dynamic)
	if len(missing) != 0 {
		t.Fatalf("static model became unsound: missing %v", missing)
	}
	found := false
	for _, o := range over {
		if o.ItemKey == "global:key_material" && o.Static.Read && !o.Dynamic.Read {
			found = true
			if !strings.Contains(o.String(), "never touched") {
				t.Errorf("OverGrant string = %q", o.String())
			}
		}
	}
	if !found {
		t.Fatalf("over-grants %v do not include key_material", over)
	}

	report := StaticReport(prog, tr, "handle_request")
	for _, want := range []string{"static permission superset", "over-grants", "global:key_material"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestStaticModeWidening: static analysis that sees a write on a path the
// trace never took must widen r to rw, and the diff reports the widening
// rather than a fresh item.
func TestStaticModeWidening(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	prog := FromTrace(tr)

	// Statically, parse can also write config (a config-reload branch).
	prog.Func("parse").Write("global:config")

	static := prog.StaticAccessedBy("handle_request")
	if static["global:config"].Mode() != "rw" {
		t.Fatalf("config static mode = %s, want rw", static["global:config"].Mode())
	}
	over, missing := DiffPolicies(static, tr.AccessedBy("handle_request"))
	if len(missing) != 0 {
		t.Fatalf("missing %v", missing)
	}
	for _, o := range over {
		if o.ItemKey == "global:config" {
			if o.Dynamic.Mode() != "r" || o.Static.Mode() != "rw" {
				t.Fatalf("widening diff = %+v", o)
			}
			if !strings.Contains(o.String(), "trace needs only r") {
				t.Errorf("widening string = %q", o.String())
			}
			return
		}
	}
	t.Fatalf("no widening over-grant for config: %v", over)
}

// TestDiffPoliciesMissing: a static model that omits a dynamically-used
// permission (an unsound model) is reported via missing.
func TestDiffPoliciesMissing(t *testing.T) {
	static := map[string]Access{"global:a": {Read: true}}
	dynamic := map[string]Access{
		"global:a": {Read: true, Write: true}, // mode too weak statically
		"global:b": {Read: true},              // absent statically
	}
	_, missing := DiffPolicies(static, dynamic)
	if len(missing) != 2 {
		t.Fatalf("missing = %v, want 2 entries", missing)
	}
}

// TestReachableIncludesUnknownCallees: calls into functions the model does
// not define (binary-only libraries) still appear in the closure.
func TestReachableIncludesUnknownCallees(t *testing.T) {
	prog := NewStaticProgram()
	prog.Func("main").Call("lib_opaque", "helper")
	prog.Func("helper").Call("main") // cycle must terminate

	got := prog.Reachable("main")
	want := []string{"helper", "lib_opaque", "main"}
	if len(got) != len(want) {
		t.Fatalf("Reachable = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reachable = %v, want %v", got, want)
		}
	}
}

// TestModelRoundTrip: WriteModel then ParseModel reproduces the same
// permission supersets for every function.
func TestModelRoundTrip(t *testing.T) {
	l, _ := runSample(t)
	tr := l.Trace()
	prog := FromTrace(tr)
	prog.Func("handle_request").Call("debug_dump")
	prog.Func("debug_dump").Read("global:key_material").Write("heap:dump:1")

	var buf bytes.Buffer
	if err := WriteModel(prog, &buf); err != nil {
		t.Fatal(err)
	}
	got := NewStaticProgram()
	if err := ParseModel(got, &buf); err != nil {
		t.Fatal(err)
	}

	if len(got.Funcs()) != len(prog.Funcs()) {
		t.Fatalf("funcs %v != %v", got.Funcs(), prog.Funcs())
	}
	for _, fn := range prog.Funcs() {
		a, b := prog.StaticAccessedBy(fn), got.StaticAccessedBy(fn)
		if len(a) != len(b) {
			t.Fatalf("%s: %v != %v", fn, a, b)
		}
		for k, v := range a {
			if b[k] != v {
				t.Fatalf("%s %s: %v != %v", fn, k, v, b[k])
			}
		}
	}
}

// TestParseModelErrors: malformed model lines are rejected with the line
// number.
func TestParseModelErrors(t *testing.T) {
	cases := []string{
		"call a",         // too few fields
		"jump a b",       // unknown directive
		"read a b extra", // too many fields
	}
	for _, c := range cases {
		err := ParseModel(NewStaticProgram(), strings.NewReader(c))
		if err == nil {
			t.Errorf("ParseModel(%q) accepted", c)
		}
	}
	// Comments and blanks are fine.
	ok := "# comment\n\ncall a b\nread b global:x\nwrite b global:y\n"
	prog := NewStaticProgram()
	if err := ParseModel(prog, strings.NewReader(ok)); err != nil {
		t.Fatalf("ParseModel(ok) = %v", err)
	}
	if got := prog.StaticAccessedBy("a"); got["global:x"].Mode() != "r" || got["global:y"].Mode() != "w" {
		t.Fatalf("parsed model closure = %v", got)
	}
}

// TestFromTraceSupersetProperty: for randomly generated traces, the lifted
// static skeleton is a superset of the dynamic answer for every function —
// the soundness property, checked with testing/quick over random call
// paths and access patterns.
func TestFromTraceSupersetProperty(t *testing.T) {
	names := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	items := []*Item{
		{Kind: pin.SegGlobal, Name: "g0", Key: "global:g0"},
		{Kind: pin.SegGlobal, Name: "g1", Key: "global:g1"},
		{Kind: pin.SegHeap, Name: "h0", Key: "heap:h0"},
		{Kind: pin.SegStack, Name: "s0", Key: "stack:s0"},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace()
		for rec := 0; rec < 30; rec++ {
			depth := 1 + rng.Intn(4)
			bt := make([]pin.Frame, depth)
			for i := range bt {
				bt[i] = pin.Frame{Func: names[rng.Intn(len(names))]}
			}
			acc := vm.AccessRead
			if rng.Intn(2) == 1 {
				acc = vm.AccessWrite
			}
			tr.add(items[rng.Intn(len(items))], bt, acc, uint64(rng.Intn(256)))
		}
		prog := FromTrace(tr)
		for _, fn := range names {
			if _, missing := DiffPolicies(prog.StaticAccessedBy(fn), tr.AccessedBy(fn)); len(missing) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
