package sthread

import (
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/vm"
)

// TestRecycledFaultThenReplace covers two failure paths a pool scheduler
// leans on: a gate faulting mid-invocation must return ErrGateExited to
// its caller rather than stranding it on the completion futex (the
// FutexWaitAbort fix), and a replacement gate built on the dead gate's
// reused control tag must serve normally (the RefreshZero fix — tag reuse
// must not leave the control page copy-on-write against the zero frame,
// or the caller and gate diverge onto different frames).
func TestRecycledFaultThenReplace(t *testing.T) {
	app := Boot(kernel.New())
	err := app.Main(func(root *Sthread) {
		argTag, err := app.Tags.TagNew(root.Task)
		if err != nil {
			t.Fatal(err)
		}
		argBuf, err := root.Smalloc(argTag, 64)
		if err != nil {
			t.Fatal(err)
		}
		boom := func(g *Sthread, arg, _ vm.Addr) vm.Addr {
			if g.Load64(arg) == 1 {
				g.Load64(vm.Addr(8))
			}
			g.Store64(arg+8, g.Load64(arg)+1)
			return 1
		}
		sc := policy.New().MustMemAdd(argTag, vm.PermRW)
		r1, err := root.NewRecycled("one", sc, boom, 0)
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(argBuf, 1)
		if _, err := r1.Call(root, argBuf); err != ErrGateExited {
			t.Fatalf("poisoned call: %v", err)
		}
		t.Logf("alive after fault: %v", r1.Alive())
		if err := r1.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := root.NewRecycled("two", sc, boom, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r2.Close()
		t.Logf("second gate alive: %v", r2.Alive())
		root.Store64(argBuf, 20)
		if ret, err := r2.Call(root, argBuf); err != nil || ret != 1 {
			t.Fatalf("second gate: %v %v (alive=%v)", ret, err, r2.Alive())
		}
		if got := root.Load64(argBuf + 8); got != 21 {
			t.Fatalf("echo = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecycledCallFD: the per-invocation argument descriptor. The gate can
// use the descriptor during the invocation; after completion it is
// revoked, and a caller lacking the descriptor cannot grant it.
func TestRecycledCallFD(t *testing.T) {
	k := kernel.New()
	app := Boot(k)
	err := app.Main(func(root *Sthread) {
		l, err := root.Task.Listen("svc:1")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			c, err := k.Net.Dial("svc:1")
			if err != nil {
				t.Error(err)
				return
			}
			c.Write([]byte("ping"))
			c.Close()
		}()
		conn, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		fd := root.Task.InstallFD(conn, kernel.FDRW)

		var gateTask *kernel.Task
		gate := func(g *Sthread, arg, _ vm.Addr) vm.Addr {
			gateTask = g.Task
			buf := make([]byte, 4)
			n, err := g.Task.ReadFD(int(arg), buf)
			if err != nil || string(buf[:n]) != "ping" {
				return 0
			}
			return 1
		}
		r, err := root.NewRecycled("fdgate", policy.New(), gate, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		ret, err := r.CallFD(root, vm.Addr(fd), fd, kernel.FDRW)
		if err != nil || ret != 1 {
			t.Fatalf("CallFD = %v, %v", ret, err)
		}
		// The descriptor was revoked when the invocation completed.
		if _, err := gateTask.ReadFD(fd, make([]byte, 1)); err == nil {
			t.Fatal("argument descriptor survived the invocation")
		}
		if !r.Alive() {
			t.Fatal("gate should be alive")
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if r.Alive() {
			t.Fatal("closed gate reports alive")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSthreadZero: the argument-block reset primitive enforces write
// permission like any other store.
func TestSthreadZero(t *testing.T) {
	app := Boot(kernel.New())
	err := app.Main(func(root *Sthread) {
		tag, err := app.Tags.TagNew(root.Task)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := root.Smalloc(tag, 3*vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < 3*vm.PageSize; off += 8 {
			root.Store64(buf+vm.Addr(off), ^uint64(0))
		}
		if err := root.Zero(buf, 3*vm.PageSize); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < 3*vm.PageSize; off += 8 {
			if got := root.Load64(buf + vm.Addr(off)); got != 0 {
				t.Fatalf("offset %d = %#x after Zero", off, got)
			}
		}

		// A read-only child cannot scrub.
		sc := policy.New().MustMemAdd(tag, vm.PermRead)
		child, err := root.Create(sc, func(s *Sthread, arg vm.Addr) vm.Addr {
			if err := s.Zero(arg, 8); err != nil {
				return 1 // correctly denied
			}
			return 0
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("read-only Zero: ret=%v fault=%v", ret, fault)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
