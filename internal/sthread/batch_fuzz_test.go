// FuzzBatchRing: a hostile worker owns every simulated word of its ring
// — tail, head, per-entry status and return words — and none of them
// may steer the host. The fuzzer interleaves producer traffic with
// arbitrary scribbles over the protocol words and checks the trust
// model's claims: host-computed entry/header addresses derive only from
// creation-time geometry (in-segment for any sequence number, hostile
// or not), producers are released exactly by the trusted shadows with
// the return words the body actually passed to Complete, and no host
// write lands past the ring segment (a guard window stays zero). The
// stop word is excluded from the scribbles: it is the host's own
// shutdown request, and writing it is self-termination, not evasion.

package sthread

import (
	"testing"

	"wedge/internal/policy"
	"wedge/internal/vm"
)

func FuzzBatchRing(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint64(0), []byte{})
	f.Add(uint8(3), uint8(2), ^uint64(0), []byte{1, 0, 2, 0, 1, 7, 2, 0})
	// Scribble the tail and a header, then run traffic through them.
	f.Add(uint8(7), uint8(6), uint64(1)<<63, []byte{0, 0, 0, 3, 1, 1, 0, 4, 2, 0, 1, 2, 1, 3, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, depthByte, sizeByte uint8, seqProbe uint64, script []byte) {
		if len(script) > 128 {
			script = script[:128]
		}
		depth := 1 + int(depthByte%8)
		entrySize := 8 * (2 + int(sizeByte%7)) // two words: value in, doubled value out
		boot(t, func(root *Sthread) {
			app := root.App()
			tag, err := app.Tags.TagNew(root.Task)
			if err != nil {
				t.Fatal(err)
			}
			ringBytes := BatchRingBytes(depth, entrySize)
			base, err := root.Smalloc(tag, ringBytes+64) // 64-byte guard window past the segment
			if err != nil {
				t.Fatal(err)
			}
			sc := policy.New().MustMemAdd(tag, vm.PermRW)
			body := func(g *Sthread, b *Batch, _ vm.Addr) {
				for b.More() {
					v := g.Load64(b.Arg())
					g.Store64(b.Arg()+8, 2*v)
					b.Complete(vm.Addr(v))
				}
			}
			gate, ring, err := root.NewRecycledBatch("fuzz", sc, body, BatchConfig{
				Base: base, Depth: depth, EntrySize: entrySize,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer gate.Close()

			// Geometry: any sequence number — including ones no protocol
			// run ever produced — resolves to addresses inside the ring.
			end := base + vm.Addr(ringBytes)
			for _, seq := range []uint64{0, seqProbe, seqProbe + 1, ^uint64(0)} {
				if a := ring.EntryAddr(seq); a < base || a+vm.Addr(entrySize) > end {
					t.Fatalf("EntryAddr(%d) = %#x: outside ring [%#x, %#x)", seq, uint64(a), uint64(base), uint64(end))
				}
				if h := ring.HdrAddr(seq); h < base || h+HdrSize > end {
					t.Fatalf("HdrAddr(%d) = %#x: outside ring [%#x, %#x)", seq, uint64(h), uint64(base), uint64(end))
				}
			}

			// The scribble range: control words plus per-entry headers —
			// everything the protocol stores, nothing the producer owns
			// (argument blocks stay clean so return words are predictable).
			hdrRegion := uint64(brHdrs + depth*batchHdrSize)

			var vals []uint64
			next, awaited := uint64(0), uint64(0)
			await := func() {
				ret, err := ring.Await(awaited)
				if err != nil {
					t.Fatalf("await %d: %v", awaited, err)
				}
				if uint64(ret) != vals[awaited] {
					t.Fatalf("await %d: ret = %d, want %d", awaited, ret, vals[awaited])
				}
				// The position cannot have been reused yet (producers never
				// run more than depth ahead), so the body's in-ring result
				// is still resident.
				if got := root.Load64(ring.EntryAddr(awaited) + 8); got != 2*vals[awaited] {
					t.Fatalf("entry %d result word = %d, want %d", awaited, got, 2*vals[awaited])
				}
				awaited++
			}
			for i := 0; i+1 < len(script); i += 2 {
				op, operand := script[i], uint64(script[i+1])
				switch op % 3 {
				case 0: // hostile scribble over a protocol word
					off := vm.Addr((operand * 8) % hdrRegion)
					if off == brStop {
						off = brHead
					}
					if err := root.Task.AtomicStore64(base+off, operand*0x9e3779b97f4a7c15+1); err != nil {
						t.Fatal(err)
					}
				case 1: // publish the next entry
					if next-awaited == uint64(depth) {
						continue // a real producer leases positions; never exceed depth outstanding
					}
					v := operand + 100
					root.Store64(ring.EntryAddr(next), v)
					vals = append(vals, v)
					if err := ring.PublishTo(next + 1); err != nil {
						t.Fatal(err)
					}
					next++
				case 2: // await the oldest outstanding entry
					if awaited < next {
						await()
					}
				}
			}
			for awaited < next {
				await()
			}

			// No host write escaped the segment: the guard window past the
			// ring is untouched whatever the scribbled words said.
			for off := vm.Addr(0); off < 64; off += 8 {
				if got := root.Load64(end + off); got != 0 {
					t.Fatalf("guard word at ring end +%d = %#x", off, got)
				}
			}
		})
	})
}
