// Recycled callgates (§3.3, §4.1): long-lived sthreads that amortize
// creation cost over many invocations. Invocation copies arguments into
// memory shared between caller and gate, wakes the gate through a futex,
// and waits on a second futex for completion — two futex operations instead
// of an sthread creation, which is what makes them roughly the cost of
// pthread creation in Figure 7.
//
// As the paper warns, recycling trades isolation for performance: the gate
// sthread's memory persists across invocations, so an exploited recycled
// gate serving multiple principals can leak one caller's arguments to
// another. NewRecycled documents this; callers choose.

package sthread

import (
	"fmt"
	"sync"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Control-page word offsets. The control page lives in a dedicated tag
// shared read-write between the caller-facing handle and the gate sthread.
const (
	rcGen  = 0  // generation counter: odd = request pending
	rcArg  = 8  // untrusted argument
	rcRet  = 16 // return value
	rcDone = 24 // completion counter
	rcStop = 32 // nonzero requests shutdown
)

// Recycled is a reusable callgate. It is created by a privileged sthread
// and can be invoked by any sthread that was granted its invocation spec.
type Recycled struct {
	Name string

	app     *App
	gate    *Sthread
	ctlTag  tags.Tag
	ctl     vm.Addr
	creator *Sthread

	// mu serializes invocations: a recycled gate is one sthread and can
	// serve one caller at a time, as in the paper's futex protocol.
	mu sync.Mutex

	closed bool
}

// NewRecycled creates a long-lived callgate sthread running with policy
// gateSC (plus read-write access to an internal control tag), entered at
// fn for every invocation with the kernel-held trusted argument.
func (s *Sthread) NewRecycled(name string, gateSC *policy.SC, fn GateFunc, trusted vm.Addr) (*Recycled, error) {
	if gateSC == nil {
		gateSC = policy.New()
	}
	if err := gateSC.CheckSubsetOf(s.SC); err != nil {
		return nil, fmt.Errorf("recycled %q: %w", name, err)
	}

	// The control page: a dedicated tag so the grant is precise.
	ctlTag, err := s.app.Tags.TagNew(s.Task)
	if err != nil {
		return nil, err
	}
	reg, err := s.app.Tags.Lookup(ctlTag)
	if err != nil {
		return nil, err
	}
	ctl := reg.Base + vm.Addr(vm.PageSize) // skip the allocator header page

	eff := gateSC.Clone()
	if err := eff.MemAdd(ctlTag, vm.PermRW); err != nil {
		return nil, err
	}

	gate, err := s.prepareGate(name, eff, s)
	if err != nil {
		return nil, err
	}

	r := &Recycled{
		Name:    name,
		app:     s.app,
		gate:    gate,
		ctlTag:  ctlTag,
		ctl:     ctl,
		creator: s,
	}

	gate.Task.Start(func(*kernel.Task) {
		r.serve(gate, fn, trusted)
	})
	return r, nil
}

// serve is the gate sthread's loop: wait for a request generation, run the
// entry point, publish the return value, bump the completion counter.
func (r *Recycled) serve(g *Sthread, fn GateFunc, trusted vm.Addr) {
	var lastGen uint64
	for {
		// Wait until the caller bumps the generation past what we saw.
		for {
			gen := g.Load64(r.ctl + rcGen)
			if gen != lastGen {
				lastGen = gen
				break
			}
			if g.Load64(r.ctl+rcStop) != 0 {
				return
			}
			g.Task.FutexWaitVal(r.ctl+rcGen, uint32(gen))
		}
		if g.Load64(r.ctl+rcStop) != 0 {
			return
		}
		arg := vm.Addr(g.Load64(r.ctl + rcArg))
		ret := fn(g, arg, trusted)
		g.Store64(r.ctl+rcRet, uint64(ret))
		g.Store64(r.ctl+rcDone, lastGen)
		g.Task.FutexWake(r.ctl+rcDone, 1)
	}
}

// Call invokes the recycled gate on behalf of caller: copy the argument
// word into shared memory, wake the gate, wait for completion. The paper's
// futex protocol, verbatim (§4.1).
func (r *Recycled) Call(caller *Sthread, arg vm.Addr) (vm.Addr, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrGateExited
	}
	select {
	case <-r.gate.Task.Done():
		return 0, ErrGateExited
	default:
	}
	r.app.Stats.RecycledCalls.Add(1)

	as := r.creator.Task.AS // the control page is mapped in the creator
	gen, err := as.Load64(r.ctl + rcGen)
	if err != nil {
		return 0, err
	}
	next := gen + 1
	if err := as.Store64(r.ctl+rcArg, uint64(arg)); err != nil {
		return 0, err
	}
	if err := as.Store64(r.ctl+rcGen, next); err != nil {
		return 0, err
	}
	r.creator.Task.FutexWake(r.ctl+rcGen, 1)

	for {
		done, err := as.Load64(r.ctl + rcDone)
		if err != nil {
			return 0, err
		}
		if done == next {
			break
		}
		select {
		case <-r.gate.Task.Done():
			return 0, ErrGateExited
		default:
		}
		r.creator.Task.FutexWaitVal(r.ctl+rcDone, uint32(done))
	}
	ret, err := as.Load64(r.ctl + rcRet)
	if err != nil {
		return 0, err
	}
	return vm.Addr(ret), nil
}

// Close shuts the gate sthread down and retires its control tag.
func (r *Recycled) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	as := r.creator.Task.AS
	if err := as.Store64(r.ctl+rcStop, 1); err != nil {
		return err
	}
	r.creator.Task.FutexWake(r.ctl+rcGen, 1)
	<-r.gate.Task.Done()
	return r.app.Tags.TagDelete(r.ctlTag)
}
