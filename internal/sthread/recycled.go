// Recycled callgates (§3.3, §4.1): long-lived sthreads that amortize
// creation cost over many invocations. Invocation copies arguments into
// memory shared between caller and gate, wakes the gate through a futex,
// and waits on a second futex for completion — two futex operations instead
// of an sthread creation, which is what makes them roughly the cost of
// pthread creation in Figure 7.
//
// As the paper warns, recycling trades isolation for performance: the gate
// sthread's memory persists across invocations, so an exploited recycled
// gate serving multiple principals can leak one caller's arguments to
// another. NewRecycled documents this; callers choose.

package sthread

import (
	"fmt"
	"sync"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Control-page word offsets. The control page lives in a dedicated tag
// shared read-write between the caller-facing handle and the gate sthread.
const (
	rcGen  = 0  // generation counter: odd = request pending
	rcArg  = 8  // untrusted argument
	rcRet  = 16 // return value
	rcDone = 24 // completion counter
	rcStop = 32 // nonzero requests shutdown
)

// Recycled is a reusable callgate. It is created by a privileged sthread
// and can be invoked by any sthread that was granted its invocation spec.
type Recycled struct {
	Name string

	app     *App
	gate    *Sthread
	ctlTag  tags.Tag
	ctl     vm.Addr
	creator *Sthread

	// ring is non-nil for a batch-mode gate (NewRecycledBatch): the gate
	// drains a ring of argument blocks instead of serving one generation
	// word, and its control words live in the ring, not a private tag.
	ring *BatchRing

	// fn and trusted are the gate's entry point and kernel-held trusted
	// argument, retained for inline invocation (SetInlineCalls).
	fn      GateFunc
	trusted vm.Addr

	// mu serializes invocations: a recycled gate is one sthread and can
	// serve one caller at a time, as in the paper's futex protocol.
	mu sync.Mutex

	// inlineCalls runs Call bodies on the caller's goroutine (still in
	// the gate's task context) instead of through the futex handoff; see
	// SetInlineCalls.
	inlineCalls bool

	closed bool
}

// NewRecycled creates a long-lived callgate sthread running with policy
// gateSC (plus read-write access to an internal control tag), entered at
// fn for every invocation with the kernel-held trusted argument.
//
// Unlike a one-shot gate — which always runs with its creator's uid and
// filesystem root (§3.3) — a recycled gate honours gateSC.UID and
// gateSC.Root when set: a long-lived gate standing in for a per-connection
// worker (the pooled servers' recycled workers) must start each life
// confined, not with root's ambient authority. Only a root creator may
// confine this way, per the same Unix semantics as sthread creation.
func (s *Sthread) NewRecycled(name string, gateSC *policy.SC, fn GateFunc, trusted vm.Addr) (*Recycled, error) {
	if gateSC == nil {
		gateSC = policy.New()
	}
	if err := s.checkRecycledSC(name, gateSC); err != nil {
		return nil, err
	}

	// The control page: a dedicated tag so the grant is precise. Every
	// error path below retires it — a failed gate construction must not
	// strand a tag (or, further down, a prepared-but-never-started task).
	ctlTag, err := s.app.Tags.TagNew(s.Task)
	if err != nil {
		return nil, err
	}
	reg, err := s.app.Tags.Lookup(ctlTag)
	if err != nil {
		s.app.Tags.TagDelete(ctlTag)
		return nil, err
	}
	ctl := reg.Base + vm.Addr(vm.PageSize) // skip the allocator header page

	eff := gateSC.Clone()
	if err := eff.MemAdd(ctlTag, vm.PermRW); err != nil {
		s.app.Tags.TagDelete(ctlTag)
		return nil, err
	}

	gate, err := s.prepareConfinedGate(name, gateSC, eff)
	if err != nil {
		s.app.Tags.TagDelete(ctlTag)
		return nil, err
	}

	r := &Recycled{
		Name:    name,
		app:     s.app,
		gate:    gate,
		ctlTag:  ctlTag,
		ctl:     ctl,
		creator: s,
		fn:      fn,
		trusted: trusted,
	}

	gate.Task.Start(func(*kernel.Task) {
		r.serve(gate, fn, trusted)
	})
	return r, nil
}

// checkRecycledSC validates a recycled gate's requested policy against its
// creator: the policy must be a subset, and only a root creator may ask
// for uid/root confinement.
func (s *Sthread) checkRecycledSC(name string, gateSC *policy.SC) error {
	if err := gateSC.CheckSubsetOf(s.SC); err != nil {
		return fmt.Errorf("recycled %q: %w", name, err)
	}
	if (gateSC.UID != policy.InheritUID || gateSC.Root != "") && s.Task.UID != 0 {
		return ErrUIDEscalate
	}
	return nil
}

// prepareConfinedGate prepares a gate task running with the effective
// policy eff and applies gateSC's uid/root confinement before the task
// starts. On error the prepared task is retired — a failed construction
// must not strand it.
func (s *Sthread) prepareConfinedGate(name string, gateSC, eff *policy.SC) (*Sthread, error) {
	gate, err := s.prepareGate(name, eff, s)
	if err != nil {
		return nil, err
	}
	if gateSC.Root != "" {
		if err := s.Task.ChrootOn(gate.Task, gateSC.Root); err != nil {
			gate.Task.Exit(-1)
			return nil, err
		}
	}
	if gateSC.UID != policy.InheritUID {
		if err := s.Task.SetUIDOn(gate.Task, gateSC.UID); err != nil {
			gate.Task.Exit(-1)
			return nil, err
		}
	}
	return gate, nil
}

// serve is the gate sthread's loop: wait for a request generation, run the
// entry point, publish the return value, bump the completion counter.
func (r *Recycled) serve(g *Sthread, fn GateFunc, trusted vm.Addr) {
	// The generation, stop and completion words are spun on from both
	// sides of the gate, so they go through the kernel's atomic word
	// accessors — the stand-in for the atomic instructions a real futex
	// protocol uses. The argument and return words are plain accesses,
	// ordered by the atomic words on either side.
	var lastGen uint64
	for {
		// Wait until the caller bumps the generation past what we saw.
		for {
			gen, err := g.Task.AtomicLoad64(r.ctl + rcGen)
			if err != nil {
				return
			}
			if gen != lastGen {
				lastGen = gen
				break
			}
			if stop, err := g.Task.AtomicLoad64(r.ctl + rcStop); err != nil || stop != 0 {
				return
			}
			g.Task.FutexWaitVal(r.ctl+rcGen, uint32(gen))
		}
		if stop, err := g.Task.AtomicLoad64(r.ctl + rcStop); err != nil || stop != 0 {
			return
		}
		arg := vm.Addr(g.Load64(r.ctl + rcArg))
		ret := fn(g, arg, trusted)
		g.Store64(r.ctl+rcRet, uint64(ret))
		g.Task.AtomicStore64(r.ctl+rcDone, lastGen)
		g.Task.FutexWake(r.ctl+rcDone, 1)
	}
}

// SetInlineCalls switches Call/CallFD between the futex handoff and
// inline invocation. A classic Call is fully synchronous — the caller
// parks until the gate publishes its return value — so running the gate
// body directly on the caller's goroutine observes the same blocking
// semantics while skipping two context switches per invocation; the body
// still executes in the gate's task context (address space, credentials,
// descriptors), so protection is unchanged. This is the run-to-completion
// discipline of the batched dataplane extended to its nested gates; the
// futex protocol remains the default, as §4.1 specifies it.
//
// A body that faults kills the gate task exactly as the futex path does:
// the caller gets ErrGateExited and Alive turns false, so pool respawn
// logic is oblivious to the mode.
func (r *Recycled) SetInlineCalls(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inlineCalls = on
}

// invokeInline runs the gate body on the caller's goroutine; r.mu is
// held. A *vm.Fault panic reproduces the gate-death contract: the task
// exits with the fault recorded, the parked serve goroutine is told to
// stop, and the caller sees ErrGateExited — indistinguishable from a
// fault under the futex protocol.
func (r *Recycled) invokeInline(arg vm.Addr) (ret vm.Addr, err error) {
	defer func() {
		if p := recover(); p != nil {
			f, ok := p.(*vm.Fault)
			if !ok {
				panic(p)
			}
			r.gate.Task.ExitFault(f)
			// Reap the parked serve goroutine through its stop word, the
			// same mechanism Close uses. The task is already dead, so
			// Close can still run afterwards to retire the control tag.
			r.creator.Task.AtomicStore64(r.ctl+rcStop, 1)
			r.creator.Task.FutexWake(r.ctl+rcGen, 1)
			ret, err = 0, ErrGateExited
		}
	}()
	return r.fn(r.gate, arg, r.trusted), nil
}

// Sthread returns the gate's long-lived sthread. Pool schedulers use it
// to manage the compartment between invocations — the sshd pool demotes
// a promoted worker's uid and filesystem root before the slot can serve
// another principal.
func (r *Recycled) Sthread() *Sthread { return r.gate }

// Alive reports whether the gate sthread is still serving invocations. A
// recycled gate dies when its entry point faults; pool schedulers probe
// liveness before dispatch so a dead gate can be replaced instead of
// failing every caller sharded onto it.
func (r *Recycled) Alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	select {
	case <-r.gate.Task.Done():
		return false
	default:
		return true
	}
}

// Call invokes the recycled gate on behalf of caller: copy the argument
// word into shared memory, wake the gate, wait for completion. The paper's
// futex protocol, verbatim (§4.1).
func (r *Recycled) Call(caller *Sthread, arg vm.Addr) (vm.Addr, error) {
	return r.call(caller, arg, -1, 0)
}

// CallFD is Call with an argument descriptor: fd is granted to the gate
// sthread for the duration of the invocation and revoked when it
// completes. Standard callgates receive argument descriptors at each
// instantiation (§3.3); this is the recycled counterpart, the hook that
// lets a long-lived gate serve a different connection's descriptor on
// every invocation. The grant is kernel-mediated: the caller must itself
// hold fd with at least perm.
func (r *Recycled) CallFD(caller *Sthread, arg vm.Addr, fd int, perm kernel.FDPerm) (vm.Addr, error) {
	return r.call(caller, arg, fd, perm)
}

func (r *Recycled) call(caller *Sthread, arg vm.Addr, fd int, perm kernel.FDPerm) (vm.Addr, error) {
	if r.ring != nil {
		return 0, fmt.Errorf("recycled %q: batch-mode gate is invoked through its ring, not Call", r.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrGateExited
	}
	select {
	case <-r.gate.Task.Done():
		return 0, ErrGateExited
	default:
	}
	if fd >= 0 {
		if err := caller.Task.ShareFDTo(r.gate.Task, fd, perm); err != nil {
			return 0, err
		}
		// Revoke the argument descriptor once the invocation is over, as
		// a one-shot gate's exit would.
		defer r.gate.Task.CloseFD(fd)
	}
	r.app.Stats.RecycledCalls.Add(1)

	if r.inlineCalls {
		return r.invokeInline(arg)
	}

	// The control page is mapped in the creator; only callers (serialized
	// by r.mu) write the generation word, so its read stays plain, while
	// the words the gate spins on or writes are atomic.
	ct := r.creator.Task
	as := ct.AS
	gen, err := as.Load64(r.ctl + rcGen)
	if err != nil {
		return 0, err
	}
	next := gen + 1
	if err := as.Store64(r.ctl+rcArg, uint64(arg)); err != nil {
		return 0, err
	}
	if err := ct.AtomicStore64(r.ctl+rcGen, next); err != nil {
		return 0, err
	}
	ct.FutexWake(r.ctl+rcGen, 1)

	for {
		done, err := ct.AtomicLoad64(r.ctl + rcDone)
		if err != nil {
			return 0, err
		}
		if done == next {
			break
		}
		select {
		case <-r.gate.Task.Done():
			return 0, ErrGateExited
		default:
		}
		// Abort the sleep if the gate dies after the check above: a gate
		// faulting mid-invocation must not strand its caller.
		ct.FutexWaitAbort(r.ctl+rcDone, uint32(done), r.gate.Task.Done())
	}
	ret, err := as.Load64(r.ctl + rcRet)
	if err != nil {
		return 0, err
	}
	return vm.Addr(ret), nil
}

// Close shuts the gate sthread down and retires its control tag. A
// batch-mode gate has no private control tag — its stop word lives in
// the ring, and the ring's arena belongs to the caller.
func (r *Recycled) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.ring != nil {
		if err := r.creator.Task.AtomicStore64(r.ring.base+brStop, 1); err != nil {
			return err
		}
		// The channel, not the wake, is what ends a park reliably: the
		// stop word is not the futex word, so a worker between its stop
		// check and its sleep would miss a bare FutexWake forever.
		close(r.ring.stopped)
		r.creator.Task.FutexWake(r.ring.base+brTail, 1)
		<-r.gate.Task.Done()
		return nil
	}
	if err := r.creator.Task.AtomicStore64(r.ctl+rcStop, 1); err != nil {
		return err
	}
	r.creator.Task.FutexWake(r.ctl+rcGen, 1)
	<-r.gate.Task.Done()
	return r.app.Tags.TagDelete(r.ctlTag)
}
