// Tests for the per-sthread memory quota — the resource-exhaustion
// mitigation extending §7's observation that "an exploited sthread may
// maliciously consume CPU and memory" with no defense in Wedge proper.

package sthread

import (
	"errors"
	"testing"

	"wedge/internal/policy"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// TestMemQuotaStopsRunawaySthread: an exploited sthread allocating in a
// loop hits the quota instead of exhausting the machine; the parent and
// siblings are unaffected.
func TestMemQuotaStopsRunawaySthread(t *testing.T) {
	boot(t, func(root *Sthread) {
		quota := 4 * tags.DefaultRegionSize / vm.PageSize // four heap regions' worth
		sc := policy.New().SetMemPages(quota)

		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			// The "exploit": map regions until something gives.
			for i := 0; i < 1000; i++ {
				if _, err := s.Task.Mmap(tags.DefaultRegionSize, vm.PermRW); err != nil {
					if errors.Is(err, vm.ErrMemLimit) {
						return vm.Addr(i)
					}
					return 0
				}
			}
			return 0xBAD // quota never fired
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil {
			t.Fatal(fault)
		}
		if ret == 0 || ret == 0xBAD {
			t.Fatalf("runaway loop result %#x; quota did not stop it cleanly", ret)
		}
		if int(ret) != 4 {
			t.Fatalf("quota fired after %d regions, want 4", ret)
		}

		// The parent can still allocate freely.
		if _, err := root.Task.Mmap(tags.DefaultRegionSize, vm.PermRW); err != nil {
			t.Fatalf("parent allocation blocked: %v", err)
		}
	})
}

// TestMemQuotaCountsPolicyGrantsAsFree: the quota bounds pages mapped
// beyond the policy grants; the granted tags themselves never count
// against it.
func TestMemQuotaCountsPolicyGrantsAsFree(t *testing.T) {
	boot(t, func(root *Sthread) {
		tg, err := root.App().Tags.TagNew(root.Task)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := root.Smalloc(tg, 8)
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(buf, 42)

		sc := policy.New().SetMemPages(tags.DefaultRegionSize / vm.PageSize)
		if err := sc.MemAdd(tg, vm.PermRead); err != nil {
			t.Fatal(err)
		}
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			if s.Load64(buf) != 42 {
				return 0
			}
			// One full region fits exactly within the quota.
			if _, err := s.Task.Mmap(tags.DefaultRegionSize, vm.PermRW); err != nil {
				return 0
			}
			// The next page does not.
			if _, err := s.Task.Mmap(vm.PageSize, vm.PermRW); !errors.Is(err, vm.ErrMemLimit) {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("quota-with-grants child: ret=%d fault=%v", ret, fault)
		}
	})
}

// TestMemQuotaUnmapReturnsBudget: unmapping returns pages to the quota.
func TestMemQuotaUnmapReturnsBudget(t *testing.T) {
	boot(t, func(root *Sthread) {
		sc := policy.New().SetMemPages(2)
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			for i := 0; i < 10; i++ {
				a, err := s.Task.Mmap(2*vm.PageSize, vm.PermRW)
				if err != nil {
					return 0
				}
				if err := s.Task.Munmap(a, 2*vm.PageSize); err != nil {
					return 0
				}
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("map/unmap cycling under quota: ret=%d fault=%v", ret, fault)
		}
	})
}

// TestMemQuotaMonotonicity: rlimit semantics — a quota-bound sthread's
// children inherit its cap when they set none, may tighten it, and can
// never loosen it.
func TestMemQuotaMonotonicity(t *testing.T) {
	boot(t, func(root *Sthread) {
		quota := 2 * tags.DefaultRegionSize / vm.PageSize
		parentSC := policy.New().SetMemPages(quota)
		child, err := root.Create(parentSC, func(s *Sthread, _ vm.Addr) vm.Addr {
			// Looser: must be rejected.
			if _, err := s.Create(policy.New().SetMemPages(quota+1), func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); err == nil {
				return 0
			}
			// Unset: inherited — the grandchild is still bounded at the
			// parent's cap.
			g, err := s.Create(policy.New(), func(g *Sthread, _ vm.Addr) vm.Addr {
				n := 0
				for ; n < 100; n++ {
					if _, err := g.Task.Mmap(tags.DefaultRegionSize, vm.PermRW); err != nil {
						break
					}
				}
				return vm.Addr(n)
			}, 0)
			if err != nil {
				return 0
			}
			ret, fault := s.Join(g)
			if fault != nil || int(ret) != 2 {
				return 0
			}
			// Equal and tighter: allowed.
			g2, err := s.Create(policy.New().SetMemPages(quota/2), func(*Sthread, vm.Addr) vm.Addr { return 7 }, 0)
			if err != nil {
				return 0
			}
			ret, fault = s.Join(g2)
			if fault != nil || ret != 7 {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("quota monotonicity: ret=%d fault=%v", ret, fault)
		}
	})
}

// TestMemQuotaGateUnaffectedByCallerQuota: a quota-bound worker's callgate
// invocations run under the gate creator's (unbounded) quota — the worker
// cannot starve the privileged path, and CallGate's implicit
// argument-perms policy is not mistaken for an escalation.
func TestMemQuotaGateUnaffectedByCallerQuota(t *testing.T) {
	boot(t, func(root *Sthread) {
		tg, err := root.App().Tags.TagNew(root.Task)
		if err != nil {
			t.Fatal(err)
		}
		arg, err := root.Smalloc(tg, 8)
		if err != nil {
			t.Fatal(err)
		}
		root.Store64(arg, 5)

		gateSC := policy.New().MustMemAdd(tg, vm.PermRead)
		var gate GateFunc = func(g *Sthread, a, _ vm.Addr) vm.Addr {
			// The gate allocates more than the caller's quota allows —
			// and must succeed, because quotas follow the creator.
			if _, err := g.Task.Mmap(4*tags.DefaultRegionSize, vm.PermRW); err != nil {
				return 0
			}
			return vm.Addr(g.Load64(a) + 1)
		}

		workerSC := policy.New().
			MustMemAdd(tg, vm.PermRead).
			SetMemPages(tags.DefaultRegionSize / vm.PageSize)
		workerSC.GateAdd(gate, gateSC, 0, "gate")
		spec := workerSC.Gates[0]

		worker, err := root.Create(workerSC, func(w *Sthread, _ vm.Addr) vm.Addr {
			ret, err := w.CallGate(spec, nil, arg)
			if err != nil {
				return 0
			}
			return ret
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(worker)
		if fault != nil || ret != 6 {
			t.Fatalf("gate under quota-bound caller: ret=%d fault=%v", ret, fault)
		}
	})
}
