// Property-based tests over the sthread layer's privilege monotonicity:
// no chain of sthread creations can widen access to a tag beyond what the
// chain's narrowest policy granted (§3.1: "an sthread can only create a
// child sthread with equal or lesser privileges than its own").

package sthread

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wedge/internal/policy"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// permLadder orders grants by strength for the derivation walk.
var permLadder = []vm.Perm{0, vm.PermRead, vm.PermRead | vm.PermCOW, vm.PermRW}

// weaker returns a random permission no stronger than p.
func weaker(rng *rand.Rand, p vm.Perm) vm.Perm {
	var candidates []vm.Perm
	for _, c := range permLadder {
		switch c {
		case 0:
			candidates = append(candidates, c)
		case vm.PermRead:
			if p.CanRead() {
				candidates = append(candidates, c)
			}
		case vm.PermRead | vm.PermCOW:
			if p.CanRead() {
				candidates = append(candidates, c)
			}
		case vm.PermRW:
			if p == vm.PermRW {
				candidates = append(candidates, c)
			}
		}
	}
	return candidates[rng.Intn(len(candidates))]
}

// TestCreationChainMonotonicProperty: derive a random chain of policies,
// each a random weakening of its parent, create the sthreads, and verify
// at the leaf that actual access matches the leaf policy exactly — a tag
// dropped or weakened anywhere up the chain can never come back.
func TestCreationChainMonotonicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ok := true
		boot(t, func(root *Sthread) {
			const nTags = 3
			tagList := make([]tags.Tag, nTags)
			bufs := make([]vm.Addr, nTags)
			for i := range tagList {
				tg, err := root.App().Tags.TagNew(root.Task)
				if err != nil {
					ok = false
					return
				}
				tagList[i] = tg
				b, err := root.Smalloc(tg, 16)
				if err != nil {
					ok = false
					return
				}
				root.Store64(b, 0xF00D)
				bufs[i] = b
			}

			// Walk a chain of 1-3 derivations, weakening at random.
			depth := 1 + rng.Intn(3)
			perms := make([]vm.Perm, nTags)
			for i := range perms {
				perms[i] = permLadder[rng.Intn(len(permLadder))]
			}
			cur := root
			for d := 0; d < depth; d++ {
				if d > 0 {
					for i := range perms {
						perms[i] = weaker(rng, perms[i])
					}
				}
				sc := policy.New()
				for i, p := range perms {
					if p != 0 {
						if err := sc.MemAdd(tagList[i], p); err != nil {
							ok = false
							return
						}
					}
				}
				// The leaf checks every tag against the leaf policy.
				if d == depth-1 {
					leafPerms := append([]vm.Perm(nil), perms...)
					child, err := cur.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
						for i, p := range leafPerms {
							var b [8]byte
							rErr := s.TryRead(bufs[i], b[:])
							if p.CanRead() != (rErr == nil) {
								return 0
							}
							wErr := s.TryWrite(bufs[i], []byte("w"))
							if p.CanWrite() != (wErr == nil) {
								return 0
							}
						}
						return 1
					}, 0)
					if err != nil {
						ok = false
						return
					}
					ret, fault := cur.Join(child)
					if fault != nil || ret != 1 {
						ok = false
					}
					return
				}
				// Interior node: spawn a child, hand its *Sthread back to
				// the walk, and park it until the chain below has been
				// created and joined. Derived creations check subsets
				// against this child's policy.
				resCh := make(chan *Sthread, 1)
				child, err := cur.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
					resCh <- s
					<-s.Task.Killed()
					return 1
				}, 0)
				if err != nil {
					ok = false
					return
				}
				cur = <-resCh
				defer func(c *Sthread) {
					c.Task.Kill()
					c.Task.Wait()
				}(child)
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestEscalationAlwaysRejected: for any tag the parent holds read-only (or
// not at all), attempting to create a child with a stronger grant fails at
// creation time.
func TestEscalationAlwaysRejected(t *testing.T) {
	prop := func(parentSeed, childSeed uint8) bool {
		parentPerm := permLadder[int(parentSeed)%len(permLadder)]
		childPerm := permLadder[int(childSeed)%len(permLadder)]
		// A child grant escalates if it needs a right the parent lacks.
		// Note COW only requires parent *read*: the private copy never
		// reaches the parent's data (see policy.CheckSubsetOf).
		stronger := (childPerm.CanRead() && !parentPerm.CanRead()) ||
			(childPerm&vm.PermWrite != 0 && parentPerm&vm.PermWrite == 0)
		ok := true
		boot(t, func(root *Sthread) {
			tg, err := root.App().Tags.TagNew(root.Task)
			if err != nil {
				ok = false
				return
			}
			if _, err := root.Smalloc(tg, 8); err != nil {
				ok = false
				return
			}

			midSC := policy.New()
			if parentPerm != 0 {
				if err := midSC.MemAdd(tg, parentPerm); err != nil {
					ok = false
					return
				}
			}
			childSC := policy.New()
			if childPerm != 0 {
				if err := childSC.MemAdd(tg, childPerm); err != nil {
					ok = false
					return
				}
			}
			mid, err := root.Create(midSC, func(s *Sthread, _ vm.Addr) vm.Addr {
				_, err := s.Create(childSC, func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0)
				if stronger != (err != nil) {
					return 0
				}
				return 1
			}, 0)
			if err != nil {
				ok = false
				return
			}
			ret, fault := root.Join(mid)
			if fault != nil || ret != 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
