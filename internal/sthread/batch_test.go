package sthread

import (
	"errors"
	"sync"
	"testing"
	"time"

	"wedge/internal/policy"
	"wedge/internal/vm"
)

// batchRig is the common test setup: an arena tag holding one ring, and
// a batch gate whose body doubles each entry's first word into its
// second.
func batchRig(t *testing.T, root *Sthread, depth, entrySize int, hooks BatchHooks) (*Recycled, *BatchRing) {
	t.Helper()
	app := root.App()
	tag, err := app.Tags.TagNew(root.Task)
	if err != nil {
		t.Fatal(err)
	}
	base, err := root.Smalloc(tag, BatchRingBytes(depth, entrySize))
	if err != nil {
		t.Fatal(err)
	}
	sc := policy.New().MustMemAdd(tag, vm.PermRW)
	body := func(g *Sthread, b *Batch, _ vm.Addr) {
		for b.More() {
			v := g.Load64(b.Arg())
			g.Store64(b.Arg()+8, 2*v)
			b.Complete(vm.Addr(v))
		}
	}
	gate, ring, err := root.NewRecycledBatch("batch", sc, body, BatchConfig{
		Base: base, Depth: depth, EntrySize: entrySize, Hooks: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gate, ring
}

// TestBatchRoundTrip drives more entries than the ring is deep through
// publish/await and checks every return word and in-ring result.
func TestBatchRoundTrip(t *testing.T) {
	boot(t, func(root *Sthread) {
		gate, ring := batchRig(t, root, 4, 64, BatchHooks{})
		defer gate.Close()
		for seq := uint64(0); seq < 13; seq++ {
			root.Store64(ring.EntryAddr(seq), 100+seq)
			if err := ring.PublishTo(seq + 1); err != nil {
				t.Fatal(err)
			}
			ret, err := ring.Await(seq)
			if err != nil {
				t.Fatalf("await %d: %v", seq, err)
			}
			if uint64(ret) != 100+seq {
				t.Fatalf("ret[%d] = %d", seq, ret)
			}
			if got := root.Load64(ring.EntryAddr(seq) + 8); got != 2*(100+seq) {
				t.Fatalf("result[%d] = %d", seq, got)
			}
		}
		if ring.Entries() != 13 {
			t.Fatalf("entries = %d", ring.Entries())
		}
	})
}

// TestBatchAmortizedSweep publishes a burst while the worker is held off
// the ring by the first entry, then checks the burst drained in fewer
// sweeps than entries — the run-to-completion property.
func TestBatchAmortizedSweep(t *testing.T) {
	boot(t, func(root *Sthread) {
		hold := make(chan struct{})
		var once sync.Once
		gate, ring := batchRig(t, root, 8, 64, BatchHooks{
			Dispatch: func(seq uint64) error {
				once.Do(func() { <-hold })
				return nil
			},
		})
		defer gate.Close()
		for seq := uint64(0); seq < 8; seq++ {
			root.Store64(ring.EntryAddr(seq), seq)
		}
		if err := ring.PublishTo(8); err != nil {
			t.Fatal(err)
		}
		close(hold)
		for seq := uint64(0); seq < 8; seq++ {
			if _, err := ring.Await(seq); err != nil {
				t.Fatalf("await %d: %v", seq, err)
			}
		}
		if b := ring.Batches(); b == 0 || b >= 8 {
			t.Fatalf("batches = %d for 8 entries", b)
		}
	})
}

// TestBatchDispatchAbort rejects one entry at dispatch and checks the
// producer sees ErrBatchAborted while neighbours complete normally.
func TestBatchDispatchAbort(t *testing.T) {
	boot(t, func(root *Sthread) {
		bad := errors.New("rejected")
		gate, ring := batchRig(t, root, 4, 64, BatchHooks{
			Dispatch: func(seq uint64) error {
				if seq == 1 {
					return bad
				}
				return nil
			},
		})
		defer gate.Close()
		for seq := uint64(0); seq < 3; seq++ {
			root.Store64(ring.EntryAddr(seq), seq)
		}
		if err := ring.PublishTo(3); err != nil {
			t.Fatal(err)
		}
		if _, err := ring.Await(0); err != nil {
			t.Fatalf("await 0: %v", err)
		}
		if _, err := ring.Await(1); !errors.Is(err, ErrBatchAborted) {
			t.Fatalf("await 1: %v", err)
		}
		if _, err := ring.Await(2); err != nil {
			t.Fatalf("await 2: %v", err)
		}
	})
}

// TestBatchLateAwaitSeesOverwrittenAbort pins the wedge the dnsd soak
// found: an aborted entry's position recycles (possible when migration
// retires the entry on the producer's behalf) and a successor at the
// same position is aborted too, overwriting the shared abort shadow —
// all before the first entry's producer makes its first Await check. A
// late Await must still report the abort instead of parking forever on
// a shadow value that can never again equal seq+1.
func TestBatchLateAwaitSeesOverwrittenAbort(t *testing.T) {
	boot(t, func(root *Sthread) {
		bad := errors.New("rejected")
		gate, ring := batchRig(t, root, 4, 64, BatchHooks{
			Dispatch: func(seq uint64) error {
				if seq == 1 || seq == 5 {
					return bad
				}
				return nil
			},
		})
		defer gate.Close()
		// First window: seqs 0-3, seq 1 rejected at dispatch. Only the
		// live entries are awaited — seq 1's producer is the laggard.
		for seq := uint64(0); seq < 4; seq++ {
			root.Store64(ring.EntryAddr(seq), seq)
		}
		if err := ring.PublishTo(4); err != nil {
			t.Fatal(err)
		}
		for _, seq := range []uint64{0, 2, 3} {
			if _, err := ring.Await(seq); err != nil {
				t.Fatalf("await %d: %v", seq, err)
			}
		}
		// Second window: seqs 4-5 reuse positions 0-1 (the migration
		// path is what recycles an unreleased aborted entry's position
		// in a real pool). Seq 5's abort overwrites seq 1's shadow.
		for seq := uint64(4); seq < 6; seq++ {
			root.Store64(ring.EntryAddr(seq), seq)
		}
		if err := ring.PublishTo(6); err != nil {
			t.Fatal(err)
		}
		if _, err := ring.Await(4); err != nil {
			t.Fatalf("await 4: %v", err)
		}
		if _, err := ring.Await(5); !errors.Is(err, ErrBatchAborted) {
			t.Fatalf("await 5: %v", err)
		}
		// The late first look at seq 1. On the broken protocol this
		// parks forever; fail fast instead of timing the test out.
		done := make(chan error, 1)
		go func() {
			_, err := ring.Await(1)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrBatchAborted) {
				t.Fatalf("late await 1: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("late Await(1) wedged on the overwritten abort shadow")
		}
	})
}

// TestBatchCompleteHookOrdersAwait holds the Complete hook and checks a
// producer cannot get past Await before the hook finishes, even though
// the worker body has already returned — the trust boundary the fd
// revocation and teardown path relies on.
func TestBatchCompleteHookOrdersAwait(t *testing.T) {
	boot(t, func(root *Sthread) {
		inHook := make(chan struct{})
		release := make(chan struct{})
		gate, ring := batchRig(t, root, 2, 64, BatchHooks{
			Complete: func(seq uint64, ret vm.Addr) {
				close(inHook)
				<-release
			},
		})
		defer gate.Close()
		root.Store64(ring.EntryAddr(0), 7)
		if err := ring.PublishTo(1); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			ring.Await(0)
			close(done)
		}()
		<-inHook
		select {
		case <-done:
			t.Fatal("Await returned before Complete hook finished")
		default:
		}
		close(release)
		<-done
	})
}

// TestBatchForgedStatusWord has the worker body stamp its own header
// "done" before blocking; the producer must not be released by the
// forged word — only the host-side completion shadow counts.
func TestBatchForgedStatusWord(t *testing.T) {
	boot(t, func(root *Sthread) {
		app := root.App()
		tag, _ := app.Tags.TagNew(root.Task)
		base, err := root.Smalloc(tag, BatchRingBytes(2, 64))
		if err != nil {
			t.Fatal(err)
		}
		sc := policy.New().MustMemAdd(tag, vm.PermRW)
		forged := make(chan struct{})
		release := make(chan struct{})
		body := func(g *Sthread, b *Batch, _ vm.Addr) {
			for b.More() {
				// Forge completion in simulated memory, then stall.
				g.Task.AtomicStore64(base+brHdrs+8, 42)
				g.Task.AtomicStore64(base+brHdrs, batchDone)
				g.Task.FutexWake(base+brHdrs, 8)
				close(forged)
				<-release
				b.Complete(1)
			}
		}
		gate, ring, err := root.NewRecycledBatch("forger", sc, body, BatchConfig{
			Base: base, Depth: 2, EntrySize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer gate.Close()
		if err := ring.PublishTo(1); err != nil {
			t.Fatal(err)
		}
		done := make(chan vm.Addr, 1)
		go func() {
			ret, _ := ring.Await(0)
			done <- ret
		}()
		<-forged
		select {
		case <-done:
			t.Fatal("forged status word released the producer")
		default:
		}
		close(release)
		if ret := <-done; ret != 1 {
			t.Fatalf("ret = %d, want the real completion's 1", ret)
		}
	})
}

// TestBatchGateFault kills the worker mid-entry and checks both the
// faulted entry's producer and later producers get ErrGateExited.
func TestBatchGateFault(t *testing.T) {
	boot(t, func(root *Sthread) {
		app := root.App()
		tag, _ := app.Tags.TagNew(root.Task)
		base, err := root.Smalloc(tag, BatchRingBytes(2, 64))
		if err != nil {
			t.Fatal(err)
		}
		sc := policy.New().MustMemAdd(tag, vm.PermRW)
		body := func(g *Sthread, b *Batch, _ vm.Addr) {
			for b.More() {
				g.Load64(vm.Addr(8)) // fault: ungranted
				b.Complete(1)
			}
		}
		gate, ring, err := root.NewRecycledBatch("boom", sc, body, BatchConfig{
			Base: base, Depth: 2, EntrySize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer gate.Close()
		if err := ring.PublishTo(1); err != nil {
			t.Fatal(err)
		}
		if _, err := ring.Await(0); !errors.Is(err, ErrGateExited) {
			t.Fatalf("await on faulted gate: %v", err)
		}
		if gate.Alive() {
			t.Fatal("gate still alive after fault")
		}
	})
}

// TestBatchRefusedWorkKillsGate checks the stuck-body defence: a body
// that returns without consuming pending work dies rather than wedging
// its producers.
func TestBatchRefusedWorkKillsGate(t *testing.T) {
	boot(t, func(root *Sthread) {
		app := root.App()
		tag, _ := app.Tags.TagNew(root.Task)
		base, err := root.Smalloc(tag, BatchRingBytes(2, 64))
		if err != nil {
			t.Fatal(err)
		}
		sc := policy.New().MustMemAdd(tag, vm.PermRW)
		body := func(g *Sthread, b *Batch, _ vm.Addr) {} // never calls More
		gate, ring, err := root.NewRecycledBatch("lazy", sc, body, BatchConfig{
			Base: base, Depth: 2, EntrySize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer gate.Close()
		if err := ring.PublishTo(1); err != nil {
			t.Fatal(err)
		}
		if _, err := ring.Await(0); !errors.Is(err, ErrGateExited) {
			t.Fatalf("await on lazy gate: %v", err)
		}
	})
}

// TestBatchCallRejected checks the single-call protocol is closed off on
// a batch-mode gate.
func TestBatchCallRejected(t *testing.T) {
	boot(t, func(root *Sthread) {
		gate, _ := batchRig(t, root, 2, 64, BatchHooks{})
		defer gate.Close()
		if _, err := gate.Call(root, 0); err == nil {
			t.Fatal("Call on batch gate succeeded")
		}
	})
}

// TestBatchBadGeometry rejects unaligned and empty rings.
func TestBatchBadGeometry(t *testing.T) {
	boot(t, func(root *Sthread) {
		app := root.App()
		tag, _ := app.Tags.TagNew(root.Task)
		base, _ := root.Smalloc(tag, 4096)
		sc := policy.New().MustMemAdd(tag, vm.PermRW)
		body := func(*Sthread, *Batch, vm.Addr) {}
		for _, cfg := range []BatchConfig{
			{Base: base, Depth: 0, EntrySize: 64},
			{Base: base, Depth: 4, EntrySize: 0},
			{Base: base, Depth: 4, EntrySize: 60},
			{Base: base + 4, Depth: 4, EntrySize: 64},
		} {
			if _, _, err := root.NewRecycledBatch("bad", sc, body, cfg); err == nil {
				t.Fatalf("geometry %+v accepted", cfg)
			}
		}
	})
}

// TestBatchClose parks a worker, closes the gate, and checks the worker
// exits and late publishes fail cleanly.
func TestBatchClose(t *testing.T) {
	boot(t, func(root *Sthread) {
		gate, ring := batchRig(t, root, 2, 64, BatchHooks{})
		if err := gate.Close(); err != nil {
			t.Fatal(err)
		}
		if gate.Alive() {
			t.Fatal("alive after close")
		}
		if err := ring.PublishTo(1); err != nil {
			t.Fatal(err) // publish itself succeeds; the await aborts
		}
		if _, err := ring.Await(0); !errors.Is(err, ErrGateExited) {
			t.Fatalf("await after close: %v", err)
		}
	})
}
