// Package sthread implements Wedge's compartment primitives (§3.1, §3.3,
// §4.1): sthreads — threads of control bound to default-deny security
// policies — and callgates, privilege-switching entry points implemented as
// separate sthreads, including the recycled (long-lived, futex-driven)
// variant used by throughput-critical applications.
//
// An App is one Wedge application instance. Booting it captures the
// "pristine snapshot" of the process image taken just before main: every
// sthread receives a private copy-on-write view of that snapshot (shared
// library state, loader state, non-sensitive globals) plus exactly the
// memory tags, file descriptors, and callgates its policy names. Nothing
// else.
package sthread

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// Errors.
var (
	ErrNotBooted    = errors.New("sthread: application not booted (call Main)")
	ErrGateDenied   = errors.New("sthread: callgate not authorized for this sthread")
	ErrBadGate      = errors.New("sthread: invalid callgate entry")
	ErrUIDEscalate  = errors.New("sthread: only root may change uid or filesystem root")
	ErrSELTransit   = errors.New("sthread: selinux domain transition not allowed")
	ErrGateExited   = errors.New("sthread: recycled callgate has terminated")
	ErrAfterPremain = errors.New("sthread: operation only valid before Main")
)

// Body is the code an sthread runs: the paper's cb_t. It receives the
// sthread handle (for memory access and further partitioning) and the
// untrusted argument, and its return value is collected by sthread_join.
type Body func(s *Sthread, arg vm.Addr) vm.Addr

// GateFunc is a callgate entry point. It additionally receives the trusted
// argument its creator registered, which the kernel stores and the caller
// can never influence (§3.3).
type GateFunc func(g *Sthread, arg, trusted vm.Addr) vm.Addr

// Stats counts primitive operations, used by the Figure 7 benchmarks and
// by tests asserting the per-request primitive budget of Table 2.
type Stats struct {
	SthreadsCreated atomic.Uint64
	GatesInvoked    atomic.Uint64
	RecycledCalls   atomic.Uint64
	Violations      atomic.Uint64
}

// Violation records one denied memory access observed under the emulation
// library (§3.4), where protection violations are logged instead of fatal.
type Violation struct {
	Sthread string
	Addr    vm.Addr
	Access  vm.Access
	Tag     tags.Tag // owning tag if the address is tagged, else NoTag
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %#x (tag %d)", v.Sthread, v.Access, uint64(v.Addr), v.Tag)
}

// App is one Wedge application: the kernel it runs on, its tag registry,
// the pristine pre-main snapshot, and bookkeeping shared by its sthreads.
type App struct {
	K    *kernel.Kernel
	Tags *tags.Registry
	// Init is the application's first task, whose address space the
	// pristine snapshot is taken from.
	Init *kernel.Task

	Stats Stats

	mu         sync.Mutex
	pristine   *vm.AddressSpace
	booted     bool
	boundaries map[int]*boundarySection
	violations []Violation
}

// boundarySection is the page-aligned ELF-section stand-in that backs
// BOUNDARY_VAR globals sharing one integer ID (§3.2, §4.1).
type boundarySection struct {
	base vm.Addr
	size int
	used int
	tag  tags.Tag // assigned lazily by BoundaryTag
}

// Boot creates an application on the kernel: an init task with an empty
// address space, ready for pre-main initialization.
func Boot(k *kernel.Kernel) *App {
	return &App{
		K:          k,
		Tags:       tags.NewRegistry(),
		Init:       k.NewInitTask(),
		boundaries: make(map[int]*boundarySection),
	}
}

// Premain runs initialization code in the init task, before the snapshot.
// It simulates everything that happens before the C entry point: dynamic
// loader relocation, library constructors, static data. Memory written here
// is part of the pristine image every sthread later inherits copy-on-write —
// which is exactly why the paper stresses that it "does not typically
// contain any sensitive data, since the application's code has yet to
// execute" (§4.1).
func (a *App) Premain(fn func(t *kernel.Task)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.booted {
		return ErrAfterPremain
	}
	fn(a.Init)
	return nil
}

// BoundaryVar appends a statically initialized global to the page-aligned
// section for id, creating the section on first use, and returns the
// global's address (the BOUNDARY_VAR macro). Must be called before Main.
func (a *App) BoundaryVar(id int, def []byte) (vm.Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.booted {
		return 0, ErrAfterPremain
	}
	sec, ok := a.boundaries[id]
	if !ok {
		size := vm.PageSize * 4
		for size < len(def) {
			size *= 2
		}
		base, err := a.Init.AS.MapAnon(size, vm.PermRW)
		if err != nil {
			return 0, err
		}
		sec = &boundarySection{base: base, size: size}
		a.boundaries[id] = sec
	}
	if sec.used+len(def) > sec.size {
		return 0, fmt.Errorf("sthread: boundary section %d full", id)
	}
	addr := sec.base + vm.Addr(sec.used)
	if err := a.Init.AS.Write(addr, def); err != nil {
		return 0, err
	}
	// Keep declarations 16-byte aligned like the ELF section would.
	sec.used += (len(def) + 15) &^ 15
	return addr, nil
}

// BoundaryTag returns the unique tag for the boundary section with the
// given ID, allocating it on first call (the BOUNDARY_TAG macro). Policies
// use the tag to grant sthreads access to the section's globals.
func (a *App) BoundaryTag(id int) (tags.Tag, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sec, ok := a.boundaries[id]
	if !ok {
		return tags.NoTag, fmt.Errorf("sthread: no boundary section with id %d", id)
	}
	if sec.tag == tags.NoTag {
		sec.tag = a.Tags.Adopt(a.Init.AS, sec.base, sec.size)
	}
	return sec.tag, nil
}

// Main takes the pristine snapshot and runs fn as the application's root
// sthread on the calling goroutine. The root sthread is the fully
// privileged pre-partitioning process: its policy is unrestricted and its
// address space is the live init address space.
//
// Boundary-variable sections are removed from the snapshot, so sthreads
// "do not obtain access to them by default" (§4.1); they become reachable
// only through an explicit BOUNDARY_TAG grant.
func (a *App) Main(fn func(root *Sthread)) error {
	a.mu.Lock()
	if a.booted {
		a.mu.Unlock()
		return errors.New("sthread: Main called twice")
	}
	a.booted = true
	a.pristine = a.Init.AS.CloneCOW()
	for _, sec := range a.boundaries {
		if err := a.pristine.Unmap(sec.base, sec.size); err != nil {
			a.mu.Unlock()
			return fmt.Errorf("sthread: carving boundary section: %w", err)
		}
	}
	a.mu.Unlock()

	root := &Sthread{app: a, Task: a.Init, Name: "main"}
	var err error
	a.Init.Run(func(*kernel.Task) {
		fn(root)
	})
	if _, fault := a.Init.Wait(); fault != nil {
		err = fault
	}
	return err
}

// clonePristine duplicates the pristine snapshot under the app lock
// (CloneCOW mutates the source's PTE permissions on first use).
func (a *App) clonePristine() (*vm.AddressSpace, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.booted {
		return nil, ErrNotBooted
	}
	return a.pristine.CloneCOW(), nil
}

// Violations returns the violations logged by emulated sthreads so far, in
// order of occurrence. The programmer runs a complete program execution
// under emulation and uses this report (optionally via Crowbar) to learn
// which permissions a refactored sthread is missing (§3.4).
func (a *App) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

func (a *App) logViolation(v Violation) {
	a.mu.Lock()
	a.violations = append(a.violations, v)
	a.mu.Unlock()
	a.Stats.Violations.Add(1)
}

// gateInstance is the kernel-held state of one instantiated callgate: the
// entry point, permissions and trusted argument are "stored in the kernel,
// so that the user may not tamper with them" (§4.1).
type gateInstance struct {
	spec    *policy.GateSpec
	entry   GateFunc
	sc      *policy.SC
	trusted vm.Addr
	creator *Sthread // supplies uid and filesystem root (§3.3)
}

// Sthread is a compartment: a kernel task bound to a security policy.
type Sthread struct {
	app  *App
	Task *kernel.Task
	Name string

	// SC is the policy the sthread was created with; nil for the root.
	SC     *policy.SC
	parent *Sthread

	// gates maps authorized gate specs to their kernel-held instances.
	gates map[*policy.GateSpec]*gateInstance

	// ret is the body's return value, collected by Join.
	ret vm.Addr

	// emul is non-nil when this sthread runs under the emulation library:
	// accesses are checked against the policy in software and violations
	// are logged instead of faulting.
	emul     *emulState
	emulDone chan struct{}

	// smallocTag, when non-zero, redirects Malloc to smalloc with that
	// tag (smalloc_on/smalloc_off §3.2). Per-sthread, as in the paper.
	smallocTag tags.Tag

	// privHeap is the base of the sthread's private, untagged heap,
	// lazily created on first Malloc.
	privHeapMu sync.Mutex
	privHeap   vm.Addr
}

// emulState tracks what an emulated sthread would have been allowed to
// touch, page by page, and holds its private copies of copy-on-write
// pages.
type emulState struct {
	mu    sync.Mutex
	perms map[uint64]vm.Perm

	// shadow maps page number to this emulated sthread's private copy of
	// a page it wrote under a copy-on-write grant. The paper's emulation
	// library "does not yet support copy-on-write memory permissions for
	// emulated sthreads" (§4.2); this extension closes the gap: a write
	// to a COW page copies the shared frame here and diverts the write,
	// so the creator (whose address space the emulated sthread otherwise
	// shares) never observes it — the same semantics a strict sthread
	// gets from the MMU.
	shadow map[uint64][]byte
}

// App returns the application this sthread belongs to.
func (s *Sthread) App() *App { return s.app }

// IsRoot reports whether this is the fully privileged root sthread.
func (s *Sthread) IsRoot() bool { return s.SC == nil }

// ---- sthread creation -------------------------------------------------------

// Create spawns a child sthread running body(arg) under policy sc: the
// paper's sthread_create. The child receives a COW view of the pristine
// snapshot, the named tag segments, copies of the named descriptors, and
// instances of the named callgates — and nothing else.
func (s *Sthread) Create(sc *policy.SC, body Body, arg vm.Addr) (*Sthread, error) {
	return s.CreateNamed("sthread", sc, body, arg)
}

// CreateNamed is Create with a diagnostic name.
func (s *Sthread) CreateNamed(name string, sc *policy.SC, body Body, arg vm.Addr) (*Sthread, error) {
	child, err := s.prepare(name, sc)
	if err != nil {
		return nil, err
	}
	s.app.Stats.SthreadsCreated.Add(1)
	child.Task.Start(func(*kernel.Task) {
		child.ret = body(child, arg)
	})
	return child, nil
}

// Join blocks until the child exits and returns the body's return value:
// the paper's sthread_join. If the child died on a protection fault, the
// fault is returned.
func (s *Sthread) Join(child *Sthread) (vm.Addr, error) {
	_, fault := child.Task.Wait()
	return child.ret, fault
}

// prepare validates sc against this sthread's privileges and assembles the
// child: address space, descriptor table, credentials, gate instances.
func (s *Sthread) prepare(name string, sc *policy.SC) (*Sthread, error) {
	if sc == nil {
		return nil, errors.New("sthread: nil policy (use policy.New for an empty one)")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := sc.CheckSubsetOf(s.SC); err != nil {
		return nil, err
	}

	// Unix semantics: only root may confine uid or filesystem root (§3.1).
	if (sc.UID != policy.InheritUID || sc.Root != "") && s.Task.UID != 0 {
		return nil, ErrUIDEscalate
	}
	// SELinux: any change of domain must be an allowed transition.
	childCtx := s.Task.Ctx
	if !sc.Ctx.IsZero() {
		if !s.app.K.Policy.CanTransition(s.Task.Ctx, sc.Ctx) {
			return nil, fmt.Errorf("%w: %s -> %s", ErrSELTransit, s.Task.Ctx, sc.Ctx)
		}
		childCtx = sc.Ctx
	}

	// Validate gate specs: each gate's permissions must be a subset of the
	// *creating* sthread's (§3.3), and its entry must be a GateFunc.
	for _, spec := range sc.Gates {
		if _, ok := spec.Entry.(GateFunc); !ok {
			return nil, fmt.Errorf("%w: %q entry is %T", ErrBadGate, spec.Name, spec.Entry)
		}
		if spec.SC != nil {
			if err := spec.SC.CheckSubsetOf(s.SC); err != nil {
				return nil, fmt.Errorf("callgate %q: %w", spec.Name, err)
			}
		}
	}

	// Assemble the address space: pristine snapshot + granted tags.
	as, err := s.app.clonePristine()
	if err != nil {
		return nil, err
	}
	for tag, perm := range sc.Mem {
		share := perm
		if share&vm.PermCOW != 0 {
			share = (share &^ vm.PermWrite) | vm.PermRead | vm.PermCOW
		}
		if err := s.app.Tags.Grant(as, tag, share); err != nil {
			as.Release()
			return nil, err
		}
	}

	// Apply the memory quota after the policy-granted mappings, so the
	// quota bounds what the sthread can map *beyond* its grants. Like an
	// rlimit it is inherited when the child's policy leaves it unset.
	if quota := sc.EffectiveMemPages(s.SC); quota > 0 {
		as.SetPageLimit(as.Pages() + quota)
	}

	task, err := s.Task.NewChildTask(as)
	if err != nil {
		as.Release()
		return nil, err
	}

	// Share exactly the granted descriptors, preserving their numbers.
	// Error paths from here on reap the never-started task: it is already
	// registered in the kernel's task table, and without an exit it would
	// be a task (and address-space) leak per failed creation.
	for fd, perm := range sc.FDs {
		if err := s.Task.ShareFDTo(task, fd, perm); err != nil {
			task.Exit(-1)
			return nil, fmt.Errorf("sthread: granting fd %d: %w", fd, err)
		}
	}

	// Credentials.
	task.Ctx = childCtx
	if sc.Root != "" {
		if err := s.Task.ChrootOn(task, sc.Root); err != nil {
			task.Exit(-1)
			return nil, err
		}
	}
	if sc.UID != policy.InheritUID {
		if err := s.Task.SetUIDOn(task, sc.UID); err != nil {
			task.Exit(-1)
			return nil, err
		}
	}

	child := &Sthread{
		app:    s.app,
		Task:   task,
		Name:   name,
		SC:     sc,
		parent: s,
		gates:  make(map[*policy.GateSpec]*gateInstance, len(sc.Gates)),
	}

	// Instantiate the callgates: "implicitly instantiated when the parent
	// binds that security policy to a newly created sthread" (§4.1). The
	// creator recorded is this sthread, whose uid and root the gate runs
	// with.
	for _, spec := range sc.Gates {
		gateSC := spec.SC
		if gateSC == nil {
			gateSC = policy.New()
		}
		child.gates[spec] = &gateInstance{
			spec:    spec,
			entry:   spec.Entry.(GateFunc),
			sc:      gateSC.Clone(),
			trusted: spec.Arg,
			creator: s,
		}
	}
	return child, nil
}

// ---- callgate invocation ----------------------------------------------------

// CallGate invokes an authorized callgate (the paper's cgate call). perms
// carries the additional grants the gate needs to read the caller-supplied
// argument; the kernel validates they are a subset of the caller's own
// permissions. The caller blocks until the gate terminates.
func (s *Sthread) CallGate(spec *policy.GateSpec, perms *policy.SC, arg vm.Addr) (vm.Addr, error) {
	inst, ok := s.gates[spec]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrGateDenied, spec.Name)
	}
	if perms == nil {
		perms = policy.New()
	}
	// The argument-accessing permissions must be a subset of the caller's
	// current permissions (§4.1).
	if err := perms.CheckSubsetOf(s.SC); err != nil {
		return 0, fmt.Errorf("callgate %q argument perms: %w", spec.Name, err)
	}

	// Effective gate policy: the kernel-held permissions plus the
	// caller's argument grants.
	eff := inst.sc.Clone()
	for tag, perm := range perms.Mem {
		eff.Mem[tag] |= perm
	}
	for fd, perm := range perms.FDs {
		eff.FDs[fd] |= perm
	}

	// The gate runs as a fresh sthread created on behalf of the gate's
	// creator: it inherits the creator's uid and filesystem root, not the
	// caller's (§3.3), and the caller cannot tamper with its memory map.
	gate, err := inst.creator.prepareGate(spec.Name, eff, s)
	if err != nil {
		return 0, err
	}
	s.app.Stats.GatesInvoked.Add(1)
	s.app.Stats.SthreadsCreated.Add(1)
	trusted := inst.trusted
	entry := inst.entry
	gate.Task.Start(func(*kernel.Task) {
		gate.ret = entry(gate, arg, trusted)
	})
	return s.Join(gate)
}

// prepareGate assembles a gate sthread. It differs from prepare in two
// ways: descriptor grants in the effective policy may name descriptors of
// either the creator or the caller (argument descriptors), and the
// subset check against the creator was already performed at instantiation.
func (s *Sthread) prepareGate(name string, eff *policy.SC, caller *Sthread) (*Sthread, error) {
	as, err := s.app.clonePristine()
	if err != nil {
		return nil, err
	}
	for tag, perm := range eff.Mem {
		share := perm
		if share&vm.PermCOW != 0 {
			share = (share &^ vm.PermWrite) | vm.PermRead | vm.PermCOW
		}
		if err := s.app.Tags.Grant(as, tag, share); err != nil {
			as.Release()
			return nil, err
		}
	}
	// The memory quota follows the same inheritance as uid and root: from
	// the gate's creator, not its caller. A quota-bound worker therefore
	// cannot starve the privileged gates it calls, and a quota set on the
	// gate's own policy still binds it.
	if quota := eff.EffectiveMemPages(s.SC); quota > 0 {
		as.SetPageLimit(as.Pages() + quota)
	}
	task, err := s.Task.NewChildTask(as)
	if err != nil {
		as.Release()
		return nil, err
	}
	for fd, perm := range eff.FDs {
		if err := s.Task.ShareFDTo(task, fd, perm); err != nil {
			// Argument descriptor: fall back to the caller's table.
			if err := caller.Task.ShareFDTo(task, fd, perm); err != nil {
				task.Exit(-1) // reap the never-started task
				return nil, fmt.Errorf("sthread: gate fd %d: %w", fd, err)
			}
		}
	}
	// Gates inherit the creator's credentials wholesale.
	task.Ctx = s.Task.Ctx

	gate := &Sthread{
		app:    s.app,
		Task:   task,
		Name:   name,
		SC:     eff,
		parent: s,
		gates:  make(map[*policy.GateSpec]*gateInstance, len(eff.Gates)),
	}
	for _, spec := range eff.Gates {
		entry, ok := spec.Entry.(GateFunc)
		if !ok {
			task.Exit(-1) // reap the never-started task
			return nil, fmt.Errorf("%w: %q", ErrBadGate, spec.Name)
		}
		gateSC := spec.SC
		if gateSC == nil {
			gateSC = policy.New()
		}
		gate.gates[spec] = &gateInstance{
			spec:    spec,
			entry:   entry,
			sc:      gateSC.Clone(),
			trusted: spec.Arg,
			creator: s,
		}
	}
	return gate, nil
}

// ---- memory access ----------------------------------------------------------

// Read copies simulated memory into buf, faulting (panic with *vm.Fault,
// terminating the sthread) on a protection violation — or logging it and
// reading through when running under the emulation library.
func (s *Sthread) Read(a vm.Addr, buf []byte) {
	if s.emul != nil {
		s.emulCheck(a, len(buf), vm.AccessRead)
		s.emulRead(a, buf)
		return
	}
	if err := s.Task.AS.Read(a, buf); err != nil {
		panicFault(err)
	}
}

// Write copies buf into simulated memory, with the same fault semantics as
// Read.
func (s *Sthread) Write(a vm.Addr, buf []byte) {
	if s.emul != nil {
		s.emulCheck(a, len(buf), vm.AccessWrite)
		s.emulWrite(a, buf)
		return
	}
	if err := s.Task.AS.Write(a, buf); err != nil {
		panicFault(err)
	}
}

// TryRead is Read returning the fault instead of terminating.
func (s *Sthread) TryRead(a vm.Addr, buf []byte) error {
	if s.emul != nil {
		s.emulCheck(a, len(buf), vm.AccessRead)
		return s.emul.read(s, a, buf)
	}
	return s.Task.AS.Read(a, buf)
}

// TryWrite is Write returning the fault instead of terminating.
func (s *Sthread) TryWrite(a vm.Addr, buf []byte) error {
	if s.emul != nil {
		s.emulCheck(a, len(buf), vm.AccessWrite)
		return s.emul.write(s, a, buf)
	}
	return s.Task.AS.Write(a, buf)
}

// Load64 reads a little-endian 64-bit word.
func (s *Sthread) Load64(a vm.Addr) uint64 {
	if s.emul == nil {
		// Direct address-space access: the stack buffer inside
		// vm.AddressSpace.Load64 does not escape, unlike one threaded
		// through Read's emulation-capable path.
		v, err := s.Task.AS.Load64(a)
		if err != nil {
			panicFault(err)
		}
		return v
	}
	var b [8]byte
	s.Read(a, b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Store64 writes a little-endian 64-bit word.
func (s *Sthread) Store64(a vm.Addr, v uint64) {
	if s.emul == nil {
		if err := s.Task.AS.Store64(a, v); err != nil {
			panicFault(err)
		}
		return
	}
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	s.Write(a, b[:])
}

// Zero overwrites [a, a+n) with zero bytes through this sthread's view of
// memory, enforcing write permission like any other store. It is the
// argument-block reset behind inter-principal scrubbing: a pool scheduler
// zeroes a recycled gate's argument memory before handing the gate to a
// different principal, closing the §3.3 residue channel.
func (s *Sthread) Zero(a vm.Addr, n int) error {
	// The zero source is shared and never written: TryWrite only reads
	// from it, and a per-call page-sized array would escape to the heap
	// on every scrub.
	for n > 0 {
		chunk := n
		if chunk > len(zeroPage) {
			chunk = len(zeroPage)
		}
		if err := s.TryWrite(a, zeroPage[:chunk]); err != nil {
			return err
		}
		a += vm.Addr(chunk)
		n -= chunk
	}
	return nil
}

// zeroPage is the shared all-zeros scrub source; it must never be
// written.
var zeroPage [vm.PageSize]byte

// ReadString reads a NUL-terminated string of at most max bytes. The
// read proceeds in chunks, so [a, a+max) must be readable even past the
// terminator — true for every schema field, whose capacity lies inside
// the argument block.
func (s *Sthread) ReadString(a vm.Addr, max int) string {
	buf := make([]byte, 0, 64)
	var chunk [64]byte
	for len(buf) < max {
		n := max - len(buf)
		if n > len(chunk) {
			n = len(chunk)
		}
		s.Read(a+vm.Addr(len(buf)), chunk[:n])
		for i := 0; i < n; i++ {
			if chunk[i] == 0 {
				return string(append(buf, chunk[:i]...))
			}
		}
		buf = append(buf, chunk[:n]...)
	}
	return string(buf)
}

// WriteString writes str plus a NUL terminator.
func (s *Sthread) WriteString(a vm.Addr, str string) {
	s.Write(a, append([]byte(str), 0))
}

func panicFault(err error) {
	var f *vm.Fault
	if errors.As(err, &f) {
		panic(f)
	}
	panic(err)
}

// ---- smalloc_on / smalloc_off and the private heap ---------------------------

// SmallocOn redirects subsequent Malloc calls in this sthread to smalloc
// with the given tag (§3.2). Like the paper's per-sthread flag it does not
// nest; calling it twice simply replaces the tag.
func (s *Sthread) SmallocOn(tag tags.Tag) { s.smallocTag = tag }

// SmallocOff restores Malloc to the private untagged heap.
func (s *Sthread) SmallocOff() { s.smallocTag = tags.NoTag }

// SmallocState returns the active redirection tag (for save/restore in
// signal handlers, as §4.1 advises).
func (s *Sthread) SmallocState() tags.Tag { return s.smallocTag }

// Smalloc allocates size bytes tagged with tag.
func (s *Sthread) Smalloc(tag tags.Tag, size int) (vm.Addr, error) {
	return s.app.Tags.Smalloc(s.Task.AS, tag, size)
}

// Sfree frees an smalloc'd block.
func (s *Sthread) Sfree(a vm.Addr) error {
	return s.app.Tags.Sfree(s.Task.AS, a)
}

// Malloc models the standard C malloc: untagged memory from the sthread's
// private heap, unreachable by any policy — unless smalloc_on is active, in
// which case the allocation is transparently redirected to tagged memory,
// which is how legacy allocation sites are retrofitted (§3.2).
func (s *Sthread) Malloc(size int) (vm.Addr, error) {
	if tag := s.smallocTag; tag != tags.NoTag {
		return s.app.Tags.Smalloc(s.Task.AS, tag, size)
	}
	s.privHeapMu.Lock()
	defer s.privHeapMu.Unlock()
	if s.privHeap == 0 {
		base, err := s.Task.AS.MapAnon(tags.DefaultRegionSize, vm.PermRW)
		if err != nil {
			return 0, err
		}
		if err := tags.InitHeap(s.Task.AS, base, tags.DefaultRegionSize); err != nil {
			return 0, err
		}
		s.privHeap = base
		if s.emul != nil {
			// An emulated sthread's own allocations are legitimately its
			// to touch; register them so they are not reported.
			s.emul.mu.Lock()
			for pn := base.PageNum(); pn < (base+tags.DefaultRegionSize-1).PageNum()+1; pn++ {
				s.emul.perms[pn] = vm.PermRW
			}
			s.emul.mu.Unlock()
		}
	}
	return tags.HeapAlloc(s.Task.AS, s.privHeap, size)
}

// Free releases a Malloc'd block, routing tagged addresses to sfree as the
// LD_PRELOAD shim does.
func (s *Sthread) Free(a vm.Addr) error {
	if s.app.Tags.TagOf(a) != tags.NoTag {
		return s.app.Tags.Sfree(s.Task.AS, a)
	}
	s.privHeapMu.Lock()
	base := s.privHeap
	s.privHeapMu.Unlock()
	if base == 0 {
		return tags.ErrBadFree
	}
	return tags.HeapFree(s.Task.AS, base, a)
}

// ---- emulation library --------------------------------------------------------

// CreateEmulated spawns a child under the sthread emulation library
// (§3.4): the child shares the parent's address space (the paper replaces
// sthreads with pthreads), every access succeeds, and accesses the policy
// would have denied are recorded in the application's violation log. The
// programmer uses this after refactoring, to learn what a strict policy is
// missing without crashing on each omission.
func (s *Sthread) CreateEmulated(name string, sc *policy.SC, body Body, arg vm.Addr) (*Sthread, error) {
	if sc == nil {
		return nil, errors.New("sthread: nil policy")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := sc.CheckSubsetOf(s.SC); err != nil {
		return nil, err
	}

	// Compute the page permissions the strict policy would have granted:
	// the pristine snapshot plus each granted tag.
	perms := make(map[uint64]vm.Perm)
	s.app.mu.Lock()
	if !s.app.booted {
		s.app.mu.Unlock()
		return nil, ErrNotBooted
	}
	s.app.pristine.ForEachPage(func(pn uint64, p vm.Perm) {
		// The private snapshot is readable and privately writable.
		perms[pn] = vm.PermRead | vm.PermCOW
	})
	s.app.mu.Unlock()
	for tag, perm := range sc.Mem {
		reg, err := s.app.Tags.Lookup(tag)
		if err != nil {
			return nil, err
		}
		for _, seg := range reg.Segments() {
			for pn := seg.Base.PageNum(); pn < (seg.End()-1).PageNum()+1; pn++ {
				perms[pn] = perm
			}
		}
	}

	// The emulation library replaces the sthread with a pthread sharing
	// the creator's address space and descriptor table (§4.2); no new
	// kernel task is involved.
	child := &Sthread{
		app:    s.app,
		Task:   s.Task,
		Name:   name,
		SC:     sc,
		parent: s,
		gates:  make(map[*policy.GateSpec]*gateInstance, len(sc.Gates)),
		emul:   &emulState{perms: perms, shadow: make(map[uint64][]byte)},
	}
	for _, spec := range sc.Gates {
		entry, ok := spec.Entry.(GateFunc)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrBadGate, spec.Name)
		}
		gateSC := spec.SC
		if gateSC == nil {
			gateSC = policy.New()
		}
		child.gates[spec] = &gateInstance{
			spec: spec, entry: entry, sc: gateSC.Clone(), trusted: spec.Arg, creator: s,
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		child.ret = body(child, arg)
	}()
	child.emulDone = done
	return child, nil
}

// JoinEmulated waits for an emulated sthread.
func (s *Sthread) JoinEmulated(child *Sthread) vm.Addr {
	<-child.emulDone
	return child.ret
}

// emulCheck logs a violation for any page of [a, a+n) the strict policy
// would not permit for the access mode.
func (s *Sthread) emulCheck(a vm.Addr, n int, access vm.Access) {
	if n <= 0 {
		n = 1
	}
	s.emul.mu.Lock()
	defer s.emul.mu.Unlock()
	for pn := a.PageNum(); pn <= (a + vm.Addr(n-1)).PageNum(); pn++ {
		perm, ok := s.emul.perms[pn]
		bad := !ok
		if !bad {
			if access == vm.AccessRead && !perm.CanRead() {
				bad = true
			}
			if access == vm.AccessWrite && !perm.CanWrite() {
				bad = true
			}
		}
		if bad {
			addr := vm.Addr(pn << vm.PageShift)
			if pn == a.PageNum() {
				addr = a
			}
			s.app.logViolation(Violation{
				Sthread: s.Name,
				Addr:    addr,
				Access:  access,
				Tag:     s.app.Tags.TagOf(addr),
			})
		}
	}
}

// emulRead and emulWrite access the shared address space, registering any
// fresh page the emulated sthread allocates as allowed.
func (s *Sthread) emulRead(a vm.Addr, buf []byte) {
	if err := s.emul.read(s, a, buf); err != nil {
		panicFault(err)
	}
}

func (s *Sthread) emulWrite(a vm.Addr, buf []byte) {
	if err := s.emul.write(s, a, buf); err != nil {
		panicFault(err)
	}
}

// forEachPagePiece splits [a, a+len(buf)) into per-page pieces and calls
// fn with the page number, the page-relative offset, and the buf slice
// covering that piece.
func forEachPagePiece(a vm.Addr, buf []byte, fn func(pn uint64, off int, piece []byte) error) error {
	for len(buf) > 0 {
		pn := a.PageNum()
		off := int(a) & (vm.PageSize - 1)
		n := vm.PageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if err := fn(pn, off, buf[:n]); err != nil {
			return err
		}
		a += vm.Addr(n)
		buf = buf[n:]
	}
	return nil
}

func (e *emulState) read(s *Sthread, a vm.Addr, buf []byte) error {
	return forEachPagePiece(a, buf, func(pn uint64, off int, piece []byte) error {
		e.mu.Lock()
		page, ok := e.shadow[pn]
		if ok {
			copy(piece, page[off:off+len(piece)])
		}
		e.mu.Unlock()
		if ok {
			return nil
		}
		return s.Task.AS.Read(vm.Addr(pn<<vm.PageShift)+vm.Addr(off), piece)
	})
}

func (e *emulState) write(s *Sthread, a vm.Addr, buf []byte) error {
	return forEachPagePiece(a, buf, func(pn uint64, off int, piece []byte) error {
		e.mu.Lock()
		page, shadowed := e.shadow[pn]
		cow := !shadowed && e.perms[pn]&vm.PermCOW != 0
		e.mu.Unlock()
		if cow {
			// First write to a COW page: copy the shared frame privately,
			// exactly what the MMU fault handler does for strict sthreads.
			page = make([]byte, vm.PageSize)
			if err := s.Task.AS.Read(vm.Addr(pn<<vm.PageShift), page); err != nil {
				return err
			}
			e.mu.Lock()
			// Another goroutine of the same emulated sthread may have
			// raced the copy; keep whichever landed first.
			if prior, ok := e.shadow[pn]; ok {
				page = prior
			} else {
				e.shadow[pn] = page
			}
			e.mu.Unlock()
			shadowed = true
		}
		if shadowed {
			e.mu.Lock()
			copy(page[off:off+len(piece)], piece)
			e.mu.Unlock()
			return nil
		}
		return s.Task.AS.Write(vm.Addr(pn<<vm.PageShift)+vm.Addr(off), piece)
	})
}
