package sthread

import (
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/vm"
)

// TestFailedCreateReapsTask: an sthread creation that fails after the
// kernel task exists (here: the policy grants a descriptor the creator
// does not hold) must reap that task. Before the fix, every failed
// creation left a never-started task in the kernel task table — a leak a
// server hits on each connection that races a closed descriptor.
func TestFailedCreateReapsTask(t *testing.T) {
	k := kernel.New()
	app := Boot(k)
	err := app.Main(func(root *Sthread) {
		before := k.TaskCount()
		sc := policy.New().FDAdd(999, kernel.FDRW) // fd 999 is not open
		if _, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			return 0
		}, 0); err == nil {
			t.Error("Create with an unheld fd grant should fail")
		}
		if got := k.TaskCount(); got != before {
			t.Errorf("task count %d after failed Create, want %d (leaked task)", got, before)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
