package sthread

import (
	"errors"
	"strings"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/tags"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

// boot spins up an app and runs fn as its root sthread.
func boot(t *testing.T, fn func(root *Sthread)) *App {
	t.Helper()
	app := Boot(kernel.New())
	if err := app.Main(fn); err != nil {
		t.Fatalf("Main: %v", err)
	}
	return app
}

func TestMainRunsRoot(t *testing.T) {
	ran := false
	boot(t, func(root *Sthread) {
		if !root.IsRoot() {
			t.Error("root sthread is not root")
		}
		ran = true
	})
	if !ran {
		t.Fatal("main body did not run")
	}
}

func TestMainTwice(t *testing.T) {
	app := Boot(kernel.New())
	if err := app.Main(func(*Sthread) {}); err != nil {
		t.Fatal(err)
	}
	if err := app.Main(func(*Sthread) {}); err == nil {
		t.Fatal("second Main succeeded")
	}
}

func TestPremainAfterMainFails(t *testing.T) {
	app := Boot(kernel.New())
	app.Main(func(*Sthread) {})
	if err := app.Premain(func(*kernel.Task) {}); !errors.Is(err, ErrAfterPremain) {
		t.Fatalf("Premain after Main: %v", err)
	}
}

// TestDefaultDeny is the core property of §3.1: a child sthread granted
// nothing cannot read memory its parent allocated after the snapshot.
func TestDefaultDeny(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, err := root.App().Tags.TagNew(root.Task)
		if err != nil {
			t.Fatalf("TagNew: %v", err)
		}
		secret, err := root.Smalloc(tag, 64)
		if err != nil {
			t.Fatalf("Smalloc: %v", err)
		}
		root.Write(secret, []byte("rsa-private-key"))

		child, err := root.Create(policy.New(), func(s *Sthread, arg vm.Addr) vm.Addr {
			var b [15]byte
			s.Read(arg, b[:]) // must fault: tag not granted
			return 1
		}, secret)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		ret, fault := root.Join(child)
		if fault == nil {
			t.Fatalf("child read ungranted memory (ret=%d)", ret)
		}
		var f *vm.Fault
		if !errors.As(fault, &f) {
			t.Fatalf("fault = %v, want *vm.Fault", fault)
		}
	})
}

func TestGrantedReadOnly(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		buf, _ := root.Smalloc(tag, 32)
		root.Write(buf, []byte("hello"))

		sc := policy.New()
		if err := sc.MemAdd(tag, vm.PermRead); err != nil {
			t.Fatal(err)
		}
		child, err := root.Create(sc, func(s *Sthread, arg vm.Addr) vm.Addr {
			var b [5]byte
			s.Read(arg, b[:])
			if string(b[:]) != "hello" {
				return 0
			}
			return 1
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("granted read failed: ret=%d fault=%v", ret, fault)
		}

		// Writing through a read-only grant must fault.
		child2, _ := root.Create(sc, func(s *Sthread, arg vm.Addr) vm.Addr {
			s.Write(arg, []byte("x"))
			return 1
		}, buf)
		if _, fault := root.Join(child2); fault == nil {
			t.Fatal("write through read-only grant succeeded")
		}
	})
}

func TestGrantedReadWriteSharesBothWays(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		buf, _ := root.Smalloc(tag, 32)
		sc := policy.New()
		sc.MemAdd(tag, vm.PermRW)
		child, err := root.Create(sc, func(s *Sthread, arg vm.Addr) vm.Addr {
			s.Write(arg, []byte("from-child"))
			return 0
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, fault := root.Join(child); fault != nil {
			t.Fatal(fault)
		}
		var b [10]byte
		root.Read(buf, b[:])
		if string(b[:]) != "from-child" {
			t.Fatalf("parent sees %q, want child's write", b[:])
		}
	})
}

// TestCOWGrantIsolation: a COW grant lets the child read and privately
// write; the parent never sees the child's writes.
func TestCOWGrantIsolation(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		buf, _ := root.Smalloc(tag, 32)
		root.Write(buf, []byte("original"))

		sc := policy.New()
		if err := sc.MemAdd(tag, vm.PermRead|vm.PermCOW); err != nil {
			t.Fatal(err)
		}
		child, err := root.Create(sc, func(s *Sthread, arg vm.Addr) vm.Addr {
			var b [8]byte
			s.Read(arg, b[:])
			if string(b[:]) != "original" {
				return 0
			}
			s.Write(arg, []byte("mutated!"))
			s.Read(arg, b[:])
			if string(b[:]) != "mutated!" {
				return 0
			}
			return 1
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("COW child failed: ret=%d fault=%v", ret, fault)
		}
		var b [8]byte
		root.Read(buf, b[:])
		if string(b[:]) != "original" {
			t.Fatalf("parent sees %q; COW write leaked", b[:])
		}
	})
}

// TestPristineSnapshotInherited: memory initialized before main is visible
// to every sthread, copy-on-write.
func TestPristineSnapshotInherited(t *testing.T) {
	app := Boot(kernel.New())
	var global vm.Addr
	app.Premain(func(init *kernel.Task) {
		a, err := init.Mmap(vm.PageSize, vm.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		init.AS.Write(a, []byte("loader-state"))
		global = a
	})
	err := app.Main(func(root *Sthread) {
		child, err := root.Create(policy.New(), func(s *Sthread, arg vm.Addr) vm.Addr {
			var b [12]byte
			s.Read(arg, b[:])
			if string(b[:]) != "loader-state" {
				return 0
			}
			// Private write: must not be seen by parent.
			s.Write(arg, []byte("CHILD-STATE!"))
			return 1
		}, global)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("pristine read failed: ret=%d fault=%v", ret, fault)
		}
		var b [12]byte
		root.Read(global, b[:])
		if string(b[:]) != "loader-state" {
			t.Fatalf("root sees %q; child's COW write leaked into parent", b[:])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPostSnapshotParentMemoryInvisible: memory the parent maps after main
// is NOT part of the pristine image and never appears in children.
func TestPostSnapshotParentMemoryInvisible(t *testing.T) {
	boot(t, func(root *Sthread) {
		a, err := root.Task.Mmap(vm.PageSize, vm.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		root.Write(a, []byte("post-main secret"))
		child, _ := root.Create(policy.New(), func(s *Sthread, arg vm.Addr) vm.Addr {
			var b [16]byte
			s.Read(arg, b[:])
			return 1
		}, a)
		if _, fault := root.Join(child); fault == nil {
			t.Fatal("child read parent's post-snapshot memory")
		}
	})
}

func TestMonotonicityEscalationRejected(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		scRead := policy.New().MustMemAdd(tag, vm.PermRead)
		child, err := root.Create(scRead, func(s *Sthread, arg vm.Addr) vm.Addr {
			// The read-only child tries to mint an rw grandchild.
			scRW := policy.New().MustMemAdd(tags.Tag(tag), vm.PermRW)
			if _, err := s.Create(scRW, func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); err == nil {
				return 0 // escalation succeeded: bad
			}
			// A read grandchild is fine.
			g, err := s.Create(policy.New().MustMemAdd(tag, vm.PermRead),
				func(*Sthread, vm.Addr) vm.Addr { return 7 }, 0)
			if err != nil {
				return 0
			}
			ret, fault := s.Join(g)
			if fault != nil || ret != 7 {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("monotonicity test failed: ret=%d fault=%v", ret, fault)
		}
	})
}

func TestFDGrant(t *testing.T) {
	k := kernel.New()
	app := Boot(k)
	err := app.Main(func(root *Sthread) {
		// A file the root opens; the child gets fd read-only.
		fs := root.Task.Kernel().FS
		fs.MkdirAll(root.Task.Cred(), fs.Root(), "/etc", 0o755)
		fs.WriteFile(root.Task.Cred(), fs.Root(), "/etc/motd", []byte("welcome"), 0o644)
		fd, err := root.Task.Open("/etc/motd", vfs.ORdonly, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc := policy.New().FDAdd(fd, kernel.FDRead)
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			var b [7]byte
			if _, err := s.Task.ReadFD(fd, b[:]); err != nil {
				return 0
			}
			if string(b[:]) != "welcome" {
				return 0
			}
			// Writing through the read grant must fail.
			if _, err := s.Task.WriteFD(fd, []byte("x")); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("fd grant failed: ret=%d fault=%v", ret, fault)
		}

		// Ungranted fds must not exist in the child at all.
		child2, _ := root.Create(policy.New(), func(s *Sthread, _ vm.Addr) vm.Addr {
			if _, err := s.Task.ReadFD(fd, make([]byte, 1)); err == nil {
				return 0
			}
			return 1
		}, 0)
		ret, fault = root.Join(child2)
		if fault != nil || ret != 1 {
			t.Fatal("ungranted fd visible in child")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUIDAndChroot(t *testing.T) {
	k := kernel.New()
	app := Boot(k)
	err := app.Main(func(root *Sthread) {
		fs := k.FS
		fs.MkdirAll(root.Task.Cred(), fs.Root(), "/var/empty", 0o755)
		fs.WriteFile(root.Task.Cred(), fs.Root(), "/etc/shadow", []byte("secret"), 0o600)

		sc := policy.New().SetUID(99).SetRoot("/var/empty")
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			if s.Task.UID != 99 {
				return 0
			}
			// Shadow file unreachable: outside the chroot.
			if _, err := s.Task.Open("/etc/shadow", vfs.ORdonly, 0); err == nil {
				return 0
			}
			// And the child may not undo its uid.
			if err := s.Task.SetUID(0); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("uid/chroot confinement failed: ret=%d fault=%v", ret, fault)
		}

		// A non-root child cannot create children with uid/root changes.
		child2, _ := root.Create(policy.New().SetUID(99), func(s *Sthread, _ vm.Addr) vm.Addr {
			if _, err := s.Create(policy.New().SetUID(0), func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); !errors.Is(err, ErrUIDEscalate) {
				return 0
			}
			return 1
		}, 0)
		ret, fault = root.Join(child2)
		if fault != nil || ret != 1 {
			t.Fatal("non-root uid change allowed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSELinuxTransition(t *testing.T) {
	k := kernel.New()
	k.Policy.AllowAll("worker_t")
	app := Boot(k)
	err := app.Main(func(root *Sthread) {
		sc := policy.New()
		if err := sc.SELContext("system_u:system_r:worker_t"); err != nil {
			t.Fatal(err)
		}
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			if s.Task.Ctx.Type != "worker_t" {
				return 0
			}
			// worker_t has no transition to admin_t.
			bad := policy.New()
			bad.SELContext("system_u:system_r:admin_t")
			if _, err := s.Create(bad, func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("selinux transition test failed: ret=%d fault=%v", ret, fault)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ---- callgates ---------------------------------------------------------------

func TestCallgateBasics(t *testing.T) {
	boot(t, func(root *Sthread) {
		keyTag, _ := root.App().Tags.TagNew(root.Task)
		key, _ := root.Smalloc(keyTag, 16)
		root.Write(key, []byte("private-rsa-key!"))

		argTag, _ := root.App().Tags.TagNew(root.Task)

		// The gate may read the key; it returns a value derived from it.
		gateSC := policy.New().MustMemAdd(keyTag, vm.PermRead)
		var sign GateFunc = func(g *Sthread, arg, trusted vm.Addr) vm.Addr {
			var k [16]byte
			g.Read(trusted, k[:])
			var in [4]byte
			g.Read(arg, in[:])
			sum := vm.Addr(0)
			for _, b := range k {
				sum += vm.Addr(b)
			}
			for _, b := range in {
				sum += vm.Addr(b)
			}
			return sum
		}

		workerSC := policy.New().MustMemAdd(argTag, vm.PermRW)
		workerSC.GateAdd(sign, gateSC, key, "sign")
		spec := workerSC.Gates[0]

		child, err := root.Create(workerSC, func(s *Sthread, _ vm.Addr) vm.Addr {
			arg, err := s.Smalloc(argTag, 4)
			if err != nil {
				return 0
			}
			s.Write(arg, []byte{1, 2, 3, 4})
			perms := policy.New().MustMemAdd(argTag, vm.PermRead)
			ret, err := s.CallGate(spec, perms, arg)
			if err != nil {
				return 0
			}
			return ret
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil {
			t.Fatal(fault)
		}
		want := vm.Addr(0)
		for _, b := range []byte("private-rsa-key!") {
			want += vm.Addr(b)
		}
		want += 1 + 2 + 3 + 4
		if ret != want {
			t.Fatalf("gate returned %d, want %d", ret, want)
		}
	})
}

// TestCallgateDenied: an sthread without the gate in its policy cannot
// invoke it.
func TestCallgateDenied(t *testing.T) {
	boot(t, func(root *Sthread) {
		var g GateFunc = func(*Sthread, vm.Addr, vm.Addr) vm.Addr { return 42 }
		authorized := policy.New()
		authorized.GateAdd(g, policy.New(), 0, "gate")
		spec := authorized.Gates[0]

		// Child created WITHOUT the gate grant.
		child, _ := root.Create(policy.New(), func(s *Sthread, _ vm.Addr) vm.Addr {
			if _, err := s.CallGate(spec, nil, 0); !errors.Is(err, ErrGateDenied) {
				return 0
			}
			return 1
		}, 0)
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatal("unauthorized gate invocation succeeded")
		}
	})
}

// TestCallgateCannotReadCallerPrivateMemory: the gate runs in its own
// address space assembled from its own policy; the caller's private
// allocations are not in it.
func TestCallgateCannotReadCallerPrivateMemory(t *testing.T) {
	boot(t, func(root *Sthread) {
		probeRet := make(chan error, 1)
		var g GateFunc = func(gs *Sthread, arg, _ vm.Addr) vm.Addr {
			probeRet <- gs.TryRead(arg, make([]byte, 8))
			return 0
		}
		sc := policy.New()
		sc.GateAdd(g, policy.New(), 0, "probe")
		spec := sc.Gates[0]

		child, _ := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			private, err := s.Malloc(64)
			if err != nil {
				return 0
			}
			s.Write(private, []byte("caller-secret"))
			s.CallGate(spec, nil, private) // pass a pointer to private memory
			return 1
		}, 0)
		if _, fault := root.Join(child); fault != nil {
			t.Fatal(fault)
		}
		if err := <-probeRet; err == nil {
			t.Fatal("gate read the caller's private memory")
		}
	})
}

// TestCallgateArgPermsMustBeCallersSubset: a caller cannot smuggle extra
// privileges to a gate beyond its own.
func TestCallgateArgPermsMustBeCallersSubset(t *testing.T) {
	boot(t, func(root *Sthread) {
		secretTag, _ := root.App().Tags.TagNew(root.Task)
		var g GateFunc = func(*Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 }
		sc := policy.New()
		sc.GateAdd(g, policy.New(), 0, "g")
		spec := sc.Gates[0]
		child, _ := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			perms := policy.New().MustMemAdd(secretTag, vm.PermRead) // not held by caller
			if _, err := s.CallGate(spec, perms, 0); err == nil {
				return 0
			}
			return 1
		}, 0)
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatal("caller smuggled extra privileges into a gate")
		}
	})
}

// TestCallgateGatePermsMustBeCreatorsSubset: sc_cgate_add with privileges
// the creator lacks is rejected at sthread creation (§3.3).
func TestCallgateGatePermsMustBeCreatorsSubset(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		limited := policy.New() // no access to tag
		child, _ := root.Create(limited, func(s *Sthread, _ vm.Addr) vm.Addr {
			var g GateFunc = func(*Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 }
			overSC := policy.New().MustMemAdd(tag, vm.PermRead)
			childSC := policy.New()
			childSC.GateAdd(g, overSC, 0, "over")
			if _, err := s.Create(childSC, func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); err == nil {
				return 0
			}
			return 1
		}, 0)
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatal("gate with privileges beyond creator accepted")
		}
	})
}

// TestCallgateTrustedArgTamperproof: the trusted argument comes from the
// kernel-held instantiation; the caller passes only the untrusted one.
func TestCallgateTrustedArgTamperproof(t *testing.T) {
	boot(t, func(root *Sthread) {
		cfgTag, _ := root.App().Tags.TagNew(root.Task)
		trusted, _ := root.Smalloc(cfgTag, 8)
		root.Write(trusted, []byte("TRUSTED!"))

		got := make(chan string, 1)
		var g GateFunc = func(gs *Sthread, arg, tr vm.Addr) vm.Addr {
			var b [8]byte
			gs.Read(tr, b[:])
			got <- string(b[:])
			return 0
		}
		gateSC := policy.New().MustMemAdd(cfgTag, vm.PermRead)
		sc := policy.New()
		sc.GateAdd(g, gateSC, trusted, "cfg")
		spec := sc.Gates[0]

		child, _ := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			// The caller passes garbage as the untrusted argument; the
			// trusted one is beyond its reach.
			s.CallGate(spec, nil, 0xDEAD)
			return 1
		}, 0)
		if _, fault := root.Join(child); fault != nil {
			t.Fatal(fault)
		}
		if s := <-got; s != "TRUSTED!" {
			t.Fatalf("gate saw trusted arg %q", s)
		}
	})
}

// TestCallgateInheritsCreatorCredentials: §3.3 "a callgate also inherits
// the filesystem root and user id of its creator", not of its caller.
func TestCallgateInheritsCreatorCredentials(t *testing.T) {
	k := kernel.New()
	app := Boot(k)
	err := app.Main(func(root *Sthread) {
		k.FS.MkdirAll(root.Task.Cred(), k.FS.Root(), "/var/empty", 0o755)
		uidSeen := make(chan int, 1)
		var g GateFunc = func(gs *Sthread, _, _ vm.Addr) vm.Addr {
			uidSeen <- gs.Task.UID
			return 0
		}
		sc := policy.New().SetUID(99).SetRoot("/var/empty")
		sc.GateAdd(g, policy.New(), 0, "whoami")
		spec := sc.Gates[0]
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			s.CallGate(spec, nil, 0)
			return 0
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		root.Join(child)
		if uid := <-uidSeen; uid != 0 {
			t.Fatalf("gate ran with caller uid %d, want creator uid 0", uid)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAuthCallgatePromotesWorker is the §5.2 idiom: the callgate, upon
// successful authentication, changes the worker's user id.
func TestAuthCallgatePromotesWorker(t *testing.T) {
	boot(t, func(root *Sthread) {
		// The gate needs the worker's handle, which only exists after
		// Create has already started the worker; hand it over through a
		// channel the gate drains on first use.
		workerCh := make(chan *Sthread, 1)
		var auth GateFunc = func(gs *Sthread, arg, _ vm.Addr) vm.Addr {
			if arg == 1 { // "correct password"
				gs.Task.SetUIDOn((<-workerCh).Task, 1000)
				return 1
			}
			return 0
		}
		sc := policy.New().SetUID(99)
		sc.GateAdd(auth, policy.New(), 0, "auth")
		spec := sc.Gates[0]
		child, err := root.Create(sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			if s.Task.UID != 99 {
				return 0
			}
			if ret, err := s.CallGate(spec, nil, 0); err != nil || ret != 0 {
				return 0 // wrong password must not authenticate
			}
			if s.Task.UID != 99 {
				return 0
			}
			if ret, err := s.CallGate(spec, nil, 1); err != nil || ret != 1 {
				return 0
			}
			if s.Task.UID != 1000 {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		workerCh <- child
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatalf("auth promotion failed: ret=%d fault=%v", ret, fault)
		}
	})
}

// ---- recycled callgates --------------------------------------------------------

func TestRecycledBasic(t *testing.T) {
	boot(t, func(root *Sthread) {
		var double GateFunc = func(_ *Sthread, arg, _ vm.Addr) vm.Addr { return arg * 2 }
		r, err := root.NewRecycled("double", policy.New(), double, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for i := vm.Addr(1); i <= 10; i++ {
			ret, err := r.Call(root, i)
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
			if ret != i*2 {
				t.Fatalf("call %d returned %d", i, ret)
			}
		}
		if got := root.App().Stats.RecycledCalls.Load(); got != 10 {
			t.Fatalf("RecycledCalls = %d, want 10", got)
		}
	})
}

// TestRecycledStateLeaks documents the isolation trade-off the paper warns
// about: a recycled gate's memory persists across invocations.
func TestRecycledStateLeaks(t *testing.T) {
	boot(t, func(root *Sthread) {
		scratchTag, _ := root.App().Tags.TagNew(root.Task)
		scratch, _ := root.Smalloc(scratchTag, 8)
		gateSC := policy.New().MustMemAdd(scratchTag, vm.PermRW)
		var fn GateFunc = func(g *Sthread, arg, _ vm.Addr) vm.Addr {
			prev := g.Load64(scratch)
			g.Store64(scratch, uint64(arg))
			return vm.Addr(prev)
		}
		r, err := root.NewRecycled("leaky", gateSC, fn, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		r.Call(root, 111)
		prev, err := r.Call(root, 222)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 111 {
			t.Fatalf("second call saw %d; recycled gates should retain state (got fresh state instead)", prev)
		}
	})
}

func TestRecycledCloseThenCall(t *testing.T) {
	boot(t, func(root *Sthread) {
		var fn GateFunc = func(_ *Sthread, arg, _ vm.Addr) vm.Addr { return arg }
		r, err := root.NewRecycled("g", policy.New(), fn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Call(root, 1); !errors.Is(err, ErrGateExited) {
			t.Fatalf("call after close: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
	})
}

// ---- boundary variables ---------------------------------------------------------

func TestBoundaryVarExcludedFromSnapshot(t *testing.T) {
	app := Boot(kernel.New())
	addr, err := app.BoundaryVar(1, []byte("static-secret"))
	if err != nil {
		t.Fatal(err)
	}
	err = app.Main(func(root *Sthread) {
		// Default child: the boundary section must be unmapped.
		child, _ := root.Create(policy.New(), func(s *Sthread, a vm.Addr) vm.Addr {
			s.Read(a, make([]byte, 13))
			return 1
		}, addr)
		if _, fault := root.Join(child); fault == nil {
			t.Fatal("boundary var visible without a grant")
		}

		// With a BOUNDARY_TAG grant it is readable.
		btag, err := app.BoundaryTag(1)
		if err != nil {
			t.Fatal(err)
		}
		sc := policy.New().MustMemAdd(btag, vm.PermRead)
		child2, err := root.Create(sc, func(s *Sthread, a vm.Addr) vm.Addr {
			var b [13]byte
			s.Read(a, b[:])
			if string(b[:]) != "static-secret" {
				return 0
			}
			return 1
		}, addr)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child2)
		if fault != nil || ret != 1 {
			t.Fatalf("granted boundary read failed: ret=%d fault=%v", ret, fault)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryVarAfterMainFails(t *testing.T) {
	app := Boot(kernel.New())
	app.Main(func(*Sthread) {})
	if _, err := app.BoundaryVar(1, []byte("x")); !errors.Is(err, ErrAfterPremain) {
		t.Fatalf("BoundaryVar after Main: %v", err)
	}
}

func TestBoundaryTagUnknownID(t *testing.T) {
	app := Boot(kernel.New())
	if _, err := app.BoundaryTag(42); err == nil {
		t.Fatal("BoundaryTag of unknown id succeeded")
	}
}

// ---- smalloc_on / smalloc_off -----------------------------------------------------

func TestSmallocOnRedirectsMalloc(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)

		// Untagged malloc first.
		plain, err := root.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if got := root.App().Tags.TagOf(plain); got != tags.NoTag {
			t.Fatalf("plain malloc landed in tag %d", got)
		}

		root.SmallocOn(tag)
		tagged, err := root.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if got := root.App().Tags.TagOf(tagged); got != tag {
			t.Fatalf("redirected malloc landed in tag %d, want %d", got, tag)
		}
		root.SmallocOff()

		plain2, _ := root.Malloc(32)
		if got := root.App().Tags.TagOf(plain2); got != tags.NoTag {
			t.Fatalf("malloc after smalloc_off landed in tag %d", got)
		}

		// Free must route correctly in both cases.
		if err := root.Free(tagged); err != nil {
			t.Fatalf("Free(tagged): %v", err)
		}
		if err := root.Free(plain); err != nil {
			t.Fatalf("Free(plain): %v", err)
		}
	})
}

// ---- emulation library -------------------------------------------------------------

func TestEmulationLogsViolations(t *testing.T) {
	boot(t, func(root *Sthread) {
		okTag, _ := root.App().Tags.TagNew(root.Task)
		secretTag, _ := root.App().Tags.TagNew(root.Task)
		okBuf, _ := root.Smalloc(okTag, 32)
		secret, _ := root.Smalloc(secretTag, 32)
		root.Write(secret, []byte("shh"))

		sc := policy.New().MustMemAdd(okTag, vm.PermRW)
		child, err := root.CreateEmulated("refactored", sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			s.Write(okBuf, []byte("fine"))  // granted: no violation
			s.Read(secret, make([]byte, 3)) // NOT granted: must be logged, not fatal
			s.Write(secret, []byte("abc"))  // also logged
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ret := root.JoinEmulated(child); ret != 1 {
			t.Fatalf("emulated body did not complete: ret=%d", ret)
		}
		v := root.App().Violations()
		if len(v) != 2 {
			t.Fatalf("violations = %d (%v), want 2", len(v), v)
		}
		if v[0].Access != vm.AccessRead || v[0].Tag != secretTag {
			t.Fatalf("violation 0 = %v", v[0])
		}
		if v[1].Access != vm.AccessWrite {
			t.Fatalf("violation 1 = %v", v[1])
		}
	})
}

func TestEmulationAllowsPristine(t *testing.T) {
	app := Boot(kernel.New())
	var global vm.Addr
	app.Premain(func(init *kernel.Task) {
		global, _ = init.Mmap(vm.PageSize, vm.PermRW)
	})
	err := app.Main(func(root *Sthread) {
		child, err := root.CreateEmulated("e", policy.New(), func(s *Sthread, _ vm.Addr) vm.Addr {
			s.Read(global, make([]byte, 8))
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		root.JoinEmulated(child)
		if n := len(root.App().Violations()); n != 0 {
			t.Fatalf("pristine access logged %d violations", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ---- misc ---------------------------------------------------------------------------

func TestReadWriteStringHelpers(t *testing.T) {
	boot(t, func(root *Sthread) {
		a, _ := root.Malloc(64)
		root.WriteString(a, "hello world")
		if s := root.ReadString(a, 64); s != "hello world" {
			t.Fatalf("ReadString = %q", s)
		}
		if s := root.ReadString(a, 5); s != "hello" {
			t.Fatalf("truncated ReadString = %q", s)
		}
	})
}

func TestViolationString(t *testing.T) {
	v := Violation{Sthread: "w", Addr: 0x1000, Access: vm.AccessRead, Tag: 3}
	if !strings.Contains(v.String(), "w: read 0x1000") {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestStatsCount(t *testing.T) {
	app := boot(t, func(root *Sthread) {
		for i := 0; i < 3; i++ {
			c, _ := root.Create(policy.New(), func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0)
			root.Join(c)
		}
	})
	if got := app.Stats.SthreadsCreated.Load(); got != 3 {
		t.Fatalf("SthreadsCreated = %d, want 3", got)
	}
}

// TestEmulatedCOWGrantIsolation: the emulation-library extension beyond
// the paper ("our current implementation does not yet support
// copy-on-write memory permissions for emulated sthreads", §4.2). An
// emulated sthread with a COW grant reads the shared contents, sees its
// own writes, logs no violations for them — and the creator, whose
// address space the emulated sthread shares, never observes the writes.
// The semantics match TestCOWGrantIsolation's strict run exactly.
func TestEmulatedCOWGrantIsolation(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		buf, _ := root.Smalloc(tag, 32)
		root.Write(buf, []byte("original"))

		sc := policy.New()
		if err := sc.MemAdd(tag, vm.PermRead|vm.PermCOW); err != nil {
			t.Fatal(err)
		}
		emu, err := root.CreateEmulated("cow-emul", sc, func(s *Sthread, arg vm.Addr) vm.Addr {
			var b [8]byte
			s.Read(arg, b[:])
			if string(b[:]) != "original" {
				return 0
			}
			s.Write(arg, []byte("mutated!"))
			s.Read(arg, b[:])
			if string(b[:]) != "mutated!" {
				return 0
			}
			// A second write to the now-shadowed page must stay private
			// too (the non-first-write path).
			s.Write(arg+8, []byte("x"))
			return 1
		}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if ret := root.JoinEmulated(emu); ret != 1 {
			t.Fatal("emulated COW child failed")
		}
		if n := len(root.App().Violations()); n != 0 {
			t.Fatalf("COW writes logged %d violations: %v", n, root.App().Violations())
		}
		var b [9]byte
		root.Read(buf, b[:])
		if string(b[:8]) != "original" || b[8] != 0 {
			t.Fatalf("creator sees %q; emulated COW write leaked through the shared address space", b[:])
		}
	})
}

// TestEmulatedCOWSpanningPages: a COW write crossing a page boundary
// shadows both pages; reads crossing the boundary stitch the pieces.
func TestEmulatedCOWSpanningPages(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		// Allocate enough that the block spans a page boundary.
		buf, err := root.Smalloc(tag, 3*vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		// Position a write across the first boundary inside the block.
		cross := (buf &^ vm.Addr(vm.PageSize-1)) + vm.Addr(vm.PageSize) - 4

		sc := policy.New()
		if err := sc.MemAdd(tag, vm.PermRead|vm.PermCOW); err != nil {
			t.Fatal(err)
		}
		emu, err := root.CreateEmulated("cow-span", sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			s.Write(cross, []byte("ABCDEFGH"))
			var b [8]byte
			s.Read(cross, b[:])
			if string(b[:]) != "ABCDEFGH" {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ret := root.JoinEmulated(emu); ret != 1 {
			t.Fatal("spanning write misread")
		}
		var b [8]byte
		root.Read(cross, b[:])
		if string(b[:]) == "ABCDEFGH" {
			t.Fatal("spanning COW write leaked to the creator")
		}
	})
}

// TestSfreeAndSmallocState: Sfree routes tagged blocks back to the tag
// allocator, Free routes tagged addresses to sfree (the LD_PRELOAD shim
// path), and SmallocState reports the active redirection.
func TestSfreeAndSmallocState(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, err := root.App().Tags.TagNew(root.Task)
		if err != nil {
			t.Fatal(err)
		}
		if got := root.SmallocState(); got != tags.NoTag {
			t.Fatalf("initial smalloc state = %v", got)
		}
		root.SmallocOn(tag)
		if got := root.SmallocState(); got != tag {
			t.Fatalf("smalloc state = %v, want %v", got, tag)
		}
		a, err := root.Malloc(64) // redirected to smalloc
		if err != nil {
			t.Fatal(err)
		}
		root.SmallocOff()
		if root.App().Tags.TagOf(a) != tag {
			t.Fatalf("redirected allocation has tag %v", root.App().Tags.TagOf(a))
		}
		// Free on a tagged address must route to sfree and succeed.
		if err := root.Free(a); err != nil {
			t.Fatalf("Free(tagged): %v", err)
		}
		// Direct Smalloc/Sfree round trip.
		b, err := root.Smalloc(tag, 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.Sfree(b); err != nil {
			t.Fatalf("Sfree: %v", err)
		}
		// Double sfree is rejected by the allocator.
		if err := root.Sfree(b); err == nil {
			t.Fatal("double Sfree accepted")
		}
	})
}

// TestGateFDFallbackToCaller: a gate policy may name a descriptor that
// only the caller holds (the argument-descriptor path of prepareGate);
// the gate receives it from the caller's table.
func TestGateFDFallbackToCaller(t *testing.T) {
	boot(t, func(root *Sthread) {
		// A connection-like object only the worker will hold.
		l, err := root.Task.Kernel().Net.Listen("gate-fd:1")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			c, err := root.Task.Kernel().Net.Dial("gate-fd:1")
			if err == nil {
				c.Write([]byte("ping"))
				c.Close()
			}
		}()
		conn, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		fd := root.Task.InstallFD(conn, kernel.FDRW)

		var gate GateFunc = func(g *Sthread, _, _ vm.Addr) vm.Addr {
			buf := make([]byte, 4)
			if _, err := g.Task.ReadFD(fd, buf); err != nil {
				return 0
			}
			if string(buf) != "ping" {
				return 0
			}
			return 1
		}
		// The gate's own policy names fd; the creating sthread (root)
		// holds it, and so does the worker via its policy.
		gateSC := policy.New().FDAdd(fd, kernel.FDRead)
		workerSC := policy.New().FDAdd(fd, kernel.FDRead)
		workerSC.GateAdd(gate, gateSC, 0, "reader")
		spec := workerSC.Gates[0]

		worker, err := root.Create(workerSC, func(w *Sthread, _ vm.Addr) vm.Addr {
			ret, err := w.CallGate(spec, nil, 0)
			if err != nil {
				return 0
			}
			return ret
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(worker)
		if fault != nil || ret != 1 {
			t.Fatalf("gate fd read: ret=%d fault=%v", ret, fault)
		}
	})
}

// TestEmulatedTryReadWrite: Try variants under emulation return errors
// for unmapped addresses instead of faulting, and succeed on granted
// memory.
func TestEmulatedTryReadWrite(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		buf, _ := root.Smalloc(tag, 16)
		sc := policy.New().MustMemAdd(tag, vm.PermRW)
		emu, err := root.CreateEmulated("try-emul", sc, func(s *Sthread, _ vm.Addr) vm.Addr {
			if err := s.TryWrite(buf, []byte("ok")); err != nil {
				return 0
			}
			b := make([]byte, 2)
			if err := s.TryRead(buf, b); err != nil || string(b) != "ok" {
				return 0
			}
			// An address in no mapping at all errors instead of killing
			// the emulated sthread.
			if err := s.TryRead(vm.Addr(0xDEAD0000), b); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ret := root.JoinEmulated(emu); ret != 1 {
			t.Fatal("emulated Try accessors misbehaved")
		}
	})
}

// TestCreateEmulatedValidation: the emulation library still validates the
// policy — escalation and nil policies are rejected before anything runs.
func TestCreateEmulatedValidation(t *testing.T) {
	boot(t, func(root *Sthread) {
		tag, _ := root.App().Tags.TagNew(root.Task)
		if _, err := root.Smalloc(tag, 8); err != nil {
			t.Fatal(err)
		}
		if _, err := root.CreateEmulated("nil", nil, func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); err == nil {
			t.Fatal("nil policy accepted")
		}
		mid := policy.New().MustMemAdd(tag, vm.PermRead)
		child, err := root.Create(mid, func(s *Sthread, _ vm.Addr) vm.Addr {
			esc := policy.New().MustMemAdd(tag, vm.PermRW)
			if _, err := s.CreateEmulated("esc", esc, func(*Sthread, vm.Addr) vm.Addr { return 0 }, 0); err == nil {
				return 0
			}
			return 1
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ret, fault := root.Join(child)
		if fault != nil || ret != 1 {
			t.Fatal("emulated escalation accepted")
		}
	})
}
