// Batched recycled callgates: the run-to-completion dataplane half of
// the recycled protocol. Instead of one generation word and one blocking
// futex round-trip per invocation, a batch-mode gate drains a ring of
// gateabi-laid-out argument blocks living in its caller's arena. The
// producer publishes entries by bumping the ring's tail word and rings
// the doorbell futex at most once per publish — and only when the worker
// is actually parked — so one FutexWake covers every pending entry and a
// busy worker is never woken at all. The worker loops run-to-completion
// until the ring drains, then parks on the tail word again.
//
// Trust model: everything in the ring is simulated memory the gate can
// scribble on, so nothing the host relies on is read back from it. The
// host keeps trusted shadows (published count, per-position completion
// sequence numbers, return words) on its side of the boundary; the
// simulated tail/head/status words exist for protocol fidelity and for
// hostile-worker fuzzing, but a worker forging them can at worst wake
// the wrong sleeper — it cannot release a producer before the host-side
// Complete hook (descriptor revocation, teardown) has run, and it cannot
// steer the host to read or scrub outside the ring segment, because
// every host-computed address derives from geometry fixed at creation.

package sthread

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"wedge/internal/kernel"
	"wedge/internal/policy"
	"wedge/internal/vm"
)

// Ring-word offsets, relative to the ring base. The tail is the
// producer-published entry count and the doorbell futex word; the head
// is the worker's consumed count, published for observability only.
// Per-entry headers (status word, return word) follow, then the
// argument blocks themselves.
const (
	brTail = 0  // producer-published entry count (doorbell futex word)
	brStop = 8  // nonzero requests worker shutdown
	brHead = 16 // worker-consumed entry count (observability only)
	brHdrs = 24 // per-entry headers start here

	batchHdrSize = 16 // per-entry header: status word + return word

	// Status-word values. Like the head word these record protocol state
	// in simulated memory; the trusted completion signal is host-side.
	batchPending = 0
	batchDone    = 1
	batchAborted = 2
)

// ErrBatchAborted reports that a ring entry was aborted at dispatch —
// its Dispatch hook failed or the entry was cancelled — so the worker
// body never ran for it.
var ErrBatchAborted = errors.New("sthread: batch entry aborted before dispatch")

// BatchRingBytes returns the arena footprint of a ring: three control
// words, depth per-entry headers, depth argument blocks of entrySize
// bytes each. entrySize must be 8-aligned.
func BatchRingBytes(depth, entrySize int) int {
	return brHdrs + depth*(batchHdrSize+entrySize)
}

// BatchHooks are host-side callbacks run on the worker goroutine at the
// trust boundary of each ring entry. Dispatch runs before the worker
// body sees entry seq — this is where a pool scrubs the block, grants
// descriptors and writes demux words; a Dispatch error aborts the entry
// without running untrusted code. Complete runs after the worker body
// finishes entry seq and before the producer's Await can return —
// descriptor revocation and connection teardown are ordered before the
// producer no matter what the worker writes into simulated memory.
type BatchHooks struct {
	Dispatch func(seq uint64) error
	Complete func(seq uint64, ret vm.Addr)
}

// BatchFunc is the worker body of a batch-mode gate: invoked once per
// doorbell, it loops b.More()/b.Complete() until the ring drains, then
// returns to park. trusted is the kernel-held trusted argument, exactly
// as for GateFunc.
type BatchFunc func(g *Sthread, b *Batch, trusted vm.Addr)

// BatchConfig fixes a ring's geometry. Base must be 8-aligned and the
// ring [Base, Base+BatchRingBytes(Depth, EntrySize)) must lie inside
// memory granted read-write to both the creator and the gate policy —
// for a pool, the slot arena.
type BatchConfig struct {
	Base      vm.Addr
	Depth     int
	EntrySize int
	Trusted   vm.Addr
	Hooks     BatchHooks
}

// BatchRing is the host-side handle on a batch-mode gate's ring: the
// producer face (Publish, Await) plus the trusted shadows the protocol
// is judged by.
type BatchRing struct {
	base      vm.Addr
	depth     uint64
	entrySize uint64
	hooks     BatchHooks

	creator *Sthread
	gate    *Recycled

	// mu serializes producers publishing into the ring.
	mu        sync.Mutex
	published atomic.Uint64 // trusted count of entries visible to the worker
	parked    atomic.Bool   // worker is (or may be about to be) asleep on the doorbell

	// stopped is closed by Close and aborts a doorbell park in flight.
	// The stop word alone cannot: it is not the futex word, so a store
	// to it between the worker's stop check and its sleep would be a
	// lost wakeup — the publish path closes that window with the tail
	// value check, and shutdown closes it with this channel.
	stopped chan struct{}

	// Per-position trusted completion shadows, written only by host hook
	// code on the worker goroutine: position p holds seq+1 once entry seq
	// completed (doneSeq, with its return word in retVal) or was aborted
	// at dispatch (abortSeq). waitCh[p] carries the completion token to
	// the single producer that can be awaiting position p.
	doneSeq  []atomic.Uint64
	abortSeq []atomic.Uint64
	retVal   []atomic.Uint64
	waitCh   []chan struct{}

	batches atomic.Uint64 // non-empty run-to-completion sweeps
	entries atomic.Uint64 // entries dispatched to the worker body
}

// NewRecycledBatch creates a batch-mode recycled gate: a long-lived
// sthread running with policy gateSC, entered at fn whenever its ring
// has pending entries. Unlike NewRecycled there is no private control
// tag — all protocol words live in the caller-provided ring segment,
// which gateSC must already reach. The same recycling caveat applies,
// amplified: the ring persists across principals, so callers must scrub
// on principal switches (the Dispatch hook is the place).
func (s *Sthread) NewRecycledBatch(name string, gateSC *policy.SC, fn BatchFunc, cfg BatchConfig) (*Recycled, *BatchRing, error) {
	if gateSC == nil {
		gateSC = policy.New()
	}
	if err := s.checkRecycledSC(name, gateSC); err != nil {
		return nil, nil, err
	}
	if cfg.Depth <= 0 || cfg.EntrySize <= 0 || cfg.EntrySize%8 != 0 || cfg.Base%8 != 0 {
		return nil, nil, fmt.Errorf("recycled batch %q: bad ring geometry (depth %d, entry size %d, base %#x)",
			name, cfg.Depth, cfg.EntrySize, uint64(cfg.Base))
	}

	ring := &BatchRing{
		base:      cfg.Base,
		depth:     uint64(cfg.Depth),
		entrySize: uint64(cfg.EntrySize),
		hooks:     cfg.Hooks,
		creator:   s,
		stopped:   make(chan struct{}),
		doneSeq:   make([]atomic.Uint64, cfg.Depth),
		abortSeq:  make([]atomic.Uint64, cfg.Depth),
		retVal:    make([]atomic.Uint64, cfg.Depth),
		waitCh:    make([]chan struct{}, cfg.Depth),
	}
	for i := range ring.waitCh {
		ring.waitCh[i] = make(chan struct{}, 1)
	}

	// Zero the control words and headers before the gate starts: the
	// segment may be a reused arena (a respawn after a worker fault) with
	// stale protocol state in it.
	ct := s.Task
	for off := vm.Addr(0); off < brHdrs+vm.Addr(cfg.Depth)*batchHdrSize; off += 8 {
		if err := ct.AtomicStore64(cfg.Base+off, 0); err != nil {
			return nil, nil, err
		}
	}

	gate, err := s.prepareConfinedGate(name, gateSC, gateSC.Clone())
	if err != nil {
		return nil, nil, err
	}

	r := &Recycled{
		Name:    name,
		app:     s.app,
		gate:    gate,
		creator: s,
		ring:    ring,
	}
	ring.gate = r

	gate.Task.Start(func(*kernel.Task) {
		r.serveBatch(gate, fn, cfg.Trusted)
	})
	return r, ring, nil
}

// Ring returns the gate's ring handle, or nil for a classic gate.
func (r *Recycled) Ring() *BatchRing { return r.ring }

// Depth returns the ring's entry count.
func (r *BatchRing) Depth() int { return int(r.depth) }

// EntrySize returns the ring's per-entry argument-block size.
func (r *BatchRing) EntrySize() int { return int(r.entrySize) }

// Base returns the ring's base address in the caller's arena.
func (r *BatchRing) Base() vm.Addr { return r.base }

// Batches returns the number of non-empty run-to-completion sweeps the
// worker has made; Entries the number of entries dispatched. Their ratio
// is the realized batch size.
func (r *BatchRing) Batches() uint64 { return r.batches.Load() }

// Entries returns the number of ring entries dispatched to the worker.
func (r *BatchRing) Entries() uint64 { return r.entries.Load() }

// EntryAddr returns the argument-block address of the ring position
// serving seq. The address derives only from geometry fixed at creation
// — never from simulated words — so a hostile worker cannot steer the
// host outside the ring segment.
func (r *BatchRing) EntryAddr(seq uint64) vm.Addr {
	return r.base + brHdrs + vm.Addr(r.depth*batchHdrSize) + vm.Addr((seq%r.depth)*r.entrySize)
}

// HdrAddr returns the status/return header address of the ring position
// serving seq. Like EntryAddr it derives only from fixed geometry; pools
// include the header in the per-position scrub footprint, since return
// words are worker-written bytes like any others.
func (r *BatchRing) HdrAddr(seq uint64) vm.Addr { return r.hdrAddr(seq) }

func (r *BatchRing) hdrAddr(seq uint64) vm.Addr {
	return r.base + brHdrs + vm.Addr((seq%r.depth)*batchHdrSize)
}

// HdrSize is the per-entry header footprint (status word + return word).
const HdrSize = batchHdrSize

// PublishTo makes every entry below seq visible to the worker and rings
// the doorbell at most once — and not at all if the worker is already
// awake, which is the whole amortization: under load the worker never
// parks and producers never pay a futex wake. The count is absolute and
// monotone, so racing producers may publish their contiguous-committed
// watermarks in either order. Entry state for everything below seq must
// be fully written before the call.
func (r *BatchRing) PublishTo(seq uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq <= r.published.Load() {
		return nil
	}
	r.published.Store(seq)
	// Tail store before the parked check: the worker sets parked before
	// re-checking the published count, so either we see it parked and
	// wake it, or it sees our count and skips the sleep.
	if err := r.creator.Task.AtomicStore64(r.base+brTail, seq); err != nil {
		return err
	}
	if r.parked.Load() {
		r.creator.Task.FutexWake(r.base+brTail, 1)
	}
	return nil
}

// AbortPending releases the producer awaiting entry seq with
// ErrBatchAborted before the worker has reached it. It is the migration
// hook: a pool that re-binds a still-undispatched entry to another slot
// must first ensure the worker will observe the entry as cancelled when
// it gets there (the Dispatch hook's contract) — the worker's own abort
// of the same seq is then idempotent.
func (r *BatchRing) AbortPending(seq uint64) {
	pos := seq % r.depth
	storeMax(&r.abortSeq[pos], seq+1)
	select {
	case r.waitCh[pos] <- struct{}{}:
	default:
	}
}

// storeMax ratchets a shadow word forward. The abort shadow is shared by
// every seq that ever occupies its ring position, and its writers (the
// migration hook under the pool lock, the worker's finish) can be
// preempted between deciding to abort and storing — a plain store could
// drag the word backwards over a successor's abort, stranding that
// successor's producer.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Await blocks until entry seq completes, returning the worker body's
// return word, or fails: ErrBatchAborted if the entry was aborted at
// dispatch, ErrGateExited if the gate died first. Completion is judged
// by the trusted host-side shadows — the simulated status word plays no
// part — so the Complete hook is strictly ordered before Await returns.
//
// The abort check is >=, not ==. A position's shadows are shared by
// every seq that serves there, and a position normally cannot be reused
// until its producer returns from Await and releases — except when the
// entry was migrated to another ring, which retires it on the producer's
// behalf. A producer slow to its first check can then find abortSeq
// already advanced past its own seq by a successor's abort; that state
// is only reachable through its entry's cancellation, so any value >=
// seq+1 means "your tenancy here ended aborted". The done check stays
// exact: a completed entry's position cannot recycle until this very
// producer releases it, so doneSeq beyond seq+1 is unreachable while we
// wait.
func (r *BatchRing) Await(seq uint64) (vm.Addr, error) {
	pos := seq % r.depth
	gdone := r.gate.gate.Task.Done()
	for {
		if r.doneSeq[pos].Load() == seq+1 {
			return vm.Addr(r.retVal[pos].Load()), nil
		}
		if r.abortSeq[pos].Load() >= seq+1 {
			return 0, ErrBatchAborted
		}
		select {
		case <-r.waitCh[pos]:
			// A completion token — possibly stale from an earlier entry
			// whose producer returned via the shadow check alone; the
			// shadow re-check at the top settles it either way.
		case <-gdone:
			// The gate died. A completion racing with death published its
			// shadow before we got here, so one re-check distinguishes
			// "finished then died" from "died with the entry pending".
			if r.doneSeq[pos].Load() != seq+1 && r.abortSeq[pos].Load() < seq+1 {
				return 0, ErrGateExited
			}
		}
	}
}

// Batch is the worker-side cursor over pending ring entries. It is only
// valid inside the BatchFunc invocation it was passed to.
type Batch struct {
	ring     *BatchRing
	g        *Sthread
	consumed uint64 // entries dispatched or aborted, cumulative
	seq      uint64
	inEntry  bool
	swept    int // entries dispatched in the current sweep
}

// More advances to the next pending entry, completing the current one
// with return word 0 if the body forgot to. It runs the Dispatch hook
// for each candidate — entries the hook rejects are aborted and skipped
// — and returns false when the ring is drained.
func (b *Batch) More() bool {
	if b.inEntry {
		b.Complete(0)
	}
	r := b.ring
	for b.consumed < r.published.Load() {
		seq := b.consumed
		if h := r.hooks.Dispatch; h != nil {
			if err := h(seq); err != nil {
				b.consumed++
				b.finish(seq, 0, batchAborted)
				continue
			}
		}
		b.seq = seq
		b.inEntry = true
		b.swept++
		r.entries.Add(1)
		return true
	}
	b.g.Task.AtomicStore64(r.base+brHead, b.consumed)
	return false
}

// Seq returns the current entry's sequence number.
func (b *Batch) Seq() uint64 { return b.seq }

// Arg returns the current entry's argument-block address — the batched
// counterpart of GateFunc's arg parameter, laid out by the same schema.
func (b *Batch) Arg() vm.Addr { return b.ring.EntryAddr(b.seq) }

// Complete finishes the current entry with return word ret: the header
// is updated, the Complete hook runs, and only then is the producer
// released through the trusted shadow.
func (b *Batch) Complete(ret vm.Addr) {
	if !b.inEntry {
		return
	}
	b.inEntry = false
	seq := b.seq
	b.consumed++
	if h := b.ring.hooks.Complete; h != nil {
		h(seq, ret)
	}
	b.finish(seq, ret, batchDone)
}

// finish records an entry's outcome in the simulated header and releases
// the producer: return word and shadow first, status and token last.
func (b *Batch) finish(seq uint64, ret vm.Addr, status uint64) {
	r := b.ring
	pos := seq % r.depth
	hdr := r.hdrAddr(seq)
	b.g.Task.AtomicStore64(hdr+8, uint64(ret))
	b.g.Task.AtomicStore64(hdr, status)
	if status == batchDone {
		r.retVal[pos].Store(uint64(ret))
		r.doneSeq[pos].Store(seq + 1)
	} else {
		storeMax(&r.abortSeq[pos], seq+1)
	}
	select {
	case r.waitCh[pos] <- struct{}{}:
	default:
	}
}

// serveBatch is the batch-mode gate loop: park on the doorbell, sweep
// the ring run-to-completion through the worker body, repeat.
func (r *Recycled) serveBatch(g *Sthread, fn BatchFunc, trusted vm.Addr) {
	ring := r.ring
	b := &Batch{ring: ring, g: g}
	for {
		// Park until the doorbell moves past what we've consumed. The
		// trusted published count decides; the tail word is the futex
		// value a producer's store will change.
		for {
			if stop, err := g.Task.AtomicLoad64(ring.base + brStop); err != nil || stop != 0 {
				return
			}
			tail, err := g.Task.AtomicLoad64(ring.base + brTail)
			if err != nil {
				return
			}
			if ring.published.Load() > b.consumed {
				break
			}
			ring.parked.Store(true)
			// Re-check under the parked flag: Publish stores the tail
			// before reading the flag, so either it sees us parked and
			// wakes, or we see its count here and skip the sleep.
			if ring.published.Load() > b.consumed {
				ring.parked.Store(false)
				break
			}
			g.Task.FutexWaitAbort(ring.base+brTail, uint32(tail), ring.stopped)
			ring.parked.Store(false)
		}
		start := b.consumed
		b.swept = 0
		fn(g, b, trusted)
		if b.inEntry {
			b.Complete(0)
		}
		if b.consumed == start {
			// The body returned without consuming work that was pending
			// when the sweep began: a broken (or hostile) body. Exit so
			// producers abort on a dead gate instead of wedging on a
			// stuck one — pools replace dead gates.
			return
		}
		if b.swept > 0 {
			ring.batches.Add(1)
		}
	}
}
