// Package serve is the wedge-server runtime: one home for the serving
// machinery the pooled application studies (httpd, sshd, pop3) used to
// re-implement by hand.
//
// An application is a declarative descriptor (App): the pooled gates it
// wants every slot to carry, which gate is the per-connection worker, a
// per-connection state type demultiplexed through gatepool.ConnTable, and
// optional per-connection setup/teardown hooks. The runtime owns
// everything else:
//
//   - Pool lifecycle: construction from the descriptor, hot Resize, and
//     an auto-slots mode that re-sizes the pool whenever the host
//     parallelism (runtime.GOMAXPROCS) changes — slot count tracks the
//     cores that can actually run slots, not the connection count.
//   - The accept loop (Serve) and per-connection plumbing (ServeConn):
//     descriptor installation, lease acquisition, conn-id demux record,
//     the worker invocation via CallFD, and teardown in the right order.
//   - A lifecycle state machine, serving → draining → closed: Drain
//     completes in-flight connections, rejects new admissions with the
//     typed overload error, and returns only when the pool is quiescent;
//     Undrain re-opens; Close tears everything down.
//   - Admission control: an optionally bounded pending queue in front of
//     the pool's blocking Acquire. Overflow fails fast with
//     *OverloadError (errors.Is ErrOverloaded) instead of queueing
//     without bound.
//   - Observability: a unified Snapshot (runtime counters + pool stats +
//     queue depth) and NUMA-style slot→CPU pin hints.
//
// The runtime preserves the isolation argument the three servers share:
// per-connection state is looked up by a worker-supplied (untrusted)
// conn id and then pinned to the invoking slot — Lookup returns state
// only when it anchors at exactly the invocation's argument block — so a
// compromised worker cannot reach another slot's connection.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/timerwheel"
	"wedge/internal/vm"
)

// State is a runtime's lifecycle position.
type State int32

// The lifecycle state machine: StateServing admits connections,
// StateDraining completes in-flight ones while rejecting admissions, and
// StateClosed is terminal.
const (
	StateServing State = iota
	StateDraining
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ErrOverloaded is the errors.Is target for every admission-control
// rejection (queue overflow, draining, closed).
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError is the typed admission rejection. State says why: a
// StateServing rejection is queue overflow (Inflight reached Limit); a
// draining or closed runtime rejects every admission.
type OverloadError struct {
	App      string
	State    State
	Inflight int
	Limit    int
}

func (e *OverloadError) Error() string {
	if e.State != StateServing {
		return fmt.Sprintf("serve: %s is %s", e.App, e.State)
	}
	return fmt.Sprintf("serve: %s overloaded: %d connections in flight, admission limit %d",
		e.App, e.Inflight, e.Limit)
}

// Is makes errors.Is(err, ErrOverloaded) match every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// DefaultSlots is the one slot-count policy every pooled application
// shares: twice the host parallelism, floored at two. Slot count should
// track available parallelism, not connection concurrency — slots beyond
// the cores that can run them add scheduling churn without overlapping
// any work, while admission control absorbs the excess connections.
func DefaultSlots() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

// DefaultBatchDepth is the per-slot ring depth when App.BatchDepth is
// zero: deep enough that a busy worker amortizes its wakeup over many
// entries, shallow enough that a slot's arena stays a few schema blocks.
const DefaultBatchDepth = 16

// Conn is one in-flight connection's record: the slot lease, the
// installed descriptor, and the application's own state. Gate entries
// reach it through Lookup; the App hooks receive it directly.
type Conn[T any] struct {
	Principal string
	FD        int
	Lease     *gatepool.Lease
	State     T

	// Resumed is true when this connection was re-admitted from a
	// HandoffRecord (ResumeConnAs) rather than freshly accepted — the
	// app's worker should skip protocol steps the exporting runtime
	// already performed (greetings, auth it re-imported, ...).
	Resumed bool

	// Handoff rendezvous. hmu orders the one race that matters: a
	// HandoffPrincipal marking the session against its normal completion.
	// Exactly one side wins — a marked session unwinds as handed, a
	// completing session refuses the mark.
	hmu        sync.Mutex
	completing bool
	hand       *handoff
	interrupt  func() // fails the worker's blocked read (conn close)
}

// App declares a pooled wedge application. The runtime instantiates
// Gates on every pool slot and serves each connection with one CallFD
// invocation of the Worker gate, after writing the connection's demux id
// and descriptor number into the slot's argument block at the Schema's
// reserved demux words.
type App[T any] struct {
	Name     string // pool name, sthread-name prefix, error prefix
	Slots    int    // initial slot count (<= 0: DefaultSlots)
	MaxSlots int    // Resize ceiling (0: gatepool's default)

	// Schema is the declarative layout of every slot's argument block
	// (internal/gateabi): it sizes the block, derives the pool's scrub
	// footprint, and must reserve both demux words (gateabi.ConnID and
	// gateabi.FD) for the runtime. Gate bodies read and write arguments
	// only through the schema's typed field handles.
	Schema *gateabi.Schema

	Gates  []gatepool.GateDef
	Worker string // the Gates entry invoked once per connection

	// BatchDepth selects the batched dataplane (gatepool ring mode): 0
	// batches at DefaultBatchDepth, > 0 batches at that ring depth, and
	// < 0 falls back to the classic one-CallFD-per-connection protocol.
	// When batching, the Worker def should provide a Batch body looping
	// over its entries; a def with only a classic Entry is wrapped in the
	// canonical drain loop automatically.
	BatchDepth int

	// Queue bounds the admission queue: 0 admits without bound (the
	// pool's blocking Acquire is the only backpressure), n > 0 admits at
	// most n connections beyond the live slot count, n < 0 admits only
	// up to the live slot count (no waiting). SetQueue adjusts it live.
	Queue int

	// AutoSlots makes the slot count track DefaultSlots(): each
	// admission compares the current GOMAXPROCS-derived target against
	// the last one applied and resizes the pool when it moved.
	AutoSlots bool

	// IdleTimeout, when positive, arms idle-connection reaping: a
	// connection with no read or write activity for this long is closed
	// by the runtime's timer wheel (the worker's blocked read fails and
	// the connection unwinds through the normal teardown path, so
	// EndConn, scrubbing, and leak accounting all still run). One wheel
	// serves the whole runtime — no goroutine or runtime timer per
	// connection — which is what makes reaping viable at the conn counts
	// where it matters. Zero disables reaping.
	IdleTimeout time.Duration

	// InitConn populates c.State after the lease is acquired (the lease
	// and its gates are available). Optional.
	InitConn func(c *Conn[T]) error
	// EndConn runs after the worker invocation, before the slot is
	// released — the place to undo per-connection changes to slot-owned
	// resources (sshd demotes its promoted worker here). Optional.
	EndConn func(c *Conn[T])
	// Finish interprets the worker invocation's result; its error is
	// ServeConn's return. When nil, a worker error is wrapped and
	// returned as-is and the return value is not interpreted. Optional.
	Finish func(c *Conn[T], ret vm.Addr, err error) error

	// Export serializes the app-level state a handed-off session needs at
	// its new home, given the captured argument-block image. It must
	// never include secrets the importing side does not already hold
	// (private keys, passwords): the record crosses the cluster's trust
	// boundary in the clear, and the new runtime re-derives secret
	// material from its own store. Optional; nil exports no app state.
	Export func(c *Conn[T], block []byte) []byte
	// Import restores Export's payload into a resumed connection before
	// its worker runs. The payload arrived from another runtime and must
	// be treated as hostile input — length- and bounds-checked like any
	// gate argument; an error refuses the resume. Optional.
	Import func(c *Conn[T], rec *HandoffRecord) error
}

// Runtime serves one App. All methods are safe for concurrent use.
type Runtime[T any] struct {
	root  *sthread.Sthread
	app   App[T]
	pool  *gatepool.Pool
	conns gatepool.ConnTable[*Conn[T]]

	// The schema's demux-word offsets, resolved once: Lookup and the
	// per-connection demux writes sit on the hot path.
	connOff, fdOff vm.Addr

	// clock is the idle machinery's time source: monotonic nanoseconds
	// (gatepool.Monotime), so an NTP wall-clock step can neither defer
	// reaping indefinitely (step backward) nor reap live connections
	// early (step forward). Tests inject a fake via setClock.
	clock func() int64

	mu         sync.Mutex
	quiet      *sync.Cond // signaled when inflight drops to zero or state changes
	state      State
	queue      int
	auto       bool
	autoTarget int // last slot target applied by auto mode
	inflight   int

	admitted    uint64
	served      uint64
	failed      uint64
	handed      uint64
	rejected    uint64
	drains      uint64
	autoResizes uint64
	idleReaped  uint64
	idleResched uint64

	// wheel drives idle reaping; nil when App.IdleTimeout is zero.
	wheel *timerwheel.Wheel
}

// idleTick picks a wheel quantum for an idle timeout: coarse enough that
// the wheel goroutine is near-free, fine enough that a reap lands within
// a small fraction of the timeout past the deadline.
func idleTick(idle time.Duration) time.Duration {
	tick := idle / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	return tick
}

// New builds a runtime from the descriptor: the pool (and so every
// slot's tag and gates) is created on root, exactly as a hand-built
// pooled server would.
func New[T any](root *sthread.Sthread, app App[T]) (*Runtime[T], error) {
	if app.Worker == "" {
		return nil, errors.New("serve: App.Worker must name the per-connection gate")
	}
	found := false
	for _, g := range app.Gates {
		if g.Name == app.Worker {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("serve: worker gate %q is not in App.Gates", app.Worker)
	}
	// The runtime writes two 64-bit words into every slot's argument
	// block; the schema must reserve them. (The schema's computed layout
	// makes the overlap and out-of-block failure modes of the old
	// hand-declared offsets unrepresentable.)
	if app.Schema == nil {
		return nil, fmt.Errorf("serve: %s: App.Schema is required", app.Name)
	}
	if !app.Schema.HasDemux() {
		return nil, fmt.Errorf("serve: %s: schema %q does not reserve the conn-id and fd demux words",
			app.Name, app.Schema.Name())
	}
	slots := app.Slots
	if slots <= 0 || app.AutoSlots {
		slots = DefaultSlots()
	}
	if app.MaxSlots > 0 && slots > app.MaxSlots {
		slots = app.MaxSlots
	}
	r := &Runtime[T]{
		root:    root,
		app:     app,
		state:   StateServing,
		queue:   app.Queue,
		auto:    app.AutoSlots,
		connOff: app.Schema.ConnIDOff(),
		fdOff:   app.Schema.FDOff(),
		clock:   gatepool.Monotime,
	}
	if app.IdleTimeout > 0 {
		// Touch tracking is opt-in: a runtime that never reaps skips the
		// clock read and stamp store on every conn-table Put.
		r.conns.TrackIdle()
	}
	r.quiet = sync.NewCond(&r.mu)
	if r.auto {
		r.autoTarget = slots
	}
	depth := app.BatchDepth
	if depth == 0 {
		depth = DefaultBatchDepth
	}
	if depth < 0 {
		depth = 0 // classic protocol requested
	}
	gates := app.Gates
	if depth > 0 {
		// Batched mode needs the worker def to drain a ring. An app that
		// ships only a classic Entry gets the canonical loop: dispatch
		// every entry through the same gateabi handles, one Complete per
		// entry. The slice is copied so the caller's App value is not
		// mutated behind its back.
		gates = append([]gatepool.GateDef(nil), app.Gates...)
		for i := range gates {
			if gates[i].Name != app.Worker || gates[i].Batch != nil {
				continue
			}
			entry := gates[i].Entry
			trusted := gates[i].Trusted
			gates[i].Batch = func(g *sthread.Sthread, b *sthread.Batch, _ vm.Addr) {
				for b.More() {
					b.Complete(entry(g, b.Arg(), trusted))
				}
			}
		}
	}
	pool, err := gatepool.New(root, gatepool.Config{
		Name:       app.Name,
		Slots:      slots,
		MaxSlots:   app.MaxSlots,
		Schema:     app.Schema,
		Gates:      gates,
		BatchDepth: depth,
	})
	if err != nil {
		return nil, err
	}
	r.pool = pool
	if app.IdleTimeout > 0 {
		r.wheel = timerwheel.New(idleTick(app.IdleTimeout), 0)
		r.wheel.Start()
	}
	return r, nil
}

// setClock injects a monotonic time source (nanosecond readings, never
// zero, never backwards) into the idle machinery — the reaper's elapsed
// computation and the conn-table's touch stamps both follow it. Test
// hook; call before serving.
func (r *Runtime[T]) setClock(now func() int64) {
	r.clock = now
	r.conns.SetClock(now)
}

// touchConn wraps a connection so the idle reaper can see activity:
// every completed read or write stamps an atomic last-touch reading of
// the runtime's monotonic clock. The stamp is monotonic nanoseconds,
// never wall time: the old time.Now().UnixNano() stamp meant an NTP
// step backward deferred reaping indefinitely and a step forward reaped
// live connections early.
type touchConn struct {
	c   *netsim.Conn
	now func() int64 // the runtime's monotonic clock
	ts  atomic.Int64 // monotonic nanos of last activity
}

func newTouchConn(c *netsim.Conn, now func() int64) *touchConn {
	t := &touchConn{c: c, now: now}
	t.touch()
	return t
}

func (t *touchConn) touch() { t.ts.Store(t.now()) }

// idleFor is the connection's current silence, on the monotonic clock.
func (t *touchConn) idleFor() time.Duration {
	return time.Duration(t.now() - t.ts.Load())
}

func (t *touchConn) Read(b []byte) (int, error) {
	n, err := t.c.Read(b)
	if n > 0 {
		t.touch()
	}
	return n, err
}

func (t *touchConn) Write(b []byte) (int, error) {
	t.touch()
	return t.c.Write(b)
}

func (t *touchConn) Close() error { return t.c.Close() }

// armIdleReaper schedules the idle check for one connection and returns
// the disarm function the connection's teardown must call. The wheel
// fires at the full timeout from admission; if the connection was active
// in the meantime the timer re-arms for the remaining window (so an
// active connection costs one cheap wheel callback per idle period, not
// per byte), and only a genuinely quiet connection is closed — which
// unblocks its worker's read and sends it down the normal unwind path.
func (r *Runtime[T]) armIdleReaper(tc *touchConn) (stop func()) {
	idle := r.app.IdleTimeout
	var mu sync.Mutex
	var done bool
	var timer *timerwheel.Timer
	var fire func()
	fire = func() {
		// The clock is a dynamic function value (tests inject one), so it
		// is read before the lock — the lockcallback discipline, and a
		// shorter critical section. A stamp landing between the read and
		// the lock only makes the elapsed figure conservative: the timer
		// re-arms and the connection survives, exactly as if the activity
		// had been observed.
		elapsed := tc.idleFor()
		mu.Lock()
		if done {
			mu.Unlock()
			return
		}
		if elapsed >= idle {
			mu.Unlock()
			r.count(&r.idleReaped)
			tc.c.Close()
			return
		}
		timer = r.wheel.Schedule(idle-elapsed, fire)
		mu.Unlock()
		r.count(&r.idleResched)
	}
	mu.Lock()
	timer = r.wheel.Schedule(idle, fire)
	mu.Unlock()
	return func() {
		mu.Lock()
		done = true
		t := timer
		mu.Unlock()
		if t != nil {
			t.Cancel(r.wheel)
		}
	}
}

// Lookup demultiplexes a gate invocation back to its connection record:
// the conn id is read from the invocation's argument block, resolved
// through the table, and the result pinned to the slot — the record must
// anchor at exactly this argument block (Lease.Arg == arg) and carry the
// descriptor number the runtime wrote (both are worker-writable, so a
// forged id or fd fails the pin instead of reaching another slot's
// connection). Returns nil when the pin fails.
func (r *Runtime[T]) Lookup(g *sthread.Sthread, arg vm.Addr) *Conn[T] {
	c, ok := r.conns.Get(g.Load64(arg + r.connOff))
	if !ok || c.Lease.Arg != arg || g.Load64(arg+r.fdOff) != uint64(c.FD) {
		return nil
	}
	return c
}

// admit applies the lifecycle gate and the bounded queue. It must be
// paired with depart.
func (r *Runtime[T]) admit() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateServing {
		r.rejected++
		return &OverloadError{App: r.app.Name, State: r.state}
	}
	if r.queue != 0 {
		q := r.queue
		if q < 0 {
			q = 0
		}
		limit := r.pool.LiveSlots() + q
		if r.inflight >= limit {
			r.rejected++
			return &OverloadError{App: r.app.Name, State: r.state,
				Inflight: r.inflight, Limit: limit}
		}
	}
	r.inflight++
	r.admitted++
	return nil
}

// departAs retires an admission under its outcome counter (served,
// failed, or handed) in one critical section, so the ledger invariant
//
//	admitted == served + failed + handed + inflight
//
// holds at every instant a Snapshot can observe — the cluster director's
// two-choice load reads depend on never seeing a torn pair (inflight
// decremented, outcome not yet counted, or vice versa).
func (r *Runtime[T]) departAs(counter *uint64) {
	r.mu.Lock()
	*counter++
	r.inflight--
	if r.inflight == 0 {
		r.quiet.Broadcast()
	}
	r.mu.Unlock()
}

func (r *Runtime[T]) count(counter *uint64) {
	r.mu.Lock()
	*counter++
	r.mu.Unlock()
}

// autoSync applies auto-slots mode: when the GOMAXPROCS-derived target
// moved since the last application, resize the pool to it. Called on
// every admission; the comparison is two loads, the Resize only happens
// when host parallelism actually changed.
func (r *Runtime[T]) autoSync() {
	r.mu.Lock()
	if !r.auto || r.state != StateServing {
		r.mu.Unlock()
		return
	}
	target := DefaultSlots()
	if max := r.pool.MaxSlots(); target > max {
		target = max
	}
	if target == r.autoTarget {
		r.mu.Unlock()
		return
	}
	r.autoTarget = target
	r.autoResizes++
	r.mu.Unlock()
	// Resize runs off the runtime lock: it creates gate sthreads. A
	// racing Drain makes it fail with ErrDraining, which is fine — the
	// next serving-state admission will retry the moved target.
	if err := r.pool.Resize(target); err != nil {
		r.mu.Lock()
		r.autoTarget = 0 // retry on the next admission
		r.mu.Unlock()
	}
}

// ServeConn serves one connection, sharding by the peer's network
// address.
func (r *Runtime[T]) ServeConn(conn *netsim.Conn) error {
	return r.ServeConnAs(conn, conn.RemoteAddr())
}

// ServeConnAs is ServeConn with an explicit principal, for callers that
// know a better identity than the network address. It blocks while every
// slot is leased (unless the queue bound rejects first) and returns when
// the worker invocation — one invocation per connection, zero sthread
// creations — completes.
func (r *Runtime[T]) ServeConnAs(conn *netsim.Conn, principal string) error {
	r.autoSync()
	if err := r.admit(); err != nil {
		return err
	}
	return r.serveConn(conn, principal, nil)
}

// serveConn runs one admitted connection to its outcome. rec, when
// non-nil, resumes a handed-off session: the connection is marked
// Resumed and the record's app payload is imported (as hostile input)
// before the worker runs. The admission is already counted; exactly one
// outcome counter is incremented on the way out, in the same critical
// section as the inflight decrement (departAs).
func (r *Runtime[T]) serveConn(conn *netsim.Conn, principal string, rec *HandoffRecord) (reterr error) {
	outcome := &r.failed
	defer func() { r.departAs(outcome) }()

	root := r.root
	var file kernel.FileLike = conn
	if r.wheel != nil {
		tc := newTouchConn(conn, r.clock)
		file = tc
		stop := r.armIdleReaper(tc)
		defer stop()
	}
	fd := root.Task.InstallFD(file, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	lease, err := r.pool.Acquire(principal)
	if err != nil {
		return fmt.Errorf("%s: acquire: %w", r.app.Name, err)
	}
	defer lease.Release()

	c := &Conn[T]{Principal: principal, FD: fd, Lease: lease,
		Resumed: rec != nil, interrupt: func() { conn.Close() }}
	if r.app.InitConn != nil {
		if err := r.app.InitConn(c); err != nil {
			return fmt.Errorf("%s: init: %w", r.app.Name, err)
		}
	}
	// EndConn unwinds before the lease release above, so per-connection
	// changes to slot-owned resources are undone before another
	// principal can lease the slot.
	if r.app.EndConn != nil {
		defer r.app.EndConn(c)
	}
	if rec != nil && r.app.Import != nil {
		if err := r.app.Import(c, rec); err != nil {
			return fmt.Errorf("%s: import: %w", r.app.Name, err)
		}
	}
	id := r.conns.Put(c)
	defer r.conns.Delete(id)

	var ret vm.Addr
	if r.pool.Batched() {
		// Batched dataplane: commit the ring entry and await completion.
		// The pool writes the demux words at dispatch, after the
		// principal-switch scrub pass, so nothing is stored here.
		ret, err = lease.CallBatch(root, id, fd, kernel.FDRW)
	} else {
		root.Store64(lease.Arg+r.connOff, id)
		root.Store64(lease.Arg+r.fdOff, uint64(fd))
		ret, err = lease.CallFD(r.app.Worker, root, lease.Arg, fd, kernel.FDRW)
	}
	// Completion/handoff rendezvous: from here the session can no longer
	// be marked for handoff. If a mark already landed, the interrupted
	// invocation is the handoff mechanism at work, not a failure — finish
	// the export (the block image was captured while the worker was still
	// parked) and unwind as handed.
	c.hmu.Lock()
	c.completing = true
	h := c.hand
	c.hmu.Unlock()
	if h != nil {
		r.finishExport(c, h)
		outcome = &r.handed
		return ErrHandedOff
	}
	if r.app.Finish != nil {
		err = r.app.Finish(c, ret, err)
	} else if err != nil {
		err = fmt.Errorf("%s: %s: %w", r.app.Name, r.app.Worker, err)
	}
	if err != nil {
		return err
	}
	outcome = &r.served
	return nil
}

// Serve accepts connections until the listener closes, dispatching each
// to ServeConn on its own goroutine, and returns once every dispatched
// connection has completed. Failed or rejected connections are closed
// (the client's signal to retry elsewhere) and counted in the Snapshot.
// A closed listener ends the loop with a nil error; any other accept
// failure is returned.
func (r *Runtime[T]) Serve(l *netsim.Listener) error {
	var serveErr error
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			if !errors.Is(err, netsim.ErrListenerDown) {
				serveErr = err
			}
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			r.ServeConn(conn)
		}()
	}
	wg.Wait()
	return serveErr
}

// Resize grows or shrinks the pool to n slots (see gatepool.Pool.Resize).
// With auto-slots enabled the next admission may re-size again; call
// SetAutoSlots(false) first to pin a manual size.
func (r *Runtime[T]) Resize(n int) error { return r.pool.Resize(n) }

// SetQueue adjusts the admission bound live (App.Queue semantics).
func (r *Runtime[T]) SetQueue(n int) {
	r.mu.Lock()
	r.queue = n
	r.mu.Unlock()
}

// SetAutoSlots toggles auto-slots mode live. Enabling it re-applies the
// GOMAXPROCS-derived target on the next admission.
func (r *Runtime[T]) SetAutoSlots(on bool) {
	r.mu.Lock()
	r.auto = on
	r.autoTarget = 0
	r.mu.Unlock()
}

// Drain moves the runtime to StateDraining: new admissions fail with the
// typed overload error, in-flight connections run to completion, and the
// call returns only when the pool is quiescent (every slot released). A
// concurrent Undrain cancels the drain; Drain on a closed runtime is a
// no-op.
func (r *Runtime[T]) Drain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateClosed {
		return
	}
	if r.state != StateDraining {
		r.state = StateDraining
		r.drains++
	}
	for r.inflight > 0 && r.state == StateDraining {
		r.quiet.Wait()
	}
	// The pool transition happens under the runtime lock, in the same
	// critical section as the state check: a concurrent Undrain (which
	// needs the lock to flip the state) can interleave only before —
	// cancelling the drain — or after, never between, so the pool can
	// not be left drained behind a serving runtime. Safe to call here:
	// with no admissions and no in-flight connections every lease is
	// already released, so pool.Drain is an immediate barrier (it also
	// blocks late Acquires until Undrain) rather than a blocking wait.
	if r.state == StateDraining {
		r.pool.Drain()
	}
}

// Undrain re-admits connections after a Drain.
func (r *Runtime[T]) Undrain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateDraining {
		// Re-open the pool before the state flips: once admit can
		// observe StateServing, Acquire must no longer fail ErrDraining.
		r.pool.Undrain()
		r.state = StateServing
	}
	r.quiet.Broadcast() // cancel a Drain still waiting on in-flight conns
}

// Close drains the runtime and tears the pool down: gates, argument
// blocks, and tags are all released. The runtime is unusable afterwards.
// Close only commits the draining → closed transition while the drain
// still holds, so an Undrain racing it re-opens a fully working runtime
// (whose connections Close then drains again) rather than leaving a
// window where admitted connections fail untyped against a closing pool.
func (r *Runtime[T]) Close() error {
	for {
		r.Drain()
		r.mu.Lock()
		switch r.state {
		case StateClosed:
			r.mu.Unlock()
			return nil
		case StateDraining:
			r.state = StateClosed
			r.quiet.Broadcast()
			r.mu.Unlock()
			if r.wheel != nil {
				r.wheel.Stop()
			}
			return r.pool.Close()
		}
		// A concurrent Undrain re-opened the runtime between our Drain
		// and this lock: drain again until the transition sticks.
		r.mu.Unlock()
	}
}

// Schema returns the argument-block schema the runtime serves — the one
// source for the block size, the scrub footprint, and the demux words.
func (r *Runtime[T]) Schema() *gateabi.Schema { return r.app.Schema }

// PoolStats snapshots the pool scheduler's counters alone; Snapshot
// includes them plus the runtime's own.
func (r *Runtime[T]) PoolStats() gatepool.Stats { return r.pool.Stats() }

// SlotPin is a NUMA-style placement hint: the CPU a slot's gate sthreads
// should be pinned to. The simulated substrate cannot call
// sched_setaffinity, so the hint is advisory — slot index modulo host
// parallelism, the striping a native runtime would install — and is
// exported so schedulers above the runtime (and the multicore scaling
// experiment) can observe the intended placement.
type SlotPin struct {
	Slot int
	CPU  int
}

// Snapshot is the unified observability surface: lifecycle state,
// admission counters, queue configuration and depth, auto-slots
// progress, pin hints, and the embedded pool stats.
type Snapshot struct {
	App      string
	State    State
	Inflight int // admitted connections not yet completed
	Waiting  int // admitted but not yet holding a slot lease
	Queue    int // configured admission bound (App.Queue semantics)

	AutoSlots   bool
	AutoTarget  int // last slot target auto mode applied (0 = none yet)
	AutoResizes uint64

	// The admission ledger. These are taken in one critical section with
	// Inflight, so Admitted == Served + Failed + Handed + Inflight holds
	// in every snapshot — the property the cluster director's two-choice
	// load reads and the servetest batteries assert on. Handed counts
	// sessions exported to a peer runtime via HandoffPrincipal.
	Admitted uint64
	Served   uint64
	Failed   uint64
	Handed   uint64
	Rejected uint64
	Drains   uint64

	// Idle-expiry counters. IdleReaped counts stream connections the
	// wheel closed for inactivity; IdleResched counts timer re-arms for
	// connections that were active when their check fired. The datagram
	// runtime fills the remaining three: Packets is total datagrams
	// through the packet loop, Flows is the current live flow count, and
	// Expired counts flows ended by idle expiry (each one ran the full
	// EndConn/scrub/teardown path).
	IdleReaped  uint64
	IdleResched uint64
	Packets     uint64
	Flows       int
	Expired     uint64

	// Conns is the conn-table occupancy census: live entries, shard
	// count, deepest shard, slot capacity, and bucket-array growths.
	// Entries must read zero at quiescence — a nonzero figure after the
	// runtime settles is a demux-record leak (the soak harness and the
	// servetest battery both assert on it).
	Conns gatepool.ConnTableStats

	Pool gatepool.Stats
	Pins []SlotPin
}

// Snapshot returns a point-in-time view of the runtime and its pool.
// The whole view — ledger, pool stats, conn-table census — is assembled
// under the runtime lock, so it is one consistent point in time: a
// reader can never observe a torn Admitted/Served pair or a pool census
// from a different instant than the ledger it sits next to. (Safe lock
// order: neither the pool nor the conn table ever calls back into the
// runtime, so taking their internal locks under r.mu cannot invert.)
func (r *Runtime[T]) Snapshot() Snapshot {
	procs := runtime.GOMAXPROCS(0)
	r.mu.Lock()
	defer r.mu.Unlock()
	ps := r.pool.Stats()
	cs := r.conns.Stats()
	// Waiting is connections admitted but not yet being serviced. Classic
	// mode: blocked in Acquire (inflight minus leased slots). Batched
	// mode: ring admission rarely blocks, so the waiters are the pool's
	// committed-but-undispatched backlog plus any producer that holds no
	// ring entry yet.
	waiting := r.inflight - ps.Busy
	if ps.RingDepth > 0 {
		entries := 0
		for _, g := range ps.Gates {
			entries += g.Inflight
		}
		waiting = r.inflight - entries
		if waiting < 0 {
			waiting = 0
		}
		waiting += ps.Backlog
	}
	s := Snapshot{
		App:      r.app.Name,
		State:    r.state,
		Inflight: r.inflight,
		Waiting:  waiting,
		Queue:    r.queue,

		AutoSlots:   r.auto,
		AutoTarget:  r.autoTarget,
		AutoResizes: r.autoResizes,

		Admitted: r.admitted,
		Served:   r.served,
		Failed:   r.failed,
		Handed:   r.handed,
		Rejected: r.rejected,
		Drains:   r.drains,

		IdleReaped:  r.idleReaped,
		IdleResched: r.idleResched,

		Conns: cs,
		Pool:  ps,
	}
	if s.Waiting < 0 {
		s.Waiting = 0
	}
	for _, g := range ps.Gates {
		if !g.Retiring {
			s.Pins = append(s.Pins, SlotPin{Slot: g.Slot, CPU: g.Slot % procs})
		}
	}
	return s
}
