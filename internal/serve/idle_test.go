package serve

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// The idle tests serve a looping echo: the worker greets, then echoes
// bytes until 'Q' (clean exit) or a read failure (the reaper's close).
// The loop is what lets one connection stay active across several idle
// windows while another sits silent in the same runtime.
var (
	loopSchemaB = gateabi.NewSchema("loopecho")
	_           = gateabi.ConnID(loopSchemaB)
	_           = gateabi.FD(loopSchemaB)
	loopSchema  = loopSchemaB.Seal()
)

// TestIdleTimeoutReapsIdleConn is the ISSUE's regression case: with
// IdleTimeout set, an idle connection is reaped (its ServeConn returns,
// IdleReaped counts it) while a concurrently active connection on the
// same runtime is untouched and completes normally afterwards.
func TestIdleTimeoutReapsIdleConn(t *testing.T) {
	const idle = 100 * time.Millisecond
	k := kernel.New()
	a := sthread.Boot(k)
	done := make(chan error, 1)
	ready := make(chan *Runtime[struct{}], 1)
	quit := make(chan struct{})
	go func() {
		done <- a.Main(func(root *sthread.Sthread) {
			var rt *Runtime[struct{}]
			var err error
			rt, err = New(root, App[struct{}]{
				Name:        "loopecho",
				Slots:       4,
				Schema:      loopSchema,
				Worker:      "worker",
				IdleTimeout: idle,
				Finish: func(c *Conn[struct{}], ret vm.Addr, err error) error {
					if err == nil && ret == 0 {
						err = errors.New("session aborted")
					}
					return err
				},
				Gates: []gatepool.GateDef{{
					Name: "worker",
					Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
						c := rt.Lookup(w, arg)
						if c == nil {
							return 0
						}
						if _, err := w.Task.WriteFD(c.FD, []byte{'>'}); err != nil {
							return 0
						}
						buf := make([]byte, 1)
						for {
							if _, err := w.Task.ReadFD(c.FD, buf); err != nil {
								return 0 // reaped (or peer gone) mid-session
							}
							if buf[0] == 'Q' {
								return 1
							}
							if _, err := w.Task.WriteFD(c.FD, buf); err != nil {
								return 0
							}
						}
					},
				}},
			})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- rt
			<-quit
		})
	}()
	rt := <-ready
	if rt == nil {
		t.FailNow()
	}
	defer func() {
		close(quit)
		if err := <-done; err != nil {
			t.Fatalf("main: %v", err)
		}
	}()
	defer rt.Close()

	type session struct {
		conn *netsim.Conn
		err  chan error
	}
	dial := func() session {
		c1, c2 := pairThrough(t, k)
		s := session{conn: c1, err: make(chan error, 1)}
		go func() { s.err <- rt.ServeConn(c2) }()
		buf := make([]byte, 1)
		if _, err := s.conn.Read(buf); err != nil || buf[0] != '>' {
			t.Errorf("greeting: %q, %v", buf, err)
		}
		return s
	}

	idleSess := dial()   // never speaks again
	activeSess := dial() // echoes through several idle windows

	// Keep the active session talking well past the point the idle one
	// is reaped: 8 round-trips spaced at idle/3 span ~2.6 idle windows.
	for i := 0; i < 8; i++ {
		time.Sleep(idle / 3)
		if _, err := activeSess.conn.Write([]byte{'a'}); err != nil {
			t.Fatalf("active write %d: %v", i, err)
		}
		buf := make([]byte, 1)
		if _, err := activeSess.conn.Read(buf); err != nil {
			t.Fatalf("active conn disturbed at round %d: %v", i, err)
		}
	}

	// The idle session must have been reaped by now (silent for ~2.6x
	// the timeout): its server side returned an error and the client
	// side of the connection is closed.
	select {
	case err := <-idleSess.err:
		if err == nil {
			t.Fatal("idle ServeConn returned nil, want reap-induced error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle connection never reaped")
	}
	if _, err := idleSess.conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle conn client side still readable after reap")
	}

	// The active session finishes cleanly after all that reaping.
	if _, err := activeSess.conn.Write([]byte{'Q'}); err != nil {
		t.Fatal(err)
	}
	if err := <-activeSess.err; err != nil {
		t.Fatalf("active ServeConn: %v", err)
	}

	s := rt.Snapshot()
	if s.IdleReaped < 1 {
		t.Fatalf("IdleReaped = %d, want >= 1", s.IdleReaped)
	}
	if s.Served < 1 {
		t.Fatalf("Served = %d, want >= 1 (the active session)", s.Served)
	}
}

// TestIdleTimeoutRearmsActiveConn: a connection that is active when its
// idle check fires re-arms (IdleResched counts it) instead of closing.
func TestIdleTimeoutRearmsActiveConn(t *testing.T) {
	const idle = 80 * time.Millisecond
	k := kernel.New()
	a := sthread.Boot(k)
	done := make(chan error, 1)
	ready := make(chan *Runtime[struct{}], 1)
	quit := make(chan struct{})
	go func() {
		done <- a.Main(func(root *sthread.Sthread) {
			var rt *Runtime[struct{}]
			var err error
			rt, err = New(root, App[struct{}]{
				Name:        "loopecho",
				Slots:       2,
				Schema:      loopSchema,
				Worker:      "worker",
				IdleTimeout: idle,
				Finish: func(c *Conn[struct{}], ret vm.Addr, err error) error {
					if err == nil && ret == 0 {
						err = errors.New("session aborted")
					}
					return err
				},
				Gates: []gatepool.GateDef{{
					Name: "worker",
					Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
						c := rt.Lookup(w, arg)
						if c == nil {
							return 0
						}
						w.Task.WriteFD(c.FD, []byte{'>'})
						buf := make([]byte, 1)
						for {
							if _, err := w.Task.ReadFD(c.FD, buf); err != nil {
								return 0
							}
							if buf[0] == 'Q' {
								return 1
							}
							w.Task.WriteFD(c.FD, buf)
						}
					},
				}},
			})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- rt
			<-quit
		})
	}()
	rt := <-ready
	if rt == nil {
		t.FailNow()
	}
	defer func() {
		close(quit)
		if err := <-done; err != nil {
			t.Fatalf("main: %v", err)
		}
	}()
	defer rt.Close()

	c1, c2 := pairThrough(t, k)
	errc := make(chan error, 1)
	go func() { errc <- rt.ServeConn(c2) }()
	buf := make([]byte, 1)
	if _, err := c1.Read(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		time.Sleep(idle / 2)
		if _, err := c1.Write([]byte{'a'}); err != nil {
			t.Fatalf("round %d: conn reaped while active: %v", i, err)
		}
		if _, err := c1.Read(buf); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	c1.Write([]byte{'Q'})
	if err := <-errc; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	s := rt.Snapshot()
	if s.IdleResched < 1 {
		t.Fatalf("IdleResched = %d, want >= 1", s.IdleResched)
	}
	if s.IdleReaped != 0 {
		t.Fatalf("IdleReaped = %d, want 0", s.IdleReaped)
	}
}

// TestIdleReapUsesInjectedMonotonicClock is the wall-clock regression
// test: the reap decision must come from the runtime's injected clock
// source, not time.Now. A frozen clock keeps a silent connection alive
// through several real-time idle windows (the wall-clock bug reaped it;
// a backward NTP step deferred reaping forever); advancing the injected
// clock past the timeout then reaps it promptly.
func TestIdleReapUsesInjectedMonotonicClock(t *testing.T) {
	const idle = 40 * time.Millisecond
	k := kernel.New()
	a := sthread.Boot(k)
	done := make(chan error, 1)
	ready := make(chan *Runtime[struct{}], 1)
	quit := make(chan struct{})
	go func() {
		done <- a.Main(func(root *sthread.Sthread) {
			var rt *Runtime[struct{}]
			var err error
			rt, err = New(root, App[struct{}]{
				Name:        "loopecho",
				Slots:       2,
				Schema:      loopSchema,
				Worker:      "worker",
				IdleTimeout: idle,
				Gates: []gatepool.GateDef{{
					Name: "worker",
					Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
						c := rt.Lookup(w, arg)
						if c == nil {
							return 0
						}
						w.Task.WriteFD(c.FD, []byte{'>'})
						buf := make([]byte, 1)
						for {
							if _, err := w.Task.ReadFD(c.FD, buf); err != nil {
								return 1 // reaped: normal unwind
							}
							if buf[0] == 'Q' {
								return 1
							}
							w.Task.WriteFD(c.FD, buf)
						}
					},
				}},
			})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- rt
			<-quit
		})
	}()
	rt := <-ready
	if rt == nil {
		t.FailNow()
	}
	defer func() {
		close(quit)
		if err := <-done; err != nil {
			t.Fatalf("main: %v", err)
		}
	}()
	defer rt.Close()

	// The fake clock starts at 1 (the table treats 0 as "unstamped") and
	// advances only when the test says so.
	var fake atomic.Int64
	fake.Store(1)
	rt.setClock(fake.Load)

	c1, c2 := pairThrough(t, k)
	errc := make(chan error, 1)
	go func() { errc <- rt.ServeConn(c2) }()
	buf := make([]byte, 1)
	if _, err := c1.Read(buf); err != nil || buf[0] != '>' {
		t.Fatalf("greeting: %q, %v", buf, err)
	}

	// Frozen clock: the connection sits silent for ~4 real idle windows,
	// but on the injected clock zero time has passed — every reaper fire
	// must re-arm, never reap.
	time.Sleep(4 * idle)
	select {
	case err := <-errc:
		t.Fatalf("connection reaped under a frozen clock: %v", err)
	default:
	}
	s := rt.Snapshot()
	if s.IdleReaped != 0 {
		t.Fatalf("IdleReaped = %d under frozen clock, want 0", s.IdleReaped)
	}
	if s.IdleResched < 1 {
		t.Fatalf("IdleResched = %d, want >= 1 (reaper fired and re-armed)", s.IdleResched)
	}

	// Advance the injected clock past the timeout: the next fire reaps.
	// The client never sent 'Q', so ServeConn returning at all means the
	// reaper closed the connection (the gate treats the failed read as a
	// normal unwind, so the error is nil).
	fake.Add(int64(2 * idle))
	select {
	case <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("connection never reaped after clock advance")
	}
	if s := rt.Snapshot(); s.IdleReaped != 1 {
		t.Fatalf("IdleReaped = %d, want 1", s.IdleReaped)
	}
	if s := rt.Snapshot(); s.Conns.Entries != 0 {
		t.Fatalf("conn-table entries = %d after reap, want 0", s.Conns.Entries)
	}
}

// TestNoIdleTimeoutSkipsClock: an app without IdleTimeout must never
// read the time source — the conn table stays untracked, so Put is a
// stamp-free registration (the lazy-touch fix). The injected clock
// counts its invocations; a full session must leave it at zero.
func TestNoIdleTimeoutSkipsClock(t *testing.T) {
	k := kernel.New()
	a := sthread.Boot(k)
	done := make(chan error, 1)
	ready := make(chan *Runtime[struct{}], 1)
	quit := make(chan struct{})
	go func() {
		done <- a.Main(func(root *sthread.Sthread) {
			var rt *Runtime[struct{}]
			var err error
			rt, err = New(root, App[struct{}]{
				Name:   "loopecho",
				Slots:  2,
				Schema: loopSchema,
				Worker: "worker",
				Gates: []gatepool.GateDef{{
					Name: "worker",
					Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
						c := rt.Lookup(w, arg)
						if c == nil {
							return 0
						}
						w.Task.WriteFD(c.FD, []byte{'>'})
						buf := make([]byte, 1)
						for {
							if _, err := w.Task.ReadFD(c.FD, buf); err != nil {
								return 0
							}
							if buf[0] == 'Q' {
								return 1
							}
							w.Task.WriteFD(c.FD, buf)
						}
					},
				}},
			})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- rt
			<-quit
		})
	}()
	rt := <-ready
	if rt == nil {
		t.FailNow()
	}
	defer func() {
		close(quit)
		if err := <-done; err != nil {
			t.Fatalf("main: %v", err)
		}
	}()
	defer rt.Close()

	var reads atomic.Int64
	rt.setClock(func() int64 { return reads.Add(1) })

	c1, c2 := pairThrough(t, k)
	errc := make(chan error, 1)
	go func() { errc <- rt.ServeConn(c2) }()
	buf := make([]byte, 1)
	if _, err := c1.Read(buf); err != nil || buf[0] != '>' {
		t.Fatalf("greeting: %q, %v", buf, err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c1.Write([]byte{'a'}); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	c1.Write([]byte{'Q'})
	if err := <-errc; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	if n := reads.Load(); n != 0 {
		t.Fatalf("no-IdleTimeout app read the clock %d times, want 0", n)
	}
	if s := rt.Snapshot(); s.Conns.Entries != 0 {
		t.Fatalf("conn-table entries = %d after session, want 0", s.Conns.Entries)
	}
}

var pairSeq atomic.Int64

// pairThrough builds a connected client/server pair over the simulated
// network (fresh listener address per call; the dialing side gets
// netsim's fresh client-N address, so each server side is a distinct
// principal).
func pairThrough(t *testing.T, k *kernel.Kernel) (client, server *netsim.Conn) {
	t.Helper()
	addr := fmt.Sprintf("idle:%s-%d", t.Name(), pairSeq.Add(1))
	l, err := k.Net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   *netsim.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = k.Net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return client, r.c
}
