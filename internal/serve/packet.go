// Datagram serving. A stream runtime's unit of work arrives ready-made:
// accept() hands it one connection per principal. A datagram socket
// hands it single packets, so the runtime must build the connection
// abstraction itself: the packet loop (ServePackets) demultiplexes each
// datagram by its source address — the principal key — into a flow,
// creating the flow's conn-table entry on the first packet and retiring
// it when the timer wheel finds it idle. Expiry is not a fast path
// around teardown: it closes the flow's descriptor, which unwinds the
// worker through exactly the stream path — EndConn, conn-table delete,
// lease release (and so inter-principal scrubbing), leak accounting —
// so every invariant the conformance battery checks for TCP apps holds
// verbatim for datagram apps.
//
// A flow holds its slot lease for its whole lifetime, like a TCP
// connection: the §3.3 residue argument needs the slot's argument tag
// bound to one principal at a time, and per-packet lease churn would
// also scrub per packet. The wheel is what makes the model viable —
// flows that stop talking give their slots back after IdleTimeout
// without any per-flow goroutine or runtime timer.

package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/timerwheel"
	"wedge/internal/vm"
)

// DefaultIdleTimeout is the flow-expiry window used when a PacketApp
// does not set one. Datagram flows must always expire — there is no FIN.
const DefaultIdleTimeout = 30 * time.Second

// flowQueueCap bounds a single flow's unread-datagram queue; packets
// beyond it are dropped, UDP-style, rather than buffered without bound
// by a worker that has stopped reading.
const flowQueueCap = 64

// maxDatagram is the packet-loop read buffer: larger datagrams are
// truncated by the transport anyway.
const maxDatagram = 64 * 1024

// PacketApp declares a pooled datagram application. The shared fields
// mean exactly what they mean on App; the differences are the packet
// loop's: OnPacket is the worker gate invoked once per flow (it reads
// whole datagrams from its descriptor — one Read, one datagram — and
// writes whole response datagrams back), IdleTimeout bounds a flow's
// silence before the wheel expires it, and Refuse maps an admission
// rejection to a response datagram so clients see overload instead of a
// timeout.
type PacketApp[T any] struct {
	Name     string
	Slots    int
	MaxSlots int

	Schema *gateabi.Schema

	Gates    []gatepool.GateDef
	OnPacket string // the Gates entry invoked once per flow

	// BatchDepth selects the batched dataplane, exactly as on App.
	BatchDepth int

	Queue     int
	AutoSlots bool

	// IdleTimeout is the flow-expiry window (<= 0: DefaultIdleTimeout).
	IdleTimeout time.Duration

	InitConn func(c *Conn[T]) error
	EndConn  func(c *Conn[T])
	Finish   func(c *Conn[T], ret vm.Addr, err error) error

	// Export and Import are the session-handoff hooks, exactly as on App:
	// Export serializes the flow's app state (never secrets), Import
	// restores it at the new home after validating it as hostile input.
	Export func(c *Conn[T], block []byte) []byte
	Import func(c *Conn[T], rec *HandoffRecord) error

	// Refuse builds the datagram sent back when a first packet is
	// rejected by admission control (queue overflow, draining, closed).
	// nil, or a nil return, drops the packet silently.
	Refuse func(payload []byte, err error) []byte
}

// flowFile is the per-flow descriptor handed to the worker: Read pops
// one queued datagram (blocking; message boundaries preserved), Write
// sends one datagram back to the flow's peer. Closing it — expiry's
// lever — fails the worker's blocked Read with netsim.ErrClosed.
type flowFile struct {
	pc   *netsim.PacketConn
	peer string

	mu     sync.Mutex
	cond   *sync.Cond
	q      [][]byte
	closed bool
	touch  func() // refreshes the flow's idle stamp; set by serveFlow
}

func newFlowFile(pc *netsim.PacketConn, peer string) *flowFile {
	f := &flowFile{pc: pc, peer: peer}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *flowFile) push(p []byte) {
	f.mu.Lock()
	if !f.closed && len(f.q) < flowQueueCap {
		f.q = append(f.q, p)
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

func (f *flowFile) Read(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.q) == 0 {
		if f.closed {
			return 0, netsim.ErrClosed
		}
		f.cond.Wait()
	}
	p := f.q[0]
	f.q = f.q[1:]
	return copy(b, p), nil
}

// Write sends one response datagram. A response is activity: like the
// stream runtime's touchConn, it refreshes the flow's idle stamp, so a
// flow whose worker just answered is never on the brink of expiry.
func (f *flowFile) Write(b []byte) (int, error) {
	f.mu.Lock()
	touch := f.touch
	f.mu.Unlock()
	if touch != nil {
		touch()
	}
	return f.pc.WriteTo(b, f.peer)
}

func (f *flowFile) Close() error {
	f.mu.Lock()
	f.closed = true
	f.q = nil
	f.cond.Broadcast()
	f.mu.Unlock()
	return nil
}

// flow is one live principal on the packet loop.
type flow[T any] struct {
	peer  string
	file  *flowFile
	id    uint64 // conn-table id; set by serveFlow under fmu
	timer *timerwheel.Timer
}

// PacketRuntime serves one PacketApp. It embeds the stream Runtime —
// pool lifecycle, admission control, Drain/Undrain/Close, Resize,
// SetQueue, auto-slots, and Lookup's slot pin are all shared — and adds
// the packet loop, the flow table, and wheel-driven expiry.
type PacketRuntime[T any] struct {
	*Runtime[T]

	wheel  *timerwheel.Wheel
	idle   time.Duration
	refuse func(payload []byte, err error) []byte

	fmu     sync.Mutex
	flows   map[string]*flow[T]
	packets uint64
	expired uint64
	resched uint64
}

// NewPacket builds a datagram runtime from the descriptor. The pool, the
// schema checks, and the slot policy are exactly New's.
func NewPacket[T any](root *sthread.Sthread, app PacketApp[T]) (*PacketRuntime[T], error) {
	r, err := New(root, App[T]{
		Name:       app.Name,
		Slots:      app.Slots,
		MaxSlots:   app.MaxSlots,
		Schema:     app.Schema,
		Gates:      app.Gates,
		Worker:     app.OnPacket,
		BatchDepth: app.BatchDepth,
		Queue:      app.Queue,
		AutoSlots:  app.AutoSlots,
		InitConn:   app.InitConn,
		EndConn:    app.EndConn,
		Finish:     app.Finish,
		Export:     app.Export,
		Import:     app.Import,
	})
	if err != nil {
		return nil, err
	}
	idle := app.IdleTimeout
	if idle <= 0 {
		idle = DefaultIdleTimeout
	}
	p := &PacketRuntime[T]{
		Runtime: r,
		idle:    idle,
		refuse:  app.Refuse,
		flows:   make(map[string]*flow[T]),
	}
	// Datagram flows always expire (there is no FIN), so the conn table
	// always tracks touch stamps — the stream runtime's lazy opt-in is
	// mandatory here.
	p.conns.TrackIdle()
	p.wheel = timerwheel.New(idleTick(idle), 0)
	p.wheel.Start()
	return p, nil
}

// IdleTimeout returns the effective flow-expiry window.
func (p *PacketRuntime[T]) IdleTimeout() time.Duration { return p.idle }

// ServePackets runs the packet loop: read a datagram, demultiplex by
// source address, deliver to the flow (creating it on first contact).
// It returns when the socket closes; in-flight flows then finish or
// expire under Drain/Close as usual.
func (p *PacketRuntime[T]) ServePackets(pc *netsim.PacketConn) error {
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, netsim.ErrClosed) {
				return nil
			}
			return err
		}
		p.autoSync()
		p.deliver(pc, append([]byte(nil), buf[:n]...), from)
	}
}

// deliver routes one datagram. Existing flow: enqueue and refresh the
// idle stamp. New flow: admit (refusing overload with the app's Refuse
// datagram) and start its worker.
func (p *PacketRuntime[T]) deliver(pc *netsim.PacketConn, payload []byte, from string) {
	p.fmu.Lock()
	p.packets++
	if f, ok := p.flows[from]; ok {
		f.file.push(payload)
		// A failed touch means expiry just took the entry: the flow is
		// dead and this packet is lost, like any datagram in flight at
		// the wrong moment. The next packet re-registers a fresh flow.
		p.conns.Touch(f.id)
		p.fmu.Unlock()
		return
	}
	if err := p.admit(); err != nil {
		p.fmu.Unlock()
		if p.refuse != nil {
			if resp := p.refuse(payload, err); resp != nil {
				pc.WriteTo(resp, from)
			}
		}
		return
	}
	f := &flow[T]{peer: from, file: newFlowFile(pc, from)}
	f.file.push(payload)
	p.flows[from] = f
	p.fmu.Unlock()
	go p.serveFlow(f, nil)
}

// DeliverPacket injects one datagram into the flow demux exactly as if
// the packet loop had read it from pc: source address from, flow created
// on first contact, admission control applied. It is the cluster
// director's forwarding entry — the director owns the front socket and
// relays each client datagram to the owning runtime's backend socket.
func (p *PacketRuntime[T]) DeliverPacket(pc *netsim.PacketConn, payload []byte, from string) {
	p.autoSync()
	p.deliver(pc, append([]byte(nil), payload...), from)
}

// ResumeFlow re-admits a handed-off datagram flow: the record is
// validated as hostile input, the flow is registered under its peer
// address, and its worker starts with c.Resumed set and the app payload
// imported — mid-protocol state (a half-reassembled query) survives the
// move. Replies go out through pc to peer, exactly like a first-contact
// flow's.
func (p *PacketRuntime[T]) ResumeFlow(pc *netsim.PacketConn, peer string, rec *HandoffRecord) error {
	if err := p.checkRecord(rec); err != nil {
		return err
	}
	p.fmu.Lock()
	if _, ok := p.flows[peer]; ok {
		p.fmu.Unlock()
		return fmt.Errorf("serve: %s: flow %q is already live here", p.app.Name, peer)
	}
	if err := p.admitResume(); err != nil {
		p.fmu.Unlock()
		return err
	}
	f := &flow[T]{peer: peer, file: newFlowFile(pc, peer)}
	p.flows[peer] = f
	p.fmu.Unlock()
	go p.serveFlow(f, rec)
	return nil
}

// serveFlow is the datagram counterpart of ServeConnAs: one admission,
// one descriptor, one lease, one worker invocation — per flow, not per
// packet. It unwinds in the same order the stream path does (conn-table
// delete, EndConn, lease release, descriptor close), whether the worker
// returned on its own or expiry closed the flow under it.
func (p *PacketRuntime[T]) serveFlow(f *flow[T], rec *HandoffRecord) {
	outcome := &p.failed
	defer func() { p.departAs(outcome) }()
	defer func() {
		p.fmu.Lock()
		if p.flows[f.peer] == f {
			delete(p.flows, f.peer)
		}
		t := f.timer
		p.fmu.Unlock()
		if t != nil {
			t.Cancel(p.wheel)
		}
		f.file.Close()
	}()

	root := p.root
	fd := root.Task.InstallFD(f.file, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	lease, err := p.pool.Acquire(f.peer)
	if err != nil {
		return
	}
	defer lease.Release()

	c := &Conn[T]{Principal: f.peer, FD: fd, Lease: lease,
		Resumed: rec != nil, interrupt: func() { f.file.Close() }}
	if p.app.InitConn != nil {
		if err := p.app.InitConn(c); err != nil {
			return
		}
	}
	if p.app.EndConn != nil {
		defer p.app.EndConn(c)
	}
	if rec != nil && p.app.Import != nil {
		if err := p.app.Import(c, rec); err != nil {
			return
		}
	}
	id := p.conns.Put(c)
	defer p.conns.Delete(id)

	f.file.mu.Lock()
	f.file.touch = func() { p.conns.Touch(id) }
	f.file.mu.Unlock()

	p.fmu.Lock()
	f.id = id
	f.timer = p.wheel.Schedule(p.idle, p.expiry(f, lease))
	p.fmu.Unlock()

	var ret vm.Addr
	if p.pool.Batched() {
		ret, err = lease.CallBatch(root, id, fd, kernel.FDRW)
	} else {
		root.Store64(lease.Arg+p.connOff, id)
		root.Store64(lease.Arg+p.fdOff, uint64(fd))
		ret, err = lease.CallFD(p.app.Worker, root, lease.Arg, fd, kernel.FDRW)
	}
	// Completion/handoff rendezvous, mirroring serveConn: a flow marked
	// for handoff while its worker ran unwinds as handed, with the export
	// finished here.
	c.hmu.Lock()
	c.completing = true
	h := c.hand
	c.hmu.Unlock()
	if h != nil {
		p.finishExport(c, h)
		outcome = &p.handed
		return
	}
	if p.app.Finish != nil {
		err = p.app.Finish(c, ret, err)
	} else if err != nil {
		err = fmt.Errorf("%s: %s: %w", p.app.Name, p.app.Worker, err)
	}
	if err != nil {
		return
	}
	outcome = &p.served
}

// expiry builds the wheel callback for one flow. RemoveIfIdle makes the
// idle check and the conn-table removal one atomic step against Touch;
// on expiry the only action is closing the flow's file — the worker's
// unwind does every piece of real teardown. A flow that was active
// re-arms for its remaining window.
func (p *PacketRuntime[T]) expiry(f *flow[T], lease *gatepool.Lease) func() {
	var fire func()
	fire = func() {
		// A flow whose ring entry is still queued behind a busy worker
		// (batched mode) has not been served a single byte: it is
		// waiting, not idle. Reaping it would drop its queued datagrams,
		// so hold the full window open until service begins. Classic
		// leases dispatch at call time and never take this branch —
		// there, the timer was armed only after Acquire returned.
		if !lease.Dispatched() {
			p.fmu.Lock()
			defer p.fmu.Unlock()
			if p.flows[f.peer] != f {
				return
			}
			p.resched++
			f.timer = p.wheel.Schedule(p.idle, fire)
			return
		}
		if _, ok := p.conns.RemoveIfIdle(f.id, p.idle); ok {
			p.fmu.Lock()
			p.expired++
			p.fmu.Unlock()
			f.file.Close()
			return
		}
		idleFor, ok := p.conns.IdleFor(f.id)
		p.fmu.Lock()
		defer p.fmu.Unlock()
		if p.flows[f.peer] != f {
			return // flow already ended on its own
		}
		if !ok {
			return // worker is mid-unwind; its teardown owns the flow
		}
		remain := p.idle - idleFor
		if remain < p.wheel.Tick() {
			remain = p.wheel.Tick()
		}
		p.resched++
		f.timer = p.wheel.Schedule(remain, fire)
	}
	return fire
}

// Close drains the runtime (flows finish or expire — the wheel keeps
// ticking through the drain so abandoned flows can unwind), closes the
// pool, then stops the wheel.
func (p *PacketRuntime[T]) Close() error {
	err := p.Runtime.Close()
	p.wheel.Stop()
	return err
}

// Snapshot extends the stream snapshot with the packet-loop counters.
func (p *PacketRuntime[T]) Snapshot() Snapshot {
	s := p.Runtime.Snapshot()
	p.fmu.Lock()
	s.Packets = p.packets
	s.Flows = len(p.flows)
	s.Expired = p.expired
	s.IdleResched += p.resched
	p.fmu.Unlock()
	return s
}
