// The cluster battery: the conformance suite for live session handoff.
// Two runtimes of the application sit behind a cluster.Director; the
// battery kills (removes and drains) the one that owns a session parked
// mid-protocol and requires that the client finishes the session at its
// new home without ever seeing an error. The same App adapter the
// single-runtime battery uses drives it — an application opts in with
// one extra test line.
package servetest

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"wedge/internal/cluster"
	"wedge/internal/kernel"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// Cluster runs the cluster battery against one application:
//
//   - HandoffMidProtocol: a runtime is removed while it owns a held
//     session. The session completes at the surviving runtime, the dead
//     runtime retires it as Handed and leaks neither tasks nor tags, no
//     worker invocation anywhere ever observes an earlier principal's
//     secret (the imported block image must be as contained as any
//     other session's), and Admitted == Served + Failed + Handed
//     balances on both runtimes.
//   - SchemaMismatchRefused: a member whose schema hash disagrees with
//     the cluster's is refused with the typed *serve.SchemaMismatchError
//     before it can ever exchange a session.
//
// The application's runtime must expose the handoff surface
// (cluster.StreamBackend — satisfied by embedding *serve.Runtime[T]).
func Cluster(t *testing.T, a App) {
	t.Run("HandoffMidProtocol", a.clusterHandoff)
	t.Run("SchemaMismatchRefused", a.clusterSchemaMismatch)
}

// start2 boots two independent systems serving the same application —
// two kernels, two runtimes, one probe wired into both.
func (a App) start2(t *testing.T, slots int, probe Probe, drive func(r0, r1 *rig)) {
	a.start(t, slots, probe, func(r0 *rig) {
		a.start(t, slots, probe, func(r1 *rig) {
			drive(r0, r1)
		})
	})
}

// clusterBackend asserts the rig's runtime exposes the handoff surface
// the director drives.
func clusterBackend(t *testing.T, r *rig) cluster.StreamBackend {
	t.Helper()
	sb, ok := r.rt.(cluster.StreamBackend)
	if !ok {
		t.Fatalf("%T does not expose the handoff surface (cluster.StreamBackend); "+
			"embed *serve.Runtime[T] or do not opt into the cluster battery", r.rt)
	}
	return sb
}

func (a App) clusterHandoff(t *testing.T) {
	// The probe watches every worker invocation on both runtimes. Unlike
	// the single-runtime residue battery it cannot demand an all-zero
	// block — a resumed session legitimately starts from its imported
	// image — so the invariant is containment: no invocation may ever
	// start with bytes an *earlier, different* principal pushed through
	// a block. Each observation records how many secrets existed when it
	// was taken, so a session can never be accused of leaking its own.
	argSize := a.Schema.Size()
	type observation struct {
		buf      []byte
		nsecrets int
	}
	var mu sync.Mutex
	var secrets [][]byte
	var probes []observation
	probe := func(s *sthread.Sthread, arg vm.Addr) {
		buf := make([]byte, argSize+a.Schema.ProbeWindow())
		s.Read(arg, buf)
		mu.Lock()
		probes = append(probes, observation{buf, len(secrets)})
		mu.Unlock()
	}

	a.start2(t, 2, probe, func(r0, r1 *rig) {
		sb0, sb1 := clusterBackend(t, r0), clusterBackend(t, r1)
		d := cluster.New()
		if err := d.Add(cluster.Member{Name: "m0", Stream: sb0}); err != nil {
			t.Fatal(err)
		}
		if err := d.Add(cluster.Member{Name: "m1", Stream: sb1}); err != nil {
			t.Fatal(err)
		}

		// The front door: a bare kernel whose network hosts the
		// director's listener. Clients dial it exactly as they would a
		// single runtime — the cluster is invisible from outside.
		front := kernel.New()
		fl, err := front.Net.Listen(a.Addr)
		if err != nil {
			t.Fatal(err)
		}
		served := make(chan struct{})
		go func() {
			d.Serve(fl)
			close(served)
		}()

		session := func(what string) {
			t.Helper()
			secret, err := a.Session(front)
			if err != nil {
				t.Fatalf("%s: %v", what, err)
			}
			if len(secret) > 0 {
				mu.Lock()
				secrets = append(secrets, secret)
				mu.Unlock()
			}
		}
		session("first session before the kill") // plants a secret somewhere
		session("second session before the kill")

		// Park a session mid-protocol, find the runtime that owns it,
		// and kill that runtime. Hold returns with a server response in
		// hand, so the worker invocation is provably in flight.
		held, err := a.Hold(front)
		if err != nil {
			t.Fatal(err)
		}
		rigs := map[string]*rig{"m0": r0, "m1": r1}
		var deadName string
		waitFor(t, "the held session to dispatch", func() bool {
			for name, r := range rigs {
				if r.rt.Snapshot().Inflight > 0 {
					deadName = name
					return true
				}
			}
			return false
		})
		dead := rigs[deadName]
		var home *rig
		for name, r := range rigs {
			if name != deadName {
				home = r
			}
		}
		if err := d.Remove(deadName); err != nil {
			t.Fatalf("remove %s: %v", deadName, err)
		}

		// Remove has returned: the held session was exported, re-admitted
		// at the survivor, and the dead runtime has drained. The client
		// finishes its protocol none the wiser.
		if err := held.Finish(); err != nil {
			t.Fatalf("finishing the handed-off session: %v", err)
		}

		session("session after the kill") // admits at the survivor

		fl.Close()
		<-served

		st := d.Stats()
		if st.Handoffs < 1 || st.HandoffFailed != 0 || st.Refused != 0 {
			t.Errorf("director stats %+v: want >=1 handoff, 0 failed, 0 refused", st)
		}
		if s := dead.rt.Snapshot(); s.Handed < 1 {
			t.Errorf("dead runtime Handed = %d, want >= 1", s.Handed)
		}

		// Quiescence and leak baselines on both sides: the dead runtime
		// must hold them the moment Remove returns; the survivor once its
		// last session completes.
		waitFor(t, "the survivor to quiesce", func() bool {
			s := home.rt.Snapshot()
			return s.Inflight == 0 && s.Conns.Entries == 0
		})
		checkQuiescent(t, dead, "on the killed runtime after the drain")
		checkQuiescent(t, home, "on the survivor at quiescence")

		for name, r := range rigs {
			if s := r.rt.Snapshot(); s.Admitted != s.Served+s.Failed+s.Handed {
				t.Errorf("%s ledger: admitted=%d != served=%d + failed=%d + handed=%d",
					name, s.Admitted, s.Served, s.Failed, s.Handed)
			}
		}

		mu.Lock()
		for i, p := range probes {
			for _, secret := range secrets[:p.nsecrets] {
				if len(secret) > 0 && bytes.Contains(p.buf, secret) {
					t.Errorf("probe %d observed an earlier principal's secret "+
						"in a worker invocation after the handoff", i)
				}
			}
		}
		mu.Unlock()

		a.checkClosed(t, dead)
		a.checkClosed(t, home)
	})
}

// skewedHash wraps a backend, reporting a schema hash the rest of the
// cluster does not share — the stand-in for a member built from a
// different schema revision.
type skewedHash struct{ cluster.StreamBackend }

func (s skewedHash) SchemaHash() uint64 { return s.StreamBackend.SchemaHash() ^ 1 }

func (a App) clusterSchemaMismatch(t *testing.T) {
	a.start2(t, 1, nil, func(r0, r1 *rig) {
		sb0, sb1 := clusterBackend(t, r0), clusterBackend(t, r1)
		d := cluster.New()
		if err := d.Add(cluster.Member{Name: "m0", Stream: sb0}); err != nil {
			t.Fatal(err)
		}

		err := d.Add(cluster.Member{Name: "m1", Stream: skewedHash{sb1}})
		var sm *serve.SchemaMismatchError
		if !errors.As(err, &sm) {
			t.Fatalf("skewed member admitted: err = %v, want *serve.SchemaMismatchError", err)
		}
		if sm.Want == sm.Got {
			t.Errorf("mismatch error carries equal hashes: %+v", sm)
		}
		if n := d.Stats().Members; n != 1 {
			t.Errorf("members after the refusal = %d, want 1", n)
		}

		// The honest twin — same build, same hash — joins fine.
		if err := d.Add(cluster.Member{Name: "m1", Stream: sb1}); err != nil {
			t.Fatalf("honest twin refused: %v", err)
		}
		if n := d.Stats().Members; n != 2 {
			t.Errorf("members = %d, want 2", n)
		}

		a.checkClosed(t, r0)
		a.checkClosed(t, r1)
	})
}
