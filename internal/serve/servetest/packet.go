// The datagram conformance battery: the packet-mode counterpart of Run.
// The cases assert the same invariants — residue scrub, drain semantics,
// resize under load, leak accounting, snapshot consistency — with the
// transport differences the datagram runtime introduces:
//
//   - There is no accept loop and no per-connection error return. A
//     rejected admission is observed the way a client observes it (the
//     app's Refuse datagram fails the session) and the way an operator
//     does (Snapshot.Rejected).
//   - Flows end by idle expiry, not by close. Every quiescence point
//     therefore waits for the wheel: the battery requires adapters to
//     configure a short IdleTimeout (a few hundred milliseconds) so the
//     suite runs in seconds.
//   - The new IdleExpiry case is datagram-specific: a flow retired by
//     the wheel — not by a clean protocol close — must reclaim the slot
//     pin (lease released, conn entry gone, task and tag counts back to
//     the serving baseline), and the next principal to lease the slot
//     must observe a fully scrubbed argument block. Expiry taking the
//     §3.3 scrub path, not a shortcut around it, is the invariant.
package servetest

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// PacketRuntime is the datagram-runtime surface the battery drives.
// Every pooled datagram server satisfies it by embedding
// *serve.PacketRuntime[T].
type PacketRuntime interface {
	ServePackets(*netsim.PacketConn) error
	Drain()
	Undrain()
	Resize(int) error
	SetQueue(int)
	Snapshot() serve.Snapshot
	PoolStats() gatepool.Stats
	Close() error
	IdleTimeout() time.Duration
}

// PacketApp adapts one pooled datagram application to the battery. The
// fields mirror App; New must configure a short IdleTimeout (the battery
// waits on real expiries) and a Refuse hook (the battery's drained
// session must fail by datagram, not by timeout). Session and Hold dial
// fresh packet sockets per call, so every call is a fresh principal.
type PacketApp struct {
	Name string
	Addr string

	Setup func(k *kernel.Kernel) error
	New   func(root *sthread.Sthread, slots int, probe Probe) (PacketRuntime, error)

	Session func(k *kernel.Kernel) ([]byte, error)
	Hold    func(k *kernel.Kernel) (*Held, error)

	Schema     *gateabi.Schema
	StaticTags int
}

// prig is one booted system serving the datagram application under test.
type prig struct {
	k   *kernel.Kernel
	app *sthread.App
	rt  PacketRuntime
	pc  *netsim.PacketConn

	baseTasks, baseTags int
	liveTasks, liveTags int
}

func (a PacketApp) start(t *testing.T, slots int, probe Probe, drive func(r *prig)) {
	t.Helper()
	k := kernel.New()
	if a.Setup != nil {
		if err := a.Setup(k); err != nil {
			t.Fatal(err)
		}
	}
	sapp := sthread.Boot(k)
	ready := make(chan *prig, 1)
	done := make(chan error, 1)
	quit := make(chan struct{})
	go func() {
		done <- sapp.Main(func(root *sthread.Sthread) {
			r := &prig{k: k, app: sapp,
				baseTasks: k.TaskCount(), baseTags: len(sapp.Tags.Tags())}
			rt, err := a.New(root, slots, probe)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			r.rt = rt
			r.liveTasks = k.TaskCount()
			r.liveTags = len(sapp.Tags.Tags())
			pc, err := root.Task.ListenPacket(a.Addr)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			r.pc = pc
			ready <- r
			<-quit
		})
	}()
	r := <-ready
	if r == nil {
		t.FailNow()
	}
	drive(r)
	close(quit)
	if err := <-done; err != nil {
		t.Fatalf("main: %v", err)
	}
}

// servePacketLoop runs the runtime-owned packet loop in the background;
// the returned stop closes the socket and joins the loop. Unlike the
// stream serveLoop it is not a quiescence barrier — flows outlive the
// loop until the wheel expires them; settle is the barrier.
func servePacketLoop(r *prig) (stop func()) {
	served := make(chan struct{})
	go func() {
		r.rt.ServePackets(r.pc)
		close(served)
	}()
	return func() {
		r.pc.Close()
		<-served
	}
}

// settle waits for every flow to end — which, for flows whose clients
// have gone quiet, means waiting for real wheel expiries.
func settle(t *testing.T, r *prig, when string) {
	t.Helper()
	waitFor(t, "flow quiescence "+when, func() bool {
		s := r.rt.Snapshot()
		return s.Flows == 0 && s.Inflight == 0 && s.Pool.Busy == 0
	})
}

func checkQuiescentP(t *testing.T, r *prig, when string) {
	t.Helper()
	if s := r.rt.Snapshot(); s.Inflight != 0 || s.Pool.Busy != 0 || s.Flows != 0 {
		t.Errorf("%s: inflight=%d busy=%d flows=%d, want 0/0/0", when, s.Inflight, s.Pool.Busy, s.Flows)
	}
	if s := r.rt.Snapshot(); s.Conns.Entries != 0 {
		t.Errorf("%s: conn-table entries = %d, want 0 (leaked flow registrations)", when, s.Conns.Entries)
	}
	if got := r.k.TaskCount(); got != r.liveTasks {
		t.Errorf("%s: task count %d, want the serving baseline %d", when, got, r.liveTasks)
	}
	if got := len(r.app.Tags.Tags()); got != r.liveTags {
		t.Errorf("%s: live tags %d, want the serving baseline %d", when, got, r.liveTags)
	}
}

func (a PacketApp) checkClosedP(t *testing.T, r *prig) {
	t.Helper()
	if err := r.rt.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := r.k.TaskCount(); got != r.baseTasks {
		t.Errorf("task count after close: %d, want the pre-runtime baseline %d", got, r.baseTasks)
	}
	if got, want := len(r.app.Tags.Tags()), r.baseTags+a.StaticTags; got != want {
		t.Errorf("live tags after close: %d, want %d (pre-runtime baseline %d + %d static)",
			got, want, r.baseTags, a.StaticTags)
	}
}

// RunPacket executes the datagram conformance battery against one
// application: the five shared cases plus the datagram-specific
// IdleExpiry case.
func RunPacket(t *testing.T, a PacketApp) {
	t.Run("Residue", a.residueP)
	t.Run("BatchRingResidue", a.batchRingResidueP)
	t.Run("BatchAbandonedEntries", a.batchAbandonedEntriesP)
	t.Run("DrainUndrain", a.drainUndrainP)
	t.Run("ResizeUnderLoad", a.resizeUnderLoadP)
	t.Run("Leaks", a.leaksP)
	t.Run("Snapshot", a.snapshotP)
	t.Run("IdleExpiry", a.idleExpiry)
}

// residueP: the §3.3 scrub check over flows. With one slot, principals
// A through D each lease the slot in turn (the battery waits for each
// flow to expire so the next principal demonstrably reuses the same
// slot); every probe after A's must show a fully scrubbed block and a
// clean arena window.
func (a PacketApp) residueP(t *testing.T) {
	argSize := a.Schema.Size()
	var mu sync.Mutex
	var probes [][]byte
	probe := func(s *sthread.Sthread, arg vm.Addr) {
		buf := make([]byte, argSize+a.Schema.ProbeWindow())
		s.Read(arg, buf)
		mu.Lock()
		probes = append(probes, buf)
		mu.Unlock()
	}
	a.start(t, 1, probe, func(r *prig) {
		stop := servePacketLoop(r)
		var secrets [][]byte
		session := func(what string) {
			secret, err := a.Session(r.k)
			if err != nil {
				t.Fatalf("%s: %v", what, err)
			}
			if len(secret) > 0 {
				secrets = append(secrets, secret)
			}
			settle(t, r, "after "+what)
		}
		session("principal A")
		session("principal B")
		if err := r.rt.Resize(2); err != nil {
			t.Fatalf("resize: %v", err)
		}
		session("principal C")
		session("principal D")
		stop()
		if err := r.rt.Resize(1); err != nil {
			t.Fatalf("resize back: %v", err)
		}

		mu.Lock()
		defer mu.Unlock()
		if len(probes) != 4 {
			t.Fatalf("probes = %d, want 4 (one worker invocation per flow)", len(probes))
		}
		for i, p := range probes[1:] {
			for _, secret := range secrets[:min(i+1, len(secrets))] {
				if len(secret) > 0 && bytes.Contains(p, secret) {
					t.Fatalf("probe %d read an earlier principal's secret from the reused slot", i+1)
				}
			}
			for j, b := range p {
				if b == 0 || a.Schema.IsDemux(j) {
					continue
				}
				if j < argSize {
					t.Fatalf("probe %d: argument block not scrubbed at +%d (%#x)", i+1, j, b)
				}
				t.Fatalf("probe %d: slot arena dirtied past the argument block at +%d (%#x)", i+1, j, b)
			}
		}
		checkQuiescentP(t, r, "after the residue sessions")
		a.checkClosedP(t, r)
	})
}

// drainUndrainP: a Drain with a held flow blocks until the flow ends
// (here: by expiry after the session completes), rejects first-contact
// packets meanwhile — observable both as the client's refused session
// and as Snapshot.Rejected — and Undrain re-admits.
func (a PacketApp) drainUndrainP(t *testing.T) {
	a.start(t, 2, nil, func(r *prig) {
		stop := servePacketLoop(r)
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		if s := r.rt.Snapshot(); s.Inflight != 1 || s.Pool.Busy != 1 {
			t.Fatalf("held flow: inflight=%d busy=%d, want 1/1", s.Inflight, s.Pool.Busy)
		}

		drained := make(chan struct{})
		go func() {
			r.rt.Drain()
			close(drained)
		}()
		waitFor(t, "draining state", func() bool { return r.rt.Snapshot().State == serve.StateDraining })
		select {
		case <-drained:
			t.Fatal("Drain returned with a flow still live")
		default:
		}

		// A new principal's first packet is refused: the session fails
		// (the app's Refuse datagram) and the runtime counts it.
		if _, err := a.Session(r.k); err == nil {
			t.Fatal("session admitted during drain")
		}
		if s := r.rt.Snapshot(); s.Rejected != 1 {
			t.Fatalf("rejected = %d, want 1", s.Rejected)
		}

		// Complete the held session; its flow then expires and the
		// drain completes.
		if err := held.Finish(); err != nil {
			t.Fatalf("in-flight session during drain: %v", err)
		}
		waitFor(t, "drain completion after flow expiry", func() bool {
			select {
			case <-drained:
				return true
			default:
				return false
			}
		})
		s := r.rt.Snapshot()
		if s.State != serve.StateDraining {
			t.Fatalf("post-drain state = %v, want draining", s.State)
		}
		if s.Served != 1 || s.Rejected != 1 || s.Drains != 1 {
			t.Fatalf("served=%d rejected=%d drains=%d, want 1/1/1", s.Served, s.Rejected, s.Drains)
		}
		if s.Expired != 1 {
			t.Fatalf("expired = %d, want 1 (the held flow ended by expiry)", s.Expired)
		}
		checkQuiescentP(t, r, "after drain")

		r.rt.Undrain()
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("session after undrain: %v", err)
		}
		settle(t, r, "after the undrain session")
		stop()
		a.checkClosedP(t, r)
	})
}

// resizeUnderLoadP: grow and shrink the pool while flows are live —
// including shrinking past the slot a held flow occupies — and lose no
// session.
func (a PacketApp) resizeUnderLoadP(t *testing.T) {
	const sessions = 6
	a.start(t, 2, nil, func(r *prig) {
		stop := servePacketLoop(r)
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		if err := r.rt.Resize(4); err != nil {
			t.Fatalf("grow under load: %v", err)
		}
		// Concurrent sessions from distinct principals: more flows than
		// free slots, so completion depends on earlier flows expiring —
		// resize under genuine lease churn.
		errs := make(chan error, sessions)
		for i := 0; i < sessions; i++ {
			go func() {
				_, err := a.Session(r.k)
				errs <- err
			}()
		}
		if err := r.rt.Resize(1); err != nil {
			t.Fatalf("shrink under load: %v", err)
		}
		// Finish the held session while the concurrent sessions are still
		// in flight: the shrink above retired slots past the one it holds
		// while it was live, and finishing now keeps the hold inside the
		// flow's idle window (the sessions' completion takes several
		// expiry waves — longer than the window by construction).
		if err := held.Finish(); err != nil {
			t.Fatalf("held session: %v", err)
		}
		for i := 0; i < sessions; i++ {
			if err := <-errs; err != nil {
				t.Errorf("session during resize: %v", err)
			}
		}
		settle(t, r, "after the resize sessions")
		stop()

		s := r.rt.Snapshot()
		if s.Served != sessions+1 {
			t.Errorf("served = %d, want %d", s.Served, sessions+1)
		}
		if s.Pool.Slots != 1 {
			t.Errorf("slots after shrink = %d, want 1", s.Pool.Slots)
		}
		if s.Pool.Grown < 2 || s.Pool.Shrunk < 3 {
			t.Errorf("grown=%d shrunk=%d, want >=2/>=3", s.Pool.Grown, s.Pool.Shrunk)
		}
		if err := r.rt.Resize(2); err != nil {
			t.Fatalf("resize back: %v", err)
		}
		checkQuiescentP(t, r, "after resize under load")
		a.checkClosedP(t, r)
	})
}

// leaksP: clean sessions, a fire-and-forget packet from a principal that
// never reads its reply, and a mid-protocol abandonment all expire back
// to the serving baseline; Close returns to the pre-runtime baseline.
func (a PacketApp) leaksP(t *testing.T) {
	a.start(t, 2, nil, func(r *prig) {
		stop := servePacketLoop(r)
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("first session: %v", err)
		}
		// Fire-and-forget: a datagram from a principal that immediately
		// goes away. The flow must still expire cleanly.
		ghost, err := r.k.Net.DialPacket()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ghost.WriteTo([]byte{0xff, 0xfe, 0xfd}, a.Addr); err != nil {
			t.Fatal(err)
		}
		ghost.Close()
		// Mid-protocol abandonment: the worker is provably parked inside
		// its invocation when the client vanishes.
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		if err := held.Abandon(); err != nil {
			t.Fatalf("abandon: %v", err)
		}
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("session after abandonment: %v", err)
		}
		settle(t, r, "after the leak sessions")
		stop()
		checkQuiescentP(t, r, "after the leak sessions")
		a.checkClosedP(t, r)
	})
}

// snapshotP: the observability surface agrees with what the battery did,
// including the packet-loop counters.
func (a PacketApp) snapshotP(t *testing.T) {
	const sessions = 5
	const slots = 3
	a.start(t, slots, nil, func(r *prig) {
		stop := servePacketLoop(r)
		for i := 0; i < sessions; i++ {
			if _, err := a.Session(r.k); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
		settle(t, r, "after the snapshot sessions")
		stop()

		s := r.rt.Snapshot()
		if s.App != a.Name {
			t.Errorf("snapshot app = %q, want %q", s.App, a.Name)
		}
		if s.State != serve.StateServing {
			t.Errorf("state = %v, want serving", s.State)
		}
		if s.Inflight != 0 || s.Flows != 0 {
			t.Errorf("inflight=%d flows=%d, want 0/0", s.Inflight, s.Flows)
		}
		if s.Admitted != sessions || s.Served != sessions {
			t.Errorf("admitted=%d served=%d, want %d/%d", s.Admitted, s.Served, sessions, sessions)
		}
		if s.Expired != sessions {
			t.Errorf("expired = %d, want %d (every flow ends by expiry)", s.Expired, sessions)
		}
		if s.Packets < sessions {
			t.Errorf("packets = %d, want >= %d", s.Packets, sessions)
		}
		if s.Failed != 0 || s.Rejected != 0 || s.Drains != 0 {
			t.Errorf("failed=%d rejected=%d drains=%d, want 0/0/0", s.Failed, s.Rejected, s.Drains)
		}
		if s.Pool.Slots != slots || s.Pool.Busy != 0 {
			t.Errorf("pool slots=%d busy=%d, want %d/0", s.Pool.Slots, s.Pool.Busy, slots)
		}
		if s.Pool.Acquires != sessions {
			t.Errorf("pool acquires = %d, want %d (one lease per flow)", s.Pool.Acquires, sessions)
		}
		if len(s.Pins) != slots {
			t.Errorf("pins = %d, want %d", len(s.Pins), slots)
		}
		a.checkClosedP(t, r)
		if s := r.rt.Snapshot(); s.State != serve.StateClosed || !s.Pool.Closed {
			t.Errorf("post-close snapshot: state=%v pool.closed=%v, want closed/true", s.State, s.Pool.Closed)
		}
	})
}

// batchRingResidueP mirrors the stream battery's batchRingResidue over
// flows: each sequential flow — settled between sessions, so each retires
// by expiry before the next admission — occupies the next ring position,
// and every invocation after the first must find the previous principal's
// ring position scrubbed to zero before its own body runs. All flows dial
// fresh sockets (distinct principals), so the run must record scrubs and
// zero same-principal skips.
func (a PacketApp) batchRingResidueP(t *testing.T) {
	argSize := a.Schema.Size()
	stride := vm.Addr((argSize + 7) &^ 7) // the ring's entry stride (gatepool entry size)
	var depth atomic.Int64
	var mu sync.Mutex
	var own, prev [][]byte
	probe := func(s *sthread.Sthread, arg vm.Addr) {
		o := make([]byte, argSize)
		s.Read(arg, o)
		mu.Lock()
		idx := len(own)
		mu.Unlock()
		var pr []byte
		// Position 0's lower neighbour is the header array, not an entry.
		if d := depth.Load(); d > 0 && int64(idx)%d != 0 {
			pr = make([]byte, stride)
			s.Read(arg-stride, pr)
		}
		mu.Lock()
		own = append(own, o)
		prev = append(prev, pr)
		mu.Unlock()
	}
	skipped := false
	a.start(t, 1, probe, func(r *prig) {
		st := r.rt.PoolStats()
		if st.RingDepth == 0 {
			skipped = true
			a.checkClosedP(t, r)
			return
		}
		depth.Store(int64(st.RingDepth))
		stop := servePacketLoop(r)
		sessions := 4
		if st.RingDepth < sessions {
			sessions = st.RingDepth // keep every flow at a distinct position
		}
		var secrets [][]byte
		for i := 0; i < sessions; i++ {
			secret, err := a.Session(r.k)
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if len(secret) > 0 {
				secrets = append(secrets, secret)
			}
			settle(t, r, fmt.Sprintf("after session %d", i))
		}
		stop()

		mu.Lock()
		defer mu.Unlock()
		if len(own) != sessions {
			t.Fatalf("probes = %d, want %d (one worker invocation per flow)", len(own), sessions)
		}
		for i := 1; i < len(own); i++ {
			for _, secret := range secrets[:min(i, len(secrets))] {
				if len(secret) > 0 && bytes.Contains(own[i], secret) {
					t.Fatalf("probe %d read an earlier principal's secret from its ring entry", i)
				}
			}
			for j, b := range own[i] {
				if b != 0 && !a.Schema.IsDemux(j) {
					t.Fatalf("probe %d: ring entry not scrubbed at +%d (%#x)", i, j, b)
				}
			}
			if prev[i] == nil {
				t.Fatalf("probe %d took no lower-neighbour window", i)
			}
			for j, b := range prev[i] {
				if b != 0 {
					t.Fatalf("probe %d: the previous principal's ring position still holds %#x at +%d — "+
						"its entry was not scrubbed before this principal's body ran", i, b, j)
				}
			}
		}
		ps := r.rt.PoolStats()
		if ps.Scrubs == 0 {
			t.Errorf("no principal-switch scrubs recorded across %d distinct principals: %+v", sessions, ps)
		}
		if ps.ScrubsSkipped != 0 {
			t.Errorf("scrub skips = %d with all-distinct principals, want 0 — "+
				"skips may only occur on consecutive same-principal entries", ps.ScrubsSkipped)
		}
		checkQuiescentP(t, r, "after the ring residue sessions")
		a.checkClosedP(t, r)
	})
	if skipped {
		t.Skip("pool runs the classic protocol: no ring to probe")
	}
}

// batchAbandonedEntriesP: leak accounting for abandoned ring entries on
// the datagram path. A held flow parks the worker inside its entry's body
// while a new principal's first datagram admits a flow whose entry queues
// behind it (visible as pool backlog). Both clients vanish; the wheel
// must expire both flows, the backlog must drain to zero, the admission
// ledger must balance, and teardown must reach both baselines.
func (a PacketApp) batchAbandonedEntriesP(t *testing.T) {
	skipped := false
	a.start(t, 1, nil, func(r *prig) {
		if r.rt.PoolStats().RingDepth == 0 {
			skipped = true
			a.checkClosedP(t, r)
			return
		}
		stop := servePacketLoop(r)
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		ghost, err := r.k.Net.DialPacket()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ghost.WriteTo([]byte{0xff, 0xfe, 0xfd}, a.Addr); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "a committed ring entry queued behind the held worker", func() bool {
			return r.rt.PoolStats().Backlog >= 1
		})
		// The queued client vanishes while its entry is still undispatched,
		// then the held client abandons mid-invocation.
		ghost.Close()
		if err := held.Abandon(); err != nil {
			t.Fatalf("abandon: %v", err)
		}
		settle(t, r, "after the abandonments")
		stop()

		if ps := r.rt.PoolStats(); ps.Backlog != 0 {
			t.Errorf("ring backlog = %d after the abandonments, want 0", ps.Backlog)
		}
		s := r.rt.Snapshot()
		if s.Admitted != s.Served+s.Failed {
			t.Errorf("admission ledger: admitted=%d != served=%d + failed=%d",
				s.Admitted, s.Served, s.Failed)
		}
		if s.Admitted != 2 {
			t.Errorf("admitted = %d, want 2 (the held and the queued flow)", s.Admitted)
		}
		checkQuiescentP(t, r, "after the abandoned entries")
		a.checkClosedP(t, r)
	})
	if skipped {
		t.Skip("pool runs the classic protocol: no ring to probe")
	}
}

// idleExpiry is the datagram-specific case the ISSUE names: a flow
// retired by the wheel (client simply stops talking — no close, no
// protocol end) must reclaim the slot pin through the full teardown
// path. Concretely: the lease is released and task/tag accounting
// returns to the serving baseline without any client action, and the
// next principal to lease the same slot observes a fully scrubbed
// argument block — expiry closed the flow through EndConn and the
// scrub, not around them.
func (a PacketApp) idleExpiry(t *testing.T) {
	argSize := a.Schema.Size()
	var mu sync.Mutex
	var probes [][]byte
	probe := func(s *sthread.Sthread, arg vm.Addr) {
		buf := make([]byte, argSize+a.Schema.ProbeWindow())
		s.Read(arg, buf)
		mu.Lock()
		probes = append(probes, buf)
		mu.Unlock()
	}
	a.start(t, 1, probe, func(r *prig) {
		stop := servePacketLoop(r)

		// Principal A leaves its secret in the slot, then goes silent.
		secret, err := a.Session(r.k)
		if err != nil {
			t.Fatalf("principal A: %v", err)
		}

		// The wheel — and nothing else — ends the flow.
		waitFor(t, "idle expiry of principal A's flow", func() bool {
			s := r.rt.Snapshot()
			return s.Expired >= 1 && s.Flows == 0 && s.Pool.Busy == 0
		})
		// Expiry reclaimed the slot pin: lease released, conn entry
		// gone, and the kernel accounting back to the serving baseline.
		checkQuiescentP(t, r, "after expiry")
		s := r.rt.Snapshot()
		if s.Served != 1 {
			t.Fatalf("served = %d, want 1 (the expired flow completed its ledger entry)", s.Served)
		}

		// Principal B leases the same (only) slot: no residue.
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("principal B: %v", err)
		}
		settle(t, r, "after principal B")
		stop()

		mu.Lock()
		defer mu.Unlock()
		if len(probes) != 2 {
			t.Fatalf("probes = %d, want 2", len(probes))
		}
		p := probes[1]
		if len(secret) > 0 && bytes.Contains(p, secret) {
			t.Fatal("principal B's worker read principal A's secret after expiry reuse")
		}
		for j, b := range p {
			if b == 0 || a.Schema.IsDemux(j) {
				continue
			}
			if j < argSize {
				t.Fatalf("argument block not scrubbed at +%d (%#x) after expiry reuse", j, b)
			}
			t.Fatalf("slot arena dirtied past the argument block at +%d (%#x)", j, b)
		}
		checkQuiescentP(t, r, "after the expiry sessions")
		a.checkClosedP(t, r)
	})
}
