package servetest_test

import (
	"fmt"
	"testing"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/serve"
	"wedge/internal/serve/servetest"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// The battery's self-test: a minimal echo application — greet, read one
// payload byte, stash it in the argument block (the planted residue),
// echo it back — run through the full conformance suite. This is the
// fixture that proves the harness itself is sound before the four real
// applications rely on it.
var (
	echoSchemaB = gateabi.NewSchema("echo")
	_           = gateabi.ConnID(echoSchemaB)
	_           = gateabi.FD(echoSchemaB)
	echoResidue = gateabi.U64(echoSchemaB, "residue") // the payload byte lands here
	_           = gateabi.Fixed(echoSchemaB, "pad", 40)
	echoSchema  = echoSchemaB.Seal()
)

// echoState is the per-connection app state. greeted must survive a
// cluster handoff — a resumed worker re-enters its invocation from the
// top, and greeting the client a second time would corrupt the
// transcript the director is relaying — so it rides in the handoff
// record via the Export/Import hooks, the same way the real servers
// carry their protocol position.
type echoState struct{ greeted bool }

// echoServer is the toy pooled application: a serve.App descriptor and
// nothing else, like the real servers.
type echoServer struct {
	*serve.Runtime[echoState]
}

func newEcho(root *sthread.Sthread, slots int, probe servetest.Probe) (servetest.Runtime, error) {
	srv := &echoServer{}
	var err error
	srv.Runtime, err = serve.New(root, serve.App[echoState]{
		Name:   "echo",
		Slots:  slots,
		Schema: echoSchema,
		Worker: "worker",
		Export: func(c *serve.Conn[echoState], _ []byte) []byte {
			if c.State.greeted {
				return []byte{1}
			}
			return nil
		},
		Import: func(c *serve.Conn[echoState], rec *serve.HandoffRecord) error {
			if len(rec.State) > 1 {
				return fmt.Errorf("echo: oversized handoff state (%d bytes)", len(rec.State))
			}
			c.State.greeted = len(rec.State) == 1 && rec.State[0] == 1
			return nil
		},
		Gates: []gatepool.GateDef{{
			Name: "worker",
			Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
				c := srv.Lookup(w, arg)
				if c == nil {
					return 0
				}
				if probe != nil {
					probe(w, arg)
				}
				if !c.State.greeted {
					if _, err := w.Task.WriteFD(c.FD, []byte{'>'}); err != nil {
						return 0
					}
					c.State.greeted = true
				}
				buf := make([]byte, 1)
				if _, err := w.Task.ReadFD(c.FD, buf); err != nil {
					return 0
				}
				echoResidue.Store(w, arg, uint64(buf[0])) // plant the residue
				if _, err := w.Task.WriteFD(c.FD, buf); err != nil {
					return 0
				}
				return 1
			},
		}},
	})
	if err != nil {
		return nil, err
	}
	return srv, nil
}

// holdEcho dials and reads the greeting — the worker is then provably in
// flight, parked on the payload read.
func holdEcho(k *kernel.Kernel) (*netsim.Conn, error) {
	conn, err := k.Net.Dial("echo:7")
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		conn.Close()
		return nil, err
	}
	if buf[0] != '>' {
		conn.Close()
		return nil, fmt.Errorf("greeting = %q, want '>'", buf[0])
	}
	return conn, nil
}

func finishEcho(conn *netsim.Conn) error {
	defer conn.Close()
	if _, err := conn.Write([]byte{'S'}); err != nil {
		return err
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		return err
	}
	if buf[0] != 'S' {
		return fmt.Errorf("echoed %q, want 'S'", buf[0])
	}
	return nil
}

// TestEchoChaos: the bounded-duration chaos smoke — random Drain /
// Undrain / Resize / SetQueue against the echo app under continuous
// client load, asserting no task/tag leaks and a consistent final
// Snapshot.
func TestEchoChaos(t *testing.T) {
	d := 2 * time.Second
	if testing.Short() {
		d = 200 * time.Millisecond
	}
	servetest.Chaos(t, echoApp(), d)
}

func TestEchoConformance(t *testing.T) {
	servetest.Run(t, echoApp())
}

// TestEchoCluster: the cluster battery's self-test — two echo runtimes
// behind a director, one killed while it holds a session mid-protocol.
func TestEchoCluster(t *testing.T) {
	servetest.Cluster(t, echoApp())
}

func echoApp() servetest.App {
	return servetest.App{
		Name: "echo",
		Addr: "echo:7",
		New:  newEcho,
		Session: func(k *kernel.Kernel) ([]byte, error) {
			conn, err := holdEcho(k)
			if err != nil {
				return nil, err
			}
			if err := finishEcho(conn); err != nil {
				return nil, err
			}
			return []byte{'S'}, nil
		},
		Hold: func(k *kernel.Kernel) (*servetest.Held, error) {
			conn, err := holdEcho(k)
			if err != nil {
				return nil, err
			}
			return &servetest.Held{
				Finish:  func() error { return finishEcho(conn) },
				Abandon: func() error { return conn.Close() },
			}, nil
		},
		Schema: echoSchema,
	}
}
