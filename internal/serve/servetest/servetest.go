// Package servetest is the conformance battery every pooled wedge
// application (every serve.App descriptor) must pass. PRs 1–3 grew three
// hand-rolled copies of the same per-app tests — residue scrub, drain,
// leak accounting — one per server; this package is the single reusable
// harness they converged into, applied to httpd, sshd, pop3, and the
// pooled privsep monitor alike.
//
// An application plugs in with an App adapter: how to provision the
// kernel, how to build its server (any type embedding *serve.Runtime[T]
// satisfies Runtime), a client driver for one complete session, a driver
// that parks a connection mid-protocol (completable or abandonable), and
// the descriptor's argument-block geometry. Run then executes the shared
// battery:
//
//   - Residue: a second principal leasing the slot — before and after a
//     Resize — observes a scrubbed argument block (every byte but the
//     runtime's demux words) and an untouched arena window past it,
//     never the first principal's bytes (§3.3's cross-principal
//     channel, closed).
//   - DrainUndrain: Drain completes the in-flight connection, rejects
//     new admissions with the typed *serve.OverloadError
//     (errors.Is serve.ErrOverloaded), returns only at quiescence, and
//     leaks neither tasks nor tags; Undrain re-admits.
//   - ResizeUnderLoad: growing and shrinking the pool while connections
//     are in flight loses no session.
//   - Leaks: clean sessions, immediate hangups, and mid-protocol
//     abandonments return the kernel task table and live tag set to the
//     serving baseline; Close returns them to the pre-runtime baseline.
//   - Snapshot: the unified observability surface is consistent with
//     what the battery actually did.
//
// Every wait in the battery is either a channel handoff or a protocol
// round-trip that implies the awaited state (a server response proves the
// worker invocation is in flight); nothing sleeps for synchronization.
// (The separate Chaos smoke sleeps only to pace load, never to await
// state.)
package servetest

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// Runtime is the serve-runtime surface the battery drives. Every pooled
// server satisfies it by embedding *serve.Runtime[T].
type Runtime interface {
	ServeConn(*netsim.Conn) error
	Serve(*netsim.Listener) error
	Drain()
	Undrain()
	Resize(int) error
	SetQueue(int)
	Snapshot() serve.Snapshot
	PoolStats() gatepool.Stats
	Close() error
}

// Probe runs at the top of every worker invocation, inside the worker
// compartment, with the invocation's argument-block base. Adapters wire
// it into their application's exploit-hook mechanism.
type Probe func(s *sthread.Sthread, arg vm.Addr)

// Held is one parked session (see App.Hold): the worker invocation is in
// flight and awaits the client. Finish completes the session cleanly;
// Abandon drops the connection mid-protocol, forcing the server to
// unwind a worker parked inside its invocation. Callers use exactly one.
type Held struct {
	Finish  func() error
	Abandon func() error
}

// App adapts one pooled application to the battery.
type App struct {
	// Name is the serve.App descriptor name, checked against Snapshot.
	Name string
	// Addr is the address the server listens on (e.g. "sshd:22").
	Addr string

	// Setup provisions the simulated kernel before boot (users, docroot,
	// mailboxes). Optional.
	Setup func(k *kernel.Kernel) error
	// New builds the server on the root sthread with the given slot
	// count, wiring probe (possibly nil) into the worker compartment's
	// hook.
	New func(root *sthread.Sthread, slots int, probe Probe) (Runtime, error)

	// Session drives one complete client session against a fresh
	// connection, returning the secret bytes it caused to cross the
	// slot's argument block (nil when the secret is not client-visible).
	Session func(k *kernel.Kernel) ([]byte, error)
	// Hold starts a session and returns with the worker invocation
	// provably in flight (the client has received a server response and
	// the protocol awaits the client). The returned handle either
	// completes the session cleanly or abandons it mid-protocol.
	Hold func(k *kernel.Kernel) (*Held, error)

	// Schema is the application's argument-block schema (the same one its
	// serve.App descriptor carries): the residue battery probes the whole
	// block it sizes (skipping only the two demux words the runtime
	// writes per connection) plus the schema-derived arena window just
	// past it (Schema.ProbeWindow — the largest variable-length capacity
	// a codec accepts), so residue landing anywhere reachable by a worker
	// fails the suite — not only residue in a hand-tuned window.
	Schema *gateabi.Schema

	// StaticTags is the application's declared long-lived tag footprint:
	// tags New provisions that legitimately outlive the runtime (host-key
	// and password-database blobs). Close must return the live tag count
	// to the pre-runtime baseline plus exactly this many — any more is a
	// leak, any fewer means Close tore down application state.
	StaticTags int
}

// rig is one booted system serving the application under test.
type rig struct {
	k   *kernel.Kernel
	app *sthread.App
	rt  Runtime
	l   *netsim.Listener

	// Task-table and live-tag baselines: before the runtime was built
	// (Close must restore these) and with the runtime serving (every
	// quiescent moment must match these).
	baseTasks, baseTags int
	liveTasks, liveTags int
}

// start boots a kernel, builds the application's runtime inside app.Main
// (the root sthread then parks), runs drive on the test goroutine, and
// verifies the root sthread exited cleanly.
func (a App) start(t *testing.T, slots int, probe Probe, drive func(r *rig)) {
	t.Helper()
	k := kernel.New()
	if a.Setup != nil {
		if err := a.Setup(k); err != nil {
			t.Fatal(err)
		}
	}
	sapp := sthread.Boot(k)
	ready := make(chan *rig, 1)
	done := make(chan error, 1)
	quit := make(chan struct{})
	go func() {
		done <- sapp.Main(func(root *sthread.Sthread) {
			r := &rig{k: k, app: sapp,
				baseTasks: k.TaskCount(), baseTags: len(sapp.Tags.Tags())}
			rt, err := a.New(root, slots, probe)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			r.rt = rt
			r.liveTasks = k.TaskCount()
			r.liveTags = len(sapp.Tags.Tags())
			l, err := root.Task.Listen(a.Addr)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			r.l = l
			ready <- r
			<-quit // park the root sthread while the test drives
		})
	}()
	r := <-ready
	if r == nil {
		t.FailNow()
	}
	drive(r)
	close(quit)
	if err := <-done; err != nil {
		t.Fatalf("main: %v", err)
	}
}

// waitFor yields until cond holds or the deadline passes. It never
// sleeps: the conditions it waits on are flipped by goroutines that are
// already runnable (a Drain entering its wait, a queued Acquire), so
// yielding the processor is both sufficient and prompt.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// serveLoop runs the runtime-owned accept loop in the background; the
// returned stop closes the listener and blocks until every dispatched
// connection has completed (the runtime's own quiescence barrier).
func serveLoop(r *rig) (stop func()) {
	served := make(chan struct{})
	go func() {
		r.rt.Serve(r.l)
		close(served)
	}()
	return func() {
		r.l.Close()
		<-served
	}
}

// checkQuiescent verifies the serving-state baselines: no in-flight
// connections, no busy slots, an empty conn table (a non-zero entry
// count here is a demux-registration leak), and the task table and live
// tag set exactly as they were when the runtime finished construction.
func checkQuiescent(t *testing.T, r *rig, when string) {
	t.Helper()
	if s := r.rt.Snapshot(); s.Inflight != 0 || s.Pool.Busy != 0 {
		t.Errorf("%s: inflight=%d busy=%d, want 0/0", when, s.Inflight, s.Pool.Busy)
	}
	if s := r.rt.Snapshot(); s.Conns.Entries != 0 {
		t.Errorf("%s: conn-table entries = %d, want 0 (leaked demux registrations)", when, s.Conns.Entries)
	}
	if got := r.k.TaskCount(); got != r.liveTasks {
		t.Errorf("%s: task count %d, want the serving baseline %d", when, got, r.liveTasks)
	}
	if got := len(r.app.Tags.Tags()); got != r.liveTags {
		t.Errorf("%s: live tags %d, want the serving baseline %d", when, got, r.liveTags)
	}
}

// checkClosed verifies Close tore the runtime down to the pre-runtime
// baselines: every gate sthread reaped, every slot tag retired — only
// the application's declared static tag footprint may remain.
func (a App) checkClosed(t *testing.T, r *rig) {
	t.Helper()
	if err := r.rt.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := r.k.TaskCount(); got != r.baseTasks {
		t.Errorf("task count after close: %d, want the pre-runtime baseline %d", got, r.baseTasks)
	}
	if got, want := len(r.app.Tags.Tags()), r.baseTags+a.StaticTags; got != want {
		t.Errorf("live tags after close: %d, want %d (pre-runtime baseline %d + %d static)",
			got, want, r.baseTags, a.StaticTags)
	}
}

// Run executes the conformance battery against one application.
func Run(t *testing.T, a App) {
	t.Run("Residue", a.residue)
	t.Run("BatchRingResidue", a.batchRingResidue)
	t.Run("BatchAbandonedEntries", a.batchAbandonedEntries)
	t.Run("DrainUndrain", a.drainUndrain)
	t.Run("ResizeUnderLoad", a.resizeUnderLoad)
	t.Run("Leaks", a.leaks)
	t.Run("Snapshot", a.snapshot)
}

// Chaos is the bounded-duration chaos smoke: client goroutines drive
// sessions continuously while a driver fires random Drain / Undrain /
// Resize / SetQueue transitions at the runtime (fixed-seed sequence, so
// a failure replays). Sessions may fail — a drain or a no-waiting queue
// rejects admissions by design — but when the dust settles the runtime
// must be quiescent, the admission ledger must balance (admitted =
// served + failed, rejections separate), no task or tag may have leaked,
// and Close must tear down to the pre-runtime baseline. Not part of Run:
// it is a smoke, invoked by the echo self-test (and available to any
// app).
func Chaos(t *testing.T, a App, duration time.Duration) {
	const clients = 6
	a.start(t, 2, nil, func(r *rig) {
		stop := serveLoop(r)

		// Load: each client loops complete sessions until told to stop,
		// tolerating failures (rejections and drains are part of the
		// chaos) but counting successes so the run provably served.
		var served atomic.Uint64
		stopLoad := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stopLoad:
						return
					default:
					}
					if _, err := a.Session(r.k); err == nil {
						served.Add(1)
					} else {
						// Rejected (drain, shrunken pool, no-waiting
						// queue): back off instead of hot-spinning dials
						// — millions of instant rejections would only
						// measure goroutine churn.
						time.Sleep(time.Millisecond)
					}
				}
			}()
		}

		// Chaos driver: deterministic op sequence, bounded by duration.
		rng := rand.New(rand.NewSource(7))
		deadline := time.Now().Add(duration)
		ops := 0
		for time.Now().Before(deadline) {
			ops++
			time.Sleep(time.Millisecond) // pace transitions: chaos, not a spin loop
			switch rng.Intn(6) {
			case 0:
				r.rt.Drain() // returns at quiescence; admissions now reject
			case 1:
				r.rt.Undrain()
			case 2, 3:
				r.rt.Resize(1 + rng.Intn(4)) // ErrDraining during a drain is fine
			case 4:
				r.rt.SetQueue(rng.Intn(3) - 1) // -1 (no waiting), 0 (unbounded), 1
			case 5:
				_ = r.rt.Snapshot() // observability under churn must not wedge
			}
		}

		// Settle: re-open, restore a known size and an unbounded queue,
		// let the load drain out.
		r.rt.Undrain()
		r.rt.SetQueue(0)
		close(stopLoad)
		wg.Wait()
		stop()
		if err := r.rt.Resize(2); err != nil {
			t.Fatalf("final resize: %v", err)
		}

		if served.Load() == 0 {
			t.Fatal("chaos run served no sessions at all")
		}
		s := r.rt.Snapshot()
		if s.State != serve.StateServing {
			t.Fatalf("final state = %v, want serving", s.State)
		}
		if s.Admitted != s.Served+s.Failed {
			t.Fatalf("admission ledger: admitted=%d != served=%d + failed=%d",
				s.Admitted, s.Served, s.Failed)
		}
		if s.Served < served.Load() {
			t.Fatalf("snapshot served=%d < client-observed successes %d", s.Served, served.Load())
		}
		if s.Pool.Slots != 2 {
			t.Fatalf("final slots = %d, want 2", s.Pool.Slots)
		}
		t.Logf("chaos: %d ops, %d sessions served, %d rejected, %d drains",
			ops, s.Served, s.Rejected, s.Drains)
		checkQuiescent(t, r, "after the chaos run")
		a.checkClosed(t, r)
	})
}

// residue: principal A's session leaves its secret in the slot's argument
// block; principals B, C, D (each a fresh network address, C and D after
// a Resize) lease the slot and must observe a fully scrubbed block — the
// §3.3 cross-principal channel, closed by the pool, verified via a probe
// injected into the worker compartment itself. The probe reads the whole
// argument block (every byte a worker can reach is a potential channel,
// not just an app-declared window) plus the schema-derived window of the
// tag arena past the block (Schema.ProbeWindow), where the scrub does not
// reach and therefore nothing may ever be written.
func (a App) residue(t *testing.T) {
	argSize := a.Schema.Size()
	var mu sync.Mutex
	var probes [][]byte
	probe := func(s *sthread.Sthread, arg vm.Addr) {
		// Runs at the top of each worker invocation, before this
		// connection writes anything beyond the conn id and fd: whatever
		// sits in the window is residue (or the scrub's zeroes).
		buf := make([]byte, argSize+a.Schema.ProbeWindow())
		s.Read(arg, buf)
		mu.Lock()
		probes = append(probes, buf)
		mu.Unlock()
	}
	a.start(t, 1, probe, func(r *rig) {
		stop := serveLoop(r)
		var secrets [][]byte
		session := func(what string) {
			secret, err := a.Session(r.k)
			if err != nil {
				t.Fatalf("%s: %v", what, err)
			}
			if len(secret) > 0 {
				secrets = append(secrets, secret)
			}
		}
		session("principal A") // plants the secret
		session("principal B") // reuses the only slot
		if err := r.rt.Resize(2); err != nil {
			t.Fatalf("resize: %v", err)
		}
		session("principal C") // old slot or fresh: both must be clean
		session("principal D")
		stop()
		// Back to the original size: the quiescence baselines below are
		// per-slot, so resize churn that leaked a task or tag shows up.
		if err := r.rt.Resize(1); err != nil {
			t.Fatalf("resize back: %v", err)
		}

		mu.Lock()
		defer mu.Unlock()
		if len(probes) != 4 {
			t.Fatalf("probes = %d, want 4", len(probes))
		}
		// The demux words are the only bytes legitimately non-zero at
		// invocation start: the runtime writes this connection's id and
		// descriptor number there. Which bytes those are is the schema's
		// knowledge, not the adapter's.
		for i, p := range probes[1:] {
			for _, secret := range secrets[:min(i+1, len(secrets))] {
				if len(secret) > 0 && bytes.Contains(p, secret) {
					t.Fatalf("probe %d read an earlier principal's secret from the reused slot", i+1)
				}
			}
			for j, b := range p {
				if b == 0 || a.Schema.IsDemux(j) {
					continue
				}
				if j < argSize {
					t.Fatalf("probe %d: argument block not scrubbed at +%d (%#x)", i+1, j, b)
				}
				t.Fatalf("probe %d: slot arena dirtied past the argument block at +%d (%#x) — "+
					"the scrub never reaches there, so this is a permanent cross-principal channel",
					i+1, j, b)
			}
		}
		checkQuiescent(t, r, "after the residue sessions")
		a.checkClosed(t, r)
	})
}

// drainUndrain: a Drain issued while a connection is in flight completes
// that connection, rejects new admissions with the typed overload error,
// returns only at quiescence, leaks nothing, and Undrain re-admits.
func (a App) drainUndrain(t *testing.T) {
	a.start(t, 2, nil, func(r *rig) {
		// One connection held in flight: Hold returns only once the
		// client has a server response in hand, which proves the worker
		// invocation is running and the slot is leased.
		heldErr := make(chan error, 1)
		go func() {
			c, err := r.l.Accept()
			if err != nil {
				heldErr <- err
				return
			}
			heldErr <- r.rt.ServeConn(c)
		}()
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		if s := r.rt.Snapshot(); s.Inflight != 1 || s.Pool.Busy != 1 {
			t.Fatalf("held connection: inflight=%d busy=%d, want 1/1", s.Inflight, s.Pool.Busy)
		}

		// Drain in the background: it must block on the held connection.
		drained := make(chan struct{})
		go func() {
			r.rt.Drain()
			close(drained)
		}()
		waitFor(t, "draining state", func() bool { return r.rt.Snapshot().State == serve.StateDraining })
		select {
		case <-drained:
			t.Fatal("Drain returned with a connection still in flight")
		default:
		}

		// New admissions are rejected with the typed overload error.
		lateConn, err := r.k.Net.Dial(a.Addr)
		if err != nil {
			t.Fatal(err)
		}
		defer lateConn.Close()
		lateServer, err := r.l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		err = r.rt.ServeConn(lateServer)
		if err == nil {
			t.Fatal("admission during drain succeeded")
		}
		if !errors.Is(err, serve.ErrOverloaded) {
			t.Fatalf("drain rejection = %v, want errors.Is serve.ErrOverloaded", err)
		}
		var oe *serve.OverloadError
		if !errors.As(err, &oe) || oe.State != serve.StateDraining || oe.App != a.Name {
			t.Fatalf("drain rejection = %#v, want *OverloadError{App: %q, State: draining}", err, a.Name)
		}

		// The held connection completes normally and Drain returns.
		if err := held.Finish(); err != nil {
			t.Fatalf("in-flight session during drain: %v", err)
		}
		if err := <-heldErr; err != nil {
			t.Fatalf("in-flight ServeConn during drain: %v", err)
		}
		<-drained
		s := r.rt.Snapshot()
		if s.State != serve.StateDraining {
			t.Fatalf("post-drain state = %v, want draining", s.State)
		}
		if s.Served != 1 || s.Rejected != 1 || s.Drains != 1 {
			t.Fatalf("served=%d rejected=%d drains=%d, want 1/1/1", s.Served, s.Rejected, s.Drains)
		}
		checkQuiescent(t, r, "after drain")

		// Undrain re-admits: a complete session succeeds.
		r.rt.Undrain()
		recovered := make(chan error, 1)
		go func() {
			c, err := r.l.Accept()
			if err != nil {
				recovered <- err
				return
			}
			recovered <- r.rt.ServeConn(c)
		}()
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("session after undrain: %v", err)
		}
		if err := <-recovered; err != nil {
			t.Fatalf("serve after undrain: %v", err)
		}
		a.checkClosed(t, r)
	})
}

// resizeUnderLoad: the pool grows and shrinks while connections are in
// flight — including shrinking past the slot a held connection occupies —
// and no session is lost.
func (a App) resizeUnderLoad(t *testing.T) {
	const sessions = 8
	a.start(t, 2, nil, func(r *rig) {
		stop := serveLoop(r)

		// Hold one slot busy across both resizes.
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		if err := r.rt.Resize(4); err != nil {
			t.Fatalf("grow under load: %v", err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := a.Session(r.k)
				errs <- err
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Errorf("session during resize: %v", err)
			}
		}
		// Shrink below the held slot while its connection is in flight:
		// the slot retires only when the lease is released.
		if err := r.rt.Resize(1); err != nil {
			t.Fatalf("shrink under load: %v", err)
		}
		if err := held.Finish(); err != nil {
			t.Fatalf("held session: %v", err)
		}
		stop()

		// Drain/Undrain as the quiescence barrier (Drain returns only
		// when every lease is released), then verify the ledger.
		r.rt.Drain()
		r.rt.Undrain()
		s := r.rt.Snapshot()
		if s.Served != sessions+1 {
			t.Errorf("served = %d, want %d", s.Served, sessions+1)
		}
		if s.Pool.Slots != 1 {
			t.Errorf("slots after shrink = %d, want 1", s.Pool.Slots)
		}
		if s.Pool.Grown < 2 || s.Pool.Shrunk < 3 {
			t.Errorf("grown=%d shrunk=%d, want >=2/>=3", s.Pool.Grown, s.Pool.Shrunk)
		}
		// Back to the original size before the per-slot baselines.
		if err := r.rt.Resize(2); err != nil {
			t.Fatalf("resize back: %v", err)
		}
		checkQuiescent(t, r, "after resize under load")
		a.checkClosed(t, r)
	})
}

// leaks: clean sessions and abrupt disconnects alike return the kernel
// task table and the live tag set to the serving baseline — nothing
// accumulates per connection on the pooled path — and Close returns both
// to the pre-runtime baseline.
func (a App) leaks(t *testing.T) {
	a.start(t, 2, nil, func(r *rig) {
		stop := serveLoop(r)
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("first session: %v", err)
		}
		// Abrupt disconnect: dial and hang up immediately. The worker
		// invocation fails its first read and the connection unwinds.
		abrupt, err := r.k.Net.Dial(a.Addr)
		if err != nil {
			t.Fatal(err)
		}
		abrupt.Close()
		// Mid-protocol abandonment: the worker is provably parked inside
		// its invocation (Hold's contract) when the client vanishes — the
		// unwind path a production server hits on every flaky client.
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		if err := held.Abandon(); err != nil {
			t.Fatalf("abandon: %v", err)
		}
		if _, err := a.Session(r.k); err != nil {
			t.Fatalf("session after disconnect: %v", err)
		}
		stop()
		checkQuiescent(t, r, "after the leak sessions")
		a.checkClosed(t, r)
	})
}

// batchRingResidue is the batched-dataplane extension of residue: with
// one slot, strictly sequential sessions occupy consecutive ring
// positions, so principal i's worker invocation runs one entry stride
// above the position principal i-1's entry occupied. The probe therefore
// reads two windows: its own argument block (scrubbed but for the demux
// words, as in residue) and the previous ring position in full — which
// must be all zeroes, because the dispatch-side principal-switch scrub
// zeroes every finished foreign entry before the body runs. The battery's
// principals are all distinct (every session dials from a fresh client
// address), so the run must record principal-switch scrubs and zero
// same-principal skips: a skip here would mean warm-entry state crossed
// a principal switch.
func (a App) batchRingResidue(t *testing.T) {
	argSize := a.Schema.Size()
	stride := vm.Addr((argSize + 7) &^ 7) // the ring's entry stride (gatepool entry size)
	var depth atomic.Int64
	var mu sync.Mutex
	var own, prev [][]byte
	probe := func(s *sthread.Sthread, arg vm.Addr) {
		o := make([]byte, argSize)
		s.Read(arg, o)
		mu.Lock()
		idx := len(own)
		mu.Unlock()
		var pr []byte
		// Ring position idx%depth; position 0's lower neighbour is the
		// header array, not an entry, so only later positions probe below.
		if d := depth.Load(); d > 0 && int64(idx)%d != 0 {
			pr = make([]byte, stride)
			s.Read(arg-stride, pr)
		}
		mu.Lock()
		own = append(own, o)
		prev = append(prev, pr)
		mu.Unlock()
	}
	skipped := false
	a.start(t, 1, probe, func(r *rig) {
		st := r.rt.PoolStats()
		if st.RingDepth == 0 {
			skipped = true
			a.checkClosed(t, r)
			return
		}
		depth.Store(int64(st.RingDepth))
		stop := serveLoop(r)
		sessions := 4
		if st.RingDepth < sessions {
			sessions = st.RingDepth // keep every session at a distinct position
		}
		var secrets [][]byte
		for i := 0; i < sessions; i++ {
			secret, err := a.Session(r.k)
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if len(secret) > 0 {
				secrets = append(secrets, secret)
			}
		}
		stop()

		mu.Lock()
		defer mu.Unlock()
		if len(own) != sessions {
			t.Fatalf("probes = %d, want %d", len(own), sessions)
		}
		for i := 1; i < len(own); i++ {
			for _, secret := range secrets[:min(i, len(secrets))] {
				if len(secret) > 0 && bytes.Contains(own[i], secret) {
					t.Fatalf("probe %d read an earlier principal's secret from its ring entry", i)
				}
			}
			for j, b := range own[i] {
				if b != 0 && !a.Schema.IsDemux(j) {
					t.Fatalf("probe %d: ring entry not scrubbed at +%d (%#x)", i, j, b)
				}
			}
			if prev[i] == nil {
				t.Fatalf("probe %d took no lower-neighbour window", i)
			}
			for j, b := range prev[i] {
				if b != 0 {
					t.Fatalf("probe %d: the previous principal's ring position still holds %#x at +%d — "+
						"its entry was not scrubbed before this principal's body ran", i, b, j)
				}
			}
		}
		ps := r.rt.PoolStats()
		if ps.Scrubs == 0 {
			t.Errorf("no principal-switch scrubs recorded across %d distinct principals: %+v", sessions, ps)
		}
		if ps.ScrubsSkipped != 0 {
			t.Errorf("scrub skips = %d with all-distinct principals, want 0 — "+
				"skips may only occur on consecutive same-principal entries", ps.ScrubsSkipped)
		}
		checkQuiescent(t, r, "after the ring residue sessions")
		a.checkClosed(t, r)
	})
	if skipped {
		t.Skip("pool runs the classic protocol: no ring to probe")
	}
}

// batchAbandonedEntries: leak accounting for ring entries abandoned at
// every stage. With one slot, a held session parks the worker inside its
// entry's body while a second admission commits the next entry behind it
// (visible as pool backlog). Both clients then vanish — the queued one
// before its entry ever dispatched, the held one mid-invocation. The
// runtime must retire both entries, balance its admission ledger, drain
// the backlog to zero, and return task and tag accounting to the serving
// baseline; Close must reach the pre-runtime baseline.
func (a App) batchAbandonedEntries(t *testing.T) {
	skipped := false
	a.start(t, 1, nil, func(r *rig) {
		if r.rt.PoolStats().RingDepth == 0 {
			skipped = true
			a.checkClosed(t, r)
			return
		}
		stop := serveLoop(r)
		held, err := a.Hold(r.k)
		if err != nil {
			t.Fatalf("hold: %v", err)
		}
		queued, err := r.k.Net.Dial(a.Addr)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "a committed ring entry queued behind the held worker", func() bool {
			return r.rt.PoolStats().Backlog >= 1
		})
		// The queued client vanishes while its entry is still undispatched,
		// then the held client abandons mid-invocation.
		queued.Close()
		if err := held.Abandon(); err != nil {
			t.Fatalf("abandon: %v", err)
		}
		waitFor(t, "both abandoned entries to retire", func() bool {
			s := r.rt.Snapshot()
			return s.Inflight == 0 && s.Pool.Busy == 0
		})
		stop()

		if ps := r.rt.PoolStats(); ps.Backlog != 0 {
			t.Errorf("ring backlog = %d after the abandonments, want 0", ps.Backlog)
		}
		s := r.rt.Snapshot()
		if s.Admitted != s.Served+s.Failed {
			t.Errorf("admission ledger: admitted=%d != served=%d + failed=%d",
				s.Admitted, s.Served, s.Failed)
		}
		if s.Admitted != 2 {
			t.Errorf("admitted = %d, want 2 (the held and the queued session)", s.Admitted)
		}
		checkQuiescent(t, r, "after the abandoned entries")
		a.checkClosed(t, r)
	})
	if skipped {
		t.Skip("pool runs the classic protocol: no ring to probe")
	}
}

// snapshot: the unified observability surface agrees with what the
// battery did — admission counters, pool counters, pin hints, lifecycle
// state, through Close.
func (a App) snapshot(t *testing.T) {
	const sessions = 5
	const slots = 3
	a.start(t, slots, nil, func(r *rig) {
		stop := serveLoop(r)
		for i := 0; i < sessions; i++ {
			if _, err := a.Session(r.k); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
		stop()

		s := r.rt.Snapshot()
		if s.App != a.Name {
			t.Errorf("snapshot app = %q, want %q", s.App, a.Name)
		}
		if s.State != serve.StateServing {
			t.Errorf("state = %v, want serving", s.State)
		}
		if s.Inflight != 0 || s.Waiting != 0 {
			t.Errorf("inflight=%d waiting=%d, want 0/0", s.Inflight, s.Waiting)
		}
		if s.Admitted != sessions || s.Served != sessions {
			t.Errorf("admitted=%d served=%d, want %d/%d", s.Admitted, s.Served, sessions, sessions)
		}
		if s.Failed != 0 || s.Rejected != 0 || s.Drains != 0 {
			t.Errorf("failed=%d rejected=%d drains=%d, want 0/0/0", s.Failed, s.Rejected, s.Drains)
		}
		if s.Pool.Slots != slots || s.Pool.Busy != 0 {
			t.Errorf("pool slots=%d busy=%d, want %d/0", s.Pool.Slots, s.Pool.Busy, slots)
		}
		if s.Pool.Acquires != sessions {
			t.Errorf("pool acquires = %d, want %d (one lease per session)", s.Pool.Acquires, sessions)
		}
		if len(s.Pins) != slots {
			t.Errorf("pins = %d, want %d", len(s.Pins), slots)
		}
		procs := runtime.GOMAXPROCS(0)
		for _, pin := range s.Pins {
			if pin.CPU != pin.Slot%procs {
				t.Errorf("slot %d pinned to CPU %d, want %d", pin.Slot, pin.CPU, pin.Slot%procs)
			}
		}

		a.checkClosed(t, r)
		if s := r.rt.Snapshot(); s.State != serve.StateClosed || !s.Pool.Closed {
			t.Errorf("post-close snapshot: state=%v pool.closed=%v, want closed/true", s.State, s.Pool.Closed)
		}
	})
}
