package serve

import (
	"errors"
	"testing"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// The packet tests serve a datagram echo: the worker reads datagrams
// from its flow descriptor and writes each one back prefixed with '+',
// until expiry closes the flow (read fails → return 1, a clean end).
var (
	pktSchemaB = gateabi.NewSchema("pktecho")
	_          = gateabi.ConnID(pktSchemaB)
	_          = gateabi.FD(pktSchemaB)
	pktSchema  = pktSchemaB.Seal()
)

type pktRig struct {
	k  *kernel.Kernel
	rt *PacketRuntime[int]
	pc *netsim.PacketConn
}

func startPacketEcho(t *testing.T, app PacketApp[int], drive func(r *pktRig)) {
	t.Helper()
	k := kernel.New()
	a := sthread.Boot(k)
	done := make(chan error, 1)
	ready := make(chan *pktRig, 1)
	quit := make(chan struct{})
	go func() {
		done <- a.Main(func(root *sthread.Sthread) {
			var rt *PacketRuntime[int]
			app.Name = "pktecho"
			app.Schema = pktSchema
			app.OnPacket = "worker"
			app.Gates = []gatepool.GateDef{{
				Name: "worker",
				Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := rt.Lookup(w, arg)
					if c == nil {
						return 0
					}
					c.State++ // flows are per-principal state
					buf := make([]byte, 256)
					for {
						n, err := w.Task.ReadFD(c.FD, buf)
						if err != nil {
							return 1 // flow expired: clean end
						}
						out := append([]byte{'+'}, buf[:n]...)
						if _, err := w.Task.WriteFD(c.FD, out); err != nil {
							return 0
						}
					}
				},
			}}
			var err error
			rt, err = NewPacket(root, app)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			pc, err := root.Task.ListenPacket("pkt:53")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			go rt.ServePackets(pc)
			ready <- &pktRig{k: k, rt: rt, pc: pc}
			<-quit
		})
	}()
	rig := <-ready
	if rig == nil {
		t.FailNow()
	}
	drive(rig)
	rig.pc.Close()
	if err := rig.rt.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	close(quit)
	if err := <-done; err != nil {
		t.Fatalf("main: %v", err)
	}
}

// echoOnce sends one datagram from cli and checks the echoed reply.
func echoOnce(t *testing.T, cli *netsim.PacketConn, msg string) {
	t.Helper()
	if _, err := cli.WriteTo([]byte(msg), "pkt:53"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, from, err := cli.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != "pkt:53" || string(buf[:n]) != "+"+msg {
		t.Fatalf("reply %q from %q, want %q from pkt:53", buf[:n], from, "+"+msg)
	}
}

// waitSnap polls the runtime snapshot until cond holds.
func waitSnap(t *testing.T, rt *PacketRuntime[int], what string, cond func(Snapshot) bool) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := rt.Snapshot()
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s; snapshot %+v", what, s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPacketFlowLifecycle: packets from one source share a flow (one
// admission, one worker invocation, per-flow state intact across
// packets); a silent flow expires, runs full teardown, and a later
// packet from the same source starts a fresh flow.
func TestPacketFlowLifecycle(t *testing.T) {
	startPacketEcho(t, PacketApp[int]{Slots: 2, IdleTimeout: 120 * time.Millisecond},
		func(rig *pktRig) {
			cli, err := rig.k.Net.DialPacket()
			if err != nil {
				t.Fatal(err)
			}
			echoOnce(t, cli, "one")
			echoOnce(t, cli, "two")
			echoOnce(t, cli, "three")

			s := rig.rt.Snapshot()
			if s.Admitted != 1 {
				t.Fatalf("Admitted = %d, want 1 (three packets, one flow)", s.Admitted)
			}
			if s.Flows != 1 || s.Packets != 3 {
				t.Fatalf("Flows = %d, Packets = %d, want 1, 3", s.Flows, s.Packets)
			}

			// Silence: the wheel expires the flow and the worker unwinds
			// as served (clean end).
			s = waitSnap(t, rig.rt, "flow expiry", func(s Snapshot) bool {
				return s.Expired >= 1 && s.Flows == 0
			})
			if s.Served != 1 {
				t.Fatalf("Served = %d, want 1 after expiry unwind", s.Served)
			}
			if s.Pool.Busy != 0 {
				t.Fatalf("Pool.Busy = %d after expiry, want 0 (lease released)", s.Pool.Busy)
			}

			// Same source again: fresh flow, fresh admission.
			echoOnce(t, cli, "back")
			s = rig.rt.Snapshot()
			if s.Admitted != 2 || s.Flows != 1 {
				t.Fatalf("Admitted = %d, Flows = %d after re-contact, want 2, 1", s.Admitted, s.Flows)
			}
		})
}

// TestPacketPrincipals: two sources get two concurrent flows.
func TestPacketPrincipals(t *testing.T) {
	startPacketEcho(t, PacketApp[int]{Slots: 2, IdleTimeout: 200 * time.Millisecond},
		func(rig *pktRig) {
			a, _ := rig.k.Net.DialPacket()
			b, _ := rig.k.Net.DialPacket()
			echoOnce(t, a, "from-a")
			echoOnce(t, b, "from-b")
			s := rig.rt.Snapshot()
			if s.Flows != 2 || s.Admitted != 2 {
				t.Fatalf("Flows = %d, Admitted = %d, want 2, 2", s.Flows, s.Admitted)
			}
			if s.Pool.Busy != 2 {
				t.Fatalf("Pool.Busy = %d, want 2 (one lease per live flow)", s.Pool.Busy)
			}
		})
}

// TestPacketRefuse: a draining runtime answers first-contact packets
// with the app's Refuse datagram instead of silence.
func TestPacketRefuse(t *testing.T) {
	app := PacketApp[int]{
		Slots:       2,
		IdleTimeout: 100 * time.Millisecond,
		Refuse: func(payload []byte, err error) []byte {
			if !errors.Is(err, ErrOverloaded) {
				return nil
			}
			return []byte("REFUSED")
		},
	}
	startPacketEcho(t, app, func(rig *pktRig) {
		go rig.rt.Drain()
		waitSnap(t, rig.rt, "draining state", func(s Snapshot) bool {
			return s.State == StateDraining
		})
		cli, _ := rig.k.Net.DialPacket()
		if _, err := cli.WriteTo([]byte("hello?"), "pkt:53"); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n, _, err := cli.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "REFUSED" {
			t.Fatalf("reply %q, want REFUSED", buf[:n])
		}
		s := rig.rt.Snapshot()
		if s.Rejected != 1 {
			t.Fatalf("Rejected = %d, want 1", s.Rejected)
		}
		rig.rt.Undrain()
		echoOnce(t, cli, "again")
	})
}

// TestPacketDrainWaitsForExpiry: Drain does not complete while a live
// flow exists, and completes once the wheel expires it — the datagram
// analogue of "drain completes in-flight connections".
func TestPacketDrainWaitsForExpiry(t *testing.T) {
	startPacketEcho(t, PacketApp[int]{Slots: 2, IdleTimeout: 150 * time.Millisecond},
		func(rig *pktRig) {
			cli, _ := rig.k.Net.DialPacket()
			echoOnce(t, cli, "hold")
			drained := make(chan struct{})
			go func() {
				rig.rt.Drain()
				close(drained)
			}()
			select {
			case <-drained:
				t.Fatal("Drain completed with a live flow")
			case <-time.After(20 * time.Millisecond):
			}
			select {
			case <-drained:
			case <-time.After(10 * time.Second):
				t.Fatal("Drain never completed after flow expiry")
			}
			s := rig.rt.Snapshot()
			if s.Expired != 1 || s.Inflight != 0 {
				t.Fatalf("Expired = %d, Inflight = %d after drain, want 1, 0", s.Expired, s.Inflight)
			}
			rig.rt.Undrain()
		})
}
