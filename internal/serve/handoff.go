// Live session handoff: the serve-runtime half of the cluster's rolling
// drain. A draining runtime exports an in-flight principal's session as
// a HandoffRecord — the slot's argument-block image plus the app's own
// serialized state — and a peer runtime re-admits it with ResumeConnAs /
// ResumeFlow, so the client never observes the move.
//
// The trust argument, stated once and enforced everywhere below:
//
//   - A record crosses runtimes, so the importing side treats every byte
//     of it as hostile input. The schema hash must match exactly (a
//     typed *SchemaMismatchError refusal otherwise), the block image
//     passes gateabi.CheckImage — the same bounds discipline applied to
//     a compromised worker's writes — and the app's Import hook must
//     bounds-check its own payload before trusting a field of it.
//   - Secrets never ride a record. The exporting side serializes only
//     what the argument block and the app's per-connection state already
//     expose to the worker compartment; private keys, password
//     databases, and other store-side material stay home — the importing
//     runtime reaches them through its own gates, exactly as if the
//     session had started there.
//   - The block image is captured while the exporting worker is parked
//     (the director guarantees protocol quiescence before asking), and
//     before the interrupt that unwinds it — post-interrupt scribbles
//     never leak into the record. The demux words are zeroed on export
//     and must be zero on import: conn ids and descriptor numbers are
//     runtime-local, and a forged one must never reach a slot.
//
// The handoff/completion race is settled by a per-connection rendezvous
// (Conn.hmu): either HandoffPrincipal marks the session first — then the
// unwinding serve path is guaranteed to observe the mark and retire the
// admission as handed — or the session reaches its completion point
// first and the mark is refused with ErrNoSession, which the caller
// reads as "already finished, nothing to move".

package serve

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wedge/internal/netsim"
)

// Typed handoff errors.
var (
	// ErrHandedOff is returned by the serve path for a session that was
	// exported mid-flight: the admission is retired under the Handed
	// counter and the client leg lives on at the record's new home.
	ErrHandedOff = errors.New("serve: session handed off")

	// ErrNoSession means the named principal has no in-flight session to
	// hand off (it never existed, already completed, or is already being
	// handed off).
	ErrNoSession = errors.New("serve: no in-flight session for principal")

	// ErrSchemaMismatch is the errors.Is target for every refused
	// transfer (wrong app, wrong schema hash).
	ErrSchemaMismatch = errors.New("serve: handoff schema mismatch")
)

// SchemaMismatchError is the typed refusal for a record this runtime
// must not import: the record names a different app, or its schema hash
// differs from the importing schema's — meaning the two builds would
// disagree about the block bytes.
type SchemaMismatchError struct {
	App  string // the importing runtime's app
	From string // the record's app name
	Want uint64 // the importing schema's hash
	Got  uint64 // the record's hash
}

func (e *SchemaMismatchError) Error() string {
	if e.From != e.App {
		return fmt.Sprintf("serve: %s: refusing handoff record for app %q", e.App, e.From)
	}
	return fmt.Sprintf("serve: %s: refusing handoff: schema hash %#x, record has %#x",
		e.App, e.Want, e.Got)
}

// Is makes errors.Is(err, ErrSchemaMismatch) match.
func (e *SchemaMismatchError) Is(target error) bool { return target == ErrSchemaMismatch }

// HandoffRecord is one exported session. It is a wire object: Marshal
// and UnmarshalHandoffRecord bound every field, and the importing
// runtime re-validates everything (checkRecord) regardless of how the
// record arrived.
type HandoffRecord struct {
	App        string // exporting app name; must equal the importer's
	SchemaHash uint64 // exporting schema's layout hash; must match exactly
	Principal  string // the session's principal key
	Warm       bool   // the worker had dispatched; Block is a captured image
	Block      []byte // argument-block image (demux words zeroed); nil when cold
	State      []byte // App.Export payload; app-validated on import
}

// Wire caps. A record is client-session metadata, not bulk transfer;
// anything past these bounds is malformed by construction.
const (
	handoffVersion      = 1
	maxHandoffApp       = 64
	maxHandoffPrincipal = 256
	maxHandoffBlock     = 1 << 20
	maxHandoffState     = 64 << 10
)

// ErrBadHandoff is the errors.Is target for a record that fails wire
// validation before any schema question is even asked.
var ErrBadHandoff = errors.New("serve: malformed handoff record")

// Marshal serializes the record: a version byte, a flags byte, then
// length-prefixed fields in fixed order, little-endian.
func (rec *HandoffRecord) Marshal() []byte {
	n := 2 + 2 + len(rec.App) + 8 + 2 + len(rec.Principal) + 4 + len(rec.Block) + 4 + len(rec.State)
	out := make([]byte, 0, n)
	out = append(out, handoffVersion)
	var flags byte
	if rec.Warm {
		flags |= 1
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rec.App)))
	out = append(out, rec.App...)
	out = binary.LittleEndian.AppendUint64(out, rec.SchemaHash)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rec.Principal)))
	out = append(out, rec.Principal...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rec.Block)))
	out = append(out, rec.Block...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rec.State)))
	out = append(out, rec.State...)
	return out
}

// UnmarshalHandoffRecord parses a wire record with every length checked
// against its cap before a single byte is copied; trailing bytes are
// refused. The result still needs checkRecord at the importing runtime —
// this is only the transport-shape validation.
func UnmarshalHandoffRecord(p []byte) (*HandoffRecord, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadHandoff)
	}
	if p[0] != handoffVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadHandoff, p[0])
	}
	rec := &HandoffRecord{Warm: p[1]&1 != 0}
	p = p[2:]
	str := func(cap int, what string) (string, error) {
		if len(p) < 2 {
			return "", fmt.Errorf("%w: truncated %s length", ErrBadHandoff, what)
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if n > cap || n > len(p) {
			return "", fmt.Errorf("%w: %s length %d (cap %d, remaining %d)",
				ErrBadHandoff, what, n, cap, len(p))
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	blob := func(cap int, what string) ([]byte, error) {
		if len(p) < 4 {
			return nil, fmt.Errorf("%w: truncated %s length", ErrBadHandoff, what)
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n > cap || n > len(p) {
			return nil, fmt.Errorf("%w: %s length %d (cap %d, remaining %d)",
				ErrBadHandoff, what, n, cap, len(p))
		}
		var b []byte
		if n > 0 {
			b = append([]byte(nil), p[:n]...)
		}
		p = p[n:]
		return b, nil
	}
	var err error
	if rec.App, err = str(maxHandoffApp, "app"); err != nil {
		return nil, err
	}
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: truncated schema hash", ErrBadHandoff)
	}
	rec.SchemaHash = binary.LittleEndian.Uint64(p)
	p = p[8:]
	if rec.Principal, err = str(maxHandoffPrincipal, "principal"); err != nil {
		return nil, err
	}
	if rec.Block, err = blob(maxHandoffBlock, "block"); err != nil {
		return nil, err
	}
	if rec.State, err = blob(maxHandoffState, "state"); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadHandoff, len(p))
	}
	return rec, nil
}

// handoff is the rendezvous object between HandoffPrincipal (which
// creates it, captures the block, interrupts the worker, and waits) and
// the unwinding serve path (which observes it, assembles the record, and
// closes done).
type handoff struct {
	block []byte // captured image; nil for a never-dispatched session
	rec   *HandoffRecord
	done  chan struct{}
}

// SchemaHash is the runtime's schema layout identity — the value the
// cluster director compares before routing a handoff (gateabi
// Schema.Hash).
func (r *Runtime[T]) SchemaHash() uint64 { return r.app.Schema.Hash() }

// HandoffPrincipal exports the named principal's in-flight session and
// retires it under the Handed counter. The caller must have quiesced the
// session at the protocol level first (no request in flight), so the
// worker is parked on its blocked read: the block image is captured
// while it is provably not writing, then the read is failed and the
// unwind completes the export. Returns ErrNoSession when the principal
// has no live session (including "it just completed" — the benign race).
func (r *Runtime[T]) HandoffPrincipal(principal string) (*HandoffRecord, error) {
	var c *Conn[T]
	r.conns.Range(func(_ uint64, cc *Conn[T]) bool {
		if cc.Principal == principal {
			c = cc
			return false
		}
		return true
	})
	if c == nil {
		return nil, ErrNoSession
	}
	h := &handoff{done: make(chan struct{})}
	c.hmu.Lock()
	if c.completing || c.hand != nil {
		c.hmu.Unlock()
		return nil, ErrNoSession
	}
	c.hand = h
	c.hmu.Unlock()
	// A dispatched worker is parked; its block is stable and current.
	// Capture before the interrupt — the unwind may write to the block
	// and none of that may leak into the record. An undispatched session
	// (batched entry still queued) exports cold: the worker never ran, so
	// there is no block state to move.
	if c.Lease.Dispatched() {
		img := make([]byte, r.app.Schema.Size())
		r.root.Read(c.Lease.Arg, img)
		binary.LittleEndian.PutUint64(img[r.connOff:], 0)
		binary.LittleEndian.PutUint64(img[r.fdOff:], 0)
		h.block = img
	}
	c.interrupt()
	<-h.done
	return h.rec, nil
}

// finishExport runs on the unwinding serve path once a handoff mark was
// observed: assemble the record (block image captured at mark time, app
// payload exported now, while c.State is still live) and release the
// waiting HandoffPrincipal.
func (r *Runtime[T]) finishExport(c *Conn[T], h *handoff) {
	rec := &HandoffRecord{
		App:        r.app.Name,
		SchemaHash: r.app.Schema.Hash(),
		Principal:  c.Principal,
		Warm:       h.block != nil,
		Block:      h.block,
	}
	if r.app.Export != nil {
		rec.State = r.app.Export(c, h.block)
	}
	h.rec = rec
	close(h.done)
}

// checkRecord is the import-side gate: app identity, schema hash, and
// block image are all validated before any resume is attempted. The
// record is hostile input; nothing in it is trusted past this point
// except as bounded bytes.
func (r *Runtime[T]) checkRecord(rec *HandoffRecord) error {
	if rec == nil {
		return fmt.Errorf("%w: nil record", ErrBadHandoff)
	}
	want := r.app.Schema.Hash()
	if rec.App != r.app.Name || rec.SchemaHash != want {
		return &SchemaMismatchError{App: r.app.Name, From: rec.App,
			Want: want, Got: rec.SchemaHash}
	}
	if len(rec.Principal) == 0 || len(rec.Principal) > maxHandoffPrincipal {
		return fmt.Errorf("%w: principal length %d", ErrBadHandoff, len(rec.Principal))
	}
	if len(rec.State) > maxHandoffState {
		return fmt.Errorf("%w: state length %d", ErrBadHandoff, len(rec.State))
	}
	if rec.Warm {
		if err := r.app.Schema.CheckImage(rec.Block); err != nil {
			// Both targets hold: it is a malformed record (ErrBadHandoff)
			// because its image fails bounds (gateabi.ErrBadImage).
			return fmt.Errorf("%w: %s image: %w", ErrBadHandoff, r.app.Name, err)
		}
	} else if len(rec.Block) != 0 {
		return fmt.Errorf("%w: cold record carries a %d-byte block",
			ErrBadHandoff, len(rec.Block))
	}
	return nil
}

// admitResume admits a resumed session past the queue bound: the session
// was already admitted once — at its first home and at the cluster's
// front door — and is mid-protocol, so bouncing it on a transient queue
// high-water mark would turn a rebalance into a client-visible failure.
// Only the lifecycle gate applies: a draining or closed runtime still
// refuses (typed, errors.Is ErrOverloaded), and the director falls back
// to another peer.
func (r *Runtime[T]) admitResume() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateServing {
		r.rejected++
		return &OverloadError{App: r.app.Name, State: r.state}
	}
	r.inflight++
	r.admitted++
	return nil
}

// ResumeConnAs re-admits a handed-off stream session on a new client
// leg. The record is validated as hostile input (schema hash, block
// bounds) before admission; the app's Import hook then restores its own
// payload — also under its own validation — and the worker runs with
// c.Resumed set so it skips the protocol steps the first home already
// performed.
func (r *Runtime[T]) ResumeConnAs(conn *netsim.Conn, principal string, rec *HandoffRecord) error {
	if err := r.checkRecord(rec); err != nil {
		return err
	}
	r.autoSync()
	if err := r.admitResume(); err != nil {
		return err
	}
	return r.serveConn(conn, principal, rec)
}
