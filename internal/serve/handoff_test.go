// Handoff unit tests: the record wire format, the export/resume cycle
// against the echo harness, the typed refusals, and the Snapshot ledger
// invariant under concurrent traffic.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"wedge/internal/netsim"
)

// TestHandoffRecordRoundTrip: Marshal/Unmarshal is exact, and every
// malformed mutation is refused as ErrBadHandoff.
func TestHandoffRecordRoundTrip(t *testing.T) {
	rec := &HandoffRecord{
		App:        "echo",
		SchemaHash: 0xdeadbeefcafef00d,
		Principal:  "client-7",
		Warm:       true,
		Block:      []byte{1, 2, 3, 0, 0, 4},
		State:      []byte("app-state"),
	}
	wire := rec.Marshal()
	got, err := UnmarshalHandoffRecord(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != rec.App || got.SchemaHash != rec.SchemaHash ||
		got.Principal != rec.Principal || got.Warm != rec.Warm ||
		!bytes.Equal(got.Block, rec.Block) || !bytes.Equal(got.State, rec.State) {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}

	bad := [][]byte{
		nil,
		wire[:1],
		wire[:len(wire)-1],                   // truncated in the last field
		append(append([]byte{}, wire...), 0), // trailing byte
		func() []byte { w := append([]byte{}, wire...); w[0] = 99; return w }(), // version
	}
	for i, w := range bad {
		if _, err := UnmarshalHandoffRecord(w); !errors.Is(err, ErrBadHandoff) {
			t.Errorf("malformed %d: err = %v, want ErrBadHandoff", i, err)
		}
	}
}

// TestHandoffExportResume: park an echo worker mid-invocation, export
// the session, and resume it on the same runtime — the client's leg
// moves, the app payload survives, and the ledger retires the first
// admission as Handed.
func TestHandoffExportResume(t *testing.T) {
	var exported, imported atomic.Uint32
	app := App[echoState]{
		Export: func(c *Conn[echoState], block []byte) []byte {
			exported.Add(1)
			if len(block) == 0 {
				t.Error("export saw no block image for a dispatched worker")
			}
			return []byte("stamp")
		},
		Import: func(c *Conn[echoState], rec *HandoffRecord) error {
			imported.Add(1)
			if string(rec.State) != "stamp" {
				return fmt.Errorf("state %q", rec.State)
			}
			if !c.Resumed {
				t.Error("import ran on a non-resumed conn")
			}
			return nil
		},
	}
	startEcho(t, app, func(rig *echoRig) {
		cl, sv := netsim.Pipe("client", "server")
		defer cl.Close()
		serveDone := make(chan error, 1)
		go func() { serveDone <- rig.rt.ServeConnAs(sv, "p1") }()

		// Read the greeting: the worker is now parked on the payload read.
		buf := make([]byte, 1)
		if _, err := cl.Read(buf); err != nil || buf[0] != '>' {
			t.Fatalf("greeting: %q %v", buf, err)
		}

		rec, err := rig.rt.HandoffPrincipal("p1")
		if err != nil {
			t.Fatal(err)
		}
		if err := <-serveDone; !errors.Is(err, ErrHandedOff) {
			t.Fatalf("serve returned %v, want ErrHandedOff", err)
		}
		if rec.App != "echo" || rec.SchemaHash != rig.rt.SchemaHash() || !rec.Warm {
			t.Fatalf("record %+v", rec)
		}
		if exported.Load() != 1 {
			t.Fatalf("export hook ran %d times", exported.Load())
		}

		// A second handoff of the same principal finds nothing.
		if _, err := rig.rt.HandoffPrincipal("p1"); !errors.Is(err, ErrNoSession) {
			t.Fatalf("second handoff: %v, want ErrNoSession", err)
		}

		// Resume; the echo worker greets again and completes the round trip.
		cl2, sv2 := netsim.Pipe("client", "server")
		defer cl2.Close()
		resumeDone := make(chan error, 1)
		go func() { resumeDone <- rig.rt.ResumeConnAs(sv2, "p1", rec) }()
		if _, err := cl2.Read(buf); err != nil || buf[0] != '>' {
			t.Fatalf("resumed greeting: %q %v", buf, err)
		}
		if _, err := cl2.Write([]byte{'x'}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl2.Read(buf); err != nil || buf[0] != 'x' {
			t.Fatalf("resumed echo: %q %v", buf, err)
		}
		if err := <-resumeDone; err != nil {
			t.Fatalf("resume: %v", err)
		}
		if imported.Load() != 1 {
			t.Fatalf("import hook ran %d times", imported.Load())
		}

		s := rig.rt.Snapshot()
		if s.Admitted != 2 || s.Handed != 1 || s.Served != 1 || s.Failed != 0 || s.Inflight != 0 {
			t.Fatalf("ledger %+v", s)
		}
		if s.Conns.Entries != 0 {
			t.Fatalf("conn-table entries = %d after handoff cycle", s.Conns.Entries)
		}
	})
}

// TestResumeRefusals: every way a record can be wrong is a typed
// refusal before any state is touched.
func TestResumeRefusals(t *testing.T) {
	startEcho(t, App[echoState]{}, func(rig *echoRig) {
		good := &HandoffRecord{App: "echo", SchemaHash: rig.rt.SchemaHash(), Principal: "p"}
		check := func(name string, rec *HandoffRecord, target error) {
			t.Helper()
			cl, sv := netsim.Pipe("c", "s")
			defer cl.Close()
			err := rig.rt.ResumeConnAs(sv, "p", rec)
			if !errors.Is(err, target) {
				t.Errorf("%s: err = %v, want %v", name, err, target)
			}
		}
		wrongApp := *good
		wrongApp.App = "notecho"
		check("wrong app", &wrongApp, ErrSchemaMismatch)

		wrongHash := *good
		wrongHash.SchemaHash ^= 1
		check("wrong hash", &wrongHash, ErrSchemaMismatch)

		coldBlock := *good
		coldBlock.Block = []byte{1}
		check("cold with block", &coldBlock, ErrBadHandoff)

		shortBlock := *good
		shortBlock.Warm = true
		shortBlock.Block = []byte{1, 2, 3}
		check("undersized image", &shortBlock, ErrBadHandoff)

		// A warm image with a nonzero demux word is a forged conn id.
		forged := *good
		forged.Warm = true
		forged.Block = make([]byte, rig.rt.app.Schema.Size())
		forged.Block[rig.rt.connOff] = 7
		check("forged demux word", &forged, ErrBadHandoff)

		check("nil record", nil, ErrBadHandoff)

		// The good record still admits (and serves normally).
		cl, sv := netsim.Pipe("c", "s")
		done := make(chan error, 1)
		go func() { done <- rig.rt.ResumeConnAs(sv, "p", good) }()
		buf := make([]byte, 1)
		if _, err := cl.Read(buf); err != nil {
			t.Fatal(err)
		}
		cl.Write([]byte{'x'})
		cl.Read(buf)
		cl.Close()
		if err := <-done; err != nil {
			t.Fatalf("good record refused: %v", err)
		}
	})
}

// TestSnapshotLedgerUnderTraffic is the torn-read regression test:
// Snapshot must be assembled in one critical section, so
// Admitted == Served + Failed + Handed + Inflight holds in every single
// read taken while connections churn.
func TestSnapshotLedgerUnderTraffic(t *testing.T) {
	startEcho(t, App[echoState]{Slots: 4}, func(rig *echoRig) {
		serveDone := make(chan struct{})
		go func() {
			defer close(serveDone)
			rig.rt.Serve(rig.l)
		}()
		stop := make(chan struct{})
		var torn atomic.Uint32
		var readers sync.WaitGroup
		for i := 0; i < 4; i++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					s := rig.rt.Snapshot()
					if s.Admitted != s.Served+s.Failed+s.Handed+uint64(s.Inflight) {
						torn.Add(1)
					}
				}
			}()
		}

		var drivers sync.WaitGroup
		for g := 0; g < 8; g++ {
			drivers.Add(1)
			go func() {
				defer drivers.Done()
				for i := 0; i < 40; i++ {
					conn, await, finish := dialEcho(t, rig.k)
					if err := await(); err != nil {
						conn.Close()
						continue
					}
					finish()
					conn.Close()
				}
			}()
		}
		drivers.Wait()
		close(stop)
		readers.Wait()
		if n := torn.Load(); n != 0 {
			t.Fatalf("%d torn ledger reads", n)
		}
		s := rig.rt.Snapshot()
		if s.Admitted == 0 || s.Admitted != s.Served+s.Failed+s.Handed {
			t.Fatalf("final ledger %+v", s)
		}
		rig.l.Close()
		<-serveDone
	})
}
