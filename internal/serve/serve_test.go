package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"wedge/internal/gateabi"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// The toy application every test serves: one "worker" gate per slot that
// greets the client with one byte, then echoes one byte back. The
// greeting is the tests' synchronization primitive: once a client has
// read it, the worker invocation is provably in flight and parked on the
// payload read — no polling needed to know a connection is held.
var (
	echoSchemaB = gateabi.NewSchema("echo")
	_           = gateabi.ConnID(echoSchemaB)
	_           = gateabi.FD(echoSchemaB)
	_           = gateabi.Fixed(echoSchemaB, "pad", 48)
	echoSchema  = echoSchemaB.Seal()
)

type echoState struct {
	served bool
}

// echoRig is one booted system serving the echo app.
type echoRig struct {
	k    *kernel.Kernel
	app  *sthread.App
	rt   *Runtime[echoState]
	l    *netsim.Listener
	done chan error

	// pre-runtime baselines for the leak checks
	baseTasks int
	baseTags  int
}

// startEcho boots a kernel, builds an echo Runtime inside app.Main (the
// root sthread then parks), and runs drive on the test goroutine so it
// may t.Fatal freely.
func startEcho(t *testing.T, app App[echoState], drive func(rig *echoRig)) {
	t.Helper()
	k := kernel.New()
	a := sthread.Boot(k)
	ready := make(chan *echoRig, 1)
	done := make(chan error, 1)
	quit := make(chan struct{})
	go func() {
		done <- a.Main(func(root *sthread.Sthread) {
			rig := &echoRig{k: k, app: a, done: done,
				baseTasks: k.TaskCount(), baseTags: len(a.Tags.Tags())}
			if app.Name == "" {
				app.Name = "echo"
			}
			app.Schema = echoSchema
			app.Worker = "worker"
			var rt *Runtime[echoState]
			app.Gates = []gatepool.GateDef{{
				Name: "worker",
				Entry: func(w *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := rt.Lookup(w, arg)
					if c == nil {
						return 0
					}
					if _, err := w.Task.WriteFD(c.FD, []byte{'>'}); err != nil {
						return 0
					}
					buf := make([]byte, 1)
					if _, err := w.Task.ReadFD(c.FD, buf); err != nil {
						return 0
					}
					if _, err := w.Task.WriteFD(c.FD, buf); err != nil {
						return 0
					}
					c.State.served = true
					return 1
				},
			}}
			var err error
			rt, err = New(root, app)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			rig.rt = rt
			l, err := root.Task.Listen("echo:7")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			rig.l = l
			ready <- rig
			<-quit // park the root sthread while the test drives
		})
	}()
	rig := <-ready
	if rig == nil {
		t.FailNow()
	}
	drive(rig)
	close(quit)
	if err := <-done; err != nil {
		t.Fatalf("main: %v", err)
	}
}

// dialEcho opens a client connection. await blocks until the worker's
// greeting arrives — the state-machine handshake proving the worker
// invocation holds the connection (the replacement for polling the pool's
// busy count). finish completes the echo round-trip; it must only run
// after await. Rejected connections call neither.
func dialEcho(t *testing.T, k *kernel.Kernel) (conn *netsim.Conn, await, finish func() error) {
	t.Helper()
	conn, err := k.Net.Dial("echo:7")
	if err != nil {
		t.Fatal(err)
	}
	await = func() error {
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			return err
		}
		if buf[0] != '>' {
			return fmt.Errorf("greeting %q, want '>'", buf[0])
		}
		return nil
	}
	finish = func() error {
		if _, err := conn.Write([]byte{'x'}); err != nil {
			return err
		}
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			return err
		}
		return nil
	}
	return conn, await, finish
}

// serveEcho completes one connection end to end: dial, wait for the
// worker's greeting, finish the round-trip, and join the server-side
// ServeConn. Used wherever a test needs "the runtime serves" as a step.
func serveEcho(t *testing.T, rig *echoRig) {
	t.Helper()
	conn, await, finish := dialEcho(t, rig.k)
	defer conn.Close()
	served := make(chan error, 1)
	go func() {
		c, err := rig.l.Accept()
		if err != nil {
			served <- err
			return
		}
		served <- rig.rt.ServeConn(c)
	}()
	if err := await(); err != nil {
		t.Fatalf("echo greeting: %v", err)
	}
	if err := finish(); err != nil {
		t.Fatalf("echo: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// waitFor yields the processor until cond holds or the deadline passes.
// It is reserved for the two conditions no protocol handshake can
// signal — a background Drain having flipped the state, a queued Acquire
// being counted — and never sleeps: the goroutine it waits on is already
// runnable, so yielding is sufficient and prompt.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// TestServeAcceptLoop: the runtime-owned accept loop serves connections
// end to end and drains its dispatched goroutines when the listener
// closes.
func TestServeAcceptLoop(t *testing.T) {
	const conns = 4
	startEcho(t, App[echoState]{Slots: 2}, func(rig *echoRig) {
		served := make(chan struct{})
		go func() {
			rig.rt.Serve(rig.l)
			close(served)
		}()
		var wg sync.WaitGroup
		for i := 0; i < conns; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, await, finish := dialEcho(t, rig.k)
				defer conn.Close()
				if err := await(); err != nil {
					t.Errorf("echo greeting: %v", err)
					return
				}
				if err := finish(); err != nil {
					t.Errorf("echo: %v", err)
				}
			}()
		}
		wg.Wait()
		rig.l.Close()
		<-served
		s := rig.rt.Snapshot()
		if s.Served != conns || s.Admitted != conns {
			t.Errorf("served=%d admitted=%d, want %d/%d", s.Served, s.Admitted, conns, conns)
		}
		if s.Inflight != 0 {
			t.Errorf("inflight=%d after Serve returned, want 0", s.Inflight)
		}
		if err := rig.rt.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
}

// TestDrainCompletesInFlight is the drain regression test: a Drain
// issued while a connection is in flight completes that connection,
// rejects new admissions with the typed overload error, returns only at
// quiescence, and leaks no tasks or tags across the whole lifecycle.
func TestDrainCompletesInFlight(t *testing.T) {
	startEcho(t, App[echoState]{Slots: 2}, func(rig *echoRig) {
		rt, k, l := rig.rt, rig.k, rig.l

		// Baselines with the runtime alive: the pool's gate sthreads and
		// slot tags exist and must all still exist after Drain+Undrain.
		liveTasks := k.TaskCount()
		liveTags := len(rig.app.Tags.Tags())

		// One connection in flight, held open: the worker blocks reading
		// the byte the client has not sent yet. Its greeting in hand, the
		// invocation is provably running — no polling.
		firstConn, awaitFirst, finishFirst := dialEcho(t, k)
		defer firstConn.Close()
		firstErr := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				firstErr <- err
				return
			}
			firstErr <- rt.ServeConn(c)
		}()
		if err := awaitFirst(); err != nil {
			t.Fatalf("held connection greeting: %v", err)
		}
		if got := rt.Snapshot().Pool.Busy; got != 1 {
			t.Fatalf("busy = %d after the greeting, want 1", got)
		}

		// Drain in the background: it must block on the in-flight
		// connection.
		drained := make(chan struct{})
		go func() {
			rt.Drain()
			close(drained)
		}()
		waitFor(t, "draining state", func() bool { return rt.Snapshot().State == StateDraining })
		select {
		case <-drained:
			t.Fatal("Drain returned with a connection still in flight")
		default:
		}

		// New admissions are rejected with the typed overload error.
		lateConn, _, _ := dialEcho(t, k)
		defer lateConn.Close()
		lateServer, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		err = rt.ServeConn(lateServer)
		if err == nil {
			t.Fatal("admission during drain succeeded")
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("drain rejection = %v, want errors.Is ErrOverloaded", err)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.State != StateDraining {
			t.Fatalf("drain rejection = %#v, want *OverloadError in draining state", err)
		}

		// The in-flight connection completes normally and Drain returns.
		if err := finishFirst(); err != nil {
			t.Fatalf("in-flight echo during drain: %v", err)
		}
		if err := <-firstErr; err != nil {
			t.Fatalf("in-flight ServeConn during drain: %v", err)
		}
		<-drained
		s := rt.Snapshot()
		if s.State != StateDraining || s.Inflight != 0 || s.Pool.Busy != 0 {
			t.Fatalf("post-drain snapshot: state=%v inflight=%d busy=%d", s.State, s.Inflight, s.Pool.Busy)
		}
		if s.Served != 1 || s.Rejected != 1 || s.Drains != 1 {
			t.Fatalf("served=%d rejected=%d drains=%d, want 1/1/1", s.Served, s.Rejected, s.Drains)
		}

		// Nothing leaked across the drain: same tasks, same tags.
		if got := k.TaskCount(); got != liveTasks {
			t.Errorf("task count after drain: %d, want %d", got, liveTasks)
		}
		if got := len(rig.app.Tags.Tags()); got != liveTags {
			t.Errorf("live tags after drain: %d, want %d", got, liveTags)
		}

		// Undrain re-admits and the runtime serves again.
		rt.Undrain()
		serveEcho(t, rig)

		// Close tears the pool down to the pre-runtime baselines.
		if err := rt.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if got := k.TaskCount(); got != rig.baseTasks {
			t.Errorf("task count after close: %d, want %d", got, rig.baseTasks)
		}
		if got := len(rig.app.Tags.Tags()); got != rig.baseTags {
			t.Errorf("live tags after close: %d, want %d", got, rig.baseTags)
		}
	})
}

// TestDrainUndrainRace: Drain and Undrain racing each other must never
// strand the pool drained behind a serving runtime — after a final
// Undrain the runtime always serves. (Regression: the pool transition
// used to happen outside the runtime lock, so an Undrain interleaved
// between Drain's state check and its pool.Drain left every subsequent
// Acquire failing ErrDraining.)
func TestDrainUndrainRace(t *testing.T) {
	startEcho(t, App[echoState]{Slots: 2}, func(rig *echoRig) {
		rt := rig.rt
		for i := 0; i < 50; i++ {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); rt.Drain() }()
			go func() { defer wg.Done(); rt.Undrain() }()
			wg.Wait()
			rt.Undrain()
			serveEcho(t, rig)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// TestQueueBound: the admission queue rejects with the typed overload
// error once the bound is hit, and SetQueue adjusts the bound live.
func TestQueueBound(t *testing.T) {
	startEcho(t, App[echoState]{Slots: 1, Queue: -1}, func(rig *echoRig) {
		rt, k, l := rig.rt, rig.k, rig.l

		// Fill the single slot: the worker's greeting proves it is held.
		holdConn, awaitHold, finishHold := dialEcho(t, k)
		defer holdConn.Close()
		holdErr := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				holdErr <- err
				return
			}
			holdErr <- rt.ServeConn(c)
		}()
		if err := awaitHold(); err != nil {
			t.Fatalf("held connection greeting: %v", err)
		}

		// Queue -1: no waiting allowed — the next admission overflows.
		overConn, _, _ := dialEcho(t, k)
		defer overConn.Close()
		overServer, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		err = rt.ServeConn(overServer)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("queue overflow = %v, want errors.Is ErrOverloaded", err)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.State != StateServing || oe.Limit != 1 {
			t.Fatalf("overflow error = %#v, want serving-state limit 1", err)
		}

		// Queue 1: one waiter is admitted (it blocks on Acquire), the
		// next overflows.
		rt.SetQueue(1)
		waitConn, awaitWait, finishWait := dialEcho(t, k)
		defer waitConn.Close()
		waitErr := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				waitErr <- err
				return
			}
			waitErr <- rt.ServeConn(c)
		}()
		waitFor(t, "one waiter queued", func() bool { return rt.Snapshot().Waiting == 1 })
		thirdConn, _, _ := dialEcho(t, k)
		defer thirdConn.Close()
		thirdServer, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.ServeConn(thirdServer); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("second waiter = %v, want errors.Is ErrOverloaded", err)
		}

		// Release the slot: the queued connection is served (its greeting
		// arrives only once the freed slot picks it up).
		if err := finishHold(); err != nil {
			t.Fatalf("held echo: %v", err)
		}
		if err := <-holdErr; err != nil {
			t.Fatalf("held serve: %v", err)
		}
		if err := awaitWait(); err != nil {
			t.Fatalf("queued connection greeting: %v", err)
		}
		if err := finishWait(); err != nil {
			t.Fatalf("queued echo: %v", err)
		}
		if err := <-waitErr; err != nil {
			t.Fatalf("queued serve: %v", err)
		}

		s := rt.Snapshot()
		if s.Served != 2 || s.Rejected != 2 {
			t.Fatalf("served=%d rejected=%d, want 2/2", s.Served, s.Rejected)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// TestAutoSlotsTracksGOMAXPROCS: auto mode re-sizes the pool when host
// parallelism changes — the "slot count should track host parallelism"
// policy applied live.
func TestAutoSlotsTracksGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	startEcho(t, App[echoState]{AutoSlots: true}, func(rig *echoRig) {
		rt := rig.rt
		if got, want := rt.Snapshot().Pool.Slots, DefaultSlots(); got != want {
			t.Fatalf("initial slots = %d, want %d (GOMAXPROCS=1)", got, want)
		}

		serveOne := func() {
			serveEcho(t, rig)
		}
		serveOne()
		if got := rt.Snapshot().Pool.Slots; got != 2 {
			t.Fatalf("slots at GOMAXPROCS=1: %d, want 2", got)
		}

		// Host parallelism doubles: the next admission re-sizes the pool.
		runtime.GOMAXPROCS(2)
		serveOne()
		s := rt.Snapshot()
		if s.Pool.Slots != 4 {
			t.Fatalf("slots after GOMAXPROCS=2: %d, want 4", s.Pool.Slots)
		}
		if s.AutoResizes == 0 || s.AutoTarget != 4 {
			t.Fatalf("autoResizes=%d autoTarget=%d, want >0 and 4", s.AutoResizes, s.AutoTarget)
		}

		// Parallelism shrinks back: so does the pool.
		runtime.GOMAXPROCS(1)
		serveOne()
		if got := rt.Snapshot().Pool.Slots; got != 2 {
			t.Fatalf("slots after GOMAXPROCS back to 1: %d, want 2", got)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

// TestPinHints: every live slot gets a CPU hint striped across host
// parallelism — slot index modulo GOMAXPROCS.
func TestPinHints(t *testing.T) {
	startEcho(t, App[echoState]{Slots: 4}, func(rig *echoRig) {
		defer rig.rt.Close()
		s := rig.rt.Snapshot()
		if len(s.Pins) != 4 {
			t.Fatalf("pins = %d, want 4", len(s.Pins))
		}
		procs := runtime.GOMAXPROCS(0)
		for _, pin := range s.Pins {
			if pin.CPU != pin.Slot%procs {
				t.Errorf("slot %d pinned to CPU %d, want %d", pin.Slot, pin.CPU, pin.Slot%procs)
			}
		}
	})
}

// TestAppValidation: a descriptor whose worker gate is absent or unnamed
// is rejected at construction.
func TestAppValidation(t *testing.T) {
	k := kernel.New()
	a := sthread.Boot(k)
	err := a.Main(func(root *sthread.Sthread) {
		if _, err := New(root, App[echoState]{Name: "bad"}); err == nil {
			t.Error("App without Worker accepted")
		}
		app := App[echoState]{Name: "bad", Worker: "worker", Schema: echoSchema,
			Gates: []gatepool.GateDef{{Name: "other",
				Entry: func(*sthread.Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 }}}}
		if _, err := New(root, app); err == nil {
			t.Error("App whose Worker is not among Gates accepted")
		}
		good := gatepool.GateDef{Name: "worker",
			Entry: func(*sthread.Sthread, vm.Addr, vm.Addr) vm.Addr { return 0 }}
		noSchema := App[echoState]{Name: "bad", Worker: "worker",
			Gates: []gatepool.GateDef{good}}
		if _, err := New(root, noSchema); err == nil {
			t.Error("App without a Schema accepted")
		}
		// A schema that never reserved the demux words cannot be served:
		// the runtime would have nowhere to write the conn id and fd.
		nb := gateabi.NewSchema("no-demux")
		gateabi.U64(nb, "op")
		noDemux := App[echoState]{Name: "bad", Worker: "worker", Schema: nb.Seal(),
			Gates: []gatepool.GateDef{good}}
		if _, err := New(root, noDemux); err == nil {
			t.Error("schema without demux words accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
