package selinux

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseContext(t *testing.T) {
	c, err := ParseContext("system_u:system_r:httpd_t")
	if err != nil {
		t.Fatal(err)
	}
	if c.User != "system_u" || c.Role != "system_r" || c.Type != "httpd_t" {
		t.Fatalf("parsed %+v", c)
	}
	if c.String() != "system_u:system_r:httpd_t" {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestParseContextErrors(t *testing.T) {
	for _, bad := range []string{"", "a:b", "a:b:c:d", "a::c", ":b:c"} {
		if _, err := ParseContext(bad); err == nil {
			t.Errorf("ParseContext(%q) succeeded, want error", bad)
		}
	}
}

func TestMustParseContextPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseContext of bad sid did not panic")
		}
	}()
	MustParseContext("nope")
}

func TestDenyByDefault(t *testing.T) {
	p := NewPolicy()
	ctx := MustParseContext("u:r:worker_t")
	err := p.Check(ctx, ClassFile, "read")
	if err == nil {
		t.Fatal("empty policy must deny confined domain")
	}
	var d *Denial
	if !errors.As(err, &d) {
		t.Fatalf("want Denial, got %T", err)
	}
	if d.Class != ClassFile || d.Perm != "read" {
		t.Fatalf("denial detail: %+v", d)
	}
	if !strings.Contains(d.Error(), "worker_t") {
		t.Fatalf("denial message should name the domain: %s", d.Error())
	}
}

func TestAllowRule(t *testing.T) {
	p := NewPolicy()
	ctx := MustParseContext("u:r:worker_t")
	p.Allow("worker_t", ClassSocket, "send", "recv")
	if err := p.Check(ctx, ClassSocket, "send"); err != nil {
		t.Fatal(err)
	}
	if err := p.Check(ctx, ClassSocket, "listen"); err == nil {
		t.Fatal("unlisted perm must be denied")
	}
	if err := p.Check(ctx, ClassFile, "read"); err == nil {
		t.Fatal("unlisted class must be denied")
	}
}

func TestWildcardPerm(t *testing.T) {
	p := NewPolicy()
	ctx := MustParseContext("u:r:gate_t")
	p.Allow("gate_t", ClassFile, "*")
	if err := p.Check(ctx, ClassFile, "unlink"); err != nil {
		t.Fatal(err)
	}
}

func TestUnconfined(t *testing.T) {
	p := NewPolicy()
	p.AllowAll("init_t")
	ctx := MustParseContext("u:r:init_t")
	for _, class := range Classes() {
		if err := p.Check(ctx, class, "anything"); err != nil {
			t.Fatalf("unconfined domain denied on %s: %v", class, err)
		}
	}
}

func TestZeroContextUnconfined(t *testing.T) {
	p := NewPolicy()
	if err := p.Check(Context{}, ClassProcess, "fork"); err != nil {
		t.Fatal("zero context must be unconfined")
	}
}

func TestTransitions(t *testing.T) {
	p := NewPolicy()
	master := MustParseContext("u:r:master_t")
	worker := MustParseContext("u:r:worker_t")
	other := MustParseContext("u:r:other_t")

	if !p.CanTransition(master, master) {
		t.Fatal("same-domain transition must always be allowed")
	}
	if p.CanTransition(master, worker) {
		t.Fatal("transition must be denied before AllowTransition")
	}
	p.AllowTransition("master_t", "worker_t")
	if !p.CanTransition(master, worker) {
		t.Fatal("allowed transition denied")
	}
	if p.CanTransition(master, other) {
		t.Fatal("unrelated transition allowed")
	}
	// Asymmetry: worker cannot transition back up.
	if p.CanTransition(worker, master) {
		t.Fatal("reverse transition must not be implied")
	}
}

func TestConfinedCannotBecomeUnconfined(t *testing.T) {
	p := NewPolicy()
	worker := MustParseContext("u:r:worker_t")
	if p.CanTransition(worker, Context{}) {
		t.Fatal("confined domain escaped to unconfined context")
	}
	if !p.CanTransition(Context{}, worker) {
		t.Fatal("unconfined parent should be able to confine a child")
	}
}

func TestRulesDump(t *testing.T) {
	p := NewPolicy()
	p.AllowAll("init_t")
	p.Allow("worker_t", ClassSocket, "send", "recv")
	p.AllowTransition("master_t", "worker_t")
	rules := p.Rules()
	joined := strings.Join(rules, "\n")
	for _, want := range []string{"init_t", "worker_t", "socket", "master_t -> worker_t"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rules dump missing %q:\n%s", want, joined)
		}
	}
}

// Property: Check is monotone in rule addition — adding rules never revokes
// a previously allowed access.
func TestQuickAllowMonotone(t *testing.T) {
	type op struct {
		Domain uint8
		Class  uint8
		Perm   uint8
	}
	domains := []string{"a_t", "b_t", "c_t"}
	perms := []string{"read", "write", "exec"}
	classes := Classes()
	f := func(ops []op, probe op) bool {
		p := NewPolicy()
		ctx := MustParseContext("u:r:" + domains[int(probe.Domain)%len(domains)])
		class := classes[int(probe.Class)%len(classes)]
		perm := perms[int(probe.Perm)%len(perms)]
		allowedBefore := p.Check(ctx, class, perm) == nil
		for _, o := range ops {
			p.Allow(domains[int(o.Domain)%len(domains)], classes[int(o.Class)%len(classes)], perms[int(o.Perm)%len(perms)])
			if allowedBefore && p.Check(ctx, class, perm) != nil {
				return false
			}
			allowedBefore = p.Check(ctx, class, perm) == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
