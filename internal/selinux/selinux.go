// Package selinux implements the small slice of SELinux semantics that
// Wedge depends on (§3.1): security contexts of the form user:role:type,
// type-enforcement allow rules over syscall classes, and explicit domain
// transitions. Wedge attaches a context to each sthread so that the set of
// system calls an sthread may invoke can be confined; a child sthread may
// only change context along a transition the system-wide policy permits.
package selinux

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Class is a kernel object class against which permissions are checked.
type Class string

// The syscall classes the simulated kernel checks. They mirror the SELinux
// object classes most relevant to a network server.
const (
	ClassProcess Class = "process" // fork, sthread_create, exec, kill
	ClassFile    Class = "file"    // open, read, write, unlink
	ClassDir     Class = "dir"     // mkdir, chroot, search
	ClassSocket  Class = "socket"  // connect, accept, send, recv
	ClassMemory  Class = "memory"  // mmap, tag_new, mprotect
	ClassGate    Class = "gate"    // callgate invocation
)

// Classes lists every class the kernel checks, in stable order.
func Classes() []Class {
	return []Class{ClassProcess, ClassFile, ClassDir, ClassSocket, ClassMemory, ClassGate}
}

// Context is a parsed SELinux security identifier (SID): user:role:type.
// The type field (the "domain" for processes) is what allow rules match.
type Context struct {
	User string
	Role string
	Type string
}

// ParseContext parses "user:role:type".
func ParseContext(sid string) (Context, error) {
	parts := strings.Split(sid, ":")
	if len(parts) != 3 {
		return Context{}, fmt.Errorf("selinux: malformed context %q (want user:role:type)", sid)
	}
	for _, p := range parts {
		if p == "" {
			return Context{}, fmt.Errorf("selinux: empty component in context %q", sid)
		}
	}
	return Context{User: parts[0], Role: parts[1], Type: parts[2]}, nil
}

// MustParseContext is ParseContext for statically known contexts.
func MustParseContext(sid string) Context {
	c, err := ParseContext(sid)
	if err != nil {
		panic(err)
	}
	return c
}

func (c Context) String() string { return c.User + ":" + c.Role + ":" + c.Type }

// IsZero reports whether the context is unset (unconfined).
func (c Context) IsZero() bool { return c == Context{} }

// Denial is the error returned when the policy denies an access.
type Denial struct {
	Domain Context
	Class  Class
	Perm   string
}

func (d *Denial) Error() string {
	return fmt.Sprintf("selinux: denied { %s } for class %s to domain %s", d.Perm, d.Class, d.Domain)
}

type ruleKey struct {
	domain string
	class  Class
}

// Policy is a system-wide type-enforcement policy: allow rules keyed by
// (domain type, class) to permission sets, plus permitted domain
// transitions. The zero value denies everything except unconfined contexts.
type Policy struct {
	mu          sync.RWMutex
	allow       map[ruleKey]map[string]bool
	transitions map[[2]string]bool
	unconfined  map[string]bool
}

// NewPolicy returns an empty (deny-all) policy.
func NewPolicy() *Policy {
	return &Policy{
		allow:       make(map[ruleKey]map[string]bool),
		transitions: make(map[[2]string]bool),
		unconfined:  make(map[string]bool),
	}
}

// Allow adds an allow rule: domain may exercise perms on class.
func (p *Policy) Allow(domainType string, class Class, perms ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := ruleKey{domainType, class}
	set := p.allow[k]
	if set == nil {
		set = make(map[string]bool)
		p.allow[k] = set
	}
	for _, perm := range perms {
		set[perm] = true
	}
}

// AllowAll marks a domain unconfined: every check succeeds. Wedge's
// applications in §5 run with SELinux policies that "explicitly grant
// access to all system calls", focusing the evaluation on memory privileges.
func (p *Policy) AllowAll(domainType string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.unconfined[domainType] = true
}

// AllowTransition permits a child sthread to run in domain "to" when its
// creator runs in domain "from".
func (p *Policy) AllowTransition(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transitions[[2]string{from, to}] = true
}

// Check returns nil if ctx may exercise perm on class. An unset context is
// unconfined, matching a kernel with SELinux in permissive mode for
// unlabeled processes.
func (p *Policy) Check(ctx Context, class Class, perm string) error {
	if ctx.IsZero() {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.unconfined[ctx.Type] {
		return nil
	}
	if set := p.allow[ruleKey{ctx.Type, class}]; set != nil && (set[perm] || set["*"]) {
		return nil
	}
	return &Denial{Domain: ctx, Class: class, Perm: perm}
}

// CanTransition reports whether a task in domain from may create a task in
// domain to. Remaining in the same domain is always permitted; entering or
// leaving the unconfined (zero) context is not a transition the policy can
// grant — a confined parent can never mint an unconfined child.
func (p *Policy) CanTransition(from, to Context) bool {
	if from.Type == to.Type {
		return true
	}
	if from.IsZero() {
		return true // unconfined parents may confine children freely
	}
	if to.IsZero() {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.transitions[[2]string{from.Type, to.Type}]
}

// Rules returns a human-readable dump of the policy, for cb-analyze style
// reporting and tests.
func (p *Policy) Rules() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []string
	for d := range p.unconfined {
		out = append(out, fmt.Sprintf("allow %s *:*", d))
	}
	for k, set := range p.allow {
		var perms []string
		for perm := range set {
			perms = append(perms, perm)
		}
		sort.Strings(perms)
		out = append(out, fmt.Sprintf("allow %s %s:{%s}", k.domain, k.class, strings.Join(perms, " ")))
	}
	for t := range p.transitions {
		out = append(out, fmt.Sprintf("transition %s -> %s", t[0], t[1]))
	}
	sort.Strings(out)
	return out
}
