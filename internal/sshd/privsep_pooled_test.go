package sshd

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// runPooledPrivsep boots a system with a PooledPrivsep of the given slot
// count, serves nConns connections concurrently, and hands the test a
// dial helper plus the live server.
func runPooledPrivsep(t *testing.T, slots, nConns int, hooks WedgeHooks,
	drive func(dial func() *Client, srv *PooledPrivsep, app *sthread.App)) {
	t.Helper()
	k := kernel.New()
	if err := SetupUsers(k, testUsers(t)); err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{HostKey: testHostKey(t), Options: "PasswordAuthentication yes"}
	app := sthread.Boot(k)

	ready := make(chan *PooledPrivsep, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewPooledPrivsep(root, cfg, slots, hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- srv
			var wg sync.WaitGroup
			for i := 0; i < nConns; i++ {
				c, err := l.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					srv.ServeConn(c)
				}()
			}
			wg.Wait()
		})
	}()
	srv := <-ready
	if srv == nil {
		t.FailNow()
	}

	dial := func() *Client {
		conn, err := k.Net.Dial("sshd:22")
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(conn, &testHostKey(t).PublicKey)
		if err != nil {
			t.Fatalf("client setup: %v", err)
		}
		return c
	}
	drive(dial, srv, app)
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestPooledPrivsepAuthMethods: the pooled privsep monitor serves the
// fork-based build's auth methods — password (with scp afterwards) and
// S/Key — with zero sthread creations on the serving path, every monitor
// request a pooled gate call.
func TestPooledPrivsepAuthMethods(t *testing.T) {
	runPooledPrivsep(t, 2, 2, WedgeHooks{}, func(dial func() *Client, srv *PooledPrivsep, app *sthread.App) {
		created := app.Stats.SthreadsCreated.Load()

		c := dial()
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("password login: %v", err)
		}
		if c.UID != 1000 {
			t.Fatalf("uid = %d, want 1000", c.UID)
		}
		if err := c.ScpPut("notes.txt", []byte("pooled privsep scp")); err != nil {
			t.Fatalf("scp: %v", err)
		}
		c.Exit()

		c2 := dial()
		if err := c2.AuthSKey("alice", testSeed); err != nil {
			t.Fatalf("skey login: %v", err)
		}
		c2.Exit()

		if got := app.Stats.SthreadsCreated.Load() - created; got != 0 {
			t.Fatalf("%d sthreads created on the pooled privsep serving path, want 0", got)
		}
		if got := srv.Stats.Logins.Load(); got != 2 {
			t.Fatalf("logins = %d, want 2", got)
		}
		if srv.Stats.MonitorMsgs.Load() == 0 {
			t.Fatal("no monitor messages counted; requests bypassed the gates")
		}
	})
}

// TestPooledPrivsepWrongPassword: a failed attempt stays failed and the
// session can retry, exactly as against the fork-based monitor.
func TestPooledPrivsepWrongPassword(t *testing.T) {
	runPooledPrivsep(t, 1, 1, WedgeHooks{}, func(dial func() *Client, srv *PooledPrivsep, app *sthread.App) {
		c := dial()
		if err := c.AuthPassword("alice", "wrong"); err == nil {
			t.Fatal("wrong password accepted")
		}
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("retry: %v", err)
		}
		c.Exit()
		if srv.Stats.Fails.Load() != 1 {
			t.Fatalf("fails = %d, want 1", srv.Stats.Fails.Load())
		}
	})
}

// TestPooledPrivsepClosesUsernameProbe: the fork-based monitor leaks
// username existence two ways the client can observe — getpwnam's
// NULL-vs-passwd reply makes an unknown user's password attempt
// distinguishable, and the S/Key path answers "no such user" instead of a
// challenge. The pooled monitor's replies are shape-identical: unknown
// users get the same "permission denied" and a plausible S/Key challenge.
// The probe also checks the exploited-slave view: the passwd words the
// getpwnam gate leaves in the argument block must be identical for known
// and unknown users on failed attempts (a real uid/home there would be a
// user-enumeration oracle even with the wire replies uniform).
func TestPooledPrivsepClosesUsernameProbe(t *testing.T) {
	var mu sync.Mutex
	var slave *sthread.Sthread
	var argAddr vm.Addr
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		mu.Lock()
		slave, argAddr = s, ctx.ArgAddr
		mu.Unlock()
	}}
	runPooledPrivsep(t, 1, 1, hooks, func(dial func() *Client, srv *PooledPrivsep, app *sthread.App) {
		c := dial()
		// The auth-fail reply in hand, the gates are done writing; the
		// slave's view of the passwd area is what an exploit would read.
		readPw := func() (uint64, string) {
			mu.Lock()
			defer mu.Unlock()
			return slave.Load64(argAddr + fPwUID.Off()), fPwHome.Load(slave, argAddr)
		}

		errKnown := c.AuthPassword("alice", "wrong-guess")
		uidKnown, homeKnown := readPw()
		errUnknown := c.AuthPassword("nobody-here", "wrong-guess")
		uidUnknown, homeUnknown := readPw()
		if errKnown == nil || errUnknown == nil {
			t.Fatal("a wrong-password attempt succeeded")
		}
		if errKnown.Error() != errUnknown.Error() {
			t.Fatalf("password replies distinguish users: %q vs %q", errKnown, errUnknown)
		}
		if uidKnown != uidUnknown || homeKnown != homeUnknown {
			t.Fatalf("argument-block passwd words distinguish users: uid %d/%q vs %d/%q",
				uidKnown, homeKnown, uidUnknown, homeUnknown)
		}

		// The S/Key existence leak of the fork-based monitor ("no such
		// user") is gone: both users draw a challenge.
		nKnown, err := c.SKeyChallenge("alice")
		if err != nil {
			t.Fatalf("challenge for known user: %v", err)
		}
		if err := c.SKeyRespond([]byte("bogus")); err == nil {
			t.Fatal("bogus skey response accepted")
		}
		nUnknown, err := c.SKeyChallenge("nobody-here")
		if err != nil {
			t.Fatalf("challenge for unknown user: %v (the fork-based monitor's existence leak)", err)
		}
		if nKnown <= 0 || nUnknown <= 0 {
			t.Fatalf("challenges = %d/%d, want plausible chain positions", nKnown, nUnknown)
		}
		if err := c.SKeyRespond([]byte("bogus")); err == nil {
			t.Fatal("bogus skey response for unknown user accepted")
		}

		// Login still works afterwards.
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("login after probes: %v", err)
		}
		c.Exit()
	})
}

// TestPooledPrivsepDemotesSlaveBetweenConnections: a successful login
// promotes the slot's recycled slave (uid and home chroot) from inside
// the monitor gate; the next connection on that slot must start back at
// the confined identity.
func TestPooledPrivsepDemotesSlaveBetweenConnections(t *testing.T) {
	var mu sync.Mutex
	var uids []int
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		mu.Lock()
		uids = append(uids, s.Task.UID)
		mu.Unlock()
	}}
	runPooledPrivsep(t, 1, 2, hooks, func(dial func() *Client, srv *PooledPrivsep, app *sthread.App) {
		a := dial()
		if err := a.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("A login: %v", err)
		}
		if err := a.ScpPut("a.txt", []byte("A")); err != nil {
			t.Fatalf("A scp: %v", err)
		}
		a.Exit()

		b := dial()
		b.Exit()

		mu.Lock()
		defer mu.Unlock()
		if len(uids) != 2 {
			t.Fatalf("uids = %v, want 2 entries", uids)
		}
		for i, uid := range uids {
			if uid != WorkerUID {
				t.Fatalf("connection %d started with uid %d, want %d", i, uid, WorkerUID)
			}
		}
	})
}

// TestPooledPrivsepSlaveCannotReachHostKey: where the fork-based slave
// inherits a full clone of the monitor's memory, the pooled slave holds
// only the slot's argument tag and the public key — a host-key probe
// faults instead of leaking.
func TestPooledPrivsepSlaveCannotReachHostKey(t *testing.T) {
	var mu sync.Mutex
	var readErr error
	probed := false
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		mu.Lock()
		defer mu.Unlock()
		if probed {
			return
		}
		probed = true
		readErr = s.TryRead(ctx.HostKeyAddr, make([]byte, 8))
	}}
	runPooledPrivsep(t, 1, 2, hooks, func(dial func() *Client, srv *PooledPrivsep, app *sthread.App) {
		c := dial()
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("login after probe: %v", err)
		}
		c.Exit()
		c2 := dial()
		c2.Exit()
		mu.Lock()
		defer mu.Unlock()
		var f *vm.Fault
		if readErr == nil {
			t.Fatal("pooled privsep slave read the host key")
		} else if !errors.As(readErr, &f) {
			t.Fatalf("host-key probe failed with %v, want a protection fault", readErr)
		}
	})
}

// TestPrivsepSKeyExistenceLeakContrast pins the fork-based behaviour the
// pooled monitor fixes: the one-shot privsep monitor answers an S/Key
// challenge request for an unknown user with an error, so usernames are
// enumerable (the §5.2 probe, [14]'s existence leak).
func TestPrivsepSKeyExistenceLeakContrast(t *testing.T) {
	runServer(t, "privsep", 1, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
		c := dial()
		if _, err := c.SKeyChallenge("alice"); err != nil {
			t.Fatalf("challenge for known user: %v", err)
		}
		if err := c.SKeyRespond([]byte("bogus")); err == nil {
			t.Fatal("bogus response accepted")
		}
		if _, err := c.SKeyChallenge("nobody-here"); err == nil ||
			!strings.Contains(err.Error(), "no such user") {
			t.Fatalf("unknown user drew %v, want the fork-based monitor's existence leak", err)
		}
		c.Exit()
	})
}
