// Package sshd reproduces the OpenSSH application study (§5.2): an
// SSH-shaped login server built three ways over the same authentication
// substrate.
//
//   - Monolithic: OpenSSH 3.1p1 before privilege separation. Host key,
//     shadow entries, and PAM-style scratch memory share the worker's
//     address space.
//   - Privsep: Provos-style privilege separation — a privileged monitor
//     and an unprivileged slave talking over a narrow interface. Exhibits
//     the two leaks the paper dissects: the monitor's getpwnam reply
//     distinguishes valid from invalid usernames, and memory inherited
//     across fork carries library scratch data.
//   - Wedge (Figure 6): per-connection worker sthreads running as an
//     unprivileged user chrooted to an empty directory, with the host key
//     behind a sign callgate and one callgate per authentication method
//     (password, public-key, S/Key). Successful authentication promotes
//     the worker's uid and filesystem root from inside the gate — the only
//     path to a logged-in state.
//
// The wire protocol is a line/frame-oriented SSH analogue sufficient for
// the partitioning claims and the Table 2 latency rows (login and a 10 MB
// scp); transport encryption is orthogonal to §5.2's goals and omitted.
// Passwords are salted-hashed in /etc/shadow; S/Key is a real hash chain;
// public-key login signs a server nonce.
package sshd

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/vfs"
)

// Protocol message types.
const (
	MsgVersion   byte = 1
	MsgHostKey   byte = 2
	MsgSignReq   byte = 3
	MsgSignResp  byte = 4
	MsgAuthPass  byte = 5
	MsgAuthPub   byte = 6
	MsgAuthSKey  byte = 7
	MsgSKeyChal  byte = 8
	MsgAuthOK    byte = 9
	MsgAuthFail  byte = 10
	MsgScpPut    byte = 11
	MsgScpData   byte = 12
	MsgScpOK     byte = 13
	MsgExit      byte = 14
	MsgSKeyReply byte = 15
)

// Version is the protocol banner.
const Version = "MINISSH-1.0"

// Errors.
var (
	ErrAuthFailed = errors.New("sshd: authentication failed")
	ErrProtocol   = errors.New("sshd: protocol error")
)

// WriteFrame / ReadFrame: u8 type, u32 length, payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, capped at 32 MiB (a 10 MB scp fits).
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 32<<20 {
		return 0, nil, ErrProtocol
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, err
	}
	return hdr[0], p, nil
}

// ExpectFrame reads a frame and requires its type.
func ExpectFrame(r io.Reader, typ byte) ([]byte, error) {
	got, p, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	if got != typ {
		return nil, fmt.Errorf("%w: frame %d, want %d", ErrProtocol, got, typ)
	}
	return p, nil
}

// ---- user database ---------------------------------------------------------------

// Passwd mirrors the struct passwd fields the paper's dummy-reply lesson
// concerns.
type Passwd struct {
	Name string
	UID  int
	Home string
}

// HashPassword computes the shadow entry hash.
func HashPassword(salt, password string) string {
	h := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(h[:])
}

// ShadowEntry is one /etc/shadow line: name:salt:hash:uid:home.
type ShadowEntry struct {
	Name string
	Salt string
	Hash string
	UID  int
	Home string
}

// FormatShadow renders entries into the file body.
func FormatShadow(entries []ShadowEntry) []byte {
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%s:%s:%s:%d:%s\n", e.Name, e.Salt, e.Hash, e.UID, e.Home)
	}
	return []byte(b.String())
}

// ParseShadow parses the file body.
func ParseShadow(data []byte) ([]ShadowEntry, error) {
	var out []ShadowEntry
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		f := strings.Split(line, ":")
		if len(f) != 5 {
			return nil, fmt.Errorf("%w: shadow line %q", ErrProtocol, line)
		}
		uid, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, err
		}
		out = append(out, ShadowEntry{Name: f[0], Salt: f[1], Hash: f[2], UID: uid, Home: f[4]})
	}
	return out, nil
}

// LookupShadow finds a user's entry.
func LookupShadow(entries []ShadowEntry, user string) (ShadowEntry, bool) {
	for _, e := range entries {
		if e.Name == user {
			return e, true
		}
	}
	return ShadowEntry{}, false
}

// ---- S/Key hash chains --------------------------------------------------------------

// SKeyHash is one step of the S/Key chain.
func SKeyHash(in []byte) []byte {
	h := sha256.Sum256(in)
	return h[:]
}

// SKeyChain computes hash^n(seed).
func SKeyChain(seed []byte, n int) []byte {
	cur := append([]byte(nil), seed...)
	for i := 0; i < n; i++ {
		cur = SKeyHash(cur)
	}
	return cur
}

// SKeyEntry is one /etc/skeykeys line: user:n:hex(hash^n(seed)).
type SKeyEntry struct {
	Name string
	N    int
	Last []byte // hash^N(seed)
}

// FormatSKey renders the database body.
func FormatSKey(entries []SKeyEntry) []byte {
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%s:%d:%s\n", e.Name, e.N, hex.EncodeToString(e.Last))
	}
	return []byte(b.String())
}

// ParseSKey parses the database body.
func ParseSKey(data []byte) ([]SKeyEntry, error) {
	var out []SKeyEntry
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		f := strings.Split(line, ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("%w: skey line %q", ErrProtocol, line)
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, err
		}
		last, err := hex.DecodeString(f[2])
		if err != nil {
			return nil, err
		}
		out = append(out, SKeyEntry{Name: f[0], N: n, Last: last})
	}
	return out, nil
}

// skeyDummySecret keys the dummy-challenge derivation below. A fresh
// random per-process secret: an attacker who knows the source cannot
// precompute any username's dummy challenge and compare it against the
// server's answer to detect real accounts.
var skeyDummySecret = func() []byte {
	b := make([]byte, 16)
	rand.Read(b)
	return b
}()

// SKeyDummyChallenge derives the chain position served to S/Key
// challenge requests for unknown usernames: plausible (50–99),
// consistent across repeated probes of the same name, and — because it
// is keyed — indistinguishable from a provisioned user's position
// without the server's secret. (A publicly computable formula here would
// re-open the enumeration leak the dummy exists to close.)
func SKeyDummyChallenge(user string) uint64 {
	mac := hmac.New(sha256.New, skeyDummySecret)
	mac.Write([]byte(user))
	return 50 + uint64(mac.Sum(nil)[0])%50
}

// VerifySKey checks a response against an entry: hash(resp) must equal the
// stored value; on success the entry steps down the chain.
func VerifySKey(e *SKeyEntry, resp []byte) bool {
	if e.N <= 1 {
		return false // chain exhausted
	}
	if !hmac.Equal(SKeyHash(resp), e.Last) {
		return false
	}
	e.N--
	e.Last = append([]byte(nil), resp...)
	return true
}

// ---- host and user keys ----------------------------------------------------------------

// SignHash signs sha256(data) with an RSA key: the sign callgate's
// operation. The gate hashes the input itself, so a caller cannot obtain
// signatures (or, with RSA, decryptions) of chosen values — "the worker
// cannot sign arbitrary data, and therefore possibly decrypt data, since
// only the hash computed by the callgate is signed" (§5.2).
func SignHash(priv *rsa.PrivateKey, data []byte) ([]byte, error) {
	sum := sha256.Sum256(data)
	return rsa.SignPKCS1v15(nil, priv, 0, sum[:])
}

// VerifyHash checks a SignHash signature.
func VerifyHash(pub *rsa.PublicKey, data, sig []byte) error {
	sum := sha256.Sum256(data)
	return rsa.VerifyPKCS1v15(pub, 0, sum[:], sig)
}

// GenerateUserKey creates a client key pair for public-key login.
func GenerateUserKey() (*rsa.PrivateKey, error) {
	return rsa.GenerateKey(rand.Reader, 1024)
}

// ---- scenario setup -------------------------------------------------------------------

// User describes one account provisioned by SetupUsers.
type User struct {
	Name     string
	Password string
	UID      int
	// PubKey, when non-nil, lands in ~/.ssh/authorized_keys.
	PubKey *rsa.PublicKey
	// SKeySeed, when non-empty, provisions an S/Key chain of length SKeyN.
	SKeySeed []byte
	SKeyN    int
}

// SetupUsers provisions /etc/shadow, /etc/skeykeys, /var/empty, and home
// directories on the simulated filesystem.
func SetupUsers(k *kernel.Kernel, users []User) error {
	root := vfs.Cred{UID: 0}
	fs := k.FS
	if err := fs.MkdirAll(root, fs.Root(), "/etc", 0o755); err != nil {
		return err
	}
	if err := fs.MkdirAll(root, fs.Root(), "/var/empty", 0o755); err != nil {
		return err
	}
	var shadow []ShadowEntry
	var skeys []SKeyEntry
	for _, u := range users {
		home := "/home/" + u.Name
		if err := fs.MkdirAll(root, fs.Root(), home+"/.ssh", 0o755); err != nil {
			return err
		}
		if err := fs.Chown(root, fs.Root(), home, u.UID); err != nil {
			return err
		}
		salt := u.Name + "-salt"
		shadow = append(shadow, ShadowEntry{
			Name: u.Name, Salt: salt, Hash: HashPassword(salt, u.Password),
			UID: u.UID, Home: home,
		})
		if u.PubKey != nil {
			if err := fs.WriteFile(root, fs.Root(), home+"/.ssh/authorized_keys",
				minissl.MarshalPublicKey(u.PubKey), 0o644); err != nil {
				return err
			}
		}
		if len(u.SKeySeed) > 0 {
			skeys = append(skeys, SKeyEntry{
				Name: u.Name, N: u.SKeyN, Last: SKeyChain(u.SKeySeed, u.SKeyN),
			})
		}
	}
	if err := fs.WriteFile(root, fs.Root(), "/etc/shadow", FormatShadow(shadow), 0o600); err != nil {
		return err
	}
	return fs.WriteFile(root, fs.Root(), "/etc/skeykeys", FormatSKey(skeys), 0o600)
}

// ServerConfig is shared by the three variants.
type ServerConfig struct {
	HostKey *rsa.PrivateKey
	// Options is the server configuration data workers may read (§5.2:
	// version strings, permitted auth methods, ...).
	Options string
}
