package sshd

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"wedge/internal/gateabi"
	"wedge/internal/kernel"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// runPooled boots a system with a PooledWedge of the given slot count,
// serves nConns connections concurrently, and hands the test a dial
// helper plus the live server (for Resize and stats). The server is
// resolved via a channel so the driver runs while the accept loop does.
func runPooled(t *testing.T, slots, nConns int, hooks WedgeHooks,
	drive func(dial func() *Client, srv *PooledWedge, app *sthread.App)) {
	t.Helper()
	k := kernel.New()
	if err := SetupUsers(k, testUsers(t)); err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{HostKey: testHostKey(t), Options: "PasswordAuthentication yes"}
	app := sthread.Boot(k)

	ready := make(chan *PooledWedge, 1)
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewPooledWedge(root, cfg, slots, hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			ready <- srv
			var wg sync.WaitGroup
			for i := 0; i < nConns; i++ {
				c, err := l.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					srv.ServeConn(c)
				}()
			}
			wg.Wait()
		})
	}()
	srv := <-ready
	if srv == nil {
		t.FailNow()
	}

	dial := func() *Client {
		conn, err := k.Net.Dial("sshd:22")
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(conn, &testHostKey(t).PublicKey)
		if err != nil {
			t.Fatalf("client setup: %v", err)
		}
		return c
	}
	drive(dial, srv, app)
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestPooledWedgeAllAuthMethods: the pooled build serves every Figure 6
// authentication method — password (with scp afterwards), public key, and
// S/Key — with zero sthread creations on the serving path.
func TestPooledWedgeAllAuthMethods(t *testing.T) {
	runPooled(t, 2, 3, WedgeHooks{}, func(dial func() *Client, srv *PooledWedge, app *sthread.App) {
		created := app.Stats.SthreadsCreated.Load()

		c := dial()
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("password login: %v", err)
		}
		if c.UID != 1000 {
			t.Fatalf("uid = %d, want 1000", c.UID)
		}
		if err := c.ScpPut("notes.txt", []byte("pooled scp")); err != nil {
			t.Fatalf("scp: %v", err)
		}
		c.Exit()

		c2 := dial()
		if err := c2.AuthPubkey("alice", testUserKey(t)); err != nil {
			t.Fatalf("pubkey login: %v", err)
		}
		c2.Exit()

		c3 := dial()
		if err := c3.AuthSKey("alice", testSeed); err != nil {
			t.Fatalf("skey login: %v", err)
		}
		c3.Exit()

		if got := app.Stats.SthreadsCreated.Load() - created; got != 0 {
			t.Fatalf("%d sthreads created on the pooled serving path, want 0", got)
		}
		if got := srv.Stats.Logins.Load(); got != 3 {
			t.Fatalf("logins = %d, want 3", got)
		}
	})
}

// TestPooledWedgeWrongPassword: a failed attempt stays failed and the
// session can retry, as in the one-shot build.
func TestPooledWedgeWrongPassword(t *testing.T) {
	runPooled(t, 1, 1, WedgeHooks{}, func(dial func() *Client, srv *PooledWedge, app *sthread.App) {
		c := dial()
		if err := c.AuthPassword("alice", "wrong"); err == nil {
			t.Fatal("wrong password accepted")
		}
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("retry: %v", err)
		}
		c.Exit()
	})
}

// The cross-principal residue scan of the slot's argument block —
// principal A's password bytes in the block's string field, gone by the
// time principal
// B's worker invocation starts, including after a Resize — lives in the
// shared conformance battery now: see TestServeConformance/Residue and
// TestServeConformancePrivsep/Residue (conformance_test.go).

// TestPooledOversizedPayloadStaysInBlock: a client payload larger than
// the receiving gate's cap is rejected before it is written, so nothing
// ever lands past the schema's block in the slot's argument-tag arena — memory
// the inter-principal scrub does not cover. (Regression: the worker used
// to copy the frame body unchecked, so a 4 KiB "nonce" became permanent
// cross-principal residue readable by every later lease of the slot.)
func TestPooledOversizedPayloadStaysInBlock(t *testing.T) {
	k := kernel.New()
	if err := SetupUsers(k, testUsers(t)); err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{HostKey: testHostKey(t)}
	app := sthread.Boot(k)

	var mu sync.Mutex
	var probes [][]byte
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		// The worker can read its slot's whole tag region; the window
		// just past the block is where an unbounded copy would land.
		buf := make([]byte, 64)
		s.Read(ctx.ArgAddr+vm.Addr(sshSchema.Size()), buf)
		mu.Lock()
		probes = append(probes, buf)
		mu.Unlock()
	}}

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewPooledWedge(root, cfg, 1, hooks)
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			defer srv.Close()
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			for i := 0; i < 2; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				srv.ServeConn(c) // the attacker connection fails; fine
			}
		})
	}()
	<-ready

	// The attacker: a legit banner exchange, then a sign request four
	// times the size of the whole argument block.
	conn, err := k.Net.Dial("sshd:22")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectFrame(conn, MsgVersion); err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectFrame(conn, MsgHostKey); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 4*sshSchema.Size())
	for i := range huge {
		huge[i] = 'A'
	}
	if err := WriteFrame(conn, MsgSignReq, huge); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A second principal leases the same slot; its worker probes the
	// arena just past the block.
	c := dial2(t, k)
	if err := c.AuthPassword("alice", "sesame"); err != nil {
		t.Fatalf("login after oversized-payload attack: %v", err)
	}
	c.Exit()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(probes) != 2 {
		t.Fatalf("probes = %d, want 2", len(probes))
	}
	for _, p := range probes {
		for j, b := range p {
			if b != 0 {
				t.Fatalf("slot arena dirtied past the argument block at +%d (%#x): "+
					"an oversized payload escaped the block", j, b)
			}
		}
	}
}

// dial2 dials and completes the client handshake against sshd:22.
func dial2(t *testing.T, k *kernel.Kernel) *Client {
	t.Helper()
	conn, err := k.Net.Dial("sshd:22")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, &testHostKey(t).PublicKey)
	if err != nil {
		t.Fatalf("client setup: %v", err)
	}
	return c
}

// TestPooledWedgeDemotesWorkerBetweenConnections: authentication promotes
// the slot's recycled worker to the user's uid and home root; the next
// connection on that slot must start back at WorkerUID with the empty
// chroot, whoever it is — a recycled worker must never inherit a previous
// principal's login.
func TestPooledWedgeDemotesWorkerBetweenConnections(t *testing.T) {
	var mu sync.Mutex
	var uids []int
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		mu.Lock()
		uids = append(uids, s.Task.UID)
		mu.Unlock()
	}}
	runPooled(t, 1, 2, hooks, func(dial func() *Client, srv *PooledWedge, app *sthread.App) {
		a := dial()
		if err := a.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("A login: %v", err)
		}
		// A is now logged in: an scp write lands in alice's home.
		if err := a.ScpPut("a.txt", []byte("A")); err != nil {
			t.Fatalf("A scp: %v", err)
		}
		a.Exit()

		// B's connection reuses the slot; its worker must be confined.
		b := dial()
		b.Exit()

		mu.Lock()
		defer mu.Unlock()
		if len(uids) != 2 {
			t.Fatalf("uids = %v, want 2 entries", uids)
		}
		for i, uid := range uids {
			if uid != WorkerUID {
				t.Fatalf("connection %d started with uid %d, want %d", i, uid, WorkerUID)
			}
		}
	})
}

// TestPooledWedgeWorkerCannotReachHostKey: the recycled worker's policy
// is as tight as the one-shot worker's — the host key tag is not granted,
// so an exploited worker reading the host key faults (and the connection
// fails cleanly rather than leaking the key).
func TestPooledWedgeWorkerCannotReachHostKey(t *testing.T) {
	var mu sync.Mutex
	var readErr error
	probed := false
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		mu.Lock()
		defer mu.Unlock()
		if probed {
			return
		}
		probed = true
		buf := make([]byte, 8)
		readErr = s.TryRead(ctx.HostKeyAddr, buf)
	}}
	runPooled(t, 1, 2, hooks, func(dial func() *Client, srv *PooledWedge, app *sthread.App) {
		c := dial()
		if err := c.AuthPassword("alice", "sesame"); err != nil {
			t.Fatalf("login after probe: %v", err)
		}
		c.Exit()
		// Second connection proves the slot still serves.
		c2 := dial()
		c2.Exit()
		mu.Lock()
		defer mu.Unlock()
		var f *vm.Fault
		if readErr == nil {
			t.Fatal("worker read the host key")
		} else if !errors.As(readErr, &f) {
			t.Fatalf("host-key probe failed with %v, want a protection fault", readErr)
		}
	})
}

// TestPooledWedgeConcurrent: several principals at once across a small
// pool — admission control blocks the excess, everyone logs in.
func TestPooledWedgeConcurrent(t *testing.T) {
	const conns = 6
	runPooled(t, 2, conns, WedgeHooks{}, func(dial func() *Client, srv *PooledWedge, app *sthread.App) {
		var wg sync.WaitGroup
		errs := make(chan error, conns)
		for i := 0; i < conns; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := dial()
				if err := c.AuthPassword("alice", "sesame"); err != nil {
					errs <- err
					return
				}
				c.Exit()
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if got := srv.Stats.Logins.Load(); got != conns {
			t.Fatalf("logins = %d, want %d", got, conns)
		}
	})
}

// TestArgBoundsReplacesSilentCap is the regression for PR 4's
// per-call-site payload caps: the codec now rejects an oversized payload
// with the typed *gateabi.ArgBoundsError (errors.Is gateabi.ErrArgBounds)
// before anything is written — the block is bit-identical after the
// rejection, so there is neither a silent cap nor a partial write for a
// later principal to find.
func TestArgBoundsReplacesSilentCap(t *testing.T) {
	app := sthread.Boot(kernel.New())
	err := app.Main(func(root *sthread.Sthread) {
		tag, err := app.Tags.TagNew(root.Task)
		if err != nil {
			t.Error(err)
			return
		}
		arg, err := root.Smalloc(tag, sshSchema.Size())
		if err != nil {
			t.Error(err)
			return
		}
		// A resident payload a sloppy codec would clobber.
		if err := fStr.Store(root, arg, []byte("resident")); err != nil {
			t.Error(err)
			return
		}
		before := make([]byte, sshSchema.Size())
		root.Read(arg, before)

		// The old storeArgStr sites capped sign at 256 and S/Key at 128;
		// the codec enforces the same caps with a typed error now.
		for _, c := range []struct {
			name string
			max  int
		}{
			{"sign", sshSignCap},
			{"skey", sshSKeyCap},
			{"password", sshStrCap},
		} {
			huge := make([]byte, c.max+1)
			err := fStr.StoreMax(root, arg, huge, c.max)
			var abe *gateabi.ArgBoundsError
			if !errors.As(err, &abe) || !errors.Is(err, gateabi.ErrArgBounds) {
				t.Errorf("%s: oversized store error = %v, want *ArgBoundsError", c.name, err)
			}
			if abe != nil && abe.Cap != c.max {
				t.Errorf("%s: error cap = %d, want %d", c.name, abe.Cap, c.max)
			}
		}
		after := make([]byte, sshSchema.Size())
		root.Read(arg, after)
		if !bytes.Equal(before, after) {
			t.Error("a rejected store modified the block — the silent-cap behavior is back")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
