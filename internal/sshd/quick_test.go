// Property-based tests over the sshd substrate's codecs and the S/Key
// hash-chain invariants, plus failure injection against the frame reader.

package sshd

import (
	"bytes"
	"encoding/hex"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripProperty: any (type, payload) pair survives the frame
// codec unchanged.
func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(typ byte, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			return false
		}
		gotTyp, gotPayload, err := ReadFrame(&buf)
		return err == nil && gotTyp == typ && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFrameTruncationProperty: truncating a valid frame at any byte
// offset yields an error, never a short success or a panic.
func TestFrameTruncationProperty(t *testing.T) {
	prop := func(typ byte, payload []byte, cutSeed uint16) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			return false
		}
		whole := buf.Bytes()
		if len(whole) < 2 {
			return true
		}
		cut := 1 + int(cutSeed)%(len(whole)-1)
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		return err != nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFrameOversizeLengthRejected: a frame header declaring more than the
// 32 MiB cap is refused before any allocation of that size.
func TestFrameOversizeLengthRejected(t *testing.T) {
	hdr := []byte{MsgScpData, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("4 GiB frame length accepted")
	}
	// Just over the cap.
	hdr = []byte{MsgScpData, 0x02, 0x00, 0x00, 0x01}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("32MiB+1 frame length accepted")
	}
	// A huge length with io.MultiReader of garbage must also fail without
	// reading the garbage to completion.
	hdr = []byte{MsgScpData, 0xFF, 0x00, 0x00, 0x00}
	r := io.MultiReader(bytes.NewReader(hdr), neverEOF{})
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("oversized frame read to completion")
	}
}

// neverEOF yields zero bytes forever; if ReadFrame tried to honor a bogus
// 4 GB length it would hang rather than fail, so the cap must fire first.
type neverEOF struct{}

func (neverEOF) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0xEE
	}
	return len(p), nil
}

// TestShadowRoundTripProperty: Format/Parse round-trips arbitrary shadow
// databases whose fields avoid the separator characters.
func TestShadowRoundTripProperty(t *testing.T) {
	sanitize := func(s string, fallback string) string {
		s = strings.Map(func(r rune) rune {
			if r == ':' || r == '\n' || r < 0x20 || r > 0x7E {
				return -1
			}
			return r
		}, s)
		if s == "" {
			return fallback
		}
		return s
	}
	prop := func(names []string, uidSeeds []uint16) bool {
		var entries []ShadowEntry
		for i, n := range names {
			uid := 1000
			if i < len(uidSeeds) {
				uid = int(uidSeeds[i])
			}
			entries = append(entries, ShadowEntry{
				Name: sanitize(n, "u"),
				Salt: "s",
				Hash: HashPassword("s", n),
				UID:  uid,
				Home: "/home/" + sanitize(n, "u"),
			})
		}
		got, err := ParseShadow(FormatShadow(entries))
		if err != nil {
			return false
		}
		if len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestShadowParseErrors: malformed shadow lines are rejected.
func TestShadowParseErrors(t *testing.T) {
	for _, body := range []string{
		"name:salt:hash:uid",          // too few fields
		"name:salt:hash:notnum:/home", // non-numeric uid
		"a:b:c:1:/h:extra",            // too many fields
	} {
		if _, err := ParseShadow([]byte(body)); err == nil {
			t.Errorf("ParseShadow(%q) accepted", body)
		}
	}
}

// TestSKeyChainProperty: the defining chain property hash^n(seed) =
// hash(hash^(n-1)(seed)), and walking the chain backwards authenticates
// at every step while any other response fails.
func TestSKeyChainProperty(t *testing.T) {
	prop := func(seed []byte, nSeed uint8) bool {
		if len(seed) == 0 {
			seed = []byte{0}
		}
		n := 2 + int(nSeed)%10
		for i := 1; i <= n; i++ {
			if !bytes.Equal(SKeyChain(seed, i), SKeyHash(SKeyChain(seed, i-1))) {
				return false
			}
		}
		e := SKeyEntry{Name: "u", N: n, Last: SKeyChain(seed, n)}
		// Descend the whole chain.
		for i := n - 1; i >= 1; i-- {
			if !VerifySKey(&e, SKeyChain(seed, i)) {
				return false
			}
			if e.N != i {
				return false
			}
		}
		// Chain exhausted: even the correct seed no longer verifies.
		return !VerifySKey(&e, seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSKeyWrongResponseProperty: random non-chain responses never verify
// and never mutate the entry.
func TestSKeyWrongResponseProperty(t *testing.T) {
	seed := []byte("chain seed")
	prop := func(garbage []byte) bool {
		e := SKeyEntry{Name: "u", N: 5, Last: SKeyChain(seed, 5)}
		if bytes.Equal(garbage, SKeyChain(seed, 4)) {
			return true // astronomically unlikely; skip
		}
		before := e
		if VerifySKey(&e, garbage) {
			return false
		}
		return e.N == before.N && bytes.Equal(e.Last, before.Last)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSKeyDatabaseRoundTripProperty: Format/Parse round-trips arbitrary
// S/Key databases.
func TestSKeyDatabaseRoundTripProperty(t *testing.T) {
	prop := func(seeds [][]byte, nSeeds []uint8) bool {
		rng := rand.New(rand.NewSource(int64(len(seeds))))
		var entries []SKeyEntry
		for i, s := range seeds {
			if len(s) == 0 {
				s = []byte{1}
			}
			n := 2
			if i < len(nSeeds) {
				n = 2 + int(nSeeds[i])%30
			}
			entries = append(entries, SKeyEntry{
				Name: "user" + hex.EncodeToString([]byte{byte(rng.Intn(256))}),
				N:    n,
				Last: SKeyChain(s, n),
			})
		}
		got, err := ParseSKey(FormatSKey(entries))
		if err != nil {
			return false
		}
		if len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i].Name != entries[i].Name || got[i].N != entries[i].N || !bytes.Equal(got[i].Last, entries[i].Last) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHashPasswordSensitivity: the hash depends on both salt and password.
func TestHashPasswordSensitivity(t *testing.T) {
	prop := func(salt, pw string) bool {
		h := HashPassword(salt, pw)
		return h == HashPassword(salt, pw) &&
			h != HashPassword(salt+"x", pw) &&
			h != HashPassword(salt, pw+"x")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
