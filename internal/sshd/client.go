// The SSH client used by tests, benchmarks, and the examples.

package sshd

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"

	"wedge/internal/minissl"
)

// Client drives the MINISSH protocol against any of the server variants.
type Client struct {
	conn    io.ReadWriter
	HostPub *rsa.PublicKey // learned from the server, verified if Pinned
	Pinned  *rsa.PublicKey // expected host key, nil to trust first use
	Nonce   []byte         // session nonce, signed by the host key
	UID     int            // granted uid after successful auth
}

// NewClient performs the version/hostkey/signature exchange.
func NewClient(conn io.ReadWriter, pinned *rsa.PublicKey) (*Client, error) {
	c := &Client{conn: conn, Pinned: pinned}

	banner, err := ExpectFrame(conn, MsgVersion)
	if err != nil {
		return nil, err
	}
	if string(banner) != Version {
		return nil, fmt.Errorf("%w: banner %q", ErrProtocol, banner)
	}
	keyBody, err := ExpectFrame(conn, MsgHostKey)
	if err != nil {
		return nil, err
	}
	pub, err := minissl.UnmarshalPublicKey(keyBody)
	if err != nil {
		return nil, err
	}
	if pinned != nil && (pub.N.Cmp(pinned.N) != 0 || pub.E != pinned.E) {
		return nil, fmt.Errorf("sshd: host key mismatch")
	}
	c.HostPub = pub

	// Host authentication: the server proves possession of the host key
	// by signing our nonce.
	c.Nonce = make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, c.Nonce); err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, MsgSignReq, c.Nonce); err != nil {
		return nil, err
	}
	sig, err := ExpectFrame(conn, MsgSignResp)
	if err != nil {
		return nil, err
	}
	if err := VerifyHash(pub, c.Nonce, sig); err != nil {
		return nil, fmt.Errorf("sshd: host signature invalid: %w", err)
	}
	return c, nil
}

// AuthPassword attempts password authentication.
func (c *Client) AuthPassword(user, password string) error {
	if err := WriteFrame(c.conn, MsgAuthPass, []byte(user+"\x00"+password)); err != nil {
		return err
	}
	return c.readAuthResult()
}

// AuthPubkey attempts public-key authentication: the client signs its
// session nonce with its user key.
func (c *Client) AuthPubkey(user string, key *rsa.PrivateKey) error {
	sig, err := SignHash(key, append([]byte("pubkey:"+user+":"), c.Nonce...))
	if err != nil {
		return err
	}
	if err := WriteFrame(c.conn, MsgAuthPub, append([]byte(user+"\x00"), sig...)); err != nil {
		return err
	}
	return c.readAuthResult()
}

// AuthSKey performs S/Key challenge-response with the chain seed.
func (c *Client) AuthSKey(user string, seed []byte) error {
	chal, err := c.SKeyChallenge(user)
	if err != nil {
		return err
	}
	// Respond with hash^(n-1)(seed).
	return c.SKeyRespond(SKeyChain(seed, chal-1))
}

// SKeyChallenge requests the S/Key challenge for a user, returning the
// chain position n. Exposed separately so the username-probe tests can
// observe the challenge behaviour directly.
func (c *Client) SKeyChallenge(user string) (int, error) {
	if err := WriteFrame(c.conn, MsgAuthSKey, []byte(user)); err != nil {
		return 0, err
	}
	typ, body, err := ReadFrame(c.conn)
	if err != nil {
		return 0, err
	}
	switch typ {
	case MsgSKeyChal:
		if len(body) != 4 {
			return 0, ErrProtocol
		}
		return int(body[0])<<24 | int(body[1])<<16 | int(body[2])<<8 | int(body[3]), nil
	case MsgAuthFail:
		return 0, fmt.Errorf("%w: %s", ErrAuthFailed, body)
	}
	return 0, ErrProtocol
}

// SKeyRespond sends the chain response.
func (c *Client) SKeyRespond(resp []byte) error {
	if err := WriteFrame(c.conn, MsgSKeyReply, resp); err != nil {
		return err
	}
	return c.readAuthResult()
}

func (c *Client) readAuthResult() error {
	typ, body, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	switch typ {
	case MsgAuthOK:
		fmt.Sscanf(string(body), "uid=%d", &c.UID)
		return nil
	case MsgAuthFail:
		return fmt.Errorf("%w: %s", ErrAuthFailed, body)
	}
	return ErrProtocol
}

// ScpPut uploads a file into the authenticated user's home directory.
func (c *Client) ScpPut(name string, data []byte) error {
	if err := WriteFrame(c.conn, MsgScpPut, []byte(name)); err != nil {
		return err
	}
	if err := WriteFrame(c.conn, MsgScpData, data); err != nil {
		return err
	}
	typ, body, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if typ != MsgScpOK {
		return fmt.Errorf("%w: scp: %s", ErrProtocol, body)
	}
	return nil
}

// Exit ends the session.
func (c *Client) Exit() error {
	return WriteFrame(c.conn, MsgExit, nil)
}
