// The pooled Wedge sshd: the Figure 6 partitioning with every
// per-connection sthread creation amortized away by a gatepool, the same
// treatment httpd.PooledServer gives the SSL server.
//
// Each pool slot owns a private argument tag and five long-lived recycled
// sthreads instantiated against it:
//
//   - "worker": the unprivileged network-facing compartment, created
//     confined (WorkerUID, chrooted to /var/empty). One invocation serves
//     one connection; the connection's descriptor arrives as a
//     per-invocation argument descriptor (CallFD) and is revoked when the
//     invocation completes.
//   - "sign", "auth_password", "auth_pubkey", "auth_skey": the Figure 6
//     callgates, recycled. They hold exactly the memory their one-shot
//     counterparts hold (host-key tag for sign, nothing but the slot's
//     argument tag for the auth gates) and run with the creator's disk
//     credentials, as §3.3 requires.
//
// Per-connection state that the one-shot build kept in per-connection Go
// closures — the pubkey nonce, the pending S/Key user, and the worker
// handle the auth gates promote — moves into a per-invocation connection
// record, demultiplexed by the conn id in the slot's argument block and
// pinned to the slot (state.lease.Arg must equal the gate's argument
// base), so nothing carries over between principals on a reused slot.
// Successful authentication promotes the slot's recycled worker exactly
// as Figure 6 promotes a fresh one; the server demotes it back to
// WorkerUID//var/empty before the slot can be released, so a recycled
// worker never starts a connection with a previous principal's identity.

package sshd

import (
	"fmt"
	"wedge/internal/gatepool"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// PooledWedge serves SSH connections with zero sthread creations.
type PooledWedge struct {
	Stats WedgeStats

	root *sthread.Sthread
	cfg  ServerConfig

	hostTag  tags.Tag
	hostAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr
	optTag   tags.Tag
	optAddr  vm.Addr

	pool  *gatepool.Pool
	hooks WedgeHooks

	conns gatepool.ConnTable[*sshPoolConn]
}

// sshPoolConn is one connection's gate-side state: what the one-shot
// build captured in per-connection closures.
type sshPoolConn struct {
	lease  *gatepool.Lease
	fd     int
	worker *sthread.Sthread // the slot's recycled worker, for promotion

	nonce       []byte
	pendingSKey string
}

// NewPooledWedge builds the pooled server with the given number of slots
// (httpd.DefaultPoolSlots-style sizing is the caller's choice; slots <= 0
// means one slot per host core pair is NOT assumed here — gatepool's
// default of 1 applies). SetupUsers must have provisioned /var/empty.
func NewPooledWedge(root *sthread.Sthread, cfg ServerConfig, slots int, hooks WedgeHooks) (*PooledWedge, error) {
	w := &PooledWedge{root: root, cfg: cfg, hooks: hooks}
	var err error
	if w.hostTag, w.hostAddr, err = placeSSHBlob(root, minissl.MarshalPrivateKey(cfg.HostKey)); err != nil {
		return nil, err
	}
	if w.pubTag, w.pubAddr, err = placeSSHBlob(root, minissl.MarshalPublicKey(&cfg.HostKey.PublicKey)); err != nil {
		releaseTags(root, w.hostTag)
		return nil, err
	}
	if w.optTag, w.optAddr, err = placeSSHBlob(root, []byte(cfg.Options)); err != nil {
		releaseTags(root, w.hostTag, w.pubTag)
		return nil, err
	}
	stats := &w.Stats
	w.pool, err = gatepool.New(root, gatepool.Config{
		Name:    "sshd",
		Slots:   slots,
		ArgSize: sshArgSize,
		Gates: []gatepool.GateDef{
			{
				Name: "worker",
				SC: policy.New().
					MustMemAdd(w.pubTag, vm.PermRead).
					MustMemAdd(w.optTag, vm.PermRead).
					SetUID(WorkerUID).
					SetRoot("/var/empty"),
				Entry: w.workerEntry,
			},
			{
				Name:    "sign",
				SC:      policy.New().MustMemAdd(w.hostTag, vm.PermRead),
				Entry:   signGateEntry,
				Trusted: w.hostAddr,
			},
			{
				Name: "auth_password",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					st := w.stateFor(g, arg)
					if st == nil {
						return 0
					}
					return passwordAuth(g, arg, func() *sthread.Sthread { return st.worker }, stats)
				},
			},
			{
				Name: "auth_pubkey",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					st := w.stateFor(g, arg)
					if st == nil {
						return 0
					}
					return pubkeyAuth(g, arg, func() *sthread.Sthread { return st.worker }, &st.nonce, stats)
				},
			},
			{
				Name: "auth_skey",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					st := w.stateFor(g, arg)
					if st == nil {
						return 0
					}
					return skeyAuth(g, arg, func() *sthread.Sthread { return st.worker }, &st.pendingSKey, stats)
				},
			},
		},
	})
	if err != nil {
		// A failed pool build (e.g. /var/empty not provisioned, so the
		// confined worker cannot be created) must not strand the blob
		// tags.
		releaseTags(root, w.hostTag, w.pubTag, w.optTag)
		return nil, err
	}
	return w, nil
}

// Close drains the pool and retires every slot.
func (w *PooledWedge) Close() error { return w.pool.Close() }

// Resize grows or shrinks the slot pool (see gatepool.Pool.Resize).
// Freshly grown slots get their own confined recycled workers.
func (w *PooledWedge) Resize(slots int) error { return w.pool.Resize(slots) }

// PoolStats snapshots the scheduler counters.
func (w *PooledWedge) PoolStats() gatepool.Stats { return w.pool.Stats() }

// stateFor demultiplexes gate-side connection state by the conn id in
// the argument block, applying the slot pin gatepool.ConnTable requires:
// the state must anchor at exactly this invocation's argument block, so
// a forged id cannot reach another slot's connection.
func (w *PooledWedge) stateFor(g *sthread.Sthread, arg vm.Addr) *sshPoolConn {
	st, ok := w.conns.Get(g.Load64(arg + sshArgConnID))
	if !ok || st.lease.Arg != arg {
		return nil
	}
	return st
}

// ServeConn handles one connection, sharding by the peer's network
// address. It blocks while every slot is leased — the pool's admission
// control.
func (w *PooledWedge) ServeConn(conn *netsim.Conn) error {
	return w.ServeConnAs(conn, conn.RemoteAddr())
}

// ServeConnAs is ServeConn with an explicit principal.
func (w *PooledWedge) ServeConnAs(conn *netsim.Conn, principal string) error {
	root := w.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	lease, err := w.pool.Acquire(principal)
	if err != nil {
		return fmt.Errorf("sshd pooled: acquire: %w", err)
	}
	defer lease.Release()

	st := &sshPoolConn{lease: lease, fd: fd, worker: lease.Gate("worker").Sthread()}
	// Demote runs before Release (deferred later, so it unwinds first):
	// whatever this connection's authentication did to the recycled
	// worker's identity is undone before another principal can lease the
	// slot — and before the next connection of the *same* principal, too:
	// an authenticated uid is per-connection state, not slot affinity.
	defer w.demote(st.worker)

	connID := w.conns.Put(st)
	defer w.conns.Delete(connID)

	root.Store64(lease.Arg+sshArgConnID, connID)
	root.Store64(lease.Arg+sshArgPoolFD, uint64(fd))

	// One recycled-worker invocation serves the whole connection; no
	// sthread is created on this path.
	_, err = lease.CallFD("worker", root, lease.Arg, fd, kernel.FDRW)
	if err != nil {
		return fmt.Errorf("sshd pooled: worker: %w", err)
	}
	return nil
}

// demote strips any promotion the auth gates performed on the slot's
// recycled worker, restoring the confined identity it was created with.
func (w *PooledWedge) demote(worker *sthread.Sthread) {
	w.root.Task.ChrootOn(worker.Task, "/var/empty")
	w.root.Task.SetUIDOn(worker.Task, WorkerUID)
}

// workerEntry is the per-slot recycled worker: one invocation per
// connection, running with the slot's argument tag, the public key and
// options, and the per-invocation connection descriptor — nothing else.
func (w *PooledWedge) workerEntry(s *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	st := w.stateFor(s, arg)
	if st == nil {
		return 0
	}
	fd := int(s.Load64(arg + sshArgPoolFD))
	if st.fd != fd {
		return 0
	}
	if w.hooks.Worker != nil {
		w.hooks.Worker(s, &WedgeConnContext{
			FD:          fd,
			HostKeyAddr: w.hostAddr,
			ArgAddr:     arg,
		})
	}
	lease := st.lease
	viaPool := func(name string) authCall {
		return func(s *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
			return lease.Call(name, s, arg)
		}
	}
	return sshWorkerBody(s, fd, arg, &st.nonce, w.pubAddr, &w.Stats,
		viaPool("sign"), viaPool("auth_password"), viaPool("auth_pubkey"), viaPool("auth_skey"))
}
