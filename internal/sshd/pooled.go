// The pooled Wedge sshd: the Figure 6 partitioning with every
// per-connection sthread creation amortized away by a gatepool, the same
// treatment httpd.PooledServer gives the SSL server.
//
// The server is a serve.App descriptor on the shared wedge-server runtime
// (internal/serve), which owns the pool lifecycle, accept loop, drain,
// admission control, and conn-id demux. This file contributes the five
// gates each slot carries:
//
//   - "worker": the unprivileged network-facing compartment, created
//     confined (WorkerUID, chrooted to /var/empty). One invocation serves
//     one connection; the connection's descriptor arrives as a
//     per-invocation argument descriptor (CallFD) and is revoked when the
//     invocation completes.
//   - "sign", "auth_password", "auth_pubkey", "auth_skey": the Figure 6
//     callgates, recycled. They hold exactly the memory their one-shot
//     counterparts hold (host-key tag for sign, nothing but the slot's
//     argument tag for the auth gates) and run with the creator's disk
//     credentials, as §3.3 requires.
//
// Per-connection state that the one-shot build kept in per-connection Go
// closures — the pubkey nonce, the pending S/Key user, and the worker
// handle the auth gates promote — lives in the runtime's per-invocation
// connection record, demultiplexed by the conn id in the slot's argument
// block and pinned to the slot (serve.Runtime.Lookup), so nothing carries
// over between principals on a reused slot. Successful authentication
// promotes the slot's recycled worker exactly as Figure 6 promotes a
// fresh one; the EndConn hook demotes it back to WorkerUID//var/empty
// before the slot can be released, so a recycled worker never starts a
// connection with a previous principal's identity.

package sshd

import (
	"wedge/internal/gatepool"
	"wedge/internal/minissl"
	"wedge/internal/policy"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// PooledWedge serves SSH connections with zero sthread creations.
type PooledWedge struct {
	Stats WedgeStats

	root *sthread.Sthread
	cfg  ServerConfig

	hostTag  tags.Tag
	hostAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr
	optTag   tags.Tag
	optAddr  vm.Addr

	hooks WedgeHooks

	// The embedded runtime owns the pool, the accept loop (Serve),
	// lifecycle (Drain/Undrain/Close), admission control (SetQueue),
	// sizing (Resize/SetAutoSlots — freshly grown slots get their own
	// confined recycled workers), observability (Snapshot/PoolStats),
	// and the conn-id demux (Lookup) — all promoted onto the server.
	*serve.Runtime[sshPoolConn]
}

// sshPoolConn is one connection's gate-side state: what the one-shot
// build captured in per-connection closures.
type sshPoolConn struct {
	nonce       []byte
	pendingSKey string
}

// poolWorker resolves a slot's recycled worker sthread through the lease
// at call time. Never cache the result across gate invocations: a
// batched pool can migrate a connection's undispatched ring entry to a
// different slot, and the lease is re-pointed when it does.
func poolWorker(l *gatepool.Lease, name string) func() *sthread.Sthread {
	return func() *sthread.Sthread { return l.Gate(name).Sthread() }
}

// NewPooledWedge builds the pooled server with the given number of slots
// (serve.DefaultSlots if slots <= 0). SetupUsers must have provisioned
// /var/empty.
func NewPooledWedge(root *sthread.Sthread, cfg ServerConfig, slots int, hooks WedgeHooks) (*PooledWedge, error) {
	w := &PooledWedge{root: root, cfg: cfg, hooks: hooks}
	var err error
	if w.hostTag, w.hostAddr, err = placeSSHBlob(root, minissl.MarshalPrivateKey(cfg.HostKey)); err != nil {
		return nil, err
	}
	if w.pubTag, w.pubAddr, err = placeSSHBlob(root, minissl.MarshalPublicKey(&cfg.HostKey.PublicKey)); err != nil {
		releaseTags(root, w.hostTag)
		return nil, err
	}
	if w.optTag, w.optAddr, err = placeSSHBlob(root, []byte(cfg.Options)); err != nil {
		releaseTags(root, w.hostTag, w.pubTag)
		return nil, err
	}
	stats := &w.Stats
	w.Runtime, err = serve.New(root, serve.App[sshPoolConn]{
		Name:   "sshd",
		Slots:  slots,
		Schema: sshSchema,
		Worker: "worker",
		Gates: []gatepool.GateDef{
			{
				Name: "worker",
				SC: policy.New().
					MustMemAdd(w.pubTag, vm.PermRead).
					MustMemAdd(w.optTag, vm.PermRead).
					SetUID(WorkerUID).
					SetRoot("/var/empty"),
				Entry: w.workerEntry,
			},
			{
				Name:    "sign",
				SC:      policy.New().MustMemAdd(w.hostTag, vm.PermRead),
				Entry:   signGateEntry,
				Trusted: w.hostAddr,
			},
			{
				Name: "auth_password",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := w.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return passwordAuth(g, arg, poolWorker(c.Lease, "worker"), stats)
				},
			},
			{
				Name: "auth_pubkey",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := w.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return pubkeyAuth(g, arg, poolWorker(c.Lease, "worker"), &c.State.nonce, stats)
				},
			},
			{
				Name: "auth_skey",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := w.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return skeyAuth(g, arg, poolWorker(c.Lease, "worker"), &c.State.pendingSKey, stats)
				},
			},
		},
		// EndConn runs before the slot is released — and before the next
		// connection of the *same* principal, too: whatever this
		// connection's authentication did to the recycled worker's
		// identity is undone here, because an authenticated uid is
		// per-connection state, not slot affinity. The worker sthread is
		// resolved through the lease at every use (not cached at
		// InitConn): a batched pool may migrate the connection's ring
		// entry to another slot before dispatch, and only the lease
		// tracks the slot that actually served it.
		EndConn: func(c *serve.Conn[sshPoolConn]) { demoteSSHWorker(root, poolWorker(c.Lease, "worker")()) },
	})
	if err != nil {
		// A failed runtime build (e.g. /var/empty not provisioned, so
		// the confined worker cannot be created) must not strand the
		// blob tags.
		releaseTags(root, w.hostTag, w.pubTag, w.optTag)
		return nil, err
	}
	return w, nil
}

// workerEntry is the per-slot recycled worker: one invocation per
// connection, running with the slot's argument tag, the public key and
// options, and the per-invocation connection descriptor — nothing else.
func (w *PooledWedge) workerEntry(s *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	c := w.Lookup(s, arg)
	if c == nil {
		return 0
	}
	if w.hooks.Worker != nil {
		w.hooks.Worker(s, &WedgeConnContext{
			FD:          c.FD,
			HostKeyAddr: w.hostAddr,
			ArgAddr:     arg,
		})
	}
	lease := c.Lease
	viaPool := func(name string) authCall {
		return func(s *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
			return lease.Call(name, s, arg)
		}
	}
	return sshWorkerBody(s, c.FD, arg, &c.State.nonce, w.pubAddr, &w.Stats,
		viaPool("sign"), viaPool("auth_password"), viaPool("auth_pubkey"), viaPool("auth_skey"))
}
