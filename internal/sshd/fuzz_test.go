package sshd

import (
	"bytes"
	"testing"
)

// FuzzSSHFrame fuzzes the MINISSH packet framing — the first parsing any
// server variant applies to untrusted bytes — plus the S/Key challenge
// encoding layered on it. Properties: ReadFrame never panics and never
// returns a frame larger than its cap; a frame that parses re-marshals
// byte-identically (WriteFrame∘ReadFrame is the identity on valid
// input); and the 4-byte S/Key challenge encoding round-trips through
// the client's decoder for any chain position a frame can carry.
func FuzzSSHFrame(f *testing.F) {
	frame := func(typ byte, payload string) []byte {
		var b bytes.Buffer
		WriteFrame(&b, typ, []byte(payload))
		return b.Bytes()
	}
	f.Add(frame(MsgVersion, Version))
	f.Add(frame(MsgAuthPass, "alice\x00sesame"))
	f.Add(frame(MsgAuthSKey, "alice"))
	f.Add(frame(MsgSKeyChal, "\x00\x00\x00\x63"))
	f.Add(frame(MsgSKeyReply, "0123456789abcdef0123456789abcdef"))
	f.Add(frame(MsgExit, ""))
	f.Add([]byte{MsgAuthPass, 0xff, 0xff, 0xff, 0xff}) // length overflow
	f.Add([]byte{MsgHostKey, 0, 0, 0, 4, 'a'})         // truncated payload
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input must fail cleanly, which it did
		}
		if len(payload) > 32<<20 {
			t.Fatalf("frame cap violated: %d-byte payload accepted", len(payload))
		}
		// Round-trip: re-marshalling the parsed frame reproduces the
		// consumed prefix of the input exactly.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("frame round-trip diverged:\n in: %q\nout: %q", data[:out.Len()], out.Bytes())
		}
		// ExpectFrame agrees with ReadFrame on the same bytes.
		if p2, err := ExpectFrame(bytes.NewReader(data), typ); err != nil || !bytes.Equal(p2, payload) {
			t.Fatalf("ExpectFrame(%d) = %q, %v; want %q", typ, p2, err, payload)
		}

		// S/Key challenge framing: any 4-byte challenge body decodes to
		// the chain position whose big-endian encoding it is, exactly as
		// the client decodes it.
		if typ == MsgSKeyChal && len(payload) == 4 {
			n := int(payload[0])<<24 | int(payload[1])<<16 | int(payload[2])<<8 | int(payload[3])
			enc := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
			if !bytes.Equal(enc, payload) {
				t.Fatalf("skey challenge %d re-encodes to %v, was %v", n, enc, payload)
			}
		}
	})
}

// FuzzSKeyDB fuzzes the S/Key database parser the monitor gates run with
// full privileges against /etc/skeykeys: ParseSKey never panics, and a
// database that parses survives a Format/Parse round-trip with every
// field intact — the property the verify gate's step-down rewrite
// depends on.
func FuzzSKeyDB(f *testing.F) {
	f.Add([]byte("alice:99:aabbcc\n"))
	f.Add([]byte("alice:99:aabbcc\nbob:1:00\n"))
	f.Add([]byte("alice:-1:zz\n"))
	f.Add([]byte("alice:99\n"))
	f.Add([]byte(":::\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ParseSKey(data)
		if err != nil {
			return // malformed input must fail cleanly, which it did
		}
		again, err := ParseSKey(FormatSKey(entries))
		if err != nil {
			t.Fatalf("formatted database does not re-parse: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round-trip changed entry count: %d -> %d", len(entries), len(again))
		}
		for i := range entries {
			if again[i].Name != entries[i].Name || again[i].N != entries[i].N ||
				!bytes.Equal(again[i].Last, entries[i].Last) {
				t.Fatalf("entry %d diverged: %+v -> %+v", i, entries[i], again[i])
			}
		}
	})
}
