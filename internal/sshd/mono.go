// The monolithic baseline: OpenSSH 3.1p1 before privilege separation. The
// entire session — host key operations, shadow lookups, PAM-style library
// calls, network parsing — runs in one root-privileged compartment. The
// PAM scratch-memory weakness ([8] in the paper) is reproduced literally:
// the library leaves the cleartext password in unscrubbed heap memory that
// any later exploit of the same process can read.

package sshd

import (
	"fmt"
	"strings"
	"sync/atomic"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

// MonoStats counts monolithic server activity.
type MonoStats struct {
	Logins atomic.Uint64
	Fails  atomic.Uint64
}

// Monolithic is the unpartitioned server.
type Monolithic struct {
	Stats MonoStats

	root  *sthread.Sthread
	cfg   ServerConfig
	hooks MonoHooks

	// lastScratch records where the most recent PAM-style scratch
	// allocation landed — the heap-disclosure stand-in that lets an
	// exploit locate the residue.
	lastScratch vm.Addr
	scratchLen  int
}

// MonoHooks injects exploit code into the (single) compartment.
type MonoHooks struct {
	// PostAuth runs after an authentication attempt, with the compartment
	// sthread and the scratch location of the PAM call.
	PostAuth func(s *sthread.Sthread, scratch vm.Addr, n int)
}

// NewMonolithic builds the baseline server in the root sthread.
func NewMonolithic(root *sthread.Sthread, cfg ServerConfig, hooks MonoHooks) *Monolithic {
	return &Monolithic{root: root, cfg: cfg, hooks: hooks}
}

// pamCheck models the PAM library conversation of [8]: it copies the
// password into heap scratch, validates it against the shadow entry, and
// returns without scrubbing the scratch. In this monolithic server the
// scratch lives in the same address space as all network-facing code.
func pamCheck(s *sthread.Sthread, entry ShadowEntry, password string) (bool, vm.Addr, int) {
	scratch, err := s.Malloc(len(password) + 1)
	if err != nil {
		return false, 0, 0
	}
	s.WriteString(scratch, password)
	ok := HashPassword(entry.Salt, password) == entry.Hash
	// BUG(reproduced): scratch is neither scrubbed nor freed before
	// return, exactly the OpenSSH/PAM weakness the paper cites.
	return ok, scratch, len(password)
}

// readShadow loads and parses /etc/shadow with the compartment's creds.
func readShadow(s *sthread.Sthread) ([]ShadowEntry, error) {
	data, err := s.Task.Kernel().FS.ReadFile(s.Task.Cred(), s.Task.Root, "/etc/shadow")
	if err != nil {
		return nil, err
	}
	return ParseShadow(data)
}

func readSKeyDB(s *sthread.Sthread) ([]SKeyEntry, error) {
	data, err := s.Task.Kernel().FS.ReadFile(s.Task.Cred(), s.Task.Root, "/etc/skeykeys")
	if err != nil {
		return nil, err
	}
	return ParseSKey(data)
}

func writeSKeyDB(s *sthread.Sthread, entries []SKeyEntry) error {
	return s.Task.Kernel().FS.WriteFile(s.Task.Cred(), s.Task.Root, "/etc/skeykeys",
		FormatSKey(entries), 0o600)
}

// ServeConn handles one session in the root compartment.
func (m *Monolithic) ServeConn(conn *netsim.Conn) error {
	s := m.root
	fd := s.Task.InstallFD(conn, kernel.FDRW)
	defer s.Task.CloseFD(fd)
	stream := fdStream{s, fd}

	if err := WriteFrame(stream, MsgVersion, []byte(Version)); err != nil {
		return err
	}
	if err := WriteFrame(stream, MsgHostKey, minissl.MarshalPublicKey(&m.cfg.HostKey.PublicKey)); err != nil {
		return err
	}
	nonce, err := ExpectFrame(stream, MsgSignReq)
	if err != nil {
		return err
	}
	sig, err := SignHash(m.cfg.HostKey, nonce)
	if err != nil {
		return err
	}
	if err := WriteFrame(stream, MsgSignResp, sig); err != nil {
		return err
	}

	// Authentication loop: everything checked in-process.
	authedUID := -1
	authedHome := ""
	for authedUID < 0 {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return err
		}
		switch typ {
		case MsgAuthPass:
			user, pass, ok := strings.Cut(string(body), "\x00")
			if !ok {
				return ErrProtocol
			}
			entries, err := readShadow(s)
			if err != nil {
				return err
			}
			entry, found := LookupShadow(entries, user)
			var passOK bool
			if found {
				passOK, m.lastScratch, m.scratchLen = pamCheck(s, entry, pass)
			}
			if m.hooks.PostAuth != nil {
				m.hooks.PostAuth(s, m.lastScratch, m.scratchLen)
			}
			if found && passOK {
				authedUID, authedHome = entry.UID, entry.Home
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", entry.UID)))
			} else {
				m.Stats.Fails.Add(1)
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthPub:
			user, sigBytes, ok := strings.Cut(string(body), "\x00")
			if !ok {
				return ErrProtocol
			}
			entries, _ := readShadow(s)
			entry, found := LookupShadow(entries, user)
			if found {
				keyData, err := s.Task.Kernel().FS.ReadFile(s.Task.Cred(), s.Task.Root,
					entry.Home+"/.ssh/authorized_keys")
				if err == nil {
					pub, err := minissl.UnmarshalPublicKey(keyData)
					if err == nil && VerifyHash(pub, append([]byte("pubkey:"+user+":"), nonce...), []byte(sigBytes)) == nil {
						authedUID, authedHome = entry.UID, entry.Home
						WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", entry.UID)))
						continue
					}
				}
			}
			m.Stats.Fails.Add(1)
			WriteFrame(stream, MsgAuthFail, []byte("permission denied"))

		case MsgAuthSKey:
			// The pre-fix behaviour ([14]): reveal whether the user
			// exists by failing the challenge for unknown names.
			user := string(body)
			db, err := readSKeyDB(s)
			if err != nil {
				return err
			}
			idx := -1
			for i := range db {
				if db[i].Name == user {
					idx = i
					break
				}
			}
			if idx < 0 {
				m.Stats.Fails.Add(1)
				WriteFrame(stream, MsgAuthFail, []byte("no such user")) // the leak
				continue
			}
			chal := []byte{byte(db[idx].N >> 24), byte(db[idx].N >> 16), byte(db[idx].N >> 8), byte(db[idx].N)}
			WriteFrame(stream, MsgSKeyChal, chal)
			resp, err := ExpectFrame(stream, MsgSKeyReply)
			if err != nil {
				return err
			}
			if VerifySKey(&db[idx], resp) {
				writeSKeyDB(s, db)
				entries, _ := readShadow(s)
				if entry, found := LookupShadow(entries, user); found {
					authedUID, authedHome = entry.UID, entry.Home
					WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", entry.UID)))
					continue
				}
			}
			m.Stats.Fails.Add(1)
			WriteFrame(stream, MsgAuthFail, []byte("permission denied"))

		case MsgExit:
			return nil
		default:
			return ErrProtocol
		}
	}
	m.Stats.Logins.Add(1)
	return serveSession(s, stream, authedHome, authedUID)
}

// serveSession handles post-auth commands (scp uploads) until MsgExit.
// The monolithic and privsep servers write with explicit credentials; the
// Wedge worker has been promoted and uses its own.
func serveSession(s *sthread.Sthread, stream fdStream, home string, uid int) error {
	fs := s.Task.Kernel().FS
	for {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return err
		}
		switch typ {
		case MsgScpPut:
			name := string(body)
			if strings.ContainsAny(name, "/\x00") {
				WriteFrame(stream, MsgAuthFail, []byte("bad name"))
				continue
			}
			data, err := ExpectFrame(stream, MsgScpData)
			if err != nil {
				return err
			}
			if err := fs.WriteFile(vfs.Cred{UID: uid}, s.Task.Root, home+"/"+name, data, 0o644); err != nil {
				WriteFrame(stream, MsgAuthFail, []byte(err.Error()))
				continue
			}
			WriteFrame(stream, MsgScpOK, nil)
		case MsgExit:
			return nil
		default:
			return ErrProtocol
		}
	}
}

// fdStream adapts a compartment descriptor to io.ReadWriter.
type fdStream struct {
	s  *sthread.Sthread
	fd int
}

func (f fdStream) Read(p []byte) (int, error)  { return f.s.Task.ReadFD(f.fd, p) }
func (f fdStream) Write(p []byte) (int, error) { return f.s.Task.WriteFD(f.fd, p) }
