// The Wedge partitioning of OpenSSH (Figure 6, §5.2).
//
// Per connection, the master spawns one worker sthread that:
//   - runs as an unprivileged uid with its filesystem root set to an
//     empty directory;
//   - holds read access to the server's public key and configuration
//     options, and read-write access to the connection descriptor;
//   - can reach the host private key only through the sign callgate,
//     which signs a hash it computes itself (no signing/decryption
//     oracle);
//   - can reach the user database only through the three authentication
//     callgates (password, public-key, S/Key), each of which reads
//     /etc/shadow or the S/Key database directly from disk with the
//     *creator's* filesystem root, and, on success, changes the worker's
//     uid and filesystem root — the only way the worker ever becomes a
//     logged-in user.
//
// Both of the paper's lessons are implemented: the password callgate
// returns a dummy passwd structure for unknown usernames (no probe
// oracle), and PAM-style scratch allocations happen inside the callgate's
// private memory, which evaporates with the gate (no fork inheritance).

package sshd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// WorkerUID is the unprivileged uid workers start as.
const WorkerUID = 99

// Argument-buffer offsets for the auth gates (in the per-connection tag).
const (
	sshArgOp      = 0 // 1=password 2=pubkey 3=skey-chal 4=skey-verify 5=sign
	sshArgStrLen  = 8
	sshArgStr     = 16  // user\x00pass, or user, or data to sign
	sshArgSigLen  = 528 // gate output: signature length
	sshArgSig     = 536 // gate output: signature bytes
	sshArgPwFound = 800 // gate output: passwd struct (dummy on unknown user)
	sshArgPwUID   = 808
	sshArgPwHome  = 816 // NUL-terminated, <= 64 bytes
	sshArgAuthOK  = 896 // gate output: authentication verdict
	sshArgChalN   = 904 // gate output: S/Key challenge
	sshArgSize    = 1024

	sshOpPassword   = 1
	sshOpPubkey     = 2
	sshOpSKeyChal   = 3
	sshOpSKeyVerify = 4
	sshOpSign       = 5
)

// WedgeStats counts Wedge-variant activity.
type WedgeStats struct {
	Logins    atomic.Uint64
	Fails     atomic.Uint64
	GateCalls atomic.Uint64
	Workers   atomic.Uint64
}

// WedgeHooks injects exploit code into the worker compartment.
type WedgeHooks struct {
	// Worker runs inside the worker sthread before the protocol starts.
	Worker func(s *sthread.Sthread, ctx *WedgeConnContext)
}

// WedgeConnContext is the compartment knowledge an injected exploit has.
type WedgeConnContext struct {
	FD          int
	HostKeyAddr vm.Addr // tagged; not granted to the worker
	ArgAddr     vm.Addr
	Gates       map[string]*policy.GateSpec
}

// Wedge is the Figure 6 server.
type Wedge struct {
	Stats WedgeStats

	root *sthread.Sthread
	cfg  ServerConfig

	hostTag  tags.Tag
	hostAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr
	optTag   tags.Tag
	optAddr  vm.Addr

	hooks WedgeHooks
}

// NewWedge builds the partitioned server: host key, public key, and
// options each land in their own tag.
func NewWedge(root *sthread.Sthread, cfg ServerConfig, hooks WedgeHooks) (*Wedge, error) {
	w := &Wedge{root: root, cfg: cfg, hooks: hooks}
	place := func(blob []byte) (tags.Tag, vm.Addr, error) {
		tag, err := root.App().Tags.TagNew(root.Task)
		if err != nil {
			return 0, 0, err
		}
		addr, err := root.Smalloc(tag, 8+len(blob))
		if err != nil {
			return 0, 0, err
		}
		root.Store64(addr, uint64(len(blob)))
		root.Write(addr+8, blob)
		return tag, addr, nil
	}
	var err error
	if w.hostTag, w.hostAddr, err = place(minissl.MarshalPrivateKey(cfg.HostKey)); err != nil {
		return nil, err
	}
	if w.pubTag, w.pubAddr, err = place(minissl.MarshalPublicKey(&cfg.HostKey.PublicKey)); err != nil {
		return nil, err
	}
	if w.optTag, w.optAddr, err = place([]byte(cfg.Options)); err != nil {
		return nil, err
	}
	return w, nil
}

func loadBlob(s *sthread.Sthread, addr vm.Addr) []byte {
	n := s.Load64(addr)
	out := make([]byte, n)
	s.Read(addr+8, out)
	return out
}

// signGate signs sha256(data) with the host key. The hash is computed by
// the gate over the caller-supplied bytes; only the hash is signed.
func (w *Wedge) signGate(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	priv, err := minissl.UnmarshalPrivateKey(loadBlob(g, trusted))
	if err != nil {
		return 0
	}
	n := g.Load64(arg + sshArgStrLen)
	if n == 0 || n > 256 {
		return 0
	}
	data := make([]byte, n)
	g.Read(arg+sshArgStr, data)
	sig, err := SignHash(priv, data)
	if err != nil {
		return 0
	}
	g.Store64(arg+sshArgSigLen, uint64(len(sig)))
	g.Write(arg+sshArgSig, sig)
	return 1
}

// promote changes the worker's uid and filesystem root from inside a gate
// (creator credentials: uid 0, true root) — the Privtrans idiom the paper
// adopts. The worker has no other path to privilege.
func promote(g *sthread.Sthread, worker *sthread.Sthread, uid int, home string) bool {
	if err := g.Task.ChrootOn(worker.Task, home); err != nil {
		return false
	}
	if err := g.Task.SetUIDOn(worker.Task, uid); err != nil {
		return false
	}
	return true
}

// passwordGate authenticates a username/password pair against /etc/shadow
// (read with the gate's disk credentials) and, on success, promotes the
// worker. For unknown usernames it fabricates a dummy passwd structure so
// the worker-visible reply shape is identical (§5.2's first lesson).
func (w *Wedge) passwordGate(worker func() *sthread.Sthread) sthread.GateFunc {
	stats := &w.Stats
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		n := g.Load64(arg + sshArgStrLen)
		if n == 0 || n > 512 {
			return 0
		}
		buf := make([]byte, n)
		g.Read(arg+sshArgStr, buf)
		user, pass, ok := strings.Cut(string(buf), "\x00")
		if !ok {
			return 0
		}
		entries, err := readShadow(g)
		if err != nil {
			return 0
		}
		entry, found := LookupShadow(entries, user)
		if !found {
			// Dummy passwd: same shape, nothing learnable.
			g.Store64(arg+sshArgPwFound, 1)
			g.Store64(arg+sshArgPwUID, uint64(WorkerUID))
			g.WriteString(arg+sshArgPwHome, "/nonexistent")
			g.Store64(arg+sshArgAuthOK, 0)
			return 1
		}
		g.Store64(arg+sshArgPwFound, 1)
		g.Store64(arg+sshArgPwUID, uint64(entry.UID))
		g.WriteString(arg+sshArgPwHome, entry.Home)

		// The PAM-style scratch lives in the gate's private heap and
		// dies with the gate: the §5.2 second lesson.
		passOK, _, _ := pamCheck(g, entry, pass)
		if passOK && promote(g, worker(), entry.UID, entry.Home) {
			g.Store64(arg+sshArgAuthOK, 1)
			stats.Logins.Add(1)
		} else {
			g.Store64(arg+sshArgAuthOK, 0)
			stats.Fails.Add(1)
		}
		return 1
	}
}

// pubkeyGate verifies a signature over the session nonce against the
// user's authorized key and promotes on success.
func (w *Wedge) pubkeyGate(worker func() *sthread.Sthread, nonce *[]byte) sthread.GateFunc {
	stats := &w.Stats
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		n := g.Load64(arg + sshArgStrLen)
		if n == 0 || n > 512 {
			return 0
		}
		buf := make([]byte, n)
		g.Read(arg+sshArgStr, buf)
		user, sig, ok := strings.Cut(string(buf), "\x00")
		if !ok {
			return 0
		}
		g.Store64(arg+sshArgAuthOK, 0)
		entries, err := readShadow(g)
		if err != nil {
			return 1
		}
		entry, found := LookupShadow(entries, user)
		if !found {
			stats.Fails.Add(1)
			return 1
		}
		keyData, err := g.Task.Kernel().FS.ReadFile(g.Task.Cred(), g.Task.Root,
			entry.Home+"/.ssh/authorized_keys")
		if err != nil {
			stats.Fails.Add(1)
			return 1
		}
		pub, err := minissl.UnmarshalPublicKey(keyData)
		if err != nil {
			stats.Fails.Add(1)
			return 1
		}
		if VerifyHash(pub, append([]byte("pubkey:"+user+":"), *nonce...), []byte(sig)) != nil {
			stats.Fails.Add(1)
			return 1
		}
		if promote(g, worker(), entry.UID, entry.Home) {
			g.Store64(arg+sshArgAuthOK, 1)
			stats.Logins.Add(1)
		}
		return 1
	}
}

// skeyGate serves S/Key challenges and verifications. Unknown usernames
// receive a deterministic dummy challenge rather than an error — fixing
// the information leak of [14] with the same mechanism as the password
// gate's dummy passwd.
func (w *Wedge) skeyGate(worker func() *sthread.Sthread, pending *string) sthread.GateFunc {
	stats := &w.Stats
	return func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		switch g.Load64(arg + sshArgOp) {
		case sshOpSKeyChal:
			n := g.Load64(arg + sshArgStrLen)
			if n == 0 || n > 128 {
				return 0
			}
			buf := make([]byte, n)
			g.Read(arg+sshArgStr, buf)
			user := string(buf)
			db, err := readSKeyDB(g)
			if err != nil {
				return 0
			}
			for i := range db {
				if db[i].Name == user {
					*pending = user
					g.Store64(arg+sshArgChalN, uint64(db[i].N))
					return 1
				}
			}
			// Dummy challenge: plausible chain position derived from the
			// username so repeated probes are consistent.
			*pending = ""
			g.Store64(arg+sshArgChalN, uint64(50+len(user)%50))
			return 1

		case sshOpSKeyVerify:
			g.Store64(arg+sshArgAuthOK, 0)
			user := *pending
			if user == "" {
				stats.Fails.Add(1)
				return 1 // dummy-challenged: always fails, same shape
			}
			n := g.Load64(arg + sshArgStrLen)
			if n == 0 || n > 128 {
				return 0
			}
			resp := make([]byte, n)
			g.Read(arg+sshArgStr, resp)
			db, err := readSKeyDB(g)
			if err != nil {
				return 1
			}
			for i := range db {
				if db[i].Name == user {
					if VerifySKey(&db[i], resp) {
						writeSKeyDB(g, db)
						entries, _ := readShadow(g)
						if entry, found := LookupShadow(entries, user); found &&
							promote(g, worker(), entry.UID, entry.Home) {
							g.Store64(arg+sshArgPwUID, uint64(entry.UID))
							g.WriteString(arg+sshArgPwHome, entry.Home)
							g.Store64(arg+sshArgAuthOK, 1)
							stats.Logins.Add(1)
							return 1
						}
					}
					stats.Fails.Add(1)
					return 1
				}
			}
			stats.Fails.Add(1)
			return 1
		}
		return 0
	}
}

// ServeConn spawns the per-connection worker (Figure 6) and blocks until
// it exits.
func (w *Wedge) ServeConn(conn *netsim.Conn) error {
	root := w.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	connTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return err
	}
	defer root.App().Tags.TagDelete(connTag)
	argBuf, err := root.Smalloc(connTag, sshArgSize)
	if err != nil {
		return err
	}

	// The auth gates need the worker's handle to promote it on success,
	// but the handle only exists once Create has already started the
	// worker; hand it across with a first-use-blocking accessor so a
	// gate invoked before this goroutine resumes still sees it.
	workerCh := make(chan *sthread.Sthread, 1)
	workerRef := sync.OnceValue(func() *sthread.Sthread { return <-workerCh })
	var nonce []byte
	var pendingSKey string

	diskSC := func() *policy.SC { return policy.New().MustMemAdd(connTag, vm.PermRW) }
	signSC := policy.New().
		MustMemAdd(w.hostTag, vm.PermRead).
		MustMemAdd(connTag, vm.PermRW)

	workerSC := policy.New().
		MustMemAdd(connTag, vm.PermRW).
		MustMemAdd(w.pubTag, vm.PermRead).
		MustMemAdd(w.optTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW).
		SetUID(WorkerUID).
		SetRoot("/var/empty")
	workerSC.GateAdd(sthread.GateFunc(w.signGate), signSC, w.hostAddr, "sign")
	workerSC.GateAdd(w.passwordGate(workerRef), diskSC(), 0, "auth_password")
	workerSC.GateAdd(w.pubkeyGate(workerRef, &nonce), diskSC(), 0, "auth_pubkey")
	workerSC.GateAdd(w.skeyGate(workerRef, &pendingSKey), diskSC(), 0, "auth_skey")
	signSpec := workerSC.Gates[0]
	passSpec := workerSC.Gates[1]
	pubSpec := workerSC.Gates[2]
	skeySpec := workerSC.Gates[3]

	worker, err := root.CreateNamed("ssh-worker", workerSC, func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
		if w.hooks.Worker != nil {
			w.hooks.Worker(s, &WedgeConnContext{
				FD:          fd,
				HostKeyAddr: w.hostAddr,
				ArgAddr:     arg,
				Gates: map[string]*policy.GateSpec{
					"sign":          signSpec,
					"auth_password": passSpec,
					"auth_pubkey":   pubSpec,
					"auth_skey":     skeySpec,
				},
			})
		}
		return w.workerBody(s, fd, arg, &nonce, signSpec, passSpec, pubSpec, skeySpec)
	}, argBuf)
	if err != nil {
		return err
	}
	workerCh <- worker
	w.Stats.Workers.Add(1)
	_, fault := root.Join(worker)
	return fault
}

// workerBody is the unprivileged network-facing code of Figure 6.
func (w *Wedge) workerBody(s *sthread.Sthread, fd int, arg vm.Addr, noncePtr *[]byte,
	signSpec, passSpec, pubSpec, skeySpec *policy.GateSpec) vm.Addr {
	stream := fdStream{s, fd}

	// The banner and host public key come from memory the worker may
	// read (§5.2: "the worker needs access to the public key in order to
	// reveal its identity to the client" and to the options for version
	// strings).
	if err := WriteFrame(stream, MsgVersion, []byte(Version)); err != nil {
		return 0
	}
	if err := WriteFrame(stream, MsgHostKey, loadBlob(s, w.pubAddr)); err != nil {
		return 0
	}
	clientNonce, err := ExpectFrame(stream, MsgSignReq)
	if err != nil {
		return 0
	}
	*noncePtr = clientNonce

	// Host authentication through the sign gate.
	s.Store64(arg+sshArgOp, sshOpSign)
	s.Store64(arg+sshArgStrLen, uint64(len(clientNonce)))
	s.Write(arg+sshArgStr, clientNonce)
	w.Stats.GateCalls.Add(1)
	if ret, err := s.CallGate(signSpec, nil, arg); err != nil || ret != 1 {
		return 0
	}
	sigLen := s.Load64(arg + sshArgSigLen)
	if sigLen == 0 || sigLen > 256 {
		return 0
	}
	sig := make([]byte, sigLen)
	s.Read(arg+sshArgSig, sig)
	if err := WriteFrame(stream, MsgSignResp, sig); err != nil {
		return 0
	}

	// Authentication loop: each attempt is one or two gate calls. The
	// worker learns only the verdict; promotion happens behind its back.
	authed := false
	var uid int
	for !authed {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return 0
		}
		switch typ {
		case MsgAuthPass:
			s.Store64(arg+sshArgOp, sshOpPassword)
			s.Store64(arg+sshArgStrLen, uint64(len(body)))
			s.Write(arg+sshArgStr, body)
			w.Stats.GateCalls.Add(1)
			if ret, err := s.CallGate(passSpec, nil, arg); err != nil || ret != 1 {
				return 0
			}
			if s.Load64(arg+sshArgAuthOK) == 1 {
				authed = true
				uid = int(s.Load64(arg + sshArgPwUID))
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthPub:
			s.Store64(arg+sshArgOp, sshOpPubkey)
			s.Store64(arg+sshArgStrLen, uint64(len(body)))
			s.Write(arg+sshArgStr, body)
			w.Stats.GateCalls.Add(1)
			if ret, err := s.CallGate(pubSpec, nil, arg); err != nil || ret != 1 {
				return 0
			}
			if s.Load64(arg+sshArgAuthOK) == 1 {
				authed = true
				uid = s.Task.UID
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthSKey:
			s.Store64(arg+sshArgOp, sshOpSKeyChal)
			s.Store64(arg+sshArgStrLen, uint64(len(body)))
			s.Write(arg+sshArgStr, body)
			w.Stats.GateCalls.Add(1)
			if ret, err := s.CallGate(skeySpec, nil, arg); err != nil || ret != 1 {
				return 0
			}
			n := s.Load64(arg + sshArgChalN)
			chal := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
			WriteFrame(stream, MsgSKeyChal, chal)
			resp, err := ExpectFrame(stream, MsgSKeyReply)
			if err != nil {
				return 0
			}
			s.Store64(arg+sshArgOp, sshOpSKeyVerify)
			s.Store64(arg+sshArgStrLen, uint64(len(resp)))
			s.Write(arg+sshArgStr, resp)
			w.Stats.GateCalls.Add(1)
			if ret, err := s.CallGate(skeySpec, nil, arg); err != nil || ret != 1 {
				return 0
			}
			if s.Load64(arg+sshArgAuthOK) == 1 {
				authed = true
				uid = s.Task.UID
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgExit:
			return 1
		default:
			return 0
		}
	}

	// Post-auth session: the worker now runs as the user, chrooted to the
	// user's home by the gate. Uploads land relative to that root with
	// the promoted uid — no ambient authority involved.
	_ = uid
	fs := s.Task.Kernel().FS
	for {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return 0
		}
		switch typ {
		case MsgScpPut:
			name := string(body)
			data, err := ExpectFrame(stream, MsgScpData)
			if err != nil {
				return 0
			}
			if strings.ContainsAny(name, "/\x00") {
				WriteFrame(stream, MsgAuthFail, []byte("bad name"))
				continue
			}
			if err := fs.WriteFile(s.Task.Cred(), s.Task.Root, "/"+name, data, 0o644); err != nil {
				WriteFrame(stream, MsgAuthFail, []byte(err.Error()))
				continue
			}
			WriteFrame(stream, MsgScpOK, nil)
		case MsgExit:
			return 1
		default:
			return 0
		}
	}
}
