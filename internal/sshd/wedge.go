// The Wedge partitioning of OpenSSH (Figure 6, §5.2).
//
// Per connection, the master spawns one worker sthread that:
//   - runs as an unprivileged uid with its filesystem root set to an
//     empty directory;
//   - holds read access to the server's public key and configuration
//     options, and read-write access to the connection descriptor;
//   - can reach the host private key only through the sign callgate,
//     which signs a hash it computes itself (no signing/decryption
//     oracle);
//   - can reach the user database only through the three authentication
//     callgates (password, public-key, S/Key), each of which reads
//     /etc/shadow or the S/Key database directly from disk with the
//     *creator's* filesystem root, and, on success, changes the worker's
//     uid and filesystem root — the only way the worker ever becomes a
//     logged-in user.
//
// Both of the paper's lessons are implemented: the password callgate
// returns a dummy passwd structure for unknown usernames (no probe
// oracle), and PAM-style scratch allocations happen inside the callgate's
// private memory, which evaporates with the gate (no fork inheritance).
//
// The gate bodies and the worker protocol live in package-level functions
// shared with the pooled variant (pooled.go), which replaces the
// per-connection worker sthread and per-connection gate instantiations
// with a gatepool of long-lived recycled equivalents.

package sshd

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"wedge/internal/gateabi"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/policy"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// WorkerUID is the unprivileged uid workers start as.
const WorkerUID = 99

// The auth-gate argument-block schema (in the per-connection tag, or the
// slot's argument tag in the pooled variant). The layout is computed from
// these declarations; the typed handles are the only way worker, slave,
// and gate code touches the block. Per-operation input caps narrower than
// the string field's capacity (sign 256, S/Key 128) are enforced by the
// codec's StoreMax/LoadMax — still typed bounds, never call-site offset
// arithmetic.
const (
	sshStrCap  = 512 // user\x00pass / user / data-to-sign bound (password, pubkey ops)
	sshSignCap = 256 // sign-op input and signature bound
	sshSKeyCap = 128 // S/Key username and response bound
	sshUserCap = 128 // bare-username bound (the privsep monitor's getpwnam)
)

var (
	sshSchemaB = gateabi.NewSchema("sshd")

	fOp      = gateabi.U64(sshSchemaB, "op") // sshOpPassword..sshOpSign
	fStr     = gateabi.Bytes(sshSchemaB, "str", sshStrCap)
	fSig     = gateabi.Bytes(sshSchemaB, "sig", sshSignCap) // gate output: signature
	fPwFound = gateabi.U64(sshSchemaB, "pw_found")          // gate output: passwd struct (dummy on unknown user)
	fPwUID   = gateabi.Word[int](sshSchemaB, "pw_uid")      // gate output: uid granted on success
	fPwHome  = gateabi.String(sshSchemaB, "pw_home", 64)    // informational; promotion uses the full path
	fAuthOK  = gateabi.U64(sshSchemaB, "auth_ok")           // gate output: authentication verdict
	fChalN   = gateabi.U64(sshSchemaB, "skey_chal")         // gate output: S/Key challenge
	// The demux words register by declaration; the serve runtime reaches
	// them through Schema.ConnIDOff/FDOff, not through handles.
	_ = gateabi.ConnID(sshSchemaB)
	_ = gateabi.FD(sshSchemaB)

	sshSchema = sshSchemaB.Seal()
)

// GateSchema exposes the argument-block schema (for the conformance
// battery and the cross-app FuzzGateABI harness). The pooled privsep
// monitor serves the same block layout.
func GateSchema() *gateabi.Schema { return sshSchema }

const (
	sshOpPassword   = 1
	sshOpPubkey     = 2
	sshOpSKeyChal   = 3
	sshOpSKeyVerify = 4
	sshOpSign       = 5
)

// WedgeStats counts Wedge-variant activity.
type WedgeStats struct {
	Logins    atomic.Uint64
	Fails     atomic.Uint64
	GateCalls atomic.Uint64
	Workers   atomic.Uint64
}

// WedgeHooks injects exploit code into the worker compartment.
type WedgeHooks struct {
	// Worker runs inside the worker sthread before the protocol starts.
	Worker func(s *sthread.Sthread, ctx *WedgeConnContext)
}

// WedgeConnContext is the compartment knowledge an injected exploit has.
type WedgeConnContext struct {
	FD          int
	HostKeyAddr vm.Addr // tagged; not granted to the worker
	ArgAddr     vm.Addr
	Gates       map[string]*policy.GateSpec // nil in the pooled variant
}

// Wedge is the Figure 6 server.
type Wedge struct {
	Stats WedgeStats

	root *sthread.Sthread
	cfg  ServerConfig

	hostTag  tags.Tag
	hostAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr
	optTag   tags.Tag
	optAddr  vm.Addr

	hooks WedgeHooks
}

// placeSSHBlob lands a length-prefixed blob in a fresh tag. On failure
// no tag is left behind.
func placeSSHBlob(root *sthread.Sthread, blob []byte) (tags.Tag, vm.Addr, error) {
	tag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return 0, 0, err
	}
	addr, err := root.Smalloc(tag, 8+len(blob))
	if err != nil {
		root.App().Tags.TagDelete(tag)
		return 0, 0, err
	}
	root.Store64(addr, uint64(len(blob)))
	root.Write(addr+8, blob)
	return tag, addr, nil
}

// releaseTags retires the tags a failed server constructor had already
// provisioned, so a caller that retries after a transient failure does
// not accumulate stranded tags.
func releaseTags(root *sthread.Sthread, ts ...tags.Tag) {
	for _, t := range ts {
		if t != tags.NoTag {
			root.App().Tags.TagDelete(t)
		}
	}
}

// NewWedge builds the partitioned server: host key, public key, and
// options each land in their own tag.
func NewWedge(root *sthread.Sthread, cfg ServerConfig, hooks WedgeHooks) (*Wedge, error) {
	w := &Wedge{root: root, cfg: cfg, hooks: hooks}
	var err error
	if w.hostTag, w.hostAddr, err = placeSSHBlob(root, minissl.MarshalPrivateKey(cfg.HostKey)); err != nil {
		return nil, err
	}
	if w.pubTag, w.pubAddr, err = placeSSHBlob(root, minissl.MarshalPublicKey(&cfg.HostKey.PublicKey)); err != nil {
		releaseTags(root, w.hostTag)
		return nil, err
	}
	if w.optTag, w.optAddr, err = placeSSHBlob(root, []byte(cfg.Options)); err != nil {
		releaseTags(root, w.hostTag, w.pubTag)
		return nil, err
	}
	return w, nil
}

func loadBlob(s *sthread.Sthread, addr vm.Addr) []byte {
	n := s.Load64(addr)
	out := make([]byte, n)
	s.Read(addr+8, out)
	return out
}

// signGateEntry signs sha256(data) with the host key. The hash is
// computed by the gate over the caller-supplied bytes; only the hash is
// signed. Stateless, so the one-shot and pooled variants share it as-is.
func signGateEntry(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	priv, err := minissl.UnmarshalPrivateKey(loadBlob(g, trusted))
	if err != nil {
		return 0
	}
	data, err := fStr.LoadMax(g, arg, sshSignCap)
	if err != nil || len(data) == 0 {
		return 0
	}
	sig, err := SignHash(priv, data)
	if err != nil {
		return 0
	}
	// The codec bounds the signature to its field: an oversized host key
	// cannot make the gate scribble over the passwd/verdict words — or,
	// in the pooled build, the conn-id demux words.
	if fSig.Store(g, arg, sig) != nil {
		return 0
	}
	return 1
}

// promote changes the worker's uid and filesystem root from inside a gate
// (creator credentials: uid 0, true root) — the Privtrans idiom the paper
// adopts. The worker has no other path to privilege.
func promote(g *sthread.Sthread, worker *sthread.Sthread, uid int, home string) bool {
	if err := g.Task.ChrootOn(worker.Task, home); err != nil {
		return false
	}
	if err := g.Task.SetUIDOn(worker.Task, uid); err != nil {
		return false
	}
	return true
}

// passwordAuth is the password gate's body: authenticate a
// username/password pair against /etc/shadow (read with the gate's disk
// credentials) and, on success, promote the worker. For unknown usernames
// it fabricates a dummy passwd structure so the worker-visible reply
// shape is identical (§5.2's first lesson).
func passwordAuth(g *sthread.Sthread, arg vm.Addr, worker func() *sthread.Sthread, stats *WedgeStats) vm.Addr {
	buf, err := fStr.Load(g, arg)
	if err != nil || len(buf) == 0 {
		return 0
	}
	user, pass, ok := strings.Cut(string(buf), "\x00")
	if !ok {
		return 0
	}
	entries, err := readShadow(g)
	if err != nil {
		return 0
	}
	entry, found := LookupShadow(entries, user)
	if !found {
		// Dummy passwd: same shape, nothing learnable.
		fPwFound.Store(g, arg, 1)
		fPwUID.Store(g, arg, WorkerUID)
		fPwHome.StoreTrunc(g, arg, "/nonexistent")
		fAuthOK.Store(g, arg, 0)
		return 1
	}
	fPwFound.Store(g, arg, 1)
	fPwUID.Store(g, arg, entry.UID)
	fPwHome.StoreTrunc(g, arg, entry.Home)

	// The PAM-style scratch lives in the gate's private heap and
	// dies with the gate: the §5.2 second lesson.
	passOK, _, _ := pamCheck(g, entry, pass)
	if passOK && promote(g, worker(), entry.UID, entry.Home) {
		fAuthOK.Store(g, arg, 1)
		stats.Logins.Add(1)
	} else {
		fAuthOK.Store(g, arg, 0)
		stats.Fails.Add(1)
	}
	return 1
}

// pubkeyAuth is the public-key gate's body: verify a signature over the
// session nonce against the user's authorized key and promote on success.
func pubkeyAuth(g *sthread.Sthread, arg vm.Addr, worker func() *sthread.Sthread, nonce *[]byte, stats *WedgeStats) vm.Addr {
	buf, err := fStr.Load(g, arg)
	if err != nil || len(buf) == 0 {
		return 0
	}
	user, sig, ok := strings.Cut(string(buf), "\x00")
	if !ok {
		return 0
	}
	fAuthOK.Store(g, arg, 0)
	entries, err := readShadow(g)
	if err != nil {
		return 1
	}
	entry, found := LookupShadow(entries, user)
	if !found {
		stats.Fails.Add(1)
		return 1
	}
	keyData, err := g.Task.Kernel().FS.ReadFile(g.Task.Cred(), g.Task.Root,
		entry.Home+"/.ssh/authorized_keys")
	if err != nil {
		stats.Fails.Add(1)
		return 1
	}
	pub, err := minissl.UnmarshalPublicKey(keyData)
	if err != nil {
		stats.Fails.Add(1)
		return 1
	}
	if VerifyHash(pub, append([]byte("pubkey:"+user+":"), *nonce...), []byte(sig)) != nil {
		stats.Fails.Add(1)
		return 1
	}
	if promote(g, worker(), entry.UID, entry.Home) {
		fAuthOK.Store(g, arg, 1)
		stats.Logins.Add(1)
	}
	return 1
}

// skeyAuth is the S/Key gate's body: serve challenges and verifications.
// Unknown usernames receive a deterministic dummy challenge rather than
// an error — fixing the information leak of [14] with the same mechanism
// as the password gate's dummy passwd.
func skeyAuth(g *sthread.Sthread, arg vm.Addr, worker func() *sthread.Sthread, pending *string, stats *WedgeStats) vm.Addr {
	switch fOp.Load(g, arg) {
	case sshOpSKeyChal:
		buf, err := fStr.LoadMax(g, arg, sshSKeyCap)
		if err != nil || len(buf) == 0 {
			return 0
		}
		user := string(buf)
		db, err := readSKeyDB(g)
		if err != nil {
			return 0
		}
		for i := range db {
			if db[i].Name == user {
				*pending = user
				fChalN.Store(g, arg, uint64(db[i].N))
				return 1
			}
		}
		// Dummy challenge: plausible chain position, keyed so repeated
		// probes are consistent but not predictable from the source.
		*pending = ""
		fChalN.Store(g, arg, SKeyDummyChallenge(user))
		return 1

	case sshOpSKeyVerify:
		fAuthOK.Store(g, arg, 0)
		user := *pending
		if user == "" {
			stats.Fails.Add(1)
			return 1 // dummy-challenged: always fails, same shape
		}
		resp, err := fStr.LoadMax(g, arg, sshSKeyCap)
		if err != nil || len(resp) == 0 {
			return 0
		}
		db, err := readSKeyDB(g)
		if err != nil {
			return 1
		}
		for i := range db {
			if db[i].Name == user {
				if VerifySKey(&db[i], resp) {
					writeSKeyDB(g, db)
					entries, _ := readShadow(g)
					if entry, found := LookupShadow(entries, user); found &&
						promote(g, worker(), entry.UID, entry.Home) {
						fPwUID.Store(g, arg, entry.UID)
						fPwHome.StoreTrunc(g, arg, entry.Home)
						fAuthOK.Store(g, arg, 1)
						stats.Logins.Add(1)
						return 1
					}
				}
				stats.Fails.Add(1)
				return 1
			}
		}
		stats.Fails.Add(1)
		return 1
	}
	return 0
}

// ServeConn spawns the per-connection worker (Figure 6) and blocks until
// it exits.
func (w *Wedge) ServeConn(conn *netsim.Conn) error {
	root := w.root
	fd := root.Task.InstallFD(conn, kernel.FDRW)
	defer root.Task.CloseFD(fd)

	connTag, err := root.App().Tags.TagNew(root.Task)
	if err != nil {
		return err
	}
	defer root.App().Tags.TagDelete(connTag)
	argBuf, err := root.Smalloc(connTag, sshSchema.Size())
	if err != nil {
		return err
	}

	// The auth gates need the worker's handle to promote it on success,
	// but the handle only exists once Create has already started the
	// worker; hand it across with a first-use-blocking accessor so a
	// gate invoked before this goroutine resumes still sees it.
	workerCh := make(chan *sthread.Sthread, 1)
	workerRef := sync.OnceValue(func() *sthread.Sthread { return <-workerCh })
	var nonce []byte
	var pendingSKey string
	stats := &w.Stats

	diskSC := func() *policy.SC { return policy.New().MustMemAdd(connTag, vm.PermRW) }
	signSC := policy.New().
		MustMemAdd(w.hostTag, vm.PermRead).
		MustMemAdd(connTag, vm.PermRW)

	workerSC := policy.New().
		MustMemAdd(connTag, vm.PermRW).
		MustMemAdd(w.pubTag, vm.PermRead).
		MustMemAdd(w.optTag, vm.PermRead).
		FDAdd(fd, kernel.FDRW).
		SetUID(WorkerUID).
		SetRoot("/var/empty")
	workerSC.GateAdd(sthread.GateFunc(signGateEntry), signSC, w.hostAddr, "sign")
	workerSC.GateAdd(sthread.GateFunc(func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		return passwordAuth(g, arg, workerRef, stats)
	}), diskSC(), 0, "auth_password")
	workerSC.GateAdd(sthread.GateFunc(func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		return pubkeyAuth(g, arg, workerRef, &nonce, stats)
	}), diskSC(), 0, "auth_pubkey")
	workerSC.GateAdd(sthread.GateFunc(func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
		return skeyAuth(g, arg, workerRef, &pendingSKey, stats)
	}), diskSC(), 0, "auth_skey")
	signSpec := workerSC.Gates[0]
	passSpec := workerSC.Gates[1]
	pubSpec := workerSC.Gates[2]
	skeySpec := workerSC.Gates[3]

	worker, err := root.CreateNamed("ssh-worker", workerSC, func(s *sthread.Sthread, arg vm.Addr) vm.Addr {
		if w.hooks.Worker != nil {
			w.hooks.Worker(s, &WedgeConnContext{
				FD:          fd,
				HostKeyAddr: w.hostAddr,
				ArgAddr:     arg,
				Gates: map[string]*policy.GateSpec{
					"sign":          signSpec,
					"auth_password": passSpec,
					"auth_pubkey":   pubSpec,
					"auth_skey":     skeySpec,
				},
			})
		}
		viaGate := func(spec *policy.GateSpec) authCall {
			return func(s *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
				return s.CallGate(spec, nil, arg)
			}
		}
		return sshWorkerBody(s, fd, arg, &nonce, w.pubAddr, stats,
			viaGate(signSpec), viaGate(passSpec), viaGate(pubSpec), viaGate(skeySpec))
	}, argBuf)
	if err != nil {
		return err
	}
	workerCh <- worker
	w.Stats.Workers.Add(1)
	_, fault := root.Join(worker)
	return fault
}

// authCall invokes one of the worker's privileged entry points: a
// one-shot callgate in the Figure 6 build, a pooled recycled gate in the
// pooled build.
type authCall func(s *sthread.Sthread, arg vm.Addr) (vm.Addr, error)

// storeArg marshals one operation's string payload through the codec,
// bounded to the receiving gate's own input cap (max), so nothing a gate
// would accept is rejected. The bound is load-bearing in the pooled
// builds: an unbounded write would run past the block into the slot's
// argument-tag arena, which the inter-principal scrub does not cover — a
// §3.3 cross-principal storage channel. The codec owns that bound now
// (typed *ArgBoundsError, never a partial write); this helper folds the
// error into the worker protocol's pass/fail idiom and preserves the
// codec's contract one level up: a rejected marshal (empty or oversized
// payload) leaves the block untouched.
func storeArg(s *sthread.Sthread, arg vm.Addr, op uint64, payload []byte, max int) bool {
	if len(payload) == 0 || fStr.StoreMax(s, arg, payload, max) != nil {
		return false
	}
	fOp.Store(s, arg, op)
	return true
}

// sshWorkerBody is the unprivileged network-facing code of Figure 6,
// parameterized over how the privileged entry points are reached.
func sshWorkerBody(s *sthread.Sthread, fd int, arg vm.Addr, noncePtr *[]byte,
	pubAddr vm.Addr, stats *WedgeStats, sign, pass, pub, skey authCall) vm.Addr {
	stream := fdStream{s, fd}

	// The banner and host public key come from memory the worker may
	// read (§5.2: "the worker needs access to the public key in order to
	// reveal its identity to the client" and to the options for version
	// strings).
	if err := WriteFrame(stream, MsgVersion, []byte(Version)); err != nil {
		return 0
	}
	if err := WriteFrame(stream, MsgHostKey, loadBlob(s, pubAddr)); err != nil {
		return 0
	}
	clientNonce, err := ExpectFrame(stream, MsgSignReq)
	if err != nil {
		return 0
	}
	*noncePtr = clientNonce

	// Host authentication through the sign gate.
	if !storeArg(s, arg, sshOpSign, clientNonce, sshSignCap) {
		return 0
	}
	stats.GateCalls.Add(1)
	if ret, err := sign(s, arg); err != nil || ret != 1 {
		return 0
	}
	sig, err := fSig.Load(s, arg)
	if err != nil || len(sig) == 0 {
		return 0
	}
	if err := WriteFrame(stream, MsgSignResp, sig); err != nil {
		return 0
	}

	// Authentication loop: each attempt is one or two gate calls. The
	// worker learns only the verdict; promotion happens behind its back.
	authed := false
	var uid int
	for !authed {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return 0
		}
		switch typ {
		case MsgAuthPass:
			if !storeArg(s, arg, sshOpPassword, body, sshStrCap) {
				return 0
			}
			stats.GateCalls.Add(1)
			if ret, err := pass(s, arg); err != nil || ret != 1 {
				return 0
			}
			if fAuthOK.Load(s, arg) == 1 {
				authed = true
				uid = fPwUID.Load(s, arg)
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthPub:
			if !storeArg(s, arg, sshOpPubkey, body, sshStrCap) {
				return 0
			}
			stats.GateCalls.Add(1)
			if ret, err := pub(s, arg); err != nil || ret != 1 {
				return 0
			}
			if fAuthOK.Load(s, arg) == 1 {
				authed = true
				uid = s.Task.UID
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthSKey:
			if !storeArg(s, arg, sshOpSKeyChal, body, sshSKeyCap) {
				return 0
			}
			stats.GateCalls.Add(1)
			if ret, err := skey(s, arg); err != nil || ret != 1 {
				return 0
			}
			n := fChalN.Load(s, arg)
			chal := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
			WriteFrame(stream, MsgSKeyChal, chal)
			resp, err := ExpectFrame(stream, MsgSKeyReply)
			if err != nil {
				return 0
			}
			if !storeArg(s, arg, sshOpSKeyVerify, resp, sshSKeyCap) {
				return 0
			}
			stats.GateCalls.Add(1)
			if ret, err := skey(s, arg); err != nil || ret != 1 {
				return 0
			}
			if fAuthOK.Load(s, arg) == 1 {
				authed = true
				uid = s.Task.UID
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgExit:
			return 1
		default:
			return 0
		}
	}

	_ = uid
	return scpSessionLoop(s, stream)
}

// scpSessionLoop is the post-auth session shared by every promoted
// worker build (the Figure 6 one-shot worker, the pooled Wedge worker,
// and the pooled privsep slave): the compartment now runs as the user,
// chrooted to the user's home by the promoting gate, so uploads land
// relative to "/" with the promoted credentials — no ambient authority
// involved.
func scpSessionLoop(s *sthread.Sthread, stream io.ReadWriter) vm.Addr {
	fs := s.Task.Kernel().FS
	for {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return 0
		}
		switch typ {
		case MsgScpPut:
			name := string(body)
			data, err := ExpectFrame(stream, MsgScpData)
			if err != nil {
				return 0
			}
			if strings.ContainsAny(name, "/\x00") {
				WriteFrame(stream, MsgAuthFail, []byte("bad name"))
				continue
			}
			if err := fs.WriteFile(s.Task.Cred(), s.Task.Root, "/"+name, data, 0o644); err != nil {
				WriteFrame(stream, MsgAuthFail, []byte(err.Error()))
				continue
			}
			WriteFrame(stream, MsgScpOK, nil)
		case MsgExit:
			return 1
		default:
			return 0
		}
	}
}
