package sshd

import (
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/netsim"
	"wedge/internal/serve/servetest"
	"wedge/internal/sthread"
)

// sshConformanceApp adapts either pooled sshd build — the Wedge
// partitioning (PooledWedge) or the privsep monitor (PooledPrivsep) — to
// the shared serve-app battery. Both speak MINISSH and plant the same
// residue: the password bytes in the block's string field. The residue
// window is what
// TestPooledWedgeResidue used to probe by hand.
func sshConformanceApp(t *testing.T, name string, staticTags int,
	build func(root *sthread.Sthread, cfg ServerConfig, slots int, hooks WedgeHooks) (servetest.Runtime, error)) servetest.App {
	cfg := ServerConfig{HostKey: testHostKey(t), Options: "PasswordAuthentication yes"}

	// holdSSH completes the version/hostkey/signature exchange — the
	// worker (or privsep slave) invocation is then provably in flight,
	// parked on the first auth frame.
	holdSSH := func(k *kernel.Kernel) (*netsim.Conn, *Client, error) {
		conn, err := k.Net.Dial("sshd:22")
		if err != nil {
			return nil, nil, err
		}
		c, err := NewClient(conn, &testHostKey(t).PublicKey)
		if err != nil {
			conn.Close()
			return nil, nil, err
		}
		return conn, c, nil
	}

	return servetest.App{
		Name: name,
		Addr: "sshd:22",
		Setup: func(k *kernel.Kernel) error {
			return SetupUsers(k, testUsers(t))
		},
		New: func(root *sthread.Sthread, slots int, probe servetest.Probe) (servetest.Runtime, error) {
			hooks := WedgeHooks{}
			if probe != nil {
				hooks.Worker = func(s *sthread.Sthread, ctx *WedgeConnContext) { probe(s, ctx.ArgAddr) }
			}
			return build(root, cfg, slots, hooks)
		},
		Session: func(k *kernel.Kernel) ([]byte, error) {
			conn, c, err := holdSSH(k)
			if err != nil {
				return nil, err
			}
			defer conn.Close()
			if err := c.AuthPassword("alice", "sesame"); err != nil {
				return nil, err
			}
			if err := c.Exit(); err != nil {
				return nil, err
			}
			return []byte("sesame"), nil
		},
		Hold: func(k *kernel.Kernel) (*servetest.Held, error) {
			conn, c, err := holdSSH(k)
			if err != nil {
				return nil, err
			}
			return &servetest.Held{
				Finish: func() error {
					defer conn.Close()
					return c.Exit()
				},
				Abandon: func() error { return conn.Close() },
			}, nil
		},
		Schema:     sshSchema,
		StaticTags: staticTags,
	}
}

// TestServeConformance runs the battery against the pooled Wedge build.
func TestServeConformance(t *testing.T) {
	// Host-key, public-key, and options blob tags outlive the runtime.
	servetest.Run(t, sshConformanceApp(t, "sshd", 3,
		func(root *sthread.Sthread, cfg ServerConfig, slots int, hooks WedgeHooks) (servetest.Runtime, error) {
			return NewPooledWedge(root, cfg, slots, hooks)
		}))
}

// TestServeConformancePrivsep runs the same battery against the pooled
// privsep monitor — the fourth serve.App, sharing the runtime machinery
// (and now the test battery) with httpd, sshd, and pop3.
func TestServeConformancePrivsep(t *testing.T) {
	// Host-key and public-key blob tags outlive the runtime.
	servetest.Run(t, sshConformanceApp(t, "privsep", 2,
		func(root *sthread.Sthread, cfg ServerConfig, slots int, hooks WedgeHooks) (servetest.Runtime, error) {
			return NewPooledPrivsep(root, cfg, slots, hooks)
		}))
}
