package sshd

import (
	"crypto/rsa"
	"errors"
	"strings"
	"sync"
	"testing"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

var (
	hostKeyOnce sync.Once
	hostKey     *rsa.PrivateKey
	userKeyOnce sync.Once
	userKey     *rsa.PrivateKey
)

func testHostKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	hostKeyOnce.Do(func() {
		k, err := minissl.GenerateServerKey()
		if err != nil {
			t.Fatal(err)
		}
		hostKey = k
	})
	return hostKey
}

func testUserKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	userKeyOnce.Do(func() {
		k, err := GenerateUserKey()
		if err != nil {
			t.Fatal(err)
		}
		userKey = k
	})
	return userKey
}

var testSeed = []byte("alice-skey-seed")

func testUsers(t testing.TB) []User {
	return []User{
		{Name: "alice", Password: "sesame", UID: 1000, PubKey: &testUserKey(t).PublicKey,
			SKeySeed: testSeed, SKeyN: 99},
		{Name: "bob", Password: "hunter2", UID: 1001},
	}
}

// runServer boots a system with the given variant ("mono", "privsep",
// "wedge"), serves nConns connections, and hands the test a dial helper.
func runServer(t *testing.T, variant string, nConns int, monoHooks MonoHooks,
	psHooks PrivsepHooks, wHooks WedgeHooks, warmPassword string,
	drive func(dial func() *Client)) {
	t.Helper()
	k := kernel.New()
	if err := SetupUsers(k, testUsers(t)); err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{HostKey: testHostKey(t), Options: "PasswordAuthentication yes"}
	app := sthread.Boot(k)

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serve func(*netsim.Conn) error
			switch variant {
			case "mono":
				serve = NewMonolithic(root, cfg, monoHooks).ServeConn
			case "privsep":
				srv, err := NewPrivsep(root, cfg, warmPassword, psHooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serve = srv.ServeConn
			case "wedge":
				srv, err := NewWedge(root, cfg, wHooks)
				if err != nil {
					t.Error(err)
					close(ready)
					return
				}
				serve = srv.ServeConn
			}
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			for i := 0; i < nConns; i++ {
				c, err := l.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				serve(c)
			}
		})
	}()
	<-ready

	dial := func() *Client {
		conn, err := k.Net.Dial("sshd:22")
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(conn, &testHostKey(t).PublicKey)
		if err != nil {
			t.Fatalf("client setup: %v", err)
		}
		return c
	}
	drive(dial)
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func allVariants(t *testing.T, fn func(t *testing.T, variant string)) {
	for _, v := range []string{"mono", "privsep", "wedge"} {
		t.Run(v, func(t *testing.T) { fn(t, v) })
	}
}

func TestPasswordLoginAndScp(t *testing.T) {
	allVariants(t, func(t *testing.T, variant string) {
		runServer(t, variant, 1, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
			c := dial()
			if err := c.AuthPassword("alice", "sesame"); err != nil {
				t.Fatalf("login: %v", err)
			}
			if c.UID != 1000 {
				t.Fatalf("uid = %d", c.UID)
			}
			payload := []byte("hello from scp")
			if err := c.ScpPut("notes.txt", payload); err != nil {
				t.Fatalf("scp: %v", err)
			}
			c.Exit()
		})
	})
}

func TestWrongPasswordThenRightPassword(t *testing.T) {
	allVariants(t, func(t *testing.T, variant string) {
		runServer(t, variant, 1, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
			c := dial()
			if err := c.AuthPassword("alice", "wrong"); !errors.Is(err, ErrAuthFailed) {
				t.Fatalf("wrong password: %v", err)
			}
			if err := c.AuthPassword("alice", "sesame"); err != nil {
				t.Fatalf("right password after failure: %v", err)
			}
			c.Exit()
		})
	})
}

func TestPubkeyLogin(t *testing.T) {
	for _, variant := range []string{"mono", "wedge"} {
		t.Run(variant, func(t *testing.T) {
			runServer(t, variant, 1, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
				c := dial()
				if err := c.AuthPubkey("alice", testUserKey(t)); err != nil {
					t.Fatalf("pubkey login: %v", err)
				}
				c.Exit()
			})
		})
	}
}

func TestPubkeyWrongKeyFails(t *testing.T) {
	wrong, err := GenerateUserKey()
	if err != nil {
		t.Fatal(err)
	}
	runServer(t, "wedge", 1, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
		c := dial()
		if err := c.AuthPubkey("alice", wrong); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("wrong key: %v", err)
		}
		c.Exit()
	})
}

func TestSKeyLoginStepsChain(t *testing.T) {
	allVariants(t, func(t *testing.T, variant string) {
		runServer(t, variant, 2, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
			c := dial()
			chal, err := c.SKeyChallenge("alice")
			if err != nil {
				t.Fatalf("challenge: %v", err)
			}
			if chal != 99 {
				t.Fatalf("challenge n = %d, want 99", chal)
			}
			if err := c.SKeyRespond(SKeyChain(testSeed, chal-1)); err != nil {
				t.Fatalf("respond: %v", err)
			}
			c.Exit()

			// Second login: the chain stepped down to 98.
			c2 := dial()
			chal2, err := c2.SKeyChallenge("alice")
			if err != nil {
				t.Fatal(err)
			}
			if chal2 != 98 {
				t.Fatalf("second challenge n = %d, want 98", chal2)
			}
			if err := c2.SKeyRespond(SKeyChain(testSeed, chal2-1)); err != nil {
				t.Fatalf("second respond: %v", err)
			}
			c2.Exit()
		})
	})
}

func TestSKeyReplayRejected(t *testing.T) {
	runServer(t, "wedge", 2, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
		c := dial()
		chal, err := c.SKeyChallenge("alice")
		if err != nil {
			t.Fatal(err)
		}
		otp := SKeyChain(testSeed, chal-1)
		if err := c.SKeyRespond(otp); err != nil {
			t.Fatal(err)
		}
		c.Exit()

		// Replaying the same OTP must fail: the chain moved on.
		c2 := dial()
		if _, err := c2.SKeyChallenge("alice"); err != nil {
			t.Fatal(err)
		}
		if err := c2.SKeyRespond(otp); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("replay: %v", err)
		}
		c2.Exit()
	})
}

// TestSKeyUsernameProbe reproduces the [14] information leak in the
// baselines and its absence under Wedge: the baselines answer "no such
// user" for unknown names, while the Wedge S/Key gate issues a dummy
// challenge indistinguishable in shape from a real one.
func TestSKeyUsernameProbe(t *testing.T) {
	for _, tc := range []struct {
		variant string
		leaks   bool
	}{
		{"mono", true},
		{"privsep", true},
		{"wedge", false},
	} {
		t.Run(tc.variant, func(t *testing.T) {
			runServer(t, tc.variant, 1, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
				c := dial()
				_, err := c.SKeyChallenge("nonexistent-user")
				if tc.leaks {
					if err == nil {
						t.Fatal("expected the existence leak in the baseline")
					}
					if !strings.Contains(err.Error(), "no such user") {
						t.Fatalf("leak error = %v", err)
					}
				} else {
					if err != nil {
						t.Fatalf("wedge variant leaked user existence: %v", err)
					}
					// The dummy challenge still leads to auth failure.
					if err := c.SKeyRespond([]byte("anything")); !errors.Is(err, ErrAuthFailed) {
						t.Fatalf("dummy challenge verdict: %v", err)
					}
				}
				c.Exit()
			})
		})
	}
}

// TestPrivsepMonitorUsernameProbe shows the first §5.2 lesson from the
// exploit's point of view: code injected into the privsep slave can ask
// the monitor getpwnam and distinguish valid from invalid usernames.
func TestPrivsepMonitorUsernameProbe(t *testing.T) {
	probe := make(chan [2]bool, 1)
	hooks := PrivsepHooks{Slave: func(_ *kernel.Task, query func(monReq) monResp, _ vm.Addr, _ int) {
		alice := query(monReq{op: "getpwnam", user: "alice"}).pw != nil
		nobody := query(monReq{op: "getpwnam", user: "nobody-here"}).pw != nil
		probe <- [2]bool{alice, nobody}
	}}
	runServer(t, "privsep", 1, MonoHooks{}, hooks, WedgeHooks{}, "", func(dial func() *Client) {
		c := dial()
		c.AuthPassword("alice", "sesame")
		c.Exit()
	})
	got := <-probe
	if !got[0] || got[1] {
		t.Fatalf("probe results = %v, want [true false]", got)
	}
	// The leak: the two answers differ, so usernames are enumerable.
	if got[0] == got[1] {
		t.Fatal("no distinguishable answers; test broken")
	}
}

// TestWedgePasswordGateDummyPasswd shows the fix: the worker-visible reply
// for an unknown user has the same shape as for a known one.
func TestWedgePasswordGateDummyPasswd(t *testing.T) {
	type reply struct {
		found uint64
		okLen bool
	}
	replies := make(chan reply, 2)
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		// The "exploit" invokes the password gate directly for a known
		// and an unknown user, comparing the reply shapes.
		for _, user := range []string{"alice", "definitely-not-a-user"} {
			payload := user + "\x00guess"
			fOp.Store(s, ctx.ArgAddr, sshOpPassword)
			if err := fStr.Store(s, ctx.ArgAddr, []byte(payload)); err != nil {
				replies <- reply{}
				continue
			}
			if ret, err := s.CallGate(ctx.Gates["auth_password"], nil, ctx.ArgAddr); err != nil || ret != 1 {
				replies <- reply{}
				continue
			}
			home := fPwHome.Load(s, ctx.ArgAddr)
			replies <- reply{
				found: fPwFound.Load(s, ctx.ArgAddr),
				okLen: len(home) > 0,
			}
		}
	}}
	runServer(t, "wedge", 1, MonoHooks{}, PrivsepHooks{}, hooks, "", func(dial func() *Client) {
		c := dial()
		c.AuthPassword("alice", "sesame")
		c.Exit()
	})
	known := <-replies
	unknown := <-replies
	if known.found != 1 || unknown.found != 1 {
		t.Fatalf("found flags: known=%d unknown=%d; both must be 1 (dummy passwd)", known.found, unknown.found)
	}
	if !known.okLen || !unknown.okLen {
		t.Fatal("home strings must be populated in both replies")
	}
}

// TestPAMScratchLeak reproduces the second §5.2 lesson. In the monolithic
// server the PAM scratch (holding the cleartext password) is readable by
// later exploit code in the same compartment. In the privsep server, the
// pre-fork residue is inherited by the slave. Under Wedge the scratch
// lives and dies inside the callgate.
func TestPAMScratchLeakMonolithic(t *testing.T) {
	leaked := make(chan string, 1)
	hooks := MonoHooks{PostAuth: func(s *sthread.Sthread, scratch vm.Addr, n int) {
		if scratch == 0 {
			leaked <- ""
			return
		}
		leaked <- s.ReadString(scratch, n)
	}}
	runServer(t, "mono", 1, hooks, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
		c := dial()
		c.AuthPassword("alice", "sesame")
		c.Exit()
	})
	if got := <-leaked; got != "sesame" {
		t.Fatalf("monolithic PAM scratch read %q, want the cleartext password", got)
	}
}

func TestPAMScratchLeakPrivsep(t *testing.T) {
	leaked := make(chan string, 1)
	hooks := PrivsepHooks{Slave: func(tk *kernel.Task, _ func(monReq) monResp, residue vm.Addr, n int) {
		buf := make([]byte, n)
		if err := tk.AS.Read(residue, buf); err != nil {
			leaked <- "FAULT"
			return
		}
		leaked <- string(buf)
	}}
	runServer(t, "privsep", 1, MonoHooks{}, hooks, WedgeHooks{}, "cached-password", func(dial func() *Client) {
		c := dial()
		c.AuthPassword("alice", "sesame")
		c.Exit()
	})
	if got := <-leaked; got != "cached-password" {
		t.Fatalf("slave read %q, want the fork-inherited PAM residue", got)
	}
}

// TestWedgeWorkerCannotReadHostKey: the headline goal of §5.2.
func TestWedgeWorkerCannotReadHostKey(t *testing.T) {
	probed := make(chan error, 1)
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		probed <- s.TryRead(ctx.HostKeyAddr, make([]byte, 16))
	}}
	runServer(t, "wedge", 1, MonoHooks{}, PrivsepHooks{}, hooks, "", func(dial func() *Client) {
		c := dial()
		c.AuthPassword("alice", "sesame")
		c.Exit()
	})
	if err := <-probed; err == nil {
		t.Fatal("worker read the host private key")
	}
}

// TestWedgeAuthUnbypassable: an exploited worker that skips the auth gates
// remains uid 99 and chrooted to /var/empty; it cannot write into a user's
// home by any direct means.
func TestWedgeAuthUnbypassable(t *testing.T) {
	result := make(chan error, 1)
	hooks := WedgeHooks{Worker: func(s *sthread.Sthread, ctx *WedgeConnContext) {
		if s.Task.UID != WorkerUID {
			result <- errors.New("worker not unprivileged")
			return
		}
		// Try to write into alice's home without authenticating. The
		// chroot means the path does not even resolve; and uid 99 owns
		// nothing.
		fs := s.Task.Kernel().FS
		err := fs.WriteFile(s.Task.Cred(), s.Task.Root, "/home/alice/owned", []byte("x"), 0o644)
		if err == nil {
			result <- errors.New("unauthenticated write succeeded")
			return
		}
		// And uid cannot be self-upgraded.
		if err := s.Task.SetUID(0); err == nil {
			result <- errors.New("worker set uid 0")
			return
		}
		result <- nil
	}}
	runServer(t, "wedge", 1, MonoHooks{}, PrivsepHooks{}, hooks, "", func(dial func() *Client) {
		c := dial()
		c.AuthPassword("alice", "sesame")
		c.Exit()
	})
	if err := <-result; err != nil {
		t.Fatal(err)
	}
}

// TestWedgeScpWritesAsUser: after authentication the worker writes files
// owned by the authenticated uid inside the (chrooted) home.
func TestWedgeScpWritesAsUser(t *testing.T) {
	k := kernel.New()
	if err := SetupUsers(k, testUsers(t)); err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{HostKey: testHostKey(t)}
	app := sthread.Boot(k)
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			srv, err := NewWedge(root, cfg, WedgeHooks{})
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			c, _ := l.Accept()
			srv.ServeConn(c)
		})
	}()
	<-ready
	conn, _ := k.Net.Dial("sshd:22")
	c, err := NewClient(conn, &testHostKey(t).PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AuthPassword("alice", "sesame"); err != nil {
		t.Fatal(err)
	}
	if err := c.ScpPut("upload.bin", []byte("data!")); err != nil {
		t.Fatal(err)
	}
	c.Exit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.StatPath(vfs.Cred{UID: 0}, k.FS.Root(), "/home/alice/upload.bin"); err != nil {
		t.Fatalf("uploaded file missing: %v", err)
	}
}

func TestHostKeyMismatchDetected(t *testing.T) {
	other, err := minissl.GenerateServerKey()
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New()
	if err := SetupUsers(k, testUsers(t)); err != nil {
		t.Fatal(err)
	}
	app := sthread.Boot(k)
	ready := make(chan struct{})
	go func() {
		app.Main(func(root *sthread.Sthread) {
			srv := NewMonolithic(root, ServerConfig{HostKey: testHostKey(t)}, MonoHooks{})
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				t.Error(err)
				close(ready)
				return
			}
			close(ready)
			c, _ := l.Accept()
			srv.ServeConn(c)
		})
	}()
	<-ready
	conn, err := k.Net.Dial("sshd:22")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(conn, &other.PublicKey); err == nil {
		t.Fatal("client accepted mismatched host key")
	}
	conn.Close()
}

func TestShadowRoundTrip(t *testing.T) {
	entries := []ShadowEntry{
		{Name: "a", Salt: "s", Hash: HashPassword("s", "pw"), UID: 1, Home: "/home/a"},
		{Name: "b", Salt: "t", Hash: HashPassword("t", "pw2"), UID: 2, Home: "/home/b"},
	}
	parsed, err := ParseShadow(FormatShadow(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[0] != entries[0] || parsed[1] != entries[1] {
		t.Fatalf("roundtrip mismatch: %+v", parsed)
	}
	if _, err := ParseShadow([]byte("malformed line")); err == nil {
		t.Fatal("malformed shadow accepted")
	}
}

func TestSKeyChainProperties(t *testing.T) {
	seed := []byte("seed")
	e := SKeyEntry{Name: "u", N: 10, Last: SKeyChain(seed, 10)}
	// Correct response: hash^9(seed).
	if !VerifySKey(&e, SKeyChain(seed, 9)) {
		t.Fatal("valid response rejected")
	}
	if e.N != 9 {
		t.Fatalf("chain position = %d", e.N)
	}
	// Wrong response rejected, state unchanged.
	if VerifySKey(&e, []byte("wrong")) {
		t.Fatal("garbage accepted")
	}
	if e.N != 9 {
		t.Fatal("failed verify mutated state")
	}
	// Chain exhaustion.
	e.N = 1
	if VerifySKey(&e, SKeyChain(seed, 0)) {
		t.Fatal("exhausted chain accepted")
	}
}

func TestSKeyDBRoundTrip(t *testing.T) {
	entries := []SKeyEntry{{Name: "a", N: 50, Last: SKeyHash([]byte("x"))}}
	parsed, err := ParseSKey(FormatSKey(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Name != "a" || parsed[0].N != 50 ||
		string(parsed[0].Last) != string(entries[0].Last) {
		t.Fatalf("roundtrip mismatch: %+v", parsed)
	}
}

func TestSignHashIsHashBound(t *testing.T) {
	key := testHostKey(t)
	data := []byte("stream of data to be signed")
	sig, err := SignHash(key, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyHash(&key.PublicKey, data, sig); err != nil {
		t.Fatal(err)
	}
	if err := VerifyHash(&key.PublicKey, []byte("other data"), sig); err == nil {
		t.Fatal("signature verified for different data")
	}
}

// TestAuthSKeyHelper: the one-call client helper performs the whole
// challenge-response exchange.
func TestAuthSKeyHelper(t *testing.T) {
	runServer(t, "wedge", 2, MonoHooks{}, PrivsepHooks{}, WedgeHooks{}, "", func(dial func() *Client) {
		c := dial()
		if err := c.AuthSKey("alice", testSeed); err != nil {
			t.Fatalf("AuthSKey: %v", err)
		}
		c.Exit()

		// The wrong seed computes a response off the chain and fails.
		c2 := dial()
		if err := c2.AuthSKey("alice", []byte("wrong seed")); err == nil {
			t.Fatal("AuthSKey with the wrong seed succeeded")
		}
		c2.Exit()
	})
}
