// Provos-style privilege separation ([13] in the paper): a privileged
// monitor and an unprivileged slave created by fork, talking over a narrow
// request interface. This is "today's privilege-separated OpenSSH" that
// §5.2 compares Wedge against, and it reproduces both of the paper's
// lessons:
//
//   - The monitor's getpwnam reply distinguishes valid usernames from
//     invalid ones ("either returns NULL if that username does not exist,
//     or the passwd structure"), so an exploited slave can probe the user
//     database — the vulnerability the paper notes "remains in today's
//     portable OpenSSH 4.7".
//   - fork-based slaves inherit a clone of the parent's memory, so
//     scratch data left behind by earlier library calls (the PAM bug) is
//     readable after exploitation, because scrubbing-by-hand is brittle.

package sshd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

// monReq is one IPC request from slave to monitor; the narrow interface of
// privilege separation.
type monReq struct {
	op    string // "getpwnam" | "checkpass" | "sign" | "skeychal" | "skeyverify"
	user  string
	pass  string
	nonce []byte
	resp  chan monResp
}

type monResp struct {
	pw    *Passwd // nil when the user does not exist — the information leak
	ok    bool
	sig   []byte
	chalN int
}

// PrivsepStats counts privsep server activity.
type PrivsepStats struct {
	Logins      atomic.Uint64
	Fails       atomic.Uint64
	MonitorMsgs atomic.Uint64
}

// Privsep is the monitor+slave server.
type Privsep struct {
	Stats PrivsepStats

	root  *sthread.Sthread
	cfg   ServerConfig
	hooks PrivsepHooks

	// monMu serializes monitor request handling across concurrently
	// served connections. The real monitor is a process serving one IPC
	// request at a time; in the simulation every connection's monitor
	// half runs on the shared root sthread, whose private heap (PAM
	// scratch, parse buffers) is not meant for concurrent callers.
	monMu sync.Mutex

	// pamResidueAddr marks PAM scratch left in the monitor's memory
	// before forking, inherited by every slave.
	pamResidueAddr vm.Addr
	pamResidueLen  int
}

// PrivsepHooks injects exploit code into the slave.
type PrivsepHooks struct {
	// Slave runs inside the forked slave with its privileges, receiving
	// the monitor query function (the attack surface an exploited slave
	// actually has) and the inherited PAM residue location.
	Slave func(t *kernel.Task, query func(monReq) monResp, residue vm.Addr, n int)
}

// NewPrivsep builds the server. warmPassword simulates a PAM conversation
// that happened in the parent before forking (e.g. a prior login), leaving
// scratch residue that forked children inherit.
func NewPrivsep(root *sthread.Sthread, cfg ServerConfig, warmPassword string, hooks PrivsepHooks) (*Privsep, error) {
	p := &Privsep{root: root, cfg: cfg, hooks: hooks}
	if warmPassword != "" {
		scratch, err := root.Malloc(len(warmPassword) + 1)
		if err != nil {
			return nil, err
		}
		root.WriteString(scratch, warmPassword)
		// Not scrubbed: the point of the exercise.
		p.pamResidueAddr = scratch
		p.pamResidueLen = len(warmPassword)
	}
	return p, nil
}

// monitor answers one slave request with full privileges, one request
// at a time (see monMu).
func (p *Privsep) monitor(req monReq) monResp {
	p.monMu.Lock()
	defer p.monMu.Unlock()
	p.Stats.MonitorMsgs.Add(1)
	s := p.root
	switch req.op {
	case "getpwnam":
		entries, err := readShadow(s)
		if err != nil {
			return monResp{}
		}
		entry, found := LookupShadow(entries, req.user)
		if !found {
			return monResp{pw: nil} // the username-probe leak
		}
		return monResp{pw: &Passwd{Name: entry.Name, UID: entry.UID, Home: entry.Home}}
	case "checkpass":
		entries, err := readShadow(s)
		if err != nil {
			return monResp{}
		}
		entry, found := LookupShadow(entries, req.user)
		if !found {
			return monResp{ok: false}
		}
		ok, _, _ := pamCheck(s, entry, req.pass)
		return monResp{ok: ok}
	case "sign":
		sig, err := SignHash(p.cfg.HostKey, req.nonce)
		if err != nil {
			return monResp{}
		}
		return monResp{sig: sig}
	case "skeychal":
		db, err := readSKeyDB(s)
		if err != nil {
			return monResp{}
		}
		for i := range db {
			if db[i].Name == req.user {
				return monResp{ok: true, chalN: db[i].N}
			}
		}
		return monResp{ok: false} // existence leak again
	case "skeyverify":
		db, err := readSKeyDB(s)
		if err != nil {
			return monResp{}
		}
		for i := range db {
			if db[i].Name == req.user {
				if VerifySKey(&db[i], req.nonce) {
					writeSKeyDB(s, db)
					return monResp{ok: true}
				}
				return monResp{ok: false}
			}
		}
		return monResp{ok: false}
	}
	return monResp{}
}

// ServeConn forks an unprivileged slave for the connection; the monitor
// (this task) serves its IPC requests until the slave exits.
func (p *Privsep) ServeConn(conn *netsim.Conn) error {
	s := p.root
	fd := s.Task.InstallFD(conn, kernel.FDRW)
	defer s.Task.CloseFD(fd)

	reqs := make(chan monReq)
	query := func(r monReq) monResp {
		r.resp = make(chan monResp, 1)
		reqs <- r
		return <-r.resp
	}

	residue, residueLen := p.pamResidueAddr, p.pamResidueLen
	hooks := p.hooks
	cfg := p.cfg
	stats := &p.Stats
	slave, err := s.Task.Fork(func(t *kernel.Task) {
		// Drop privileges, as the OpenSSH slave does.
		t.SetUID(99)
		if hooks.Slave != nil {
			hooks.Slave(t, query, residue, residueLen)
		}
		slaveBody(t, fd, cfg, query, stats)
	})
	if err != nil {
		close(reqs)
		return err
	}

	go func() {
		<-slave.Done()
		close(reqs)
	}()
	for r := range reqs {
		r.resp <- p.monitor(r)
	}
	_, fault := slave.Wait()
	return fault
}

// taskStream adapts a raw task fd (outside any sthread) to io.ReadWriter.
type taskStream struct {
	t  *kernel.Task
	fd int
}

func (f taskStream) Read(p []byte) (int, error)  { return f.t.ReadFD(f.fd, p) }
func (f taskStream) Write(p []byte) (int, error) { return f.t.WriteFD(f.fd, p) }

// slaveBody is the unprivileged, network-facing half.
func slaveBody(t *kernel.Task, fd int, cfg ServerConfig, query func(monReq) monResp, stats *PrivsepStats) {
	stream := taskStream{t, fd}

	if err := WriteFrame(stream, MsgVersion, []byte(Version)); err != nil {
		return
	}
	if err := WriteFrame(stream, MsgHostKey, minissl.MarshalPublicKey(&cfg.HostKey.PublicKey)); err != nil {
		return
	}
	nonce, err := ExpectFrame(stream, MsgSignReq)
	if err != nil {
		return
	}
	resp := query(monReq{op: "sign", nonce: nonce})
	if resp.sig == nil {
		return
	}
	if err := WriteFrame(stream, MsgSignResp, resp.sig); err != nil {
		return
	}

	var authed *Passwd
	for authed == nil {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return
		}
		switch typ {
		case MsgAuthPass:
			user, pass, ok := strings.Cut(string(body), "\x00")
			if !ok {
				return
			}
			// Two-step protocol, as in portable OpenSSH: first getpwnam,
			// then the password check.
			pw := query(monReq{op: "getpwnam", user: user}).pw
			if pw == nil {
				stats.Fails.Add(1)
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
				continue
			}
			if query(monReq{op: "checkpass", user: user, pass: pass}).ok {
				authed = pw
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", pw.UID)))
			} else {
				stats.Fails.Add(1)
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthSKey:
			user := string(body)
			ch := query(monReq{op: "skeychal", user: user})
			if !ch.ok {
				stats.Fails.Add(1)
				WriteFrame(stream, MsgAuthFail, []byte("no such user"))
				continue
			}
			chal := []byte{byte(ch.chalN >> 24), byte(ch.chalN >> 16), byte(ch.chalN >> 8), byte(ch.chalN)}
			WriteFrame(stream, MsgSKeyChal, chal)
			respBytes, err := ExpectFrame(stream, MsgSKeyReply)
			if err != nil {
				return
			}
			if query(monReq{op: "skeyverify", user: user, nonce: respBytes}).ok {
				pw := query(monReq{op: "getpwnam", user: user}).pw
				if pw != nil {
					authed = pw
					WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", pw.UID)))
					continue
				}
			}
			stats.Fails.Add(1)
			WriteFrame(stream, MsgAuthFail, []byte("permission denied"))

		case MsgExit:
			return
		default:
			return
		}
	}
	stats.Logins.Add(1)

	// Post-auth: the real OpenSSH re-execs with the user's privileges;
	// here the slave performs uploads through the monitor-granted uid.
	fs := t.Kernel().FS
	for {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return
		}
		switch typ {
		case MsgScpPut:
			name := string(body)
			data, err := ExpectFrame(stream, MsgScpData)
			if err != nil {
				return
			}
			if strings.ContainsAny(name, "/\x00") {
				WriteFrame(stream, MsgAuthFail, []byte("bad name"))
				continue
			}
			if err := fs.WriteFile(vfs.Cred{UID: authed.UID}, t.Root, authed.Home+"/"+name, data, 0o644); err != nil {
				WriteFrame(stream, MsgAuthFail, []byte(err.Error()))
				continue
			}
			WriteFrame(stream, MsgScpOK, nil)
		case MsgExit:
			return
		default:
			return
		}
	}
}
