// The pooled privsep monitor: the Provos-style monitor's narrow request
// interface (privsep.go) re-expressed as pooled recycled callgates on the
// shared wedge-server runtime — the fourth serve.App, so the paper's §5.2
// privsep-vs-wedge comparison runs under the same accept loop, drain,
// queue, and auto-slots machinery as httpd, sshd, and pop3.
//
// Where Privsep forks one unprivileged slave per connection and serves its
// monitor requests over channel IPC, PooledPrivsep keeps both halves
// long-lived: each pool slot carries a confined recycled "slave" worker
// (WorkerUID, chrooted to /var/empty — one invocation per connection, the
// descriptor a per-invocation argument) and one recycled gate per monitor
// operation:
//
//   - "getpwnam", "checkpass": the two-step password protocol of portable
//     OpenSSH, kept as two separate monitor entry points.
//   - "sign": the host-key signature, holding the host-key tag (the gate
//     hashes the input itself — no signing oracle).
//   - "skeychal", "skeyverify": the S/Key challenge/response pair, with
//     the pending username in the connection's gate-side record.
//
// Both §5.2 privsep leaks are closed by the re-expression, which is the
// point of the contrast:
//
//   - The fork-based monitor's getpwnam reply distinguishes valid from
//     invalid usernames (the probe "remains in today's portable OpenSSH
//     4.7"). The pooled getpwnam gate fabricates a dummy passwd structure
//     for unknown users — same reply shape, nothing learnable — and
//     skeychal serves a deterministic dummy challenge, exactly as the
//     Wedge auth gates do.
//   - Fork-inherited memory residue (the PAM scratch) cannot exist: the
//     slave is not a fork of the monitor. PAM scratch lives in the
//     checkpass gate's private heap behind tag isolation, and the slave's
//     reachable memory is the slot's argument tag plus the public-key
//     blob.
//
// Successful authentication promotes the slot's recycled slave (uid and
// filesystem root) from inside the monitor gate — the only path to a
// logged-in state — and the EndConn hook demotes it before the slot can
// pass to another principal.

package sshd

import (
	"fmt"
	"strings"

	"wedge/internal/gatepool"
	"wedge/internal/minissl"
	"wedge/internal/policy"
	"wedge/internal/serve"
	"wedge/internal/sthread"
	"wedge/internal/tags"
	"wedge/internal/vm"
)

// PooledPrivsep serves privilege-separated SSH sessions with zero sthread
// creations on the serving path.
type PooledPrivsep struct {
	Stats PrivsepStats

	root *sthread.Sthread
	cfg  ServerConfig

	hostTag  tags.Tag
	hostAddr vm.Addr
	pubTag   tags.Tag
	pubAddr  vm.Addr

	hooks WedgeHooks

	// The embedded runtime owns the pool, the accept loop (Serve),
	// lifecycle (Drain/Undrain/Close), admission control (SetQueue),
	// sizing (Resize/SetAutoSlots), observability (Snapshot/PoolStats),
	// and the conn-id demux (Lookup) — all promoted onto the server.
	*serve.Runtime[privsepPoolConn]
}

// privsepPoolConn is one connection's gate-side monitor state: what the
// fork-based build kept implicitly in the forked slave's lifetime.
type privsepPoolConn struct {
	pendingSKey string
}

// demoteSSHWorker strips any promotion an auth/monitor gate performed on a
// slot's recycled worker, restoring the confined identity it was created
// with. Shared by the pooled Wedge build and the pooled privsep monitor.
func demoteSSHWorker(root, worker *sthread.Sthread) {
	root.Task.ChrootOn(worker.Task, "/var/empty")
	root.Task.SetUIDOn(worker.Task, WorkerUID)
}

// NewPooledPrivsep builds the pooled privsep server with the given number
// of slots (serve.DefaultSlots if slots <= 0). SetupUsers must have
// provisioned /var/empty. Hooks inject exploit code into the slave
// compartment, as in the other pooled builds.
func NewPooledPrivsep(root *sthread.Sthread, cfg ServerConfig, slots int, hooks WedgeHooks) (*PooledPrivsep, error) {
	p := &PooledPrivsep{root: root, cfg: cfg, hooks: hooks}
	var err error
	if p.hostTag, p.hostAddr, err = placeSSHBlob(root, minissl.MarshalPrivateKey(cfg.HostKey)); err != nil {
		return nil, err
	}
	if p.pubTag, p.pubAddr, err = placeSSHBlob(root, minissl.MarshalPublicKey(&cfg.HostKey.PublicKey)); err != nil {
		releaseTags(root, p.hostTag)
		return nil, err
	}
	p.Runtime, err = serve.New(root, serve.App[privsepPoolConn]{
		Name:   "privsep",
		Slots:  slots,
		Schema: sshSchema,
		Worker: "slave",
		Gates: []gatepool.GateDef{
			{
				Name: "slave",
				SC: policy.New().
					MustMemAdd(p.pubTag, vm.PermRead).
					SetUID(WorkerUID).
					SetRoot("/var/empty"),
				Entry: p.slaveEntry,
			},
			{
				Name:  "getpwnam",
				Entry: p.getpwnamEntry,
			},
			{
				Name: "checkpass",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := p.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return p.checkpassEntry(g, arg, c)
				},
			},
			{
				Name:    "sign",
				SC:      policy.New().MustMemAdd(p.hostTag, vm.PermRead),
				Entry:   p.signEntry,
				Trusted: p.hostAddr,
			},
			{
				Name: "skeychal",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := p.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return p.skeychalEntry(g, arg, c)
				},
			},
			{
				Name: "skeyverify",
				Entry: func(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
					c := p.Lookup(g, arg)
					if c == nil {
						return 0
					}
					return p.skeyverifyEntry(g, arg, c)
				},
			},
		},
		// EndConn runs before the slot is released: whatever this
		// connection's authentication did to the recycled slave's identity
		// is undone before another principal (or another connection of the
		// same one) can lease the slot. The slave is resolved through the
		// lease at use time, never cached — migration in the batched pool
		// can re-point the lease at another slot before dispatch.
		EndConn: func(c *serve.Conn[privsepPoolConn]) { demoteSSHWorker(root, poolWorker(c.Lease, "slave")()) },
	})
	if err != nil {
		releaseTags(root, p.hostTag, p.pubTag)
		return nil, err
	}
	return p, nil
}

// readMonStr decodes the string argument a monitor gate was invoked
// with, bounded to the gate's own input cap through the codec.
func readMonStr(g *sthread.Sthread, arg vm.Addr, max int) (string, bool) {
	buf, err := fStr.LoadMax(g, arg, max)
	if err != nil || len(buf) == 0 {
		return "", false
	}
	return string(buf), true
}

// getpwnamEntry is the monitor's getpwnam. Unlike the fork-based monitor
// — whose reply "either returns NULL if that username does not exist, or
// the passwd structure" — the reply is *identical* for every username:
// always the dummy passwd, known user or not, shadow readable or not.
// The slave never needs the real values pre-auth (checkpass/skeyverify
// write the real uid and home only alongside a successful verdict), so
// writing them here would hand an exploited slave the user-enumeration
// oracle back through the argument block even with the wire replies
// uniform. Shape preserved, content constant, nothing learnable.
func (p *PooledPrivsep) getpwnamEntry(g *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	p.Stats.MonitorMsgs.Add(1)
	if _, ok := readMonStr(g, arg, sshUserCap); !ok {
		return 0
	}
	fPwFound.Store(g, arg, 1)
	fPwUID.Store(g, arg, WorkerUID)
	fPwHome.StoreTrunc(g, arg, "/nonexistent")
	return 1
}

// checkpassEntry is the monitor's password check: validate user\x00pass
// against /etc/shadow (read with the gate's disk credentials) and, on
// success, promote the slot's recycled slave — the monitor granting the
// logged-in identity, as the fork-based monitor's uid grant does. The
// PAM-style scratch lives in the gate's private heap and is unreachable
// from the slave: no fork, no inherited residue.
func (p *PooledPrivsep) checkpassEntry(g *sthread.Sthread, arg vm.Addr, c *serve.Conn[privsepPoolConn]) vm.Addr {
	p.Stats.MonitorMsgs.Add(1)
	payload, ok := readMonStr(g, arg, sshStrCap)
	if !ok {
		return 0
	}
	user, pass, ok := strings.Cut(payload, "\x00")
	if !ok {
		return 0
	}
	fAuthOK.Store(g, arg, 0)
	// Every rejection below — unreadable shadow included — looks the
	// same to the slave (AuthOK=0) and is counted, so Logins+Fails
	// reconciles with attempts.
	entries, err := readShadow(g)
	if err != nil {
		p.Stats.Fails.Add(1)
		return 1
	}
	entry, found := LookupShadow(entries, user)
	if !found {
		p.Stats.Fails.Add(1)
		return 1
	}
	passOK, _, _ := pamCheck(g, entry, pass)
	if passOK && promote(g, poolWorker(c.Lease, "slave")(), entry.UID, entry.Home) {
		fPwUID.Store(g, arg, entry.UID)
		fPwHome.StoreTrunc(g, arg, entry.Home)
		fAuthOK.Store(g, arg, 1)
		p.Stats.Logins.Add(1)
	} else {
		p.Stats.Fails.Add(1)
	}
	return 1
}

// signEntry is the monitor's host-key signature, counted as a monitor
// message; the body is the shared sign gate (hashes the input itself, so
// the slave gets no signing oracle).
func (p *PooledPrivsep) signEntry(g *sthread.Sthread, arg, trusted vm.Addr) vm.Addr {
	p.Stats.MonitorMsgs.Add(1)
	return signGateEntry(g, arg, trusted)
}

// skeychalEntry serves the S/Key challenge. The fork-based monitor's
// reply leaks existence ("existence leak again"); here unknown users get
// a deterministic dummy challenge with the same shape.
func (p *PooledPrivsep) skeychalEntry(g *sthread.Sthread, arg vm.Addr, c *serve.Conn[privsepPoolConn]) vm.Addr {
	p.Stats.MonitorMsgs.Add(1)
	user, ok := readMonStr(g, arg, sshSKeyCap)
	if !ok {
		return 0
	}
	db, err := readSKeyDB(g)
	if err != nil {
		return 0
	}
	for i := range db {
		if db[i].Name == user {
			c.State.pendingSKey = user
			fChalN.Store(g, arg, uint64(db[i].N))
			return 1
		}
	}
	c.State.pendingSKey = ""
	fChalN.Store(g, arg, SKeyDummyChallenge(user))
	return 1
}

// skeyverifyEntry verifies the S/Key response for the pending user,
// stepping the chain and promoting the slave on success.
func (p *PooledPrivsep) skeyverifyEntry(g *sthread.Sthread, arg vm.Addr, c *serve.Conn[privsepPoolConn]) vm.Addr {
	p.Stats.MonitorMsgs.Add(1)
	fAuthOK.Store(g, arg, 0)
	// Argument validation runs before the pending-user branch: a
	// malformed response must fail identically whether the challenged
	// name was real or dummy, or the gate's return code itself becomes
	// the enumeration oracle for an exploited slave.
	resp, ok := readMonStr(g, arg, sshSKeyCap)
	if !ok {
		return 0
	}
	user := c.State.pendingSKey
	if user == "" {
		p.Stats.Fails.Add(1)
		return 1 // dummy-challenged: always fails, same shape
	}
	db, err := readSKeyDB(g)
	if err != nil {
		p.Stats.Fails.Add(1)
		return 1
	}
	for i := range db {
		if db[i].Name == user {
			if VerifySKey(&db[i], []byte(resp)) {
				writeSKeyDB(g, db)
				entries, _ := readShadow(g)
				if entry, found := LookupShadow(entries, user); found &&
					promote(g, poolWorker(c.Lease, "slave")(), entry.UID, entry.Home) {
					fPwUID.Store(g, arg, entry.UID)
					fPwHome.StoreTrunc(g, arg, entry.Home)
					fAuthOK.Store(g, arg, 1)
					p.Stats.Logins.Add(1)
					return 1
				}
			}
			p.Stats.Fails.Add(1)
			return 1
		}
	}
	p.Stats.Fails.Add(1)
	return 1
}

// slaveEntry is the per-slot recycled slave: the unprivileged,
// network-facing half of privilege separation, one invocation per
// connection, reaching the monitor only through the slot's gates.
func (p *PooledPrivsep) slaveEntry(s *sthread.Sthread, arg, _ vm.Addr) vm.Addr {
	c := p.Lookup(s, arg)
	if c == nil {
		return 0
	}
	if p.hooks.Worker != nil {
		p.hooks.Worker(s, &WedgeConnContext{
			FD:          c.FD,
			HostKeyAddr: p.hostAddr,
			ArgAddr:     arg,
		})
	}
	lease := c.Lease
	mon := func(name string) authCall {
		return func(s *sthread.Sthread, arg vm.Addr) (vm.Addr, error) {
			return lease.Call(name, s, arg)
		}
	}
	return privsepSlaveBody(s, c.FD, arg, p.pubAddr,
		mon("sign"), mon("getpwnam"), mon("checkpass"), mon("skeychal"), mon("skeyverify"))
}

// callMonStr marshals a string argument through the codec (bounded to
// the gate's own input cap — an oversized client payload is a typed
// protocol failure, never a write into the slot arena) and invokes one
// monitor gate.
func callMonStr(s *sthread.Sthread, call authCall, arg vm.Addr, op uint64, payload []byte, max int) bool {
	if !storeArg(s, arg, op, payload, max) {
		return false
	}
	ret, err := call(s, arg)
	return err == nil && ret == 1
}

// privsepSlaveBody speaks the slave's half of the privsep protocol
// (privsep.go slaveBody), with every monitor request a pooled recycled
// gate call instead of channel IPC to a forked parent.
func privsepSlaveBody(s *sthread.Sthread, fd int, arg vm.Addr, pubAddr vm.Addr,
	sign, getpwnam, checkpass, skeychal, skeyverify authCall) vm.Addr {
	stream := fdStream{s, fd}

	if err := WriteFrame(stream, MsgVersion, []byte(Version)); err != nil {
		return 0
	}
	if err := WriteFrame(stream, MsgHostKey, loadBlob(s, pubAddr)); err != nil {
		return 0
	}
	nonce, err := ExpectFrame(stream, MsgSignReq)
	if err != nil {
		return 0
	}
	if !callMonStr(s, sign, arg, sshOpSign, nonce, sshSignCap) {
		return 0
	}
	sig, err := fSig.Load(s, arg)
	if err != nil || len(sig) == 0 {
		return 0
	}
	if err := WriteFrame(stream, MsgSignResp, sig); err != nil {
		return 0
	}

	authed := false
	var uid int
	for !authed {
		typ, body, err := ReadFrame(stream)
		if err != nil {
			return 0
		}
		switch typ {
		case MsgAuthPass:
			user, _, ok := strings.Cut(string(body), "\x00")
			if !ok {
				return 0
			}
			// Two-step protocol, as in portable OpenSSH: first getpwnam,
			// then the password check. The getpwnam reply no longer
			// distinguishes unknown users, so the slave always proceeds.
			if !callMonStr(s, getpwnam, arg, sshOpPassword, []byte(user), sshUserCap) {
				return 0
			}
			if !callMonStr(s, checkpass, arg, sshOpPassword, body, sshStrCap) {
				return 0
			}
			if fAuthOK.Load(s, arg) == 1 {
				authed = true
				uid = fPwUID.Load(s, arg)
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgAuthSKey:
			if !callMonStr(s, skeychal, arg, sshOpSKeyChal, body, sshSKeyCap) {
				return 0
			}
			n := fChalN.Load(s, arg)
			chal := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
			WriteFrame(stream, MsgSKeyChal, chal)
			resp, err := ExpectFrame(stream, MsgSKeyReply)
			if err != nil {
				return 0
			}
			if !callMonStr(s, skeyverify, arg, sshOpSKeyVerify, resp, sshSKeyCap) {
				return 0
			}
			if fAuthOK.Load(s, arg) == 1 {
				authed = true
				uid = fPwUID.Load(s, arg)
				WriteFrame(stream, MsgAuthOK, []byte(fmt.Sprintf("uid=%d", uid)))
			} else {
				WriteFrame(stream, MsgAuthFail, []byte("permission denied"))
			}

		case MsgExit:
			return 1
		default:
			return 0
		}
	}

	// Post-auth: the monitor promoted the slave to the user's uid with
	// the home directory as its filesystem root, so the shared scp
	// session serves uploads with the promoted identity — no ambient
	// authority, where the fork-based slave synthesized the uid's
	// credentials itself.
	_ = uid
	return scpSessionLoop(s, stream)
}
