// Package cluster is the Wedge fleet layer: a front-end director that
// shards principals across N serve runtimes and moves live sessions
// between them. One runtime is one process-worth of compartments; the
// director lifts the gatepool's principal-affinity idea one level up —
// a principal consistently lands on one member runtime — and adds the
// operation a fleet needs that a single runtime cannot express: taking
// a member out of rotation with zero client-visible downtime.
//
// The pieces:
//
//   - A generation-numbered routing ring (ring.go): virtual-node
//     consistent hashing, two-choice by runtime load from Snapshot,
//     rebuilt immutably at g+1 on every membership change.
//   - Session relay: the director terminates the client leg and splices
//     a backend leg (netsim.Pipe) to the owning member, counting
//     outstanding request chunks so it always knows whether a worker is
//     mid-request or parked.
//   - Live handoff (the rolling drain): pause the client leg, wait for
//     the outstanding count to reach zero — the worker is then provably
//     parked on its blocked read — export the session through
//     serve.HandoffPrincipal, recover any pipelined client bytes the old
//     worker never read (DrainPending on the dead leg), resume at the
//     new owner, splice, unpause. The client sees at most a pause.
//
// Trust: the director is control plane, but the records it moves are
// payload. Every importing runtime re-validates a HandoffRecord as
// hostile input (schema hash, block bounds, app payload), and the
// director itself refuses to mix members whose schema hashes disagree —
// an upgraded build joins an old cluster as a schema mismatch error, not
// as silent block corruption.
//
// Protocol contract: the quiescence gate assumes request/response
// traffic — at most one request in flight per session, one response
// write per request. Both wedge apps wired through the director (pop3
// streams, dnsd datagrams) satisfy it; a pipelining client is safe only
// up to the bytes the director can recover from the pipes (worker-side
// reader scratch does not survive a handoff).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wedge/internal/netsim"
	"wedge/internal/serve"
)

// ErrNoMembers is returned or counted when a routing decision finds no
// live member to own a principal.
var ErrNoMembers = errors.New("cluster: no live members")

// StreamBackend is the slice of a serve.Runtime the director drives for
// stream sessions. *serve.Runtime[T] satisfies it, as does any app that
// embeds one (pop3.PooledServer).
type StreamBackend interface {
	ServeConnAs(conn *netsim.Conn, principal string) error
	ResumeConnAs(conn *netsim.Conn, principal string, rec *serve.HandoffRecord) error
	HandoffPrincipal(principal string) (*serve.HandoffRecord, error)
	SchemaHash() uint64
	Snapshot() serve.Snapshot
	Drain()
	Undrain()
}

// PacketBackend is the datagram counterpart: the slice of a
// serve.PacketRuntime the director drives for flows. dnsd.Resolver
// satisfies it via its embedded runtime.
type PacketBackend interface {
	DeliverPacket(pc *netsim.PacketConn, payload []byte, from string)
	ResumeFlow(pc *netsim.PacketConn, peer string, rec *serve.HandoffRecord) error
	HandoffPrincipal(principal string) (*serve.HandoffRecord, error)
	SchemaHash() uint64
	Snapshot() serve.Snapshot
	Drain()
	Undrain()
}

// Member declares one runtime joining the cluster. A member may serve
// streams, packets, or both, but every member must serve the same modes
// as the first one added. Host is the member's own network segment —
// packet handoff binds reply mirrors there; it is required only for
// packet members.
type Member struct {
	Name   string
	Stream StreamBackend
	Packet PacketBackend
	Host   *netsim.Network
}

// member is the director's record of one runtime.
type member struct {
	name     string
	stream   StreamBackend
	packet   PacketBackend
	host     *netsim.Network
	draining bool
}

// Stats is the director's own ledger. Per-runtime admission ledgers
// (Admitted == Served + Failed + Handed) live in each member's
// serve.Snapshot; these counters cover what only the director sees.
type Stats struct {
	Gen           uint64 // current routing-ring generation
	Members       int    // live (non-draining) members
	Sessions      int    // live stream sessions
	Flows         int    // live packet flows
	Admitted      uint64 // stream sessions + packet flows accepted
	Handoffs      uint64 // sessions/flows moved live to a new member
	HandoffFailed uint64 // handoffs that found no importable home
	Refused       uint64 // clients turned away (no member, duplicate principal)
}

// Director owns the routing ring and the relay state. All methods are
// safe for concurrent use; Remove (the rolling drain) serializes against
// itself so a handoff target can never itself be mid-drain.
type Director struct {
	// PacketIdle bounds a director-side packet flow's silence before its
	// relay state (mirror socket, reply loop) is swept. Set before
	// serving; zero means defaultPacketIdle.
	PacketIdle int64

	drainMu sync.Mutex // serializes rolling drains

	mu       sync.Mutex
	members  map[string]*member
	ring     *ring
	gen      uint64
	sessions map[string]*session
	flows    map[string]*pktFlow

	hasStream, hasPacket bool
	streamHash           uint64
	packetHash           uint64

	admitted      uint64
	handoffs      uint64
	handoffFailed uint64
	refused       uint64
}

// New returns an empty director.
func New() *Director {
	return &Director{
		members:  make(map[string]*member),
		sessions: make(map[string]*session),
		flows:    make(map[string]*pktFlow),
	}
}

// Add joins a runtime to the cluster at generation g+1. The first
// member fixes the cluster's shape (which modes it serves) and its
// schema hashes; a later member whose hash disagrees is refused with a
// typed *serve.SchemaMismatchError — two builds that would disagree
// about block bytes must never exchange sessions. Re-adding a
// previously drained member re-opens it (Undrain).
func (d *Director) Add(m Member) error {
	if m.Name == "" {
		return errors.New("cluster: member needs a name")
	}
	if m.Stream == nil && m.Packet == nil {
		return fmt.Errorf("cluster: member %q has no backend", m.Name)
	}
	if m.Packet != nil && m.Host == nil {
		return fmt.Errorf("cluster: packet member %q needs a host network", m.Name)
	}
	// Interface calls happen outside d.mu.
	var sh, ph uint64
	if m.Stream != nil {
		sh = m.Stream.SchemaHash()
		m.Stream.Undrain()
	}
	if m.Packet != nil {
		ph = m.Packet.SchemaHash()
		m.Packet.Undrain()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.members[m.Name]; ok {
		return fmt.Errorf("cluster: member %q already present", m.Name)
	}
	if len(d.members) == 0 {
		d.hasStream, d.hasPacket = m.Stream != nil, m.Packet != nil
		d.streamHash, d.packetHash = sh, ph
	} else {
		if d.hasStream != (m.Stream != nil) || d.hasPacket != (m.Packet != nil) {
			return fmt.Errorf("cluster: member %q does not serve the cluster's modes", m.Name)
		}
		if d.hasStream && sh != d.streamHash {
			return &serve.SchemaMismatchError{App: m.Name, From: m.Name,
				Want: d.streamHash, Got: sh}
		}
		if d.hasPacket && ph != d.packetHash {
			return &serve.SchemaMismatchError{App: m.Name, From: m.Name,
				Want: d.packetHash, Got: ph}
		}
	}
	d.members[m.Name] = &member{name: m.Name, stream: m.Stream, packet: m.Packet, host: m.Host}
	d.rebuildLocked()
	return nil
}

// rebuildLocked publishes generation g+1 over the live members. Caller
// holds d.mu.
func (d *Director) rebuildLocked() {
	d.gen++
	var live []*member
	for _, m := range d.members {
		if !m.draining {
			live = append(live, m)
		}
	}
	d.ring = buildRing(d.gen, live)
}

// Generation returns the current routing-ring generation.
func (d *Director) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// Remove takes the named member out of rotation with a rolling drain:
// generation g+1 excludes it immediately (no new admissions route
// there), every in-flight session it owns is handed to its new owner
// live, and only then is the runtime drained to quiescence and dropped.
// Rolling drains serialize against each other, so a handoff's target is
// never itself draining. The member's runtime is left drained but
// intact — Add re-opens it.
func (d *Director) Remove(name string) error {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()

	d.mu.Lock()
	m, ok := d.members[name]
	if !ok || m.draining {
		d.mu.Unlock()
		return fmt.Errorf("cluster: no live member %q", name)
	}
	m.draining = true
	d.rebuildLocked()
	var owned []*session
	for _, s := range d.sessions {
		if s.ownedBy(m) {
			owned = append(owned, s)
		}
	}
	var ownedFlows []*pktFlow
	for _, f := range d.flows {
		if f.ownedBy(m) {
			ownedFlows = append(ownedFlows, f)
		}
	}
	d.mu.Unlock()

	var wg sync.WaitGroup
	for _, s := range owned {
		wg.Add(1)
		go func(s *session) { defer wg.Done(); d.handoffSession(s, m) }(s)
	}
	for _, f := range ownedFlows {
		wg.Add(1)
		go func(f *pktFlow) { defer wg.Done(); d.handoffFlow(f, m) }(f)
	}
	wg.Wait()

	// Every owned session completed or moved; Drain is now a barrier, not
	// a wait — and it pins the runtime closed against stragglers.
	if m.stream != nil {
		m.stream.Drain()
	}
	if m.packet != nil {
		m.packet.Drain()
	}
	d.mu.Lock()
	delete(d.members, name)
	d.mu.Unlock()
	return nil
}

// pick routes a principal on the current generation: primary owner and
// next distinct member by consistent hash, two-choice between them by
// in-flight load. Snapshot reads happen outside the director lock.
func (d *Director) pick(principal string) *member {
	d.mu.Lock()
	r := d.ring
	d.mu.Unlock()
	if r == nil {
		return nil
	}
	p, s := r.owners(principal)
	if p == nil || s == nil {
		return p
	}
	if memberLoad(s) < memberLoad(p) {
		return s
	}
	return p
}

func memberLoad(m *member) int {
	n := 0
	if m.stream != nil {
		n += m.stream.Snapshot().Inflight
	}
	if m.packet != nil {
		n += m.packet.Snapshot().Inflight
	}
	return n
}

func (d *Director) count(c *uint64) {
	d.mu.Lock()
	*c++
	d.mu.Unlock()
}

// Stats returns the director's ledger and relay census.
func (d *Director) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	live := 0
	for _, m := range d.members {
		if !m.draining {
			live++
		}
	}
	return Stats{
		Gen:           d.gen,
		Members:       live,
		Sessions:      len(d.sessions),
		Flows:         len(d.flows),
		Admitted:      d.admitted,
		Handoffs:      d.handoffs,
		HandoffFailed: d.handoffFailed,
		Refused:       d.refused,
	}
}

// ---- stream sessions -------------------------------------------------------

// session is one relayed stream connection: the client leg the director
// owns, and a backend leg (a netsim.Pipe) to the current owning member.
// legGen counts splices; outstanding counts forwarded-but-unanswered
// client chunks — zero means the backend worker is parked on a read.
type session struct {
	d         *Director
	principal string
	client    *netsim.Conn

	mu          sync.Mutex
	cond        *sync.Cond
	member      *member
	backendCl   *netsim.Conn // director-side end of the backend pipe
	serverLeg   *netsim.Conn // backend-side end, retained for DrainPending
	legGen      int
	outstanding int
	paused      bool // client->backend forwarding held (handoff in progress)
	handing     bool
	legDead     bool // current backend leg saw EOF/close
	clientGone  bool
}

func (s *session) ownedBy(m *member) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.member == m && !s.clientGone
}

// Serve accepts clients until the listener closes, relaying each
// connection to its owning member, and returns once every relay ends.
func (d *Director) Serve(l *netsim.Listener) error {
	var serveErr error
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			if !errors.Is(err, netsim.ErrListenerDown) {
				serveErr = err
			}
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.ServeConn(conn)
		}()
	}
	wg.Wait()
	return serveErr
}

// ServeConn relays one client connection, sharding by its network
// address.
func (d *Director) ServeConn(client *netsim.Conn) {
	d.ServeConnAs(client, client.RemoteAddr())
}

// ServeConnAs relays one client connection under an explicit principal.
// It returns when the session ends; the client leg is closed on return.
// One live session per principal: a second concurrent session for the
// same principal is refused (closed), keeping "the principal's session"
// well-defined for handoff.
func (d *Director) ServeConnAs(client *netsim.Conn, principal string) {
	defer client.Close()
	m := d.pick(principal)
	if m == nil || m.stream == nil {
		d.count(&d.refused)
		return
	}
	s := &session{d: d, principal: principal, client: client}
	s.cond = sync.NewCond(&s.mu)
	d.mu.Lock()
	if _, dup := d.sessions[principal]; dup {
		d.refused++
		d.mu.Unlock()
		return
	}
	d.sessions[principal] = s
	d.admitted++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		if d.sessions[principal] == s {
			delete(d.sessions, principal)
		}
		d.mu.Unlock()
	}()
	s.connect(m, nil, nil)
	go s.clientLoop()
	s.backendLoop()
}

// connect splices a backend leg to m, dispatching the serve (or resume)
// call on its own goroutine. pending, when non-empty, is client bytes
// the previous leg never consumed: they are written to the new leg
// first, before any post-handoff client traffic can follow, and counted
// as an outstanding request chunk.
func (s *session) connect(m *member, rec *serve.HandoffRecord, pending []byte) {
	cl, sv := netsim.Pipe("cluster:"+s.principal, m.name)
	s.mu.Lock()
	s.member = m
	s.backendCl = cl
	s.serverLeg = sv
	s.legGen++
	s.legDead = false
	if len(pending) > 0 {
		cl.Write(pending)
		s.outstanding++
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	go func() {
		if rec == nil {
			m.stream.ServeConnAs(sv, s.principal)
		} else {
			m.stream.ResumeConnAs(sv, s.principal, rec)
		}
		// The runtime does not own the conn; close it so the relay
		// observes the session's end (or a refused resume) as leg EOF.
		sv.Close()
	}()
}

// clientLoop forwards client bytes to the current backend leg, holding
// at the pause gate during a handoff. Forwarding happens under s.mu —
// netsim pipe writes never block — so a quiesced pause means no chunk
// is mid-flight.
func (s *session) clientLoop() {
	buf := make([]byte, 32*1024)
	for {
		n, err := s.client.Read(buf)
		if n > 0 {
			s.mu.Lock()
			for s.paused {
				s.cond.Wait()
			}
			s.outstanding++
			s.backendCl.Write(buf[:n])
			s.mu.Unlock()
		}
		if err != nil {
			s.mu.Lock()
			s.clientGone = true
			cl := s.backendCl
			s.cond.Broadcast()
			s.mu.Unlock()
			// Half-close toward the worker: it reads EOF and completes.
			cl.CloseWrite()
			return
		}
	}
}

// backendLoop forwards backend bytes to the client, resetting the
// outstanding count after each forwarded response. On leg EOF it either
// ends the session or — when a handoff is splicing — waits for the new
// leg and continues. EOF semantics drain buffered response bytes first,
// so nothing a worker wrote before its interrupt is lost.
func (s *session) backendLoop() {
	buf := make([]byte, 32*1024)
	for {
		s.mu.Lock()
		for s.legDead && s.handing {
			s.cond.Wait()
		}
		if s.legDead {
			s.mu.Unlock()
			return
		}
		cl := s.backendCl
		gen := s.legGen
		s.mu.Unlock()

		n, err := cl.Read(buf)
		if n > 0 {
			if _, werr := s.client.Write(buf[:n]); werr != nil {
				s.mu.Lock()
				s.clientGone = true
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			s.mu.Lock()
			s.outstanding = 0
			s.cond.Broadcast()
			s.mu.Unlock()
		}
		if err != nil {
			s.mu.Lock()
			if s.legGen != gen {
				s.mu.Unlock()
				continue // spliced under us: read the new leg
			}
			s.legDead = true
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}
}

// handoffSession moves one session off a draining member. The sequence
// is the package comment's: pause, quiesce, export, recover pipelined
// bytes, resume at the new owner, splice, unpause. A session that
// completes during any step is left to finish normally.
func (d *Director) handoffSession(s *session, from *member) {
	s.mu.Lock()
	if s.member != from || s.clientGone || s.legDead {
		s.mu.Unlock()
		return
	}
	s.paused = true
	s.handing = true
	for s.outstanding != 0 && !s.legDead && !s.clientGone {
		s.cond.Wait()
	}
	if s.legDead || s.clientGone {
		// Completing on its own; let it.
		s.paused = false
		s.handing = false
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	sv := s.serverLeg
	s.mu.Unlock()

	// ErrNoSession is ambiguous: the session may have completed — or the
	// director admitted it so recently that the runtime has not yet
	// registered the conn. Retry while the leg is live; a completing
	// session's leg EOF resolves the ambiguity within a few hops.
	var rec *serve.HandoffRecord
	var err error
	for i := 0; ; i++ {
		rec, err = from.stream.HandoffPrincipal(s.principal)
		if err == nil {
			break
		}
		s.mu.Lock()
		over := s.legDead || s.clientGone
		s.mu.Unlock()
		if over || i >= 2000 {
			// Completed (or wedged beyond hope): let it end normally.
			s.mu.Lock()
			s.paused = false
			s.handing = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		time.Sleep(time.Millisecond)
	}
	// Client bytes the old worker never read (pipelined past the last
	// response) survive in the dead leg's pipe; they re-play at the new
	// home ahead of anything the unpause lets through.
	pending := sv.DrainPending()
	to := d.pick(s.principal)
	if to == nil || to.stream == nil {
		d.count(&d.handoffFailed)
		s.mu.Lock()
		s.paused = false
		s.handing = false
		s.cond.Broadcast()
		s.mu.Unlock()
		s.client.Close()
		return
	}
	s.connect(to, rec, pending)
	s.mu.Lock()
	s.paused = false
	s.handing = false
	s.cond.Broadcast()
	s.mu.Unlock()
	d.count(&d.handoffs)
}
