package cluster

import (
	"fmt"
	"testing"
)

func testMembers(names ...string) []*member {
	ms := make([]*member, len(names))
	for i, n := range names {
		ms[i] = &member{name: n}
	}
	return ms
}

// TestRingBalance: with virtual nodes, three members split principals
// within sane bounds of even — no member owns a degenerate share.
func TestRingBalance(t *testing.T) {
	r := buildRing(1, testMembers("a", "b", "c"))
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		p, _ := r.owners(fmt.Sprintf("client-%d", i))
		counts[p.name]++
	}
	for name, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of principals", name, 100*frac)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("placements hit %d members, want 3", len(counts))
	}
}

// TestRingStability: removing one member must move only its principals —
// everyone else keeps their owner. This is the property that makes a
// rolling drain cheap: one member's worth of handoffs, not a reshuffle.
func TestRingStability(t *testing.T) {
	full := buildRing(1, testMembers("a", "b", "c"))
	// Rebuild with the same member pointers minus "b", as rebuildLocked does.
	var rest []*member
	for _, v := range full.vnodes {
		seen := false
		for _, m := range rest {
			if m == v.m {
				seen = true
			}
		}
		if !seen {
			rest = append(rest, v.m)
		}
	}
	var live []*member
	for _, m := range rest {
		if m.name != "b" {
			live = append(live, m)
		}
	}
	smaller := buildRing(2, live)
	moved, kept := 0, 0
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("client-%d", i)
		before, _ := full.owners(p)
		after, _ := smaller.owners(p)
		if before.name == "b" {
			if after.name == "b" {
				t.Fatalf("principal %s still routed to removed member", p)
			}
			continue
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d principals not owned by the removed member moved anyway (%d kept)", moved, kept)
	}
}

// TestRingSecondary: the secondary owner is always a distinct member,
// and a single-member ring reports none.
func TestRingSecondary(t *testing.T) {
	r := buildRing(1, testMembers("a", "b"))
	for i := 0; i < 1000; i++ {
		p, s := r.owners(fmt.Sprintf("x%d", i))
		if p == nil || s == nil || p == s {
			t.Fatalf("owners(%d) = %v, %v", i, p, s)
		}
	}
	solo := buildRing(1, testMembers("only"))
	p, s := solo.owners("anyone")
	if p == nil || p.name != "only" || s != nil {
		t.Fatalf("solo ring owners = %v, %v", p, s)
	}
	empty := buildRing(1, nil)
	if p, s := empty.owners("anyone"); p != nil || s != nil {
		t.Fatalf("empty ring owners = %v, %v", p, s)
	}
}
