// The packet half of the director: datagram flows sharded by client
// address, forwarded to the owning member through a per-flow mirror
// socket, with live flow handoff.
//
// Datagrams have no leg to splice, so the relay works by address
// mirroring: for each client flow the director binds a PacketConn at
// the *client's* address on the owning member's own network segment and
// forwards payloads via the runtime's DeliverPacket entry. The backend
// worker replies to what it believes is the client's address; on the
// member's segment that address is the mirror, so the reply lands back
// in the director, which relays it out the front socket. The member
// never holds a route to the real client — its segment cannot even
// name the front network (netsim.Topology) — which keeps the "all
// client bytes cross the director" invariant honest rather than
// aspirational.
//
// Handoff is the stream discipline minus the byte recovery: pause
// forwarding (queueing, not dropping — a datagram that arrives during
// the pause replays at the new home in order), quiesce on the
// outstanding count, export the flow record (which carries
// app-level reassembly state, e.g. dnsd's in-progress FRAG), bind a
// fresh mirror on the new member's segment, resume, flush the queue,
// unpause. In-network datagrams need no draining: a reply a worker
// wrote before its interrupt is already sitting in the mirror's queue,
// and the reply loop keeps reading a dead generation's mirror until its
// close, so nothing buffered is lost.

package cluster

import (
	"sync"
	"time"

	"wedge/internal/gatepool"
	"wedge/internal/netsim"
	"wedge/internal/serve"
)

// defaultPacketIdle bounds a director-side flow's silence before its
// relay state is swept, in gatepool.Monotime (nanosecond) units.
const defaultPacketIdle = int64(30e9)

// pendingCap bounds the datagrams queued per flow during a handoff
// pause; beyond it the director sheds like any congested datagram hop.
const pendingCap = 64

// pktFlow is the director's relay state for one client address: the
// owning member, the mirror socket bound at the client's address on
// that member's segment, and the pause/quiesce machinery.
type pktFlow struct {
	d    *Director
	peer string // client address on the front network

	mu          sync.Mutex
	cond        *sync.Cond
	member      *member
	mirror      *netsim.PacketConn
	legGen      int
	outstanding int
	paused      bool
	handing     bool
	dead        bool
	pending     [][]byte // datagrams queued while paused
	lastTouch   int64    // gatepool.Monotime of the last forwarded datagram
}

func (f *pktFlow) ownedBy(m *member) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.member == m && !f.dead
}

// ServePackets reads the front socket until it closes, forwarding each
// datagram to its flow's owning member. The front socket is the
// cluster's single client-facing address for packet service.
func (d *Director) ServePackets(front *netsim.PacketConn) error {
	buf := make([]byte, 64*1024)
	n := 0
	for {
		nb, from, err := front.ReadFrom(buf)
		if err != nil {
			return nil
		}
		payload := append([]byte(nil), buf[:nb]...)
		d.deliverPacket(front, payload, from)
		if n++; n%256 == 0 {
			d.sweepFlows()
		}
	}
}

// deliverPacket routes one datagram: find or admit the flow, then
// forward — or queue, if the flow is mid-handoff.
func (d *Director) deliverPacket(front *netsim.PacketConn, payload []byte, from string) {
	d.mu.Lock()
	f := d.flows[from]
	d.mu.Unlock()
	if f == nil {
		f = d.admitFlow(front, from)
		if f == nil {
			return
		}
	}
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return
	}
	if f.paused {
		if len(f.pending) < pendingCap {
			f.pending = append(f.pending, payload)
		}
		f.mu.Unlock()
		return
	}
	f.outstanding++
	f.lastTouch = gatepool.Monotime()
	m, mirror := f.member, f.mirror
	f.mu.Unlock()
	m.packet.DeliverPacket(mirror, payload, from)
}

// admitFlow routes a new client address and binds its mirror. The
// mirror carries the client's address on the member's segment, so
// worker replies self-deliver back to the director.
func (d *Director) admitFlow(front *netsim.PacketConn, from string) *pktFlow {
	m := d.pick(from)
	if m == nil || m.packet == nil {
		d.count(&d.refused)
		return nil
	}
	mirror, err := m.host.ListenPacket(from)
	if err != nil {
		d.count(&d.refused)
		return nil
	}
	f := &pktFlow{d: d, peer: from, member: m, mirror: mirror,
		lastTouch: gatepool.Monotime()}
	f.cond = sync.NewCond(&f.mu)
	d.mu.Lock()
	if exist := d.flows[from]; exist != nil {
		d.mu.Unlock()
		mirror.Close()
		return exist
	}
	d.flows[from] = f
	d.admitted++
	d.mu.Unlock()
	go f.replyLoop(front)
	return f
}

// replyLoop relays worker replies from the current mirror out the front
// socket, resetting the flow's outstanding count — the quiescence
// signal handoff waits on. A mirror close from a stale generation spins
// the loop onto the new mirror; a close with no new generation ends the
// flow.
func (f *pktFlow) replyLoop(front *netsim.PacketConn) {
	buf := make([]byte, 64*1024)
	for {
		f.mu.Lock()
		mirror := f.mirror
		gen := f.legGen
		f.mu.Unlock()
		n, _, err := mirror.ReadFrom(buf)
		if err != nil {
			f.mu.Lock()
			if f.legGen != gen {
				f.mu.Unlock()
				continue // handed off: read the new mirror
			}
			f.dead = true
			f.cond.Broadcast()
			f.mu.Unlock()
			f.d.dropFlow(f)
			return
		}
		front.WriteTo(buf[:n], f.peer)
		f.mu.Lock()
		f.outstanding = 0
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

func (d *Director) dropFlow(f *pktFlow) {
	d.mu.Lock()
	if d.flows[f.peer] == f {
		delete(d.flows, f.peer)
	}
	d.mu.Unlock()
}

// killFlow ends a flow's relay state: mark dead, close the mirror (the
// reply loop exits through the dead-generation check), drop the map
// entry.
func (f *pktFlow) kill() {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return
	}
	f.dead = true
	f.paused = false
	f.handing = false
	mirror := f.mirror
	f.cond.Broadcast()
	f.mu.Unlock()
	mirror.Close()
	f.d.dropFlow(f)
}

// sweepFlows reaps relay state for flows idle past PacketIdle. The
// backend runtimes reap their own flow state on their own idle clocks;
// this sweep only frees the director's mirrors and reply loops.
func (d *Director) sweepFlows() {
	idle := d.PacketIdle
	if idle <= 0 {
		idle = defaultPacketIdle
	}
	now := gatepool.Monotime()
	var stale []*pktFlow
	d.mu.Lock()
	for _, f := range d.flows {
		f.mu.Lock()
		if !f.handing && !f.dead && now-f.lastTouch > idle {
			stale = append(stale, f)
		}
		f.mu.Unlock()
	}
	d.mu.Unlock()
	for _, f := range stale {
		f.kill()
	}
}

// handoffFlow moves one flow off a draining member: pause (queue),
// quiesce, export, re-bind the mirror on the new member's segment,
// resume the flow there, flush the queue in order, unpause.
func (d *Director) handoffFlow(f *pktFlow, from *member) {
	f.mu.Lock()
	if f.member != from || f.dead {
		f.mu.Unlock()
		return
	}
	f.paused = true
	f.handing = true
	for f.outstanding != 0 && !f.dead {
		f.cond.Wait()
	}
	if f.dead {
		f.paused = false
		f.handing = false
		f.cond.Broadcast()
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()

	// ErrNoSession either means the backend flow expired (idle reap) or
	// the flow is so new its conn record is not registered yet; a bounded
	// retry separates the two.
	var rec *serve.HandoffRecord
	var err error
	for i := 0; ; i++ {
		rec, err = from.packet.HandoffPrincipal(f.peer)
		if err == nil {
			break
		}
		if i >= 100 {
			// Expired at the backend; the relay state follows it.
			f.kill()
			return
		}
		time.Sleep(time.Millisecond)
	}
	to := d.pick(f.peer)
	if to == nil || to.packet == nil {
		d.count(&d.handoffFailed)
		f.kill()
		return
	}
	mirror2, err := to.host.ListenPacket(f.peer)
	if err != nil {
		d.count(&d.handoffFailed)
		f.kill()
		return
	}
	f.mu.Lock()
	old := f.mirror
	f.mirror = mirror2
	f.member = to
	f.legGen++
	f.cond.Broadcast() // reply loop chases the new mirror once old closes
	f.mu.Unlock()
	old.Close()
	if err := to.packet.ResumeFlow(mirror2, f.peer, rec); err != nil {
		d.count(&d.handoffFailed)
		f.kill()
		return
	}
	// Flush datagrams queued during the pause, in arrival order, before
	// any post-handoff traffic can interleave.
	for {
		f.mu.Lock()
		if len(f.pending) == 0 {
			f.paused = false
			f.handing = false
			f.cond.Broadcast()
			f.mu.Unlock()
			break
		}
		p := f.pending[0]
		f.pending = f.pending[1:]
		f.outstanding++
		f.lastTouch = gatepool.Monotime()
		f.mu.Unlock()
		to.packet.DeliverPacket(mirror2, p, f.peer)
	}
	d.count(&d.handoffs)
}
