// The routing ring: consistent hashing of principals across members,
// with explicit generations. Every membership change — add, drain mark,
// remove — builds a new immutable ring at generation g+1 and publishes
// it atomically, the view-change discipline rather than in-place
// rebalancing: a routing decision is always made against exactly one
// generation, and a drain is "draining as of generation g+1", never a
// mutable flag racing the router.
//
// Placement is classic consistent hashing with virtual nodes (a power
// of two per member) plus two-choice load: a principal's hash selects
// its primary owner (first vnode clockwise) and the next distinct
// member, and admission picks whichever reports less in-flight load.
// The vnode count keeps per-member arcs even; the two-choice read keeps
// a hot shard from pinning its arc's principals behind a deep queue.

package cluster

import (
	"fmt"
	"sort"
)

// vnodesPerMember is the virtual-node count each member contributes —
// a power of two, enough that member arcs stay within a few percent of
// even at small cluster sizes.
const vnodesPerMember = 64

type vnode struct {
	hash uint64
	m    *member
}

// ring is one immutable routing generation. Draining members are simply
// absent: the build excludes them, so no router can select one.
type ring struct {
	gen    uint64
	vnodes []vnode // sorted by hash
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix finishes a vnode hash: FNV of "name" alone clusters lexically
// close names; a final avalanche spreads them.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// buildRing constructs generation gen over the given live members.
func buildRing(gen uint64, live []*member) *ring {
	r := &ring{gen: gen}
	for _, m := range live {
		for i := 0; i < vnodesPerMember; i++ {
			r.vnodes = append(r.vnodes, vnode{
				hash: mix(fnv1a(fmt.Sprintf("%s#%d", m.name, i))),
				m:    m,
			})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r
}

// owners returns the principal's primary owner and the next distinct
// member clockwise (nil when the ring has fewer than two members). The
// caller applies the two-choice load read — the ring itself is pure
// placement.
func (r *ring) owners(principal string) (primary, secondary *member) {
	n := len(r.vnodes)
	if n == 0 {
		return nil, nil
	}
	h := mix(fnv1a(principal))
	i := sort.Search(n, func(i int) bool { return r.vnodes[i].hash >= h })
	if i == n {
		i = 0
	}
	primary = r.vnodes[i].m
	for j := 1; j < n; j++ {
		if m := r.vnodes[(i+j)%n].m; m != primary {
			return primary, m
		}
	}
	return primary, nil
}
