// The acceptance test: a three-member cluster serving continuous pop3
// (stream) and dnsd (packet) load survives a rolling drain of every
// member in turn with zero client-visible errors. Sessions carry real
// mid-protocol state across the moves — authenticated pop3 uids,
// half-reassembled dnsd FRAG queries — and each drained runtime must
// come out empty: inflight zero, conn table zero, ledger balanced.
package cluster_test

import (
	"bufio"
	"crypto/rsa"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wedge/internal/cluster"
	"wedge/internal/dnsd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/pop3"
	"wedge/internal/serve"
	"wedge/internal/sthread"
)

// The director drives runtimes through these interfaces; the two wedge
// apps must satisfy them by promotion alone.
var (
	_ cluster.StreamBackend = (*pop3.PooledServer)(nil)
	_ cluster.PacketBackend = (*dnsd.Resolver)(nil)
)

var (
	keyOnce sync.Once
	zoneKey *rsa.PrivateKey
)

func testZoneKey() *rsa.PrivateKey {
	keyOnce.Do(func() {
		k, err := minissl.GenerateServerKey()
		if err != nil {
			panic(err)
		}
		zoneKey = k
	})
	return zoneKey
}

func testZone() []dnsd.Record {
	return []dnsd.Record{
		{Name: "www.example", Value: "192.0.2.80"},
		{Name: "mail.example", Value: "192.0.2.25"},
	}
}

func testBoxes() []pop3.Mailbox {
	return []pop3.Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: bob\n\nhi alice"}},
	}
}

// memberRig is one cluster member: a pop3 runtime and a dnsd runtime,
// each in its own kernel (its own host, its own network segment — the
// dnsd segment doubles as the member's mirror host).
type memberRig struct {
	name string
	pop  *pop3.PooledServer
	dns  *dnsd.Resolver
	host *netsim.Network

	quit chan struct{}
	done []chan error
}

func startMemberRig(t *testing.T, name string) *memberRig {
	t.Helper()
	r := &memberRig{name: name, quit: make(chan struct{})}

	popReady := make(chan *pop3.PooledServer, 1)
	popDone := make(chan error, 1)
	go func() {
		k := kernel.New()
		app := sthread.Boot(k)
		popDone <- app.Main(func(root *sthread.Sthread) {
			srv, err := pop3.NewPooled(root, testBoxes(), 4, pop3.Hooks{})
			if err != nil {
				t.Error(err)
				close(popReady)
				return
			}
			popReady <- srv
			<-r.quit
			srv.Close()
		})
	}()

	dnsReady := make(chan *dnsd.Resolver, 1)
	dnsDone := make(chan error, 1)
	dnsK := kernel.New()
	go func() {
		app := sthread.Boot(dnsK)
		dnsDone <- app.Main(func(root *sthread.Sthread) {
			rt, err := dnsd.NewPooled(root, testZoneKey(), testZone(), dnsd.Config{
				Slots:       4,
				IdleTimeout: 2 * time.Second,
			})
			if err != nil {
				t.Error(err)
				close(dnsReady)
				return
			}
			dnsReady <- rt
			<-r.quit
			rt.Close()
		})
	}()

	r.pop = <-popReady
	r.dns = <-dnsReady
	if r.pop == nil || r.dns == nil {
		t.FailNow()
	}
	r.host = dnsK.Net
	r.done = []chan error{popDone, dnsDone}
	return r
}

func (r *memberRig) stop(t *testing.T) {
	close(r.quit)
	for _, ch := range r.done {
		if err := <-ch; err != nil {
			t.Errorf("member %s: %v", r.name, err)
		}
	}
}

// popCli is a minimal POP3 line client against the cluster front.
type popCli struct {
	conn *netsim.Conn
	r    *bufio.Reader
}

func dialPop(front *netsim.Network) (*popCli, error) {
	conn, err := front.Dial("pop3:110")
	if err != nil {
		return nil, err
	}
	c := &popCli{conn: conn, r: bufio.NewReader(conn)}
	greet, err := c.r.ReadString('\n')
	if err != nil || !strings.HasPrefix(greet, "+OK") {
		conn.Close()
		return nil, fmt.Errorf("greeting %q: %v", greet, err)
	}
	return c, nil
}

func (c *popCli) cmd(line string) (string, error) {
	if _, err := c.conn.Write([]byte(line + "\r\n")); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\r\n"), nil
}

// body reads a multi-line RETR payload through the "." terminator.
func (c *popCli) body() (string, error) {
	var b strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimRight(line, "\r\n") == "." {
			return b.String(), nil
		}
		b.WriteString(line)
	}
}

// TestClusterRollingDrain is the acceptance scenario from the top
// comment.
func TestClusterRollingDrain(t *testing.T) {
	names := []string{"m0", "m1", "m2"}
	rigs := make(map[string]*memberRig, len(names))
	for _, n := range names {
		rigs[n] = startMemberRig(t, n)
		defer rigs[n].stop(t)
	}

	d := cluster.New()
	addMember := func(n string) {
		t.Helper()
		r := rigs[n]
		if err := d.Add(cluster.Member{Name: n, Stream: r.pop, Packet: r.dns, Host: r.host}); err != nil {
			t.Fatalf("add %s: %v", n, err)
		}
	}
	for _, n := range names {
		addMember(n)
	}

	front := netsim.New()
	l, err := front.Listen("pop3:110")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)
	fpc, err := front.ListenPacket("dns:53")
	if err != nil {
		t.Fatal(err)
	}
	go d.ServePackets(fpc)

	var (
		stop  = make(chan struct{})
		errMu sync.Mutex
		fails []string
		wg    sync.WaitGroup
	)
	record := func(format string, args ...any) {
		errMu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		errMu.Unlock()
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// Six pop3 clients, each one long-lived session: authenticate once,
	// then STAT/RETR until the drains are done. The authenticated uid must
	// survive every handoff — a post-drain -ERR is a lost session.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := dialPop(front)
			if err != nil {
				record("pop3[%d] dial: %v", i, err)
				return
			}
			defer c.conn.Close()
			if resp, err := c.cmd("USER alice"); err != nil || !strings.HasPrefix(resp, "+OK") {
				record("pop3[%d] USER: %q %v", i, resp, err)
				return
			}
			if resp, err := c.cmd("PASS sesame"); err != nil || !strings.HasPrefix(resp, "+OK") {
				record("pop3[%d] PASS: %q %v", i, resp, err)
				return
			}
			for !stopped() {
				resp, err := c.cmd("STAT")
				if err != nil || resp != "+OK 1 messages" {
					record("pop3[%d] STAT: %q %v", i, resp, err)
					return
				}
				resp, err = c.cmd("RETR 1")
				if err != nil || !strings.HasPrefix(resp, "+OK") {
					record("pop3[%d] RETR: %q %v", i, resp, err)
					return
				}
				body, err := c.body()
				if err != nil || !strings.Contains(body, "hi alice") {
					record("pop3[%d] body: %q %v", i, body, err)
					return
				}
			}
			if resp, err := c.cmd("QUIT"); err != nil || !strings.HasPrefix(resp, "+OK") {
				record("pop3[%d] QUIT: %q %v", i, resp, err)
			}
		}(i)
	}

	// Three plain dnsd clients: every answer signed and correct.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := front.DialPacket()
			if err != nil {
				record("dns[%d] dial: %v", i, err)
				return
			}
			defer cli.Close()
			for !stopped() {
				a, err := dnsd.Query(cli, "dns:53", "www.example")
				if err != nil {
					record("dns[%d] query: %v", i, err)
					return
				}
				if a.Status != dnsd.StatusNoError || string(a.Value) != "192.0.2.80" {
					record("dns[%d] answer status=%d value=%q", i, a.Status, a.Value)
					return
				}
				if err := a.Verify(&testZoneKey().PublicKey); err != nil {
					record("dns[%d] signature: %v", i, err)
					return
				}
			}
		}(i)
	}

	// Two FRAG clients: park a worker mid-reassembly, dawdle, finish. A
	// drain landing inside the dawdle must move the half-built name with
	// the flow.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := front.DialPacket()
			if err != nil {
				record("frag[%d] dial: %v", i, err)
				return
			}
			defer cli.Close()
			for !stopped() {
				fq, err := dnsd.StartFrag(cli, "dns:53", "mail.example", 4)
				if err != nil {
					record("frag[%d] start: %v", i, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
				a, err := fq.Finish()
				if err != nil {
					record("frag[%d] finish: %v", i, err)
					return
				}
				if a.Status != dnsd.StatusNoError || string(a.Value) != "192.0.2.25" {
					record("frag[%d] answer status=%d value=%q", i, a.Status, a.Value)
					return
				}
			}
		}(i)
	}

	// The rolling drain: every member leaves in turn under full load and
	// rejoins drained-and-reopened.
	for _, n := range names {
		time.Sleep(80 * time.Millisecond)
		if err := d.Remove(n); err != nil {
			t.Fatalf("remove %s: %v", n, err)
		}
		r := rigs[n]
		if s := r.pop.Snapshot(); s.Inflight != 0 || s.Conns.Entries != 0 {
			t.Errorf("drained %s pop3: inflight=%d conns=%d, want 0/0", n, s.Inflight, s.Conns.Entries)
		}
		if s := r.dns.Snapshot(); s.Inflight != 0 || s.Conns.Entries != 0 || s.Flows != 0 {
			t.Errorf("drained %s dnsd: inflight=%d conns=%d flows=%d, want 0/0/0",
				n, s.Inflight, s.Conns.Entries, s.Flows)
		}
		addMember(n)
	}
	time.Sleep(80 * time.Millisecond)

	close(stop)
	wg.Wait()

	errMu.Lock()
	for _, f := range fails {
		t.Error(f)
	}
	errMu.Unlock()

	st := d.Stats()
	// Every pop3 session outlives all three drains, so each was handed at
	// least once; nothing may have failed to find a home or been refused.
	if st.Handoffs < 6 {
		t.Errorf("handoffs = %d, want >= 6", st.Handoffs)
	}
	if st.HandoffFailed != 0 || st.Refused != 0 {
		t.Errorf("handoffFailed=%d refused=%d, want 0/0", st.HandoffFailed, st.Refused)
	}

	// Quiescence: pop3 sessions ended with QUIT; dnsd flows expire on the
	// idle wheel. Then every runtime's ledger must balance to zero.
	deadline := time.Now().Add(15 * time.Second)
	for _, n := range names {
		r := rigs[n]
		for {
			ps, ds := r.pop.Snapshot(), r.dns.Snapshot()
			if ps.Inflight == 0 && ds.Inflight == 0 && ds.Flows == 0 &&
				ps.Conns.Entries == 0 && ds.Conns.Entries == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never quiesced: pop3 inflight=%d conns=%d; dnsd inflight=%d flows=%d conns=%d",
					n, ps.Inflight, ps.Conns.Entries, ds.Inflight, ds.Flows, ds.Conns.Entries)
			}
			time.Sleep(20 * time.Millisecond)
		}
		for _, s := range []struct {
			mode string
			snap func() (admitted, served, failed, handed uint64)
		}{
			{"pop3", func() (uint64, uint64, uint64, uint64) {
				s := r.pop.Snapshot()
				return s.Admitted, s.Served, s.Failed, s.Handed
			}},
			{"dnsd", func() (uint64, uint64, uint64, uint64) {
				s := r.dns.Snapshot()
				return s.Admitted, s.Served, s.Failed, s.Handed
			}},
		} {
			ad, sv, fl, hd := s.snap()
			if ad != sv+fl+hd {
				t.Errorf("%s %s ledger: admitted=%d served=%d failed=%d handed=%d",
					n, s.mode, ad, sv, fl, hd)
			}
		}
	}
}

// TestClusterSchemaMismatchRefused: a member whose gate schema hash
// disagrees with the cluster's cannot join — the typed error the ISSUE
// pins. (Runtime-level record refusal is pinned in internal/serve and
// the servetest battery; this is the director's own gate.)
func TestClusterSchemaMismatchRefused(t *testing.T) {
	a := startMemberRig(t, "a")
	defer a.stop(t)
	b := startMemberRig(t, "b")
	defer b.stop(t)

	d := cluster.New()
	if err := d.Add(cluster.Member{Name: "a", Stream: a.pop, Packet: a.dns, Host: a.host}); err != nil {
		t.Fatal(err)
	}
	// b's stream backend reports a different schema hash via a shim.
	err := d.Add(cluster.Member{Name: "b", Stream: badHash{a.pop.SchemaHash() ^ 1, b.pop}, Packet: b.dns, Host: b.host})
	if err == nil {
		t.Fatal("mismatched schema hash joined the cluster")
	}
	var sm *serve.SchemaMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("join error = %v, want *serve.SchemaMismatchError", err)
	}
	// The honest twin still joins.
	if err := d.Add(cluster.Member{Name: "b", Stream: b.pop, Packet: b.dns, Host: b.host}); err != nil {
		t.Fatalf("matching member refused: %v", err)
	}
}

// badHash wraps a StreamBackend, lying about its schema hash — the
// director must believe the hash, not the type.
type badHash struct {
	h uint64
	cluster.StreamBackend
}

func (b badHash) SchemaHash() uint64 { return b.h }
