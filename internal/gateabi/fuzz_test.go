package gateabi_test

import (
	"errors"
	"sync"
	"testing"

	"wedge/internal/dnsd"
	"wedge/internal/gateabi"
	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/pop3"
	"wedge/internal/sshd"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// fuzzRig is one booted system with an argument block per application
// schema, shared by every fuzz execution in the process.
type fuzzRig struct {
	root    *sthread.Sthread
	schemas []*gateabi.Schema
	blocks  []vm.Addr
}

var (
	fuzzOnce sync.Once
	fuzzR    *fuzzRig
)

// appSchemas is every schema a wedge application serves: arbitrary block
// contents decoded through each must never fault or read past the block.
func appSchemas() []*gateabi.Schema {
	return []*gateabi.Schema{httpd.GateSchema(), sshd.GateSchema(), pop3.GateSchema(), dnsd.GateSchema()}
}

func startFuzzRig(f *testing.F) *fuzzRig {
	fuzzOnce.Do(func() {
		app := sthread.Boot(kernel.New())
		ready := make(chan *fuzzRig, 1)
		go func() {
			app.Main(func(root *sthread.Sthread) {
				r := &fuzzRig{root: root, schemas: appSchemas()}
				for _, s := range r.schemas {
					tag, err := app.Tags.TagNew(root.Task)
					if err != nil {
						panic(err)
					}
					// The guard window past the block is what the decode
					// sweep must never disturb.
					arg, err := root.Smalloc(tag, s.Size()+64)
					if err != nil {
						panic(err)
					}
					r.blocks = append(r.blocks, arg)
				}
				ready <- r
				select {} // park the root sthread for the fuzz process
			})
		}()
		fuzzR = <-ready
	})
	return fuzzR
}

// FuzzGateABI writes arbitrary bytes into an argument block and decodes
// every field of every application schema (httpd, sshd, pop3, dnsd —
// the privsep monitor serves the sshd schema). The properties fuzzed for:
// decoding never faults (no panic; a fault would kill the root sthread
// and the whole rig), a variable-length field whose resident length word
// exceeds its capacity yields the typed *ArgBoundsError rather than a
// read past the field, and the decode sweep never writes anything — the
// block contents are bit-identical before and after.
func FuzzGateABI(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 4096))
	all := bytes255()
	f.Add(all)
	// A length-word bomb: every word maximal, so every variable field
	// decodes against a hostile length.
	bomb := make([]byte, 4096)
	for i := range bomb {
		bomb[i] = 0xff
	}
	f.Add(bomb)
	r := startFuzzRig(f)

	f.Fuzz(func(t *testing.T, input []byte) {
		for i, s := range r.schemas {
			arg := r.blocks[i]
			// Fill the block from the fuzz input (zero-padded).
			block := make([]byte, s.Size())
			copy(block, input)
			r.root.Write(arg, block)

			if err := s.DecodeAll(r.root, arg); err != nil {
				var abe *gateabi.ArgBoundsError
				if !errors.As(err, &abe) {
					t.Fatalf("%s: decode error %v is not *ArgBoundsError", s.Name(), err)
				}
			}
			// Decoding is read-only: the block is untouched...
			after := make([]byte, s.Size())
			r.root.Read(arg, after)
			for j := range block {
				if block[j] != after[j] {
					t.Fatalf("%s: decode mutated the block at +%d", s.Name(), j)
				}
			}
			// ...and the guard window past it stays zero.
			pad := make([]byte, 64)
			r.root.Read(arg+vm.Addr(s.Size()), pad)
			for j, b := range pad {
				if b != 0 {
					t.Fatalf("%s: decode dirtied the arena at +%d", s.Name(), s.Size()+j)
				}
			}
		}
	})
}

func bytes255() []byte {
	out := make([]byte, 2048)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}
