// Package gateabi is the typed gate ABI: a declarative schema for the
// argument block a callgate (or gate pool slot) shares with its callers,
// replacing the hand-computed byte offsets every wedge application used
// to maintain.
//
// A Schema is an ordered sequence of typed fields — 64-bit words,
// length-prefixed byte areas with a hard capacity, NUL-terminated string
// areas, fixed-size blobs, and the two reserved demux words the serve
// runtime writes (connection id and descriptor number). The layout is
// computed, not declared: each field is placed at the next 8-byte-aligned
// offset, so adding or reordering fields can never silently overlap, and
// the block size, the inter-principal scrub footprint, and the residue
// probe window all derive from the same declaration.
//
// Field declarations return typed handles whose Load/Store methods are
// the only way application code touches the block. The handles hold the
// resolved offset, so the hot path is exactly the Load64/Store64 the
// hand-written offsets compiled to — the safety is in the declaration and
// in the bounds checks of the variable-length codecs, not in per-access
// indirection.
//
// Bounds are enforced at the codec, both directions: storing a payload
// larger than the field's capacity, or decoding a block whose length word
// exceeds it, fails with a typed *ArgBoundsError (errors.Is ErrArgBounds)
// before any memory is touched. Nothing is ever silently truncated and
// nothing is ever written or read past the field — the per-call-site
// storeArgStr caps that patched the oversized-payload channel one bug at
// a time are now structural.
package gateabi

import (
	"errors"
	"fmt"

	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// ErrArgBounds is the errors.Is target for every codec bounds rejection.
var ErrArgBounds = errors.New("gateabi: payload exceeds field capacity")

// ArgBoundsError is the typed codec rejection: a payload (on Store) or a
// block-resident length word (on Load) exceeded the field's declared
// capacity. The codec fails before touching memory, so an oversized input
// can neither be silently truncated nor smear past the field into memory
// the inter-principal scrub never reaches.
type ArgBoundsError struct {
	Schema string // schema name
	Field  string // field name
	Len    int    // offending length
	Cap    int    // the field's declared capacity
	Decode bool   // true when the length word in the block was bad
}

func (e *ArgBoundsError) Error() string {
	dir := "store"
	if e.Decode {
		dir = "decode"
	}
	return fmt.Sprintf("gateabi: %s %s.%s: length %d exceeds capacity %d",
		dir, e.Schema, e.Field, e.Len, e.Cap)
}

// Is makes errors.Is(err, ErrArgBounds) match every ArgBoundsError.
func (e *ArgBoundsError) Is(target error) bool { return target == ErrArgBounds }

// Kind discriminates field layouts.
type Kind int

const (
	// KindWord is one 64-bit little-endian word.
	KindWord Kind = iota
	// KindBytes is a length word followed by a fixed-capacity byte area.
	KindBytes
	// KindString is a NUL-terminated string area of fixed capacity.
	KindString
	// KindFixed is a raw byte area of exact size, no length word.
	KindFixed
	// KindConnID is the reserved demux word the serve runtime writes the
	// connection id into.
	KindConnID
	// KindFD is the reserved demux word the serve runtime writes the
	// connection's descriptor number into.
	KindFD
)

func (k Kind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindFixed:
		return "fixed"
	case KindConnID:
		return "connid"
	case KindFD:
		return "fd"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FieldInfo describes one placed field, for diagnostics, the fuzzing
// harness, and schema-generic tooling. Off is the field's base offset
// (the length word for KindBytes); Cap is the payload capacity (KindBytes,
// KindString), the exact size (KindFixed), or 8 (words).
type FieldInfo struct {
	Name string  `json:"name"`
	Kind Kind    `json:"kind"`
	Off  vm.Addr `json:"off"`
	Cap  int     `json:"cap"`
}

// Schema is a sealed argument-block layout. Schemas are immutable after
// Seal and safe for concurrent use.
type Schema struct {
	name   string
	size   int
	fields []FieldInfo

	connID   vm.Addr
	fd       vm.Addr
	hasDemux bool
}

// Integer constrains the word-field element types: any integer that fits
// a 64-bit block word.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Builder accumulates field declarations; Seal produces the Schema.
// Declaration order is layout order. The zero Builder is not usable —
// start with NewSchema.
type Builder struct {
	s      *Schema
	sealed bool
}

// NewSchema starts a schema. The name appears in error messages and
// diagnostics.
func NewSchema(name string) *Builder {
	return &Builder{s: &Schema{name: name}}
}

// align8 rounds n up to the next multiple of 8, keeping every field
// word-aligned regardless of its neighbors' sizes.
func align8(n int) int { return (n + 7) &^ 7 }

// place appends a field at the next aligned offset and returns its base.
func (b *Builder) place(name string, kind Kind, span, cap int) vm.Addr {
	if b.sealed {
		panic(fmt.Sprintf("gateabi: schema %q: field %q declared after Seal", b.s.name, name))
	}
	if name == "" {
		panic(fmt.Sprintf("gateabi: schema %q: empty field name", b.s.name))
	}
	for _, f := range b.s.fields {
		if f.Name == name {
			panic(fmt.Sprintf("gateabi: schema %q: duplicate field %q", b.s.name, name))
		}
	}
	off := vm.Addr(b.s.size)
	b.s.fields = append(b.s.fields, FieldInfo{Name: name, Kind: kind, Off: off, Cap: cap})
	b.s.size += align8(span)
	return off
}

// Word declares one 64-bit word holding values of integer type T (an op
// code, a verdict, a uid, a count). Load/Store convert through uint64, so
// T's width bounds what round-trips faithfully.
func Word[T Integer](b *Builder, name string) WordField[T] {
	off := b.place(name, KindWord, 8, 8)
	return WordField[T]{off: off}
}

// U64 is Word[uint64], the common case.
func U64(b *Builder, name string) WordField[uint64] { return Word[uint64](b, name) }

// Bytes declares a length-prefixed byte area: a 64-bit length word
// followed by capacity payload bytes. Store and Load enforce the
// capacity with *ArgBoundsError.
func Bytes(b *Builder, name string, capacity int) BytesField {
	if capacity <= 0 {
		panic(fmt.Sprintf("gateabi: schema %q: bytes field %q needs a positive capacity", b.s.name, name))
	}
	off := b.place(name, KindBytes, 8+capacity, capacity)
	return BytesField{schema: b.s.name, name: name, off: off, data: off + 8, cap: capacity}
}

// String declares a NUL-terminated string area of the given capacity
// (payload at most capacity-1 bytes plus the terminator).
func String(b *Builder, name string, capacity int) StringField {
	if capacity < 2 {
		panic(fmt.Sprintf("gateabi: schema %q: string field %q needs capacity >= 2", b.s.name, name))
	}
	off := b.place(name, KindString, capacity, capacity)
	return StringField{schema: b.s.name, name: name, off: off, cap: capacity}
}

// Fixed declares a raw byte area of exact size — key material, randoms,
// marshalled structures whose length is fixed by the protocol.
func Fixed(b *Builder, name string, size int) FixedField {
	if size <= 0 {
		panic(fmt.Sprintf("gateabi: schema %q: fixed field %q needs a positive size", b.s.name, name))
	}
	off := b.place(name, KindFixed, size, size)
	return FixedField{schema: b.s.name, name: name, off: off, size: size}
}

// ConnID declares the reserved connection-id demux word. The serve
// runtime writes it on admission and pins Lookup to it; applications
// treat it as opaque. At most one per schema (place rejects the
// duplicate name).
func ConnID(b *Builder) WordField[uint64] {
	off := b.place("__conn_id", KindConnID, 8, 8)
	b.s.connID = off
	return WordField[uint64]{off: off}
}

// FD declares the reserved descriptor-number demux word. At most one per
// schema.
func FD(b *Builder) WordField[uint64] {
	off := b.place("__fd", KindFD, 8, 8)
	b.s.fd = off
	return WordField[uint64]{off: off}
}

func (b *Builder) has(kind Kind) bool {
	for _, f := range b.s.fields {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// Seal completes the schema: the block size is rounded up to a whole
// number of words (it already is, by placement) and the layout becomes
// immutable. Seal panics on an empty schema — schemas are package-level
// declarations, and a malformed one should fail at init, not per
// connection.
func (b *Builder) Seal() *Schema {
	if b.sealed {
		panic(fmt.Sprintf("gateabi: schema %q sealed twice", b.s.name))
	}
	if len(b.s.fields) == 0 {
		panic(fmt.Sprintf("gateabi: schema %q has no fields", b.s.name))
	}
	b.sealed = true
	b.s.hasDemux = b.has(KindConnID) && b.has(KindFD)
	return b.s
}

// Name returns the schema's diagnostic name.
func (s *Schema) Name() string { return s.name }

// Size is the argument-block size the schema requires — the pool's
// per-slot allocation and the inter-principal scrub footprint. Every
// field's full extent lies inside it by construction.
func (s *Schema) Size() int { return s.size }

// Fields returns the placed layout, in declaration order.
func (s *Schema) Fields() []FieldInfo {
	out := make([]FieldInfo, len(s.fields))
	copy(out, s.fields)
	return out
}

// HasDemux reports whether the schema declares both reserved demux words
// (ConnID and FD) — required for a schema served by the serve runtime.
func (s *Schema) HasDemux() bool { return s.hasDemux }

// ConnIDOff returns the connection-id demux word's offset. Meaningless
// unless HasDemux.
func (s *Schema) ConnIDOff() vm.Addr { return s.connID }

// FDOff returns the descriptor-number demux word's offset. Meaningless
// unless HasDemux.
func (s *Schema) FDOff() vm.Addr { return s.fd }

// IsDemux reports whether byte offset j of the block belongs to one of
// the reserved demux words — the only bytes legitimately non-zero at
// worker-invocation start on a freshly scrubbed slot.
func (s *Schema) IsDemux(j int) bool {
	if !s.hasDemux {
		return false
	}
	off := vm.Addr(j)
	return (off >= s.connID && off < s.connID+8) || (off >= s.fd && off < s.fd+8)
}

// minProbeWindow floors the probe window for schemas with no
// variable-length fields: even a word-only block sits in a tag arena an
// exploited worker can write past.
const minProbeWindow = 64

// ProbeWindow is the residue-probe footprint past the argument block,
// derived from the schema: the capacity of the largest variable-length
// field (floored at 64 bytes). The inter-principal scrub covers exactly
// Size bytes, so a write escaping the block persists across principals;
// the largest client-influenced payload the codecs accept bounds how far
// a single overflowing copy could smear, so probing one full capacity
// past the block catches any such escape with margin.
func (s *Schema) ProbeWindow() int {
	w := minProbeWindow
	for _, f := range s.fields {
		if (f.Kind == KindBytes || f.Kind == KindString) && f.Cap > w {
			w = f.Cap
		}
	}
	return w
}

// ---- typed field handles ---------------------------------------------------

// WordField is the handle of one 64-bit block word, viewed as integer
// type T. The handle holds the resolved offset: Load and Store are the
// same single Load64/Store64 the hand-written offsets compiled to.
type WordField[T Integer] struct {
	off vm.Addr
}

// Load reads the word through s's view of the block at arg.
func (f WordField[T]) Load(s *sthread.Sthread, arg vm.Addr) T {
	return T(s.Load64(arg + f.off))
}

// Store writes the word through s's view of the block at arg.
func (f WordField[T]) Store(s *sthread.Sthread, arg vm.Addr, v T) {
	s.Store64(arg+f.off, uint64(v))
}

// Off returns the field's resolved offset inside the block.
func (f WordField[T]) Off() vm.Addr { return f.off }

// BytesField is the handle of a length-prefixed byte area.
type BytesField struct {
	schema, name string
	off          vm.Addr // length word
	data         vm.Addr // payload base
	cap          int
}

// Cap returns the declared payload capacity.
func (f BytesField) Cap() int { return f.cap }

// Off returns the length word's offset; the payload follows it.
func (f BytesField) Off() vm.Addr { return f.off }

// Store encodes a payload: length word then bytes. A payload over the
// field's capacity fails with *ArgBoundsError before anything is
// written. Empty payloads are valid (length 0, no data write); gates that
// require a non-empty argument reject them on Load.
func (f BytesField) Store(s *sthread.Sthread, arg vm.Addr, p []byte) error {
	return f.StoreMax(s, arg, p, f.cap)
}

// StoreMax is Store under a tighter cap — the receiving gate's own input
// limit when it is narrower than the field (the sshd string area serves
// ops capped at 512, 256, and 128 bytes). The effective bound is
// min(max, capacity); exceeding it is the same typed error.
func (f BytesField) StoreMax(s *sthread.Sthread, arg vm.Addr, p []byte, max int) error {
	if max > f.cap {
		max = f.cap
	}
	if len(p) > max {
		return &ArgBoundsError{Schema: f.schema, Field: f.name, Len: len(p), Cap: max}
	}
	s.Store64(arg+f.off, uint64(len(p)))
	if len(p) > 0 {
		s.Write(arg+f.data, p)
	}
	return nil
}

// Load decodes the payload: the length word is validated against the
// capacity before any payload byte is read, so a corrupted or hostile
// length can never pull bytes from past the field. Returns nil for an
// empty payload.
func (f BytesField) Load(s *sthread.Sthread, arg vm.Addr) ([]byte, error) {
	return f.LoadMax(s, arg, f.cap)
}

// LoadMax is Load under a tighter cap (the gate's own input limit). A
// length word over min(max, capacity) is a typed decode error. A
// non-positive max admits nothing (only a zero length word decodes) —
// it must not wrap through the unsigned comparison into an unbounded
// read.
func (f BytesField) LoadMax(s *sthread.Sthread, arg vm.Addr, max int) ([]byte, error) {
	if max < 0 {
		max = 0
	}
	if max > f.cap {
		max = f.cap
	}
	n := s.Load64(arg + f.off)
	if n > uint64(max) {
		return nil, &ArgBoundsError{Schema: f.schema, Field: f.name,
			Len: clampInt(n), Cap: max, Decode: true}
	}
	if n == 0 {
		return nil, nil
	}
	p := make([]byte, n)
	s.Read(arg+f.data, p)
	return p, nil
}

// LoadInto is Load decoding into caller-owned scratch: the payload lands
// in dst (which must hold Cap() bytes) and the decoded length is
// returned. The same hostile-length validation as Load applies. Batched
// worker bodies use it to reuse one buffer across a ring sweep.
func (f BytesField) LoadInto(s *sthread.Sthread, arg vm.Addr, dst []byte) (int, error) {
	n := s.Load64(arg + f.off)
	if n > uint64(f.cap) || n > uint64(len(dst)) {
		return 0, &ArgBoundsError{Schema: f.schema, Field: f.name,
			Len: clampInt(n), Cap: f.cap, Decode: true}
	}
	if n > 0 {
		s.Read(arg+f.data, dst[:n])
	}
	return int(n), nil
}

// clampInt narrows a hostile uint64 length for the error message.
func clampInt(n uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if n > uint64(maxInt) {
		return maxInt
	}
	return int(n)
}

// StringField is the handle of a NUL-terminated string area.
type StringField struct {
	schema, name string
	off          vm.Addr
	cap          int
}

// Cap returns the declared area size (payload capacity plus terminator).
func (f StringField) Cap() int { return f.cap }

// Off returns the field's resolved offset.
func (f StringField) Off() vm.Addr { return f.off }

// Store writes str plus its terminator. A string that does not fit
// (len > capacity-1) fails with *ArgBoundsError; use StoreTrunc where
// truncation is the documented policy.
func (f StringField) Store(s *sthread.Sthread, arg vm.Addr, str string) error {
	if len(str) > f.cap-1 {
		return &ArgBoundsError{Schema: f.schema, Field: f.name, Len: len(str), Cap: f.cap - 1}
	}
	s.WriteString(arg+f.off, str)
	return nil
}

// StoreTrunc writes str truncated to the field — the explicit-policy
// variant for informational fields (sshd's passwd home path is documented
// as "first 63 bytes"), never a silent fallback.
func (f StringField) StoreTrunc(s *sthread.Sthread, arg vm.Addr, str string) {
	if len(str) > f.cap-1 {
		str = str[:f.cap-1]
	}
	s.WriteString(arg+f.off, str)
}

// Load reads the string, stopping at the terminator or the field's end —
// it can never read past the area, terminated or not.
func (f StringField) Load(s *sthread.Sthread, arg vm.Addr) string {
	return s.ReadString(arg+f.off, f.cap)
}

// FixedField is the handle of an exact-size byte area.
type FixedField struct {
	schema, name string
	off          vm.Addr
	size         int
}

// Size returns the declared size.
func (f FixedField) Size() int { return f.size }

// Off returns the field's resolved offset.
func (f FixedField) Off() vm.Addr { return f.off }

// Write stores exactly the field's bytes. A size mismatch is a
// programming error (fixed fields hold protocol-fixed values), so it
// panics like a wild pointer would, rather than burdening every gate
// body with an error that cannot happen on any input.
func (f FixedField) Write(s *sthread.Sthread, arg vm.Addr, p []byte) {
	if len(p) != f.size {
		panic(fmt.Sprintf("gateabi: write %s.%s: %d bytes into a %d-byte fixed field",
			f.schema, f.name, len(p), f.size))
	}
	s.Write(arg+f.off, p)
}

// Read fills buf, which must be exactly the field's size.
func (f FixedField) Read(s *sthread.Sthread, arg vm.Addr, buf []byte) {
	if len(buf) != f.size {
		panic(fmt.Sprintf("gateabi: read %s.%s: %d bytes from a %d-byte fixed field",
			f.schema, f.name, len(buf), f.size))
	}
	s.Read(arg+f.off, buf)
}

// Bytes allocates and reads the field's contents.
func (f FixedField) Bytes(s *sthread.Sthread, arg vm.Addr) []byte {
	p := make([]byte, f.size)
	s.Read(arg+f.off, p)
	return p
}

// ---- schema-generic decoding ----------------------------------------------

// DecodeAll decodes every field of the schema through s's view of the
// block at arg, exercising each codec's validation: variable-length
// fields whose length word exceeds their capacity yield their typed
// error; everything else is read within its declared extent. It returns
// the first decode error (nil when the whole block decodes). This is the
// surface the FuzzGateABI harness drives: for arbitrary block contents,
// DecodeAll must neither fault nor touch a byte outside [arg, arg+Size).
func (s *Schema) DecodeAll(st *sthread.Sthread, arg vm.Addr) error {
	var firstErr error
	for _, f := range s.fields {
		switch f.Kind {
		case KindWord, KindConnID, KindFD:
			_ = st.Load64(arg + f.Off)
		case KindBytes:
			bf := BytesField{schema: s.name, name: f.Name, off: f.Off, data: f.Off + 8, cap: f.Cap}
			if _, err := bf.Load(st, arg); err != nil && firstErr == nil {
				firstErr = err
			}
		case KindString:
			_ = st.ReadString(arg+f.Off, f.Cap)
		case KindFixed:
			buf := make([]byte, f.Cap)
			st.Read(arg+f.Off, buf)
		}
	}
	return firstErr
}
