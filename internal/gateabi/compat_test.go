package gateabi

import (
	"encoding/binary"
	"errors"
	"testing"
)

func compatSchema() *Schema {
	b := NewSchema("app")
	ConnID(b)
	FD(b)
	U64(b, "count")
	String(b, "user", 32)
	Bytes(b, "payload", 64)
	return b.Seal()
}

// TestHashStability: the hash is a pure function of the layout — same
// declarations, same hash; any layout difference, a different hash.
func TestHashStability(t *testing.T) {
	a, b := compatSchema(), compatSchema()
	if a.Hash() != b.Hash() {
		t.Fatalf("identical schemas hash %#x != %#x", a.Hash(), b.Hash())
	}

	variants := map[string]*Schema{
		"renamed": func() *Schema {
			s := NewSchema("app")
			ConnID(s)
			FD(s)
			U64(s, "total") // count -> total
			String(s, "user", 32)
			Bytes(s, "payload", 64)
			return s.Seal()
		}(),
		"grown cap": func() *Schema {
			s := NewSchema("app")
			ConnID(s)
			FD(s)
			U64(s, "count")
			String(s, "user", 64) // 32 -> 64
			Bytes(s, "payload", 64)
			return s.Seal()
		}(),
		"reordered": func() *Schema {
			s := NewSchema("app")
			ConnID(s)
			FD(s)
			String(s, "user", 32)
			U64(s, "count")
			Bytes(s, "payload", 64)
			return s.Seal()
		}(),
		"different app": func() *Schema {
			s := NewSchema("app2")
			ConnID(s)
			FD(s)
			U64(s, "count")
			String(s, "user", 32)
			Bytes(s, "payload", 64)
			return s.Seal()
		}(),
	}
	for name, v := range variants {
		if v.Hash() == a.Hash() {
			t.Errorf("%s: hash collided with the original", name)
		}
	}
}

// TestCompareDesc: removals/moves/kind changes/shrinks are breaking;
// additions and growth are compatible.
func TestCompareDesc(t *testing.T) {
	oldS := compatSchema().Desc()

	grown := func() *Schema {
		b := NewSchema("app")
		ConnID(b)
		FD(b)
		U64(b, "count")
		String(b, "user", 32)
		Bytes(b, "payload", 128) // grown, at the tail so nothing moves
		return b.Seal()
	}().Desc()
	for _, c := range CompareDesc(oldS, grown) {
		if c.Breaking {
			t.Errorf("capacity growth flagged breaking: %+v", c)
		}
	}

	shrunk := func() *Schema {
		b := NewSchema("app")
		ConnID(b)
		FD(b)
		U64(b, "count")
		String(b, "user", 32)
		Bytes(b, "payload", 32)
		return b.Seal()
	}().Desc()
	breaking := 0
	for _, c := range CompareDesc(oldS, shrunk) {
		if c.Breaking {
			breaking++
		}
	}
	if breaking == 0 {
		t.Error("capacity shrink not flagged breaking")
	}

	removed := func() *Schema {
		b := NewSchema("app")
		ConnID(b)
		FD(b)
		U64(b, "count")
		String(b, "user", 32)
		return b.Seal()
	}().Desc()
	found := false
	for _, c := range CompareDesc(oldS, removed) {
		if c.Field == "payload" && c.What == "removed" && c.Breaking {
			found = true
		}
	}
	if !found {
		t.Error("removed field not reported breaking")
	}

	if changes := CompareDesc(oldS, oldS); len(changes) != 0 {
		t.Errorf("self-compare reports %d changes", len(changes))
	}
}

// TestVerifyDesc: the only hard failure is a stale hash — same hash,
// different layout.
func TestVerifyDesc(t *testing.T) {
	a := compatSchema().Desc()
	b := compatSchema().Desc()
	if err := VerifyDesc(a, b); err != nil {
		t.Fatalf("identical descs: %v", err)
	}

	changed := func() *Schema {
		s := NewSchema("app")
		ConnID(s)
		FD(s)
		U64(s, "count")
		String(s, "user", 64)
		Bytes(s, "payload", 64)
		return s.Seal()
	}().Desc()
	if err := VerifyDesc(a, changed); err != nil {
		t.Fatalf("differing hashes must not hard-fail: %v", err)
	}

	forged := changed
	forged.Hash = a.Hash // a build that changed layout but kept the hash
	if err := VerifyDesc(a, forged); err == nil {
		t.Fatal("stale hash with changed layout passed VerifyDesc")
	}
}

// TestCheckImage: exact size, bounded length words, terminated strings,
// zero demux words — each violation refused.
func TestCheckImage(t *testing.T) {
	s := compatSchema()
	good := make([]byte, s.Size())
	// user: a NUL-terminated string inside its area; payload: length 3.
	var userOff, payloadOff int
	for _, f := range s.Fields() {
		switch f.Name {
		case "user":
			userOff = int(f.Off)
		case "payload":
			payloadOff = int(f.Off)
		}
	}
	copy(good[userOff:], "alice\x00")
	binary.LittleEndian.PutUint64(good[payloadOff:], 3)
	if err := s.CheckImage(good); err != nil {
		t.Fatalf("good image refused: %v", err)
	}

	short := good[:len(good)-1]
	if err := s.CheckImage(short); !errors.Is(err, ErrBadImage) {
		t.Errorf("short image: %v", err)
	}

	overLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(overLen[payloadOff:], 65) // cap is 64
	var abe *ArgBoundsError
	if err := s.CheckImage(overLen); err == nil || !errors.As(err, &abe) || !abe.Decode {
		t.Errorf("oversized length word: %v", err)
	}

	unterminated := append([]byte(nil), good...)
	for i := 0; i < 32; i++ {
		unterminated[userOff+i] = 'x'
	}
	if err := s.CheckImage(unterminated); err == nil {
		t.Error("unterminated string accepted")
	}

	forgedConn := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(forgedConn[s.ConnIDOff():], 9)
	if err := s.CheckImage(forgedConn); !errors.Is(err, ErrBadImage) {
		t.Errorf("forged conn id: %v", err)
	}

	forgedFD := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(forgedFD[s.FDOff():], 3)
	if err := s.CheckImage(forgedFD); !errors.Is(err, ErrBadImage) {
		t.Errorf("forged fd word: %v", err)
	}
}
