// Schema identity and cross-build compatibility. A sealed schema's layout
// is a wire contract twice over: gate caller and gate body agree on it
// within one build, and — since the cluster's session handoff serializes
// per-principal state as a schema-laid-out block image — two *runtimes*
// must agree on it before state may cross between them. Both agreements
// hang off the same primitive: a stable hash of the placed layout.
//
// Hash covers everything that affects block interpretation (name, size,
// and every field's name, kind, offset, and capacity) and nothing that
// does not, so it is identical across builds exactly when the layouts
// are interchangeable. Desc is the JSON-able projection of a schema
// (what cmd/schemadiff emits per build), and CompareDesc is the
// field-level compatibility report between two such projections.
//
// CheckImage is the import-side bounds pass: a block image arriving from
// another runtime crosses a trust boundary and is validated exactly like
// hostile gate input — every length word against its capacity, every
// string area for termination, the runtime-owned demux words for
// cleanliness — before any byte of it is interpreted.

package gateabi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// fnv64 constants (FNV-1a), spelled locally so the hash never drifts
// with a library change.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) bytes(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x ^= uint64(b)
		x *= fnvPrime64
	}
	*h = fnv64(x)
}

func (h *fnv64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime64
	}
	x ^= 0xff // terminator: "ab","c" never hashes like "a","bc"
	x *= fnvPrime64
	*h = fnv64(x)
}

func (h *fnv64) word(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.bytes(b[:])
}

// Hash is the schema's stable layout identity: FNV-1a over the name, the
// block size, and every placed field (name, kind, offset, capacity) in
// declaration order. Two builds produce the same hash exactly when their
// blocks are interchangeable, so the cluster director refuses any
// session handoff whose record carries a different hash than the
// importing runtime's schema.
func (s *Schema) Hash() uint64 {
	h := fnv64(fnvOffset64)
	h.str(s.name)
	h.word(uint64(s.size))
	for _, f := range s.fields {
		h.str(f.Name)
		h.word(uint64(f.Kind))
		h.word(uint64(f.Off))
		h.word(uint64(f.Cap))
	}
	return uint64(h)
}

// Desc is the serializable projection of a sealed schema — what one
// build can emit (cmd/schemadiff -emit) so another build can diff
// against it.
type Desc struct {
	Name   string      `json:"name"`
	Size   int         `json:"size"`
	Hash   uint64      `json:"hash"`
	Fields []FieldInfo `json:"fields"`
}

// Desc returns the schema's descriptor.
func (s *Schema) Desc() Desc {
	return Desc{Name: s.name, Size: s.size, Hash: s.Hash(), Fields: s.Fields()}
}

// SchemaChange is one field-level difference between two builds of a
// schema. Breaking marks changes that reinterpret or lose existing block
// bytes (removed fields, moved or re-kinded fields, shrunk capacities);
// additions and capacity growth are compatible — old images still decode,
// they just do not fill the new space.
type SchemaChange struct {
	Field    string `json:"field"`
	What     string `json:"what"`
	Breaking bool   `json:"breaking"`
}

// CompareDesc reports the field-level differences from old to new. A nil
// report means the layouts are identical (and the hashes must agree —
// see VerifyDesc for the converse check).
func CompareDesc(old, new Desc) []SchemaChange {
	var out []SchemaChange
	newBy := make(map[string]FieldInfo, len(new.Fields))
	for _, f := range new.Fields {
		newBy[f.Name] = f
	}
	oldBy := make(map[string]FieldInfo, len(old.Fields))
	for _, f := range old.Fields {
		oldBy[f.Name] = f
		nf, ok := newBy[f.Name]
		if !ok {
			out = append(out, SchemaChange{Field: f.Name, What: "removed", Breaking: true})
			continue
		}
		if nf.Kind != f.Kind {
			out = append(out, SchemaChange{Field: f.Name, Breaking: true,
				What: fmt.Sprintf("kind %s -> %s", f.Kind, nf.Kind)})
		}
		if nf.Off != f.Off {
			out = append(out, SchemaChange{Field: f.Name, Breaking: true,
				What: fmt.Sprintf("moved +%d -> +%d", f.Off, nf.Off)})
		}
		if nf.Cap != f.Cap {
			out = append(out, SchemaChange{Field: f.Name, Breaking: nf.Cap < f.Cap,
				What: fmt.Sprintf("capacity %d -> %d", f.Cap, nf.Cap)})
		}
	}
	for _, f := range new.Fields {
		if _, ok := oldBy[f.Name]; !ok {
			out = append(out, SchemaChange{Field: f.Name, Breaking: false,
				What: fmt.Sprintf("added (%s, +%d, cap %d)", f.Kind, f.Off, f.Cap)})
		}
	}
	if old.Size != new.Size {
		out = append(out, SchemaChange{Field: "", Breaking: false,
			What: fmt.Sprintf("block size %d -> %d", old.Size, new.Size)})
	}
	return out
}

// VerifyDesc checks the one invariant a schema diff may hard-fail on: if
// two builds claim the same hash, their layouts must actually be
// identical. A hash that survives a layout change would let the director
// admit a handoff into a block it misinterprets — the exact corruption
// the hash exists to refuse.
func VerifyDesc(old, new Desc) error {
	if old.Hash != new.Hash {
		return nil
	}
	if changes := CompareDesc(old, new); len(changes) != 0 {
		return fmt.Errorf("gateabi: schema %q: hash %#x unchanged but layout differs (%d changes)",
			new.Name, new.Hash, len(changes))
	}
	return nil
}

// ErrBadImage is the errors.Is target for block-image validation
// failures that are not per-field bounds errors (those surface as
// *ArgBoundsError, same as any hostile decode).
var ErrBadImage = errors.New("gateabi: malformed block image")

// CheckImage validates a serialized block image against the schema with
// the same rigor Load applies to hostile gate input: the image must be
// exactly one block, every length-prefixed field's length word must be
// within its capacity, every string area must be terminated, and the
// runtime-owned demux words must be zero (a forged conn id or descriptor
// number in an imported image must never reach a slot). It returns the
// first violation.
func (s *Schema) CheckImage(img []byte) error {
	if len(img) != s.size {
		return fmt.Errorf("%w: %s: image is %d bytes, block is %d",
			ErrBadImage, s.name, len(img), s.size)
	}
	for _, f := range s.fields {
		switch f.Kind {
		case KindBytes:
			n := binary.LittleEndian.Uint64(img[f.Off:])
			if n > uint64(f.Cap) {
				return &ArgBoundsError{Schema: s.name, Field: f.Name,
					Len: clampInt(n), Cap: f.Cap, Decode: true}
			}
		case KindString:
			area := img[f.Off : int(f.Off)+f.Cap]
			terminated := false
			for _, b := range area {
				if b == 0 {
					terminated = true
					break
				}
			}
			if !terminated {
				return fmt.Errorf("%w: %s: string field %q is unterminated",
					ErrBadImage, s.name, f.Name)
			}
		case KindConnID, KindFD:
			if binary.LittleEndian.Uint64(img[f.Off:]) != 0 {
				return fmt.Errorf("%w: %s: demux word %q is nonzero",
					ErrBadImage, s.name, f.Name)
			}
		}
	}
	return nil
}
