package gateabi_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"wedge/internal/gateabi"
	"wedge/internal/kernel"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// withBlock boots a system, allocates an argument block of the given
// size (plus a guard window that must stay zero), and runs fn on the
// root sthread.
func withBlock(t *testing.T, size int, fn func(s *sthread.Sthread, arg vm.Addr)) {
	t.Helper()
	app := sthread.Boot(kernel.New())
	err := app.Main(func(root *sthread.Sthread) {
		tag, err := app.Tags.TagNew(root.Task)
		if err != nil {
			t.Error(err)
			return
		}
		arg, err := root.Smalloc(tag, size+guard)
		if err != nil {
			t.Error(err)
			return
		}
		fn(root, arg)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// guard is how far past the schema's block the tests verify nothing was
// written.
const guard = 256

// checkGuard asserts the guard window past the block is still zero: no
// codec operation may ever write past Schema.Size().
func checkGuard(t *testing.T, s *sthread.Sthread, arg vm.Addr, size int) {
	t.Helper()
	buf := make([]byte, guard)
	s.Read(arg+vm.Addr(size), buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("guard window dirtied at +%d (%#x): a codec wrote past the block", size+i, b)
		}
	}
}

// testSchema builds one schema exercising every field kind.
func testSchema() (*gateabi.Schema, gateabi.WordField[uint64], gateabi.WordField[int],
	gateabi.BytesField, gateabi.StringField, gateabi.FixedField) {
	b := gateabi.NewSchema("test")
	word := gateabi.U64(b, "word")
	iword := gateabi.Word[int](b, "iword")
	_ = gateabi.ConnID(b)
	blob := gateabi.Bytes(b, "blob", 96)
	str := gateabi.String(b, "str", 32)
	fixed := gateabi.Fixed(b, "fixed", 24)
	_ = gateabi.FD(b)
	return b.Seal(), word, iword, blob, str, fixed
}

// TestSchemaLayout: placement is sequential, 8-aligned, inside Size, and
// the demux metadata is consistent.
func TestSchemaLayout(t *testing.T) {
	s, word, iword, blob, str, fixed := testSchema()
	if !s.HasDemux() {
		t.Fatal("schema with ConnID+FD reports no demux")
	}
	if s.Size()%8 != 0 {
		t.Fatalf("size %d not word-aligned", s.Size())
	}
	offs := []vm.Addr{word.Off(), iword.Off(), blob.Off(), str.Off(), fixed.Off()}
	for i, off := range offs {
		if off%8 != 0 {
			t.Fatalf("field %d at unaligned offset %d", i, off)
		}
	}
	fields := s.Fields()
	if len(fields) != 7 {
		t.Fatalf("fields = %d, want 7", len(fields))
	}
	// No two fields overlap, and every extent fits in Size.
	type span struct{ lo, hi int }
	var spans []span
	for _, f := range fields {
		ext := f.Cap
		if f.Kind == gateabi.KindBytes {
			ext += 8
		}
		sp := span{int(f.Off), int(f.Off) + ext}
		if sp.hi > s.Size() {
			t.Fatalf("field %s extends to %d past size %d", f.Name, sp.hi, s.Size())
		}
		for _, o := range spans {
			if sp.lo < o.hi && o.lo < sp.hi {
				t.Fatalf("field %s overlaps another field", f.Name)
			}
		}
		spans = append(spans, sp)
	}
	// The demux words are exactly the IsDemux bytes.
	demuxBytes := 0
	for j := 0; j < s.Size(); j++ {
		if s.IsDemux(j) {
			demuxBytes++
		}
	}
	if demuxBytes != 16 {
		t.Fatalf("IsDemux covers %d bytes, want 16", demuxBytes)
	}
}

// TestRoundTrip: random payloads under each field's capacity survive a
// store/load cycle bit-for-bit, and nothing ever lands past the block.
func TestRoundTrip(t *testing.T) {
	s, word, iword, blob, str, fixed := testSchema()
	rng := rand.New(rand.NewSource(1))
	withBlock(t, s.Size(), func(st *sthread.Sthread, arg vm.Addr) {
		for i := 0; i < 200; i++ {
			w := rng.Uint64()
			word.Store(st, arg, w)
			if got := word.Load(st, arg); got != w {
				t.Fatalf("word round-trip: %x != %x", got, w)
			}
			iv := rng.Intn(1 << 30)
			iword.Store(st, arg, iv)
			if got := iword.Load(st, arg); got != iv {
				t.Fatalf("int word round-trip: %d != %d", got, iv)
			}

			p := make([]byte, rng.Intn(blob.Cap()+1))
			rng.Read(p)
			if err := blob.Store(st, arg, p); err != nil {
				t.Fatalf("store %d bytes under cap %d: %v", len(p), blob.Cap(), err)
			}
			got, err := blob.Load(st, arg)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if !bytes.Equal(got, p) && !(len(p) == 0 && got == nil) {
				t.Fatalf("bytes round-trip mismatch: %d vs %d bytes", len(got), len(p))
			}

			sv := randString(rng, rng.Intn(str.Cap()))
			if err := str.Store(st, arg, sv); err != nil {
				t.Fatalf("string store %d chars: %v", len(sv), err)
			}
			if got := str.Load(st, arg); got != sv {
				t.Fatalf("string round-trip: %q != %q", got, sv)
			}

			fv := make([]byte, fixed.Size())
			rng.Read(fv)
			fixed.Write(st, arg, fv)
			if got := fixed.Bytes(st, arg); !bytes.Equal(got, fv) {
				t.Fatal("fixed round-trip mismatch")
			}
		}
		checkGuard(t, st, arg, s.Size())
	})
}

// randString produces n printable non-NUL bytes (NUL terminates a string
// field by definition).
func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + rng.Intn(95))
	}
	return string(b)
}

// TestBoundsErrors is the regression for the PR 4 oversized-payload
// channel: every oversized store fails with the typed *ArgBoundsError
// (errors.Is ErrArgBounds) BEFORE touching memory — no silent cap, no
// partial write, nothing past the field. The old storeArgStr call sites
// enforced this per call; the codec now owns it.
func TestBoundsErrors(t *testing.T) {
	s, _, _, blob, str, _ := testSchema()
	withBlock(t, s.Size(), func(st *sthread.Sthread, arg vm.Addr) {
		// Plant a known payload, then attempt the oversized store.
		want := []byte("resident payload")
		if err := blob.Store(st, arg, want); err != nil {
			t.Fatal(err)
		}
		huge := bytes.Repeat([]byte{'A'}, blob.Cap()+1)
		err := blob.Store(st, arg, huge)
		var abe *gateabi.ArgBoundsError
		if !errors.As(err, &abe) || !errors.Is(err, gateabi.ErrArgBounds) {
			t.Fatalf("oversized store error = %v, want *ArgBoundsError", err)
		}
		if abe.Field != "blob" || abe.Len != len(huge) || abe.Cap != blob.Cap() {
			t.Fatalf("error detail = %+v", abe)
		}
		// The resident payload is untouched: the rejection happened
		// before any write, not after a truncated one.
		got, err := blob.Load(st, arg)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("resident payload after rejected store: %q (%v), want %q", got, err, want)
		}

		// StoreMax enforces the tighter per-op cap the same way.
		err = blob.StoreMax(st, arg, bytes.Repeat([]byte{'B'}, 65), 64)
		if !errors.As(err, &abe) || abe.Cap != 64 {
			t.Fatalf("StoreMax error = %v, want cap-64 *ArgBoundsError", err)
		}

		// An oversized string store is rejected too; StoreTrunc is the
		// explicit-policy alternative.
		long := randString(rand.New(rand.NewSource(2)), str.Cap()*2)
		if err := str.Store(st, arg, long); !errors.As(err, &abe) {
			t.Fatalf("oversized string store error = %v", err)
		}
		str.StoreTrunc(st, arg, long)
		if got := str.Load(st, arg); got != long[:str.Cap()-1] {
			t.Fatalf("StoreTrunc kept %d chars, want %d", len(got), str.Cap()-1)
		}

		// Decode validation: a hostile length word over the capacity is a
		// typed decode error, never a read past the field.
		st.Store64(arg+blob.Off(), uint64(s.Size()*100))
		if _, err := blob.Load(st, arg); !errors.As(err, &abe) || !abe.Decode {
			t.Fatalf("hostile length decode error = %v, want decode *ArgBoundsError", err)
		}
		checkGuard(t, st, arg, s.Size())
	})
}

// TestProbeWindow: the residue-probe footprint derives from the largest
// variable-length capacity, floored at 64.
func TestProbeWindow(t *testing.T) {
	s, _, _, _, _, _ := testSchema()
	if got := s.ProbeWindow(); got != 96 {
		t.Fatalf("probe window = %d, want 96 (largest variable cap)", got)
	}
	b := gateabi.NewSchema("words-only")
	gateabi.U64(b, "a")
	if got := b.Seal().ProbeWindow(); got != 64 {
		t.Fatalf("word-only probe window = %d, want the 64 floor", got)
	}
}

// TestBuilderPanics: malformed declarations fail at schema-declaration
// time (package init in real apps), not per connection.
func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"duplicate field": func() {
			b := gateabi.NewSchema("x")
			gateabi.U64(b, "a")
			gateabi.U64(b, "a")
		},
		"empty schema":    func() { gateabi.NewSchema("x").Seal() },
		"zero-cap bytes":  func() { gateabi.Bytes(gateabi.NewSchema("x"), "b", 0) },
		"tiny string":     func() { gateabi.String(gateabi.NewSchema("x"), "s", 1) },
		"declare-on-seal": func() { b := gateabi.NewSchema("x"); gateabi.U64(b, "a"); b.Seal(); gateabi.U64(b, "late") },
		"double demux":    func() { b := gateabi.NewSchema("x"); gateabi.ConnID(b); gateabi.ConnID(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestLoadMaxNonPositiveCap: a non-positive per-op cap admits nothing —
// it must not wrap through the unsigned length comparison into an
// unbounded read (a hostile length word would otherwise pass a
// negative-max check and pull bytes past the field).
func TestLoadMaxNonPositiveCap(t *testing.T) {
	s, _, _, blob, _, _ := testSchema()
	withBlock(t, s.Size(), func(st *sthread.Sthread, arg vm.Addr) {
		st.Store64(arg+blob.Off(), 1<<40) // hostile resident length
		for _, max := range []int{0, -1, -1 << 30} {
			var abe *gateabi.ArgBoundsError
			if _, err := blob.LoadMax(st, arg, max); !errors.As(err, &abe) {
				t.Fatalf("LoadMax(max=%d) with hostile length = %v, want *ArgBoundsError", max, err)
			}
		}
		// A zero length word decodes as empty under a zero cap.
		st.Store64(arg+blob.Off(), 0)
		if p, err := blob.LoadMax(st, arg, 0); err != nil || p != nil {
			t.Fatalf("LoadMax(max=0) on empty = %v, %v, want nil, nil", p, err)
		}
	})
}
