// Property-based and failure-injection tests for the boundary-tag
// allocator beneath smalloc (§4.1, derived from dlmalloc): alignment,
// non-overlap, content integrity under random alloc/free interleavings,
// full coalescing, and corrupt-free detection.

package tags

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"wedge/internal/vm"
)

// newArena maps and seeds a raw heap of the given size.
func newArena(t *testing.T, size int) (*vm.AddressSpace, vm.Addr) {
	t.Helper()
	as := vm.NewAddressSpace()
	base, err := as.MapAnon(size, vm.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := InitHeap(as, base, size); err != nil {
		t.Fatal(err)
	}
	return as, base
}

// TestHeapAllocStressProperty drives random alloc/free sequences and
// checks, at every step: 16-byte alignment, pairwise disjointness of live
// payloads, and that every byte written to a block survives until its
// free — the failure mode of overlap or header corruption.
func TestHeapAllocStressProperty(t *testing.T) {
	type block struct {
		addr vm.Addr
		size int
		fill byte
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as, base := newArena(t, 1<<20)
		var live []block
		for step := 0; step < 300; step++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := 1 + rng.Intn(1200) // spans the exact bins and the large bin
				a, err := HeapAlloc(as, base, size)
				if err != nil {
					if errors.Is(err, ErrNoMem) {
						continue // arena full; keep freeing
					}
					t.Logf("seed %d: alloc: %v", seed, err)
					return false
				}
				if a%16 != 0 {
					t.Logf("seed %d: unaligned payload %#x", seed, uint64(a))
					return false
				}
				for _, b := range live {
					if a < b.addr+vm.Addr(b.size) && b.addr < a+vm.Addr(size) {
						t.Logf("seed %d: overlap [%#x,+%d) with [%#x,+%d)",
							seed, uint64(a), size, uint64(b.addr), b.size)
						return false
					}
				}
				fill := byte(rng.Intn(255) + 1)
				buf := make([]byte, size)
				for i := range buf {
					buf[i] = fill
				}
				if err := as.Write(a, buf); err != nil {
					return false
				}
				live = append(live, block{a, size, fill})
			} else {
				i := rng.Intn(len(live))
				b := live[i]
				got := make([]byte, b.size)
				if err := as.Read(b.addr, got); err != nil {
					return false
				}
				for j, v := range got {
					if v != b.fill {
						t.Logf("seed %d: block %#x byte %d = %#x, want %#x",
							seed, uint64(b.addr), j, v, b.fill)
						return false
					}
				}
				if err := HeapFree(as, base, b.addr); err != nil {
					t.Logf("seed %d: free %#x: %v", seed, uint64(b.addr), err)
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapFullCoalescingProperty: allocate many blocks, free them all in
// a random order, and verify the allocator can then hand out one block
// spanning nearly the whole arena — only full boundary-tag coalescing
// makes that possible.
func TestHeapFullCoalescingProperty(t *testing.T) {
	const arena = 1 << 18
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as, base := newArena(t, arena)
		var addrs []vm.Addr
		for {
			a, err := HeapAlloc(as, base, 512+rng.Intn(512))
			if errors.Is(err, ErrNoMem) {
				break
			}
			if err != nil {
				return false
			}
			addrs = append(addrs, a)
		}
		if len(addrs) < 100 {
			t.Logf("seed %d: only %d blocks fit", seed, len(addrs))
			return false
		}
		rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
		for _, a := range addrs {
			if err := HeapFree(as, base, a); err != nil {
				t.Logf("seed %d: free: %v", seed, err)
				return false
			}
		}
		// Nearly the whole arena must be allocatable as one block again.
		big, err := HeapAlloc(as, base, arena*9/10)
		if err != nil {
			t.Logf("seed %d: post-coalesce big alloc: %v", seed, err)
			return false
		}
		return HeapFree(as, base, big) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapMiddleBlockCoalescing: the classic three-way merge — freeing
// the middle of three adjacent free-able blocks yields one chunk big
// enough for their combined size.
func TestHeapMiddleBlockCoalescing(t *testing.T) {
	as, base := newArena(t, 1<<16)
	const sz = 256
	a, err := HeapAlloc(as, base, sz)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := HeapAlloc(as, base, sz)
	c, _ := HeapAlloc(as, base, sz)
	// A sentinel keeps the trio away from the wilderness so the merge is
	// chunk-to-chunk, not a top reset.
	if _, err := HeapAlloc(as, base, sz); err != nil {
		t.Fatal(err)
	}
	for _, x := range []vm.Addr{a, c, b} { // middle last: coalesces both ways
		if err := HeapFree(as, base, x); err != nil {
			t.Fatal(err)
		}
	}
	// One allocation of ~3x must fit in the merged chunk, at a's address.
	big, err := HeapAlloc(as, base, 3*sz)
	if err != nil {
		t.Fatalf("merged alloc: %v", err)
	}
	if big != a {
		t.Fatalf("merged block at %#x, want the trio's base %#x", uint64(big), uint64(a))
	}
}

// TestHeapFreeFailureInjection: double frees, wild pointers, and frees
// below the heap header are rejected with the distinct errors.
func TestHeapFreeFailureInjection(t *testing.T) {
	as, base := newArena(t, 1<<16)
	a, err := HeapAlloc(as, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := HeapFree(as, base, a); err != nil {
		t.Fatal(err)
	}
	if err := HeapFree(as, base, a); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: %v", err)
	}
	if err := HeapFree(as, base, base+8); !errors.Is(err, ErrBadFree) {
		t.Fatalf("free inside header: %v", err)
	}
	// A heap that was never initialised is refused outright.
	raw, err := as.MapAnon(1<<14, vm.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HeapAlloc(as, raw, 16); err == nil {
		t.Fatal("alloc from uninitialised region accepted")
	}
	if err := HeapFree(as, raw, raw+64); err == nil {
		t.Fatal("free into uninitialised region accepted")
	}
}

// TestHeapExhaustionAndRecovery: ErrNoMem at the wilderness end, full
// recovery after frees.
func TestHeapExhaustionAndRecovery(t *testing.T) {
	as, base := newArena(t, 1<<14)
	var addrs []vm.Addr
	for {
		a, err := HeapAlloc(as, base, 1024)
		if errors.Is(err, ErrNoMem) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		t.Fatal("nothing fit")
	}
	for _, a := range addrs {
		if err := HeapFree(as, base, a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := HeapAlloc(as, base, 1024); err != nil {
		t.Fatalf("alloc after recovery: %v", err)
	}
}

// TestUsableSizeSmalloc: UsableSize reports at least the requested bytes
// for live smalloc blocks and rejects freed ones.
func TestUsableSizeSmalloc(t *testing.T) {
	task := newTask(t)
	as := task.AS
	reg := NewRegistry()
	tag, err := reg.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 16, 17, 255, 4096} {
		a, err := reg.Smalloc(as, tag, size)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reg.UsableSize(as, a)
		if err != nil {
			t.Fatal(err)
		}
		if got < size {
			t.Fatalf("UsableSize(%d-byte block) = %d", size, got)
		}
		if err := reg.Sfree(as, a); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.UsableSize(as, a); err == nil {
			t.Fatal("UsableSize accepted a freed block")
		}
	}
}
