// Package tags implements Wedge's tagged memory (§3.2, §4.1): tag_new /
// tag_delete, smalloc / sfree, the smalloc_on / smalloc_off malloc
// interception used when retrofitting legacy code, and the userland free
// list of deleted tags that makes warm tag_new roughly four times the cost
// of malloc rather than the cost of mmap (Figure 8).
//
// A tag names one contiguous simulated-memory segment. As in the paper, the
// allocator's bookkeeping structures (bins, chunk headers, boundary tags)
// live inside the segment itself, so any sthread granted read-write access
// to the tag can allocate from it, and reusing a deleted tag only requires
// scrubbing the segment and re-seeding a few header words.
package tags

import (
	"errors"
	"fmt"
	"sync"

	"wedge/internal/kernel"
	"wedge/internal/vm"
)

// Tag identifies a tagged memory segment. Tag 0 is reserved for "no tag":
// memory that can never be named in a security policy (§3.2).
type Tag uint64

// NoTag is the zero tag.
const NoTag Tag = 0

// DefaultRegionSize is the default segment size backing one tag. 64 KiB
// (16 pages) suits the per-connection tags the partitioned servers create.
const DefaultRegionSize = 64 * 1024

// Errors.
var (
	ErrNoMem      = errors.New("tags: segment out of memory")
	ErrBadTag     = errors.New("tags: unknown tag")
	ErrBadFree    = errors.New("tags: bad sfree address")
	ErrNotTagged  = errors.New("tags: address not in any tagged segment")
	ErrDoubleFree = errors.New("tags: double free")
)

// Allocator geometry. Chunk layout:
//
//	[size|flags uint64][prevSize uint64][payload ...]
//
// Free-chunk payloads hold [next uint64][prev uint64] free-list links.
// All addresses stored in simulated memory are absolute virtual addresses,
// valid in every address space the segment is mapped into (grants map the
// segment at identical addresses).
const (
	chunkHdr   = 16
	minChunk   = 32 // header + room for the two links
	alignMask  = 15
	numBins    = 64
	largeBin   = numBins - 1
	magicWord  = 0x57454447 // "WEDG"
	hdrMagic   = 0
	hdrTop     = 8
	hdrEnd     = 16
	hdrBins    = 24
	headerSize = (hdrBins + numBins*8 + alignMask) &^ alignMask

	inuseBit  = 1
	sizeMaskC = ^uint64(7)
)

// Region is the metadata for one tagged segment. The authoritative
// allocator state lives in simulated memory; Region records where.
type Region struct {
	Tag  Tag
	Base vm.Addr
	Size int
	// Owner is the address space the segment was created in. Grants share
	// the same frames into other spaces at the same addresses.
	Owner *vm.AddressSpace
	// NoHeap marks adopted regions (boundary-variable sections) that hold
	// raw globals rather than an smalloc arena.
	NoHeap bool

	// mu is the userland lock serializing allocator operations by the
	// sthreads sharing this segment. It is tooling state, not simulated
	// memory: the paper's implementation would use a futex here.
	mu sync.Mutex
}

// End returns one past the last byte of the segment.
func (r *Region) End() vm.Addr { return r.Base + vm.Addr(r.Size) }

// Contains reports whether a falls inside the segment.
func (r *Region) Contains(a vm.Addr) bool { return a >= r.Base && a < r.End() }

// Registry is the per-application tag namespace: the kernel-side mapping
// from tags to segments plus the userland free list of deleted tags.
type Registry struct {
	mu         sync.Mutex
	regions    map[Tag]*Region
	cache      []*Region // deleted tags available for reuse
	nextTag    Tag
	RegionSize int

	// CacheEnabled can be switched off to measure the ablation the paper
	// reports (+20% Apache throughput from tag reuse, §4.1/§6).
	CacheEnabled bool

	// Mechanical counters for benchmarks and tests.
	Reuses   uint64
	ColdNews uint64
	Smallocs uint64
	Sfrees   uint64
}

// NewRegistry returns an empty tag registry with the default segment size.
func NewRegistry() *Registry {
	return &Registry{
		regions:      make(map[Tag]*Region),
		RegionSize:   DefaultRegionSize,
		CacheEnabled: true,
	}
}

// TagNew allocates a fresh tag backed by a segment in t's address space
// (§3.2 step one). The warm path pops the userland cache, scrubs the
// segment by remapping it to shared zero pages, and re-seeds the allocator
// header — no system call. The cold path is an mmap-equivalent.
// The registry lock is held across the structural address-space changes
// (mmap, remap, unmap, grants): it is the application's mm lock, so tags
// may be created and deleted while other threads of control concurrently
// assemble sthread address spaces from them (Grant).
func (r *Registry) TagNew(t *kernel.Task) (Tag, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.CacheEnabled {
		for i := len(r.cache) - 1; i >= 0; i-- {
			reg := r.cache[i]
			if reg.Owner == t.AS {
				r.cache = append(r.cache[:i], r.cache[i+1:]...)
				r.nextTag++
				reg.Tag = r.nextTag
				r.regions[reg.Tag] = reg
				r.Reuses++
				// Scrub for secrecy, then re-seed the header. Fresh
				// frames rather than RemapZero: a reused segment may be
				// granted read-write (recycled-gate control pages,
				// pool argument blocks), which requires every sharer to
				// land on the same writable frame.
				if err := t.AS.RefreshZero(reg.Base, reg.Size); err != nil {
					return NoTag, err
				}
				if err := initRegion(t.AS, reg.Base, reg.Size); err != nil {
					return NoTag, err
				}
				return reg.Tag, nil
			}
		}
	}
	r.ColdNews++

	base, err := t.Mmap(r.RegionSize, vm.PermRW)
	if err != nil {
		return NoTag, err
	}
	if err := initRegion(t.AS, base, r.RegionSize); err != nil {
		return NoTag, err
	}
	r.nextTag++
	tag := r.nextTag
	r.regions[tag] = &Region{Tag: tag, Base: base, Size: r.RegionSize, Owner: t.AS}
	return tag, nil
}

// TagDelete retires a tag. Its segment joins the userland cache for reuse;
// the contents remain mapped (and will be scrubbed on reuse), mirroring the
// paper's implementation.
func (r *Registry) TagDelete(tag Tag) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.regions[tag]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	delete(r.regions, tag)
	if reg.NoHeap {
		return nil // boundary sections stay mapped; only the tag dies
	}
	if r.CacheEnabled {
		r.cache = append(r.cache, reg)
	} else {
		reg.Owner.Unmap(reg.Base, reg.Size)
	}
	return nil
}

// Grant maps tag's segment into dst with permission perm, sharing the
// underlying frames. The registry lock is held across the lookup and the
// page-table walk, so grants serialize against TagNew and TagDelete:
// sthreads can be assembled concurrently while tags come and go, which is
// what lets a server handle connections in parallel.
func (r *Registry) Grant(dst *vm.AddressSpace, tag Tag, perm vm.Perm) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.regions[tag]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	return reg.Owner.ShareInto(dst, reg.Base, reg.Size, perm)
}

// Lookup returns the region for tag.
func (r *Registry) Lookup(tag Tag) (*Region, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.regions[tag]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	return reg, nil
}

// TagOf returns the tag whose segment contains a, or NoTag.
func (r *Registry) TagOf(a vm.Addr) Tag {
	r.mu.Lock()
	defer r.mu.Unlock()
	for tag, reg := range r.regions {
		if reg.Contains(a) {
			return tag
		}
	}
	return NoTag
}

// Tags returns all live tags (for policy validation and tests).
func (r *Registry) Tags() []Tag {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Tag, 0, len(r.regions))
	for tag := range r.regions {
		out = append(out, tag)
	}
	return out
}

// CacheLen returns the number of retired segments awaiting reuse.
func (r *Registry) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// Smalloc allocates size bytes from the segment with the given tag, using
// the address space as (which must have read-write access to the segment).
func (r *Registry) Smalloc(as *vm.AddressSpace, tag Tag, size int) (vm.Addr, error) {
	reg, err := r.Lookup(tag)
	if err != nil {
		return 0, err
	}
	if reg.NoHeap {
		return 0, fmt.Errorf("tags: tag %d is a boundary-variable section, not an smalloc arena", tag)
	}
	r.mu.Lock()
	r.Smallocs++
	r.mu.Unlock()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return heapMalloc(as, reg.Base, size)
}

// Sfree releases an smalloc'd block. The owning segment is located by
// address, as free(ptr) locates its arena.
func (r *Registry) Sfree(as *vm.AddressSpace, a vm.Addr) error {
	r.mu.Lock()
	var reg *Region
	for _, candidate := range r.regions {
		if candidate.Contains(a) {
			reg = candidate
			break
		}
	}
	r.Sfrees++
	r.mu.Unlock()
	if reg == nil {
		return fmt.Errorf("%w: %#x", ErrNotTagged, uint64(a))
	}
	if reg.NoHeap {
		return fmt.Errorf("%w: %#x is in a boundary-variable section", ErrBadFree, uint64(a))
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return heapFree(as, reg.Base, a)
}

// Adopt registers an externally allocated, page-aligned region (a
// boundary-variable section carved out of the data segment, §3.2) under a
// fresh tag so that it can be named in security policies. Adopted regions
// are not smalloc arenas.
func (r *Registry) Adopt(owner *vm.AddressSpace, base vm.Addr, size int) Tag {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTag++
	tag := r.nextTag
	r.regions[tag] = &Region{Tag: tag, Base: base, Size: size, Owner: owner, NoHeap: true}
	return tag
}

// InitHeap seeds a raw region (not in the registry) with the allocator
// header so HeapAlloc/HeapFree can manage it. The sthread layer uses this
// for per-sthread private, untagged heaps.
func InitHeap(as *vm.AddressSpace, base vm.Addr, size int) error {
	return initRegion(as, base, size)
}

// HeapAlloc allocates from a heap seeded with InitHeap.
func HeapAlloc(as *vm.AddressSpace, base vm.Addr, size int) (vm.Addr, error) {
	return heapMalloc(as, base, size)
}

// HeapFree releases a HeapAlloc'd block.
func HeapFree(as *vm.AddressSpace, base vm.Addr, a vm.Addr) error {
	return heapFree(as, base, a)
}

// ---- the in-memory boundary-tag allocator ---------------------------------

func align16(n int) int { return (n + alignMask) &^ alignMask }

// binFor maps a chunk size to its bin index: exact 16-byte-spaced bins for
// chunks below 1 KiB, one large bin above.
func binFor(csize uint64) int {
	idx := int((csize - minChunk) / 16)
	if idx >= largeBin {
		return largeBin
	}
	return idx
}

func binAddr(base vm.Addr, idx int) vm.Addr { return base + hdrBins + vm.Addr(idx*8) }

// initRegion seeds the allocator header. After a scrub (all-zero pages)
// only three words need storing, which is what makes warm tag_new cheap.
func initRegion(as *vm.AddressSpace, base vm.Addr, size int) error {
	if err := as.Store64(base+hdrMagic, magicWord); err != nil {
		return err
	}
	if err := as.Store64(base+hdrTop, uint64(base)+headerSize); err != nil {
		return err
	}
	return as.Store64(base+hdrEnd, uint64(base)+uint64(size))
}

// checkMagic guards against smalloc on a non-initialised region.
func checkMagic(as *vm.AddressSpace, base vm.Addr) error {
	m, err := as.Load64(base + hdrMagic)
	if err != nil {
		return err
	}
	if m != magicWord {
		return fmt.Errorf("tags: corrupt or uninitialised segment at %#x", uint64(base))
	}
	return nil
}

func heapMalloc(as *vm.AddressSpace, base vm.Addr, size int) (vm.Addr, error) {
	if err := checkMagic(as, base); err != nil {
		return 0, err
	}
	if size <= 0 {
		size = 1
	}
	need := uint64(align16(size) + chunkHdr)
	if need < minChunk {
		need = minChunk
	}

	// Search bins from the first that could fit.
	for idx := binFor(need); idx < numBins; idx++ {
		head, err := as.Load64(binAddr(base, idx))
		if err != nil {
			return 0, err
		}
		// Within a bin, first fit (exact bins hold uniform sizes; the
		// large bin needs the scan).
		for cur := vm.Addr(head); cur != 0; {
			csize, err := as.Load64(cur)
			if err != nil {
				return 0, err
			}
			csize &= sizeMaskC
			if csize >= need {
				if err := unlinkChunk(as, base, cur, csize); err != nil {
					return 0, err
				}
				return takeChunk(as, base, cur, csize, need)
			}
			nxt, err := as.Load64(cur + chunkHdr)
			if err != nil {
				return 0, err
			}
			cur = vm.Addr(nxt)
		}
	}

	// Wilderness.
	top, err := as.Load64(base + hdrTop)
	if err != nil {
		return 0, err
	}
	end, err := as.Load64(base + hdrEnd)
	if err != nil {
		return 0, err
	}
	if top+need > end {
		return 0, ErrNoMem
	}
	if err := as.Store64(base+hdrTop, top+need); err != nil {
		return 0, err
	}
	c := vm.Addr(top)
	if err := as.Store64(c, need|inuseBit); err != nil {
		return 0, err
	}
	// prevSize of a fresh wilderness chunk: left neighbour is the chunk
	// that previously ended at top; preserve whatever is there (it was
	// set when that chunk was written). For the very first chunk it is 0.
	if err := as.Store64(c+8, 0); err != nil {
		return 0, err
	}
	return c + chunkHdr, nil
}

// takeChunk marks cur (of csize bytes) allocated, splitting off the tail
// when the remainder is large enough to be a chunk.
func takeChunk(as *vm.AddressSpace, base vm.Addr, cur vm.Addr, csize, need uint64) (vm.Addr, error) {
	if csize-need >= minChunk {
		rem := cur + vm.Addr(need)
		remSize := csize - need
		if err := as.Store64(rem, remSize); err != nil {
			return 0, err
		}
		if err := as.Store64(rem+8, need); err != nil {
			return 0, err
		}
		if err := setNextPrevSize(as, base, rem, remSize); err != nil {
			return 0, err
		}
		if err := linkChunk(as, base, rem, remSize); err != nil {
			return 0, err
		}
		csize = need
	}
	if err := as.Store64(cur, csize|inuseBit); err != nil {
		return 0, err
	}
	return cur + chunkHdr, nil
}

// setNextPrevSize updates the prevSize field of the chunk following c.
func setNextPrevSize(as *vm.AddressSpace, base vm.Addr, c vm.Addr, csize uint64) error {
	top, err := as.Load64(base + hdrTop)
	if err != nil {
		return err
	}
	next := c + vm.Addr(csize)
	if uint64(next) >= top {
		return nil
	}
	return as.Store64(next+8, csize)
}

func linkChunk(as *vm.AddressSpace, base vm.Addr, c vm.Addr, csize uint64) error {
	idx := binFor(csize)
	ba := binAddr(base, idx)
	head, err := as.Load64(ba)
	if err != nil {
		return err
	}
	// c.next = head; c.prev = 0; head.prev = c; bin = c
	if err := as.Store64(c+chunkHdr, head); err != nil {
		return err
	}
	if err := as.Store64(c+chunkHdr+8, 0); err != nil {
		return err
	}
	if head != 0 {
		if err := as.Store64(vm.Addr(head)+chunkHdr+8, uint64(c)); err != nil {
			return err
		}
	}
	return as.Store64(ba, uint64(c))
}

func unlinkChunk(as *vm.AddressSpace, base vm.Addr, c vm.Addr, csize uint64) error {
	next, err := as.Load64(c + chunkHdr)
	if err != nil {
		return err
	}
	prev, err := as.Load64(c + chunkHdr + 8)
	if err != nil {
		return err
	}
	if prev == 0 {
		if err := as.Store64(binAddr(base, binFor(csize)), next); err != nil {
			return err
		}
	} else {
		if err := as.Store64(vm.Addr(prev)+chunkHdr, next); err != nil {
			return err
		}
	}
	if next != 0 {
		if err := as.Store64(vm.Addr(next)+chunkHdr+8, prev); err != nil {
			return err
		}
	}
	return nil
}

func heapFree(as *vm.AddressSpace, base vm.Addr, payload vm.Addr) error {
	if err := checkMagic(as, base); err != nil {
		return err
	}
	c := payload - chunkHdr
	if c < base+headerSize {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(payload))
	}
	hdr, err := as.Load64(c)
	if err != nil {
		return err
	}
	if hdr&inuseBit == 0 {
		return fmt.Errorf("%w: %#x", ErrDoubleFree, uint64(payload))
	}
	csize := hdr & sizeMaskC
	// Clear the in-use bit on the original header immediately so that a
	// second free of the same payload is detected, whichever coalescing
	// path the chunk takes below (including merging into the wilderness,
	// where the header word would otherwise be left stale).
	if err := as.Store64(c, csize); err != nil {
		return err
	}
	top, err := as.Load64(base + hdrTop)
	if err != nil {
		return err
	}

	// Coalesce with the next chunk if it is free.
	next := c + vm.Addr(csize)
	if uint64(next) < top {
		nhdr, err := as.Load64(next)
		if err != nil {
			return err
		}
		if nhdr&inuseBit == 0 {
			nsize := nhdr & sizeMaskC
			if err := unlinkChunk(as, base, next, nsize); err != nil {
				return err
			}
			csize += nsize
		}
	}

	// Coalesce with the previous chunk if it is free.
	prevSize, err := as.Load64(c + 8)
	if err != nil {
		return err
	}
	if prevSize != 0 {
		prev := c - vm.Addr(prevSize)
		if prev >= base+headerSize {
			phdr, err := as.Load64(prev)
			if err != nil {
				return err
			}
			if phdr&inuseBit == 0 && phdr&sizeMaskC == prevSize {
				if err := unlinkChunk(as, base, prev, prevSize); err != nil {
					return err
				}
				c = prev
				csize += prevSize
			}
		}
	}

	// Merge into the wilderness when adjacent to it.
	if uint64(c)+csize >= top {
		return as.Store64(base+hdrTop, uint64(c))
	}

	if err := as.Store64(c, csize); err != nil {
		return err
	}
	if err := setNextPrevSize(as, base, c, csize); err != nil {
		return err
	}
	return linkChunk(as, base, c, csize)
}

// UsableSize returns the payload capacity of an allocated block.
func (r *Registry) UsableSize(as *vm.AddressSpace, payload vm.Addr) (int, error) {
	hdr, err := as.Load64(payload - chunkHdr)
	if err != nil {
		return 0, err
	}
	if hdr&inuseBit == 0 {
		return 0, ErrBadFree
	}
	return int(hdr&sizeMaskC) - chunkHdr, nil
}

// HeapTop returns the current wilderness pointer of a tag's segment, used
// by tests to verify full coalescing.
func (r *Registry) HeapTop(as *vm.AddressSpace, tag Tag) (vm.Addr, error) {
	reg, err := r.Lookup(tag)
	if err != nil {
		return 0, err
	}
	top, err := as.Load64(reg.Base + hdrTop)
	return vm.Addr(top), err
}

// HeapFloor returns the lowest allocatable address of a tag's segment.
func (r *Registry) HeapFloor(tag Tag) (vm.Addr, error) {
	reg, err := r.Lookup(tag)
	if err != nil {
		return 0, err
	}
	return reg.Base + headerSize, nil
}
