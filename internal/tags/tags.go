// Package tags implements Wedge's tagged memory (§3.2, §4.1): tag_new /
// tag_delete, smalloc / sfree, the smalloc_on / smalloc_off malloc
// interception used when retrofitting legacy code, and the userland free
// list of deleted tags that makes warm tag_new roughly four times the cost
// of malloc rather than the cost of mmap (Figure 8).
//
// A tag names one contiguous simulated-memory segment. As in the paper, the
// allocator's bookkeeping structures (bins, chunk headers, boundary tags)
// live inside the segment itself, so any sthread granted read-write access
// to the tag can allocate from it, and reusing a deleted tag only requires
// scrubbing the segment and re-seeding a few header words.
package tags

import (
	"errors"
	"fmt"
	"sync"

	"wedge/internal/kernel"
	"wedge/internal/vm"
)

// Tag identifies a tagged memory segment. Tag 0 is reserved for "no tag":
// memory that can never be named in a security policy (§3.2).
type Tag uint64

// NoTag is the zero tag.
const NoTag Tag = 0

// DefaultRegionSize is the default segment size backing one tag. 64 KiB
// (16 pages) suits the per-connection tags the partitioned servers create.
const DefaultRegionSize = 64 * 1024

// DefaultMaxRegionSize is the default cap on a region's total size across
// all of its segments (64 segments of the default size). A fixed arena
// turned out to be the recycled paths' scaling bottleneck: one shared
// 64 KiB argument tag backs every in-flight connection, so past ~60
// connections Smalloc fails and the server sheds load. Growing the arena
// segment-by-segment up to this cap removes the cliff while still
// bounding what one tag can consume.
const DefaultMaxRegionSize = 64 * DefaultRegionSize

// Errors.
var (
	ErrNoMem      = errors.New("tags: segment out of memory")
	ErrBadTag     = errors.New("tags: unknown tag")
	ErrBadFree    = errors.New("tags: bad sfree address")
	ErrNotTagged  = errors.New("tags: address not in any tagged segment")
	ErrDoubleFree = errors.New("tags: double free")
)

// Allocator geometry. Chunk layout:
//
//	[size|flags uint64][prevSize uint64][payload ...]
//
// Free-chunk payloads hold [next uint64][prev uint64] free-list links.
// All addresses stored in simulated memory are absolute virtual addresses,
// valid in every address space the segment is mapped into (grants map the
// segment at identical addresses).
const (
	chunkHdr   = 16
	minChunk   = 32 // header + room for the two links
	alignMask  = 15
	numBins    = 64
	largeBin   = numBins - 1
	magicWord  = 0x57454447 // "WEDG"
	hdrMagic   = 0
	hdrTop     = 8
	hdrEnd     = 16
	hdrBins    = 24
	headerSize = (hdrBins + numBins*8 + alignMask) &^ alignMask

	inuseBit  = 1
	sizeMaskC = ^uint64(7)
)

// Segment is one contiguous mapped piece of a region. A region starts as
// a single segment and grows by whole segments on arena exhaustion; each
// segment carries its own allocator header, so the boundary-tag allocator
// never has to pretend the pieces are contiguous.
type Segment struct {
	Base vm.Addr
	Size int
}

// End returns one past the last byte of the segment.
func (s Segment) End() vm.Addr { return s.Base + vm.Addr(s.Size) }

// Contains reports whether a falls inside the segment.
func (s Segment) Contains(a vm.Addr) bool { return a >= s.Base && a < s.End() }

// grant records one address space a region was shared into, so that
// segments mapped after the grant (arena growth) can be propagated: a
// recycled gate granted its argument tag at creation must be able to
// reach blocks smalloc'd from a segment that did not exist yet.
type grant struct {
	dst  *vm.AddressSpace
	perm vm.Perm
}

// Region is the metadata for one tagged segment chain. The authoritative
// allocator state lives in simulated memory; Region records where.
type Region struct {
	Tag Tag
	// Base and Size describe the first (and for most tags only) segment.
	Base vm.Addr
	Size int
	// Owner is the address space the segments are created in. Grants
	// share the same frames into other spaces at the same addresses.
	Owner *vm.AddressSpace
	// NoHeap marks adopted regions (boundary-variable sections) that hold
	// raw globals rather than an smalloc arena.
	NoHeap bool

	// mu is the userland lock serializing allocator operations by the
	// sthreads sharing this segment. It is tooling state, not simulated
	// memory: the paper's implementation would use a futex here.
	mu sync.Mutex

	// segMu guards the segment chain and the grant list, and is held
	// across growth propagation so a Grow and a concurrent Grant cannot
	// each miss the other's addition. It nests inside both the registry
	// lock and mu, and nothing is acquired under it but vm-level locks.
	segMu  sync.Mutex
	segs   []Segment
	grants []grant
}

// End returns one past the last byte of the first segment (the whole
// region when it has never grown).
func (r *Region) End() vm.Addr { return r.Base + vm.Addr(r.Size) }

// Contains reports whether a falls inside any of the region's segments.
func (r *Region) Contains(a vm.Addr) bool {
	_, ok := r.segmentOf(a)
	return ok
}

// segmentOf returns the segment containing a.
func (r *Region) segmentOf(a vm.Addr) (Segment, bool) {
	r.segMu.Lock()
	defer r.segMu.Unlock()
	for _, seg := range r.segs {
		if seg.Contains(a) {
			return seg, true
		}
	}
	return Segment{}, false
}

// Segments returns a snapshot of the region's segment chain.
func (r *Region) Segments() []Segment {
	r.segMu.Lock()
	defer r.segMu.Unlock()
	return append([]Segment(nil), r.segs...)
}

// TotalSize returns the number of bytes mapped across all segments.
func (r *Region) TotalSize() int {
	r.segMu.Lock()
	defer r.segMu.Unlock()
	total := 0
	for _, seg := range r.segs {
		total += seg.Size
	}
	return total
}

// Registry is the per-application tag namespace: the kernel-side mapping
// from tags to segments plus the userland free list of deleted tags.
type Registry struct {
	mu         sync.Mutex
	regions    map[Tag]*Region
	cache      []*Region // deleted tags available for reuse
	nextTag    Tag
	RegionSize int

	// MaxRegionSize caps a region's total bytes across all segments:
	// Smalloc returns ErrNoMem only once growing past it would be
	// required. Zero means DefaultMaxRegionSize.
	MaxRegionSize int

	// CacheEnabled can be switched off to measure the ablation the paper
	// reports (+20% Apache throughput from tag reuse, §4.1/§6).
	CacheEnabled bool

	// Mechanical counters for benchmarks and tests.
	Reuses   uint64
	ColdNews uint64
	Smallocs uint64
	Sfrees   uint64
	Grows    uint64
}

// NewRegistry returns an empty tag registry with the default segment size.
func NewRegistry() *Registry {
	return &Registry{
		regions:      make(map[Tag]*Region),
		RegionSize:   DefaultRegionSize,
		CacheEnabled: true,
	}
}

// SetMaxRegionSize sets the per-region growth cap under the registry
// lock, safe to call while the application serves (growth reads the cap
// through the same lock).
func (r *Registry) SetMaxRegionSize(bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.MaxRegionSize = bytes
}

// maxRegionBytes resolves the configured per-region cap under the
// registry lock: non-positive values mean the default, a cap below one
// segment is raised to one, and the result is rounded up to whole
// segments (as SetArenaCap documents) so an intermediate cap still
// permits the growth it implies.
func (r *Registry) maxRegionBytes() int {
	r.mu.Lock()
	max := r.MaxRegionSize
	r.mu.Unlock()
	if max <= 0 {
		max = DefaultMaxRegionSize
	}
	if max < r.RegionSize {
		max = r.RegionSize
	}
	if rem := max % r.RegionSize; rem != 0 {
		max += r.RegionSize - rem
	}
	return max
}

// TagNew allocates a fresh tag backed by a segment in t's address space
// (§3.2 step one). The warm path pops the userland cache, scrubs the
// segment by remapping it to shared zero pages, and re-seeds the allocator
// header — no system call. The cold path is an mmap-equivalent.
// The registry lock is held across the structural address-space changes
// (mmap, remap, unmap, grants): it is the application's mm lock, so tags
// may be created and deleted while other threads of control concurrently
// assemble sthread address spaces from them (Grant).
func (r *Registry) TagNew(t *kernel.Task) (Tag, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.CacheEnabled {
		for i := len(r.cache) - 1; i >= 0; i-- {
			reg := r.cache[i]
			if reg.Owner == t.AS {
				r.cache = append(r.cache[:i], r.cache[i+1:]...)
				r.nextTag++
				reg.Tag = r.nextTag
				r.regions[reg.Tag] = reg
				r.Reuses++
				// Cached regions were trimmed back to one segment and had
				// their grants dropped at TagDelete; only the first
				// segment needs scrubbing and re-seeding.
				// Scrub for secrecy, then re-seed the header. Fresh
				// frames rather than RemapZero: a reused segment may be
				// granted read-write (recycled-gate control pages,
				// pool argument blocks), which requires every sharer to
				// land on the same writable frame.
				if err := t.AS.RefreshZero(reg.Base, reg.Size); err != nil {
					return NoTag, err
				}
				if err := initRegion(t.AS, reg.Base, reg.Size); err != nil {
					return NoTag, err
				}
				return reg.Tag, nil
			}
		}
	}
	r.ColdNews++

	base, err := t.Mmap(r.RegionSize, vm.PermRW)
	if err != nil {
		return NoTag, err
	}
	if err := initRegion(t.AS, base, r.RegionSize); err != nil {
		return NoTag, err
	}
	r.nextTag++
	tag := r.nextTag
	r.regions[tag] = &Region{
		Tag: tag, Base: base, Size: r.RegionSize, Owner: t.AS,
		segs: []Segment{{Base: base, Size: r.RegionSize}},
	}
	return tag, nil
}

// TagDelete retires a tag. Its segment joins the userland cache for reuse;
// the contents remain mapped (and will be scrubbed on reuse), mirroring the
// paper's implementation.
func (r *Registry) TagDelete(tag Tag) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.regions[tag]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	delete(r.regions, tag)
	if reg.NoHeap {
		return nil // boundary sections stay mapped; only the tag dies
	}
	// Trim a grown region back to its first segment and forget its
	// grants: the cache holds uniform single-segment regions, and a
	// reused tag starts a new grant lifetime. Grantees keep their
	// mappings of the old segments (as they keep the first segment's),
	// which will be scrubbed before the region is handed out again.
	reg.segMu.Lock()
	for _, seg := range reg.segs[1:] {
		reg.Owner.Unmap(seg.Base, seg.Size)
	}
	reg.segs = reg.segs[:1]
	reg.grants = nil
	reg.segMu.Unlock()
	if r.CacheEnabled {
		r.cache = append(r.cache, reg)
	} else {
		reg.Owner.Unmap(reg.Base, reg.Size)
	}
	return nil
}

// Grant maps every segment of tag into dst with permission perm, sharing
// the underlying frames, and records dst so segments mapped later (arena
// growth) are propagated to it. The registry lock is held across the
// lookup and the page-table walk, so grants serialize against TagNew and
// TagDelete: sthreads can be assembled concurrently while tags come and
// go, which is what lets a server handle connections in parallel.
func (r *Registry) Grant(dst *vm.AddressSpace, tag Tag, perm vm.Perm) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.regions[tag]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	if reg.NoHeap {
		return reg.Owner.ShareInto(dst, reg.Base, reg.Size, perm)
	}
	// segMu is held across the whole share-and-record so a concurrent
	// Grow can neither miss this grantee nor double-map a segment.
	reg.segMu.Lock()
	defer reg.segMu.Unlock()
	for _, seg := range reg.segs {
		if err := reg.Owner.ShareInto(dst, seg.Base, seg.Size, perm); err != nil {
			return err
		}
	}
	reg.recordGrantLocked(dst, perm)
	return nil
}

// recordGrantLocked remembers dst for growth propagation, pruning grant
// records whose address spaces have been released (per-connection worker
// sthreads die by the thousand; the list must not grow with them).
// Called with segMu held.
func (reg *Region) recordGrantLocked(dst *vm.AddressSpace, perm vm.Perm) {
	live := reg.grants[:0]
	found := false
	for _, g := range reg.grants {
		if g.dst.Released() {
			continue
		}
		if g.dst == dst {
			g.perm |= perm
			found = true
		}
		live = append(live, g)
	}
	reg.grants = live
	if !found {
		reg.grants = append(reg.grants, grant{dst: dst, perm: perm})
	}
}

// growLocked maps one more segment for reg — at least the registry's
// segment size, more when a single allocation needs it — seeds its
// allocator header, and shares it into every live grantee so existing
// compartments can reach blocks allocated from it. Called with reg.mu
// (the allocator lock) held; takes segMu itself.
func (r *Registry) growLocked(reg *Region, need int) (Segment, error) {
	segSize := r.RegionSize
	if want := need + headerSize + chunkHdr; want > segSize {
		segSize = (want + vm.PageSize - 1) &^ (vm.PageSize - 1)
	}
	if reg.TotalSize()+segSize > r.maxRegionBytes() {
		return Segment{}, fmt.Errorf("%w: region for tag %d at cap %d bytes",
			ErrNoMem, reg.Tag, r.maxRegionBytes())
	}
	base, err := reg.Owner.MapAnon(segSize, vm.PermRW)
	if err != nil {
		return Segment{}, err
	}
	if err := initRegion(reg.Owner, base, segSize); err != nil {
		return Segment{}, err
	}
	seg := Segment{Base: base, Size: segSize}
	// Count before taking segMu: Grant holds the registry lock while it
	// takes segMu, so taking the registry lock under segMu would invert
	// that order.
	r.mu.Lock()
	r.Grows++
	r.mu.Unlock()
	reg.segMu.Lock()
	defer reg.segMu.Unlock()
	live := reg.grants[:0]
	for _, g := range reg.grants {
		if g.dst.Released() {
			continue
		}
		if err := reg.Owner.ShareInto(g.dst, seg.Base, seg.Size, g.perm); err != nil {
			return Segment{}, err
		}
		live = append(live, g)
	}
	reg.grants = live
	reg.segs = append(reg.segs, seg)
	return seg, nil
}

// Lookup returns the region for tag.
func (r *Registry) Lookup(tag Tag) (*Region, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.regions[tag]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	return reg, nil
}

// TagOf returns the tag whose segment contains a, or NoTag.
func (r *Registry) TagOf(a vm.Addr) Tag {
	r.mu.Lock()
	defer r.mu.Unlock()
	for tag, reg := range r.regions {
		if reg.Contains(a) {
			return tag
		}
	}
	return NoTag
}

// Tags returns all live tags (for policy validation and tests).
func (r *Registry) Tags() []Tag {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Tag, 0, len(r.regions))
	for tag := range r.regions {
		out = append(out, tag)
	}
	return out
}

// CacheLen returns the number of retired segments awaiting reuse.
func (r *Registry) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// Smalloc allocates size bytes from the arena with the given tag, using
// the address space as (which must have read-write access to the arena).
// Segments are tried in order; when every segment is exhausted the arena
// grows by one segment, so ErrNoMem surfaces only at the registry's
// configured per-region cap rather than at the first segment's size.
func (r *Registry) Smalloc(as *vm.AddressSpace, tag Tag, size int) (vm.Addr, error) {
	reg, err := r.Lookup(tag)
	if err != nil {
		return 0, err
	}
	if reg.NoHeap {
		return 0, fmt.Errorf("tags: tag %d is a boundary-variable section, not an smalloc arena", tag)
	}
	r.mu.Lock()
	r.Smallocs++
	r.mu.Unlock()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	// Fast path: the first segment (immutable Base/Size, no snapshot
	// allocation) — the only segment for the overwhelming majority of
	// tags, and the per-connection hot path of the recycled servers.
	a, err := heapMalloc(as, reg.Base, size)
	if err == nil {
		return a, nil
	}
	if !errors.Is(err, ErrNoMem) {
		return 0, err
	}
	for _, seg := range reg.Segments()[1:] {
		a, err := heapMalloc(as, seg.Base, size)
		if err == nil {
			return a, nil
		}
		if !errors.Is(err, ErrNoMem) {
			return 0, err
		}
	}
	seg, err := r.growLocked(reg, size)
	if err != nil {
		return 0, err
	}
	return heapMalloc(as, seg.Base, size)
}

// GrowCount returns the number of arena-growth events so far, read under
// the registry lock (safe to poll while the application serves).
func (r *Registry) GrowCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Grows
}

// Sfree releases an smalloc'd block. The owning segment is located by
// address, as free(ptr) locates its arena.
func (r *Registry) Sfree(as *vm.AddressSpace, a vm.Addr) error {
	r.mu.Lock()
	var reg *Region
	var seg Segment
	for _, candidate := range r.regions {
		if s, ok := candidate.segmentOf(a); ok {
			reg, seg = candidate, s
			break
		}
	}
	r.Sfrees++
	r.mu.Unlock()
	if reg == nil {
		return fmt.Errorf("%w: %#x", ErrNotTagged, uint64(a))
	}
	if reg.NoHeap {
		return fmt.Errorf("%w: %#x is in a boundary-variable section", ErrBadFree, uint64(a))
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return heapFree(as, seg.Base, a)
}

// Adopt registers an externally allocated, page-aligned region (a
// boundary-variable section carved out of the data segment, §3.2) under a
// fresh tag so that it can be named in security policies. Adopted regions
// are not smalloc arenas.
func (r *Registry) Adopt(owner *vm.AddressSpace, base vm.Addr, size int) Tag {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTag++
	tag := r.nextTag
	r.regions[tag] = &Region{
		Tag: tag, Base: base, Size: size, Owner: owner, NoHeap: true,
		segs: []Segment{{Base: base, Size: size}},
	}
	return tag
}

// InitHeap seeds a raw region (not in the registry) with the allocator
// header so HeapAlloc/HeapFree can manage it. The sthread layer uses this
// for per-sthread private, untagged heaps.
func InitHeap(as *vm.AddressSpace, base vm.Addr, size int) error {
	return initRegion(as, base, size)
}

// HeapAlloc allocates from a heap seeded with InitHeap.
func HeapAlloc(as *vm.AddressSpace, base vm.Addr, size int) (vm.Addr, error) {
	return heapMalloc(as, base, size)
}

// HeapFree releases a HeapAlloc'd block.
func HeapFree(as *vm.AddressSpace, base vm.Addr, a vm.Addr) error {
	return heapFree(as, base, a)
}

// ---- the in-memory boundary-tag allocator ---------------------------------

func align16(n int) int { return (n + alignMask) &^ alignMask }

// binFor maps a chunk size to its bin index: exact 16-byte-spaced bins for
// chunks below 1 KiB, one large bin above.
func binFor(csize uint64) int {
	idx := int((csize - minChunk) / 16)
	if idx >= largeBin {
		return largeBin
	}
	return idx
}

func binAddr(base vm.Addr, idx int) vm.Addr { return base + hdrBins + vm.Addr(idx*8) }

// initRegion seeds the allocator header. After a scrub (all-zero pages)
// only three words need storing, which is what makes warm tag_new cheap.
func initRegion(as *vm.AddressSpace, base vm.Addr, size int) error {
	if err := as.Store64(base+hdrMagic, magicWord); err != nil {
		return err
	}
	if err := as.Store64(base+hdrTop, uint64(base)+headerSize); err != nil {
		return err
	}
	return as.Store64(base+hdrEnd, uint64(base)+uint64(size))
}

// checkMagic guards against smalloc on a non-initialised region.
func checkMagic(as *vm.AddressSpace, base vm.Addr) error {
	m, err := as.Load64(base + hdrMagic)
	if err != nil {
		return err
	}
	if m != magicWord {
		return fmt.Errorf("tags: corrupt or uninitialised segment at %#x", uint64(base))
	}
	return nil
}

func heapMalloc(as *vm.AddressSpace, base vm.Addr, size int) (vm.Addr, error) {
	if err := checkMagic(as, base); err != nil {
		return 0, err
	}
	if size <= 0 {
		size = 1
	}
	need := uint64(align16(size) + chunkHdr)
	if need < minChunk {
		need = minChunk
	}

	// Search bins from the first that could fit.
	for idx := binFor(need); idx < numBins; idx++ {
		head, err := as.Load64(binAddr(base, idx))
		if err != nil {
			return 0, err
		}
		// Within a bin, first fit (exact bins hold uniform sizes; the
		// large bin needs the scan).
		for cur := vm.Addr(head); cur != 0; {
			csize, err := as.Load64(cur)
			if err != nil {
				return 0, err
			}
			csize &= sizeMaskC
			if csize >= need {
				if err := unlinkChunk(as, base, cur, csize); err != nil {
					return 0, err
				}
				return takeChunk(as, base, cur, csize, need)
			}
			nxt, err := as.Load64(cur + chunkHdr)
			if err != nil {
				return 0, err
			}
			cur = vm.Addr(nxt)
		}
	}

	// Wilderness.
	top, err := as.Load64(base + hdrTop)
	if err != nil {
		return 0, err
	}
	end, err := as.Load64(base + hdrEnd)
	if err != nil {
		return 0, err
	}
	if top+need > end {
		return 0, ErrNoMem
	}
	if err := as.Store64(base+hdrTop, top+need); err != nil {
		return 0, err
	}
	c := vm.Addr(top)
	if err := as.Store64(c, need|inuseBit); err != nil {
		return 0, err
	}
	// prevSize of a fresh wilderness chunk: left neighbour is the chunk
	// that previously ended at top; preserve whatever is there (it was
	// set when that chunk was written). For the very first chunk it is 0.
	if err := as.Store64(c+8, 0); err != nil {
		return 0, err
	}
	return c + chunkHdr, nil
}

// takeChunk marks cur (of csize bytes) allocated, splitting off the tail
// when the remainder is large enough to be a chunk.
func takeChunk(as *vm.AddressSpace, base vm.Addr, cur vm.Addr, csize, need uint64) (vm.Addr, error) {
	if csize-need >= minChunk {
		rem := cur + vm.Addr(need)
		remSize := csize - need
		if err := as.Store64(rem, remSize); err != nil {
			return 0, err
		}
		if err := as.Store64(rem+8, need); err != nil {
			return 0, err
		}
		if err := setNextPrevSize(as, base, rem, remSize); err != nil {
			return 0, err
		}
		if err := linkChunk(as, base, rem, remSize); err != nil {
			return 0, err
		}
		csize = need
	}
	if err := as.Store64(cur, csize|inuseBit); err != nil {
		return 0, err
	}
	return cur + chunkHdr, nil
}

// setNextPrevSize updates the prevSize field of the chunk following c.
func setNextPrevSize(as *vm.AddressSpace, base vm.Addr, c vm.Addr, csize uint64) error {
	top, err := as.Load64(base + hdrTop)
	if err != nil {
		return err
	}
	next := c + vm.Addr(csize)
	if uint64(next) >= top {
		return nil
	}
	return as.Store64(next+8, csize)
}

func linkChunk(as *vm.AddressSpace, base vm.Addr, c vm.Addr, csize uint64) error {
	idx := binFor(csize)
	ba := binAddr(base, idx)
	head, err := as.Load64(ba)
	if err != nil {
		return err
	}
	// c.next = head; c.prev = 0; head.prev = c; bin = c
	if err := as.Store64(c+chunkHdr, head); err != nil {
		return err
	}
	if err := as.Store64(c+chunkHdr+8, 0); err != nil {
		return err
	}
	if head != 0 {
		if err := as.Store64(vm.Addr(head)+chunkHdr+8, uint64(c)); err != nil {
			return err
		}
	}
	return as.Store64(ba, uint64(c))
}

func unlinkChunk(as *vm.AddressSpace, base vm.Addr, c vm.Addr, csize uint64) error {
	next, err := as.Load64(c + chunkHdr)
	if err != nil {
		return err
	}
	prev, err := as.Load64(c + chunkHdr + 8)
	if err != nil {
		return err
	}
	if prev == 0 {
		if err := as.Store64(binAddr(base, binFor(csize)), next); err != nil {
			return err
		}
	} else {
		if err := as.Store64(vm.Addr(prev)+chunkHdr, next); err != nil {
			return err
		}
	}
	if next != 0 {
		if err := as.Store64(vm.Addr(next)+chunkHdr+8, prev); err != nil {
			return err
		}
	}
	return nil
}

func heapFree(as *vm.AddressSpace, base vm.Addr, payload vm.Addr) error {
	if err := checkMagic(as, base); err != nil {
		return err
	}
	c := payload - chunkHdr
	if c < base+headerSize {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(payload))
	}
	hdr, err := as.Load64(c)
	if err != nil {
		return err
	}
	if hdr&inuseBit == 0 {
		return fmt.Errorf("%w: %#x", ErrDoubleFree, uint64(payload))
	}
	csize := hdr & sizeMaskC
	// Clear the in-use bit on the original header immediately so that a
	// second free of the same payload is detected, whichever coalescing
	// path the chunk takes below (including merging into the wilderness,
	// where the header word would otherwise be left stale).
	if err := as.Store64(c, csize); err != nil {
		return err
	}
	top, err := as.Load64(base + hdrTop)
	if err != nil {
		return err
	}

	// Coalesce with the next chunk if it is free.
	next := c + vm.Addr(csize)
	if uint64(next) < top {
		nhdr, err := as.Load64(next)
		if err != nil {
			return err
		}
		if nhdr&inuseBit == 0 {
			nsize := nhdr & sizeMaskC
			if err := unlinkChunk(as, base, next, nsize); err != nil {
				return err
			}
			csize += nsize
		}
	}

	// Coalesce with the previous chunk if it is free.
	prevSize, err := as.Load64(c + 8)
	if err != nil {
		return err
	}
	if prevSize != 0 {
		prev := c - vm.Addr(prevSize)
		if prev >= base+headerSize {
			phdr, err := as.Load64(prev)
			if err != nil {
				return err
			}
			if phdr&inuseBit == 0 && phdr&sizeMaskC == prevSize {
				if err := unlinkChunk(as, base, prev, prevSize); err != nil {
					return err
				}
				c = prev
				csize += prevSize
			}
		}
	}

	// Merge into the wilderness when adjacent to it.
	if uint64(c)+csize >= top {
		return as.Store64(base+hdrTop, uint64(c))
	}

	if err := as.Store64(c, csize); err != nil {
		return err
	}
	if err := setNextPrevSize(as, base, c, csize); err != nil {
		return err
	}
	return linkChunk(as, base, c, csize)
}

// UsableSize returns the payload capacity of an allocated block.
func (r *Registry) UsableSize(as *vm.AddressSpace, payload vm.Addr) (int, error) {
	hdr, err := as.Load64(payload - chunkHdr)
	if err != nil {
		return 0, err
	}
	if hdr&inuseBit == 0 {
		return 0, ErrBadFree
	}
	return int(hdr&sizeMaskC) - chunkHdr, nil
}

// HeapTop returns the current wilderness pointer of a tag's segment, used
// by tests to verify full coalescing.
func (r *Registry) HeapTop(as *vm.AddressSpace, tag Tag) (vm.Addr, error) {
	reg, err := r.Lookup(tag)
	if err != nil {
		return 0, err
	}
	top, err := as.Load64(reg.Base + hdrTop)
	return vm.Addr(top), err
}

// HeapFloor returns the lowest allocatable address of a tag's segment.
func (r *Registry) HeapFloor(tag Tag) (vm.Addr, error) {
	reg, err := r.Lookup(tag)
	if err != nil {
		return 0, err
	}
	return reg.Base + headerSize, nil
}
