package tags

import (
	"errors"
	"testing"

	"wedge/internal/vm"
)

// TestArenaGrowsPastFirstSegment: the fixed-arena bottleneck the recycled
// servers hit — a single 64 KiB segment filling up — is gone: Smalloc
// maps further segments instead of returning ErrNoMem, every block stays
// reachable (writable, freeable, and attributed to the tag by TagOf),
// and freed blocks in grown segments are reused.
func TestArenaGrowsPastFirstSegment(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}

	// Fill well past several segments' worth.
	const blockSize = 1024
	blocks := 4 * DefaultRegionSize / blockSize
	addrs := make([]vm.Addr, 0, blocks)
	for i := 0; i < blocks; i++ {
		a, err := r.Smalloc(task.AS, tag, blockSize)
		if err != nil {
			t.Fatalf("Smalloc #%d: %v (arena should have grown)", i, err)
		}
		if err := task.AS.Store64(a, uint64(i)); err != nil {
			t.Fatalf("block %d not writable: %v", i, err)
		}
		addrs = append(addrs, a)
	}
	if r.Grows == 0 {
		t.Fatal("no segment growth recorded")
	}
	reg, err := r.Lookup(tag)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Segments()); n < 4 {
		t.Fatalf("segments = %d, want >= 4", n)
	}
	for i, a := range addrs {
		if got := r.TagOf(a); got != tag {
			t.Fatalf("TagOf(%#x) = %d, want %d", uint64(a), got, tag)
		}
		v, err := task.AS.Load64(a)
		if err != nil || v != uint64(i) {
			t.Fatalf("block %d = %d, %v", i, v, err)
		}
	}

	// Free everything; the next allocation must reuse a freed chunk in
	// some segment rather than growing again.
	for _, a := range addrs {
		if err := r.Sfree(task.AS, a); err != nil {
			t.Fatalf("Sfree(%#x): %v", uint64(a), err)
		}
	}
	grows := r.Grows
	if _, err := r.Smalloc(task.AS, tag, blockSize); err != nil {
		t.Fatalf("Smalloc after frees: %v", err)
	}
	if r.Grows != grows {
		t.Fatalf("allocation after frees grew the arena (%d -> %d grows)", grows, r.Grows)
	}
}

// TestArenaLargeAllocation: a request bigger than one segment maps a
// correspondingly larger segment rather than failing.
func TestArenaLargeAllocation(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	big := 3 * DefaultRegionSize / 2
	a, err := r.Smalloc(task.AS, tag, big)
	if err != nil {
		t.Fatalf("Smalloc(%d): %v", big, err)
	}
	buf := make([]byte, big)
	if err := task.AS.Write(a, buf); err != nil {
		t.Fatalf("large block not fully mapped: %v", err)
	}
	if err := r.Sfree(task.AS, a); err != nil {
		t.Fatal(err)
	}
}

// TestArenaCap: ErrNoMem surfaces only at the configured cap.
func TestArenaCap(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	r.MaxRegionSize = 2 * DefaultRegionSize
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	allocated := 0
	for i := 0; i < 1000; i++ {
		if _, lastErr = r.Smalloc(task.AS, tag, 1024); lastErr != nil {
			break
		}
		allocated++
	}
	if !errors.Is(lastErr, ErrNoMem) {
		t.Fatalf("expected ErrNoMem at cap, got %v after %d blocks", lastErr, allocated)
	}
	// More than one segment's worth must have fit before the cap.
	if allocated*1024 < DefaultRegionSize {
		t.Fatalf("only %d bytes allocated before cap; growth never happened", allocated*1024)
	}
	if allocated*1024 > r.MaxRegionSize {
		t.Fatalf("%d bytes allocated, beyond the %d cap", allocated*1024, r.MaxRegionSize)
	}
}

// TestArenaDeleteTrimsToOneSegment: a grown region returns to the cache
// as a single segment, and its reuse behaves like a fresh tag.
func TestArenaDeleteTrimsToOneSegment(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*DefaultRegionSize/1024; i++ {
		if _, err := r.Smalloc(task.AS, tag, 1024); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.TagDelete(tag); err != nil {
		t.Fatal(err)
	}
	if r.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", r.CacheLen())
	}
	reused, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reuses != 1 {
		t.Fatalf("reuses = %d, want 1", r.Reuses)
	}
	reg, err := r.Lookup(reused)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Segments()); n != 1 {
		t.Fatalf("reused region has %d segments, want 1", n)
	}
	if reg.TotalSize() != r.RegionSize {
		t.Fatalf("reused region size = %d, want %d", reg.TotalSize(), r.RegionSize)
	}
	if _, err := r.Smalloc(task.AS, reused, 1024); err != nil {
		t.Fatalf("Smalloc on reused region: %v", err)
	}
}

// TestArenaGrowthPropagatesToGrantees: an address space granted the tag
// before growth can read and write blocks allocated from segments mapped
// after the grant — the property the recycled servers' long-lived gates
// depend on.
func TestArenaGrowthPropagatesToGrantees(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	grantee := vm.NewAddressSpace()
	if err := r.Grant(grantee, tag, vm.PermRW); err != nil {
		t.Fatal(err)
	}

	// Exhaust the first segment so the next allocation grows.
	var a vm.Addr
	for i := 0; ; i++ {
		prevGrows := r.Grows
		a, err = r.Smalloc(task.AS, tag, 4096)
		if err != nil {
			t.Fatalf("Smalloc #%d: %v", i, err)
		}
		if r.Grows > prevGrows {
			break
		}
		if i > 100 {
			t.Fatal("arena never grew")
		}
	}

	// The grantee sees the grown segment: a write through the grantee is
	// visible to the owner (same frames, not a private copy).
	if err := grantee.Store64(a, 0xC0FFEE); err != nil {
		t.Fatalf("grantee cannot reach grown segment: %v", err)
	}
	v, err := task.AS.Load64(a)
	if err != nil || v != 0xC0FFEE {
		t.Fatalf("owner read %#x, %v; grown segment not shared", v, err)
	}

	// A released grantee is pruned rather than re-populated.
	dead := vm.NewAddressSpace()
	if err := r.Grant(dead, tag, vm.PermRW); err != nil {
		t.Fatal(err)
	}
	dead.Release()
	pages := dead.Pages()
	for i := 0; i < 2*DefaultRegionSize/4096; i++ {
		if _, err := r.Smalloc(task.AS, tag, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if dead.Pages() != pages {
		t.Fatalf("growth repopulated a released address space (%d -> %d pages)", pages, dead.Pages())
	}
}

// TestSfreeAtSegmentSeam: the first block carved from a freshly grown
// segment starts at the segment's seam — the lowest allocatable address
// after the per-segment allocator header. Sfree must locate the owning
// segment by address (not assume the first segment), release the block,
// and let the next same-size allocation reuse it without growing again.
func TestSfreeAtSegmentSeam(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate until growth: the allocation that triggers it is the first
	// block of the new segment.
	const blockSize = 1024
	var seamBlock vm.Addr
	for i := 0; ; i++ {
		prevGrows := r.Grows
		a, err := r.Smalloc(task.AS, tag, blockSize)
		if err != nil {
			t.Fatalf("Smalloc #%d: %v", i, err)
		}
		if r.Grows > prevGrows {
			seamBlock = a
			break
		}
		if i > 100 {
			t.Fatal("arena never grew")
		}
	}
	reg, err := r.Lookup(tag)
	if err != nil {
		t.Fatal(err)
	}
	segs := reg.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	seam := segs[1].Base + headerSize + chunkHdr
	if seamBlock != seam {
		t.Fatalf("first block of the grown segment at %#x, want the seam %#x",
			uint64(seamBlock), uint64(seam))
	}
	if got, ok := reg.segmentOf(seamBlock); !ok || got.Base != segs[1].Base {
		t.Fatalf("segmentOf(%#x) = %+v/%v, want the second segment", uint64(seamBlock), got, ok)
	}
	if err := r.Sfree(task.AS, seamBlock); err != nil {
		t.Fatalf("Sfree at the seam: %v", err)
	}
	if err := r.Sfree(task.AS, seamBlock); err == nil {
		t.Fatal("double free at the seam not detected")
	}
	grows := r.Grows
	a, err := r.Smalloc(task.AS, tag, blockSize)
	if err != nil {
		t.Fatalf("Smalloc after seam free: %v", err)
	}
	if a != seamBlock {
		t.Fatalf("freed seam block not reused: got %#x, want %#x", uint64(a), uint64(seamBlock))
	}
	if r.Grows != grows {
		t.Fatalf("reallocating the freed seam block grew the arena (%d -> %d)", grows, r.Grows)
	}
}

// TestArenaCapExactBoundary: growth stops exactly at the cap — the
// region's total mapped bytes equal MaxRegionSize, never one segment
// past it — and raising the cap live (SetMaxRegionSize) re-enables
// growth for the next allocation.
func TestArenaCapExactBoundary(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	r.SetMaxRegionSize(3 * DefaultRegionSize)
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 1000; i++ {
		if _, lastErr = r.Smalloc(task.AS, tag, 1024); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoMem) {
		t.Fatalf("expected ErrNoMem at cap, got %v", lastErr)
	}
	reg, err := r.Lookup(tag)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.TotalSize(); got != 3*DefaultRegionSize {
		t.Fatalf("total mapped bytes at cap = %d, want exactly %d", got, 3*DefaultRegionSize)
	}
	if r.Grows != 2 {
		t.Fatalf("grows = %d, want 2 (three segments total)", r.Grows)
	}

	// Raising the cap re-enables growth: the cap is re-read under the
	// registry lock on every growth attempt, not latched at TagNew.
	r.SetMaxRegionSize(4 * DefaultRegionSize)
	if _, err := r.Smalloc(task.AS, tag, 1024); err != nil {
		t.Fatalf("Smalloc after raising the cap: %v", err)
	}
	if r.Grows != 3 {
		t.Fatalf("grows after raised cap = %d, want 3", r.Grows)
	}
}

// TestArenaCapBelowOneSegment: a cap smaller than the segment size is
// raised to one segment (the region always keeps its first segment), so
// the region behaves exactly like a fixed arena: no growth, ErrNoMem at
// first-segment exhaustion.
func TestArenaCapBelowOneSegment(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	r.SetMaxRegionSize(10)
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 1000; i++ {
		if _, lastErr = r.Smalloc(task.AS, tag, 1024); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoMem) {
		t.Fatalf("expected ErrNoMem, got %v", lastErr)
	}
	if r.Grows != 0 {
		t.Fatalf("grows = %d, want 0 (cap below one segment must mean a fixed arena)", r.Grows)
	}
	reg, err := r.Lookup(tag)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.TotalSize(); got != DefaultRegionSize {
		t.Fatalf("total = %d, want one segment (%d)", got, DefaultRegionSize)
	}
}

// TestTagDeleteTrimUnmapsGrownSegments: deleting a tag that grew to
// several segments unmaps every grown segment from the owner (only the
// cached first segment stays mapped) and drops the grant records — a
// live grantee granted before the delete is not repopulated when the
// reused tag grows again.
func TestTagDeleteTrimUnmapsGrownSegments(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	grantee := vm.NewAddressSpace()
	if err := r.Grant(grantee, tag, vm.PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*DefaultRegionSize/1024; i++ {
		if _, err := r.Smalloc(task.AS, tag, 1024); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := r.Lookup(tag)
	if err != nil {
		t.Fatal(err)
	}
	grownBytes := reg.TotalSize() - DefaultRegionSize
	if grownBytes <= 0 {
		t.Fatal("arena never grew; the trim has nothing to prove")
	}
	ownerPages := task.AS.Pages()
	if err := r.TagDelete(tag); err != nil {
		t.Fatal(err)
	}
	if got, want := task.AS.Pages(), ownerPages-grownBytes/vm.PageSize; got != want {
		t.Fatalf("owner pages after delete = %d, want %d (grown segments unmapped)", got, want)
	}

	// The reused region starts a new grant lifetime: growth after reuse
	// must not repopulate the old grantee.
	reused, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	granteePages := grantee.Pages()
	for i := 0; i < 2*DefaultRegionSize/1024; i++ {
		if _, err := r.Smalloc(task.AS, reused, 1024); err != nil {
			t.Fatal(err)
		}
	}
	if r.Grows < 3 {
		t.Fatalf("grows = %d, want the reused tag to have grown", r.Grows)
	}
	if got := grantee.Pages(); got != granteePages {
		t.Fatalf("growth after reuse repopulated a stale grantee (%d -> %d pages)", granteePages, got)
	}
}

// TestArenaCapRoundsUpToSegments: an intermediate cap (not a multiple of
// the segment size) still permits the growth it implies, per the
// documented rounding, instead of silently behaving like a fixed arena.
func TestArenaCapRoundsUpToSegments(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	r.MaxRegionSize = DefaultRegionSize + DefaultRegionSize/2 // 96 KiB -> 2 segments
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatal(err)
	}
	allocated := 0
	for i := 0; i < 1000; i++ {
		if _, err := r.Smalloc(task.AS, tag, 1024); err != nil {
			break
		}
		allocated++
	}
	if r.Grows != 1 {
		t.Fatalf("grows = %d, want 1 (the cap rounds up to two segments)", r.Grows)
	}
	if allocated*1024 < DefaultRegionSize {
		t.Fatalf("only %d KiB allocated; rounding denied the implied growth", allocated)
	}
}
