package tags

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wedge/internal/kernel"
	"wedge/internal/vm"
)

func newTask(t *testing.T) *kernel.Task {
	t.Helper()
	k := kernel.New()
	return k.NewInitTask()
}

func TestTagNewAndSmalloc(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew: %v", err)
	}
	if tag == NoTag {
		t.Fatal("TagNew returned NoTag")
	}
	a, err := r.Smalloc(task.AS, tag, 100)
	if err != nil {
		t.Fatalf("Smalloc: %v", err)
	}
	reg, err := r.Lookup(tag)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !reg.Contains(a) {
		t.Fatalf("allocation %#x outside segment [%#x,%#x)", uint64(a), uint64(reg.Base), uint64(reg.End()))
	}
	// The allocation must be writable end to end.
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := task.AS.Write(a, buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, 100)
	if err := task.AS.Read(a, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, got[i], byte(i))
		}
	}
}

func TestSmallocUnknownTag(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	if _, err := r.Smalloc(task.AS, Tag(42), 8); err == nil {
		t.Fatal("Smalloc with unknown tag succeeded")
	}
}

func TestTagDeleteThenLookupFails(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew: %v", err)
	}
	if err := r.TagDelete(tag); err != nil {
		t.Fatalf("TagDelete: %v", err)
	}
	if _, err := r.Lookup(tag); err == nil {
		t.Fatal("Lookup after delete succeeded")
	}
	if err := r.TagDelete(tag); err == nil {
		t.Fatal("double TagDelete succeeded")
	}
}

func TestTagReuseHitsCache(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew: %v", err)
	}
	reg1, _ := r.Lookup(tag)
	if err := r.TagDelete(tag); err != nil {
		t.Fatalf("TagDelete: %v", err)
	}
	if r.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", r.CacheLen())
	}
	tag2, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew(reuse): %v", err)
	}
	reg2, _ := r.Lookup(tag2)
	if reg1.Base != reg2.Base {
		t.Fatalf("reuse allocated a new segment: %#x vs %#x", uint64(reg1.Base), uint64(reg2.Base))
	}
	if r.Reuses != 1 {
		t.Fatalf("Reuses = %d, want 1", r.Reuses)
	}
	if tag2 == tag {
		t.Fatal("reused segment kept its old tag; tags must be fresh")
	}
}

// TestTagReuseScrubs is the secrecy property of §4.1: no byte written under
// the previous tag's lifetime may survive into the reused segment.
func TestTagReuseScrubs(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew: %v", err)
	}
	a, err := r.Smalloc(task.AS, tag, 4096)
	if err != nil {
		t.Fatalf("Smalloc: %v", err)
	}
	secret := make([]byte, 4096)
	for i := range secret {
		secret[i] = 0xAA
	}
	if err := task.AS.Write(a, secret); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := r.TagDelete(tag); err != nil {
		t.Fatalf("TagDelete: %v", err)
	}
	tag2, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew: %v", err)
	}
	reg, _ := r.Lookup(tag2)
	// Scan the whole reusable area beyond the allocator header for 0xAA.
	floor, _ := r.HeapFloor(tag2)
	buf := make([]byte, reg.Size-int(floor-reg.Base))
	if err := task.AS.Read(floor, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range buf {
		if b == 0xAA {
			t.Fatalf("secret byte survived tag reuse at offset %d", i)
		}
	}
}

func TestCacheDisabledUnmaps(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	r.CacheEnabled = false
	tag, err := r.TagNew(task)
	if err != nil {
		t.Fatalf("TagNew: %v", err)
	}
	reg, _ := r.Lookup(tag)
	if err := r.TagDelete(tag); err != nil {
		t.Fatalf("TagDelete: %v", err)
	}
	if r.CacheLen() != 0 {
		t.Fatalf("cache len = %d, want 0 with cache disabled", r.CacheLen())
	}
	if _, ok := task.AS.Lookup(reg.Base); ok {
		t.Fatal("segment still mapped after uncached delete")
	}
}

func TestSfreeAndReuseMemory(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, _ := r.TagNew(task)
	a1, err := r.Smalloc(task.AS, tag, 64)
	if err != nil {
		t.Fatalf("Smalloc: %v", err)
	}
	if err := r.Sfree(task.AS, a1); err != nil {
		t.Fatalf("Sfree: %v", err)
	}
	a2, err := r.Smalloc(task.AS, tag, 64)
	if err != nil {
		t.Fatalf("Smalloc 2: %v", err)
	}
	if a1 != a2 {
		t.Fatalf("free block not reused: %#x then %#x", uint64(a1), uint64(a2))
	}
}

func TestSfreeDoubleFree(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, _ := r.TagNew(task)
	a, _ := r.Smalloc(task.AS, tag, 64)
	if err := r.Sfree(task.AS, a); err != nil {
		t.Fatalf("Sfree: %v", err)
	}
	if err := r.Sfree(task.AS, a); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestSfreeForeignAddress(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	if err := r.Sfree(task.AS, vm.Addr(0xdead000)); err == nil {
		t.Fatal("Sfree of untagged address succeeded")
	}
}

func TestSegmentExhaustion(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	r.RegionSize = 2 * vm.PageSize
	tag, _ := r.TagNew(task)
	var allocs []vm.Addr
	for {
		a, err := r.Smalloc(task.AS, tag, 256)
		if err != nil {
			break
		}
		allocs = append(allocs, a)
	}
	if len(allocs) == 0 {
		t.Fatal("no allocations succeeded before exhaustion")
	}
	// Free everything; the wilderness must recover fully.
	for _, a := range allocs {
		if err := r.Sfree(task.AS, a); err != nil {
			t.Fatalf("Sfree(%#x): %v", uint64(a), err)
		}
	}
	top, err := r.HeapTop(task.AS, tag)
	if err != nil {
		t.Fatalf("HeapTop: %v", err)
	}
	floor, _ := r.HeapFloor(tag)
	if top != floor {
		t.Fatalf("heap did not fully coalesce: top %#x, floor %#x", uint64(top), uint64(floor))
	}
}

func TestCoalescingMiddleFree(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, _ := r.TagNew(task)
	a, _ := r.Smalloc(task.AS, tag, 64)
	b, _ := r.Smalloc(task.AS, tag, 64)
	c, _ := r.Smalloc(task.AS, tag, 64)
	// Free a and c, then b: all three must merge back (b coalesces both ways
	// and the whole run rejoins the wilderness).
	for _, p := range []vm.Addr{a, c, b} {
		if err := r.Sfree(task.AS, p); err != nil {
			t.Fatalf("Sfree(%#x): %v", uint64(p), err)
		}
	}
	top, _ := r.HeapTop(task.AS, tag)
	floor, _ := r.HeapFloor(tag)
	if top != floor {
		t.Fatalf("top %#x != floor %#x after freeing all", uint64(top), uint64(floor))
	}
}

func TestUsableSize(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, _ := r.TagNew(task)
	a, _ := r.Smalloc(task.AS, tag, 100)
	n, err := r.UsableSize(task.AS, a)
	if err != nil {
		t.Fatalf("UsableSize: %v", err)
	}
	if n < 100 {
		t.Fatalf("UsableSize = %d, want >= 100", n)
	}
}

func TestTagOf(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	t1, _ := r.TagNew(task)
	t2, _ := r.TagNew(task)
	a1, _ := r.Smalloc(task.AS, t1, 32)
	a2, _ := r.Smalloc(task.AS, t2, 32)
	if got := r.TagOf(a1); got != t1 {
		t.Fatalf("TagOf(a1) = %d, want %d", got, t1)
	}
	if got := r.TagOf(a2); got != t2 {
		t.Fatalf("TagOf(a2) = %d, want %d", got, t2)
	}
	if got := r.TagOf(vm.Addr(1)); got != NoTag {
		t.Fatalf("TagOf(untagged) = %d, want NoTag", got)
	}
}

func TestTagsListing(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	t1, _ := r.TagNew(task)
	t2, _ := r.TagNew(task)
	got := r.Tags()
	if len(got) != 2 {
		t.Fatalf("Tags() len = %d, want 2", len(got))
	}
	seen := map[Tag]bool{}
	for _, tg := range got {
		seen[tg] = true
	}
	if !seen[t1] || !seen[t2] {
		t.Fatalf("Tags() = %v missing %d or %d", got, t1, t2)
	}
}

// Property: allocations never overlap, are 16-byte aligned, and stay inside
// the segment, across an arbitrary interleaving of mallocs and frees.
func TestPropertyAllocatorNonOverlap(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, _ := r.TagNew(task)

	type block struct {
		addr vm.Addr
		size int
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var live []block
		for op := 0; op < 200; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				if err := r.Sfree(task.AS, live[i].addr); err != nil {
					t.Logf("seed %d: Sfree: %v", seed, err)
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := 1 + rng.Intn(900)
			a, err := r.Smalloc(task.AS, tag, size)
			if err != nil {
				continue // exhaustion is fine
			}
			if uint64(a)%16 != 0 {
				t.Logf("seed %d: unaligned alloc %#x", seed, uint64(a))
				return false
			}
			reg, _ := r.Lookup(tag)
			if a < reg.Base || a+vm.Addr(size) > reg.End() {
				t.Logf("seed %d: alloc escapes segment", seed)
				return false
			}
			for _, b := range live {
				if a < b.addr+vm.Addr(b.size) && b.addr < a+vm.Addr(size) {
					t.Logf("seed %d: overlap %#x+%d with %#x+%d", seed, uint64(a), size, uint64(b.addr), b.size)
					return false
				}
			}
			live = append(live, block{a, size})
		}
		for _, b := range live {
			if err := r.Sfree(task.AS, b.addr); err != nil {
				t.Logf("seed %d: final Sfree: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: data written to one allocation is never clobbered by activity in
// other allocations of the same segment.
func TestPropertyAllocatorIntegrity(t *testing.T) {
	task := newTask(t)
	r := NewRegistry()
	tag, _ := r.TagNew(task)

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type block struct {
			addr vm.Addr
			data []byte
		}
		var live []block
		for op := 0; op < 120; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				r.Sfree(task.AS, live[i].addr)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := 1 + rng.Intn(300)
			a, err := r.Smalloc(task.AS, tag, size)
			if err != nil {
				continue
			}
			data := make([]byte, size)
			rng.Read(data)
			if err := task.AS.Write(a, data); err != nil {
				return false
			}
			live = append(live, block{a, data})
		}
		for _, b := range live {
			got := make([]byte, len(b.data))
			if err := task.AS.Read(b.addr, got); err != nil {
				return false
			}
			for i := range got {
				if got[i] != b.data[i] {
					t.Logf("seed %d: corruption at %#x+%d", seed, uint64(b.addr), i)
					return false
				}
			}
			r.Sfree(task.AS, b.addr)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSmalloc(b *testing.B) {
	k := kernel.New()
	task := k.NewInitTask()
	r := NewRegistry()
	r.RegionSize = 1 << 20
	tag, _ := r.TagNew(task)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := r.Smalloc(task.AS, tag, 64)
		if err != nil {
			b.Fatal(err)
		}
		r.Sfree(task.AS, a)
	}
}

func BenchmarkTagNewWarm(b *testing.B) {
	k := kernel.New()
	task := k.NewInitTask()
	r := NewRegistry()
	// Prime the cache.
	tag, _ := r.TagNew(task)
	r.TagDelete(tag)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg, err := r.TagNew(task)
		if err != nil {
			b.Fatal(err)
		}
		r.TagDelete(tg)
	}
}

func BenchmarkTagNewCold(b *testing.B) {
	k := kernel.New()
	task := k.NewInitTask()
	r := NewRegistry()
	r.CacheEnabled = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg, err := r.TagNew(task)
		if err != nil {
			b.Fatal(err)
		}
		r.TagDelete(tg)
	}
}
