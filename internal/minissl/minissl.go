// Package minissl implements the SSL-shaped protocol substrate for the
// Apache/OpenSSL reproduction (§5.1). It follows the structure of an
// SSLv3/TLS RSA handshake exactly where the paper's partitioning depends
// on that structure:
//
//   - the session key derives from three inputs that traverse the network:
//     a server random, a client random (both cleartext), and a client
//     premaster secret encrypted with the server's RSA public key;
//   - the handshake ends with Finished messages in both directions, each
//     a MAC over a running transcript hash, encrypted under the session
//     keys — so verifying or producing a Finished is the only handshake
//     step that needs the session key;
//   - application data flows over an encrypted-and-MACed record layer;
//   - a session cache allows abbreviated handshakes that skip the RSA
//     operation (session resumption).
//
// The package is deliberately composable: each handshake step is a free
// function over explicit state, so the partitioned servers in
// internal/httpd can place each step in a different compartment (worker
// sthread, setup_session_key callgate, receive_finished / send_finished
// callgates, SSL_read / SSL_write callgates) without this package knowing
// about Wedge at all. The monolithic baseline server and the test client
// use the same functions.
//
// This is an offline, stdlib-only protocol for a simulated testbed — not
// transport security for real networks.
package minissl

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// Protocol constants.
const (
	// RandomLen is the length of the client and server randoms.
	RandomLen = 32
	// PremasterLen is the length of the client's premaster secret.
	PremasterLen = 48
	// MasterLen is the length of the derived master secret.
	MasterLen = 48
	// SessionIDLen is the length of server-assigned session ids.
	SessionIDLen = 16
	// KeyLen is the AES-128 key length used by the record layer.
	KeyLen = 16
	// MACLen is the record MAC length (truncated HMAC-SHA256).
	MACLen = 32
	// MaxRecord is the maximum record payload.
	MaxRecord = 1 << 14
)

// Handshake message types.
const (
	MsgClientHello       byte = 1
	MsgServerHello       byte = 2
	MsgCertificate       byte = 3
	MsgClientKeyExchange byte = 4
	MsgFinished          byte = 5
	MsgAppData           byte = 6
	MsgAlert             byte = 7
)

// Errors.
var (
	ErrBadMAC       = errors.New("minissl: record MAC verification failed")
	ErrBadFinished  = errors.New("minissl: finished verification failed")
	ErrBadMessage   = errors.New("minissl: malformed handshake message")
	ErrRecordTooBig = errors.New("minissl: oversized record")
	ErrAlert        = errors.New("minissl: peer sent alert")
)

// ---- message framing ----------------------------------------------------------

// WriteMsg frames one protocol message: type byte, u24 length, payload.
func WriteMsg(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > 1<<24-1 {
		return ErrRecordTooBig
	}
	hdr := []byte{typ, byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMsg reads one framed message.
func ReadMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > MaxRecord+MACLen+64 {
		return 0, nil, ErrRecordTooBig
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ExpectMsg reads a message and requires the given type. An alert from the
// peer surfaces as ErrAlert.
func ExpectMsg(r io.Reader, typ byte) ([]byte, error) {
	got, payload, err := ReadMsg(r)
	if err != nil {
		return nil, err
	}
	if got == MsgAlert {
		return nil, fmt.Errorf("%w: %q", ErrAlert, payload)
	}
	if got != typ {
		return nil, fmt.Errorf("%w: got type %d, want %d", ErrBadMessage, got, typ)
	}
	return payload, nil
}

// SendAlert notifies the peer of a fatal handshake failure.
func SendAlert(w io.Writer, reason string) {
	WriteMsg(w, MsgAlert, []byte(reason))
}

// ---- key material ---------------------------------------------------------------

// NewRandom fills a fresh handshake random.
func NewRandom(r io.Reader) ([RandomLen]byte, error) {
	var out [RandomLen]byte
	_, err := io.ReadFull(r, out[:])
	return out, err
}

// NewPremaster generates the client's premaster secret.
func NewPremaster(r io.Reader) ([PremasterLen]byte, error) {
	var out [PremasterLen]byte
	_, err := io.ReadFull(r, out[:])
	return out, err
}

// DeriveMaster computes the master secret from the premaster and the two
// randoms. Because it is a cryptographic hash over three inputs, one of
// which (the server random) is generated inside a privileged compartment,
// an attacker who controls the unprivileged handshake code "cannot
// usefully influence the generated session key" (§5.1.1).
func DeriveMaster(premaster [PremasterLen]byte, clientRandom, serverRandom [RandomLen]byte) [MasterLen]byte {
	h := hmac.New(sha256.New, premaster[:])
	h.Write([]byte("master secret"))
	h.Write(clientRandom[:])
	h.Write(serverRandom[:])
	a := h.Sum(nil)
	h.Reset()
	h.Write(a)
	h.Write([]byte("expand"))
	b := h.Sum(nil)
	var out [MasterLen]byte
	copy(out[:32], a)
	copy(out[32:], b)
	return out
}

// Keys is one direction-pair of record-layer keys derived from the master
// secret: the session key of §5.1, including the MAC keys.
type Keys struct {
	ClientWriteKey [KeyLen]byte
	ServerWriteKey [KeyLen]byte
	ClientMACKey   [32]byte
	ServerMACKey   [32]byte
}

// KeyBlock expands the master secret into record-layer keys.
func KeyBlock(master [MasterLen]byte, clientRandom, serverRandom [RandomLen]byte) Keys {
	h := hmac.New(sha256.New, master[:])
	h.Write([]byte("key expansion"))
	h.Write(serverRandom[:])
	h.Write(clientRandom[:])
	block := h.Sum(nil) // 32 bytes
	h.Reset()
	h.Write(block)
	block = append(block, h.Sum(nil)...) // 64
	h.Reset()
	h.Write(block[32:])
	block = append(block, h.Sum(nil)...) // 96

	var k Keys
	copy(k.ClientWriteKey[:], block[0:16])
	copy(k.ServerWriteKey[:], block[16:32])
	copy(k.ClientMACKey[:], block[32:64])
	copy(k.ServerMACKey[:], block[64:96])
	return k
}

// Marshal serializes the key block (for placement into tagged memory).
func (k *Keys) Marshal() []byte {
	out := make([]byte, 0, 96)
	out = append(out, k.ClientWriteKey[:]...)
	out = append(out, k.ServerWriteKey[:]...)
	out = append(out, k.ClientMACKey[:]...)
	out = append(out, k.ServerMACKey[:]...)
	return out
}

// UnmarshalKeys parses a serialized key block.
func UnmarshalKeys(b []byte) (Keys, error) {
	var k Keys
	if len(b) != 96 {
		return k, fmt.Errorf("%w: key block length %d", ErrBadMessage, len(b))
	}
	copy(k.ClientWriteKey[:], b[0:16])
	copy(k.ServerWriteKey[:], b[16:32])
	copy(k.ClientMACKey[:], b[32:64])
	copy(k.ServerMACKey[:], b[64:96])
	return k, nil
}

// ---- RSA key exchange -------------------------------------------------------------

// GenerateServerKey creates the server's long-lived RSA key pair. 1024-bit
// keys match the paper's era and keep the simulated handshake cost in
// proportion.
func GenerateServerKey() (*rsa.PrivateKey, error) {
	return rsa.GenerateKey(rand.Reader, 1024)
}

// EncryptPremaster seals the premaster under the server's public key
// (ClientKeyExchange body).
func EncryptPremaster(pub *rsa.PublicKey, premaster [PremasterLen]byte) ([]byte, error) {
	return rsa.EncryptPKCS1v15(rand.Reader, pub, premaster[:])
}

// DecryptPremaster opens the ClientKeyExchange body with the private key.
// In the partitioned servers only the setup_session_key callgate may run
// this function, because only it can read the private-key tag.
func DecryptPremaster(priv *rsa.PrivateKey, ciphertext []byte) ([PremasterLen]byte, error) {
	var out [PremasterLen]byte
	plain, err := rsa.DecryptPKCS1v15(nil, priv, ciphertext)
	if err != nil {
		return out, err
	}
	if len(plain) != PremasterLen {
		return out, fmt.Errorf("%w: premaster length %d", ErrBadMessage, len(plain))
	}
	copy(out[:], plain)
	return out, nil
}

// MarshalPublicKey serializes an RSA public key for the Certificate
// message.
func MarshalPublicKey(pub *rsa.PublicKey) []byte {
	n := pub.N.Bytes()
	out := make([]byte, 4+4+len(n))
	binary.BigEndian.PutUint32(out[0:], uint32(pub.E))
	binary.BigEndian.PutUint32(out[4:], uint32(len(n)))
	copy(out[8:], n)
	return out
}

// UnmarshalPublicKey parses a Certificate body.
func UnmarshalPublicKey(b []byte) (*rsa.PublicKey, error) {
	if len(b) < 8 {
		return nil, ErrBadMessage
	}
	e := binary.BigEndian.Uint32(b[0:])
	n := binary.BigEndian.Uint32(b[4:])
	if int(n) != len(b)-8 {
		return nil, ErrBadMessage
	}
	pub := &rsa.PublicKey{E: int(e)}
	pub.N = new(big.Int).SetBytes(b[8:])
	return pub, nil
}

// ---- transcript and Finished --------------------------------------------------------

// Transcript accumulates the hash over all handshake messages exchanged so
// far; each Finished message is a MAC over this hash (§5.1.2).
type Transcript struct {
	h  [32]byte
	ok bool
}

// Add folds one handshake message into the transcript.
func (t *Transcript) Add(typ byte, payload []byte) {
	h := sha256.New()
	if t.ok {
		h.Write(t.h[:])
	}
	h.Write([]byte{typ})
	h.Write(payload)
	copy(t.h[:], h.Sum(nil))
	t.ok = true
}

// Sum returns the current transcript hash.
func (t *Transcript) Sum() [32]byte { return t.h }

// ResumeTranscript builds a transcript positioned at a known hash. The
// receive_finished callgate uses it: the untrusted handshake compartment
// supplies the hash of all past messages, and the gate folds in the
// verified client Finished cleartext to derive the server Finished payload
// (§5.1.2) — the hash function's non-invertibility is what stops an
// attacker from choosing what send_finished will encrypt.
func ResumeTranscript(h [32]byte) Transcript { return Transcript{h: h, ok: true} }

// FinishedPayload computes the cleartext body of a Finished message: a MAC
// over the transcript hash under the master secret, labelled by sender.
func FinishedPayload(master [MasterLen]byte, transcript [32]byte, sender string) [32]byte {
	h := hmac.New(sha256.New, master[:])
	h.Write([]byte(sender))
	h.Write(transcript[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ---- record layer --------------------------------------------------------------------

// Side selects which key half a record processor uses for writing.
type Side int

const (
	// ClientSide writes with the client keys.
	ClientSide Side = iota
	// ServerSide writes with the server keys.
	ServerSide
)

// RecordCoder seals and opens records for one side of a connection. Not
// safe for concurrent use; each compartment holding one builds it from the
// serialized key block it was granted.
type RecordCoder struct {
	keys     Keys
	side     Side
	writeSeq uint64
	readSeq  uint64
}

// NewRecordCoder builds a coder for the given side.
func NewRecordCoder(keys Keys, side Side) *RecordCoder {
	return &RecordCoder{keys: keys, side: side}
}

// SetSeqs positions the coder at explicit sequence numbers. Compartments
// that persist record state in tagged memory (the partitioned servers)
// rebuild their coder from stored sequences on each callgate invocation.
func (rc *RecordCoder) SetSeqs(readSeq, writeSeq uint64) {
	rc.readSeq = readSeq
	rc.writeSeq = writeSeq
}

// ReadSeq returns the next expected inbound sequence number.
func (rc *RecordCoder) ReadSeq() uint64 { return rc.readSeq }

// WriteSeq returns the next outbound sequence number.
func (rc *RecordCoder) WriteSeq() uint64 { return rc.writeSeq }

func (rc *RecordCoder) writeKeys() ([KeyLen]byte, [32]byte) {
	if rc.side == ClientSide {
		return rc.keys.ClientWriteKey, rc.keys.ClientMACKey
	}
	return rc.keys.ServerWriteKey, rc.keys.ServerMACKey
}

func (rc *RecordCoder) readKeys() ([KeyLen]byte, [32]byte) {
	if rc.side == ClientSide {
		return rc.keys.ServerWriteKey, rc.keys.ServerMACKey
	}
	return rc.keys.ClientWriteKey, rc.keys.ClientMACKey
}

// ctr builds the AES-CTR stream for a sequence number: the IV is the
// big-endian sequence number in the counter block's top half.
func ctr(key [KeyLen]byte, seq uint64) (cipher.Stream, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], seq)
	return cipher.NewCTR(block, iv[:]), nil
}

func recordMAC(macKey [32]byte, seq uint64, typ byte, ciphertext []byte) [MACLen]byte {
	h := hmac.New(sha256.New, macKey[:])
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	h.Write(s[:])
	h.Write([]byte{typ})
	h.Write(ciphertext)
	var out [MACLen]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Seal encrypts and MACs one record payload of the given type, returning
// the wire body (ciphertext || MAC) and advancing the write sequence.
func (rc *RecordCoder) Seal(typ byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxRecord {
		return nil, ErrRecordTooBig
	}
	key, macKey := rc.writeKeys()
	stream, err := ctr(key, rc.writeSeq)
	if err != nil {
		return nil, err
	}
	ct := make([]byte, len(payload))
	stream.XORKeyStream(ct, payload)
	mac := recordMAC(macKey, rc.writeSeq, typ, ct)
	rc.writeSeq++
	return append(ct, mac[:]...), nil
}

// Open verifies and decrypts one record body, advancing the read sequence.
// A MAC failure leaves the sequence unchanged, so injected garbage does
// not desynchronize an honest peer (§5.1.2: "data injected by the attacker
// will be rejected ... because the MAC will fail").
func (rc *RecordCoder) Open(typ byte, body []byte) ([]byte, error) {
	if len(body) < MACLen {
		return nil, ErrBadMessage
	}
	ct, mac := body[:len(body)-MACLen], body[len(body)-MACLen:]
	key, macKey := rc.readKeys()
	want := recordMAC(macKey, rc.readSeq, typ, ct)
	if !hmac.Equal(mac, want[:]) {
		return nil, ErrBadMAC
	}
	stream, err := ctr(key, rc.readSeq)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ct))
	stream.XORKeyStream(out, ct)
	rc.readSeq++
	return out, nil
}

// ---- session cache ----------------------------------------------------------------------

// SessionCache stores master secrets by session id for abbreviated
// handshakes (§5.1: "our implementation fully supports SSL session
// caching").
type SessionCache struct {
	mu sync.Mutex
	m  map[string][MasterLen]byte

	// Hits and Misses count lookups, for the Table 2 cached/uncached
	// workloads.
	Hits   uint64
	Misses uint64
}

// NewSessionCache returns an empty cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{m: make(map[string][MasterLen]byte)}
}

// Put stores a master secret under a session id.
func (c *SessionCache) Put(id []byte, master [MasterLen]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[string(id)] = master
}

// Get looks a session up.
func (c *SessionCache) Get(id []byte) ([MasterLen]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	master, ok := c.m[string(id)]
	if ok {
		c.Hits++
	} else {
		c.Misses++
	}
	return master, ok
}

// Len returns the number of cached sessions.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// NewSessionID allocates a fresh session id.
func NewSessionID(r io.Reader) ([]byte, error) {
	id := make([]byte, SessionIDLen)
	_, err := io.ReadFull(r, id)
	return id, err
}
