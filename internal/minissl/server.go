// The monolithic server-side handshake: every step in one trust domain,
// exactly like unpartitioned Apache/OpenSSL. The partitioned servers in
// internal/httpd do NOT use this function — they re-compose the same
// primitive steps across compartments — but the baseline and the unit
// tests do.

package minissl

import (
	"crypto/rand"
	"crypto/rsa"
	"io"
)

// ServerConn is an established server-side SSL connection.
type ServerConn struct {
	conn io.ReadWriter
	rc   *RecordCoder
	// Master and Keys retained for test assertions (this is the
	// monolithic server: everything is in one trust domain anyway).
	Master  [MasterLen]byte
	Keys    Keys
	Resumed bool
	// Ephemeral reports whether the premaster travelled under a
	// per-connection key.
	Ephemeral bool
}

// ServerOpts selects handshake variants.
type ServerOpts struct {
	// Ephemeral enables per-connection RSA keys (forward secrecy, at the
	// per-connection key-generation cost §5.1.1 cites). Resumed
	// handshakes are unaffected: they perform no key exchange at all.
	Ephemeral bool
}

// ServerHandshake runs the complete server side monolithically: private
// key, premaster, master secret and session keys all live in the one
// address space, which is precisely the exposure Wedge removes.
func ServerHandshake(conn io.ReadWriter, priv *rsa.PrivateKey, cache *SessionCache) (*ServerConn, error) {
	return ServerHandshakeOpts(conn, priv, cache, ServerOpts{})
}

// ServerHandshakeOpts is ServerHandshake with variant selection.
func ServerHandshakeOpts(conn io.ReadWriter, priv *rsa.PrivateKey, cache *SessionCache, opts ServerOpts) (*ServerConn, error) {
	var transcript Transcript

	chBody, err := ExpectMsg(conn, MsgClientHello)
	if err != nil {
		return nil, err
	}
	transcript.Add(MsgClientHello, chBody)
	clientRandom, offeredID, err := ParseClientHello(chBody)
	if err != nil {
		return nil, err
	}

	serverRandom, err := NewRandom(rand.Reader)
	if err != nil {
		return nil, err
	}

	var master [MasterLen]byte
	var sessionID []byte
	resumed := false
	if cache != nil && len(offeredID) > 0 {
		if m, ok := cache.Get(offeredID); ok {
			master = m
			sessionID = offeredID
			resumed = true
		}
	}
	if !resumed {
		sessionID, err = NewSessionID(rand.Reader)
		if err != nil {
			return nil, err
		}
	}

	var flags byte
	if resumed {
		flags |= HelloFlagResumed
	}
	ephemeral := opts.Ephemeral && !resumed
	if ephemeral {
		flags |= HelloFlagEphemeral
	}
	sh := BuildServerHelloFlags(serverRandom, sessionID, flags)
	if err := WriteMsg(conn, MsgServerHello, sh); err != nil {
		return nil, err
	}
	transcript.Add(MsgServerHello, sh)

	if !resumed {
		cert := MarshalPublicKey(&priv.PublicKey)
		if err := WriteMsg(conn, MsgCertificate, cert); err != nil {
			return nil, err
		}
		transcript.Add(MsgCertificate, cert)

		decryptKey := priv
		if ephemeral {
			eph, err := GenerateEphemeralKey()
			if err != nil {
				return nil, err
			}
			ske, err := BuildServerKeyExchange(priv, &eph.PublicKey, clientRandom, serverRandom)
			if err != nil {
				return nil, err
			}
			if err := WriteMsg(conn, MsgServerKeyExchange, ske); err != nil {
				return nil, err
			}
			transcript.Add(MsgServerKeyExchange, ske)
			decryptKey = eph
		}

		ckeBody, err := ExpectMsg(conn, MsgClientKeyExchange)
		if err != nil {
			return nil, err
		}
		transcript.Add(MsgClientKeyExchange, ckeBody)
		premaster, err := DecryptPremaster(decryptKey, ckeBody)
		if err != nil {
			SendAlert(conn, "bad key exchange")
			return nil, err
		}
		master = DeriveMaster(premaster, clientRandom, serverRandom)
		// The ephemeral private key goes out of scope here; nothing
		// retains it past the handshake, which is the forward-secrecy
		// property.
	}

	keys := KeyBlock(master, clientRandom, serverRandom)
	rc := NewRecordCoder(keys, ServerSide)

	// Client Finished.
	cfBody, err := ExpectMsg(conn, MsgFinished)
	if err != nil {
		return nil, err
	}
	cfPayload, err := rc.Open(MsgFinished, cfBody)
	if err != nil {
		SendAlert(conn, "bad finished")
		return nil, err
	}
	want := FinishedPayload(master, transcript.Sum(), "client finished")
	if string(cfPayload) != string(want[:]) {
		SendAlert(conn, "bad finished")
		return nil, ErrBadFinished
	}
	transcript.Add(MsgFinished, cfPayload)

	// Server Finished.
	sfPayload := FinishedPayload(master, transcript.Sum(), "server finished")
	sealed, err := rc.Seal(MsgFinished, sfPayload[:])
	if err != nil {
		return nil, err
	}
	if err := WriteMsg(conn, MsgFinished, sealed); err != nil {
		return nil, err
	}

	if cache != nil && !resumed {
		cache.Put(sessionID, master)
	}

	return &ServerConn{conn: conn, rc: rc, Master: master, Keys: keys, Resumed: resumed, Ephemeral: ephemeral}, nil
}

// Write sends one application-data record.
func (s *ServerConn) Write(p []byte) (int, error) {
	sealed, err := s.rc.Seal(MsgAppData, p)
	if err != nil {
		return 0, err
	}
	if err := WriteMsg(s.conn, MsgAppData, sealed); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ReadRecord receives one application-data record.
func (s *ServerConn) ReadRecord() ([]byte, error) {
	body, err := ExpectMsg(s.conn, MsgAppData)
	if err != nil {
		return nil, err
	}
	return s.rc.Open(MsgAppData, body)
}
