package minissl

import (
	"bytes"
	"crypto/rsa"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"wedge/internal/netsim"
)

var (
	testKeyOnce sync.Once
	testKey     *rsa.PrivateKey
)

func serverKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		k, err := GenerateServerKey()
		if err != nil {
			t.Fatalf("GenerateServerKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestMsgFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, MsgClientHello, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	typ, p, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgClientHello || string(p) != "payload" {
		t.Fatalf("got type %d payload %q", typ, p)
	}
}

func TestMsgOversize(t *testing.T) {
	var buf bytes.Buffer
	hdr := []byte{MsgAppData, 0xFF, 0xFF, 0xFF}
	buf.Write(hdr)
	if _, _, err := ReadMsg(&buf); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("oversize read: %v", err)
	}
}

func TestExpectMsgAlert(t *testing.T) {
	var buf bytes.Buffer
	SendAlert(&buf, "boom")
	if _, err := ExpectMsg(&buf, MsgFinished); !errors.Is(err, ErrAlert) {
		t.Fatalf("alert surfaced as %v", err)
	}
}

func TestHelloRoundTrips(t *testing.T) {
	var r [RandomLen]byte
	for i := range r {
		r[i] = byte(i)
	}
	id := []byte("0123456789abcdef")

	cr, cid, err := ParseClientHello(buildClientHello(r, id))
	if err != nil || cr != r || string(cid) != string(id) {
		t.Fatalf("client hello roundtrip: %v %v %q", err, cr, cid)
	}
	sr, sid, resumed, err := ParseServerHello(BuildServerHello(r, id, true))
	if err != nil || sr != r || string(sid) != string(id) || !resumed {
		t.Fatal("server hello roundtrip")
	}
	if _, _, err := ParseClientHello([]byte("short")); err == nil {
		t.Fatal("short hello accepted")
	}
	if _, _, _, err := ParseServerHello([]byte("short")); err == nil {
		t.Fatal("short server hello accepted")
	}
}

func TestDeriveMasterDeterministicAndSensitive(t *testing.T) {
	var pm [PremasterLen]byte
	var cr, sr [RandomLen]byte
	pm[0], cr[0], sr[0] = 1, 2, 3
	m1 := DeriveMaster(pm, cr, sr)
	m2 := DeriveMaster(pm, cr, sr)
	if m1 != m2 {
		t.Fatal("not deterministic")
	}
	sr[0] = 4
	if DeriveMaster(pm, cr, sr) == m1 {
		t.Fatal("server random does not affect master secret")
	}
}

func TestKeyBlockMarshal(t *testing.T) {
	var m [MasterLen]byte
	var cr, sr [RandomLen]byte
	m[5] = 9
	k := KeyBlock(m, cr, sr)
	k2, err := UnmarshalKeys(k.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if k != k2 {
		t.Fatal("key block marshal roundtrip")
	}
	if _, err := UnmarshalKeys([]byte("short")); err == nil {
		t.Fatal("short key block accepted")
	}
}

func TestPremasterRSARoundTrip(t *testing.T) {
	key := serverKey(t)
	var pm [PremasterLen]byte
	for i := range pm {
		pm[i] = byte(i * 3)
	}
	ct, err := EncryptPremaster(&key.PublicKey, pm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptPremaster(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got != pm {
		t.Fatal("premaster roundtrip")
	}
	if _, err := DecryptPremaster(key, []byte("garbage")); err == nil {
		t.Fatal("garbage ciphertext accepted")
	}
}

func TestPublicKeyMarshal(t *testing.T) {
	key := serverKey(t)
	pub, err := UnmarshalPublicKey(MarshalPublicKey(&key.PublicKey))
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(key.PublicKey.N) != 0 || pub.E != key.PublicKey.E {
		t.Fatal("public key roundtrip")
	}
	if _, err := UnmarshalPublicKey([]byte{1, 2}); err == nil {
		t.Fatal("truncated key accepted")
	}
}

func testKeys() Keys {
	var m [MasterLen]byte
	var cr, sr [RandomLen]byte
	m[0], cr[0], sr[0] = 7, 8, 9
	return KeyBlock(m, cr, sr)
}

func TestRecordRoundTrip(t *testing.T) {
	k := testKeys()
	client := NewRecordCoder(k, ClientSide)
	server := NewRecordCoder(k, ServerSide)
	for i := 0; i < 5; i++ {
		msg := []byte{byte(i), 0xAA}
		sealed, err := client.Seal(MsgAppData, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := server.Open(MsgAppData, sealed)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	// And the reverse direction with independent sequences.
	sealed, _ := server.Seal(MsgAppData, []byte("reply"))
	got, err := client.Open(MsgAppData, sealed)
	if err != nil || string(got) != "reply" {
		t.Fatalf("reverse direction: %v %q", err, got)
	}
}

func TestRecordTamperDetected(t *testing.T) {
	k := testKeys()
	c := NewRecordCoder(k, ClientSide)
	s := NewRecordCoder(k, ServerSide)
	sealed, _ := c.Seal(MsgAppData, []byte("hello"))
	sealed[0] ^= 1
	if _, err := s.Open(MsgAppData, sealed); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered record: %v", err)
	}
	// The failed open must not advance the sequence: the original
	// (untampered) record still verifies.
	sealed[0] ^= 1
	if _, err := s.Open(MsgAppData, sealed); err != nil {
		t.Fatalf("valid record after reject: %v", err)
	}
}

func TestRecordReplayRejected(t *testing.T) {
	k := testKeys()
	c := NewRecordCoder(k, ClientSide)
	s := NewRecordCoder(k, ServerSide)
	sealed, _ := c.Seal(MsgAppData, []byte("once"))
	if _, err := s.Open(MsgAppData, sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(MsgAppData, sealed); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("replayed record accepted: %v", err)
	}
}

func TestRecordWrongTypeRejected(t *testing.T) {
	k := testKeys()
	c := NewRecordCoder(k, ClientSide)
	s := NewRecordCoder(k, ServerSide)
	sealed, _ := c.Seal(MsgAppData, []byte("x"))
	if _, err := s.Open(MsgFinished, sealed); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("type confusion accepted: %v", err)
	}
}

// Property: the record layer is tamper-evident for any payload and any
// single-byte corruption.
func TestPropertyRecordTamper(t *testing.T) {
	k := testKeys()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+rng.Intn(300))
		rng.Read(payload)
		c := NewRecordCoder(k, ClientSide)
		s := NewRecordCoder(k, ServerSide)
		sealed, err := c.Seal(MsgAppData, payload)
		if err != nil {
			return false
		}
		i := rng.Intn(len(sealed))
		sealed[i] ^= byte(1 + rng.Intn(255))
		_, err = s.Open(MsgAppData, sealed)
		return errors.Is(err, ErrBadMAC)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// pipe builds an in-memory connection pair via netsim.
func pipe(t *testing.T) (client, server *netsim.Conn) {
	t.Helper()
	n := netsim.New()
	l, err := n.Listen("server:443")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *netsim.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
		}
		done <- c
	}()
	c, err := n.Dial("server:443")
	if err != nil {
		t.Fatal(err)
	}
	return c, <-done
}

func TestFullHandshakeAndData(t *testing.T) {
	key := serverKey(t)
	cache := NewSessionCache()
	cliConn, srvConn := pipe(t)

	type result struct {
		sc  *ServerConn
		err error
	}
	rch := make(chan result, 1)
	go func() {
		sc, err := ServerHandshake(srvConn, key, cache)
		rch <- result{sc, err}
	}()

	cc, err := ClientHandshake(cliConn, &ClientConfig{ServerPub: &key.PublicKey})
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	r := <-rch
	if r.err != nil {
		t.Fatalf("server handshake: %v", r.err)
	}
	if cc.Master != r.sc.Master {
		t.Fatal("client and server derived different masters")
	}
	if cc.Resumed || r.sc.Resumed {
		t.Fatal("fresh handshake marked resumed")
	}

	// Application data both ways.
	if _, err := cc.Write([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	req, err := r.sc.ReadRecord()
	if err != nil || string(req) != "GET /" {
		t.Fatalf("server read: %v %q", err, req)
	}
	if _, err := r.sc.Write([]byte("200 OK")); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.ReadRecord()
	if err != nil || string(resp) != "200 OK" {
		t.Fatalf("client read: %v %q", err, resp)
	}
}

func TestSessionResumption(t *testing.T) {
	key := serverKey(t)
	cache := NewSessionCache()

	// First, a full handshake to fill the cache.
	c1, s1 := pipe(t)
	go ServerHandshake(s1, key, cache)
	cc, err := ClientHandshake(c1, &ClientConfig{ServerPub: &key.PublicKey})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d", cache.Len())
	}

	// Resume.
	c2, s2 := pipe(t)
	rch := make(chan *ServerConn, 1)
	go func() {
		sc, err := ServerHandshake(s2, key, cache)
		if err != nil {
			t.Error(err)
		}
		rch <- sc
	}()
	cc2, err := ClientHandshake(c2, &ClientConfig{ServerPub: &key.PublicKey, Session: &cc.Session})
	if err != nil {
		t.Fatalf("resumed handshake: %v", err)
	}
	sc := <-rch
	if !cc2.Resumed || sc == nil || !sc.Resumed {
		t.Fatal("resumption did not happen")
	}
	if cc2.Master != cc.Master {
		t.Fatal("resumed session changed master")
	}
	if cache.Hits != 1 {
		t.Fatalf("cache hits = %d", cache.Hits)
	}
	// Data still flows.
	cc2.Write([]byte("ping"))
	if got, err := sc.ReadRecord(); err != nil || string(got) != "ping" {
		t.Fatalf("post-resumption data: %v %q", err, got)
	}
}

// TestClientDetectsKeySubstitution: a man in the middle presenting his own
// key is caught by the pinned public key (the certificate check).
func TestClientDetectsKeySubstitution(t *testing.T) {
	key := serverKey(t)
	mitmKey, err := GenerateServerKey()
	if err != nil {
		t.Fatal(err)
	}
	c, s := pipe(t)
	go ServerHandshake(s, mitmKey, nil) // the attacker's server
	_, err = ClientHandshake(c, &ClientConfig{ServerPub: &key.PublicKey})
	if err == nil {
		t.Fatal("client accepted substituted key")
	}
}

func TestSessionCacheMiss(t *testing.T) {
	cache := NewSessionCache()
	if _, ok := cache.Get([]byte("nope")); ok {
		t.Fatal("hit on empty cache")
	}
	if cache.Misses != 1 {
		t.Fatalf("misses = %d", cache.Misses)
	}
}

// TestPrivateKeyRoundTrip: the serialization used to place the server key
// in tagged memory reproduces a working key, and corrupt blobs are
// rejected.
func TestPrivateKeyRoundTrip(t *testing.T) {
	priv := serverKey(t)
	blob := MarshalPrivateKey(priv)
	got, err := UnmarshalPrivateKey(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(priv.N) != 0 || got.D.Cmp(priv.D) != 0 || got.E != priv.E {
		t.Fatal("key fields changed in round trip")
	}
	// The recovered key actually decrypts.
	pm, err := NewPremaster(bytes.NewReader(bytes.Repeat([]byte{3}, PremasterLen)))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := EncryptPremaster(&priv.PublicKey, pm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecryptPremaster(got, ct)
	if err != nil || back != pm {
		t.Fatalf("recovered key failed to decrypt: %v", err)
	}
	// Truncations are rejected, never panic.
	for _, n := range []int{0, 3, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalPrivateKey(blob[:n]); err == nil {
			t.Errorf("truncated blob (%d bytes) accepted", n)
		}
	}
	// A corrupted prime fails validation rather than yielding a wrong key.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := UnmarshalPrivateKey(bad); err == nil {
		t.Error("corrupted key blob accepted")
	}
}

// TestRecordCoderSeqPositioning: SetSeqs rebuilds a coder mid-stream, the
// partitioned servers' pattern for persisting record state in tagged
// memory between callgate invocations.
func TestRecordCoderSeqPositioning(t *testing.T) {
	keys := Keys{}
	copy(keys.ClientWriteKey[:], bytes.Repeat([]byte{1}, KeyLen))
	copy(keys.ServerWriteKey[:], bytes.Repeat([]byte{2}, KeyLen))
	copy(keys.ClientMACKey[:], bytes.Repeat([]byte{3}, 32))
	copy(keys.ServerMACKey[:], bytes.Repeat([]byte{4}, 32))

	sender := NewRecordCoder(keys, ClientSide)
	var bodies [][]byte
	for i := 0; i < 5; i++ {
		b, err := sender.Seal(MsgAppData, []byte{byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	if sender.WriteSeq() != 5 {
		t.Fatalf("WriteSeq = %d", sender.WriteSeq())
	}

	// A fresh coder positioned at sequence 3 opens records 3 and 4 but
	// rejects 0 (wrong seq in the MAC).
	resumed := NewRecordCoder(keys, ServerSide)
	resumed.SetSeqs(3, 0)
	if resumed.ReadSeq() != 3 {
		t.Fatalf("ReadSeq = %d", resumed.ReadSeq())
	}
	if got, err := resumed.Open(MsgAppData, bodies[3]); err != nil || string(got) != "d" {
		t.Fatalf("open seq3: %q %v", got, err)
	}
	if got, err := resumed.Open(MsgAppData, bodies[4]); err != nil || string(got) != "e" {
		t.Fatalf("open seq4: %q %v", got, err)
	}
	if _, err := resumed.Open(MsgAppData, bodies[0]); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("replay of seq0 at seq5: %v", err)
	}
}

// TestResumeTranscript: a transcript resumed from a hash continues
// exactly as the original would — the receive_finished gate's mechanism.
func TestResumeTranscript(t *testing.T) {
	var a Transcript
	a.Add(MsgClientHello, []byte("hello"))
	a.Add(MsgServerHello, []byte("world"))
	mid := a.Sum()

	b := ResumeTranscript(mid)
	a.Add(MsgFinished, []byte("fin"))
	b.Add(MsgFinished, []byte("fin"))
	if a.Sum() != b.Sum() {
		t.Fatal("resumed transcript diverged")
	}
	if b.Sum() == mid {
		t.Fatal("Add did not fold the new message")
	}
}
