// The SSL client used by benchmarks, tests and the attack drivers. It
// performs the full RSA handshake or an abbreviated (resumed) one, then
// exchanges application data over the record layer.

package minissl

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"io"
)

// ClientSession is the client-side cache entry enabling resumption.
type ClientSession struct {
	ID     []byte
	Master [MasterLen]byte
}

// ClientConfig parameterizes a client handshake.
type ClientConfig struct {
	// ServerPub pins the server's public key (the simulated testbed's
	// stand-in for certificate verification).
	ServerPub *rsa.PublicKey
	// Session, when non-nil, attempts an abbreviated handshake.
	Session *ClientSession
	// Rand supplies randomness; nil means crypto/rand.
	Rand io.Reader
}

func (c *ClientConfig) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.Reader
}

// ClientConn is an established client-side SSL connection.
type ClientConn struct {
	conn    io.ReadWriter
	rc      *RecordCoder
	Session ClientSession
	// Resumed reports whether the abbreviated handshake was used.
	Resumed bool
	// Master is retained for test assertions about key secrecy.
	Master [MasterLen]byte
}

// clientHello is the wire body: random || idLen || sessionID.
func buildClientHello(random [RandomLen]byte, sessionID []byte) []byte {
	out := make([]byte, 0, RandomLen+1+len(sessionID))
	out = append(out, random[:]...)
	out = append(out, byte(len(sessionID)))
	out = append(out, sessionID...)
	return out
}

// ParseClientHello splits a ClientHello body.
func ParseClientHello(b []byte) (random [RandomLen]byte, sessionID []byte, err error) {
	if len(b) < RandomLen+1 {
		return random, nil, ErrBadMessage
	}
	copy(random[:], b[:RandomLen])
	n := int(b[RandomLen])
	rest := b[RandomLen+1:]
	if len(rest) != n {
		return random, nil, ErrBadMessage
	}
	return random, append([]byte(nil), rest...), nil
}

// BuildServerHello mirrors buildClientHello plus a resumed flag.
func BuildServerHello(random [RandomLen]byte, sessionID []byte, resumed bool) []byte {
	var flags byte
	if resumed {
		flags |= HelloFlagResumed
	}
	return BuildServerHelloFlags(random, sessionID, flags)
}

// BuildServerHelloFlags builds a ServerHello with an explicit flag
// bitfield (HelloFlagResumed, HelloFlagEphemeral).
func BuildServerHelloFlags(random [RandomLen]byte, sessionID []byte, flags byte) []byte {
	out := make([]byte, 0, RandomLen+2+len(sessionID))
	out = append(out, random[:]...)
	out = append(out, flags, byte(len(sessionID)))
	out = append(out, sessionID...)
	return out
}

// ParseServerHello splits a ServerHello body, reporting resumption only.
func ParseServerHello(b []byte) (random [RandomLen]byte, sessionID []byte, resumed bool, err error) {
	random, sessionID, flags, err := ParseServerHelloFlags(b)
	return random, sessionID, flags&HelloFlagResumed != 0, err
}

// ParseServerHelloFlags splits a ServerHello body with the full flag byte.
func ParseServerHelloFlags(b []byte) (random [RandomLen]byte, sessionID []byte, flags byte, err error) {
	if len(b) < RandomLen+2 {
		return random, nil, 0, ErrBadMessage
	}
	copy(random[:], b[:RandomLen])
	flags = b[RandomLen]
	n := int(b[RandomLen+1])
	rest := b[RandomLen+2:]
	if len(rest) != n {
		return random, nil, 0, ErrBadMessage
	}
	return random, append([]byte(nil), rest...), flags, nil
}

// ClientHandshake runs the client side of the handshake over conn.
func ClientHandshake(conn io.ReadWriter, cfg *ClientConfig) (*ClientConn, error) {
	var transcript Transcript

	clientRandom, err := NewRandom(cfg.rand())
	if err != nil {
		return nil, err
	}
	var offerID []byte
	if cfg.Session != nil {
		offerID = cfg.Session.ID
	}
	ch := buildClientHello(clientRandom, offerID)
	if err := WriteMsg(conn, MsgClientHello, ch); err != nil {
		return nil, err
	}
	transcript.Add(MsgClientHello, ch)

	shBody, err := ExpectMsg(conn, MsgServerHello)
	if err != nil {
		return nil, err
	}
	transcript.Add(MsgServerHello, shBody)
	serverRandom, sessionID, flags, err := ParseServerHelloFlags(shBody)
	if err != nil {
		return nil, err
	}
	resumed := flags&HelloFlagResumed != 0

	var master [MasterLen]byte
	if resumed {
		if cfg.Session == nil {
			return nil, fmt.Errorf("%w: unsolicited resumption", ErrBadMessage)
		}
		master = cfg.Session.Master
	} else {
		certBody, err := ExpectMsg(conn, MsgCertificate)
		if err != nil {
			return nil, err
		}
		transcript.Add(MsgCertificate, certBody)
		pub, err := UnmarshalPublicKey(certBody)
		if err != nil {
			return nil, err
		}
		if cfg.ServerPub != nil && (pub.N.Cmp(cfg.ServerPub.N) != 0 || pub.E != cfg.ServerPub.E) {
			return nil, fmt.Errorf("minissl: server key mismatch (possible interposition)")
		}

		encryptKey := pub
		if flags&HelloFlagEphemeral != 0 {
			skeBody, err := ExpectMsg(conn, MsgServerKeyExchange)
			if err != nil {
				return nil, err
			}
			transcript.Add(MsgServerKeyExchange, skeBody)
			ephPub, err := VerifyServerKeyExchange(pub, skeBody, clientRandom, serverRandom)
			if err != nil {
				return nil, err
			}
			encryptKey = ephPub
		}

		premaster, err := NewPremaster(cfg.rand())
		if err != nil {
			return nil, err
		}
		cke, err := EncryptPremaster(encryptKey, premaster)
		if err != nil {
			return nil, err
		}
		if err := WriteMsg(conn, MsgClientKeyExchange, cke); err != nil {
			return nil, err
		}
		transcript.Add(MsgClientKeyExchange, cke)
		master = DeriveMaster(premaster, clientRandom, serverRandom)
	}

	keys := KeyBlock(master, clientRandom, serverRandom)
	rc := NewRecordCoder(keys, ClientSide)

	// Client Finished: MAC over the transcript so far, sealed.
	cfPayload := FinishedPayload(master, transcript.Sum(), "client finished")
	sealed, err := rc.Seal(MsgFinished, cfPayload[:])
	if err != nil {
		return nil, err
	}
	if err := WriteMsg(conn, MsgFinished, sealed); err != nil {
		return nil, err
	}
	transcript.Add(MsgFinished, cfPayload[:])

	// Server Finished: verify against the updated transcript.
	sfBody, err := ExpectMsg(conn, MsgFinished)
	if err != nil {
		return nil, err
	}
	sfPayload, err := rc.Open(MsgFinished, sfBody)
	if err != nil {
		return nil, err
	}
	want := FinishedPayload(master, transcript.Sum(), "server finished")
	if string(sfPayload) != string(want[:]) {
		return nil, ErrBadFinished
	}

	return &ClientConn{
		conn:    conn,
		rc:      rc,
		Session: ClientSession{ID: sessionID, Master: master},
		Resumed: resumed,
		Master:  master,
	}, nil
}

// Write sends one application-data record.
func (c *ClientConn) Write(p []byte) (int, error) {
	sealed, err := c.rc.Seal(MsgAppData, p)
	if err != nil {
		return 0, err
	}
	if err := WriteMsg(c.conn, MsgAppData, sealed); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ReadRecord receives one application-data record.
func (c *ClientConn) ReadRecord() ([]byte, error) {
	body, err := ExpectMsg(c.conn, MsgAppData)
	if err != nil {
		return nil, err
	}
	return c.rc.Open(MsgAppData, body)
}
