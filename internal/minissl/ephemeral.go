// Ephemeral per-connection RSA keys — the forward-secrecy option §5.1.1
// mentions and sets aside: "ephemeral, per-connection RSA keys, which
// provide forward secrecy ... are rarely used in practice because of
// their high computational cost." This file implements them so that both
// halves of that sentence are checkable: the forward-secrecy property is
// an executable test (holding the long-lived private key no longer
// decrypts recorded sessions) and the computational cost is an ablation
// benchmark (per-connection key generation dominates the handshake).
//
// The mechanism follows the SSL ephemeral-RSA ("server key exchange")
// design of the paper's era: the server generates a short-lived RSA key
// pair for the connection, signs it with its long-lived key (binding the
// signature to both hello randoms to prevent replay), and the client
// encrypts the premaster under the ephemeral key. The long-lived key is
// thereby used only for signing; compromise of it later reveals nothing
// about the premaster of a recorded connection, whose ephemeral private
// key was discarded at handshake end.

package minissl

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// MsgServerKeyExchange carries the signed ephemeral public key. It is sent
// between Certificate and ClientKeyExchange when the server enables
// ephemeral keys, and announced by the ServerHello ephemeral flag.
const MsgServerKeyExchange byte = 8

// ServerHello flag bits. The ServerHello flag byte was a plain 0/1 resumed
// marker; it is now a bitfield with resumption in bit 0, so old peers
// interoperate with non-ephemeral servers unchanged.
const (
	// HelloFlagResumed marks an abbreviated handshake.
	HelloFlagResumed byte = 1 << 0
	// HelloFlagEphemeral announces a ServerKeyExchange message.
	HelloFlagEphemeral byte = 1 << 1
)

// EphemeralKeyBits sizes per-connection keys. 512-bit keys match the
// export-grade ephemeral RSA of the SSLv3 era; the generation cost is the
// point — it is paid per connection.
const EphemeralKeyBits = 512

// GenerateEphemeralKey creates one connection's short-lived key pair.
func GenerateEphemeralKey() (*rsa.PrivateKey, error) {
	return rsa.GenerateKey(rand.Reader, EphemeralKeyBits)
}

// ephemeralSigHash binds the ephemeral key to this handshake's randoms, so
// a signed key observed on one connection cannot be replayed on another.
func ephemeralSigHash(clientRandom, serverRandom [RandomLen]byte, pubBytes []byte) []byte {
	h := sha256.New()
	h.Write(clientRandom[:])
	h.Write(serverRandom[:])
	h.Write(pubBytes)
	return h.Sum(nil)
}

// BuildServerKeyExchange serializes and signs the ephemeral public key
// with the server's long-lived key: u16 publen || pub || sig.
func BuildServerKeyExchange(longterm *rsa.PrivateKey, ephPub *rsa.PublicKey, clientRandom, serverRandom [RandomLen]byte) ([]byte, error) {
	pubBytes := MarshalPublicKey(ephPub)
	digest := ephemeralSigHash(clientRandom, serverRandom, pubBytes)
	sig, err := rsa.SignPKCS1v15(rand.Reader, longterm, crypto.SHA256, digest)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 2, 2+len(pubBytes)+len(sig))
	binary.BigEndian.PutUint16(out, uint16(len(pubBytes)))
	out = append(out, pubBytes...)
	return append(out, sig...), nil
}

// VerifyServerKeyExchange checks the long-lived key's signature over the
// ephemeral key and this handshake's randoms, returning the ephemeral
// public key the premaster must be encrypted under.
func VerifyServerKeyExchange(serverPub *rsa.PublicKey, body []byte, clientRandom, serverRandom [RandomLen]byte) (*rsa.PublicKey, error) {
	if len(body) < 2 {
		return nil, ErrBadMessage
	}
	n := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+n {
		return nil, ErrBadMessage
	}
	pubBytes, sig := body[2:2+n], body[2+n:]
	digest := ephemeralSigHash(clientRandom, serverRandom, pubBytes)
	if err := rsa.VerifyPKCS1v15(serverPub, crypto.SHA256, digest, sig); err != nil {
		return nil, fmt.Errorf("minissl: ephemeral key signature invalid: %w", err)
	}
	return UnmarshalPublicKey(pubBytes)
}
