package minissl

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"wedge/internal/netsim"
)

// runEphemeralPair completes one handshake with the given server options
// over an in-memory connection, returning both ends.
func runEphemeralPair(t *testing.T, opts ServerOpts, sess *ClientSession, cache *SessionCache) (*ClientConn, *ServerConn) {
	t.Helper()
	net := netsim.New()
	l, err := net.Listen("srv:443")
	if err != nil {
		t.Fatal(err)
	}
	priv := serverKey(t)

	var srv *ServerConn
	var srvErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			srvErr = err
			return
		}
		srv, srvErr = ServerHandshakeOpts(c, priv, cache, opts)
	}()

	conn, err := net.Dial("srv:443")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := ClientHandshake(conn, &ClientConfig{ServerPub: &priv.PublicKey, Session: sess})
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	<-done
	if srvErr != nil {
		t.Fatalf("server handshake: %v", srvErr)
	}
	return cc, srv
}

// TestEphemeralHandshake: the ephemeral variant completes, both sides
// agree on the master secret, and application data flows.
func TestEphemeralHandshake(t *testing.T) {
	cc, srv := runEphemeralPair(t, ServerOpts{Ephemeral: true}, nil, nil)
	if !srv.Ephemeral {
		t.Fatal("server did not use the ephemeral exchange")
	}
	if cc.Master != srv.Master {
		t.Fatal("master secrets disagree")
	}
	go func() {
		if _, err := cc.Write([]byte("hello")); err != nil {
			t.Error(err)
		}
	}()
	got, err := srv.ReadRecord()
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadRecord = %q, %v", got, err)
	}
}

// TestEphemeralResumptionSkipsKeyExchange: a session established
// ephemerally resumes with the abbreviated handshake — no key exchange of
// either kind.
func TestEphemeralResumptionSkipsKeyExchange(t *testing.T) {
	cache := NewSessionCache()
	cc, _ := runEphemeralPair(t, ServerOpts{Ephemeral: true}, nil, cache)
	cc2, srv2 := runEphemeralPair(t, ServerOpts{Ephemeral: true}, &cc.Session, cache)
	if !cc2.Resumed || !srv2.Resumed {
		t.Fatal("second handshake did not resume")
	}
	if srv2.Ephemeral {
		t.Fatal("resumed handshake claims ephemeral exchange")
	}
	if cc2.Master != cc.Master {
		t.Fatal("resumed master differs")
	}
}

// recordingConn captures everything both sides send, playing the
// paper's eavesdropper: "the attacker can eavesdrop on entire SSL
// connections" (§5.1).
type recordingConn struct {
	inner io.ReadWriter
	mu    *sync.Mutex
	// tape sees the concatenated handshake in wire order for one
	// direction at a time; a real tap keeps both directions, and so do
	// we: c2s for client writes, s2c for server writes.
	tape *bytes.Buffer
}

func (r *recordingConn) Read(p []byte) (int, error) { return r.inner.Read(p) }

func (r *recordingConn) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.tape.Write(p)
	r.mu.Unlock()
	return r.inner.Write(p)
}

// runRecorded performs one full handshake plus one app-data record from
// the client, recording each direction's bytes.
func runRecorded(t *testing.T, opts ServerOpts) (c2s, s2c *bytes.Buffer) {
	t.Helper()
	net := netsim.New()
	l, err := net.Listen("srv:443")
	if err != nil {
		t.Fatal(err)
	}
	priv := serverKey(t)
	var mu sync.Mutex
	c2s, s2c = new(bytes.Buffer), new(bytes.Buffer)

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		srv, err := ServerHandshakeOpts(&recordingConn{inner: c, mu: &mu, tape: s2c}, priv, nil, opts)
		if err != nil {
			done <- err
			return
		}
		_, err = srv.ReadRecord()
		done <- err
	}()

	conn, err := net.Dial("srv:443")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := ClientHandshake(&recordingConn{inner: conn, mu: &mu, tape: c2s}, &ClientConfig{ServerPub: &priv.PublicKey})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write([]byte("secret request")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return c2s, s2c
}

// offlineDecrypt plays the §5.1.1 attacker: given a recorded connection
// and the server's long-lived private key (obtained later, e.g. by
// exploit), recover the client's application data. It returns the
// plaintext, or an error if the recorded traffic cannot be decrypted.
func offlineDecrypt(t *testing.T, c2s, s2c *bytes.Buffer) ([]byte, error) {
	t.Helper()
	priv := serverKey(t)

	chBody, err := ExpectMsg(c2s, MsgClientHello)
	if err != nil {
		return nil, err
	}
	clientRandom, _, err := ParseClientHello(chBody)
	if err != nil {
		return nil, err
	}
	shBody, err := ExpectMsg(s2c, MsgServerHello)
	if err != nil {
		return nil, err
	}
	serverRandom, _, flags, err := ParseServerHelloFlags(shBody)
	if err != nil {
		return nil, err
	}
	if _, err := ExpectMsg(s2c, MsgCertificate); err != nil {
		return nil, err
	}
	if flags&HelloFlagEphemeral != 0 {
		// The tape contains the signed ephemeral key, but its private
		// half never traversed the network and was discarded.
		if _, err := ExpectMsg(s2c, MsgServerKeyExchange); err != nil {
			return nil, err
		}
	}
	ckeBody, err := ExpectMsg(c2s, MsgClientKeyExchange)
	if err != nil {
		return nil, err
	}
	// The attack step: decrypt the recorded ClientKeyExchange with the
	// server's long-lived private key.
	premaster, err := DecryptPremaster(priv, ckeBody)
	if err != nil {
		return nil, err
	}
	master := DeriveMaster(premaster, clientRandom, serverRandom)
	keys := KeyBlock(master, clientRandom, serverRandom)

	// Skip the Finished pair, then open the client's app-data record.
	rc := NewRecordCoder(keys, ServerSide)
	cfBody, err := ExpectMsg(c2s, MsgFinished)
	if err != nil {
		return nil, err
	}
	if _, err := rc.Open(MsgFinished, cfBody); err != nil {
		return nil, err
	}
	appBody, err := ExpectMsg(c2s, MsgAppData)
	if err != nil {
		return nil, err
	}
	return rc.Open(MsgAppData, appBody)
}

// TestLongTermKeyDecryptsRecordedSession is the §5.1.1 premise: without
// ephemeral keys, "holding this key would allow the attacker to recover
// the session key for any eavesdropped session, past or future."
func TestLongTermKeyDecryptsRecordedSession(t *testing.T) {
	c2s, s2c := runRecorded(t, ServerOpts{})
	plain, err := offlineDecrypt(t, c2s, s2c)
	if err != nil {
		t.Fatalf("offline decryption should succeed against the static-key server: %v", err)
	}
	if string(plain) != "secret request" {
		t.Fatalf("recovered %q", plain)
	}
}

// TestEphemeralKeysGiveForwardSecrecy is the other half: with ephemeral
// per-connection keys, the same long-lived-key compromise recovers
// nothing from the recorded session.
func TestEphemeralKeysGiveForwardSecrecy(t *testing.T) {
	c2s, s2c := runRecorded(t, ServerOpts{Ephemeral: true})
	plain, err := offlineDecrypt(t, c2s, s2c)
	if err == nil {
		t.Fatalf("offline decryption succeeded against the ephemeral server: %q", plain)
	}
}

// TestServerKeyExchangeTamper: a bit flipped anywhere in the signed
// ephemeral key is rejected by the client.
func TestServerKeyExchangeTamper(t *testing.T) {
	priv := serverKey(t)
	eph, err := GenerateEphemeralKey()
	if err != nil {
		t.Fatal(err)
	}
	var cr, sr [RandomLen]byte
	cr[0], sr[0] = 1, 2
	body, err := BuildServerKeyExchange(priv, &eph.PublicKey, cr, sr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyServerKeyExchange(&priv.PublicKey, body, cr, sr); err != nil {
		t.Fatalf("pristine body rejected: %v", err)
	}
	for _, i := range []int{0, 1, 2, len(body) / 2, len(body) - 1} {
		bad := append([]byte(nil), body...)
		bad[i] ^= 0x40
		if _, err := VerifyServerKeyExchange(&priv.PublicKey, bad, cr, sr); err == nil {
			t.Errorf("flip at %d accepted", i)
		}
	}
	// Replay on a different handshake (other randoms) must fail too.
	var cr2 [RandomLen]byte
	cr2[0] = 3
	if _, err := VerifyServerKeyExchange(&priv.PublicKey, body, cr2, sr); err == nil {
		t.Error("signed key replayed across handshakes")
	}
	// Truncation must not panic.
	for _, n := range []int{0, 1, 2, 3} {
		if _, err := VerifyServerKeyExchange(&priv.PublicKey, body[:n], cr, sr); !errors.Is(err, ErrBadMessage) {
			t.Errorf("truncated body (%d bytes): %v", n, err)
		}
	}
}
