// Failure injection against the handshake state machines: arbitrary bytes
// in place of a well-formed peer must produce an error — never a panic, a
// hang, or a spuriously "established" connection.

package minissl

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// garbageConn replays a fixed byte stream as the peer and discards writes.
type garbageConn struct {
	r io.Reader
}

func (g *garbageConn) Read(p []byte) (int, error)  { return g.r.Read(p) }
func (g *garbageConn) Write(p []byte) (int, error) { return len(p), nil }

// TestServerHandshakeGarbageProperty: the server-side handshake fed
// arbitrary bytes always errors.
func TestServerHandshakeGarbageProperty(t *testing.T) {
	priv := serverKey(t)
	prop := func(garbage []byte) bool {
		conn := &garbageConn{r: bytes.NewReader(garbage)}
		sc, err := ServerHandshake(conn, priv, NewSessionCache())
		return sc == nil && err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClientHandshakeGarbageProperty: the client-side handshake fed
// arbitrary bytes always errors, with or without a resumption offer.
func TestClientHandshakeGarbageProperty(t *testing.T) {
	priv := serverKey(t)
	prop := func(garbage []byte, offerSession bool) bool {
		var sess *ClientSession
		if offerSession {
			sess = &ClientSession{ID: []byte("0123456789abcdef")}
		}
		conn := &garbageConn{r: bytes.NewReader(garbage)}
		cc, err := ClientHandshake(conn, &ClientConfig{ServerPub: &priv.PublicKey, Session: sess})
		return cc == nil && err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestServerHandshakeValidPrefixGarbage: a well-formed ClientHello
// followed by garbage still errors — the state machine does not stop
// validating after the first message.
func TestServerHandshakeValidPrefixGarbage(t *testing.T) {
	priv := serverKey(t)
	prop := func(garbage []byte) bool {
		var stream bytes.Buffer
		random, err := NewRandom(bytes.NewReader(bytes.Repeat([]byte{7}, RandomLen)))
		if err != nil {
			return false
		}
		if err := WriteMsg(&stream, MsgClientHello, buildClientHello(random, nil)); err != nil {
			return false
		}
		stream.Write(garbage)
		conn := &garbageConn{r: &stream}
		sc, err := ServerHandshake(conn, priv, nil)
		return sc == nil && err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCKECorruptionNeverEstablishes: flipping any byte of the recorded
// ClientKeyExchange prevents the handshake from completing (the server's
// premaster decrypt or the Finished check fails), so a man-in-the-middle
// cannot partially influence key agreement by mangling that message.
func TestCKECorruptionNeverEstablishes(t *testing.T) {
	priv := serverKey(t)
	premaster, err := NewPremaster(bytes.NewReader(bytes.Repeat([]byte{9}, PremasterLen)))
	if err != nil {
		t.Fatal(err)
	}
	cke, err := EncryptPremaster(&priv.PublicKey, premaster)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, len(cke) / 2, len(cke) - 1} {
		bad := append([]byte(nil), cke...)
		bad[i] ^= 0x01
		got, err := DecryptPremaster(priv, bad)
		if err == nil && got == premaster {
			t.Fatalf("corrupted CKE at byte %d still decrypts to the premaster", i)
		}
	}
}
