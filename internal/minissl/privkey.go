// Private-key serialization. The partitioned servers keep the server's RSA
// private key in tagged simulated memory — the whole point of §5.1 — so it
// must round-trip through bytes. The format is a simple length-prefixed
// big-integer sequence (N, E, D, P, Q); offline simulation only.

package minissl

import (
	"crypto/rsa"
	"encoding/binary"
	"fmt"
	"math/big"
)

func appendInt(out []byte, x *big.Int) []byte {
	b := x.Bytes()
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	out = append(out, l[:]...)
	return append(out, b...)
}

func readInt(b []byte) (*big.Int, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrBadMessage
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, ErrBadMessage
	}
	return new(big.Int).SetBytes(b[:n]), b[n:], nil
}

// MarshalPrivateKey serializes an RSA private key for placement in tagged
// memory.
func MarshalPrivateKey(priv *rsa.PrivateKey) []byte {
	out := appendInt(nil, priv.N)
	out = appendInt(out, big.NewInt(int64(priv.E)))
	out = appendInt(out, priv.D)
	out = appendInt(out, priv.Primes[0])
	out = appendInt(out, priv.Primes[1])
	return out
}

// UnmarshalPrivateKey parses MarshalPrivateKey's output.
func UnmarshalPrivateKey(b []byte) (*rsa.PrivateKey, error) {
	n, b, err := readInt(b)
	if err != nil {
		return nil, err
	}
	e, b, err := readInt(b)
	if err != nil {
		return nil, err
	}
	d, b, err := readInt(b)
	if err != nil {
		return nil, err
	}
	p, b, err := readInt(b)
	if err != nil {
		return nil, err
	}
	q, _, err := readInt(b)
	if err != nil {
		return nil, err
	}
	priv := &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
		D:         d,
		Primes:    []*big.Int{p, q},
	}
	priv.Precompute()
	if err := priv.Validate(); err != nil {
		return nil, fmt.Errorf("minissl: invalid private key: %w", err)
	}
	return priv, nil
}
