package vfs

import (
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadFile(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll(Root, fs.Root(), "/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(Root, fs.Root(), "/etc/motd", []byte("welcome"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(Root, fs.Root(), "/etc/motd")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "welcome" {
		t.Fatalf("got %q", got)
	}
}

func TestNotExist(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile(Root, fs.Root(), "/nope")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(Root, fs.Root(), "/shadow", []byte("secret"), 0o600); err != nil {
		t.Fatal(err)
	}
	alice := Cred{UID: 1000}
	if _, err := fs.ReadFile(alice, fs.Root(), "/shadow"); !errors.Is(err, ErrPermission) {
		t.Fatalf("uid 1000 read of 0600 root file: %v, want ErrPermission", err)
	}
	// Root always may.
	if _, err := fs.ReadFile(Root, fs.Root(), "/shadow"); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerBits(t *testing.T) {
	fs := New()
	alice := Cred{UID: 1000}
	bob := Cred{UID: 1001}
	if err := fs.Mkdir(Root, fs.Root(), "/home", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(alice, fs.Root(), "/home/diary", []byte("dear diary"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(alice, fs.Root(), "/home/diary"); err != nil {
		t.Fatalf("owner read: %v", err)
	}
	if _, err := fs.ReadFile(bob, fs.Root(), "/home/diary"); !errors.Is(err, ErrPermission) {
		t.Fatalf("bob read of alice 0600 file: %v", err)
	}
}

func TestSearchPermission(t *testing.T) {
	fs := New()
	alice := Cred{UID: 1000}
	if err := fs.Mkdir(Root, fs.Root(), "/private", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(Root, fs.Root(), "/private/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(alice, fs.Root(), "/private/f"); !errors.Is(err, ErrPermission) {
		t.Fatalf("traversal through 0700 root dir by uid 1000: %v", err)
	}
}

func TestChrootConfinement(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll(Root, fs.Root(), "/jail/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(Root, fs.Root(), "/etc-secret", []byte("host secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(Root, fs.Root(), "/jail/inside", []byte("jail data"), 0o644); err != nil {
		t.Fatal(err)
	}
	jail, err := fs.Lookup(Root, fs.Root(), "/jail")
	if err != nil {
		t.Fatal(err)
	}
	// ".." from the jail root must stay in the jail.
	got, err := fs.ReadFile(Root, jail, "/../../inside")
	if err != nil {
		t.Fatalf("confined .. walk: %v", err)
	}
	if string(got) != "jail data" {
		t.Fatalf("got %q", got)
	}
	if _, err := fs.ReadFile(Root, jail, "/../etc-secret"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("escaped chroot: %v", err)
	}
	// Absolute paths resolve relative to the jail.
	if _, err := fs.ReadFile(Root, jail, "/etc-secret"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("jail sees host file: %v", err)
	}
}

func TestEmptyChrootIsEmpty(t *testing.T) {
	fs := New()
	if err := fs.Mkdir(Root, fs.Root(), "/empty", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(Root, fs.Root(), "/etc-shadow", []byte("hashes"), 0o600); err != nil {
		t.Fatal(err)
	}
	empty, _ := fs.Lookup(Root, fs.Root(), "/empty")
	names, err := fs.Readdir(Root, empty, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("empty chroot lists %v", names)
	}
}

func TestOpenFlags(t *testing.T) {
	fs := New()
	if _, err := fs.Open(Root, fs.Root(), "/f", 0, 0o644); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("flags=0: %v", err)
	}
	f, err := fs.Open(Root, fs.Root(), "/f", OWronly|OCreate, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	// Write-only handle cannot read.
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrPermission) {
		t.Fatalf("read on write-only handle: %v", err)
	}
	// Append positions at end.
	fa, err := fs.Open(Root, fs.Root(), "/f", OWronly|OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(Root, fs.Root(), "/f")
	if string(got) != "abcdef!" {
		t.Fatalf("append result %q", got)
	}
	// Trunc resets.
	if _, err := fs.Open(Root, fs.Root(), "/f", OWronly|OTrunc, 0); err != nil {
		t.Fatal(err)
	}
	if st, _ := fs.StatPath(Root, fs.Root(), "/f"); st.Size != 0 {
		t.Fatalf("size after trunc = %d", st.Size)
	}
}

func TestSeek(t *testing.T) {
	fs := New()
	if err := fs.WriteFile(Root, fs.Root(), "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(Root, fs.Root(), "/f", ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	if _, err := f.Read(b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "45" {
		t.Fatalf("read after seek: %q", b)
	}
	if pos, _ := f.Seek(-2, io.SeekEnd); pos != 8 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	if _, err := f.Seek(-100, io.SeekCurrent); err == nil {
		t.Fatal("negative seek allowed")
	}
}

func TestReaddirSorted(t *testing.T) {
	fs := New()
	for _, name := range []string{"/c", "/a", "/b"} {
		if err := fs.WriteFile(Root, fs.Root(), name, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.Readdir(Root, fs.Root(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("readdir %v", names)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll(Root, fs.Root(), "/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(Root, fs.Root(), "/d"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := fs.Remove(Root, fs.Root(), "/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(Root, fs.Root(), "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StatPath(Root, fs.Root(), "/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

func TestChownChmod(t *testing.T) {
	fs := New()
	alice := Cred{UID: 1000}
	if err := fs.WriteFile(Root, fs.Root(), "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(alice, fs.Root(), "/f", 1000); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-root chown: %v", err)
	}
	if err := fs.Chown(Root, fs.Root(), "/f", 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(alice, fs.Root(), "/f", 0o600); err != nil {
		t.Fatalf("owner chmod: %v", err)
	}
	bob := Cred{UID: 1001}
	if err := fs.Chmod(bob, fs.Root(), "/f", 0o777); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner chmod: %v", err)
	}
	st, _ := fs.StatPath(Root, fs.Root(), "/f")
	if st.UID != 1000 || st.Mode != 0o600 {
		t.Fatalf("stat %+v", st)
	}
}

func TestMkdirExists(t *testing.T) {
	fs := New()
	if err := fs.Mkdir(Root, fs.Root(), "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(Root, fs.Root(), "/d", 0o755); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := fs.MkdirAll(Root, fs.Root(), "/d/x/y", 0o755); err != nil {
		t.Fatalf("MkdirAll over existing prefix: %v", err)
	}
}

func TestOpenDirFails(t *testing.T) {
	fs := New()
	if err := fs.Mkdir(Root, fs.Root(), "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(Root, fs.Root(), "/d", ORdonly, 0); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir: %v", err)
	}
	if _, err := fs.ReadFile(Root, fs.Root(), "/d/f/deeper"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("path through missing file: %v", err)
	}
}

// Property: WriteFile/ReadFile round-trips arbitrary contents at arbitrary
// generated paths.
func TestQuickFileRoundTrip(t *testing.T) {
	fs := New()
	if err := fs.Mkdir(Root, fs.Root(), "/q", 0o755); err != nil {
		t.Fatal(err)
	}
	i := 0
	f := func(data []byte) bool {
		i++
		p := "/q/file" + string(rune('a'+i%26))
		if fs.WriteFile(Root, fs.Root(), p, data, 0o644) != nil {
			return false
		}
		got, err := fs.ReadFile(Root, fs.Root(), p)
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sparse writes at arbitrary offsets produce a file whose
// contents match a shadow model.
func TestQuickSparseWrites(t *testing.T) {
	type wr struct {
		Off  uint16
		Data []byte
	}
	f := func(writes []wr) bool {
		fs := New()
		file, err := fs.Open(Root, fs.Root(), "/f", ORdwr|OCreate, 0o644)
		if err != nil {
			return false
		}
		model := []byte{}
		for _, w := range writes {
			off := int(w.Off) % 8192
			if _, err := file.Seek(int64(off), io.SeekStart); err != nil {
				return false
			}
			if _, err := file.Write(w.Data); err != nil {
				return false
			}
			if grow := off + len(w.Data) - len(model); grow > 0 {
				model = append(model, make([]byte, grow)...)
			}
			copy(model[off:], w.Data)
		}
		got, err := fs.ReadFile(Root, fs.Root(), "/f")
		if err != nil {
			return false
		}
		return string(got) == string(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
