// Package vfs is an in-memory Unix-like filesystem used by the simulated
// kernel. It provides what the Wedge applications in §5 need from the VFS:
// permission bits checked against a caller uid, per-task filesystem roots
// (chroot) with ".." confined below the root, and ordinary file I/O for
// shadow password files, web content, and mail spools.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// Mode holds Unix-style permission bits (owner/group/other rwx). Group bits
// are checked against "other" because the simulated kernel has no group
// database; this matches how the paper's servers use permissions.
type Mode uint16

// FileType distinguishes regular files from directories.
type FileType int

const (
	// TypeFile is a regular file.
	TypeFile FileType = iota
	// TypeDir is a directory.
	TypeDir
)

// Sentinel errors, matching the kernel error surface.
var (
	ErrNotExist   = errors.New("vfs: no such file or directory")
	ErrExist      = errors.New("vfs: file exists")
	ErrPermission = errors.New("vfs: permission denied")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrBadFlags   = errors.New("vfs: bad open flags")
)

// Open flags.
const (
	ORdonly = 1 << iota
	OWronly
	OCreate
	OTrunc
	OAppend
)

// ORdwr opens for both reading and writing.
const ORdwr = ORdonly | OWronly

// Inode is a file or directory node.
type Inode struct {
	mu       sync.RWMutex
	Type     FileType
	Mode     Mode
	UID      int
	data     []byte
	children map[string]*Inode
	parent   *Inode // nil for a filesystem root
}

// Stat is a snapshot of inode metadata.
type Stat struct {
	Type FileType
	Mode Mode
	UID  int
	Size int
}

// Cred identifies the caller for permission checks. UID 0 is root and
// bypasses permission bits, as on Unix.
type Cred struct {
	UID int
}

// Root is Cred for uid 0.
var Root = Cred{UID: 0}

const (
	permRead  = 4
	permWrite = 2
	permExec  = 1
)

// check verifies that cred may perform the access (a permRead/permWrite/
// permExec bit) on the inode.
func (ino *Inode) check(cred Cred, access Mode) error {
	if cred.UID == 0 {
		return nil
	}
	var bits Mode
	if cred.UID == ino.UID {
		bits = (ino.Mode >> 6) & 7
	} else {
		bits = ino.Mode & 7
	}
	if bits&access != access {
		return ErrPermission
	}
	return nil
}

// StatNow returns a metadata snapshot.
func (ino *Inode) StatNow() Stat {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	return Stat{Type: ino.Type, Mode: ino.Mode, UID: ino.UID, Size: len(ino.data)}
}

// FS is a filesystem instance.
type FS struct {
	root *Inode
}

// New returns a filesystem with an empty root directory owned by root.
func New() *FS {
	return &FS{root: &Inode{Type: TypeDir, Mode: 0o755, children: make(map[string]*Inode)}}
}

// Root returns the filesystem's true root inode, used as the default task
// filesystem root before any chroot.
func (fs *FS) Root() *Inode { return fs.root }

// resolve walks p starting from root, confining ".." beneath root exactly
// as the kernel confines a chrooted process. It returns the final inode.
// Every traversed directory requires search (execute) permission.
func resolve(cred Cred, root *Inode, p string) (*Inode, error) {
	cur := root
	for _, comp := range splitPath(p) {
		cur.mu.RLock()
		if cur.Type != TypeDir {
			cur.mu.RUnlock()
			return nil, ErrNotDir
		}
		if err := cur.check(cred, permExec); err != nil {
			cur.mu.RUnlock()
			return nil, err
		}
		var next *Inode
		switch comp {
		case ".":
			next = cur
		case "..":
			if cur == root || cur.parent == nil {
				next = cur // confined: cannot escape the root
			} else {
				next = cur.parent
			}
		default:
			next = cur.children[comp]
		}
		cur.mu.RUnlock()
		if next == nil {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		cur = next
	}
	return cur, nil
}

// resolveParent resolves the directory containing the final component of p.
func resolveParent(cred Cred, root *Inode, p string) (*Inode, string, error) {
	comps := splitPath(p)
	if len(comps) == 0 {
		return nil, "", ErrExist
	}
	dir, err := resolve(cred, root, strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return nil, "", err
	}
	return dir, comps[len(comps)-1], nil
}

func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// Mkdir creates a directory owned by cred's uid.
func (fs *FS) Mkdir(cred Cred, root *Inode, p string, mode Mode) error {
	dir, name, err := resolveParent(cred, root, p)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.Type != TypeDir {
		return ErrNotDir
	}
	if err := dir.check(cred, permWrite); err != nil {
		return err
	}
	if _, ok := dir.children[name]; ok {
		return ErrExist
	}
	dir.children[name] = &Inode{Type: TypeDir, Mode: mode, UID: cred.UID, children: make(map[string]*Inode), parent: dir}
	return nil
}

// MkdirAll creates p and any missing parents.
func (fs *FS) MkdirAll(cred Cred, root *Inode, p string, mode Mode) error {
	comps := splitPath(p)
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if err := fs.Mkdir(cred, root, cur, mode); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Open opens p relative to root with the given flags, performing Unix-style
// permission checks with cred.
func (fs *FS) Open(cred Cred, root *Inode, p string, flags int, mode Mode) (*File, error) {
	if flags&ORdwr == 0 {
		return nil, ErrBadFlags
	}
	ino, err := resolve(cred, root, p)
	if errors.Is(err, ErrNotExist) && flags&OCreate != 0 {
		dir, name, perr := resolveParent(cred, root, p)
		if perr != nil {
			return nil, perr
		}
		dir.mu.Lock()
		if dir.Type != TypeDir {
			dir.mu.Unlock()
			return nil, ErrNotDir
		}
		if cerr := dir.check(cred, permWrite); cerr != nil {
			dir.mu.Unlock()
			return nil, cerr
		}
		if _, ok := dir.children[name]; !ok {
			dir.children[name] = &Inode{Type: TypeFile, Mode: mode, UID: cred.UID, parent: dir}
		}
		ino = dir.children[name]
		dir.mu.Unlock()
		err = nil
	}
	if err != nil {
		return nil, err
	}
	if ino.Type == TypeDir {
		return nil, ErrIsDir
	}
	if flags&ORdonly != 0 {
		if err := ino.check(cred, permRead); err != nil {
			return nil, err
		}
	}
	if flags&OWronly != 0 {
		if err := ino.check(cred, permWrite); err != nil {
			return nil, err
		}
	}
	f := &File{ino: ino, flags: flags}
	if flags&OTrunc != 0 {
		ino.mu.Lock()
		ino.data = nil
		ino.mu.Unlock()
	}
	if flags&OAppend != 0 {
		f.pos = ino.StatNow().Size
	}
	return f, nil
}

// WriteFile creates (or truncates) p with the given contents and mode.
func (fs *FS) WriteFile(cred Cred, root *Inode, p string, data []byte, mode Mode) error {
	f, err := fs.Open(cred, root, p, OWronly|OCreate|OTrunc, mode)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// ReadFile returns the contents of p.
func (fs *FS) ReadFile(cred Cred, root *Inode, p string) ([]byte, error) {
	f, err := fs.Open(cred, root, p, ORdonly, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// StatPath returns metadata for p.
func (fs *FS) StatPath(cred Cred, root *Inode, p string) (Stat, error) {
	ino, err := resolve(cred, root, p)
	if err != nil {
		return Stat{}, err
	}
	return ino.StatNow(), nil
}

// Lookup resolves p to an inode (used by chroot).
func (fs *FS) Lookup(cred Cred, root *Inode, p string) (*Inode, error) {
	return resolve(cred, root, p)
}

// Readdir lists the names in directory p in sorted order.
func (fs *FS) Readdir(cred Cred, root *Inode, p string) ([]string, error) {
	ino, err := resolve(cred, root, p)
	if err != nil {
		return nil, err
	}
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if ino.Type != TypeDir {
		return nil, ErrNotDir
	}
	if err := ino.check(cred, permRead); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ino.children))
	for name := range ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes the file or empty directory at p.
func (fs *FS) Remove(cred Cred, root *Inode, p string) error {
	dir, name, err := resolveParent(cred, root, p)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	child, ok := dir.children[name]
	if !ok {
		return ErrNotExist
	}
	if err := dir.check(cred, permWrite); err != nil {
		return err
	}
	child.mu.RLock()
	nonEmpty := child.Type == TypeDir && len(child.children) > 0
	child.mu.RUnlock()
	if nonEmpty {
		return errors.New("vfs: directory not empty")
	}
	delete(dir.children, name)
	return nil
}

// Chown changes the owner of p. Only root may do so.
func (fs *FS) Chown(cred Cred, root *Inode, p string, uid int) error {
	if cred.UID != 0 {
		return ErrPermission
	}
	ino, err := resolve(cred, root, p)
	if err != nil {
		return err
	}
	ino.mu.Lock()
	defer ino.mu.Unlock()
	ino.UID = uid
	return nil
}

// Chmod changes the mode of p. Only root or the owner may do so.
func (fs *FS) Chmod(cred Cred, root *Inode, p string, mode Mode) error {
	ino, err := resolve(cred, root, p)
	if err != nil {
		return err
	}
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if cred.UID != 0 && cred.UID != ino.UID {
		return ErrPermission
	}
	ino.Mode = mode
	return nil
}

// File is an open file handle with an offset.
type File struct {
	mu    sync.Mutex
	ino   *Inode
	pos   int
	flags int
}

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flags&ORdonly == 0 {
		return 0, ErrPermission
	}
	f.ino.mu.RLock()
	defer f.ino.mu.RUnlock()
	if f.pos >= len(f.ino.data) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.pos:])
	f.pos += n
	return n, nil
}

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flags&OWronly == 0 {
		return 0, ErrPermission
	}
	f.ino.mu.Lock()
	defer f.ino.mu.Unlock()
	if grow := f.pos + len(p) - len(f.ino.data); grow > 0 {
		f.ino.data = append(f.ino.data, make([]byte, grow)...)
	}
	copy(f.ino.data[f.pos:], p)
	f.pos += len(p)
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = f.ino.StatNow().Size
	default:
		return 0, errors.New("vfs: bad whence")
	}
	np := base + int(offset)
	if np < 0 {
		return 0, errors.New("vfs: negative seek")
	}
	f.pos = np
	return int64(np), nil
}

// Size returns the current file size.
func (f *File) Size() int { return f.ino.StatNow().Size }

// Close releases the handle.
func (f *File) Close() error { return nil }

// Inode exposes the underlying inode, used by the kernel's fd layer.
func (f *File) Inode() *Inode { return f.ino }

// Readable reports whether the handle was opened with read access.
func (f *File) Readable() bool { return f.flags&ORdonly != 0 }

// Writable reports whether the handle was opened with write access.
func (f *File) Writable() bool { return f.flags&OWronly != 0 }
