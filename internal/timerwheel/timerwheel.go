// Package timerwheel is a hashed timer wheel: O(1) schedule and cancel,
// O(per-tick expiry) advance, and no goroutine per timer — the shape a
// serve runtime needs when the number of pending timeouts tracks the
// number of connections rather than the number of cores. A heap-based
// scheme (or one goroutine per time.AfterFunc) pays O(log n) per
// operation and a runtime timer per entry; the wheel pays a fixed array
// of buckets and an intrusive list node per entry, which is what lets
// idle-expiry scale to the conn-table sizes the ROADMAP's
// million-connection soak needs.
//
// The design is the classic hashed wheel (mintmr-style): time is
// quantized into coarse ticks, the buckets form a power-of-two ring, and
// a timer due in d ticks lands in bucket (cur + d) mod N carrying
// rotations = d / N. Each Advance steps the ring by one bucket, fires the
// entries whose rotation count reached zero, and decrements the rest —
// so a timer far in the future is touched only once per full rotation,
// not once per tick.
//
// Precision is deliberately coarse: a timer fires no earlier than its
// deadline, and no later than one tick past it (plus scheduling delay).
// Idle expiry wants exactly this trade — thousands of cheap, sloppy
// timeouts — and callers that need a sharp deadline re-check wall time in
// the callback (which is what serve's idle reaper does: fire, compare
// last-touch, re-arm for the remainder if the flow was active).
//
// The wheel can be driven two ways: Start launches one goroutine that
// Advances on a real-time ticker (one goroutine per wheel, never per
// timer), and Advance can be called directly, which is how the unit
// tests make expiry deterministic.
package timerwheel

import (
	"sync"
	"time"
)

// DefaultBuckets is the ring size used when New is given n <= 0. 256
// buckets at the default tick keep a timer's rotation count at zero for
// any delay under 256 ticks — one list touch per timer, total.
const DefaultBuckets = 256

// Timer is one scheduled callback. The zero value is meaningless; Timers
// come from Wheel.Schedule.
type Timer struct {
	// Intrusive doubly-linked list node: unlink on cancel is O(1) with
	// no search, which is what keeps cancel off the scale curve (every
	// packet that arrives in time cancels or outruns a pending expiry).
	next, prev *Timer
	bucket     int // owning bucket while linked, -1 when not
	rotations  int
	fn         func()
	fired      bool
}

// Wheel is a hashed timer wheel. All methods are safe for concurrent
// use; callbacks run outside the wheel lock (on the Advance caller's
// goroutine, or the Start goroutine), so a callback may freely Schedule
// and Cancel.
type Wheel struct {
	tick time.Duration

	mu      sync.Mutex
	buckets []Timer // sentinel nodes; ring list per bucket
	mask    int
	cur     int
	pending int

	stop chan struct{}
	done chan struct{}
}

// New builds a wheel with the given tick quantum and bucket count
// (rounded up to a power of two; n <= 0 means DefaultBuckets). The tick
// is the wheel's precision floor: a schedule for less than one tick
// still waits one full tick, so it can never fire early.
func New(tick time.Duration, n int) *Wheel {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	if n <= 0 {
		n = DefaultBuckets
	}
	size := 1
	for size < n {
		size <<= 1
	}
	w := &Wheel{tick: tick, buckets: make([]Timer, size), mask: size - 1}
	for i := range w.buckets {
		s := &w.buckets[i]
		s.next, s.prev = s, s
		s.bucket = i
	}
	return w
}

// Tick returns the wheel's quantum.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len reports the number of pending (scheduled, not yet fired or
// cancelled) timers.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// Schedule arms fn to run after at least d. The callback runs on the
// advancing goroutine; long work belongs on the callback's own goroutine.
func (w *Wheel) Schedule(d time.Duration, fn func()) *Timer {
	ticks := int((d + w.tick - 1) / w.tick)
	if ticks < 1 {
		// Never fire within the current tick: the caller asked for "at
		// least d", and the current tick is already partially elapsed.
		ticks = 1
	}
	t := &Timer{fn: fn}
	w.mu.Lock()
	idx := (w.cur + ticks) & w.mask
	// The bucket's first visit comes ((ticks-1) mod size)+1 ticks from
	// now, so the rotation count is floor((ticks-1)/size) — using
	// ticks/size would make any delay that is an exact multiple of the
	// ring size wait one whole extra rotation.
	t.rotations = (ticks - 1) >> w.log2()
	w.linkLocked(t, idx)
	w.mu.Unlock()
	return t
}

// log2 returns log2 of the ring size. mask is size-1 with size a power
// of two, so counting its set bits is the exponent.
func (w *Wheel) log2() int {
	n := 0
	for m := w.mask; m != 0; m >>= 1 {
		n++
	}
	return n
}

// linkLocked appends t to bucket idx.
func (w *Wheel) linkLocked(t *Timer, idx int) {
	s := &w.buckets[idx]
	t.bucket = idx
	t.prev = s.prev
	t.next = s
	s.prev.next = t
	s.prev = t
	w.pending++
}

// unlinkLocked removes t from its bucket.
func (w *Wheel) unlinkLocked(t *Timer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev = nil, nil
	t.bucket = -1
	w.pending--
}

// Cancel disarms the timer. It reports whether the timer was still
// pending: false means the callback already ran (or began running) or
// the timer was cancelled before. Cancel never blocks on the callback.
func (t *Timer) Cancel(w *Wheel) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.fired || t.bucket < 0 {
		return false
	}
	w.unlinkLocked(t)
	return true
}

// Advance steps the wheel by n ticks, firing every timer that comes due.
// Callbacks run after the due list is collected, outside the wheel lock,
// in bucket order.
func (w *Wheel) Advance(n int) {
	for i := 0; i < n; i++ {
		w.advanceOne()
	}
}

func (w *Wheel) advanceOne() {
	var due []*Timer
	w.mu.Lock()
	w.cur = (w.cur + 1) & w.mask
	s := &w.buckets[w.cur]
	for t := s.next; t != s; {
		next := t.next
		if t.rotations > 0 {
			t.rotations--
		} else {
			w.unlinkLocked(t)
			t.fired = true
			due = append(due, t)
		}
		t = next
	}
	w.mu.Unlock()
	for _, t := range due {
		t.fn()
	}
}

// Start drives the wheel from a real-time ticker on one goroutine (for
// the whole wheel, regardless of how many timers it carries). Calling
// Start twice without Stop panics — two drivers would double the wheel's
// clock rate.
func (w *Wheel) Start() {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		panic("timerwheel: Start called twice")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.stop, w.done = stop, done
	w.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(w.tick)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.advanceOne()
			}
		}
	}()
}

// Stop halts the Start goroutine and waits for it to exit (any callback
// it was running completes first). Pending timers stay scheduled; a
// later Start resumes them. Stop without Start is a no-op.
func (w *Wheel) Stop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
