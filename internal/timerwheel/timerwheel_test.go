package timerwheel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tick is the quantum used by the manual-Advance tests. Its absolute
// value is irrelevant there: Advance counts ticks, not wall time.
const tick = time.Millisecond

// TestFireOrder schedules timers at staggered delays and checks each
// fires on exactly its due tick — never early, never a tick late.
func TestFireOrder(t *testing.T) {
	w := New(tick, 8)
	var fired []int
	for _, d := range []int{3, 1, 5, 1} {
		d := d
		w.Schedule(time.Duration(d)*tick, func() { fired = append(fired, d) })
	}
	if got := w.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	w.Advance(1)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 1 {
		t.Fatalf("after tick 1: fired = %v, want [1 1]", fired)
	}
	w.Advance(1)
	if len(fired) != 2 {
		t.Fatalf("after tick 2: fired = %v, want still [1 1]", fired)
	}
	w.Advance(1)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("after tick 3: fired = %v, want [1 1 3]", fired)
	}
	w.Advance(2)
	if len(fired) != 4 || fired[3] != 5 {
		t.Fatalf("after tick 5: fired = %v, want [1 1 3 5]", fired)
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len after all fired = %d, want 0", got)
	}
}

// TestSubTickDelayRoundsUp: a delay shorter than one tick (including
// zero) still waits a full tick — the wheel never fires early.
func TestSubTickDelayRoundsUp(t *testing.T) {
	w := New(tick, 8)
	n := 0
	w.Schedule(0, func() { n++ })
	w.Schedule(tick/2, func() { n++ })
	if n != 0 {
		t.Fatalf("fired at schedule time")
	}
	w.Advance(1)
	if n != 2 {
		t.Fatalf("after one tick: n = %d, want 2", n)
	}
}

// TestRotationWrap covers delays beyond one ring rotation, including the
// exact-multiple-of-ring-size boundary where a naive ticks/size rotation
// count waits one whole extra rotation.
func TestRotationWrap(t *testing.T) {
	const size = 8
	w := New(tick, size)
	for _, ticks := range []int{size - 1, size, size + 1, 2 * size, 3*size + 2} {
		ticks := ticks
		fired := false
		w.Schedule(time.Duration(ticks)*tick, func() { fired = true })
		w.Advance(ticks - 1)
		if fired {
			t.Fatalf("d=%d ticks: fired a tick early", ticks)
		}
		w.Advance(1)
		if !fired {
			t.Fatalf("d=%d ticks: not fired on due tick", ticks)
		}
	}
}

// TestCancel: cancel before firing suppresses the callback and reports
// true; cancel after firing (or double cancel) reports false.
func TestCancel(t *testing.T) {
	w := New(tick, 8)
	n := 0
	tm := w.Schedule(2*tick, func() { n++ })
	if !tm.Cancel(w) {
		t.Fatalf("first Cancel = false, want true")
	}
	if tm.Cancel(w) {
		t.Fatalf("second Cancel = true, want false")
	}
	w.Advance(4)
	if n != 0 {
		t.Fatalf("cancelled timer fired")
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}

	tm2 := w.Schedule(tick, func() { n++ })
	w.Advance(1)
	if n != 1 {
		t.Fatalf("timer did not fire")
	}
	if tm2.Cancel(w) {
		t.Fatalf("Cancel after fire = true, want false")
	}
}

// TestRescheduleFromCallback: a callback may schedule follow-up timers
// on the same wheel (expiry re-arming relies on this), and the follow-up
// keeps its own full delay.
func TestRescheduleFromCallback(t *testing.T) {
	w := New(tick, 8)
	var seq []string
	w.Schedule(tick, func() {
		seq = append(seq, "first")
		w.Schedule(2*tick, func() { seq = append(seq, "second") })
	})
	w.Advance(2)
	if len(seq) != 1 || seq[0] != "first" {
		t.Fatalf("after 2 ticks: seq = %v, want [first]", seq)
	}
	w.Advance(1)
	if len(seq) != 2 || seq[1] != "second" {
		t.Fatalf("after 3 ticks: seq = %v, want [first second]", seq)
	}
}

// TestCancelFromCallback: one due timer's callback cancelling another
// not-yet-due timer must take effect (the due list is collected before
// callbacks run, but only for the current bucket).
func TestCancelFromCallback(t *testing.T) {
	w := New(tick, 8)
	n := 0
	victim := w.Schedule(3*tick, func() { n++ })
	w.Schedule(tick, func() { victim.Cancel(w) })
	w.Advance(5)
	if n != 0 {
		t.Fatalf("cancelled-from-callback timer fired")
	}
}

// TestBucketRounding: a non-power-of-two bucket request rounds up and
// the wheel still fires at the requested delay.
func TestBucketRounding(t *testing.T) {
	w := New(tick, 5) // rounds to 8
	fired := false
	w.Schedule(6*tick, func() { fired = true })
	w.Advance(5)
	if fired {
		t.Fatalf("fired early")
	}
	w.Advance(1)
	if !fired {
		t.Fatalf("not fired at due tick")
	}
}

// TestStartStop drives the wheel from the real-time ticker: a short
// timer fires without any Advance call, and Stop is idempotent and
// leaves pending timers scheduled.
func TestStartStop(t *testing.T) {
	w := New(2*time.Millisecond, 8)
	var fired atomic.Int32
	w.Schedule(4*time.Millisecond, func() { fired.Add(1) })
	w.Start()
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker-driven timer never fired")
		}
		time.Sleep(time.Millisecond)
	}
	w.Schedule(time.Hour, func() { fired.Add(1) })
	w.Stop()
	w.Stop() // idempotent
	if got := w.Len(); got != 1 {
		t.Fatalf("Len after Stop = %d, want 1 (pending timer survives)", got)
	}
}

// TestStartTwicePanics: double Start would double the wheel's clock.
func TestStartTwicePanics(t *testing.T) {
	w := New(time.Hour, 8)
	w.Start()
	defer w.Stop()
	defer func() {
		if recover() == nil {
			t.Fatalf("second Start did not panic")
		}
	}()
	w.Start()
}

// TestConcurrent hammers Schedule/Cancel/Advance from many goroutines;
// run under -race this is the wheel's race test. Every timer must either
// fire exactly once or be cancelled exactly once, and the wheel must end
// empty after a full drain.
func TestConcurrent(t *testing.T) {
	const (
		workers    = 8
		perWorker  = 200
		maxDelayTk = 64
	)
	w := New(tick, 16)
	var fired, cancelled atomic.Int64
	var wg sync.WaitGroup
	stopAdv := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopAdv:
				return
			default:
				w.Advance(1)
			}
		}
	}()
	var sched sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		sched.Add(1)
		go func() {
			defer sched.Done()
			for j := 0; j < perWorker; j++ {
				d := time.Duration(1+(i*perWorker+j)%maxDelayTk) * tick
				tm := w.Schedule(d, func() { fired.Add(1) })
				if j%3 == 0 {
					if tm.Cancel(w) {
						cancelled.Add(1)
					}
				}
			}
		}()
	}
	sched.Wait()
	// Drain: keep advancing until everything pending has fired.
	deadline := time.Now().Add(10 * time.Second)
	for w.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wheel did not drain: Len = %d", w.Len())
		}
		time.Sleep(time.Millisecond)
	}
	close(stopAdv)
	wg.Wait()
	total := fired.Load() + cancelled.Load()
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("fired %d + cancelled %d = %d, want %d (every timer exactly once)",
			fired.Load(), cancelled.Load(), total, want)
	}
}
