package kernel

import (
	"errors"
	"sync/atomic"
	"testing"
)

// countingFile tracks Close calls, to pin down open-file-description
// refcounting semantics.
type countingFile struct {
	closed atomic.Int32
}

func (f *countingFile) Read(p []byte) (int, error)  { return 0, errors.New("eof") }
func (f *countingFile) Write(p []byte) (int, error) { return len(p), nil }
func (f *countingFile) Close() error                { f.closed.Add(1); return nil }

func TestFDCloseOnlyOnLastRef(t *testing.T) {
	k := New()
	parent := k.NewInitTask()
	f := &countingFile{}
	fd := parent.InstallFD(f, FDRW)

	child, err := parent.Fork(func(tk *Task) {})
	if err != nil {
		t.Fatal(err)
	}
	child.Wait() // child exit drops its reference
	if f.closed.Load() != 0 {
		t.Fatal("child exit closed the parent's file")
	}
	if err := parent.CloseFD(fd); err != nil {
		t.Fatal(err)
	}
	if f.closed.Load() != 1 {
		t.Fatalf("close count = %d, want 1", f.closed.Load())
	}
}

func TestShareFDToSemantics(t *testing.T) {
	k := New()
	parent := k.NewInitTask()
	f := &countingFile{}
	fd := parent.InstallFD(f, FDRW)
	target := k.newTask(parent, parent.AS.CloneCOW(), false)

	// Escalation beyond the holder's mode is refused.
	if err := parent.ShareFDTo(target, 99, FDRead); !errors.Is(err, ErrBadFD) {
		t.Fatalf("sharing unknown fd: %v", err)
	}

	if err := parent.ShareFDTo(target, fd, FDRead); err != nil {
		t.Fatal(err)
	}
	// The target holds it read-only.
	if _, err := target.WriteFD(fd, []byte("x")); !errors.Is(err, ErrPermission) {
		t.Fatalf("write through read grant: %v", err)
	}
	// Target's exit must not close the parent's description.
	target.Run(func(*Task) {})
	if f.closed.Load() != 0 {
		t.Fatal("target exit closed the shared file")
	}
	parent.CloseFD(fd)
	if f.closed.Load() != 1 {
		t.Fatalf("close count = %d", f.closed.Load())
	}
}

func TestShareFDModeSubset(t *testing.T) {
	k := New()
	parent := k.NewInitTask()
	f := &countingFile{}
	fd := parent.InstallFD(f, FDRead)
	target := k.newTask(parent, parent.AS.CloneCOW(), false)
	if err := parent.ShareFDTo(target, fd, FDRW); !errors.Is(err, ErrPermission) {
		t.Fatalf("escalating share: %v", err)
	}
}

func TestInstallFDAtReplacesAndReleases(t *testing.T) {
	k := New()
	task := k.NewInitTask()
	f1 := &countingFile{}
	f2 := &countingFile{}
	task.InstallFDAt(5, f1, FDRW)
	task.InstallFDAt(5, f2, FDRW) // replaces f1
	if f1.closed.Load() != 1 {
		t.Fatal("replaced file not released")
	}
	if f2.closed.Load() != 0 {
		t.Fatal("new file spuriously closed")
	}
}

func TestPthreadSharesDescriptions(t *testing.T) {
	k := New()
	parent := k.NewInitTask()
	f := &countingFile{}
	fd := parent.InstallFD(f, FDRW)
	th, err := parent.SpawnPthread(func(tk *Task) {
		if _, err := tk.WriteFD(fd, []byte("hello")); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	th.Wait()
	if f.closed.Load() != 0 {
		t.Fatal("pthread exit closed the shared file")
	}
}
