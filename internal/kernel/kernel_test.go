package kernel

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"wedge/internal/selinux"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

func bootUnconfined(t *testing.T) (*Kernel, *Task) {
	t.Helper()
	k := New()
	init := k.NewInitTask()
	return k, init
}

func TestForkCOWInheritance(t *testing.T) {
	_, init := bootUnconfined(t)
	base, err := init.Mmap(vm.PageSize, vm.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("parent secret")
	if err := init.AS.Write(base, secret); err != nil {
		t.Fatal(err)
	}
	leak := make(chan string, 1)
	child, err := init.Fork(func(c *Task) {
		// The child can read everything the parent had — this implicit
		// privilege grant is what motivates Wedge (§1).
		buf := make([]byte, len(secret))
		if err := c.AS.Read(base, buf); err != nil {
			leak <- "fault"
			return
		}
		leak <- string(buf)
		// And child writes don't corrupt the parent.
		c.AS.Write(base, []byte("child scribble"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := <-leak; got != string(secret) {
		t.Fatalf("fork child read %q", got)
	}
	if _, err := child.Wait(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if err := init.AS.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatalf("parent memory corrupted: %q", got)
	}
}

func TestForkCopiesFDTable(t *testing.T) {
	k, init := bootUnconfined(t)
	if err := k.FS.WriteFile(vfs.Root, k.FS.Root(), "/f", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	fd, err := init.Open("/f", vfs.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	child, _ := init.Fork(func(c *Task) {
		buf := make([]byte, 4)
		_, err := c.ReadFD(fd, buf)
		got <- err
		// Child close must not close the parent's descriptor.
		c.CloseFD(fd)
	})
	if err := <-got; err != nil {
		t.Fatalf("child read of inherited fd: %v", err)
	}
	child.Wait()
	buf := make([]byte, 4)
	if _, err := init.ReadFD(fd, buf); err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("parent fd after child close: %v", err)
	}
}

func TestPthreadSharesMemory(t *testing.T) {
	_, init := bootUnconfined(t)
	base, _ := init.Mmap(vm.PageSize, vm.PermRW)
	th, err := init.SpawnPthread(func(c *Task) {
		c.AS.Store32(base, 777)
	})
	if err != nil {
		t.Fatal(err)
	}
	th.Wait()
	v, err := init.AS.Load32(base)
	if err != nil || v != 777 {
		t.Fatalf("Load32 = %d, %v", v, err)
	}
}

func TestSpawnTaskDefaultDeny(t *testing.T) {
	_, init := bootUnconfined(t)
	base, _ := init.Mmap(vm.PageSize, vm.PermRW)
	init.AS.Write(base, []byte("sensitive"))

	// A task spawned with a fresh address space sees nothing.
	faulted := make(chan bool, 1)
	child, err := init.SpawnTask(vm.NewAddressSpace(), func(c *Task) {
		err := c.AS.Read(base, make([]byte, 9))
		var f *vm.Fault
		faulted <- errors.As(err, &f)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !<-faulted {
		t.Fatal("fresh task could read parent memory")
	}
	child.Wait()
}

func TestTaskFaultDeath(t *testing.T) {
	_, init := bootUnconfined(t)
	child, err := init.SpawnTask(vm.NewAddressSpace(), func(c *Task) {
		// Simulated code that dereferences unmapped memory panics with the
		// fault, which the task runner converts to death-by-SIGSEGV.
		if err := c.AS.Read(0x4000, make([]byte, 1)); err != nil {
			panic(err.(*vm.Fault))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	status, ferr := child.Wait()
	if status != 139 {
		t.Fatalf("status = %d, want 139", status)
	}
	var f *vm.Fault
	if !errors.As(ferr, &f) {
		t.Fatalf("want fault, got %v", ferr)
	}
}

func TestExitStatus(t *testing.T) {
	_, init := bootUnconfined(t)
	child, _ := init.SpawnTask(vm.NewAddressSpace(), func(c *Task) {
		c.Exit(42)
	})
	status, err := child.Wait()
	if err != nil || status != 42 {
		t.Fatalf("Wait = %d, %v", status, err)
	}
	if s, _ := child.Status(); s != 42 {
		t.Fatalf("Status = %d", s)
	}
}

func TestStatusWhileRunning(t *testing.T) {
	_, init := bootUnconfined(t)
	block := make(chan struct{})
	child, _ := init.SpawnTask(vm.NewAddressSpace(), func(c *Task) { <-block })
	if _, err := child.Status(); err == nil {
		t.Fatal("Status of running task should error")
	}
	close(block)
	child.Wait()
}

func TestSetUIDRules(t *testing.T) {
	_, init := bootUnconfined(t)
	if err := init.SetUID(1000); err != nil {
		t.Fatal(err)
	}
	if err := init.SetUID(0); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-root setuid(0): %v", err)
	}
}

func TestChrootAndConfinement(t *testing.T) {
	k, init := bootUnconfined(t)
	if err := k.FS.MkdirAll(vfs.Root, k.FS.Root(), "/jail", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile(vfs.Root, k.FS.Root(), "/secret", []byte("top"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := init.Chroot("/jail"); err != nil {
		t.Fatal(err)
	}
	if _, err := init.Open("/secret", vfs.ORdonly, 0); err == nil {
		t.Fatal("chrooted task opened host file")
	}
	if _, err := init.Open("/../secret", vfs.ORdonly, 0); err == nil {
		t.Fatal("chrooted task escaped via ..")
	}
	// Non-root cannot chroot.
	init.SetUID(1000)
	if err := init.Chroot("/"); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-root chroot: %v", err)
	}
}

func TestFDPermissions(t *testing.T) {
	k, init := bootUnconfined(t)
	if err := k.FS.WriteFile(vfs.Root, k.FS.Root(), "/f", []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := k.FS.Open(vfs.Root, k.FS.Root(), "/f", vfs.ORdwr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Install with read-only grant despite the file being open rdwr: the
	// fd-grant mode is what Wedge policies control (§3.1).
	fd := init.InstallFD(f, FDRead)
	if _, err := init.ReadFD(fd, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := init.WriteFD(fd, []byte("x")); !errors.Is(err, ErrPermission) {
		t.Fatalf("write on read-only fd grant: %v", err)
	}
	if perm, ok := init.FDEntryPerm(fd); !ok || perm != FDRead {
		t.Fatalf("FDEntryPerm = %v, %v", perm, ok)
	}
}

func TestBadFD(t *testing.T) {
	_, init := bootUnconfined(t)
	if _, err := init.ReadFD(99, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read bad fd: %v", err)
	}
	if err := init.CloseFD(99); !errors.Is(err, ErrBadFD) {
		t.Fatalf("close bad fd: %v", err)
	}
}

func TestSELinuxConfinement(t *testing.T) {
	k, init := bootUnconfined(t)
	k.Policy.Allow("worker_t", selinux.ClassSocket, "connect")
	worker := selinux.MustParseContext("sys:r:worker_t")
	if err := init.SetContext(worker); err != nil {
		t.Fatal(err)
	}
	// fork is not in the policy for worker_t.
	if _, err := init.Fork(func(*Task) {}); err == nil {
		t.Fatal("confined task forked without permission")
	}
	// mmap neither.
	if _, err := init.Mmap(vm.PageSize, vm.PermRW); err == nil {
		t.Fatal("confined task mmapped without permission")
	}
}

func TestSELinuxTransitionEnforced(t *testing.T) {
	k, init := bootUnconfined(t)
	k.Policy.AllowAll("master_t")
	k.Policy.AllowAll("worker_t")
	master := selinux.MustParseContext("sys:r:master_t")
	worker := selinux.MustParseContext("sys:r:worker_t")
	if err := init.SetContext(master); err != nil {
		t.Fatal(err)
	}
	if err := init.SetContext(worker); err == nil {
		t.Fatal("transition without policy rule succeeded")
	}
	k.Policy.AllowTransition("master_t", "worker_t")
	if err := init.SetContext(worker); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkSyscalls(t *testing.T) {
	_, init := bootUnconfined(t)
	l, err := init.Listen("echo:7")
	if err != nil {
		t.Fatal(err)
	}
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		fd, err := init.Accept(l, FDRW)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 4)
		init.ReadFD(fd, buf)
		init.WriteFD(fd, buf)
		init.CloseFD(fd)
	}()
	fd, err := init.Dial("echo:7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := init.WriteFD(fd, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := init.ReadFD(fd, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo got %q", buf)
	}
	<-srvDone
}

func TestFutexWakeup(t *testing.T) {
	_, init := bootUnconfined(t)
	base, _ := init.Mmap(vm.PageSize, vm.PermRW)

	var woken atomic.Int32
	waiterDone := make(chan struct{})
	waiter, _ := init.SpawnPthread(func(c *Task) {
		// Either outcome is FUTEX_WAIT-correct: we block and get woken,
		// or the word has already been flipped and we return ErrAgain
		// immediately.
		err := c.FutexWaitVal(base, 0)
		if err != nil && !errors.Is(err, ErrAgain) {
			t.Errorf("futex wait: %v", err)
		}
		woken.Store(1)
		close(waiterDone)
	})
	init.AS.Store32(base, 1)
	// Wake until the waiter has observed the flip, whichever path it
	// took; FutexWake returns 0 while no one is parked.
	for woken.Load() == 0 {
		if _, err := init.FutexWake(base, 1); err != nil {
			t.Fatal(err)
		}
	}
	<-waiterDone
	waiter.Wait()
	if woken.Load() != 1 {
		t.Fatal("waiter never completed")
	}
}

func TestFutexValueMismatch(t *testing.T) {
	_, init := bootUnconfined(t)
	base, _ := init.Mmap(vm.PageSize, vm.PermRW)
	init.AS.Store32(base, 5)
	if err := init.FutexWaitVal(base, 0); !errors.Is(err, ErrAgain) {
		t.Fatalf("futex wait on changed value: %v", err)
	}
}

func TestFutexCrossAddressSpace(t *testing.T) {
	_, init := bootUnconfined(t)
	base, _ := init.Mmap(vm.PageSize, vm.PermRW)

	// Child task with only this page shared (like a recycled callgate's
	// argument area).
	childAS := vm.NewAddressSpace()
	if err := init.AS.ShareInto(childAS, base, vm.PageSize, vm.PermRW); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	child, _ := init.SpawnTask(childAS, func(c *Task) {
		done <- c.FutexWaitVal(base, 0)
	})
	// Wake from the parent's address space: keyed on the frame, so the
	// cross-AS wake must be delivered.
	for {
		n, err := init.FutexWake(base, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	child.Wait()
}

func TestKillInterruptsFutex(t *testing.T) {
	_, init := bootUnconfined(t)
	base, _ := init.Mmap(vm.PageSize, vm.PermRW)
	done := make(chan error, 1)
	child, _ := init.SpawnPthread(func(c *Task) {
		done <- c.FutexWaitVal(base, 0)
	})
	child.Kill()
	if err := <-done; !errors.Is(err, ErrKilled) {
		t.Fatalf("killed futex waiter got %v", err)
	}
	child.Wait()
}

func TestTaskTableCleanup(t *testing.T) {
	k, init := bootUnconfined(t)
	before := k.TaskCount()
	var kids []*Task
	for i := 0; i < 10; i++ {
		c, err := init.SpawnTask(vm.NewAddressSpace(), func(c *Task) {})
		if err != nil {
			t.Fatal(err)
		}
		kids = append(kids, c)
	}
	for _, c := range kids {
		c.Wait()
	}
	if after := k.TaskCount(); after != before {
		t.Fatalf("task leak: %d -> %d", before, after)
	}
}

func TestExitClosesFDs(t *testing.T) {
	k, init := bootUnconfined(t)
	if err := k.FS.WriteFile(vfs.Root, k.FS.Root(), "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	child, _ := init.SpawnTask(vm.NewAddressSpace(), func(c *Task) {
		if _, err := c.Open("/f", vfs.ORdonly, 0); err != nil {
			t.Errorf("open: %v", err)
		}
	})
	child.Wait()
	if child.FDCount() != 0 {
		t.Fatalf("fds leaked: %d", child.FDCount())
	}
}
