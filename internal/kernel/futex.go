package kernel

import (
	"fmt"

	"wedge/internal/vm"
)

// Futexes are keyed by physical location (frame id + offset) rather than
// virtual address, so that two tasks sharing a tagged-memory page can wait
// and wake each other even when the mapping appears at different points in
// their policies. Recycled callgates are built on exactly this mechanism
// (§4.1): "one copies arguments to memory shared between the caller and
// underlying sthread, wakes the sthread through a futex, and waits on a
// futex for the sthread to indicate completion."
type futexKey struct {
	frame uint64
	off   uint64
}

func (t *Task) futexKeyFor(addr vm.Addr) (futexKey, error) {
	pte, ok := t.AS.Lookup(addr)
	if !ok {
		return futexKey{}, &vm.Fault{Addr: addr, Access: vm.AccessRead, Mapped: false}
	}
	return futexKey{frame: pte.Frame.ID, off: addr.PageOff()}, nil
}

// FutexWait atomically checks that the 32-bit word at addr still holds val
// and, if so, blocks until woken. If the word has changed it returns
// ErrAgain immediately, mirroring FUTEX_WAIT semantics.
func (t *Task) FutexWait(addr vm.Addr) error {
	return t.FutexWaitVal(addr, 0)
}

// FutexWaitVal is FutexWait with an explicit expected value.
func (t *Task) FutexWaitVal(addr vm.Addr, val uint32) error {
	k := t.k
	key, err := t.futexKeyFor(addr)
	if err != nil {
		return err
	}
	k.futexMu.Lock()
	cur, err := t.AS.Load32(addr)
	if err != nil {
		k.futexMu.Unlock()
		return err
	}
	if cur != val {
		k.futexMu.Unlock()
		return fmt.Errorf("%w: futex value %d != expected %d", ErrAgain, cur, val)
	}
	ch := make(chan struct{})
	k.futexes[key] = append(k.futexes[key], ch)
	k.futexMu.Unlock()

	select {
	case <-ch:
		return nil
	case <-t.killed:
		// Remove our waiter so a later wake isn't lost on a dead task.
		k.futexMu.Lock()
		q := k.futexes[key]
		for i, w := range q {
			if w == ch {
				k.futexes[key] = append(q[:i], q[i+1:]...)
				break
			}
		}
		k.futexMu.Unlock()
		return ErrKilled
	}
}

// FutexWake wakes up to n waiters on the word at addr, returning how many
// were woken.
func (t *Task) FutexWake(addr vm.Addr, n int) (int, error) {
	k := t.k
	key, err := t.futexKeyFor(addr)
	if err != nil {
		return 0, err
	}
	k.futexMu.Lock()
	defer k.futexMu.Unlock()
	q := k.futexes[key]
	woken := 0
	for woken < n && len(q) > 0 {
		close(q[0])
		q = q[1:]
		woken++
	}
	if len(q) == 0 {
		delete(k.futexes, key)
	} else {
		k.futexes[key] = q
	}
	return woken, nil
}
