package kernel

import (
	"fmt"

	"wedge/internal/vm"
)

// Futexes are keyed by physical location (frame id + offset) rather than
// virtual address, so that two tasks sharing a tagged-memory page can wait
// and wake each other even when the mapping appears at different points in
// their policies. Recycled callgates are built on exactly this mechanism
// (§4.1): "one copies arguments to memory shared between the caller and
// underlying sthread, wakes the sthread through a futex, and waits on a
// futex for the sthread to indicate completion."
type futexKey struct {
	frame uint64
	off   uint64
}

func (t *Task) futexKeyFor(addr vm.Addr) (futexKey, error) {
	pte, ok := t.AS.Lookup(addr)
	if !ok {
		return futexKey{}, &vm.Fault{Addr: addr, Access: vm.AccessRead, Mapped: false}
	}
	return futexKey{frame: pte.Frame.ID, off: addr.PageOff()}, nil
}

// FutexWait atomically checks that the 32-bit word at addr still holds val
// and, if so, blocks until woken. If the word has changed it returns
// ErrAgain immediately, mirroring FUTEX_WAIT semantics.
func (t *Task) FutexWait(addr vm.Addr) error {
	return t.FutexWaitVal(addr, 0)
}

// FutexWaitVal is FutexWait with an explicit expected value.
func (t *Task) FutexWaitVal(addr vm.Addr, val uint32) error {
	return t.FutexWaitAbort(addr, val, nil)
}

// FutexWaitAbort is FutexWaitVal with an abort channel: the wait also ends
// (without error) when abort is closed. Callers waiting on a peer task —
// a recycled callgate's completion counter, say — pass the peer's Done
// channel, so the peer dying between the caller's liveness check and the
// sleep cannot strand the caller forever. Linux covers the same gap with
// robust futexes.
func (t *Task) FutexWaitAbort(addr vm.Addr, val uint32, abort <-chan struct{}) error {
	k := t.k
	key, err := t.futexKeyFor(addr)
	if err != nil {
		return err
	}
	k.futexMu.Lock()
	cur, err := t.AS.Load32(addr)
	if err != nil {
		k.futexMu.Unlock()
		return err
	}
	if cur != val {
		k.futexMu.Unlock()
		return fmt.Errorf("%w: futex value %d != expected %d", ErrAgain, cur, val)
	}
	ch := make(chan struct{})
	k.futexes[key] = append(k.futexes[key], ch)
	k.futexMu.Unlock()

	dequeue := func() {
		// Remove our waiter so a later wake isn't lost on a dead waiter.
		k.futexMu.Lock()
		q := k.futexes[key]
		for i, w := range q {
			if w == ch {
				k.futexes[key] = append(q[:i], q[i+1:]...)
				break
			}
		}
		k.futexMu.Unlock()
	}
	select {
	case <-ch:
		return nil
	case <-abort:
		dequeue()
		return nil
	case <-t.killed:
		dequeue()
		return ErrKilled
	}
}

// FutexWake wakes up to n waiters on the word at addr, returning how many
// were woken.
func (t *Task) FutexWake(addr vm.Addr, n int) (int, error) {
	k := t.k
	key, err := t.futexKeyFor(addr)
	if err != nil {
		return 0, err
	}
	k.futexMu.Lock()
	defer k.futexMu.Unlock()
	q := k.futexes[key]
	woken := 0
	for woken < n && len(q) > 0 {
		close(q[0])
		q = q[1:]
		woken++
	}
	if len(q) == 0 {
		delete(k.futexes, key)
	} else {
		k.futexes[key] = q
	}
	return woken, nil
}

// AtomicLoad64 and AtomicStore64 access a 64-bit word under the kernel's
// futex lock. Userland synchronization protocols (the recycled-callgate
// generation/completion/stop words) use them where real code would use
// atomic instructions: two tasks spinning on a shared word must not race
// at the memory-model level, and ordering the accesses with the futex
// value checks closes the sleep/wake gap.
func (t *Task) AtomicLoad64(addr vm.Addr) (uint64, error) {
	t.k.futexMu.Lock()
	defer t.k.futexMu.Unlock()
	return t.AS.Load64(addr)
}

// AtomicStore64 is the store half of AtomicLoad64.
func (t *Task) AtomicStore64(addr vm.Addr, v uint64) error {
	t.k.futexMu.Lock()
	defer t.k.futexMu.Unlock()
	return t.AS.Store64(addr, v)
}
