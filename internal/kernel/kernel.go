// Package kernel implements the simulated operating-system layer beneath
// the Wedge primitives: tasks (processes and pthread-style threads), file
// descriptor tables, user ids and per-task filesystem roots, SELinux checks
// on system calls, futexes, and fork with copy-on-write address spaces.
//
// The package corresponds to the stock Linux 2.6.19 process machinery that
// the paper's kernel patch extends. The sthread package builds sthreads and
// callgates on top of the Task abstraction defined here, exactly as the
// paper implements sthreads "as a variant of Linux processes" (§4.1).
package kernel

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"wedge/internal/netsim"
	"wedge/internal/selinux"
	"wedge/internal/vfs"
	"wedge/internal/vm"
)

// Common kernel errors.
var (
	ErrBadFD      = errors.New("kernel: bad file descriptor")
	ErrPermission = errors.New("kernel: operation not permitted")
	ErrAgain      = errors.New("kernel: try again") // futex value mismatch
	ErrKilled     = errors.New("kernel: task killed")
)

// Kernel is one simulated machine: a filesystem, a network interface, an
// SELinux policy, and a task table.
type Kernel struct {
	FS     *vfs.FS
	Net    *netsim.Network
	Policy *selinux.Policy

	mu      sync.Mutex
	nextPID int
	tasks   map[int]*Task

	futexMu sync.Mutex
	futexes map[futexKey][]chan struct{}
}

// New boots a simulated machine with an empty filesystem and network and a
// deny-by-default SELinux policy.
func New() *Kernel {
	return &Kernel{
		FS:      vfs.New(),
		Net:     netsim.New(),
		Policy:  selinux.NewPolicy(),
		tasks:   make(map[int]*Task),
		futexes: make(map[futexKey][]chan struct{}),
	}
}

// TaskCount returns the number of live tasks (for leak tests).
func (k *Kernel) TaskCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.tasks)
}

// FileLike is anything installable in a file descriptor table. Both
// vfs.File and netsim.Conn satisfy it.
type FileLike interface {
	io.Reader
	io.Writer
	Close() error
}

// FDPerm restricts what a task may do with a file descriptor. Wedge
// security policies grant descriptors to sthreads with these modes (§3.1).
type FDPerm uint8

const (
	// FDRead permits reads.
	FDRead FDPerm = 1 << iota
	// FDWrite permits writes.
	FDWrite
)

// FDRW permits both.
const FDRW = FDRead | FDWrite

func (p FDPerm) String() string {
	switch p {
	case FDRead:
		return "r"
	case FDWrite:
		return "w"
	case FDRW:
		return "rw"
	}
	return "-"
}

// openFile is an open file description shared by every descriptor that
// refers to it (across fork, pthread spawn, and sthread grants). The
// underlying file closes only when the last referencing descriptor goes
// away, matching POSIX semantics: a child sthread exiting must not yank a
// connection out from under its parent (§4.1: "closing a file descriptor,
// and exiting do not affect the parent").
type openFile struct {
	file FileLike
	refs atomic.Int32
}

func newOpenFile(f FileLike) *openFile {
	of := &openFile{file: f}
	of.refs.Store(1)
	return of
}

func (of *openFile) ref() { of.refs.Add(1) }

func (of *openFile) unref() error {
	if of.refs.Add(-1) == 0 {
		return of.file.Close()
	}
	return nil
}

// fdEntry is one slot in a task's descriptor table.
type fdEntry struct {
	of   *openFile
	perm FDPerm
}

// TaskState tracks a task through its lifecycle.
type TaskState int

const (
	// TaskRunning means the task's function is executing.
	TaskRunning TaskState = iota
	// TaskExited means the task ended (normally or by fault).
	TaskExited
)

// Task is a simulated kernel task: a thread of control plus credentials,
// an address space (private, or shared for pthread-style threads), and a
// descriptor table.
type Task struct {
	K   *Task // unused; reserved
	k   *Kernel
	PID int

	AS       *vm.AddressSpace
	sharedAS bool

	mu     sync.Mutex
	fds    map[int]*fdEntry
	nextFD int

	UID  int
	Root *vfs.Inode
	Ctx  selinux.Context

	parent *Task

	done     chan struct{}
	exitOnce sync.Once
	status   int
	fault    error // non-nil if the task died on a protection fault

	killed chan struct{}
}

// NewInitTask creates the first task: pid 1, uid 0, the filesystem's true
// root, unconfined SELinux context, and an empty address space.
func (k *Kernel) NewInitTask() *Task {
	return k.newTask(nil, vm.NewAddressSpace(), false)
}

func (k *Kernel) newTask(parent *Task, as *vm.AddressSpace, shared bool) *Task {
	k.mu.Lock()
	k.nextPID++
	t := &Task{
		k:        k,
		PID:      k.nextPID,
		AS:       as,
		sharedAS: shared,
		fds:      make(map[int]*fdEntry),
		Root:     k.FS.Root(),
		done:     make(chan struct{}),
		killed:   make(chan struct{}),
		parent:   parent,
	}
	if parent != nil {
		t.UID = parent.UID
		t.Root = parent.Root
		t.Ctx = parent.Ctx
	}
	k.tasks[t.PID] = t
	k.mu.Unlock()
	return t
}

// Kernel returns the kernel this task belongs to.
func (t *Task) Kernel() *Kernel { return t.k }

// Cred returns the task's vfs credentials.
func (t *Task) Cred() vfs.Cred { return vfs.Cred{UID: t.UID} }

// checkSyscall consults the SELinux policy for a syscall in the given
// class. All syscalls "retain the standard in-kernel privilege checks"
// (§3.1); this is the SELinux part, uid checks happen per-object.
func (t *Task) checkSyscall(class selinux.Class, perm string) error {
	return t.k.Policy.Check(t.Ctx, class, perm)
}

// ---- task lifecycle ------------------------------------------------------

// Start runs fn as this task's thread of control in a new goroutine. A
// panic carrying a *vm.Fault is converted into death-by-protection-fault,
// the simulated SIGSEGV. Any other panic propagates (it is a program bug).
func (t *Task) Start(fn func(*Task)) {
	t.AS.SetLive() // structural VM changes now preserve reader snapshots
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if f, ok := r.(*vm.Fault); ok {
					t.exitWith(139, f) // 128+SIGSEGV, as the shell reports it
					return
				}
				panic(r)
			}
		}()
		fn(t)
		t.exitWith(0, nil)
	}()
}

// Run executes fn on the caller's goroutine (used for init tasks driving a
// scenario synchronously).
func (t *Task) Run(fn func(*Task)) {
	t.AS.SetLive() // structural VM changes now preserve reader snapshots
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*vm.Fault); ok {
				t.exitWith(139, f)
				return
			}
			panic(r)
		}
	}()
	fn(t)
	t.exitWith(0, nil)
}

// Exit terminates the task with the given status from inside its function.
func (t *Task) Exit(status int) {
	t.exitWith(status, nil)
}

// ExitFault terminates the task as a protection fault would — the same
// status and fault record the Start wrapper produces when the task's
// function panics with a *vm.Fault. It exists for callers that run a
// task's code on a foreign goroutine (the batched pool's inline gate
// invocations) and must reproduce the fault-death contract themselves.
func (t *Task) ExitFault(fault error) {
	t.exitWith(139, fault) // 128+SIGSEGV, as the shell reports it
}

func (t *Task) exitWith(status int, fault error) {
	t.exitOnce.Do(func() {
		t.mu.Lock()
		for fd, e := range t.fds {
			e.of.unref()
			delete(t.fds, fd)
		}
		t.mu.Unlock()
		if !t.sharedAS {
			t.AS.Release()
		}
		t.status = status
		t.fault = fault
		t.k.mu.Lock()
		delete(t.k.tasks, t.PID)
		t.k.mu.Unlock()
		close(t.done)
	})
}

// Wait blocks until the task exits, returning its status and, if it died on
// a protection fault, that fault.
func (t *Task) Wait() (int, error) {
	<-t.done
	return t.status, t.fault
}

// Done returns a channel closed when the task exits.
func (t *Task) Done() <-chan struct{} { return t.done }

// Kill requests asynchronous termination; the task observes it via Killed.
func (t *Task) Kill() {
	select {
	case <-t.killed:
	default:
		close(t.killed)
	}
}

// Killed returns a channel closed once the task has been killed.
func (t *Task) Killed() <-chan struct{} { return t.killed }

// Status returns exit status and fault after the task has exited.
func (t *Task) Status() (int, error) {
	select {
	case <-t.done:
		return t.status, t.fault
	default:
		return -1, errors.New("kernel: task still running")
	}
}

// ---- process-style syscalls ----------------------------------------------

// Fork creates a child task with a copy-on-write duplicate of the entire
// address space and a duplicate of the whole descriptor table — the
// default-allow inheritance Wedge exists to avoid (§1). The per-entry
// copying here is the mechanical cost Figure 7 charges to fork.
func (t *Task) Fork(fn func(*Task)) (*Task, error) {
	if err := t.checkSyscall(selinux.ClassProcess, "fork"); err != nil {
		return nil, err
	}
	child := t.k.newTask(t, t.AS.CloneCOW(), false)
	t.mu.Lock()
	for fd, e := range t.fds {
		e.of.ref()
		child.fds[fd] = &fdEntry{of: e.of, perm: e.perm}
		if fd >= child.nextFD {
			child.nextFD = fd + 1
		}
	}
	t.mu.Unlock()
	child.Start(fn)
	return child, nil
}

// SpawnPthread creates a thread sharing this task's address space and
// descriptor table reference semantics (a new table holding the same
// files, as CLONE_FILES would). It is the cheap, isolation-free baseline
// in Figure 7.
func (t *Task) SpawnPthread(fn func(*Task)) (*Task, error) {
	if err := t.checkSyscall(selinux.ClassProcess, "thread"); err != nil {
		return nil, err
	}
	child := t.k.newTask(t, t.AS, true)
	t.mu.Lock()
	for fd, e := range t.fds {
		e.of.ref()
		child.fds[fd] = &fdEntry{of: e.of, perm: e.perm}
		if fd >= child.nextFD {
			child.nextFD = fd + 1
		}
	}
	t.mu.Unlock()
	child.Start(fn)
	return child, nil
}

// SpawnTask creates a task with the given, caller-assembled address space
// and empty fd table, then runs fn. It is the primitive sthread_create
// builds on: the sthread layer decides exactly which mappings and
// descriptors the child receives before starting it.
func (t *Task) SpawnTask(as *vm.AddressSpace, fn func(*Task)) (*Task, error) {
	if err := t.checkSyscall(selinux.ClassProcess, "sthread"); err != nil {
		return nil, err
	}
	child := t.k.newTask(t, as, false)
	child.Start(fn)
	return child, nil
}

// NewChildTask creates a not-yet-started task for callers that must install
// fds before the child runs. Call Start on the result.
func (t *Task) NewChildTask(as *vm.AddressSpace) (*Task, error) {
	if err := t.checkSyscall(selinux.ClassProcess, "sthread"); err != nil {
		return nil, err
	}
	return t.k.newTask(t, as, false), nil
}

// SetUID changes the task's uid. Only root may do so, per Unix semantics;
// Wedge relies on this when a parent confines a child sthread (§3.1) and
// when an authentication callgate promotes a worker (§5.2).
func (t *Task) SetUID(uid int) error {
	if t.UID != 0 {
		return ErrPermission
	}
	t.UID = uid
	return nil
}

// SetUIDOn lets a privileged task change another task's uid. The
// authentication callgate idiom of §5.2 ("the callgate, upon successful
// authentication, changes the worker's user ID and filesystem root").
func (t *Task) SetUIDOn(target *Task, uid int) error {
	if t.UID != 0 {
		return ErrPermission
	}
	target.UID = uid
	return nil
}

// Chroot changes the task's filesystem root. Only root may call it.
func (t *Task) Chroot(path string) error {
	if t.UID != 0 {
		return ErrPermission
	}
	if err := t.checkSyscall(selinux.ClassDir, "chroot"); err != nil {
		return err
	}
	ino, err := t.k.FS.Lookup(t.Cred(), t.Root, path)
	if err != nil {
		return err
	}
	t.Root = ino
	return nil
}

// ChrootOn changes another task's root (callgate promotion idiom).
func (t *Task) ChrootOn(target *Task, path string) error {
	if t.UID != 0 {
		return ErrPermission
	}
	ino, err := t.k.FS.Lookup(t.Cred(), t.Root, path)
	if err != nil {
		return err
	}
	target.Root = ino
	return nil
}

// SetContext transitions the task to a new SELinux context if the policy
// allows the domain transition.
func (t *Task) SetContext(ctx selinux.Context) error {
	if !t.k.Policy.CanTransition(t.Ctx, ctx) {
		return fmt.Errorf("%w: selinux transition %s -> %s", ErrPermission, t.Ctx, ctx)
	}
	t.Ctx = ctx
	return nil
}

// ---- memory syscalls ------------------------------------------------------

// Mmap maps fresh anonymous memory (ClassMemory check + zeroed frames).
func (t *Task) Mmap(length int, perm vm.Perm) (vm.Addr, error) {
	if err := t.checkSyscall(selinux.ClassMemory, "mmap"); err != nil {
		return 0, err
	}
	return t.AS.MapAnon(length, perm)
}

// Munmap removes a mapping.
func (t *Task) Munmap(base vm.Addr, length int) error {
	if err := t.checkSyscall(selinux.ClassMemory, "munmap"); err != nil {
		return err
	}
	return t.AS.Unmap(base, length)
}

// Mprotect changes mapping permissions.
func (t *Task) Mprotect(base vm.Addr, length int, perm vm.Perm) error {
	if err := t.checkSyscall(selinux.ClassMemory, "mprotect"); err != nil {
		return err
	}
	return t.AS.Protect(base, length, perm)
}

// ---- file-descriptor syscalls ----------------------------------------------

// Open opens a path relative to the task's filesystem root.
func (t *Task) Open(path string, flags int, mode vfs.Mode) (int, error) {
	if err := t.checkSyscall(selinux.ClassFile, "open"); err != nil {
		return -1, err
	}
	f, err := t.k.FS.Open(t.Cred(), t.Root, path, flags, mode)
	if err != nil {
		return -1, err
	}
	perm := FDPerm(0)
	if f.Readable() {
		perm |= FDRead
	}
	if f.Writable() {
		perm |= FDWrite
	}
	return t.InstallFD(f, perm), nil
}

// InstallFD places a file into the descriptor table with the given
// permission, returning the new fd. Used by Open, Accept, and by the
// sthread layer when granting descriptors to children.
func (t *Task) InstallFD(f FileLike, perm FDPerm) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd := t.nextFD
	t.nextFD++
	t.fds[fd] = &fdEntry{of: newOpenFile(f), perm: perm}
	return fd
}

// InstallFDAt places a file at a specific descriptor number, replacing any
// previous entry. The sthread layer uses it so that descriptors granted to
// a child keep the numbers the policy named them by.
func (t *Task) InstallFDAt(fd int, f FileLike, perm FDPerm) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.fds[fd]; ok {
		old.of.unref()
	}
	t.fds[fd] = &fdEntry{of: newOpenFile(f), perm: perm}
	if fd >= t.nextFD {
		t.nextFD = fd + 1
	}
}

// ShareFDTo grants target a descriptor referring to the same open file
// description as t's fd, at the same number, restricted to perm. The
// sthread layer uses it for policy fd grants: the child's exit must not
// close the parent's descriptor.
func (t *Task) ShareFDTo(target *Task, fd int, perm FDPerm) error {
	t.mu.Lock()
	e, ok := t.fds[fd]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if e.perm&perm != perm {
		t.mu.Unlock()
		return fmt.Errorf("%w: fd %d lacks %s", ErrPermission, fd, perm)
	}
	e.of.ref()
	t.mu.Unlock()

	target.mu.Lock()
	defer target.mu.Unlock()
	if old, ok := target.fds[fd]; ok {
		old.of.unref()
	}
	target.fds[fd] = &fdEntry{of: e.of, perm: perm}
	if fd >= target.nextFD {
		target.nextFD = fd + 1
	}
	return nil
}

// FD returns the file behind fd if the task holds it with at least perm.
func (t *Task) FD(fd int, perm FDPerm) (FileLike, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if e.perm&perm != perm {
		return nil, fmt.Errorf("%w: fd %d lacks %s", ErrPermission, fd, perm)
	}
	return e.of.file, nil
}

// FDEntryPerm reports the permission the task holds on fd.
func (t *Task) FDEntryPerm(fd int) (FDPerm, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.fds[fd]
	if !ok {
		return 0, false
	}
	return e.perm, true
}

// ReadFD reads from a descriptor, enforcing its grant mode.
func (t *Task) ReadFD(fd int, buf []byte) (int, error) {
	f, err := t.FD(fd, FDRead)
	if err != nil {
		return 0, err
	}
	return f.Read(buf)
}

// WriteFD writes to a descriptor, enforcing its grant mode.
func (t *Task) WriteFD(fd int, buf []byte) (int, error) {
	f, err := t.FD(fd, FDWrite)
	if err != nil {
		return 0, err
	}
	return f.Write(buf)
}

// CloseFD removes fd from this task's table. Like POSIX close, it does not
// affect other tasks holding the same file.
func (t *Task) CloseFD(fd int) error {
	t.mu.Lock()
	e, ok := t.fds[fd]
	delete(t.fds, fd)
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return e.of.unref()
}

// FDCount returns the number of open descriptors.
func (t *Task) FDCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.fds)
}

// ---- network syscalls -------------------------------------------------------

// Listen binds a network address.
func (t *Task) Listen(addr string) (*netsim.Listener, error) {
	if err := t.checkSyscall(selinux.ClassSocket, "listen"); err != nil {
		return nil, err
	}
	return t.k.Net.Listen(addr)
}

// ListenPacket binds a datagram socket. The socket is not a descriptor:
// the serve runtime owns the packet loop directly and hands workers a
// per-flow FileLike view instead, so a worker sthread never holds the
// whole socket (one flow's descriptor cannot read another principal's
// packets).
func (t *Task) ListenPacket(addr string) (*netsim.PacketConn, error) {
	if err := t.checkSyscall(selinux.ClassSocket, "listen"); err != nil {
		return nil, err
	}
	return t.k.Net.ListenPacket(addr)
}

// Accept takes the next connection and installs it as a descriptor.
func (t *Task) Accept(l *netsim.Listener, perm FDPerm) (int, error) {
	if err := t.checkSyscall(selinux.ClassSocket, "accept"); err != nil {
		return -1, err
	}
	c, err := l.Accept()
	if err != nil {
		return -1, err
	}
	return t.InstallFD(c, perm), nil
}

// Dial connects to addr and installs the connection as a descriptor.
func (t *Task) Dial(addr string) (int, error) {
	if err := t.checkSyscall(selinux.ClassSocket, "connect"); err != nil {
		return -1, err
	}
	c, err := t.k.Net.Dial(addr)
	if err != nil {
		return -1, err
	}
	return t.InstallFD(c, FDRW), nil
}
