// Property-based tests over the descriptor-table semantics the sthread
// layer builds its fd grants on (§3.1, §4.1).

package kernel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"wedge/internal/vm"
)

// memFile is an in-memory FileLike tracking whether it was closed.
type memFile struct {
	buf    bytes.Buffer
	closed bool
}

func (f *memFile) Read(p []byte) (int, error)  { return f.buf.Read(p) }
func (f *memFile) Write(p []byte) (int, error) { return f.buf.Write(p) }
func (f *memFile) Close() error                { f.closed = true; return nil }

func permFromSeed(seed uint8) FDPerm {
	switch seed % 3 {
	case 0:
		return FDRead
	case 1:
		return FDWrite
	default:
		return FDRW
	}
}

// TestShareFDToMonotonicProperty: sharing a descriptor to another task
// succeeds exactly when the requested permission is a subset of what the
// holder has, and the receiver ends up with exactly the requested
// permission — grants never widen.
func TestShareFDToMonotonicProperty(t *testing.T) {
	prop := func(heldSeed, reqSeed uint8) bool {
		k := New()
		parent := k.NewInitTask()
		child := k.newTask(parent, vm.NewAddressSpace(), false)
		held := permFromSeed(heldSeed)
		req := permFromSeed(reqSeed)
		fd := parent.InstallFD(&memFile{}, held)

		err := parent.ShareFDTo(child, fd, req)
		wantOK := held&req == req
		if wantOK != (err == nil) {
			return false
		}
		if err != nil {
			_, ok := child.FDEntryPerm(fd)
			return !ok // denied share must install nothing
		}
		got, ok := child.FDEntryPerm(fd)
		return ok && got == req
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFDRefcountProperty: for any number of sharers, the underlying file
// closes exactly when the last holder closes it — a child sthread's exit
// must never yank a descriptor out from under its parent (§4.1).
func TestFDRefcountProperty(t *testing.T) {
	prop := func(nSeed uint8) bool {
		k := New()
		parent := k.NewInitTask()
		f := &memFile{}
		fd := parent.InstallFD(f, FDRW)

		n := int(nSeed)%6 + 1
		children := make([]*Task, n)
		for i := range children {
			children[i] = k.newTask(parent, vm.NewAddressSpace(), false)
			if err := parent.ShareFDTo(children[i], fd, FDRead); err != nil {
				return false
			}
		}
		// Children close in arbitrary (here: creation) order; file stays
		// open while the parent still holds it.
		for _, c := range children {
			if err := c.CloseFD(fd); err != nil {
				return false
			}
			if f.closed {
				return false
			}
		}
		if err := parent.CloseFD(fd); err != nil {
			return false
		}
		return f.closed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFDTableSequenceProperty: random install/close sequences keep the
// table consistent: FDCount matches live installs, closed fds stay
// invalid, and double closes error.
func TestFDTableSequenceProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		k := New()
		task := k.NewInitTask()
		live := map[int]bool{}
		var fds []int
		for _, op := range ops {
			if op%2 == 0 || len(fds) == 0 {
				fd := task.InstallFD(&memFile{}, FDRW)
				if live[fd] {
					return false // fd numbers must not repeat while live
				}
				live[fd] = true
				fds = append(fds, fd)
			} else {
				fd := fds[int(op/2)%len(fds)]
				err := task.CloseFD(fd)
				if live[fd] != (err == nil) {
					return false
				}
				live[fd] = false
			}
			count := 0
			for _, ok := range live {
				if ok {
					count++
				}
			}
			if task.FDCount() != count {
				return false
			}
		}
		// Every closed fd must be unusable.
		for fd, ok := range live {
			_, err := task.FD(fd, FDRead)
			if ok != (err == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestForkTableIndependence: after fork, closing descriptors in the child
// leaves the parent's table intact, and vice versa; the shared open-file
// stays alive until both close it.
func TestForkTableIndependence(t *testing.T) {
	k := New()
	parent := k.NewInitTask()
	f := &memFile{}
	fd := parent.InstallFD(f, FDRW)

	started := make(chan *Task, 1)
	release := make(chan struct{})
	child, err := parent.Fork(func(c *Task) {
		started <- c
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	c := <-started
	if c != child {
		t.Fatal("child task identity mismatch")
	}
	if _, err := child.FD(fd, FDRW); err != nil {
		t.Fatalf("child lacks inherited fd: %v", err)
	}
	if err := child.CloseFD(fd); err != nil {
		t.Fatal(err)
	}
	if f.closed {
		t.Fatal("child close destroyed the parent's file")
	}
	if _, err := parent.FD(fd, FDRW); err != nil {
		t.Fatalf("parent lost fd after child close: %v", err)
	}
	close(release)
	if _, err := child.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := parent.CloseFD(fd); err != nil {
		t.Fatal(err)
	}
	if !f.closed {
		t.Fatal("file not closed after last holder closed")
	}
}

// TestWriteFDPermissionDenied: a descriptor granted read-only rejects
// writes with ErrPermission and vice versa.
func TestWriteFDPermissionDenied(t *testing.T) {
	k := New()
	task := k.NewInitTask()
	rfd := task.InstallFD(&memFile{}, FDRead)
	wfd := task.InstallFD(&memFile{}, FDWrite)

	if _, err := task.WriteFD(rfd, []byte("x")); !errors.Is(err, ErrPermission) {
		t.Fatalf("write on read-only fd: %v", err)
	}
	if _, err := task.ReadFD(wfd, make([]byte, 1)); !errors.Is(err, ErrPermission) {
		t.Fatalf("read on write-only fd: %v", err)
	}
}

// TestFutexCrossMapping: futexes are keyed by physical frame, so two
// tasks sharing one page wake each other even through different virtual
// addresses — the recycled-callgate substrate (§4.1).
func TestFutexCrossMapping(t *testing.T) {
	k := New()
	a := k.NewInitTask()
	b := k.newTask(a, vm.NewAddressSpace(), false)

	// One shared page, mapped into both address spaces.
	addr, err := a.AS.MapAnon(vm.PageSize, vm.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AS.ShareInto(b.AS, addr, vm.PageSize, vm.PermRW); err != nil {
		t.Fatal(err)
	}

	// ErrAgain when the value moved before the wait.
	if err := a.AS.Store32(addr, 7); err != nil {
		t.Fatal(err)
	}
	if err := a.FutexWaitVal(addr, 0); !errors.Is(err, ErrAgain) {
		t.Fatalf("stale wait: %v", err)
	}

	woke := make(chan error, 1)
	go func() {
		woke <- a.FutexWaitVal(addr, 7)
	}()
	// Wake from the *other* task; re-wake until the waiter has queued
	// (the goroutine may not have parked yet).
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := b.FutexWake(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-woke; err != nil {
		t.Fatalf("cross-mapping wake: %v", err)
	}

	// Waiting on an unmapped address faults rather than hanging.
	if err := a.FutexWaitVal(vm.Addr(0xF00D0000), 0); err == nil {
		t.Fatal("futex on unmapped address accepted")
	}
}

// TestFutexKilledTaskUnblocks: a kill releases a futex waiter with
// ErrKilled, so exploited compartments cannot park forever.
func TestFutexKilledTaskUnblocks(t *testing.T) {
	k := New()
	task := k.NewInitTask()
	addr, err := task.AS.MapAnon(vm.PageSize, vm.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- task.FutexWaitVal(addr, 0)
	}()
	task.Kill()
	if err := <-done; !errors.Is(err, ErrKilled) {
		t.Fatalf("killed waiter returned %v", err)
	}
}

// TestMemorySyscalls: Mmap/Mprotect/Munmap enforce SELinux class checks
// and map/protect/unmap real pages.
func TestMemorySyscalls(t *testing.T) {
	k := New()
	task := k.NewInitTask()
	a, err := task.Mmap(2*vm.PageSize, vm.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.AS.Write(a, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := task.Mprotect(a, vm.PageSize, vm.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := task.AS.Write(a, []byte("y")); err == nil {
		t.Fatal("write through read-only protection")
	}
	if err := task.Munmap(a, 2*vm.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := task.AS.Read(a, make([]byte, 1)); err == nil {
		t.Fatal("read of unmapped page succeeded")
	}
}

// TestCredentialSyscallsOnTarget: SetUIDOn/ChrootOn implement the
// §5.2 promotion idiom and demand root.
func TestCredentialSyscallsOnTarget(t *testing.T) {
	k := New()
	root := k.NewInitTask()
	if err := k.FS.Mkdir(root.Cred(), root.Root, "/home", 0o755); err != nil {
		t.Fatal(err)
	}
	worker := k.newTask(root, vm.NewAddressSpace(), false)

	if err := root.SetUIDOn(worker, 1000); err != nil {
		t.Fatal(err)
	}
	if worker.UID != 1000 {
		t.Fatalf("uid = %d", worker.UID)
	}
	if err := root.ChrootOn(worker, "/home"); err != nil {
		t.Fatal(err)
	}
	// The demoted worker can do neither to anyone.
	other := k.newTask(root, vm.NewAddressSpace(), false)
	if err := worker.SetUIDOn(other, 0); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-root SetUIDOn: %v", err)
	}
	if err := worker.ChrootOn(other, "/"); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-root ChrootOn: %v", err)
	}
	if err := worker.Chroot("/"); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-root Chroot: %v", err)
	}
}
