// Table 2: end-to-end application performance.
//
// Top half — maximum sustained throughput of the SSL web server, in
// requests per second, for vanilla Apache (pooled workers, no isolation),
// Wedge-partitioned Apache (the Figures 3-5 two-phase partitioning), and
// the recycled-callgate build; each with an all-sessions-cached workload
// and an uncached one. The paper's shape: vanilla fastest; Wedge pays the
// most on the cached workload (where per-request primitives dominate the
// cheap resumed handshake) and least on the uncached one (where the RSA
// operation dominates); recycled callgates claw back a large fraction.
//
// Bottom half — OpenSSH interactive latency: one login, and one 10 MB scp
// upload, vanilla vs Wedge. The paper's result: negligible difference.

package bench

import (
	"fmt"
	"time"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sshd"
	"wedge/internal/sthread"
)

// Table2Conns is the default number of timed connections per cell.
const Table2Conns = 30

// ScpSize is the upload size of the scp row.
const ScpSize = 10 << 20

// Table2Apache measures one Apache cell: requests/second for the given
// variant ("vanilla", "wedge", "recycled") and workload.
func Table2Apache(variant string, cached bool, conns int) (float64, error) {
	if conns <= 0 {
		conns = Table2Conns
	}
	k := kernel.New()
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		return 0, err
	}
	if err := httpd.SetupDocroot(k, "/var/www", 1024); err != nil {
		return 0, err
	}
	app := sthread.Boot(k)

	total := conns
	if cached {
		total++ // one untimed warm-up connection fills the cache
	}

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serve func(*netsim.Conn) error
			switch variant {
			case "vanilla":
				srv, err := httpd.NewMonolithic(root, "/var/www", priv, cached, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				serve = srv.ServeConn
			case "wedge":
				srv, err := httpd.NewMITM(root, "/var/www", priv, cached, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				serve = srv.ServeConn
			case "recycled":
				srv, err := httpd.NewRecycled(root, "/var/www", priv, cached, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				defer srv.Close()
				serve = srv.ServeConn
			default:
				panic("unknown variant " + variant)
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				panic(err)
			}
			close(ready)
			for i := 0; i < total; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				serve(c)
			}
		})
	}()
	<-ready

	request := func(sess *minissl.ClientSession) (*minissl.ClientSession, error) {
		conn, err := k.Net.Dial("apache:443")
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{
			ServerPub: &priv.PublicKey, Session: sess,
		})
		if err != nil {
			return nil, err
		}
		if _, err := cc.Write([]byte("GET /index.html")); err != nil {
			return nil, err
		}
		if _, err := cc.ReadRecord(); err != nil {
			return nil, err
		}
		return &cc.Session, nil
	}

	var sess *minissl.ClientSession
	if cached {
		if sess, err = request(nil); err != nil { // warm-up, untimed
			return 0, fmt.Errorf("warm-up: %w", err)
		}
	}
	start := time.Now()
	for i := 0; i < conns; i++ {
		var use *minissl.ClientSession
		if cached {
			use = sess
		}
		if _, err := request(use); err != nil {
			return 0, fmt.Errorf("conn %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	if err := <-done; err != nil {
		return 0, err
	}
	return float64(conns) / elapsed.Seconds(), nil
}

// Table2SSH measures the bottom half for one variant ("vanilla" = the
// pre-privilege-separation monolithic server, "wedge" = Figure 6),
// returning the login delay and the 10 MB scp delay.
func Table2SSH(variant string, scpSize int) (login, scp time.Duration, err error) {
	if scpSize <= 0 {
		scpSize = ScpSize
	}
	k := kernel.New()
	hostKey, err := minissl.GenerateServerKey()
	if err != nil {
		return 0, 0, err
	}
	users := []sshd.User{{Name: "alice", Password: "sesame", UID: 1000}}
	if err := sshd.SetupUsers(k, users); err != nil {
		return 0, 0, err
	}
	cfg := sshd.ServerConfig{HostKey: hostKey}
	app := sthread.Boot(k)

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serve func(*netsim.Conn) error
			switch variant {
			case "vanilla":
				serve = sshd.NewMonolithic(root, cfg, sshd.MonoHooks{}).ServeConn
			case "wedge":
				srv, err := sshd.NewWedge(root, cfg, sshd.WedgeHooks{})
				if err != nil {
					panic(err)
				}
				serve = srv.ServeConn
			default:
				panic("unknown variant " + variant)
			}
			l, err := root.Task.Listen("sshd:22")
			if err != nil {
				panic(err)
			}
			close(ready)
			for i := 0; i < 2; i++ {
				c, err := l.Accept()
				if err != nil {
					return
				}
				serve(c)
			}
		})
	}()
	<-ready

	// Login delay: dial, host auth, password auth.
	start := time.Now()
	conn, err := k.Net.Dial("sshd:22")
	if err != nil {
		return 0, 0, err
	}
	c, err := sshd.NewClient(conn, &hostKey.PublicKey)
	if err != nil {
		return 0, 0, err
	}
	if err := c.AuthPassword("alice", "sesame"); err != nil {
		return 0, 0, err
	}
	login = time.Since(start)
	c.Exit()
	conn.Close()

	// scp delay: login (untimed for the row) then one timed upload.
	conn2, err := k.Net.Dial("sshd:22")
	if err != nil {
		return 0, 0, err
	}
	c2, err := sshd.NewClient(conn2, &hostKey.PublicKey)
	if err != nil {
		return 0, 0, err
	}
	if err := c2.AuthPassword("alice", "sesame"); err != nil {
		return 0, 0, err
	}
	payload := make([]byte, scpSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	start = time.Now()
	if err := c2.ScpPut("bigfile", payload); err != nil {
		return 0, 0, err
	}
	scp = time.Since(start)
	c2.Exit()
	conn2.Close()

	if err := <-done; err != nil {
		return 0, 0, err
	}
	return login, scp, nil
}

// Table2 runs every cell and returns display results. conns and scpSize
// scale the work for quick runs.
func Table2(conns, scpSize int) ([]Result, error) {
	var results []Result
	paper := map[string]float64{
		"vanilla cached":    1238,
		"wedge cached":      238,
		"recycled cached":   339,
		"vanilla uncached":  247,
		"wedge uncached":    132,
		"recycled uncached": 170,
	}
	for _, cached := range []bool{true, false} {
		for _, variant := range []string{"vanilla", "wedge", "recycled"} {
			rps, err := Table2Apache(variant, cached, conns)
			if err != nil {
				return nil, fmt.Errorf("apache %s cached=%v: %w", variant, cached, err)
			}
			label := variant + " uncached"
			if cached {
				label = variant + " cached"
			}
			results = append(results, Result{
				Experiment: "table2", Name: "apache " + label, Value: rps, Unit: "req/s",
				PaperValue: paper[label], PaperUnit: "req/s",
			})
		}
	}
	paperSSH := map[string]float64{
		"vanilla login": 0.145, "wedge login": 0.148,
		"vanilla scp": 0.376, "wedge scp": 0.370,
	}
	for _, variant := range []string{"vanilla", "wedge"} {
		login, scp, err := Table2SSH(variant, scpSize)
		if err != nil {
			return nil, fmt.Errorf("ssh %s: %w", variant, err)
		}
		results = append(results,
			Result{Experiment: "table2", Name: "ssh " + variant + " login", Value: login.Seconds(), Unit: "s",
				PaperValue: paperSSH[variant+" login"], PaperUnit: "s"},
			Result{Experiment: "table2", Name: "ssh " + variant + " scp", Value: scp.Seconds(), Unit: "s",
				PaperValue: paperSSH[variant+" scp"], PaperUnit: "s"},
		)
	}
	return results, nil
}
