// The cluster cells: the multi-runtime director measured. Steady-state
// pop3 (stream) and dnsd (datagram) throughput through an N-member
// cluster — what the front-end relay and two-choice routing cost next
// to the single-runtime FigPool cells — plus the rolling-drain cell:
// continuous mixed load while every member in turn is removed, drained,
// and re-admitted. In that cell a stream error is a client-visible
// failure and aborts the run (the whole point of live handoff is that
// clients never see the drain), long-lived authenticated "anchor"
// sessions span every drain so the handoff path provably runs, and the
// run ends with per-runtime ledger checks. ClusterSoak adds the leak
// accounting of the principal-churn soak on top: fresh principals
// throughout, task/tag/conn-table baselines on every member kernel
// afterwards.

package bench

import (
	"crypto/rsa"
	"fmt"
	"sync/atomic"
	"time"

	"wedge/internal/cluster"
	"wedge/internal/dnsd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/pop3"
	"wedge/internal/serve"
	"wedge/internal/sthread"
)

// ClusterOpts configures the cluster cells. The zero value is the
// default run: 3 members, 16 drivers, 3000 sessions per cell.
type ClusterOpts struct {
	// Runtimes is the member count (default 3, minimum 2 — with one
	// member there is nowhere to hand a session).
	Runtimes int
	// Conc is the number of concurrent driver clients (default 16).
	Conc int
	// Sessions is the number of timed sessions per cell (default 3000).
	Sessions int
}

// ClusterRow is one cluster cell's outcome.
type ClusterRow struct {
	Cell     string // "pop3", "dnsd", "rolling-drain"
	Runtimes int
	Conc     int
	Stats    CellStats
	Handoffs uint64 // live sessions moved (rolling-drain cell only)
	Removes  int    // rolling drains performed (rolling-drain cell only)
}

func (o *ClusterOpts) defaults() {
	if o.Runtimes <= 0 {
		o.Runtimes = 3
	}
	if o.Runtimes < 2 {
		o.Runtimes = 2
	}
	if o.Conc <= 0 {
		o.Conc = 16
	}
	if o.Sessions <= 0 {
		o.Sessions = 3000
	}
}

// clusterMember is one cluster member: a pop3 runtime and a dnsd
// runtime, each in its own kernel (its own host — the dnsd kernel's
// network doubles as the member's mirror host for packet relays).
type clusterMember struct {
	name string
	pop  *pop3.PooledServer
	dns  *dnsd.Resolver
	host *netsim.Network

	popK, dnsK     *kernel.Kernel
	popApp, dnsApp *sthread.App
	quit           chan struct{}
	done           []chan error
}

func startClusterMember(name string, popSlots int, key *rsa.PrivateKey) *clusterMember {
	m := &clusterMember{name: name, quit: make(chan struct{})}
	boxes := []pop3.Mailbox{
		{User: "alice", Password: "sesame", UID: 1000,
			Messages: []string{"From: bench\n\nmessage one"}},
	}
	zone := []dnsd.Record{{Name: "www.example", Value: "192.0.2.80"}}

	popReady := make(chan *pop3.PooledServer, 1)
	popDone := make(chan error, 1)
	m.popK = kernel.New()
	m.popApp = sthread.Boot(m.popK)
	benchPremain(m.popApp)
	go func() {
		popDone <- m.popApp.Main(func(root *sthread.Sthread) {
			srv, err := pop3.NewPooled(root, boxes, popSlots, pop3.Hooks{})
			if err != nil {
				panic(err)
			}
			popReady <- srv
			<-m.quit
			srv.Close()
		})
	}()

	dnsReady := make(chan *dnsd.Resolver, 1)
	dnsDone := make(chan error, 1)
	m.dnsK = kernel.New()
	m.dnsApp = sthread.Boot(m.dnsK)
	benchPremain(m.dnsApp)
	go func() {
		dnsDone <- m.dnsApp.Main(func(root *sthread.Sthread) {
			rt, err := dnsd.NewPooled(root, key, zone, dnsd.Config{
				Slots:       soakFlowSlots,
				IdleTimeout: soakFlowIdle,
			})
			if err != nil {
				panic(err)
			}
			dnsReady <- rt
			<-m.quit
			rt.Close()
		})
	}()

	m.pop = <-popReady
	m.dns = <-dnsReady
	m.host = m.dnsK.Net
	m.done = []chan error{popDone, dnsDone}
	return m
}

// clusterRig is a booted cluster: N members behind a director serving a
// front network's pop3 listener and dns packet socket.
type clusterRig struct {
	members []*clusterMember
	d       *cluster.Director
	front   *netsim.Network
	fl      *netsim.Listener
	fpc     *netsim.PacketConn
	pub     *rsa.PublicKey

	sdone, pdone chan struct{}
}

func memberSpec(m *clusterMember) cluster.Member {
	return cluster.Member{Name: m.name, Stream: m.pop, Packet: m.dns, Host: m.host}
}

func startClusterRig(n, popSlots int) (*clusterRig, error) {
	key, err := minissl.GenerateServerKey()
	if err != nil {
		return nil, err
	}
	r := &clusterRig{d: cluster.New(), front: netsim.New(), pub: &key.PublicKey}
	// Director-side packet-flow relay state is swept on this idle bound;
	// member-side flows expire on soakFlowIdle as in the soak.
	r.d.PacketIdle = int64(250 * time.Millisecond)
	for i := 0; i < n; i++ {
		m := startClusterMember(fmt.Sprintf("m%d", i), popSlots, key)
		r.members = append(r.members, m)
		if err := r.d.Add(memberSpec(m)); err != nil {
			return nil, err
		}
	}
	if r.fl, err = r.front.Listen("pop3:110"); err != nil {
		return nil, err
	}
	if r.fpc, err = r.front.ListenPacket("dns:53"); err != nil {
		return nil, err
	}
	r.sdone = make(chan struct{})
	go func() { r.d.Serve(r.fl); close(r.sdone) }()
	r.pdone = make(chan struct{})
	go func() { r.d.ServePackets(r.fpc); close(r.pdone) }()
	return r, nil
}

func (r *clusterRig) stop() error {
	r.fl.Close()
	r.fpc.Close()
	<-r.sdone
	<-r.pdone
	var first error
	for _, m := range r.members {
		close(m.quit)
		for _, ch := range m.done {
			if err := <-ch; err != nil && first == nil {
				first = fmt.Errorf("member %s: %w", m.name, err)
			}
		}
	}
	return first
}

// settle waits for every member runtime — stream and packet — to go
// fully quiet and checks each one's admission ledger.
func (r *clusterRig) settle(when string) error {
	for _, m := range r.members {
		for i, snap := range []func() serve.Snapshot{m.pop.Snapshot, m.dns.Snapshot} {
			which := [...]string{"pop3", "dnsd"}[i]
			s, err := soakSettle(snap, fmt.Sprintf("%s %s %s", when, m.name, which))
			if err != nil {
				return err
			}
			if s.Admitted != s.Served+s.Failed+s.Handed {
				return fmt.Errorf("%s %s %s ledger: admitted=%d != served=%d + failed=%d + handed=%d",
					when, m.name, which, s.Admitted, s.Served, s.Failed, s.Handed)
			}
		}
	}
	return nil
}

func (r *clusterRig) pop3Session() error {
	conn, err := r.front.Dial("pop3:110")
	if err != nil {
		return err
	}
	return pop3SessionConn(conn)
}

func (r *clusterRig) dnsQuery() error {
	pc, err := r.front.DialPacket()
	if err != nil {
		return err
	}
	defer pc.Close()
	// Datagram transports promise nothing; the client imposes its own
	// timeout (closing the socket unblocks the read) and the caller
	// retries on a fresh socket.
	timeout := time.AfterFunc(time.Second, func() { pc.Close() })
	defer timeout.Stop()
	a, err := dnsd.Query(pc, "dns:53", "www.example")
	if err != nil {
		return err
	}
	if a.Status != dnsd.StatusNoError {
		return fmt.Errorf("dnsd status %d, want NOERROR", a.Status)
	}
	return a.Verify(r.pub)
}

// anchor is a long-lived authenticated pop3 session: USER/PASS once,
// then STAT round trips until told to stop, then a clean QUIT. Anchors
// span every rolling drain, so each one is necessarily handed off at
// least once when its current home is removed — the live-handoff path
// provably runs, with real mid-protocol state (the authenticated uid)
// crossing runtimes.
func (r *clusterRig) anchor(stop <-chan struct{}) error {
	conn, err := r.front.Dial("pop3:110")
	if err != nil {
		return err
	}
	defer conn.Close()
	lr := newLineReader(conn)
	round := func(cmd string) error {
		if cmd != "" {
			if _, err := conn.Write([]byte(cmd + "\r\n")); err != nil {
				return err
			}
		}
		line, err := lr.line()
		if err != nil {
			return err
		}
		if len(line) < 3 || line[:3] != "+OK" {
			return fmt.Errorf("anchor: %s: got %q, want +OK", cmd, line)
		}
		return nil
	}
	for _, cmd := range []string{"", "USER alice", "PASS sesame"} {
		if err := round(cmd); err != nil {
			return err
		}
	}
	for {
		select {
		case <-stop:
			return round("QUIT")
		default:
		}
		if err := round("STAT"); err != nil {
			return err
		}
		time.Sleep(200 * time.Microsecond) // pace: anchors span the run, they don't dominate it
	}
}

// churn drives total mixed sessions (one dns query in every four, the
// rest pop3) at conc drivers with `anchors` long-lived sessions
// alongside, and performs `removes` rolling drains at evenly spaced
// load-progress points — each removes the next member in turn, verifies
// it drained empty, and re-admits it. Stream sessions get zero retries:
// any stream error is a client-visible failure. Datagram queries retry
// on a fresh socket, as any UDP client must.
func (r *clusterRig) churn(total, conc, removes, anchors int) (CellStats, error) {
	var progress atomic.Int64
	run := func(seq int) (bool, error) {
		defer progress.Add(1)
		if seq%4 == 0 {
			var err error
			for try := 0; try < 8; try++ {
				if err = r.dnsQuery(); err == nil {
					return true, nil
				}
			}
			return true, err
		}
		return true, r.pop3Session()
	}

	stopAnchors := make(chan struct{})
	anchorErr := make(chan error, anchors)
	for i := 0; i < anchors; i++ {
		go func() { anchorErr <- r.anchor(stopAnchors) }()
	}

	stopDrains := make(chan struct{})
	drainErr := make(chan error, 1)
	go func() {
		for j := 1; j <= removes; j++ {
			target := int64(total) * int64(j) / int64(removes+1)
			for progress.Load() < target {
				select {
				case <-stopDrains:
					drainErr <- nil
					return
				default:
				}
				time.Sleep(time.Millisecond)
			}
			m := r.members[(j-1)%len(r.members)]
			if err := r.d.Remove(m.name); err != nil {
				drainErr <- fmt.Errorf("remove %s: %w", m.name, err)
				return
			}
			if s := m.pop.Snapshot(); s.Inflight != 0 || s.Conns.Entries != 0 {
				drainErr <- fmt.Errorf("%s pop3 not drained: inflight=%d conn-entries=%d",
					m.name, s.Inflight, s.Conns.Entries)
				return
			}
			if s := m.dns.Snapshot(); s.Flows != 0 || s.Conns.Entries != 0 {
				drainErr <- fmt.Errorf("%s dnsd not drained: flows=%d conn-entries=%d",
					m.name, s.Flows, s.Conns.Entries)
				return
			}
			if err := r.d.Add(memberSpec(m)); err != nil {
				drainErr <- fmt.Errorf("re-add %s: %w", m.name, err)
				return
			}
		}
		drainErr <- nil
	}()

	stats, err := churnDrive(total, conc, 0, run)
	// Drains first, anchors second: a fast load can blow past the last
	// progress targets before the drain goroutine wakes, so late removes
	// run after churnDrive returns — the anchors must still be alive then
	// or those drains move nothing and the cell proves nothing. Closing
	// stopDrains is safe here: the drain goroutine only takes that exit
	// while progress is genuinely short of its target, i.e. the load
	// itself failed.
	close(stopDrains)
	if derr := <-drainErr; derr != nil && err == nil {
		err = derr
	}
	close(stopAnchors)
	for i := 0; i < anchors; i++ {
		if aerr := <-anchorErr; aerr != nil && err == nil {
			err = fmt.Errorf("anchor: %w", aerr)
		}
	}
	return stats, err
}

// clusterAnchors is the rolling-drain cells' long-lived session count.
const clusterAnchors = 4

// Cluster runs the cluster cells and returns their rows plus the JSON
// result rows (experiment "cluster"). The steady-state pop3 and dnsd
// cells are regression-gated like any FigPool cell; the rolling-drain
// cell's rows carry a Note — they are trajectory records (their number
// moves with drain timing, not with code quality), but the cell itself
// hard-fails on any client-visible error, a runtime that did not drain
// empty, an unbalanced ledger, or a run with no handoffs.
func Cluster(opts ClusterOpts) ([]ClusterRow, []Result, error) {
	opts.defaults()
	rig, err := startClusterRig(opts.Runtimes, opts.Conc)
	if err != nil {
		return nil, nil, err
	}

	fail := func(err error) ([]ClusterRow, []Result, error) {
		rig.stop()
		return nil, nil, err
	}

	// Warmup both protocol paths.
	if _, err := churnDrive(2*opts.Conc, opts.Conc, 8, func(seq int) (bool, error) {
		if seq%2 == 0 {
			return true, rig.dnsQuery()
		}
		return true, rig.pop3Session()
	}); err != nil {
		return fail(fmt.Errorf("warmup: %w", err))
	}

	var rows []ClusterRow
	popStats, err := soakDrive(opts.Sessions, opts.Conc, func(int) (bool, error) {
		return true, rig.pop3Session()
	})
	if err != nil {
		return fail(fmt.Errorf("pop3 cell: %w", err))
	}
	rows = append(rows, ClusterRow{Cell: "pop3", Runtimes: opts.Runtimes, Conc: opts.Conc, Stats: popStats})

	dnsStats, err := soakDrive(opts.Sessions, opts.Conc, func(int) (bool, error) {
		return true, rig.dnsQuery()
	})
	if err != nil {
		return fail(fmt.Errorf("dnsd cell: %w", err))
	}
	rows = append(rows, ClusterRow{Cell: "dnsd", Runtimes: opts.Runtimes, Conc: opts.Conc, Stats: dnsStats})

	handoffs0 := rig.d.Stats().Handoffs
	removes := opts.Runtimes
	drainStats, err := rig.churn(opts.Sessions, opts.Conc, removes, clusterAnchors)
	if err != nil {
		return fail(fmt.Errorf("rolling-drain cell: %w", err))
	}
	st := rig.d.Stats()
	if st.HandoffFailed != 0 {
		return fail(fmt.Errorf("rolling-drain cell: %d handoffs failed", st.HandoffFailed))
	}
	handoffs := st.Handoffs - handoffs0
	if handoffs == 0 {
		return fail(fmt.Errorf("rolling-drain cell: %d removes, zero handoffs — the drains moved nothing", removes))
	}
	rows = append(rows, ClusterRow{Cell: "rolling-drain", Runtimes: opts.Runtimes, Conc: opts.Conc,
		Stats: drainStats, Handoffs: handoffs, Removes: removes})

	if err := rig.settle("after the cluster cells"); err != nil {
		return fail(err)
	}
	if err := rig.stop(); err != nil {
		return nil, nil, err
	}

	var results []Result
	cell := func(row ClusterRow, note string) {
		id := fmt.Sprintf("%s cluster n=%d c=%d", row.Cell, row.Runtimes, row.Conc)
		variant := fmt.Sprintf("cluster-%d", row.Runtimes)
		results = append(results,
			Result{Experiment: "cluster", Name: id, Value: row.Stats.RPS, Unit: "req/s",
				App: row.Cell, Variant: variant, Conns: row.Conc, Metric: "rps", Note: note},
			Result{Experiment: "cluster", Name: id + " p50", Value: ms(row.Stats.P50), Unit: "ms",
				App: row.Cell, Variant: variant, Conns: row.Conc, Metric: "p50", Note: note},
			Result{Experiment: "cluster", Name: id + " p99", Value: ms(row.Stats.P99), Unit: "ms",
				App: row.Cell, Variant: variant, Conns: row.Conc, Metric: "p99", Note: note},
		)
	}
	cell(rows[0], "")
	cell(rows[1], "")
	note := fmt.Sprintf("trajectory: mixed pop3+dnsd load while each of %d members is drained and re-admitted in turn; %d live handoffs, zero client-visible errors", opts.Runtimes, handoffs)
	cell(rows[2], note)
	results = append(results, Result{
		Experiment: "cluster",
		Name:       fmt.Sprintf("rolling-drain cluster n=%d handoffs", opts.Runtimes),
		Value:      float64(handoffs), Unit: "handoffs",
		App: "rolling-drain", Variant: fmt.Sprintf("cluster-%d", opts.Runtimes), Note: note,
	})
	return rows, results, nil
}

// ClusterSoak is the cluster variant of the principal-churn soak: fresh
// principals throughout a mixed pop3+dnsd churn through a multi-member
// cluster, with a rolling drain of every member mid-churn and the
// soak's leak accounting afterwards — task and tag baselines on every
// member kernel, conn tables and flows drained to zero, ledgers
// balanced, and at least one live handoff per anchor session.
func ClusterSoak(opts SoakOpts, runtimes int) ([]SoakRow, []Result, error) {
	opts.defaults()
	if runtimes < 2 {
		runtimes = 2
	}
	rig, err := startClusterRig(runtimes, opts.Conc)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) ([]SoakRow, []Result, error) {
		rig.stop()
		return nil, nil, err
	}

	// Warmup primes every path the measured churn will hit — including
	// one full remove/re-add cycle, so lazily allocated handoff and
	// resume state exists before the baselines are taken.
	if _, err := rig.churn(4*opts.Conc, opts.Conc, 1, 2); err != nil {
		return fail(fmt.Errorf("warmup: %w", err))
	}
	if err := rig.settle("after warmup"); err != nil {
		return fail(err)
	}
	type memBase struct{ pop, dns soakBaseline }
	bases := make([]memBase, len(rig.members))
	for i, m := range rig.members {
		bases[i] = memBase{takeBaseline(m.popK, m.popApp), takeBaseline(m.dnsK, m.dnsApp)}
	}
	handoffs0 := rig.d.Stats().Handoffs

	stats, err := rig.churn(opts.Principals, opts.Conc, runtimes, clusterAnchors)
	if err != nil {
		return fail(err)
	}
	if err := rig.settle("after churn"); err != nil {
		return fail(err)
	}
	for i, m := range rig.members {
		if err := bases[i].pop.check(m.popK, m.popApp, opts.Principals); err != nil {
			return fail(fmt.Errorf("%s pop3: %w", m.name, err))
		}
		if err := bases[i].dns.check(m.dnsK, m.dnsApp, opts.Principals); err != nil {
			return fail(fmt.Errorf("%s dnsd: %w", m.name, err))
		}
	}
	st := rig.d.Stats()
	if st.HandoffFailed != 0 {
		return fail(fmt.Errorf("cluster soak: %d handoffs failed", st.HandoffFailed))
	}
	handoffs := st.Handoffs - handoffs0
	if handoffs < clusterAnchors {
		return fail(fmt.Errorf("cluster soak: %d handoffs across %d removes, want >= %d (every anchor spans every drain)",
			handoffs, runtimes, clusterAnchors))
	}
	if err := rig.stop(); err != nil {
		return nil, nil, err
	}

	row := SoakRow{App: "cluster", Principals: opts.Principals, Conc: opts.Conc,
		Stats: stats, Reaped: handoffs}
	name := fmt.Sprintf("cluster soak c=%d", opts.Conc)
	results := []Result{
		{Experiment: "soak", Name: name, Value: stats.RPS, Unit: "req/s",
			App: "cluster", Variant: "soak", Conns: opts.Conc, Metric: "rps"},
		{Experiment: "soak", Name: name + " p50", Value: ms(stats.P50), Unit: "ms",
			App: "cluster", Variant: "soak", Conns: opts.Conc, Metric: "p50"},
		{Experiment: "soak", Name: name + " p99", Value: ms(stats.P99), Unit: "ms",
			App: "cluster", Variant: "soak", Conns: opts.Conc, Metric: "p99"},
	}
	return []SoakRow{row}, results, nil
}
