// FigPool: throughput of the four SSL-server builds as connection
// concurrency grows — the experiment motivating the gatepool subsystem.
// It extends Table 2's single-stream measurement: the paper's recycled
// callgate removes the per-call sthread creation but leaves one gate
// every connection serializes through, and still creates one worker
// sthread per connection. The pooled build removes both: N slots, each a
// recycled worker plus a recycled setup gate, sharded by principal.
//
// Expected shape: mono fastest (no isolation); simple slowest (two
// sthread creations per connection); recycled above simple (gate
// creation amortized); pooled above recycled at every concurrency level
// (worker creation amortized too), with the gap widening as concurrency
// grows and, on multicore hosts, the pool's parallel slots overlap RSA
// work that the single recycled gate serializes.

package bench

import (
	"fmt"
	"time"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/serve"
	"wedge/internal/sthread"
)

// FigPoolConns is the default number of timed connections per cell.
const FigPoolConns = 48

// FigPoolLevels is the default concurrency ladder.
var FigPoolLevels = []int{1, 2, 4, 8, 16, 32, 64}

// figPoolImage is the pre-main process image (touched pages), matching
// Fig7's realistic dynamically-linked-server image: an empty image would
// make per-connection sthread creation artificially cheap and understate
// what pooling amortizes away.
const figPoolImage = 1 << 20

// figPoolReps: each cell is measured this many times and the best run
// kept, as Fig9 does, to damp scheduler noise. Within a rep the variants
// run back-to-back (interleaved), so slow drift — CPU frequency, thermal
// state — biases every variant of a level equally instead of skewing
// whole-variant sweeps.
const figPoolReps = 5

// PoolRow is one measured cell.
type PoolRow struct {
	Variant string
	Conns   int // concurrent connections
	RPS     float64
	P50     time.Duration // median session latency
	P99     time.Duration // tail session latency
}

// PoolOpts carries the serve-runtime knobs a FigPool run applies to the
// pooled variants (the other variants have no runtime and ignore them).
type PoolOpts struct {
	// Slots caps the pooled build's slot count (0 = size each cell's
	// pool to host parallelism, never above its concurrency level).
	Slots int
	// Queue bounds the admission queue (serve.App.Queue semantics;
	// 0 = unbounded). Rejected connections surface as client retries.
	Queue int
	// AutoSlots makes pooled slot counts track GOMAXPROCS at admission
	// instead of the per-cell Slots computation.
	AutoSlots bool
	// Drain runs a drain/undrain cycle on every pooled cell at teardown
	// and fails the cell if the runtime is not quiescent afterwards.
	Drain bool
	// Variants restricts the run to the named variants (nil = the app's
	// full ladder). Unknown names are ignored; useful for profiling one
	// variant without the others polluting the samples.
	Variants []string
}

// figPoolCell measures one httpd variant at one concurrency level: total
// connections served by a concurrently-dispatching accept loop, driven
// by conns client goroutines, uncached (every handshake pays the RSA
// operation, the load the pool spreads). Built on the shared
// poolCellHarness (figpool_apps.go) like the sshd and pop3 cells.
func figPoolCell(variant string, conns, total, poolSlots int, opts PoolOpts) (CellStats, error) {
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		return CellStats{}, err
	}
	var drainErr error
	stats, err := poolCellHarness(
		func(k *kernel.Kernel) error { return httpd.SetupDocroot(k, "/var/www", 1024) },
		func(root *sthread.Sthread) (cellServer, error) {
			switch variant {
			case "mono":
				srv, err := httpd.NewMonolithic(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn}, nil
			case "simple":
				srv, err := httpd.NewSimple(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn}, nil
			case "recycled":
				srv, err := httpd.NewRecycled(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return cellServer{serve: srv.ServeConn, close: func() { srv.Close() }}, nil
			case "pooled":
				srv, err := httpd.NewPooled(root, "/var/www", priv, false, poolSlots, httpd.Hooks{})
				if err != nil {
					return cellServer{}, err
				}
				return pooledCellServer(srv, opts, &drainErr), nil
			}
			return cellServer{}, fmt.Errorf("unknown httpd variant %q", variant)
		},
		"apache:443",
		func(k *kernel.Kernel) error {
			conn, err := k.Net.Dial("apache:443")
			if err != nil {
				return err
			}
			defer conn.Close()
			cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
			if err != nil {
				return err
			}
			if _, err := cc.Write([]byte("GET /index.html")); err != nil {
				return err
			}
			_, err = cc.ReadRecord()
			return err
		},
		conns, total)
	if err == nil {
		err = drainErr
	}
	if err != nil {
		return CellStats{}, fmt.Errorf("%s c=%d: %w", variant, conns, err)
	}
	return stats, nil
}

// FigPoolApps is every application the gatepool experiment covers, in
// ladder order — the five-way pooled comparison `wedgebench -pool -app
// all` runs (the four stream studies plus the dnsd datagram wedge).
var FigPoolApps = []string{"httpd", "sshd", "pop3", "privsep", "dnsd"}

// FigPoolVariants returns the variant ladder measured for one app: the
// httpd experiment keeps the paper's four builds; sshd and pop3 compare
// the unpartitioned build, the per-connection partitioned build (whose
// gates are created per connection — the cost recycling amortizes), and
// the pooled build; privsep compares the fork-per-connection monitor of
// §5.2 against the pooled monitor gates; dnsd compares the
// unpartitioned datagram resolver against the pooled datagram wedge
// under fresh principals (flows, wheel-driven slot recycling, and the
// signing gate all on the serving path) and under returning principals
// ("pooled-reuse": every query after a client's first rides a live flow
// lease, the path principal-switch scrub elision serves).
func FigPoolVariants(app string) ([]string, error) {
	switch app {
	case "", "httpd":
		return []string{"mono", "simple", "recycled", "pooled"}, nil
	case "sshd", "pop3":
		return []string{"mono", "wedge", "pooled"}, nil
	case "privsep":
		return []string{"privsep", "pooled"}, nil
	case "dnsd":
		return []string{"mono", "pooled", "pooled-reuse"}, nil
	}
	return nil, fmt.Errorf("bench: unknown FigPool app %q (want httpd, sshd, pop3, privsep or dnsd)", app)
}

// FigPool measures every httpd variant across the concurrency ladder; see
// FigPoolApp.
func FigPool(conns int, levels []int, poolSlots int) ([]PoolRow, []Result, error) {
	return FigPoolApp("httpd", conns, levels, PoolOpts{Slots: poolSlots})
}

// FigPoolApp measures every variant of the given app ("httpd", "sshd",
// "pop3", "privsep" or "dnsd") across the concurrency ladder. conns is
// the timed connection count per cell (0 = FigPoolConns; rounded up to
// a multiple of the level), levels the ladder (nil = FigPoolLevels),
// and opts the serve-runtime knobs applied to the pooled variants. Each
// cell emits three Results — throughput plus p50/p99 session latency,
// distinguished by Metric — all taken from the cell's best-throughput
// rep.
func FigPoolApp(app string, conns int, levels []int, opts PoolOpts) ([]PoolRow, []Result, error) {
	variants, err := FigPoolVariants(app)
	if err != nil {
		return nil, nil, err
	}
	if len(opts.Variants) > 0 {
		keep := variants[:0]
		for _, v := range variants {
			for _, want := range opts.Variants {
				if v == want {
					keep = append(keep, v)
					break
				}
			}
		}
		variants = keep
	}
	if app == "" {
		app = "httpd"
	}
	if conns <= 0 {
		conns = FigPoolConns
	}
	if len(levels) == 0 {
		levels = FigPoolLevels
	}
	var rows []PoolRow
	var results []Result
	for _, level := range levels {
		total := conns
		if rem := total % level; rem != 0 {
			total += level - rem
		}
		// Slots track available parallelism (serve.DefaultSlots), not
		// the connection count, and never exceed the concurrency level —
		// on a single-core host extra slots only add scheduling churn.
		// (With opts.AutoSlots the runtime re-applies the GOMAXPROCS
		// target at admission, superseding this per-cell computation.)
		slots := opts.Slots
		if slots <= 0 {
			slots = serve.DefaultSlots()
		}
		if slots > level {
			slots = level
		}
		best := make(map[string]CellStats, len(variants))
		for rep := 0; rep < figPoolReps; rep++ {
			for _, variant := range variants {
				var r CellStats
				var err error
				switch app {
				case "httpd":
					r, err = figPoolCell(variant, level, total, slots, opts)
				case "sshd":
					r, err = sshdPoolCell(variant, level, total, slots, opts)
				case "pop3":
					r, err = pop3PoolCell(variant, level, total, slots, opts)
				case "privsep":
					r, err = privsepPoolCell(variant, level, total, slots, opts)
				case "dnsd":
					r, err = dnsdPoolCell(variant, level, total, slots, opts)
				}
				if err != nil {
					return nil, nil, err
				}
				// Best rep by throughput; the latency percentiles travel
				// with it, so every cell's numbers come from one run.
				if r.RPS > best[variant].RPS {
					best[variant] = r
				}
			}
		}
		for _, variant := range variants {
			b := best[variant]
			rows = append(rows, PoolRow{Variant: variant, Conns: level, RPS: b.RPS, P50: b.P50, P99: b.P99})
			results = append(results,
				Result{
					Experiment: "figpool",
					Name:       fmt.Sprintf("%s %s c=%d", app, variant, level),
					Value:      b.RPS,
					Unit:       "req/s",
					App:        app,
					Variant:    variant,
					Conns:      level,
					Metric:     "rps",
				},
				Result{
					Experiment: "figpool",
					Name:       fmt.Sprintf("%s %s c=%d p50", app, variant, level),
					Value:      ms(b.P50),
					Unit:       "ms",
					App:        app,
					Variant:    variant,
					Conns:      level,
					Metric:     "p50",
				},
				Result{
					Experiment: "figpool",
					Name:       fmt.Sprintf("%s %s c=%d p99", app, variant, level),
					Value:      ms(b.P99),
					Unit:       "ms",
					App:        app,
					Variant:    variant,
					Conns:      level,
					Metric:     "p99",
				})
		}
	}
	return rows, results, nil
}
