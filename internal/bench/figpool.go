// FigPool: throughput of the four SSL-server builds as connection
// concurrency grows — the experiment motivating the gatepool subsystem.
// It extends Table 2's single-stream measurement: the paper's recycled
// callgate removes the per-call sthread creation but leaves one gate
// every connection serializes through, and still creates one worker
// sthread per connection. The pooled build removes both: N slots, each a
// recycled worker plus a recycled setup gate, sharded by principal.
//
// Expected shape: mono fastest (no isolation); simple slowest (two
// sthread creations per connection); recycled above simple (gate
// creation amortized); pooled above recycled at every concurrency level
// (worker creation amortized too), with the gap widening as concurrency
// grows and, on multicore hosts, the pool's parallel slots overlap RSA
// work that the single recycled gate serializes.

package bench

import (
	"fmt"
	"sync"
	"time"

	"wedge/internal/httpd"
	"wedge/internal/kernel"
	"wedge/internal/minissl"
	"wedge/internal/netsim"
	"wedge/internal/sthread"
	"wedge/internal/vm"
)

// FigPoolConns is the default number of timed connections per cell.
const FigPoolConns = 48

// FigPoolLevels is the default concurrency ladder.
var FigPoolLevels = []int{1, 2, 4, 8, 16, 32, 64}

// figPoolImage is the pre-main process image (touched pages), matching
// Fig7's realistic dynamically-linked-server image: an empty image would
// make per-connection sthread creation artificially cheap and understate
// what pooling amortizes away.
const figPoolImage = 1 << 20

// figPoolReps: each cell is measured this many times and the best run
// kept, as Fig9 does, to damp scheduler noise. Within a rep the variants
// run back-to-back (interleaved), so slow drift — CPU frequency, thermal
// state — biases every variant of a level equally instead of skewing
// whole-variant sweeps.
const figPoolReps = 5

// PoolRow is one measured cell.
type PoolRow struct {
	Variant string
	Conns   int // concurrent connections
	RPS     float64
}

// figPoolCell measures one variant at one concurrency level: total
// connections served by a concurrently-dispatching accept loop, driven by
// conns client goroutines, uncached (every handshake pays the RSA
// operation, the load the pool spreads).
func figPoolCell(variant string, conns, total, poolSlots int) (float64, error) {
	k := kernel.New()
	priv, err := minissl.GenerateServerKey()
	if err != nil {
		return 0, err
	}
	if err := httpd.SetupDocroot(k, "/var/www", 1024); err != nil {
		return 0, err
	}
	app := sthread.Boot(k)
	app.Premain(func(init *kernel.Task) {
		base, err := init.Mmap(figPoolImage, vm.PermRW)
		if err != nil {
			panic(err)
		}
		for off := 0; off < figPoolImage; off += vm.PageSize {
			init.AS.Store64(base+vm.Addr(off), uint64(off))
		}
	})

	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- app.Main(func(root *sthread.Sthread) {
			var serve func(*netsim.Conn) error
			switch variant {
			case "mono":
				srv, err := httpd.NewMonolithic(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				serve = srv.ServeConn
			case "simple":
				srv, err := httpd.NewSimple(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				serve = srv.ServeConn
			case "recycled":
				srv, err := httpd.NewRecycled(root, "/var/www", priv, false, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				defer srv.Close()
				serve = srv.ServeConn
			case "pooled":
				srv, err := httpd.NewPooled(root, "/var/www", priv, false, poolSlots, httpd.Hooks{})
				if err != nil {
					panic(err)
				}
				defer srv.Close()
				serve = srv.ServeConn
			default:
				panic("unknown variant " + variant)
			}
			l, err := root.Task.Listen("apache:443")
			if err != nil {
				panic(err)
			}
			close(ready)
			var wg sync.WaitGroup
			for i := 0; i < total; i++ {
				c, err := l.Accept()
				if err != nil {
					break
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					serve(c)
				}()
			}
			wg.Wait()
		})
	}()
	<-ready

	request := func() error {
		conn, err := k.Net.Dial("apache:443")
		if err != nil {
			return err
		}
		defer conn.Close()
		cc, err := minissl.ClientHandshake(conn, &minissl.ClientConfig{ServerPub: &priv.PublicKey})
		if err != nil {
			return err
		}
		if _, err := cc.Write([]byte("GET /index.html")); err != nil {
			return err
		}
		_, err = cc.ReadRecord()
		return err
	}

	// Clients retry failed connections, as a load generator would: at high
	// concurrency the recycled variant sheds load when its single shared
	// argument tag (one 64 KB arena for every in-flight connection) fills,
	// and the retries charge that shedding to its throughput instead of
	// aborting the experiment.
	perClient := total / conns
	errs := make(chan error, conns)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				err := request()
				for retry := 0; err != nil && retry < 8; retry++ {
					err = request()
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return 0, fmt.Errorf("%s c=%d: %w", variant, conns, err)
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return float64(total) / elapsed.Seconds(), nil
}

// FigPool measures every variant across the concurrency ladder. conns is
// the timed connection count per cell (0 = FigPoolConns; rounded up to a
// multiple of the level), levels the ladder (nil = FigPoolLevels), and
// poolSlots caps the pooled build's slot count (0 = size each cell's pool
// to its concurrency level).
func FigPool(conns int, levels []int, poolSlots int) ([]PoolRow, []Result, error) {
	if conns <= 0 {
		conns = FigPoolConns
	}
	if len(levels) == 0 {
		levels = FigPoolLevels
	}
	var rows []PoolRow
	var results []Result
	for _, level := range levels {
		total := conns
		if rem := total % level; rem != 0 {
			total += level - rem
		}
		// Slots track available parallelism (httpd.DefaultPoolSlots), not
		// the connection count, and never exceed the concurrency level —
		// on a single-core host extra slots only add scheduling churn.
		slots := poolSlots
		if slots <= 0 {
			slots = httpd.DefaultPoolSlots()
		}
		if slots > level {
			slots = level
		}
		variants := []string{"mono", "simple", "recycled", "pooled"}
		best := make(map[string]float64, len(variants))
		for rep := 0; rep < figPoolReps; rep++ {
			for _, variant := range variants {
				r, err := figPoolCell(variant, level, total, slots)
				if err != nil {
					return nil, nil, err
				}
				if r > best[variant] {
					best[variant] = r
				}
			}
		}
		for _, variant := range variants {
			rows = append(rows, PoolRow{Variant: variant, Conns: level, RPS: best[variant]})
			results = append(results, Result{
				Experiment: "figpool",
				Name:       fmt.Sprintf("%s c=%d", variant, level),
				Value:      best[variant],
				Unit:       "req/s",
			})
		}
	}
	return rows, results, nil
}
