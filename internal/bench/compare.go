// Regression detection between two wedgebench -json result sets: the
// machinery behind cmd/benchdiff and the CI job that compares a run's
// BENCH_pool.json against the checked-in point. The comparison is
// deliberately coarse — a shared CI runner is noisy, so only changes
// beyond a wide threshold count — but it is direction-aware: a rate
// that fell and a latency that rose are both "worse".

package bench

import (
	"fmt"
	"math"
	"strings"
)

// Regression is one row that got worse (or vanished) between two runs.
type Regression struct {
	Name string  // "experiment | name"
	Old  float64 // baseline value
	New  float64 // current value (0 when Missing)
	Unit string
	// Delta is the fractional worsening as a ratio minus one: 0.25 means
	// 25% worse, 3 means 4x worse, in the unit's bad direction (rate
	// fell / latency rose). Always > 0 for a reported regression; +Inf
	// when a rate collapsed to zero.
	Delta float64
	// Missing: the row exists in the baseline but not in the new run. A
	// benchmark that silently stops measuring something reads as a pass,
	// so a vanished row is flagged like a regression.
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%-40s missing from new run (was %.3f %s)", r.Name, r.Old, r.Unit)
	}
	return fmt.Sprintf("%-40s %.3f -> %.3f %s (%.0f%% worse)", r.Name, r.Old, r.New, r.Unit, r.Delta*100)
}

// worseDirection classifies a unit: +1 when higher values are better
// (rates — "req/s", "hs/s", "ops/s"), -1 when lower values are better
// (durations), 0 when the unit carries no better/worse direction
// (counts, ratios, lines) and the row is skipped.
func worseDirection(unit string) int {
	if strings.HasSuffix(unit, "/s") {
		return +1
	}
	switch unit {
	case "ns", "us", "ms", "s":
		return -1
	}
	return 0
}

// Compare matches rows of two result sets by (experiment, name) and
// returns the rows of old whose value in new is worse by more than
// threshold, plus baseline rows missing from new. The threshold is a
// worseness ratio minus one — 0.5 flags a rate that fell or a latency
// that rose beyond 1.5x, 3 flags collapses beyond 4x — so a rate drop
// is not capped at "100% worse" the way a subtractive fraction would
// be. Rows that appear only in new — a grown benchmark — are not
// flagged. Directionless units and zero baselines (no meaningful ratio)
// are skipped.
func Compare(old, new []Result, threshold float64) []Regression {
	latest := make(map[string]Result, len(new))
	for _, r := range new {
		latest[resultKey(r)] = r
	}
	var regs []Regression
	for _, o := range old {
		dir := worseDirection(o.Unit)
		if dir == 0 || o.Value == 0 || o.Note != "" {
			continue
		}
		n, ok := latest[resultKey(o)]
		if !ok {
			regs = append(regs, Regression{Name: resultKey(o), Old: o.Value, Unit: o.Unit, Missing: true})
			continue
		}
		// Worseness ratio in the bad direction: old/new for rates,
		// new/old for latencies.
		var worse float64
		switch {
		case dir > 0 && n.Value <= 0:
			worse = math.Inf(1) // a rate collapsed to nothing
		case dir > 0:
			worse = o.Value / n.Value
		default:
			worse = n.Value / o.Value
		}
		if worse > 1+threshold {
			regs = append(regs, Regression{Name: resultKey(o), Old: o.Value, New: n.Value, Unit: o.Unit, Delta: worse - 1})
		}
	}
	return regs
}

// resultKey is the row-matching identity: same experiment, same name.
func resultKey(r Result) string { return r.Experiment + " | " + r.Name }

// Improvement is one row that got better between two runs — the
// direction-aware mirror of Regression. Improvements never fail a
// comparison; they are reported so a deliberate optimization lands as
// a visible "better by Nx" line instead of a silent pass.
type Improvement struct {
	Name string  // "experiment | name"
	Old  float64 // baseline value
	New  float64 // current value
	Unit string
	// Factor is the betterness ratio in the unit's good direction: 2
	// means a rate doubled or a latency halved. Always > 1.
	Factor float64
}

func (i Improvement) String() string {
	return fmt.Sprintf("%-40s %.3f -> %.3f %s (better by %.2fx)", i.Name, i.Old, i.New, i.Unit, i.Factor)
}

// Improvements matches rows like Compare and returns the baseline rows
// whose value in new is better by more than threshold (the same
// ratio-minus-one scale: 0.5 reports rates up or latencies down beyond
// 1.5x). Noted rows, directionless units, zero baselines, and rows
// missing from new are skipped — Compare owns the failure verdicts.
func Improvements(old, new []Result, threshold float64) []Improvement {
	latest := make(map[string]Result, len(new))
	for _, r := range new {
		latest[resultKey(r)] = r
	}
	var imps []Improvement
	for _, o := range old {
		dir := worseDirection(o.Unit)
		if dir == 0 || o.Value == 0 || o.Note != "" {
			continue
		}
		n, ok := latest[resultKey(o)]
		if !ok {
			continue
		}
		var better float64
		switch {
		case dir < 0 && n.Value <= 0:
			better = math.Inf(1) // a latency fell to nothing
		case dir > 0:
			better = n.Value / o.Value
		default:
			better = o.Value / n.Value
		}
		if better > 1+threshold {
			imps = append(imps, Improvement{Name: resultKey(o), Old: o.Value, New: n.Value, Unit: o.Unit, Factor: better})
		}
	}
	return imps
}

// Rebaseline produces a refreshed baseline from a run: rows the run
// re-measured take the run's values in the baseline's file order,
// noted trajectory rows are preserved verbatim, and rows only the run
// has are appended at the end (a grown benchmark enters the baseline).
// Baseline rows the run no longer produces are dropped — the caller is
// expected to have run Compare first and refused to re-baseline onto a
// regressing or shrunken run.
func Rebaseline(old, new []Result) []Result {
	latest := make(map[string]Result, len(new))
	for _, r := range new {
		latest[resultKey(r)] = r
	}
	used := make(map[string]bool, len(new))
	out := make([]Result, 0, len(old)+len(new))
	for _, o := range old {
		if o.Note != "" {
			out = append(out, o)
			continue
		}
		if n, ok := latest[resultKey(o)]; ok {
			out = append(out, n)
			used[resultKey(o)] = true
		}
	}
	for _, n := range new {
		if !used[resultKey(n)] {
			out = append(out, n)
			used[resultKey(n)] = true
		}
	}
	return out
}
