package bench

import "testing"

// TestAblationTagCache: the deleted-tag cache must not hurt — the paper
// reports it improving partitioned Apache throughput by 20%. Simulator
// noise makes exact margins unreliable, so the assertion is directional
// with slack: the cached build must reach at least 85% of the uncached
// build's throughput, and typically exceeds it.
func TestAblationTagCache(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes seconds")
	}
	// Retried: when the whole module's tests run in parallel, CPU
	// contention from other packages can starve either arm; the claim is
	// about a cleanly measured run.
	var withCache, withoutCache float64
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		withCache, withoutCache, err = AblationTagCache(16)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("tag cache on: %.0f req/s, off: %.0f req/s (%.0f%%)",
			withCache, withoutCache, withCache/withoutCache*100)
		if withCache >= withoutCache*0.85 {
			return
		}
	}
	t.Fatalf("tag cache hurt throughput: %.0f vs %.0f req/s", withCache, withoutCache)
}

// TestAblationEphemeralRSA: per-connection key generation must cost —
// §5.1.1's reason ephemeral RSA was rarely deployed. The ephemeral build
// should reach well under half the static build's full-handshake rate.
func TestAblationEphemeralRSA(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes seconds")
	}
	var static, ephemeral float64
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		static, ephemeral, err = AblationEphemeralRSA(10)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("static key: %.0f hs/s, ephemeral: %.0f hs/s (%.0f%%)",
			static, ephemeral, ephemeral/static*100)
		if ephemeral < static*0.6 {
			return
		}
	}
	t.Fatalf("ephemeral keys too cheap: %.0f vs %.0f hs/s", ephemeral, static)
}
